(** The [valgrind] command-line driver: run a VG32 program under a tool.

    {v
    valgrind --tool=memcheck prog.c       # mini-C source, compiled on the fly
    valgrind --tool=cachegrind prog.s     # VG32 assembly
    valgrind --tool=nulgrind --no-chaining --smc-check=all prog.c
    v} *)

open Cmdliner

let tools : (string * Vg_core.Tool.t) list =
  [
    ("nulgrind", Vg_core.Tool.nulgrind);
    ("memcheck", Tools.Memcheck.tool);
    ("memcheck-origins", Tools.Memcheck.tool_origins);
    ("cachegrind", Tools.Cachegrind.tool);
    ("massif", Tools.Massif.tool);
    ("lackey", Tools.Lackey.tool);
    ("taintgrind", Tools.Taintgrind.tool);
    ("annelid", Tools.Annelid.tool);
    ("redux", Tools.Redux.tool);
    ("icnti", Tools.Icnt.icnt_inline);
    ("icntc", Tools.Icnt.icnt_call);
  ]

let load_image (path : string) : Guest.Image.t =
  let read_file p =
    let ic = open_in_bin p in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  if Filename.check_suffix path ".s" || Filename.check_suffix path ".asm" then
    Guest.Asm.assemble (read_file path)
  else Minicc.Driver.compile (read_file path)

let run tool_name no_chaining no_verify smc_mode stats stdin_file supp_file
    path =
  let tool =
    match List.assoc_opt tool_name tools with
    | Some t -> t
    | None ->
        Printf.eprintf "valgrind: unknown tool '%s' (have: %s)\n" tool_name
          (String.concat ", " (List.map fst tools));
        exit 2
  in
  let img =
    try load_image path with
    | Minicc.Driver.Compile_error m ->
        Printf.eprintf "valgrind: %s: %s\n" path m;
        exit 2
    | Guest.Asm.Error { line; msg } ->
        Printf.eprintf "valgrind: %s:%d: %s\n" path line msg;
        exit 2
    | Sys_error m ->
        Printf.eprintf "valgrind: %s\n" m;
        exit 2
  in
  let smc =
    match smc_mode with
    | "none" -> Vg_core.Session.Smc_none
    | "all" -> Vg_core.Session.Smc_all
    | _ -> Vg_core.Session.Smc_stack
  in
  let options =
    {
      Vg_core.Session.default_options with
      chaining = not no_chaining;
      smc_mode = smc;
      verify_jit = not no_verify;
    }
  in
  let s = Vg_core.Session.create ~options ~tool img in
  s.echo_output <- true;
  (match supp_file with
  | Some f ->
      let ic = open_in_bin f in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      List.iter
        (Vg_core.Errors.add_suppression s.errors)
        (Vg_core.Errors.parse_suppressions text)
  | None -> ());
  (match stdin_file with
  | Some f ->
      let ic = open_in_bin f in
      let n = in_channel_length ic in
      Kernel.set_stdin s.kern (really_input_string ic n);
      close_in ic
  | None -> ());
  s.kern.stdout_echo <- true;
  Printf.eprintf "==vg== %s: %s\n" tool.name tool.description;
  Printf.eprintf "==vg== running %s\n" path;
  let reason = Vg_core.Session.run s in
  if stats then begin
    let st = Vg_core.Session.stats s in
    Printf.eprintf "==vg== blocks run: %Ld  translations: %d  host cycles: %Ld\n"
      st.st_blocks st.st_translations st.st_host_cycles;
    Printf.eprintf "==vg== dispatcher hit rate: %.2f%%  total cycles: %Ld\n"
      (100.0 *. st.st_dispatch_hit_rate)
      st.st_total_cycles;
    Printf.eprintf
      "==vg== chained transfers: %Ld  (chains patched %d, unlinked %d)\n"
      st.st_chained st.st_chain_patched st.st_chain_unlinked;
    Printf.eprintf "==vg== verifier: %d phase-boundary checks\n"
      st.st_verify_checks
  end;
  match reason with
  | Vg_core.Session.Exited n -> exit (n land 0xFF)
  | Vg_core.Session.Fatal_signal sg -> exit (128 + sg)
  | Vg_core.Session.Out_of_fuel ->
      Printf.eprintf "==vg== out of fuel\n";
      exit 3

let cmd =
  let tool =
    Arg.(value & opt string "memcheck" & info [ "tool" ] ~doc:"Tool plug-in to run.")
  in
  let no_chaining =
    Arg.(
      value & flag
      & info [ "no-chaining" ]
          ~doc:
            "Disable translation chaining (the paper's configuration: every \
             block transfer goes through the dispatcher).")
  in
  let no_verify =
    Arg.(
      value & flag
      & info [ "no-verify-jit" ]
          ~doc:
            "Disable the Vglint phase-boundary verifiers (on by default; \
             they check every translation's IR, register allocation and \
             encoding, plus the tool's instrumentation).")
  in
  let smc =
    Arg.(
      value
      & opt string "stack"
      & info [ "smc-check" ] ~doc:"Self-modifying-code checks: none|stack|all.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print core statistics at exit.")
  in
  let stdin_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "stdin" ] ~doc:"File fed to the client as standard input.")
  in
  let supp =
    Arg.(
      value
      & opt (some string) None
      & info [ "suppressions" ]
          ~doc:"Suppression file (errors matching its entries are hidden).")
  in
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM")
  in
  Cmd.v
    (Cmd.info "valgrind" ~doc:"run a VG32 program under a Valgrind tool")
    Term.(
      const run $ tool $ no_chaining $ no_verify $ smc $ stats $ stdin_file
      $ supp $ path)

let () = exit (Cmd.eval cmd)
