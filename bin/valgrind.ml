(** The [valgrind] command-line driver: run a VG32 program under a tool.

    {v
    valgrind --tool=memcheck prog.c       # mini-C source, compiled on the fly
    valgrind --tool=cachegrind prog.s     # VG32 assembly
    valgrind --tool=nulgrind --no-chaining --smc-check=all prog.c
    v} *)

open Cmdliner

let tools : (string * Vg_core.Tool.t) list =
  [
    ("nulgrind", Vg_core.Tool.nulgrind);
    ("memcheck", Tools.Memcheck.tool);
    ("memcheck-origins", Tools.Memcheck.tool_origins);
    ("cachegrind", Tools.Cachegrind.tool);
    ("massif", Tools.Massif.tool);
    ("lackey", Tools.Lackey.tool);
    ("taintgrind", Tools.Taintgrind.tool);
    ("annelid", Tools.Annelid.tool);
    ("redux", Tools.Redux.tool);
    ("drd", Tools.Drd.tool);
    ("icnti", Tools.Icnt.icnt_inline);
    ("icntc", Tools.Icnt.icnt_call);
  ]

let read_file p =
  let ic = open_in_bin p in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_image (path : string) : Guest.Image.t =
  if Filename.check_suffix path ".s" || Filename.check_suffix path ".asm" then
    Guest.Asm.assemble (read_file path)
  else Minicc.Driver.compile (read_file path)

(* The translation configuration shapes the cycle counts, so a replay
   must run under the recording's exact flags: --record stashes them in
   the log header and --replay restores them from there. *)
let encode_options (o : Vg_core.Session.options) : string =
  Printf.sprintf "chaining=%b verify=%b smc=%s tier0=%b promote=%d super=%b scan=%b aot=%b"
    o.chaining o.verify_jit
    (match o.smc_mode with
    | Vg_core.Session.Smc_none -> "none"
    | Vg_core.Session.Smc_all -> "all"
    | Vg_core.Session.Smc_stack -> "stack")
    o.tier0 o.promote_threshold o.superblocks o.scan o.aot_seed

let decode_options (s : string) (o : Vg_core.Session.options) :
    Vg_core.Session.options =
  List.fold_left
    (fun o kv ->
      match String.index_opt kv '=' with
      | None -> o
      | Some i -> (
          let k = String.sub kv 0 i in
          let v = String.sub kv (i + 1) (String.length kv - i - 1) in
          match k with
          | "chaining" -> { o with Vg_core.Session.chaining = v = "true" }
          | "verify" -> { o with verify_jit = v = "true" }
          | "smc" ->
              {
                o with
                smc_mode =
                  (match v with
                  | "none" -> Vg_core.Session.Smc_none
                  | "all" -> Vg_core.Session.Smc_all
                  | _ -> Vg_core.Session.Smc_stack);
              }
          | "tier0" -> { o with tier0 = v = "true" }
          | "promote" -> { o with promote_threshold = int_of_string v }
          | "super" -> { o with superblocks = v = "true" }
          | "scan" -> { o with scan = v = "true" }
          | "aot" -> { o with aot_seed = v = "true" }
          | _ -> o))
    o
    (String.split_on_char ' ' s)

(* --replay: everything comes out of the log — the program source, the
   tool, the core count and the translation flags — so the replay is a
   pure function of the .vgrw file. *)
let run_replay (file : string) stats =
  let p =
    try Replay.player_of_file file with
    | Replay.Corrupt m ->
        Printf.eprintf "valgrind: %s: corrupt log: %s\n" file m;
        exit 2
    | Sys_error m ->
        Printf.eprintf "valgrind: %s\n" m;
        exit 2
  in
  let log = p.Replay.p_log in
  let meta k = List.assoc_opt k log.Replay.l_meta in
  let src =
    match meta "source" with
    | Some s -> s
    | None ->
        Printf.eprintf "valgrind: %s: log carries no program source\n" file;
        exit 2
  in
  let img =
    if meta "kind" = Some "asm" then Guest.Asm.assemble src
    else Minicc.Driver.compile src
  in
  let tool =
    match List.assoc_opt log.Replay.l_tool tools with
    | Some t -> t
    | None ->
        Printf.eprintf "valgrind: log needs unknown tool '%s'\n"
          log.Replay.l_tool;
        exit 2
  in
  let options =
    {
      Vg_core.Session.default_options with
      cores = log.Replay.l_cores;
      chaos = None;
      rr = Replay.Replay p;
    }
  in
  let options =
    match meta "options" with Some o -> decode_options o options | None -> options
  in
  let s = Vg_core.Session.create ~options ~tool img in
  s.echo_output <- true;
  s.kern.stdout_echo <- true;
  Printf.eprintf "==vg== replaying %s (%s, cores=%d, %d events)\n" file
    log.Replay.l_tool log.Replay.l_cores (List.length log.Replay.l_events);
  (try
     let reason = Vg_core.Session.run s in
     ignore reason
   with Replay.Divergence _ as e ->
     Printf.eprintf "==vg== REPLAY DIVERGED: %s\n" (Printexc.to_string e);
     exit 1);
  if stats <> None then print_string (Vg_core.Session.stats_json s);
  match Vg_core.Session.replay_mismatches s with
  | [] ->
      Printf.eprintf "==vg== replay verified: all digests match\n";
      exit 0
  | ms ->
      List.iter
        (fun (k, want, got) ->
          Printf.eprintf "==vg== DIGEST MISMATCH %s: recorded %s, replayed %s\n"
            k want got)
        ms;
      exit 1

let run tool_name cores no_chaining no_verify smc_mode tier0_only no_tier0
    promote_threshold scan aot_seed stats profile trace_file stdin_file
    supp_file record_file replay_file path_opt =
  (match (record_file, replay_file) with
  | Some _, Some _ ->
      prerr_endline "valgrind: --record and --replay are mutually exclusive";
      exit 2
  | _ -> ());
  (match replay_file with Some f -> run_replay f stats | None -> ());
  let path =
    match path_opt with
    | Some p -> p
    | None ->
        prerr_endline "valgrind: required PROGRAM argument is missing";
        exit 2
  in
  let tool =
    match List.assoc_opt tool_name tools with
    | Some t -> t
    | None ->
        Printf.eprintf "valgrind: unknown tool '%s' (have: %s)\n" tool_name
          (String.concat ", " (List.map fst tools));
        exit 2
  in
  let img =
    try load_image path with
    | Minicc.Driver.Compile_error m ->
        Printf.eprintf "valgrind: %s: %s\n" path m;
        exit 2
    | Guest.Asm.Error { line; msg } ->
        Printf.eprintf "valgrind: %s:%d: %s\n" path line msg;
        exit 2
    | Sys_error m ->
        Printf.eprintf "valgrind: %s\n" m;
        exit 2
  in
  let smc =
    match smc_mode with
    | "none" -> Vg_core.Session.Smc_none
    | "all" -> Vg_core.Session.Smc_all
    | _ -> Vg_core.Session.Smc_stack
  in
  if tier0_only && no_tier0 then begin
    prerr_endline "valgrind: --tier0-only and --no-tier0 are mutually exclusive";
    exit 2
  end;
  if cores < 1 then begin
    prerr_endline "valgrind: --cores must be >= 1";
    exit 2
  end;
  let options =
    {
      Vg_core.Session.default_options with
      cores;
      chaining = not no_chaining;
      smc_mode = smc;
      verify_jit = not no_verify;
      profile;
      trace_capacity = (if trace_file = None then 0 else 65536);
      tier0 = not no_tier0;
      promote_threshold =
        (if tier0_only then 0
         else
           Option.value promote_threshold
             ~default:Vg_core.Session.default_options.promote_threshold);
      superblocks =
        Vg_core.Session.default_options.superblocks
        && not (tier0_only || no_tier0);
      scan = scan || aot_seed;
      aot_seed;
    }
  in
  let rec_ =
    match record_file with
    | None -> None
    | Some _ ->
        let r = Replay.recorder () in
        Replay.add_meta r "program" (Filename.basename path);
        Replay.add_meta r "kind"
          (if Filename.check_suffix path ".s" || Filename.check_suffix path ".asm"
           then "asm"
           else "c");
        Replay.add_meta r "source" (read_file path);
        Replay.add_meta r "options" (encode_options options);
        Some r
  in
  let options =
    match rec_ with
    | Some r -> { options with rr = Replay.Record r }
    | None -> options
  in
  let s = Vg_core.Session.create ~options ~tool img in
  s.echo_output <- true;
  (match supp_file with
  | Some f ->
      let ic = open_in_bin f in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      List.iter
        (Vg_core.Errors.add_suppression s.errors)
        (Vg_core.Errors.parse_suppressions text)
  | None -> ());
  (match stdin_file with
  | Some f ->
      let ic = open_in_bin f in
      let n = in_channel_length ic in
      Kernel.set_stdin s.kern (really_input_string ic n);
      close_in ic
  | None -> ());
  s.kern.stdout_echo <- true;
  Printf.eprintf "==vg== %s: %s\n" tool.name tool.description;
  Printf.eprintf "==vg== running %s\n" path;
  (match s.static_scan with
  | Some cfg ->
      let findings = Static.Lint.run cfg in
      Printf.eprintf
        "==vgscan== %d insns, %d blocks, %d weak, %d findings\n"
        cfg.Static.Cfg.n_insns
        (List.length cfg.Static.Cfg.blocks)
        cfg.Static.Cfg.n_weak (List.length findings);
      List.iter
        (fun (f : Static.Lint.finding) ->
          Printf.eprintf "==vgscan== [%s] 0x%Lx: %s\n" f.Static.Lint.f_class
            f.Static.Lint.f_addr f.Static.Lint.f_msg)
        findings
  | None -> ());
  let reason = Vg_core.Session.run s in
  (match (rec_, record_file) with
  | Some r, Some f ->
      Replay.to_file r f;
      Printf.eprintf "==vg== recorded %d events -> %s\n" (Replay.n_events r) f
  | _ -> ());
  (match stats with
  | None -> ()
  | Some "json" ->
      (* machine-readable: the full metrics registry, one flat JSON
         object on stdout (the human-readable report stays on stderr).
         If the client's own stdout didn't end in a newline, add one so
         the JSON object always starts at column 0. *)
      let out = Kernel.stdout_contents s.kern in
      if String.length out > 0 && out.[String.length out - 1] <> '\n' then
        print_newline ();
      print_string (Vg_core.Session.stats_json s)
  | Some _ ->
      let st = Vg_core.Session.stats s in
      Printf.eprintf
        "==vg== blocks run: %Ld  translations: %d  host cycles: %Ld\n"
        st.st_blocks st.st_translations st.st_host_cycles;
      Printf.eprintf "==vg== dispatcher hit rate: %.2f%%  total cycles: %Ld\n"
        (100.0 *. st.st_dispatch_hit_rate)
        st.st_total_cycles;
      Printf.eprintf
        "==vg== chained transfers: %Ld  (chains patched %d, unlinked %d)\n"
        st.st_chained st.st_chain_patched st.st_chain_unlinked;
      Printf.eprintf "==vg== verifier: %d phase-boundary checks\n"
        st.st_verify_checks;
      Printf.eprintf
        "==vg== tiers: %d quick, %d full, %d superblocks  (%d promotions, \
         %d failed, %d aborted traces)\n"
        st.st_translations_tier0 st.st_translations_full
        st.st_translations_super st.st_promotions st.st_promotions_failed
        st.st_superblock_aborts;
      Printf.eprintf "==vg== jit cycles: tier0=%Ld full=%Ld\n"
        st.st_jit_cycles_tier0
        (Int64.sub st.st_jit_cycles st.st_jit_cycles_tier0);
      Printf.eprintf "==vg== jit cycles by phase:";
      Array.iteri
        (fun i c ->
          Printf.eprintf "  %s=%Ld" Jit.Pipeline.phase_names.(i) c)
        st.st_jit_phase_cycles;
      Printf.eprintf "\n";
      if scan || aot_seed then
        Printf.eprintf
          "==vg== vgscan oracle: %d checked, %d missed;  aot: %d seeded, \
           %d failed, %Ld cycles\n"
          st.st_cfg_checked st.st_cfg_miss st.st_aot_seeded st.st_aot_failed
          st.st_aot_cycles);
  if profile then prerr_string (Vg_core.Session.profile_report s);
  (match (trace_file, Vg_core.Session.trace s) with
  | Some f, Some tr ->
      let write_file path text =
        let oc = open_out_bin path in
        output_string oc text;
        close_out oc
      in
      write_file f (Obs.Trace.to_jsonl tr);
      write_file (f ^ ".chrome.json") (Obs.Trace.to_chrome tr);
      Printf.eprintf "==vg== trace: %d events -> %s (+ %s.chrome.json)\n"
        (Obs.Trace.total tr) f f
  | _ -> ());
  match reason with
  | Vg_core.Session.Exited n -> exit (n land 0xFF)
  | Vg_core.Session.Fatal_signal sg -> exit (128 + sg)
  | Vg_core.Session.Out_of_fuel ->
      Printf.eprintf "==vg== out of fuel\n";
      exit 3

let cmd =
  let tool =
    Arg.(value & opt string "memcheck" & info [ "tool" ] ~doc:"Tool plug-in to run.")
  in
  let cores =
    Arg.(
      value & opt int 1
      & info [ "cores" ] ~docv:"N"
          ~doc:
            "Simulated cores (default 1).  Threads are pinned to core \
             (tid-1) mod $(docv) and the scheduler interleaves cores on \
             cycle counts, so any value replays bit-identically; a \
             single-threaded program behaves identically for every value.")
  in
  let no_chaining =
    Arg.(
      value & flag
      & info [ "no-chaining" ]
          ~doc:
            "Disable translation chaining (the paper's configuration: every \
             block transfer goes through the dispatcher).")
  in
  let no_verify =
    Arg.(
      value & flag
      & info [ "no-verify-jit" ]
          ~doc:
            "Disable the Vglint phase-boundary verifiers (on by default; \
             they check every translation's IR, register allocation and \
             encoding, plus the tool's instrumentation).")
  in
  let smc =
    Arg.(
      value
      & opt string "stack"
      & info [ "smc-check" ] ~doc:"Self-modifying-code checks: none|stack|all.")
  in
  let tier0_only =
    Arg.(
      value & flag
      & info [ "tier0-only" ]
          ~doc:
            "Stay in the tier-0 quick translator: hot blocks are never \
             promoted to the optimizing pipeline and no superblocks form.")
  in
  let no_tier0 =
    Arg.(
      value & flag
      & info [ "no-tier0" ]
          ~doc:
            "Disable the quick tier (the pre-tiering behaviour): every \
             block pays the full optimizing pipeline up front.")
  in
  let promote_threshold =
    Arg.(
      value
      & opt (some int) None
      & info [ "promote-threshold" ] ~docv:"N"
          ~doc:
            "Promote a tier-0 translation to the optimizing pipeline once \
             its block has executed $(docv) times (default \
             $(b,256); 0 disables promotion).")
  in
  let scan =
    Arg.(
      value & flag
      & info [ "scan" ]
          ~doc:
            "Statically scan the whole image before start-up (Vgscan): \
             recover the guest CFG, report hostile-code findings, and \
             check every executed block start against the static CFG \
             (the soundness oracle, counted under $(b,static.cfg_miss)).")
  in
  let aot_seed =
    Arg.(
      value & flag
      & info [ "aot-seed" ]
          ~doc:
            "Pre-translate every statically discovered basic block \
             through the cold tier before the client runs (implies \
             $(b,--scan)); seeding work is counted separately under \
             $(b,jit.aot.*).")
  in
  let stats =
    Arg.(
      value
      & opt ~vopt:(Some "text") (some string) None
      & info [ "stats" ]
          ~doc:
            "Print core statistics at exit: $(b,--stats) (or \
             $(b,--stats=text)) for the human-readable report on stderr, \
             $(b,--stats=json) for the full metrics registry as one flat \
             JSON object on stdout.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Build the guest-execution profile from exact block counters \
             and print the flat + caller/callee report at exit.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record structured events (translations, chain patch/unlink, \
             evictions, chaos faults, signals) into a bounded ring and \
             write them to $(docv) as JSON-lines, plus $(docv).chrome.json \
             in Chrome trace_event format (load in chrome://tracing or \
             Perfetto).")
  in
  let stdin_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "stdin" ] ~doc:"File fed to the client as standard input.")
  in
  let supp =
    Arg.(
      value
      & opt (some string) None
      & info [ "suppressions" ]
          ~doc:"Suppression file (errors matching its entries are hidden).")
  in
  let record_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"FILE"
          ~doc:
            "Record a replay log to $(docv): every non-derivable input \
             (syscall results, signal delivery points, chaos faults) plus \
             the program source and translation flags, sealed with \
             final-state digests.  Replay with $(b,--replay) or the \
             $(b,vgrewind) driver.")
  in
  let replay_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Re-execute a recording bit-identically.  The program, tool, \
             core count and translation flags all come from the log; the \
             final state is checked against the recorded digests and any \
             mismatch exits non-zero.")
  in
  let path =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"PROGRAM")
  in
  Cmd.v
    (Cmd.info "valgrind" ~doc:"run a VG32 program under a Valgrind tool")
    Term.(
      const run $ tool $ cores $ no_chaining $ no_verify $ smc $ tier0_only
      $ no_tier0 $ promote_threshold $ scan $ aot_seed $ stats $ profile
      $ trace_file $ stdin_file $ supp $ record_file $ replay_file $ path)

(* cmdliner's optional-value arguments consume a following bare token,
   so "--stats PROGRAM" would swallow the program path.  Rewrite the
   bare form to "--stats=text" so both spellings keep working. *)
let argv =
  Array.map (fun a -> if a = "--stats" then "--stats=text" else a) Sys.argv

let () = exit (Cmd.eval ~argv cmd)
