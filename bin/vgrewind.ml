(** The [vgrewind] driver: record, replay and time-travel debugging on
    the deterministic substrate.

    {v
    vgrewind record --tool=memcheck -o prog.vgrw prog.c
    vgrewind record --tool=drd --cores=2 --chaos-seed=3 -o t.vgrw prog.s
    vgrewind replay prog.vgrw            # re-run, verify trailer digests
    vgrewind seek prog.vgrw --cycle N    # time-travel to a wall cycle
    vgrewind back prog.vgrw --insns K    # step backwards K instructions
    vgrewind when prog.vgrw              # when did errors / faults fire?
    v}

    A log is self-contained: the guest program source travels in the
    header metadata, so replaying needs only the [.vgrw] file. *)

open Cmdliner

let tools : (string * Vg_core.Tool.t) list =
  [
    ("nulgrind", Vg_core.Tool.nulgrind);
    ("memcheck", Tools.Memcheck.tool);
    ("memcheck-origins", Tools.Memcheck.tool_origins);
    ("cachegrind", Tools.Cachegrind.tool);
    ("massif", Tools.Massif.tool);
    ("lackey", Tools.Lackey.tool);
    ("taintgrind", Tools.Taintgrind.tool);
    ("annelid", Tools.Annelid.tool);
    ("redux", Tools.Redux.tool);
    ("drd", Tools.Drd.tool);
    ("icnti", Tools.Icnt.icnt_inline);
    ("icntc", Tools.Icnt.icnt_call);
  ]

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("vgrewind: " ^ m); exit 2) fmt

let read_file p =
  let ic = open_in_bin p in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let compile_source ~(kind : string) (src : string) : Guest.Image.t =
  try
    if kind = "asm" then Guest.Asm.assemble src else Minicc.Driver.compile src
  with
  | Minicc.Driver.Compile_error m -> die "compile error: %s" m
  | Guest.Asm.Error { line; msg } -> die "assembly error at line %d: %s" line msg

let find_tool name =
  match List.assoc_opt name tools with
  | Some t -> t
  | None ->
      die "unknown tool '%s' (have: %s)" name (String.concat ", " (List.map fst tools))

(* --- record ----------------------------------------------------------- *)

let record tool_name cores chaos_seed chaos_mode workload scale stdin_file out
    path =
  let tool = find_tool tool_name in
  if cores < 1 then die "--cores must be >= 1";
  (* the program: a source file, or a named corpus workload *)
  let prog_name, kind, src =
    match (workload, path) with
    | Some w, None -> (
        match Workloads.find w with
        | Some wl -> ("workload:" ^ w, "c", wl.Workloads.w_source ~scale)
        | None ->
            die "unknown workload '%s' (have: %s)" w
              (String.concat ", "
                 (List.map (fun w -> w.Workloads.w_name) Workloads.all)))
    | None, Some p ->
        let kind =
          if Filename.check_suffix p ".s" || Filename.check_suffix p ".asm"
          then "asm"
          else "c"
        in
        (Filename.basename p, kind, (try read_file p with Sys_error m -> die "%s" m))
    | _ -> die "need exactly one of PROGRAM or --workload"
  in
  let img = compile_source ~kind src in
  let rec_ = Replay.recorder () in
  Replay.add_meta rec_ "program" prog_name;
  Replay.add_meta rec_ "kind" kind;
  Replay.add_meta rec_ "source" src;
  let chaos =
    match chaos_seed with
    | None -> None
    | Some seed ->
        Replay.add_meta rec_ "chaos" (Printf.sprintf "%s:%d" chaos_mode seed);
        let cfg =
          match chaos_mode with
          | "idempotent" -> Chaos.idempotent ~seed
          | "hostile" -> Chaos.hostile ~seed
          | "sharded" -> Chaos.sharded ~seed
          | m -> die "unknown chaos mode '%s' (idempotent|hostile|sharded)" m
        in
        Some (Chaos.create cfg)
  in
  let options =
    {
      Vg_core.Session.default_options with
      cores;
      chaos;
      rr = Replay.Record rec_;
    }
  in
  let s = Vg_core.Session.create ~options ~tool img in
  s.echo_output <- true;
  s.kern.stdout_echo <- true;
  (match stdin_file with
  | Some f -> Kernel.set_stdin s.kern (try read_file f with Sys_error m -> die "%s" m)
  | None -> ());
  Printf.eprintf "==vgrewind== recording %s under %s (cores=%d%s)\n" prog_name
    tool.name cores
    (match chaos_seed with
    | Some n -> Printf.sprintf ", chaos %s:%d" chaos_mode n
    | None -> "");
  let reason = Vg_core.Session.run s in
  let out =
    match out with Some o -> o | None -> Filename.remove_extension prog_name ^ ".vgrw"
  in
  Replay.to_file rec_ out;
  Printf.eprintf "==vgrewind== %d events -> %s\n" (Replay.n_events rec_) out;
  match reason with
  | Vg_core.Session.Exited n -> exit (n land 0xFF)
  | Vg_core.Session.Fatal_signal sg -> exit (128 + sg)
  | Vg_core.Session.Out_of_fuel ->
      Printf.eprintf "==vgrewind== out of fuel\n";
      exit 3

(* --- building a session back from a log ------------------------------- *)

let session_of_log ?(snapshot_every = 0L) (file : string) :
    Vg_core.Session.t * Replay.player =
  let p =
    try Replay.player_of_file file with
    | Replay.Corrupt m -> die "%s: corrupt log: %s" file m
    | Sys_error m -> die "%s" m
  in
  let log = p.Replay.p_log in
  let meta k = List.assoc_opt k log.Replay.l_meta in
  let src =
    match meta "source" with
    | Some s -> s
    | None -> die "%s: log carries no program source" file
  in
  let kind = Option.value (meta "kind") ~default:"c" in
  let img = compile_source ~kind src in
  let tool = find_tool log.Replay.l_tool in
  let options =
    {
      Vg_core.Session.default_options with
      cores = log.Replay.l_cores;
      chaos = None;
      rr = Replay.Replay p;
      snapshot_every;
    }
  in
  (Vg_core.Session.create ~options ~tool img, p)

let exit_str = function
  | Some (Vg_core.Session.Exited n) -> Printf.sprintf "exited %d" n
  | Some (Vg_core.Session.Fatal_signal sg) -> Printf.sprintf "fatal signal %d" sg
  | Some Vg_core.Session.Out_of_fuel -> "out of fuel"
  | None -> "still running"

let print_state (s : Vg_core.Session.t) =
  Printf.printf "==vgrewind== at cycle %Ld (%Ld host insns, %Ld blocks, %s)\n"
    (Vg_core.Session.wall_cycles s)
    (Vg_core.Session.host_insns s)
    s.blocks_executed (exit_str s.exit_reason);
  List.iter
    (fun (th : Vg_core.Threads.thread) ->
      let status =
        match th.status with
        | Vg_core.Threads.Runnable -> "runnable"
        | Vg_core.Threads.Blocked -> "blocked"
        | Vg_core.Threads.Exited -> "exited"
      in
      Printf.printf "==vgrewind==   thread %d (%s): eip=0x%Lx" th.tid status
        (Vg_core.Threads.get_eip s.threads th);
      for r = 0 to Guest.Arch.n_regs - 1 do
        Printf.printf " r%d=0x%Lx" r (Vg_core.Threads.get_reg s.threads th r)
      done;
      print_newline ())
    (List.sort
       (fun (a : Vg_core.Threads.thread) b -> compare a.tid b.tid)
       s.threads.threads)

let with_divergence_report f =
  try f ()
  with Replay.Divergence _ as e ->
    Printf.eprintf "==vgrewind== DIVERGED: %s\n" (Printexc.to_string e);
    exit 1

(* --- replay ----------------------------------------------------------- *)

let replay quiet file =
  let s, _p = session_of_log file in
  if not quiet then begin
    s.echo_output <- true;
    s.kern.stdout_echo <- true
  end;
  with_divergence_report (fun () ->
      let reason = Vg_core.Session.run s in
      match Vg_core.Session.replay_mismatches s with
      | [] ->
          Printf.eprintf
            "==vgrewind== replay verified: client %s, all digests match\n"
            (exit_str (Some reason));
          exit 0
      | ms ->
          List.iter
            (fun (k, want, got) ->
              Printf.eprintf
                "==vgrewind== DIGEST MISMATCH %s: recorded %s, replayed %s\n" k
                want got)
            ms;
          exit 1)

(* --- seek / back ------------------------------------------------------ *)

let seek snapshot_every cycle file =
  let s, _p = session_of_log ~snapshot_every file in
  with_divergence_report (fun () ->
      Vg_core.Session.seek s ~cycle;
      print_state s;
      exit 0)

let back snapshot_every insns file =
  let s, _p = session_of_log ~snapshot_every file in
  with_divergence_report (fun () ->
      (* run to the end of the recording, then step back *)
      Vg_core.Session.run_to s ~stop:(fun _ -> false);
      Printf.printf "==vgrewind== end of recording: %s\n"
        (exit_str s.exit_reason);
      Vg_core.Session.back s ~insns;
      print_state s;
      exit 0)

(* --- when ------------------------------------------------------------- *)

let when_ file =
  let s, p = session_of_log file in
  let log = p.Replay.p_log in
  let rows = ref [] in
  let add cycle msg = rows := (cycle, msg) :: !rows in
  (* chaos faults and signal deliveries come straight from the log *)
  let prev = ref (0, 0, 0, 0) in
  List.iter
    (fun ev ->
      match ev with
      | Replay.Ev_syscall se ->
          let pr, pe, ps, pm = !prev in
          let r, e, sh, m = se.Replay.se_counters in
          let name = Kernel.Num.name se.Replay.se_num in
          if r > pr then
            add se.Replay.se_cycle
              (Printf.sprintf "chaos: %s restarted (injected EINTR)" name);
          if e > pe then
            add se.Replay.se_cycle
              (Printf.sprintf "chaos: %s failed with injected errno (ret=%Ld)"
                 name se.Replay.se_ret);
          if sh > ps then
            add se.Replay.se_cycle
              (Printf.sprintf "chaos: %s returned short (ret=%Ld)" name
                 se.Replay.se_ret);
          if m > pm then
            add se.Replay.se_cycle
              (Printf.sprintf "chaos: %s mapping denied, retried" name);
          prev := (r, e, sh, m)
      | Replay.Ev_signal { sg_tid; sg_signo; sg_cycle; _ } ->
          add sg_cycle
            (Printf.sprintf "signal %d delivered to thread %d" sg_signo sg_tid)
      | Replay.Ev_flush { fl_cycle; _ } -> add fl_cycle "chaos: code cache flushed"
      | Replay.Ev_stall { st_cycles; st_cycle; _ } ->
          add st_cycle
            (Printf.sprintf "chaos: core handoff stalled %d cycles" st_cycles)
      | Replay.Ev_retire { rt_cycle; _ } ->
          add rt_cycle "chaos: translation retirement delayed one epoch"
      | Replay.Ev_condemn { cd_phase; cd_pc; cd_cycle; _ } ->
          add cd_cycle
            (Printf.sprintf
               "chaos: translation of 0x%Lx condemned at jit phase %d" cd_pc
               cd_phase))
    log.Replay.l_events;
  (* tool errors need the re-execution: hook the error sink and note the
     wall cycle each new error first fires at *)
  s.errors.Vg_core.Errors.show_immediately <- false;
  s.errors.Vg_core.Errors.on_record <-
    Some
      (fun (e : Vg_core.Errors.error) ->
        add (Vg_core.Session.wall_cycles s)
          (Printf.sprintf "error %s: %s" e.Vg_core.Errors.err_kind
             e.Vg_core.Errors.err_msg));
  with_divergence_report (fun () ->
      let _ = Vg_core.Session.run s in
      let rows =
        List.stable_sort (fun (a, _) (b, _) -> Int64.compare a b) (List.rev !rows)
      in
      if rows = [] then print_endline "==vgrewind== nothing fired: no errors, no faults"
      else begin
        Printf.printf "==vgrewind== %d events (cycle: what)\n" (List.length rows);
        List.iter (fun (c, m) -> Printf.printf "%12Ld  %s\n" c m) rows
      end;
      exit 0)

(* --- command line ----------------------------------------------------- *)

let log_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"LOG" ~doc:"Recording (.vgrw) to load.")

let snapshot_every_arg =
  Arg.(
    value
    & opt int64 50_000L
    & info [ "snapshot-every" ] ~docv:"N"
        ~doc:"Checkpoint cadence in wall cycles while replaying (time travel restores the nearest checkpoint and re-executes).")

let record_cmd =
  let tool =
    Arg.(value & opt string "memcheck" & info [ "tool" ] ~doc:"Tool plug-in to record under.")
  in
  let cores =
    Arg.(value & opt int 1 & info [ "cores" ] ~docv:"N" ~doc:"Simulated cores.")
  in
  let chaos_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-seed" ] ~docv:"SEED"
          ~doc:"Record under a chaos fault schedule with this seed; the injected faults land in the log and replay exactly.")
  in
  let chaos_mode =
    Arg.(
      value & opt string "hostile"
      & info [ "chaos-mode" ] ~doc:"Chaos schedule: idempotent|hostile|sharded.")
  in
  let workload =
    Arg.(
      value
      & opt (some string) None
      & info [ "workload" ] ~docv:"NAME"
          ~doc:"Record a named corpus workload instead of a source file.")
  in
  let scale =
    Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Workload scale factor.")
  in
  let stdin_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "stdin" ] ~doc:"File fed to the client as standard input.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Log file to write (default: PROGRAM.vgrw).")
  in
  let path = Arg.(value & pos 0 (some string) None & info [] ~docv:"PROGRAM") in
  Cmd.v
    (Cmd.info "record" ~doc:"run a program and record a replay log")
    Term.(
      const record $ tool $ cores $ chaos_seed $ chaos_mode $ workload $ scale
      $ stdin_file $ out $ path)

let replay_cmd =
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress client and tool output.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"re-execute a recording and verify it is bit-identical")
    Term.(const replay $ quiet $ log_arg)

let seek_cmd =
  let cycle =
    Arg.(
      required
      & opt (some int64) None
      & info [ "cycle" ] ~docv:"N" ~doc:"Wall cycle to travel to.")
  in
  Cmd.v
    (Cmd.info "seek" ~doc:"time-travel a recording to a wall cycle and show thread state")
    Term.(const seek $ snapshot_every_arg $ cycle $ log_arg)

let back_cmd =
  let insns =
    Arg.(
      value & opt int64 1L
      & info [ "insns" ] ~docv:"K" ~doc:"Host instructions to step backwards from the end.")
  in
  Cmd.v
    (Cmd.info "back"
       ~doc:"replay to the end, then step backwards K instructions")
    Term.(const back $ snapshot_every_arg $ insns $ log_arg)

let when_cmd =
  Cmd.v
    (Cmd.info "when"
       ~doc:"list the cycles at which tool errors and chaos faults fired")
    Term.(const when_ $ log_arg)

let cmd =
  Cmd.group
    (Cmd.info "vgrewind"
       ~doc:"record/replay and time-travel debugging for VG32 programs")
    [ record_cmd; replay_cmd; seek_cmd; back_cmd; when_cmd ]

let () = exit (Cmd.eval cmd)
