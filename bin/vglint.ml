(** [vglint]: the standalone JIT-verifier driver.

    {v
    vglint mutate    # seeded-miscompile validation of the verifiers
    vglint corpus    # every tool x workload corpus, verification on
    vglint           # both (CI entry point); exit 0 iff everything holds
    v}

    [mutate] compiles a guest corpus, injects seeded miscompile bugs
    (dropped PUT, lost register assignment, wrong shift width, stale
    label, corrupted byte, ...) into individual phase results and checks
    each is caught at the earliest boundary that can see it.

    [corpus] runs every in-tree tool over a workload corpus with
    [verify_jit] enabled, so all eight phase boundaries plus the
    tool-instrumentation lints run on every translation; any verifier
    error (a false positive, since these tools are correct) fails the
    run.  The corpus runs twice per cell — tiered (quick tier, hotness
    promotion, superblocks) and tier0-only (quick translations never
    promoted) — so the verifiers are exercised over every pipeline shape
    the session can produce. *)

let tools : (string * Vg_core.Tool.t) list =
  [
    ("nulgrind", Vg_core.Tool.nulgrind);
    ("memcheck", Tools.Memcheck.tool);
    ("memcheck-origins", Tools.Memcheck.tool_origins);
    ("cachegrind", Tools.Cachegrind.tool);
    ("massif", Tools.Massif.tool);
    ("lackey", Tools.Lackey.tool);
    ("taintgrind", Tools.Taintgrind.tool);
    ("annelid", Tools.Annelid.tool);
    ("redux", Tools.Redux.tool);
    ("icnti", Tools.Icnt.icnt_inline);
    ("icntc", Tools.Icnt.icnt_call);
  ]

let corpus_workloads = [ "gcc"; "mcf"; "perlbmk"; "vortex" ]

let run_mutate () : bool =
  print_endline "== vglint: seeded-mutation validation ==";
  let outcomes = Verify.Mutate.run () in
  List.iter (fun o -> Fmt.pr "%a@." Verify.Mutate.pp_outcome o) outcomes;
  let ok = Verify.Mutate.all_caught outcomes in
  let caught = List.length (List.filter (fun o -> o.Verify.Mutate.o_caught) outcomes) in
  Fmt.pr "%d/%d seeded bugs caught at their earliest boundary@." caught
    (List.length outcomes);
  ok

(* aggressive tiering knobs so the short corpus runs actually exercise
   promotion and superblock formation under verification *)
let corpus_modes : (string * Vg_core.Session.options) list =
  [
    ( "tiered",
      {
        Vg_core.Session.default_options with
        max_blocks = 50_000L;
        promote_threshold = 8;
        trace_threshold = 64;
        scan = true;
      } );
    ( "tier0-only",
      {
        Vg_core.Session.default_options with
        max_blocks = 50_000L;
        promote_threshold = 0;
        superblocks = false;
        scan = true;
      } );
  ]

let run_corpus () : bool =
  print_endline "== vglint: tool x workload corpus, verification on ==";
  let failed = ref 0 in
  List.iter
    (fun wname ->
      let w =
        match Workloads.find wname with
        | Some w -> w
        | None -> failwith ("unknown workload " ^ wname)
      in
      let img = Workloads.compile ~scale:1 w in
      (* vgscan lint classes over the benign workload: any finding is a
         false positive and fails the corpus *)
      let scan_findings = Static.Lint.run (Static.Cfg.scan img) in
      if scan_findings <> [] then begin
        failed := !failed + List.length scan_findings;
        List.iter
          (fun (f : Static.Lint.finding) ->
            Fmt.pr "%-10s vgscan FALSE POSITIVE [%s] 0x%Lx: %s@." wname
              f.Static.Lint.f_class f.Static.Lint.f_addr
              f.Static.Lint.f_msg)
          scan_findings
      end
      else Fmt.pr "%-10s vgscan           clean (%s)@." wname
             (String.concat "|" Static.Lint.classes);
      List.iter
        (fun (tname, tool) ->
          (* fuel (max_blocks) keeps slow tools (redux, memcheck-origins)
             from dominating; verification happens per translation *)
          List.iter
            (fun (mname, options) ->
              let s = Vg_core.Session.create ~options ~tool img in
              try
                let (_ : Vg_core.Session.exit_reason) =
                  Vg_core.Session.run s
                in
                let st = Vg_core.Session.stats s in
                (* soundness oracle: every executed block start must be
                   statically known (corpus modes run with [scan]) *)
                if st.st_cfg_miss <> 0 then begin
                  incr failed;
                  Fmt.pr "%-10s %-16s %-10s CFG MISS: %d of %d@." wname
                    tname mname st.st_cfg_miss st.st_cfg_checked
                end;
                Fmt.pr
                  "%-10s %-16s %-10s ok (%d translations, %d checks, %d \
                   oracle)@."
                  wname tname mname st.st_translations st.st_verify_checks
                  st.st_cfg_checked
              with Verify.Verr.Error _ as e ->
                incr failed;
                Fmt.pr "%-10s %-16s %-10s VERIFY FAILED: %s@." wname tname
                  mname
                  (Verify.Verr.to_string e))
            corpus_modes)
        tools)
    corpus_workloads;
  !failed = 0

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let ok =
    match mode with
    | "mutate" -> run_mutate ()
    | "corpus" -> run_corpus ()
    | "all" ->
        let a = run_mutate () in
        let b = run_corpus () in
        a && b
    | m ->
        prerr_endline ("vglint: unknown mode '" ^ m ^ "' (mutate|corpus)");
        exit 2
  in
  if not ok then begin
    prerr_endline "vglint: FAILED";
    exit 1
  end;
  print_endline "vglint: all checks hold"
