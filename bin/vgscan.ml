(** [vgscan]: the standalone static guest analyser.

    {v
    vgscan file.s [--json] [--blocks]   # scan one assembly image
    vgscan workload NAME [--json]       # scan a bench workload
    vgscan selfcheck                    # CI gate over all bench workloads
    vgscan hostile [--update] [--golden PATH]
    v}

    [selfcheck] scans every bench workload twice asserting bit-identical
    JSON, asserts zero findings on the benign corpus, then runs each
    workload under the session with [--scan --aot-seed] asserting a zero
    [static.cfg_miss] soundness-oracle count and client output identical
    to an unseeded run.

    [hostile] scans the hand-written hostile fixture images, asserts
    each produces its expected finding class, and compares the combined
    report against the committed golden ([--update] rewrites it). *)

let default_golden = "test/vgscan_hostile_golden.json"

let scan_report ?(blocks = false) (img : Guest.Image.t) : string =
  let cfg = Static.Cfg.scan img in
  let findings = Static.Lint.run cfg in
  Static.Report.to_json ~blocks cfg findings

let print_one (img : Guest.Image.t) ~(json : bool) ~(blocks : bool) : bool =
  let cfg = Static.Cfg.scan img in
  let findings = Static.Lint.run cfg in
  if json then print_string (Static.Report.to_json ~blocks cfg findings)
  else print_string (Static.Report.human cfg findings);
  findings = []

(* one session run, fuel-capped so selfcheck stays fast; returns
   (stats, client stdout) *)
let run_session ~(scan : bool) ~(aot_seed : bool)
    (img : Guest.Image.t) : Vg_core.Session.stats * string =
  let options =
    {
      Vg_core.Session.default_options with
      max_blocks = 50_000L;
      scan;
      aot_seed;
    }
  in
  let s = Vg_core.Session.create ~options ~tool:Vg_core.Tool.nulgrind img in
  let (_ : Vg_core.Session.exit_reason) = Vg_core.Session.run s in
  (Vg_core.Session.stats s, Vg_core.Session.client_stdout s)

let run_selfcheck () : bool =
  print_endline "== vgscan: benign-corpus selfcheck ==";
  let failed = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        incr failed;
        print_endline ("  FAIL " ^ m))
      fmt
  in
  List.iter
    (fun (w : Workloads.workload) ->
      let img = Workloads.compile ~scale:1 w in
      (* determinism: two scans must serialise bit-identically *)
      let j1 = scan_report img and j2 = scan_report img in
      if j1 <> j2 then fail "%s: scan output differs across runs" w.w_name;
      (* benign corpus: zero findings *)
      let cfg = Static.Cfg.scan img in
      let findings = Static.Lint.run cfg in
      if findings <> [] then
        List.iter
          (fun (f : Static.Lint.finding) ->
            fail "%s: benign finding [%s] at 0x%Lx: %s" w.w_name
              f.Static.Lint.f_class f.Static.Lint.f_addr f.Static.Lint.f_msg)
          findings;
      (* soundness oracle + AOT transparency *)
      let st_seed, out_seed = run_session ~scan:true ~aot_seed:true img in
      let _, out_plain = run_session ~scan:false ~aot_seed:false img in
      if st_seed.st_cfg_miss <> 0 then
        fail "%s: static.cfg_miss = %d (checked %d)" w.w_name
          st_seed.st_cfg_miss st_seed.st_cfg_checked;
      if st_seed.st_cfg_checked = 0 then
        fail "%s: oracle checked no blocks" w.w_name;
      if st_seed.st_aot_seeded = 0 then
        fail "%s: AOT seeded no blocks" w.w_name;
      if out_seed <> out_plain then
        fail "%s: AOT-seeded output differs from unseeded run" w.w_name;
      Printf.printf
        "%-10s ok (%d insns, %d blocks, %d seeded, %d checked, 0 miss)\n%!"
        w.w_name cfg.Static.Cfg.n_insns
        (List.length cfg.Static.Cfg.blocks)
        st_seed.st_aot_seeded st_seed.st_cfg_checked)
    Workloads.all;
  !failed = 0

let hostile_report () : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  List.iteri
    (fun i fx ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf "\"%s\": " fx.Static.Hostile.fx_name);
      Buffer.add_string b
        (scan_report ~blocks:true fx.Static.Hostile.fx_image))
    (Static.Hostile.all ());
  Buffer.add_string b "}\n";
  Buffer.contents b

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_hostile ~(update : bool) ~(golden : string) : bool =
  print_endline "== vgscan: hostile fixture corpus ==";
  let ok = ref true in
  (* every fixture must produce its expected finding classes *)
  List.iter
    (fun fx ->
      let cfg = Static.Cfg.scan fx.Static.Hostile.fx_image in
      let classes = Static.Lint.classes_of (Static.Lint.run cfg) in
      List.iter
        (fun want ->
          if not (List.mem want classes) then begin
            ok := false;
            Printf.printf "  FAIL %s: expected class '%s', got [%s]\n"
              fx.Static.Hostile.fx_name want
              (String.concat ", " classes)
          end)
        fx.Static.Hostile.fx_expect;
      Printf.printf "%-16s [%s]\n%!" fx.Static.Hostile.fx_name
        (String.concat ", " classes))
    (Static.Hostile.all ());
  let report = hostile_report () in
  if update then begin
    let oc = open_out_bin golden in
    output_string oc report;
    close_out oc;
    Printf.printf "wrote %s (%d bytes)\n" golden (String.length report)
  end
  else if not (Sys.file_exists golden) then begin
    ok := false;
    Printf.printf "  FAIL golden %s missing (run with --update)\n" golden
  end
  else if read_file golden <> report then begin
    ok := false;
    Printf.printf "  FAIL report differs from golden %s\n" golden
  end
  else print_endline "golden match";
  !ok

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let flag f = List.mem f args in
  let value f default =
    let rec go = function
      | a :: v :: _ when a = f -> v
      | _ :: rest -> go rest
      | [] -> default
    in
    go args
  in
  let positional =
    let rec go = function
      | [] -> []
      | a :: v :: rest when a = "--golden" -> ignore v; go rest
      | a :: rest when String.length a > 1 && a.[0] = '-' -> go rest
      | a :: rest -> a :: go rest
    in
    go args
  in
  let ok =
    match positional with
    | [ "selfcheck" ] -> run_selfcheck ()
    | [ "hostile" ] ->
        run_hostile ~update:(flag "--update")
          ~golden:(value "--golden" default_golden)
    | [ "workload"; name ] -> (
        match Workloads.find name with
        | Some w ->
            print_one
              (Workloads.compile ~scale:1 w)
              ~json:(flag "--json") ~blocks:(flag "--blocks")
        | None ->
            prerr_endline ("vgscan: unknown workload " ^ name);
            exit 2)
    | [ file ] when Sys.file_exists file ->
        print_one
          (Guest.Asm.assemble (read_file file))
          ~json:(flag "--json") ~blocks:(flag "--blocks")
    | _ ->
        prerr_endline
          "usage: vgscan <file.s>|workload NAME [--json] [--blocks]\n\
          \       vgscan selfcheck\n\
          \       vgscan hostile [--update] [--golden PATH]";
        exit 2
  in
  if not ok then begin
    prerr_endline "vgscan: FAILED";
    exit 1
  end
