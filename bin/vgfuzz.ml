(** [vgfuzz]: differential guest fuzzing with replay-exact shrinking.

    {v
    vgfuzz [--seeds 1,2,3] [--count 2000] [--out DIR]   # fuzz sweep (CI entry)
    vgfuzz corpus [DIR]            # replay the committed regression corpus
    vgfuzz hostile                 # hostile suite x all tools
    vgfuzz one --seed N --size K [--faulty]   # run one program, show outcomes
    v}

    The sweep generates [--count] programs split across the base seeds
    (program [i] of base seed [s] is generated from seed
    [s * 1_000_003 + i]; every 10th program may fault on purpose) and
    runs each through the five-way differential oracle: native
    interpreter, session at 1 and 2 cores, session with AOT seeding,
    and session under an idempotent chaos schedule.  Any divergence is
    shrunk by deterministic re-generation and written to [--out] as a
    minimized [.s] repro (CI uploads that directory as an artifact). *)

let out_dir = ref "vgfuzz-repros"

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let ensure_dir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755

(* --- fuzz sweep ------------------------------------------------------ *)

let program_seed base i = (base * 1_000_003) + i
let program_size i = 1 + (i mod 20)
let program_faulty i = i mod 10 = 9

let fuzz_sweep ~(seeds : int list) ~(count : int) : int =
  let nseeds = max 1 (List.length seeds) in
  let per = (count + nseeds - 1) / nseeds in
  let ran = ref 0 and failed = ref 0 in
  List.iter
    (fun base ->
      for i = 0 to per - 1 do
        if !ran < count then begin
          incr ran;
          let seed = program_seed base i in
          let size = program_size i in
          let faulty = program_faulty i in
          let divs =
            try Fuzz.Diff.check (Fuzz.Gen.image ~faulty ~seed ~size ())
            with exn ->
              [ { Fuzz.Diff.dv_engine = "driver"; dv_field = "exception";
                  dv_ref = "no exception"; dv_got = Printexc.to_string exn } ]
          in
          if divs <> [] then begin
            incr failed;
            Printf.printf "vgfuzz: FAIL base=%d i=%d seed=%d size=%d%s\n" base
              i seed size (if faulty then " faulty" else "");
            List.iter
              (fun d -> print_endline ("  " ^ Fuzz.Diff.pp_divergence d))
              divs;
            (* shrink by re-generation and write the minimized repro *)
            let check ~seed ~size =
              try Fuzz.Diff.check (Fuzz.Gen.image ~faulty ~seed ~size ())
              with exn ->
                [ { Fuzz.Diff.dv_engine = "driver"; dv_field = "exception";
                    dv_ref = "no exception";
                    dv_got = Printexc.to_string exn } ]
            in
            let r = Fuzz.Shrink.shrink ~check ~faulty ~seed ~size () in
            ensure_dir !out_dir;
            let path =
              Filename.concat !out_dir
                (Printf.sprintf "%s%s.s"
                   (Fuzz.Gen.name ~seed:r.Fuzz.Shrink.r_seed
                      ~size:r.Fuzz.Shrink.r_size)
                   (if faulty then "_faulty" else ""))
            in
            write_file path (Fuzz.Shrink.repro_source r);
            Printf.printf "  minimized to size %d -> %s\n"
              r.Fuzz.Shrink.r_size path
          end
        end
      done)
    seeds;
  Printf.printf "vgfuzz: %d programs, %d failing\n" !ran !failed;
  if !failed > 0 then begin
    print_endline "vgfuzz: FAILED";
    1
  end
  else begin
    print_endline "vgfuzz: OK";
    0
  end

(* --- corpus replay --------------------------------------------------- *)

let corpus_replay (dir : string) : int =
  if not (Sys.file_exists dir) then begin
    Printf.printf "vgfuzz: no corpus directory %s\n" dir;
    1
  end
  else begin
    let entries =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".s")
      |> List.sort compare
    in
    let failed = ref 0 in
    List.iter
      (fun f ->
        let path = Filename.concat dir f in
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let src = really_input_string ic n in
        close_in ic;
        let divs = Fuzz.Diff.check (Guest.Asm.assemble src) in
        if divs = [] then Printf.printf "vgfuzz: corpus %-28s OK\n" f
        else begin
          incr failed;
          Printf.printf "vgfuzz: corpus %-28s FAIL\n" f;
          List.iter
            (fun d -> print_endline ("  " ^ Fuzz.Diff.pp_divergence d))
            divs
        end)
      entries;
    Printf.printf "vgfuzz: corpus: %d entries, %d failing\n"
      (List.length entries) !failed;
    if !failed > 0 || entries = [] then 1 else 0
  end

(* --- hostile suite --------------------------------------------------- *)

let tools : (string * Vg_core.Tool.t) list =
  [
    ("nulgrind", Vg_core.Tool.nulgrind);
    ("memcheck", Tools.Memcheck.tool);
    ("memcheck-origins", Tools.Memcheck.tool_origins);
    ("cachegrind", Tools.Cachegrind.tool);
    ("massif", Tools.Massif.tool);
    ("lackey", Tools.Lackey.tool);
    ("taintgrind", Tools.Taintgrind.tool);
    ("annelid", Tools.Annelid.tool);
    ("redux", Tools.Redux.tool);
    ("icnti", Tools.Icnt.icnt_inline);
    ("icntc", Tools.Icnt.icnt_call);
  ]

let hostile_suite () : int =
  let failed = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        incr failed;
        print_endline ("vgfuzz: hostile FAIL: " ^ s))
      fmt
  in
  List.iter
    (fun (g : Fuzz.Hostile_guests.guest) ->
      let img = Fuzz.Hostile_guests.image g in
      (* native architectural reference *)
      (let t = Native.create img in
       match Native.run ~max_insns:10_000_000L t with
       | Native.Exited n when n = g.g_exit -> ()
       | r ->
           fail "%s native: expected exit %d, got %s" g.g_name g.g_exit
             (match r with
             | Native.Exited n -> Printf.sprintf "exit %d" n
             | Native.Fatal_signal s -> Printf.sprintf "signal %d" s
             | Native.Out_of_fuel -> "fuel"));
      List.iter
        (fun (tname, tool) ->
          let run ~chaos () =
            let options =
              {
                Vg_core.Session.default_options with
                max_blocks = 200_000L;
                verify_jit = false;
                transtab_capacity = 256;
                chaos;
              }
            in
            let s = Vg_core.Session.create ~options ~tool img in
            let er = Vg_core.Session.run s in
            ( er,
              Vg_core.Session.client_stdout s,
              Vg_core.Session.tool_output s )
          in
          match run ~chaos:None () with
          | exception exn ->
              fail "%s under %s: uncaught %s" g.g_name tname
                (Printexc.to_string exn)
          | (er1, out1, tool1) -> (
              (match er1 with
              | Vg_core.Session.Exited n when n = g.g_exit -> ()
              | r ->
                  fail "%s under %s: expected exit %d, got %s" g.g_name tname
                    g.g_exit
                    (match r with
                    | Vg_core.Session.Exited n -> Printf.sprintf "exit %d" n
                    | Vg_core.Session.Fatal_signal s ->
                        Printf.sprintf "signal %d" s
                    | Vg_core.Session.Out_of_fuel -> "fuel"));
              (* deterministic reports: a second identical run must
                 reproduce stdout and the tool report bit-for-bit *)
              (match run ~chaos:None () with
              | er2, out2, tool2 ->
                  if (er1, out1, tool1) <> (er2, out2, tool2) then
                    fail "%s under %s: non-deterministic report" g.g_name
                      tname
              | exception exn ->
                  fail "%s under %s (rerun): uncaught %s" g.g_name tname
                    (Printexc.to_string exn));
              (* graceful degradation: an idempotent chaos schedule must
                 preserve the architectural result *)
              match
                run
                  ~chaos:(Some (Chaos.create (Chaos.idempotent ~seed:3)))
                  ()
              with
              | exception exn ->
                  fail "%s under %s (chaos): uncaught %s" g.g_name tname
                    (Printexc.to_string exn)
              | er3, out3, _tool3 -> (
                  if out3 <> out1 then
                    fail "%s under %s (chaos): stdout changed" g.g_name tname;
                  match er3 with
                  | Vg_core.Session.Exited n when n = g.g_exit -> ()
                  | _ ->
                      fail "%s under %s (chaos): wrong exit" g.g_name tname)))
        tools;
      Printf.printf "vgfuzz: hostile %-12s checked under %d tools\n" g.g_name
        (List.length tools))
    (Fuzz.Hostile_guests.all ());
  if !failed > 0 then begin
    print_endline "vgfuzz: FAILED";
    1
  end
  else begin
    print_endline "vgfuzz: OK";
    0
  end

(* --- one program (debug) --------------------------------------------- *)

let run_one ~seed ~size ~faulty : int =
  print_endline (Fuzz.Gen.source ~faulty ~seed ~size ());
  let divs = Fuzz.Diff.check (Fuzz.Gen.image ~faulty ~seed ~size ()) in
  if divs = [] then begin
    print_endline "vgfuzz: agree";
    0
  end
  else begin
    List.iter (fun d -> print_endline (Fuzz.Diff.pp_divergence d)) divs;
    1
  end

(* --- argv ------------------------------------------------------------ *)

let parse_seeds s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")
  |> List.map int_of_string

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let seeds = ref [ 1; 2; 3 ] in
  let count = ref 300 in
  let seed = ref 1 in
  let size = ref 8 in
  let faulty = ref false in
  let mode = ref `Fuzz in
  let rec go = function
    | [] -> ()
    | "corpus" :: rest ->
        mode := `Corpus "test/fuzz_corpus";
        (match rest with
        | d :: rest' when not (String.length d > 1 && d.[0] = '-') ->
            mode := `Corpus d;
            go rest'
        | _ -> go rest)
    | "hostile" :: rest ->
        mode := `Hostile;
        go rest
    | "one" :: rest ->
        mode := `One;
        go rest
    | "--seeds" :: v :: rest ->
        seeds := parse_seeds v;
        go rest
    | "--count" :: v :: rest ->
        count := int_of_string v;
        go rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        go rest
    | "--size" :: v :: rest ->
        size := int_of_string v;
        go rest
    | "--faulty" :: rest ->
        faulty := true;
        go rest
    | "--out" :: v :: rest ->
        out_dir := v;
        go rest
    | a :: _ ->
        prerr_endline ("vgfuzz: unknown argument " ^ a);
        exit 2
  in
  go args;
  let code =
    match !mode with
    | `Fuzz -> fuzz_sweep ~seeds:!seeds ~count:!count
    | `Corpus d -> corpus_replay d
    | `Hostile -> hostile_suite ()
    | `One -> run_one ~seed:!seed ~size:!size ~faulty:!faulty
  in
  exit code
