(** [vgchaos]: the deterministic fault-injection driver.

    {v
    vgchaos sweep [--seeds 1,2,3]     # CI entry: corpus x tools x seeds
    vgchaos --seed N [--schedule idempotent|hostile]
            [--tool NAME] [--workload NAME]   # one cell, fault log shown
    v}

    Every cell of the sweep runs one (workload, tool, seed) triple five
    times and asserts the robustness contract:

    - {b no uncaught exceptions}: the session survives every injected
      fault (transient syscall errors, short I/O, mapping denials,
      forced translation failures at any of the eight JIT phases,
      forced code-cache flushes) by recovering, not by dying;
    - {b idempotent-schedule equivalence}: under a schedule whose faults
      are all transparently recoverable (EINTR restarted, denials
      retried, translation failures interpreted, flushes retranslated),
      client stdout, exit status and tool output are bit-identical to
      the fault-free baseline — instrumentation stays sound through
      every degradation;
    - {b replay determinism}: re-running any schedule with the same seed
      reproduces the exact same fault log, outputs and counters. *)

let tools : (string * Vg_core.Tool.t) list =
  [
    ("nulgrind", Vg_core.Tool.nulgrind);
    ("memcheck", Tools.Memcheck.tool);
    ("memcheck-origins", Tools.Memcheck.tool_origins);
    ("cachegrind", Tools.Cachegrind.tool);
    ("massif", Tools.Massif.tool);
    ("lackey", Tools.Lackey.tool);
    ("taintgrind", Tools.Taintgrind.tool);
    ("annelid", Tools.Annelid.tool);
    ("redux", Tools.Redux.tool);
    ("icnti", Tools.Icnt.icnt_inline);
    ("icntc", Tools.Icnt.icnt_call);
  ]

let corpus_workloads = [ "gcc"; "mcf"; "perlbmk"; "vortex" ]

(* A syscall-heavy client, additional to the paper corpus: the SPEC-shaped
   workloads never call read/mmap directly, so this one exists to push the
   wrapper's EINTR-restart and mapping-retry paths during the sweep. *)
let io_src =
  {|
int main() {
  char buf[64];
  int fd = open("data.txt", 0);
  int total = 0;
  int n = read(fd, buf, 64);
  while (n > 0) {
    total = total + n;
    n = read(fd, buf, 64);
  }
  close(fd);
  int i;
  for (i = 0; i < 16; i = i + 1) {
    char *p = mmap(4096);
    if ((int)p > 0) {
      p[0] = 'x';
      p = mremap(p, 4096, 8192);
      if ((int)p > 0) { munmap(p, 8192); }
    }
  }
  print_str("io total=");
  print_int(total);
  print_str("\n");
  return 0;
}
|}

let images () : (string * Guest.Image.t) list =
  List.map
    (fun wname ->
      match Workloads.find wname with
      | Some w -> (wname, Workloads.compile ~scale:1 w)
      | None -> failwith ("unknown workload " ^ wname))
    corpus_workloads
  @ [ ("io", Minicc.Driver.compile io_src) ]

type outcome = {
  o_exit : string;
  o_stdout : string;
  o_tool : string;
  o_log : string list;  (** chaos fault log (empty for baselines) *)
  o_digest : string;  (** counters that must replay bit-identically *)
  o_fallbacks : int;
  o_faults : int;
}

let exit_str = function
  | Vg_core.Session.Exited n -> Printf.sprintf "exit %d" n
  | Vg_core.Session.Fatal_signal n -> Printf.sprintf "fatal signal %d" n
  | Vg_core.Session.Out_of_fuel -> "out of fuel"

(* Trace artifacts: structured event dumps written next to the sweep for
   post-mortem (and uploaded by CI when a cell fails). *)
let trace_dir = "vgchaos-traces"

let ensure_dir_of (prefix : string) =
  let dir = Filename.dirname prefix in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

(* [trace_to]: record the session's structured events and write them to
   <prefix>.jsonl + <prefix>.chrome.json (Chrome trace_event format). *)
let run_one ?trace_to ?(cores = 1) ~(tool : Vg_core.Tool.t)
    ~(img : Guest.Image.t) ~(chaos : Chaos.t option) () :
    (outcome, string) result =
  let options =
    {
      Vg_core.Session.default_options with
      cores;
      max_blocks = 10_000L;
      verify_jit = false;
      (* small code cache: chunk eviction happens under every schedule *)
      transtab_capacity = 256;
      chaos;
      trace_capacity = (if trace_to = None then 0 else 65536);
    }
  in
  let s = Vg_core.Session.create ~options ~tool img in
  Kernel.add_file s.kern "data.txt"
    (String.init 777 (fun i -> Char.chr (33 + (i mod 90))));
  let dump_trace () =
    match (trace_to, Vg_core.Session.trace s) with
    | Some prefix, Some tr ->
        ensure_dir_of prefix;
        write_file (prefix ^ ".jsonl") (Obs.Trace.to_jsonl tr);
        write_file (prefix ^ ".chrome.json") (Obs.Trace.to_chrome tr);
        Fmt.pr "  trace: %d events -> %s.jsonl, %s.chrome.json@."
          (Obs.Trace.total tr) prefix prefix
    | _ -> ()
  in
  match Vg_core.Session.run s with
  | exception e ->
      dump_trace ();
      Error (Printexc.to_string e)
  | reason ->
      dump_trace ();
      let st = Vg_core.Session.stats s in
      Ok
        {
          o_exit = exit_str reason;
          o_stdout = Vg_core.Session.client_stdout s;
          o_tool = Vg_core.Session.tool_output s;
          o_log = (match chaos with Some c -> Chaos.log_lines c | None -> []);
          o_digest =
            Printf.sprintf
              "blocks=%Ld translations=%d fallbacks=%d uninstr=%d \
               flushes=%d restarts=%d errnos=%d short=%d mapretries=%d \
               cycles=%Ld"
              st.st_blocks st.st_translations st.st_interp_fallbacks
              st.st_uninstrumented_steps st.st_chaos_flushes
              st.st_syscall_restarts st.st_injected_errnos st.st_short_io
              st.st_map_retries st.st_total_cycles;
          o_fallbacks = st.st_interp_fallbacks;
          o_faults = (match chaos with Some c -> Chaos.n_injected c | None -> 0);
        }

(* ------------------------------------------------------------------ *)
(* The sweep                                                            *)
(* ------------------------------------------------------------------ *)

let failures = ref 0

let fail cell what = incr failures; Fmt.pr "%s FAIL: %s@." cell what

let expect cell what cond = if not cond then fail cell what

let expect_eq cell what a b =
  if a <> b then
    fail cell (Printf.sprintf "%s diverged:\n  --- %S\n  +++ %S" what a b)

let sanitize cell =
  String.map (fun c -> if c = ' ' then '_' else c) cell

let rec run_cell ~cell ~tool ~img ~seed : unit =
  let failures0 = !failures in
  run_cell_inner ~cell ~tool ~img ~seed;
  (* a failed cell gets a post-mortem: replay both schedules with the
     structured trace enabled and keep the artifacts for CI upload *)
  if !failures > failures0 then begin
    Fmt.pr "%s: replaying with --trace for post-mortem@." cell;
    List.iter
      (fun (sched, cfg) ->
        ignore
          (run_one
             ~trace_to:
               (Filename.concat trace_dir (sanitize cell ^ "-" ^ sched))
             ~tool ~img
             ~chaos:(Some (Chaos.create cfg))
             ()))
      [ ("idempotent", Chaos.idempotent ~seed); ("hostile", Chaos.hostile ~seed) ]
  end

and run_cell_inner ~cell ~tool ~img ~seed : unit =
  match run_one ~tool ~img ~chaos:None () with
  | Error e -> fail cell ("baseline raised " ^ e)
  | Ok base -> (
      let chaos_run cfg =
        run_one ~tool ~img ~chaos:(Some (Chaos.create cfg)) ()
      in
      (* 1. idempotent schedule: must be invisible in all outputs *)
      match chaos_run (Chaos.idempotent ~seed) with
      | Error e -> fail cell ("idempotent schedule raised " ^ e)
      | Ok idem -> (
          expect_eq cell "idempotent exit" base.o_exit idem.o_exit;
          expect_eq cell "idempotent client stdout" base.o_stdout idem.o_stdout;
          expect_eq cell "idempotent tool output" base.o_tool idem.o_tool;
          (* 2. replay: same seed => bit-identical everything *)
          match chaos_run (Chaos.idempotent ~seed) with
          | Error e -> fail cell ("idempotent replay raised " ^ e)
          | Ok idem' -> (
              expect cell "idempotent replay fault log"
                (idem.o_log = idem'.o_log);
              expect_eq cell "idempotent replay digest" idem.o_digest
                idem'.o_digest;
              expect_eq cell "idempotent replay tool output" idem.o_tool
                idem'.o_tool;
              (* 3. hostile schedule: survival + replay, not equivalence *)
              match chaos_run (Chaos.hostile ~seed) with
              | Error e -> fail cell ("hostile schedule raised " ^ e)
              | Ok h1 -> (
                  match chaos_run (Chaos.hostile ~seed) with
                  | Error e -> fail cell ("hostile replay raised " ^ e)
                  | Ok h2 ->
                      expect cell "hostile replay fault log"
                        (h1.o_log = h2.o_log);
                      expect_eq cell "hostile replay digest" h1.o_digest
                        h2.o_digest;
                      expect_eq cell "hostile replay stdout" h1.o_stdout
                        h2.o_stdout;
                      expect_eq cell "hostile replay tool output" h1.o_tool
                        h2.o_tool;
                      Fmt.pr
                        "%s ok (idem %d faults, hostile %d faults, %d+%d \
                         interp fallbacks)@."
                        cell idem.o_faults h1.o_faults idem.o_fallbacks
                        h1.o_fallbacks))))

(* ------------------------------------------------------------------ *)
(* Sharded-scheduler cells: --cores 2 under the sharded schedule        *)
(* ------------------------------------------------------------------ *)

(* A 2-thread racy client (no locks: plain yields drive scheduling).
   Under --cores 2 the inter-core interleaving is cycle-driven, so chaos
   timing noise (handoff stalls, retire delays, fallback costs) shifts
   it — equivalence with the fault-free baseline is not the contract
   here.  Replay is: the same seed must reproduce the fault schedule
   injection-for-injection and every output bit. *)
let threaded_src =
  {|
int counter;
int done1;
int done2;
char stk1[4096];
char stk2[4096];

void worker1() {
  int i;
  for (i = 0; i < 100; i = i + 1) { counter = counter + 1; }
  done1 = 1;
  thread_exit();
}

void worker2() {
  int i;
  for (i = 0; i < 100; i = i + 1) { counter = counter + 1; }
  done2 = 1;
  thread_exit();
}

int main() {
  thread_create((int)&worker1, (int)stk1 + 4088, 0);
  thread_create((int)&worker2, (int)stk2 + 4088, 0);
  while (done1 == 0 || done2 == 0) { yield(); }
  print_str("counter=");
  print_int(counter);
  print_str("\n");
  return 0;
}
|}

let run_sharded_cells ~(seed : int) ~(mcf : Guest.Image.t) : unit =
  let img = Minicc.Driver.compile threaded_src in
  List.iter
    (fun (tname, tool) ->
      let cell = Printf.sprintf "threads  %-16s seed %d x2 cores" tname seed in
      let chaos_run () =
        run_one ~cores:2 ~tool ~img
          ~chaos:(Some (Chaos.create (Chaos.sharded ~seed)))
          ()
      in
      match run_one ~cores:2 ~tool ~img ~chaos:None () with
      | Error e -> fail cell ("cores=2 baseline raised " ^ e)
      | Ok _ -> (
          match (chaos_run (), chaos_run ()) with
          | Error e, _ -> fail cell ("sharded schedule raised " ^ e)
          | _, Error e -> fail cell ("sharded replay raised " ^ e)
          | Ok c1, Ok c2 ->
              expect cell "sharded replay fault log" (c1.o_log = c2.o_log);
              expect_eq cell "sharded replay digest" c1.o_digest c2.o_digest;
              expect_eq cell "sharded replay stdout" c1.o_stdout c2.o_stdout;
              expect_eq cell "sharded replay tool output" c1.o_tool c2.o_tool;
              Fmt.pr "%s ok (%d faults, replayed exactly)@." cell c1.o_faults))
    [
      ("nulgrind", Vg_core.Tool.nulgrind);
      ("lackey", Tools.Lackey.tool);
      ("memcheck", Tools.Memcheck.tool);
    ];
  (* a single-threaded client only ever steps core 0: even under the
     idempotent fault schedule, --cores 2 must be bit-identical to the
     --cores 1 fault-free baseline *)
  let cell = Printf.sprintf "mcf      %-16s seed %d x2 cores" "memcheck" seed in
  match
    ( run_one ~tool:Tools.Memcheck.tool ~img:mcf ~chaos:None (),
      run_one ~cores:2 ~tool:Tools.Memcheck.tool ~img:mcf
        ~chaos:(Some (Chaos.create (Chaos.idempotent ~seed)))
        () )
  with
  | Error e, _ -> fail cell ("baseline raised " ^ e)
  | _, Error e -> fail cell ("idempotent cores=2 raised " ^ e)
  | Ok base, Ok idem ->
      expect_eq cell "single-thread cores=2 exit" base.o_exit idem.o_exit;
      expect_eq cell "single-thread cores=2 stdout" base.o_stdout idem.o_stdout;
      expect_eq cell "single-thread cores=2 tool output" base.o_tool idem.o_tool;
      Fmt.pr "%s ok (single-threaded invariant under 2 cores)@." cell

let run_sweep (seeds : int list) : bool =
  Fmt.pr "== vgchaos: fault-injection sweep, seeds %s ==@."
    (String.concat "," (List.map string_of_int seeds));
  let imgs = images () in
  List.iter
    (fun seed ->
      List.iter
        (fun (wname, img) ->
          List.iter
            (fun (tname, tool) ->
              let cell = Printf.sprintf "%-8s %-16s seed %d" wname tname seed in
              run_cell ~cell ~tool ~img ~seed)
            tools)
        imgs;
      match List.assoc_opt "mcf" imgs with
      | Some mcf -> run_sharded_cells ~seed ~mcf
      | None -> ())
    seeds;
  (* always leave one exemplar structured trace behind (a Chrome-loadable
     record of a full fault schedule), even when every cell passes *)
  (match (List.assoc_opt "mcf" imgs, seeds) with
  | Some img, seed :: _ ->
      Fmt.pr "exemplar trace: mcf under memcheck, hostile schedule@.";
      ignore
        (run_one
           ~trace_to:(Filename.concat trace_dir "exemplar-hostile")
           ~tool:Tools.Memcheck.tool ~img
           ~chaos:(Some (Chaos.create (Chaos.hostile ~seed)))
           ())
  | _ -> ());
  !failures = 0

(* ------------------------------------------------------------------ *)
(* Single-cell mode (--seed): show the fault schedule                   *)
(* ------------------------------------------------------------------ *)

let run_single ~seed ~schedule ~tname ~wname ~cores ~trace_to : bool =
  let tool =
    match List.assoc_opt tname tools with
    | Some t -> t
    | None -> failwith ("unknown tool " ^ tname)
  in
  let img =
    match List.assoc_opt wname (images ()) with
    | Some i -> i
    | None -> failwith ("unknown workload " ^ wname)
  in
  let cfg =
    match schedule with
    | "idempotent" -> Chaos.idempotent ~seed
    | "hostile" -> Chaos.hostile ~seed
    | "sharded" -> Chaos.sharded ~seed
    | s -> failwith ("unknown schedule " ^ s ^ " (idempotent|hostile|sharded)")
  in
  let c = Chaos.create cfg in
  Fmt.pr "== vgchaos: %s under %s, %s schedule, seed %d, %d cores ==@." wname
    tname schedule seed cores;
  match run_one ?trace_to ~cores ~tool ~img ~chaos:(Some c) () with
  | Error e ->
      Fmt.pr "UNCAUGHT EXCEPTION: %s@." e;
      false
  | Ok o ->
      List.iter (Fmt.pr "%s@.") o.o_log;
      Fmt.pr "%s@." (Chaos.summary c);
      Fmt.pr "%s; %s@." o.o_exit o.o_digest;
      true

(* ------------------------------------------------------------------ *)

let () =
  let argv = Array.to_list Sys.argv in
  let rec flag name = function
    | [] -> None
    | f :: v :: _ when f = name -> Some v
    | _ :: rest -> flag name rest
  in
  let sweep_mode = List.mem "sweep" argv || flag "--seed" argv = None in
  let ok =
    if sweep_mode then
      let seeds =
        match flag "--seeds" argv with
        | None -> [ 1; 2; 3 ]
        | Some s -> List.map int_of_string (String.split_on_char ',' s)
      in
      run_sweep seeds
    else
      let seed = int_of_string (Option.get (flag "--seed" argv)) in
      let schedule =
        Option.value (flag "--schedule" argv) ~default:"idempotent"
      in
      let tname = Option.value (flag "--tool" argv) ~default:"memcheck" in
      let wname = Option.value (flag "--workload" argv) ~default:"mcf" in
      let cores =
        match flag "--cores" argv with None -> 1 | Some n -> int_of_string n
      in
      run_single ~seed ~schedule ~tname ~wname ~cores
        ~trace_to:(flag "--trace" argv)
  in
  if not ok then begin
    prerr_endline "vgchaos: FAILED";
    exit 1
  end;
  print_endline "vgchaos: all schedules survived and replayed exactly"
