(* The sharded scheduler: Threads.switch_to_next edge cases, timeslice
   fairness, cross-core determinism, and the multi-core cycle model. *)

let t name f = Alcotest.test_case name `Quick f
let i64 = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

(* ---- Threads.switch_to_next ----------------------------------------- *)

let test_switch_single_runnable () =
  let ts = Vg_core.Threads.create (Aspace.create ()) in
  ts.current.blocks_run <- 10L;
  Alcotest.(check bool) "switch succeeds" true
    (Vg_core.Threads.switch_to_next ts);
  Alcotest.(check int) "stays on the only thread" 1 ts.current.tid;
  (* a self-switch still starts a fresh timeslice *)
  Alcotest.check i64 "slice reset" 10L ts.current.slice_start;
  Alcotest.check i64 "self-switch is not a handoff" 0L ts.lock_handoffs

let test_switch_current_dead () =
  let ts = Vg_core.Threads.create (Aspace.create ()) in
  let t2 = Vg_core.Threads.spawn ts in
  ts.current.status <- Vg_core.Threads.Exited;
  Alcotest.(check bool) "switch succeeds" true
    (Vg_core.Threads.switch_to_next ts);
  Alcotest.(check int) "moves to the live thread" t2.tid ts.current.tid;
  Alcotest.check i64 "counts as a handoff" 1L ts.lock_handoffs

let test_switch_all_blocked () =
  let ts = Vg_core.Threads.create (Aspace.create ()) in
  let t2 = Vg_core.Threads.spawn ts in
  ts.current.status <- Vg_core.Threads.Exited;
  t2.status <- Vg_core.Threads.Blocked;
  Alcotest.(check bool) "no runnable thread" false
    (Vg_core.Threads.switch_to_next ts);
  Alcotest.(check int) "current unchanged" 1 ts.current.tid

let test_switch_round_robin () =
  let ts = Vg_core.Threads.create (Aspace.create ()) in
  let _ = Vg_core.Threads.spawn ts in
  let _ = Vg_core.Threads.spawn ts in
  let order = ref [] in
  for _ = 1 to 6 do
    Alcotest.(check bool) "switch" true (Vg_core.Threads.switch_to_next ts);
    order := ts.current.tid :: !order
  done;
  (* from tid 1, two full stable rotations *)
  Alcotest.(check (list int)) "rotation order" [ 2; 3; 1; 2; 3; 1 ]
    (List.rev !order)

let test_switch_skips_other_cores () =
  let ts = Vg_core.Threads.create ~n_cores:2 (Aspace.create ()) in
  let t2 = Vg_core.Threads.spawn ts in
  let t3 = Vg_core.Threads.spawn ts in
  Alcotest.(check int) "tid 2 pinned to core 1" 1 t2.core;
  Alcotest.(check int) "tid 3 pinned to core 0" 0 t3.core;
  (* rotation on core 0 never touches core 1's thread *)
  Alcotest.(check bool) "switch" true (Vg_core.Threads.switch_to_next ts);
  Alcotest.(check int) "skips the off-core thread" 3 ts.current.tid;
  Alcotest.(check bool) "switch" true (Vg_core.Threads.switch_to_next ts);
  Alcotest.(check int) "wraps within the core" 1 ts.current.tid;
  (* a core whose only thread blocks reports no runnable *)
  t2.status <- Vg_core.Threads.Blocked;
  Alcotest.(check bool) "core 1 exhausted" false
    (Vg_core.Threads.has_runnable ts ~core:1);
  Alcotest.(check bool) "core 0 still live" true
    (Vg_core.Threads.has_runnable ts ~core:0)

(* ---- timeslice fairness --------------------------------------------- *)

(* Main spins on a yield loop (1 block per slice) while a compute-bound
   worker runs; rotation must be charged against each thread's *own*
   block count, so the worker still gets full slices.  The handoff count
   is pinned: a scheduler change that re-introduces the global-modulo
   rotation (which could preempt a thread the moment it is scheduled)
   shows up as a different count. *)
let fairness_src =
  {|
        .text
        .global _start
_start: movi r0, 15           ; thread_create(worker, stack top, 0)
        movi r1, worker
        movi r2, wstack
        addi r2, 4092
        movi r3, 0
        syscall
        movi r6, 0            ; yield counter
mwait:  movi r0, 17           ; yield
        syscall
        inc r6
        movi r3, done_flag
        ldw r4, [r3]
        cmpi r4, 1
        jne mwait
        movi r0, 1
        mov r1, r6
        syscall
worker: movi r5, 2000
wloop:  dec r5
        jne wloop
        movi r3, done_flag
        movi r4, 1
        stw [r3], r4
        movi r0, 16           ; thread_exit
        syscall
        .data
done_flag: .word 0
        .align 4
wstack: .space 4096
|}

let run_sched ?(cores = 1) ?(timeslice = 100_000) ?(tool = Vg_core.Tool.nulgrind)
    src =
  let img = Guest.Asm.assemble src in
  let options =
    { Vg_core.Session.default_options with cores; timeslice_blocks = timeslice }
  in
  let s = Vg_core.Session.create ~options ~tool img in
  let reason = Vg_core.Session.run s in
  (s, reason)

let test_timeslice_fairness () =
  let s, reason = run_sched ~timeslice:64 fairness_src in
  let yields =
    match reason with
    | Vg_core.Session.Exited n -> n
    | _ -> Alcotest.fail "bad termination"
  in
  (* regression pins: the worker gets full 64-own-block slices, main
     yields exactly once per slice boundary it is handed.  A scheduler
     change that rotates on a global counter again shifts both counts. *)
  Alcotest.(check int) "main yielded once per worker slice" 16 yields;
  Alcotest.check i64 "handoff count pinned" 32L
    s.threads.Vg_core.Threads.lock_handoffs

let test_timeslice_exact_slices () =
  (* with the old global-modulo rotation the worker's effective slice
     depended on how many blocks *other* threads had already run; now a
     compute-bound thread always gets timeslice_blocks consecutive own
     blocks.  Doubling the slice must halve the handoffs. *)
  let s64, _ = run_sched ~timeslice:64 fairness_src in
  let s128, _ = run_sched ~timeslice:128 fairness_src in
  let h64 = s64.threads.Vg_core.Threads.lock_handoffs in
  let h128 = s128.threads.Vg_core.Threads.lock_handoffs in
  Alcotest.(check bool)
    (Printf.sprintf "handoffs scale with slice length (%Ld vs %Ld)" h64 h128)
    true
    (Int64.to_int h64 > Int64.to_int h128 * 3 / 2)

(* ---- cross-core determinism ----------------------------------------- *)

let compute_src =
  {|
int acc;

int mix(int x) { return x * 1103515245 + 12345; }

int main() {
  int i;
  acc = 1;
  for (i = 0; i < 500; i = i + 1) { acc = mix(acc) ^ (acc >> 7); }
  print_str("acc=");
  print_int(acc);
  print_str("\n");
  return 0;
}
|}

let run_minicc ?(cores = 1) ~tool src =
  let img = Minicc.Driver.compile src in
  let options = { Vg_core.Session.default_options with cores } in
  let s = Vg_core.Session.create ~options ~tool img in
  let reason = Vg_core.Session.run s in
  (s, reason)

let test_single_thread_cores_identical () =
  (* a single-threaded client only ever touches core 0: every --cores
     value must be bit-identical, down to the cycle counts *)
  List.iter
    (fun tool ->
      let s1, r1 = run_minicc ~cores:1 ~tool compute_src in
      let base_out = Vg_core.Session.client_stdout s1 in
      let base_tool = Vg_core.Session.tool_output s1 in
      let base = Vg_core.Session.stats s1 in
      List.iter
        (fun cores ->
          let s, r = run_minicc ~cores ~tool compute_src in
          Alcotest.(check bool)
            (Printf.sprintf "%s: same exit at %d cores" tool.Vg_core.Tool.name
               cores)
            true (r = r1);
          Alcotest.(check string)
            (Printf.sprintf "%s: stdout at %d cores" tool.Vg_core.Tool.name
               cores)
            base_out
            (Vg_core.Session.client_stdout s);
          Alcotest.(check string)
            (Printf.sprintf "%s: tool output at %d cores"
               tool.Vg_core.Tool.name cores)
            base_tool
            (Vg_core.Session.tool_output s);
          let st = Vg_core.Session.stats s in
          Alcotest.check i64
            (Printf.sprintf "%s: blocks at %d cores" tool.Vg_core.Tool.name
               cores)
            base.st_blocks st.st_blocks;
          Alcotest.check i64
            (Printf.sprintf "%s: cycles at %d cores" tool.Vg_core.Tool.name
               cores)
            base.st_total_cycles st.st_total_cycles;
          Alcotest.check i64
            (Printf.sprintf "%s: wall cycles at %d cores"
               tool.Vg_core.Tool.name cores)
            base.st_wall_cycles st.st_wall_cycles)
        [ 2; 4 ])
    [ Vg_core.Tool.nulgrind; Tools.Lackey.tool; Tools.Cachegrind.tool ]

let test_multithread_replays () =
  (* a threaded client at a fixed core count replays bit-identically *)
  List.iter
    (fun cores ->
      let s1, r1 = run_sched ~cores ~timeslice:64 fairness_src in
      let s2, r2 = run_sched ~cores ~timeslice:64 fairness_src in
      Alcotest.(check bool)
        (Printf.sprintf "exit replays at %d cores" cores)
        true (r1 = r2);
      let st1 = Vg_core.Session.stats s1 in
      let st2 = Vg_core.Session.stats s2 in
      Alcotest.check i64
        (Printf.sprintf "blocks replay at %d cores" cores)
        st1.st_blocks st2.st_blocks;
      Alcotest.check i64
        (Printf.sprintf "wall cycles replay at %d cores" cores)
        st1.st_wall_cycles st2.st_wall_cycles)
    [ 1; 2; 4 ]

(* ---- the multi-core cycle model ------------------------------------- *)

(* main + 3 workers, each compute-bound for ~3000 blocks; main then
   spin-waits for all three done flags. *)
let four_thread_src =
  {|
        .text
        .global _start
_start: movi r7, 0            ; worker index 0..2
spawn:  movi r1, worker
        movi r2, stacks
        mov r3, r7
        inc r3
        muli r3, 4096
        add r2, r3
        subi r2, 4
        movi r3, 0
        movi r0, 15
        syscall
        inc r7
        cmpi r7, 3
        jne spawn
        movi r5, 3000
mloop:  dec r5
        jne mloop
mwait:  movi r0, 17
        syscall
        movi r3, ndone
        ldw r4, [r3]
        cmpi r4, 3
        jne mwait
        movi r0, 1
        movi r1, 0
        syscall
worker: movi r5, 3000
wloop:  dec r5
        jne wloop
        movi r3, ndone
        ldw r4, [r3]
        inc r4
        stw [r3], r4
        movi r0, 16
        syscall
        .data
ndone:  .word 0
        .align 4
stacks: .space 12288
|}

let test_four_cores_speedup () =
  let s1, r1 = run_sched ~cores:1 four_thread_src in
  let s4, r4 = run_sched ~cores:4 four_thread_src in
  Alcotest.(check bool) "exits clean at 1 core" true
    (r1 = Vg_core.Session.Exited 0);
  Alcotest.(check bool) "exits clean at 4 cores" true
    (r4 = Vg_core.Session.Exited 0);
  let st1 = Vg_core.Session.stats s1 in
  let st4 = Vg_core.Session.stats s4 in
  Alcotest.(check int) "one core" 1 st1.st_cores;
  Alcotest.(check int) "four cores" 4 st4.st_cores;
  (* serialised: wall == total; sharded: the wall clock is the max
     core clock, well under the aggregate work *)
  Alcotest.check i64 "1 core: wall = total" st1.st_total_cycles
    st1.st_wall_cycles;
  Alcotest.(check bool)
    (Printf.sprintf "4 cores beat 1 (wall %Ld vs %Ld)" st4.st_wall_cycles
       st1.st_wall_cycles)
    true
    (Int64.unsigned_compare
       (Int64.mul st4.st_wall_cycles 2L)
       st1.st_wall_cycles
    < 0)

let tests =
  [
    t "switch_to_next: single runnable" test_switch_single_runnable;
    t "switch_to_next: current dead" test_switch_current_dead;
    t "switch_to_next: all blocked" test_switch_all_blocked;
    t "switch_to_next: round-robin order" test_switch_round_robin;
    t "switch_to_next: per-core rotation" test_switch_skips_other_cores;
    t "timeslice fairness" test_timeslice_fairness;
    t "timeslice scales with slice length" test_timeslice_exact_slices;
    t "single-threaded identical across cores" test_single_thread_cores_identical;
    t "threaded replays at fixed cores" test_multithread_replays;
    t "four threads speed up on four cores" test_four_cores_speedup;
  ]
