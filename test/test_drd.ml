(* DRD-lite validation: a 2-thread racy workload must report races, its
   properly-locked twin must report none, and both twins' guest output
   must be bit-identical for every --cores value. *)

let t name f = Alcotest.test_case name `Quick f

(* Two worker threads increment a shared counter.  Thread entry
   functions take no parameters (the kernel passes the thread argument
   in a register mini-C cannot name), so workloads communicate through
   globals written before the spawn. *)
let racy_src =
  {|
int counter;
int done1;
int done2;
char stk1[4096];
char stk2[4096];

void worker1() {
  int i;
  for (i = 0; i < 100; i = i + 1) { counter = counter + 1; }
  done1 = 1;
  thread_exit();
}

void worker2() {
  int i;
  for (i = 0; i < 100; i = i + 1) { counter = counter + 1; }
  done2 = 1;
  thread_exit();
}

int main() {
  thread_create((int)&worker1, (int)stk1 + 4088, 0);
  thread_create((int)&worker2, (int)stk2 + 4088, 0);
  while (done1 == 0 || done2 == 0) { yield(); }
  print_str("counter=");
  print_int(counter);
  print_str("\n");
  return 0;
}
|}

(* The twin: identical structure, but every access to the shared
   counter and the done flags happens under a tool-arbitrated lock
   (lock 1 guards the counter, lock 2 guards the flags). *)
let locked_src =
  {|
int counter;
int done1;
int done2;
char stk1[4096];
char stk2[4096];

void worker1() {
  int i;
  for (i = 0; i < 100; i = i + 1) {
    vg_drd_lock(1);
    counter = counter + 1;
    vg_drd_unlock(1);
  }
  vg_drd_lock(2);
  done1 = 1;
  vg_drd_unlock(2);
  thread_exit();
}

void worker2() {
  int i;
  for (i = 0; i < 100; i = i + 1) {
    vg_drd_lock(1);
    counter = counter + 1;
    vg_drd_unlock(1);
  }
  vg_drd_lock(2);
  done2 = 1;
  vg_drd_unlock(2);
  thread_exit();
}

int main() {
  int go;
  thread_create((int)&worker1, (int)stk1 + 4088, 0);
  thread_create((int)&worker2, (int)stk2 + 4088, 0);
  go = 1;
  while (go) {
    vg_drd_lock(2);
    if (done1 == 1) { if (done2 == 1) { go = 0; } }
    vg_drd_unlock(2);
    if (go) { yield(); }
  }
  vg_drd_lock(1);
  print_str("counter=");
  print_int(counter);
  print_str("\n");
  vg_drd_unlock(1);
  return 0;
}
|}

let run_drd ?(cores = 1) src =
  let img = Minicc.Driver.compile src in
  let options = { Vg_core.Session.default_options with cores } in
  let s = Vg_core.Session.create ~options ~tool:Tools.Drd.tool img in
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited 0 -> ()
  | Vg_core.Session.Exited n -> Alcotest.failf "exit %d" n
  | _ -> Alcotest.fail "bad termination");
  (Vg_core.Session.client_stdout s, Vg_core.Session.tool_output s)

let contains (hay : string) (needle : string) : bool =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let count_races out =
  String.split_on_char '\n' out
  |> List.filter (fun l -> contains l "possible data race")
  |> List.length

let test_racy_reports () =
  let stdout, tool_out = run_drd racy_src in
  Alcotest.(check string) "guest output" "counter=200\n" stdout;
  Alcotest.(check bool) "races found" true (count_races tool_out >= 1)

let test_locked_clean () =
  let stdout, tool_out = run_drd locked_src in
  Alcotest.(check string) "guest output" "counter=200\n" stdout;
  Alcotest.(check int) "no races" 0 (count_races tool_out);
  (* the locks really changed hands between threads: the tool's
     cross-thread handoff counter must be non-zero *)
  Alcotest.(check bool) "lock handoffs observed" true
    (contains tool_out "lock handoffs: 0" = false
    && contains tool_out "lock handoffs: ")

let test_both_twins_multicore () =
  (* the lockset discipline is schedule-independent: the racy program
     races and the locked twin stays clean for every core count, and the
     guest output (block-granular increments) is bit-identical *)
  List.iter
    (fun cores ->
      let stdout, tool_out = run_drd ~cores racy_src in
      Alcotest.(check string)
        (Printf.sprintf "racy guest output, %d cores" cores)
        "counter=200\n" stdout;
      Alcotest.(check bool)
        (Printf.sprintf "races at %d cores" cores)
        true
        (count_races tool_out >= 1);
      let stdout, tool_out = run_drd ~cores locked_src in
      Alcotest.(check string)
        (Printf.sprintf "locked guest output, %d cores" cores)
        "counter=200\n" stdout;
      Alcotest.(check int)
        (Printf.sprintf "locked clean at %d cores" cores)
        0 (count_races tool_out))
    [ 2; 4 ]

let test_drd_deterministic () =
  (* same program, same core count: bit-identical guest and tool output *)
  let s1, t1 = run_drd ~cores:2 racy_src in
  let s2, t2 = run_drd ~cores:2 racy_src in
  Alcotest.(check string) "stdout replays" s1 s2;
  Alcotest.(check string) "tool output replays" t1 t2

let tests =
  [
    t "racy twin reports races" test_racy_reports;
    t "locked twin is clean" test_locked_clean;
    t "both twins across core counts" test_both_twins_multicore;
    t "drd replays bit-identically" test_drd_deterministic;
  ]
