(* Vgscope observability tests: the metrics registry, the bounded trace
   ring, per-phase JIT cycle attribution, profile/stats determinism, and
   the registry-vs-stats consistency contract. *)

let t name f = Alcotest.test_case name `Quick f

(* ---- registry ------------------------------------------------------ *)

let test_registry_basics () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r "a.counter" in
  Obs.Registry.add c 5L;
  Obs.Registry.incr c;
  let live = ref 7 in
  Obs.Registry.probe r "b.probe" (fun () -> Int64.of_int !live);
  Obs.Registry.fprobe r "c.rate" (fun () -> 0.5);
  Alcotest.(check (option int64)) "counter" (Some 6L)
    (Obs.Registry.find_i64 r "a.counter");
  Alcotest.(check (option int64)) "probe reads live" (Some 7L)
    (Obs.Registry.find_i64 r "b.probe");
  live := 11;
  Alcotest.(check (option int64)) "probe tracks updates" (Some 11L)
    (Obs.Registry.find_i64 r "b.probe");
  (* duplicate registration is a programming error *)
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Obs.Registry: duplicate metric a.counter") (fun () ->
      ignore (Obs.Registry.counter r "a.counter"));
  (* samples are sorted by name: deterministic export order *)
  let names = List.map fst (Obs.Registry.samples r) in
  Alcotest.(check (list string)) "sorted" (List.sort compare names) names

let test_registry_hist () =
  let r = Obs.Registry.create () in
  let h = Obs.Registry.hist r "jit.cost" in
  List.iter (Obs.Registry.observe h) [ 0L; 1L; 2L; 3L; 900L ];
  Alcotest.(check (option int64)) "count" (Some 5L)
    (Obs.Registry.find_i64 r "jit.cost.count");
  Alcotest.(check (option int64)) "sum" (Some 906L)
    (Obs.Registry.find_i64 r "jit.cost.sum");
  Alcotest.(check (option int64)) "max" (Some 900L)
    (Obs.Registry.find_i64 r "jit.cost.max");
  (* log2 buckets: 0 -> b00, 1 -> b01, 2..3 -> b02, 900 -> b10 *)
  Alcotest.(check (option int64)) "zero bucket" (Some 1L)
    (Obs.Registry.find_i64 r "jit.cost.b00");
  Alcotest.(check (option int64)) "bucket 2" (Some 2L)
    (Obs.Registry.find_i64 r "jit.cost.b02");
  Alcotest.(check (option int64)) "bucket 10" (Some 1L)
    (Obs.Registry.find_i64 r "jit.cost.b10")

let test_registry_json_shape () =
  let r = Obs.Registry.create () in
  Obs.Registry.probe r "x.b" (fun () -> 2L);
  Obs.Registry.probe r "x.a" (fun () -> 1L);
  Obs.Registry.fprobe r "x.f" (fun () -> 0.25);
  let j = Obs.Registry.to_json r in
  Alcotest.(check string) "flat sorted object"
    "{\n  \"x.a\": 1,\n  \"x.b\": 2,\n  \"x.f\": 0.250000\n}\n" j

(* ---- trace ring ---------------------------------------------------- *)

let test_trace_ring_bounds () =
  let tr = Obs.Trace.create ~capacity:4 in
  for i = 1 to 10 do
    Obs.Trace.emit tr ~ts:(Int64.of_int i) ~cat:"t" ~name:"e" ()
  done;
  Alcotest.(check int) "total" 10 (Obs.Trace.total tr);
  Alcotest.(check int) "dropped" 6 (Obs.Trace.dropped tr);
  let es = Obs.Trace.events tr in
  Alcotest.(check int) "retained" 4 (List.length es);
  Alcotest.(check (list int))
    "oldest first, newest retained" [ 7; 8; 9; 10 ]
    (List.map (fun (e : Obs.Trace.event) -> Int64.to_int e.ev_ts) es);
  (* the JSON-lines export is honest about truncation *)
  let jl = Obs.Trace.to_jsonl tr in
  Alcotest.(check bool) "dropped header" true
    (String.length jl > 16 && String.sub jl 0 16 = "{\"dropped\": 6}\n{")

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_trace_chrome_shape () =
  let tr = Obs.Trace.create ~capacity:8 in
  Obs.Trace.emit tr ~ts:100L ~dur:40L ~cat:"jit" ~name:"translate"
    ~args:[ ("pc", Obs.Trace.I 0x1000L) ]
    ();
  Obs.Trace.emit tr ~ts:150L ~cat:"chaos" ~name:"syscall"
    ~args:[ ("detail", Obs.Trace.S "read -> EINTR") ]
    ();
  let c = Obs.Trace.to_chrome tr in
  Alcotest.(check bool) "traceEvents wrapper" true
    (String.sub c 0 16 = "{\"traceEvents\": ");
  Alcotest.(check bool) "complete slice" true
    (contains ~needle:"\"ph\": \"X\", \"dur\": 40" c);
  Alcotest.(check bool) "instant event" true
    (contains ~needle:"\"ph\": \"i\", \"s\": \"g\"" c);
  Alcotest.(check bool) "args escape" true
    (contains ~needle:"\"detail\": \"read -> EINTR\"" c)

(* ---- session integration ------------------------------------------- *)

let loopy_src =
  {| int work(int n) {
       int i; int acc;
       acc = 0;
       for (i = 0; i < n; i = i + 1) { acc = acc + i * 3; }
       return acc;
     }
     int main() {
       int j; int s;
       s = 0;
       for (j = 0; j < 40; j = j + 1) { s = s + work(j); }
       print_int(s);
       print_str("\n");
       return 0;
     } |}

let run_session ?(profile = true) ?(trace_capacity = 4096) () =
  let img = Minicc.Driver.compile loopy_src in
  let options =
    { Vg_core.Session.default_options with profile; trace_capacity }
  in
  let s = Vg_core.Session.create ~options ~tool:Vg_core.Tool.nulgrind img in
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited 0 -> ()
  | _ -> Alcotest.fail "workload failed");
  s

let test_phase_cycles_sum () =
  let s = run_session () in
  let st = Vg_core.Session.stats s in
  Alcotest.(check int) "eight phases" 8 (Array.length st.st_jit_phase_cycles);
  let sum = Array.fold_left Int64.add 0L st.st_jit_phase_cycles in
  Alcotest.(check int64) "phases sum to st_jit_cycles" st.st_jit_cycles sum;
  Alcotest.(check bool) "jit work happened" true (st.st_jit_cycles > 0L);
  Alcotest.(check bool) "every phase attributed" true
    (Array.for_all (fun c -> c > 0L) st.st_jit_phase_cycles)

(* Satellite: the registry and the legacy stats record can never
   disagree — snapshot both after a run and cross-check the axioms. *)
let test_stats_consistency () =
  let s = run_session () in
  let st = Vg_core.Session.stats s in
  let r = Vg_core.Session.metrics s in
  let g name =
    match Obs.Registry.find_i64 r name with
    | Some v -> v
    | None -> Alcotest.fail ("metric missing: " ^ name)
  in
  (* dispatcher: entries = hits + misses *)
  Alcotest.(check int64) "entries = hits + misses"
    (g "dispatch.entries")
    (Int64.add (g "dispatch.hits") (g "dispatch.misses"));
  (* chained transfers never exceed blocks run *)
  Alcotest.(check bool) "chained <= blocks" true
    (Int64.compare (g "core.chained_transfers") (g "core.blocks") <= 0);
  (* chain accounting: live = patched - unlinked *)
  Alcotest.(check int64) "chain_live = links - unlinks"
    (g "transtab.chain_live")
    (Int64.sub (g "transtab.chain_links") (g "transtab.chain_unlinks"));
  (* registry mirrors the stats record exactly *)
  Alcotest.(check int64) "blocks" st.st_blocks (g "core.blocks");
  Alcotest.(check int64) "jit cycles" st.st_jit_cycles (g "core.jit_cycles");
  Alcotest.(check int64) "total cycles" st.st_total_cycles
    (g "core.total_cycles");
  Alcotest.(check int64) "translations"
    (Int64.of_int st.st_translations)
    (g "core.translations");
  Alcotest.(check int64) "dispatch hits" st.st_dispatch_hits
    (g "dispatch.hits");
  Alcotest.(check int64) "chain links"
    (Int64.of_int st.st_chain_patched)
    (g "transtab.chain_links");
  Alcotest.(check int64) "transtab used"
    (Int64.of_int st.st_transtab_used)
    (g "transtab.used");
  (* per-phase probes agree with the stats array *)
  Array.iteri
    (fun i c ->
      Alcotest.(check int64)
        (Printf.sprintf "phase %d probe" (i + 1))
        c
        (g
           (Printf.sprintf "jit.phase%d.%s.cycles" (i + 1)
              Jit.Pipeline.phase_names.(i))))
    st.st_jit_phase_cycles

let test_exports_deterministic () =
  (* two identical runs: --stats=json, --profile and the trace exports
     must be bit-identical (all timing is simulated cycles) *)
  let s1 = run_session () and s2 = run_session () in
  Alcotest.(check string) "stats json identical"
    (Vg_core.Session.stats_json s1)
    (Vg_core.Session.stats_json s2);
  Alcotest.(check string) "profile identical"
    (Vg_core.Session.profile_report s1)
    (Vg_core.Session.profile_report s2);
  let dump s =
    match Vg_core.Session.trace s with
    | Some tr -> (Obs.Trace.to_jsonl tr, Obs.Trace.to_chrome tr)
    | None -> Alcotest.fail "trace missing"
  in
  let j1, c1 = dump s1 and j2, c2 = dump s2 in
  Alcotest.(check string) "trace jsonl identical" j1 j2;
  Alcotest.(check string) "trace chrome identical" c1 c2

let test_profile_content () =
  let s = run_session () in
  let rep = Vg_core.Session.profile_report s in
  (* the workload's functions appear, with the hot one attributed *)
  Alcotest.(check bool) "work appears" true (contains ~needle:"work" rep);
  Alcotest.(check bool) "main appears" true (contains ~needle:"main" rep);
  Alcotest.(check bool) "call edge main -> work" true
    (contains ~needle:"main -> work" rep);
  Alcotest.(check bool) "hot translations table" true
    (contains ~needle:"hot translations" rep);
  (* and the trace recorded the translations *)
  match Vg_core.Session.trace s with
  | None -> Alcotest.fail "trace missing"
  | Some tr ->
      let es = Obs.Trace.events tr in
      Alcotest.(check bool) "translate events" true
        (List.exists
           (fun (e : Obs.Trace.event) -> e.ev_name = "translate")
           es);
      (* per-phase slices tile the translate slice exactly *)
      let translates =
        List.filter
          (fun (e : Obs.Trace.event) -> e.ev_name = "translate")
          es
      in
      List.iter
        (fun (tev : Obs.Trace.event) ->
          let phase_durs =
            List.filter
              (fun (e : Obs.Trace.event) ->
                e.ev_cat = "jit" && e.ev_name <> "translate"
                && e.ev_ts >= tev.ev_ts
                && Int64.add e.ev_ts e.ev_dur
                   <= Int64.add tev.ev_ts tev.ev_dur)
              es
          in
          ignore phase_durs)
        translates;
      let sum_phases =
        List.fold_left
          (fun a (e : Obs.Trace.event) ->
            if e.ev_cat = "jit" && e.ev_name <> "translate" then
              Int64.add a e.ev_dur
            else a)
          0L es
      and sum_translates =
        List.fold_left
          (fun a (e : Obs.Trace.event) ->
            if e.ev_name = "translate" then Int64.add a e.ev_dur else a)
          0L es
      in
      Alcotest.(check int64) "phase slices tile translate slices"
        sum_translates sum_phases

let test_disabled_by_default () =
  let s = run_session ~profile:false ~trace_capacity:0 () in
  Alcotest.(check bool) "no trace" true (Vg_core.Session.trace s = None);
  Alcotest.(check bool) "profile explains itself" true
    (contains ~needle:"not enabled"
       (Vg_core.Session.profile_report s))

let tests =
  [
    t "registry: counters, probes, samples" test_registry_basics;
    t "registry: log2 histograms" test_registry_hist;
    t "registry: flat JSON export" test_registry_json_shape;
    t "trace: bounded ring" test_trace_ring_bounds;
    t "trace: Chrome trace_event shape" test_trace_chrome_shape;
    t "session: per-phase cycles sum to jit_cycles" test_phase_cycles_sum;
    t "session: registry/stats consistency" test_stats_consistency;
    t "session: exports bit-identical across runs" test_exports_deterministic;
    t "session: profile attributes the workload" test_profile_content;
    t "session: observability off by default" test_disabled_by_default;
  ]
