(* Vgchaos tier-1 tests: every injected fault is survivable, recovery is
   transparent to the client and the tool, and a seed replays exactly.
   The full corpus sweep lives in bin/vgchaos (CI); these pin the
   individual recovery mechanisms. *)

let t name f = Alcotest.test_case name `Quick f

(* A chaos config with everything off; tests switch on exactly the
   injection points they exercise. *)
let quiet ~seed =
  {
    Chaos.seed;
    p_eintr = 0.0;
    p_errno = 0.0;
    p_short = 0.0;
    p_map_denial = 0.0;
    p_translation_failure = 0.0;
    force_phase = None;
    p_flush = 0.0;
    p_handoff_stall = 0.0;
    p_retire_delay = 0.0;
    max_injections = 0;
  }

let loop_src =
  {|
        .text
_start: movi r0, 0
        movi r2, 2000
loop:   inc r0
        dec r2
        jne loop
        mov r1, r0
        movi r0, 1
        syscall
|}

let run_asm ?(options = Vg_core.Session.default_options) ~tool src =
  let img = Guest.Asm.assemble src in
  let s = Vg_core.Session.create ~options ~tool img in
  let reason = Vg_core.Session.run s in
  (reason, s)

let exit_code = function
  | Vg_core.Session.Exited n -> n
  | Vg_core.Session.Fatal_signal n -> Alcotest.failf "fatal signal %d" n
  | Vg_core.Session.Out_of_fuel -> Alcotest.fail "out of fuel"

(* ---- acceptance bar: a forced Translation_failure on a hot block ---- *)

let test_hot_block_interp_fallback () =
  (* baseline: the loop entry block is translated and runs JITted *)
  let tool () = Tools.Icnt.icnt_inline in
  let r0, s0 = run_asm ~tool:(tool ()) loop_src in
  Alcotest.(check int) "baseline result" 2000 (exit_code r0);
  let base = Vg_core.Session.tool_output s0 in
  (* chaos: the FIRST translation request (the hot loop block) is
     condemned; with the budget spent, later requests succeed *)
  let cfg =
    { (quiet ~seed:7) with p_translation_failure = 1.0; max_injections = 1 }
  in
  let c = Chaos.create cfg in
  let options =
    { Vg_core.Session.default_options with chaos = Some c }
  in
  let r1, s1 = run_asm ~options ~tool:(tool ()) loop_src in
  Alcotest.(check int) "chaos result" 2000 (exit_code r1);
  let st = Vg_core.Session.stats s1 in
  (* the session did not abort: the block ran interpreted exactly once... *)
  Alcotest.(check int) "one interp fallback" 1 st.st_interp_fallbacks;
  Alcotest.(check int) "fallback was recovered" 1
    (Chaos.recovery_count c "interp_fallback");
  (* ...subsequent blocks re-entered the JIT... *)
  Alcotest.(check bool) "JIT re-entered" true (st.st_translations > 0);
  (* ...and the tool saw every instruction: icnt counts match the JIT run *)
  Alcotest.(check string) "icnt output identical to JIT run" base
    (Vg_core.Session.tool_output s1)

let test_all_eight_phases_survivable () =
  (* a forced failure at EVERY phase boundary degrades gracefully, with
     instrumentation still exact (phases 5-8 fall back to evaluating the
     phase-4 IR; phases 1-4 reach it too because the degradation path
     rebuilds the front end without the injector's checks) *)
  let r0, s0 = run_asm ~tool:Tools.Icnt.icnt_inline loop_src in
  let base = Vg_core.Session.tool_output s0 in
  for phase = 1 to 8 do
    let cfg =
      {
        (quiet ~seed:(100 + phase)) with
        p_translation_failure = 1.0;
        force_phase = Some phase;
        max_injections = 2;
      }
    in
    let options =
      { Vg_core.Session.default_options with chaos = Some (Chaos.create cfg) }
    in
    let r, s = run_asm ~options ~tool:Tools.Icnt.icnt_inline loop_src in
    Alcotest.(check int)
      (Printf.sprintf "phase %d: result" phase)
      (exit_code r0) (exit_code r);
    let st = Vg_core.Session.stats s in
    Alcotest.(check bool)
      (Printf.sprintf "phase %d: fallbacks ran" phase)
      true
      (st.st_interp_fallbacks >= 1);
    Alcotest.(check string)
      (Printf.sprintf "phase %d: icnt output" phase)
      base
      (Vg_core.Session.tool_output s)
  done

(* ---- satellite: chain slots stay consistent under cache chaos ------- *)

let test_chain_consistency_under_chaos () =
  (* a workload big enough for FIFO chunk eviction in a shrunken table,
     with forced full flushes and forced translation failures layered on
     top: after the dust settles, every patched chain slot must still
     point at the resident translation for its target, and the live
     counters must agree with the slots *)
  let img = Workloads.compile ~scale:1 (Option.get (Workloads.find "gcc")) in
  let run chaos =
    let options =
      {
        Vg_core.Session.default_options with
        max_blocks = 10_000L;
        (* small enough that the workload's working set overflows 80%
           occupancy: FIFO chunk eviction fires alongside the flushes *)
        transtab_capacity = 16;
        chaos;
      }
    in
    let s = Vg_core.Session.create ~options ~tool:Vg_core.Tool.nulgrind img in
    ignore (Vg_core.Session.run s);
    s
  in
  let s0 = run None in
  let cfg =
    {
      (quiet ~seed:42) with
      p_flush = 0.002;
      p_translation_failure = 0.05;
    }
  in
  let c = Chaos.create cfg in
  let s = run (Some c) in
  (* the schedule really exercised both invalidation paths *)
  let st = Vg_core.Session.stats s in
  Alcotest.(check bool) "forced flushes happened" true (st.st_chaos_flushes > 0);
  Alcotest.(check bool) "chunk eviction happened" true (s.transtab.n_evicted > 0);
  (* transparent recovery: client output unperturbed *)
  Alcotest.(check string) "client stdout identical"
    (Vg_core.Session.client_stdout s0)
    (Vg_core.Session.client_stdout s);
  (* chain-slot invariants (same as the PR-1 checks, now under chaos) *)
  let patched = ref 0 in
  List.iter
    (fun (e : Vg_core.Transtab.entry) ->
      Array.iter
        (fun (slot : Jit.Pipeline.chain_slot) ->
          match slot.cs_next with
          | None -> ()
          | Some dst ->
              incr patched;
              Alcotest.(check int64) "slot points at its target" slot.cs_target
                dst.Jit.Pipeline.t_guest_addr;
              (match Vg_core.Transtab.find s.transtab slot.cs_target with
              | Some resident ->
                  Alcotest.(check bool) "chain target resident" true
                    (resident == dst)
              | None -> Alcotest.fail "patched slot into evicted translation"))
        e.e_trans.Jit.Pipeline.t_exits)
    (Vg_core.Transtab.all_entries s.transtab);
  Alcotest.(check int) "live_chains counts the patched slots" !patched
    s.transtab.live_chains;
  Alcotest.(check int) "links - unlinks = live" !patched
    (s.transtab.n_chain_links - s.transtab.n_chain_unlinks);
  (* tier counters partition the translation total even when chaos
     forces retranslations and failed promotions along the way *)
  Alcotest.(check int) "tier counters partition the total"
    st.st_translations
    (st.st_translations_tier0 + st.st_translations_full
   + st.st_translations_super)

(* ---- syscall restart + mapping retry -------------------------------- *)

let io_src =
  {|
int main() {
  char buf[32];
  int fd = open("data.txt", 0);
  int total = 0;
  int n = read(fd, buf, 32);
  while (n > 0) {
    total = total + n;
    n = read(fd, buf, 32);
  }
  close(fd);
  int i;
  for (i = 0; i < 8; i = i + 1) {
    char *p = mmap(4096);
    if ((int)p > 0) { p[0] = 'x'; munmap(p, 4096); }
  }
  print_str("total=");
  print_int(total);
  print_str("\n");
  return 0;
}
|}

let run_io chaos =
  let img = Minicc.Driver.compile io_src in
  let options = { Vg_core.Session.default_options with chaos } in
  let s = Vg_core.Session.create ~options ~tool:Vg_core.Tool.nulgrind img in
  Kernel.add_file s.kern "data.txt" (String.make 100 'z');
  let reason = Vg_core.Session.run s in
  (reason, s)

let test_eintr_restart_and_map_retry () =
  let r0, s0 = run_io None in
  Alcotest.(check int) "baseline exit" 0 (exit_code r0);
  let cfg = { (quiet ~seed:5) with p_eintr = 0.5; p_map_denial = 0.5 } in
  let c = Chaos.create cfg in
  let r, s = run_io (Some c) in
  Alcotest.(check int) "chaos exit" 0 (exit_code r);
  let st = Vg_core.Session.stats s in
  (* both wrapper recovery paths actually ran... *)
  Alcotest.(check bool) "EINTR restarts ran" true (st.st_syscall_restarts > 0);
  Alcotest.(check bool) "map retries ran" true (st.st_map_retries > 0);
  Alcotest.(check int) "restarts recovered"
    st.st_syscall_restarts
    (Chaos.recovery_count c "syscall_restart");
  (* ...and the client never noticed: same bytes read, same mappings *)
  Alcotest.(check string) "client stdout identical"
    (Vg_core.Session.client_stdout s0)
    (Vg_core.Session.client_stdout s)

(* ---- replay: same seed, same everything ------------------------------ *)

let test_replay_determinism () =
  let run () =
    let c = Chaos.create (Chaos.hostile ~seed:9) in
    let r, s = run_io (Some c) in
    let st = Vg_core.Session.stats s in
    ( r,
      Vg_core.Session.client_stdout s,
      Chaos.log_lines c,
      (st.st_blocks, st.st_interp_fallbacks, st.st_syscall_restarts,
       st.st_injected_errnos, st.st_short_io, st.st_total_cycles) )
  in
  let r1, out1, log1, dig1 = run () in
  let r2, out2, log2, dig2 = run () in
  Alcotest.(check bool) "faults were injected" true (List.length log1 > 0);
  Alcotest.(check bool) "exit replays" true (r1 = r2);
  Alcotest.(check string) "stdout replays" out1 out2;
  Alcotest.(check bool) "fault log replays bit-identically" true (log1 = log2);
  Alcotest.(check bool) "counters replay" true (dig1 = dig2)

(* ---- satellite: unmapped code faults like native --------------------- *)

let test_invalid_exec_is_sigsegv () =
  (* jumping into unmapped memory must SIGSEGV (as native execution
     does), not decode zero bytes into Ud and report SIGILL *)
  let src = {|
        .text
_start: movi r0, 0x700000
        jmp* r0
|} in
  let img = Guest.Asm.assemble src in
  let s = Vg_core.Session.create ~tool:Vg_core.Tool.nulgrind img in
  (match Vg_core.Session.run s with
  | Vg_core.Session.Fatal_signal n ->
      Alcotest.(check int) "SIGSEGV" Kernel.Sig.sigsegv n
  | Vg_core.Session.Exited n -> Alcotest.failf "exited %d" n
  | Vg_core.Session.Out_of_fuel -> Alcotest.fail "out of fuel");
  (match Native.run (Native.create img) with
  | Native.Fatal_signal sg ->
      Alcotest.(check int) "native agrees" Kernel.Sig.sigsegv sg
  | _ -> Alcotest.fail "native did not fault")

let tests =
  [
    t "hot block survives forced Translation_failure"
      test_hot_block_interp_fallback;
    t "all 8 phase failures survivable, icnt exact"
      test_all_eight_phases_survivable;
    t "chain slots consistent under flush/eviction chaos"
      test_chain_consistency_under_chaos;
    t "EINTR restart + map retry are client-invisible"
      test_eintr_restart_and_map_retry;
    t "same seed replays bit-identically" test_replay_determinism;
    t "unmapped code -> SIGSEGV like native" test_invalid_exec_is_sigsegv;
  ]
