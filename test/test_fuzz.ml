(* Vgfuzz: the differential fuzzing harness itself — generator
   determinism, replay-exact shrinking, the committed regression corpus,
   faulting-PC attribution down the degradation ladder, and the hostile
   anti-instrumentation suite (execution contract + lint classes). *)

let t name f = Alcotest.test_case name `Quick f

module GA = Guest.Arch

(* ---- generator determinism ---------------------------------------- *)

let test_gen_deterministic () =
  List.iter
    (fun (seed, size, faulty) ->
      let a = Fuzz.Gen.source ~faulty ~seed ~size () in
      let b = Fuzz.Gen.source ~faulty ~seed ~size () in
      Alcotest.(check string)
        (Printf.sprintf "seed=%d size=%d regenerates identically" seed size)
        a b;
      (* and it assembles *)
      ignore (Guest.Asm.assemble a))
    [ (1, 1, false); (7, 12, false); (1000032, 4, true); (99, 20, true) ]

(* plain substring search (avoid extra deps) *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---- shrinking ------------------------------------------------------ *)

let test_shrink_minimal_deterministic () =
  (* synthetic failure predicate: sizes >= 7 fail.  The upward scan must
     probe exactly 1..7 and stop at the first failing size — which is
     minimal by construction: every smaller size was just observed to
     pass. *)
  let probed = ref [] in
  let check ~seed:_ ~size =
    probed := size :: !probed;
    if size >= 7 then
      [ { Fuzz.Diff.dv_engine = "synthetic"; dv_field = "exit";
          dv_ref = "a"; dv_got = "b" } ]
    else []
  in
  let r = Fuzz.Shrink.shrink ~check ~seed:42 ~size:15 () in
  Alcotest.(check int) "minimal size" 7 r.Fuzz.Shrink.r_size;
  Alcotest.(check int) "original size kept" 15 r.Fuzz.Shrink.r_orig_size;
  Alcotest.(check (list int)) "scan order 1..7" [ 1; 2; 3; 4; 5; 6; 7 ]
    (List.rev !probed);
  (* determinism: the same failure shrinks to the same result *)
  let r2 = Fuzz.Shrink.shrink ~check ~seed:42 ~size:15 () in
  Alcotest.(check int) "same minimal size on rerun" r.Fuzz.Shrink.r_size
    r2.Fuzz.Shrink.r_size;
  (* the rendered repro embeds provenance and the generated program *)
  let src = Fuzz.Shrink.repro_source r in
  Alcotest.(check bool) "repro records seed" true (contains src "seed=42")

let test_repro_source_faulty_exact () =
  (* the rendered repro must embed the *same* program that failed: the
     generator's faulty flag is part of the program identity *)
  let check ~seed:_ ~size:_ =
    [ { Fuzz.Diff.dv_engine = "synthetic"; dv_field = "exit";
        dv_ref = "a"; dv_got = "b" } ]
  in
  let r = Fuzz.Shrink.shrink ~check ~faulty:true ~seed:1000032 ~size:4 () in
  let src = Fuzz.Shrink.repro_source r in
  Alcotest.(check bool) "faulty generator program embedded" true
    (contains src
       (Fuzz.Gen.source ~faulty:true ~seed:1000032 ~size:r.Fuzz.Shrink.r_size
          ()))

(* ---- the committed regression corpus -------------------------------- *)

let corpus_dir =
  (* dune runtest runs in _build/default/test; dune exec from the repo
     root *)
  if Sys.file_exists "fuzz_corpus" then "fuzz_corpus" else "test/fuzz_corpus"

let read_file p =
  let ic = open_in_bin p in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_corpus_replay () =
  let entries =
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".s")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus has at least 5 entries" true
    (List.length entries >= 5);
  List.iter
    (fun f ->
      let img = Guest.Asm.assemble (read_file (Filename.concat corpus_dir f)) in
      match Fuzz.Diff.check img with
      | [] -> ()
      | divs ->
          Alcotest.failf "%s: %s" f
            (String.concat "; " (List.map Fuzz.Diff.pp_divergence divs)))
    entries

(* ---- faulting-PC attribution ---------------------------------------- *)

(* Drive a whole program through Interp.step_external: architectural
   state lives in an external byte buffer (as it does in the session's
   ThreadState), and a mid-run fault must leave eip pinned at the
   faulting instruction — the graceful-degradation contract. *)
let run_step_external (img : Guest.Image.t) :
    [ `Fault of int64 | `Exit ] =
  let mem = Aspace.create () in
  let entry, sp, _brk, _mapped = Guest.Image.load img mem in
  let state = Bytes.make GA.state_size '\000' in
  let get off size =
    let v = ref 0L in
    for i = size - 1 downto 0 do
      v :=
        Int64.logor (Int64.shift_left !v 8)
          (Int64.of_int (Char.code (Bytes.get state (off + i))))
    done;
    !v
  in
  let put off size v =
    for i = 0 to size - 1 do
      Bytes.set state (off + i)
        (Char.chr
           (Int64.to_int
              (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
    done
  in
  put GA.off_sp 4 sp;
  put (GA.off_reg GA.reg_fp) 4 sp;
  put GA.off_eip 4 entry;
  let result = ref None in
  let steps = ref 0 in
  while !result = None do
    incr steps;
    if !steps > 10_000 then failwith "step_external runaway";
    match Guest.Interp.step_external ~mem ~get ~put with
    | _, Guest.Interp.X_next -> ()
    | _, (Guest.Interp.X_syscall | Guest.Interp.X_clreq) ->
        (* first syscall in these programs is exit *)
        result := Some `Exit
    | exception Aspace.Fault _ ->
        (* nothing written back: eip still names the faulting insn *)
        result := Some (`Fault (get GA.off_eip 4))
  done;
  Option.get !result

let test_fault_attribution_ladder () =
  let src = read_file (Filename.concat corpus_dir "fault_attribution.s") in
  let img () = Guest.Asm.assemble src in
  (* native reference *)
  let nat = Fuzz.Diff.run_native (img ()) in
  (match nat.Fuzz.Diff.o_exit with
  | Fuzz.Diff.Signal 11 -> ()
  | k -> Alcotest.failf "native: expected SIGSEGV, got %s"
           (Fuzz.Diff.exit_kind_str k));
  let fault_pc = nat.Fuzz.Diff.o_eip in
  (* JIT path *)
  let jit =
    Fuzz.Diff.run_session
      { Fuzz.Diff.v_name = "jit"; v_cores = 1; v_aot = false;
        v_chaos = None; v_degrade = false }
      (img ())
  in
  Alcotest.(check int64) "jit faulting pc" fault_pc jit.Fuzz.Diff.o_eip;
  (* forced interp-fallback (every translation refused) *)
  let deg =
    Fuzz.Diff.run_session
      { Fuzz.Diff.v_name = "degrade"; v_cores = 1; v_aot = false;
        v_chaos = None; v_degrade = true }
      (img ())
  in
  Alcotest.(check int64) "degraded faulting pc" fault_pc
    deg.Fuzz.Diff.o_eip;
  (match deg.Fuzz.Diff.o_exit with
  | Fuzz.Diff.Signal 11 -> ()
  | k -> Alcotest.failf "degrade: expected SIGSEGV, got %s"
           (Fuzz.Diff.exit_kind_str k));
  (* bare step_external *)
  match run_step_external (img ()) with
  | `Fault pc -> Alcotest.(check int64) "step_external faulting pc" fault_pc pc
  | `Exit -> Alcotest.fail "step_external: expected a fault"

(* the dead-load regression specifically: the minimized fuzzer repro must
   deliver the same signal at the same pc under JIT as natively *)
let test_dead_load_fault_survives_dce () =
  let img () =
    Guest.Asm.assemble
      (read_file (Filename.concat corpus_dir "deadload_sigsegv_1.s"))
  in
  let nat = Fuzz.Diff.run_native (img ()) in
  let jit =
    Fuzz.Diff.run_session
      { Fuzz.Diff.v_name = "jit"; v_cores = 1; v_aot = false;
        v_chaos = None; v_degrade = false }
      (img ())
  in
  Alcotest.(check string) "exit kind"
    (Fuzz.Diff.exit_kind_str nat.Fuzz.Diff.o_exit)
    (Fuzz.Diff.exit_kind_str jit.Fuzz.Diff.o_exit);
  Alcotest.(check int64) "faulting pc" nat.Fuzz.Diff.o_eip
    jit.Fuzz.Diff.o_eip

(* ---- hostile suite --------------------------------------------------- *)

let hostile_tools =
  [ ("nulgrind", Vg_core.Tool.nulgrind); ("memcheck", Tools.Memcheck.tool);
    ("lackey", Tools.Lackey.tool) ]

let run_hostile ?chaos tool img =
  let options =
    { Vg_core.Session.default_options with
      max_blocks = 200_000L; verify_jit = false; transtab_capacity = 256;
      chaos }
  in
  let s = Vg_core.Session.create ~options ~tool img in
  let er = Vg_core.Session.run s in
  (er, Vg_core.Session.client_stdout s, Vg_core.Session.tool_output s)

let test_hostile_execution_contract () =
  List.iter
    (fun (g : Fuzz.Hostile_guests.guest) ->
      let img () = Fuzz.Hostile_guests.image g in
      (* native architectural reference *)
      (match Native.run ~max_insns:10_000_000L (Native.create (img ())) with
      | Native.Exited n when n = g.Fuzz.Hostile_guests.g_exit -> ()
      | r ->
          Alcotest.failf "%s native: expected exit %d got %s"
            g.Fuzz.Hostile_guests.g_name g.Fuzz.Hostile_guests.g_exit
            (match r with
            | Native.Exited n -> string_of_int n
            | Native.Fatal_signal s -> Printf.sprintf "signal %d" s
            | Native.Out_of_fuel -> "fuel"));
      List.iter
        (fun (tname, tool) ->
          let er1, out1, tool1 = run_hostile tool (img ()) in
          (match er1 with
          | Vg_core.Session.Exited n when n = g.Fuzz.Hostile_guests.g_exit ->
              ()
          | _ ->
              Alcotest.failf "%s under %s: wrong exit"
                g.Fuzz.Hostile_guests.g_name tname);
          (* determinism: bit-identical rerun *)
          let er2, out2, tool2 = run_hostile tool (img ()) in
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s deterministic"
               g.Fuzz.Hostile_guests.g_name tname)
            true
            ((er1, out1, tool1) = (er2, out2, tool2)))
        hostile_tools)
    (Fuzz.Hostile_guests.all ())

let test_hostile_lint_classes () =
  List.iter
    (fun (g : Fuzz.Hostile_guests.guest) ->
      let classes =
        Static.Lint.classes_of
          (Static.Lint.run (Static.Cfg.scan (Fuzz.Hostile_guests.image g)))
      in
      List.iter
        (fun want ->
          Alcotest.(check bool)
            (Printf.sprintf "%s flags %s" g.Fuzz.Hostile_guests.g_name want)
            true (List.mem want classes))
        g.Fuzz.Hostile_guests.g_lints)
    (Fuzz.Hostile_guests.all ())

let test_crash_context_on_refused_translation () =
  (* interp_fallback off + every translation refused: the session cannot
     make progress.  The escaping error must leave a post-mortem crash
     context on the tool output stream. *)
  let img =
    Guest.Asm.assemble
      (read_file (Filename.concat corpus_dir "overlap_decode.s"))
  in
  let tool, _tot = Fuzz.Diff.witness_tool () in
  let chaos =
    Chaos.create
      { (Chaos.idempotent ~seed:1) with
        Chaos.p_eintr = 0.0; p_errno = 0.0; p_short = 0.0;
        p_map_denial = 0.0; p_flush = 0.0; p_translation_failure = 1.0;
        max_injections = 0 }
  in
  let options =
    { Vg_core.Session.default_options with
      interp_fallback = false; chaos = Some chaos; verify_jit = false }
  in
  let s = Vg_core.Session.create ~options ~tool img in
  (match Vg_core.Session.run s with
  | _ -> Alcotest.fail "expected the refused translation to escape"
  | exception _ -> ());
  let out = Vg_core.Session.tool_output s in
  Alcotest.(check bool) "crash context rendered" true
    (contains out "FATAL: unrecoverable error")

let tests =
  [
    t "generator: deterministic regeneration" test_gen_deterministic;
    t "shrink: minimal and deterministic" test_shrink_minimal_deterministic;
    t "shrink: repro embeds the faulty program"
      test_repro_source_faulty_exact;
    t "corpus: replays divergence-free" test_corpus_replay;
    t "fault attribution: native/jit/degrade/step_external"
      test_fault_attribution_ladder;
    t "dead load keeps its fault through DCE"
      test_dead_load_fault_survives_dce;
    t "hostile: execution contract under tools"
      test_hostile_execution_contract;
    t "hostile: lint classes fire" test_hostile_lint_classes;
    t "hostile: crash context on refused translation"
      test_crash_context_on_refused_translation;
  ]
