(* Vgscan static analysis: the block-decoding iterator, whole-image CFG
   recovery, hostile-code lints, the soundness oracle and AOT seeding.

   The hostile fixtures assert both directions of the contract: the
   scanner flags the hostile construct, and — where the fixture is
   runnable — execution through the native engine and through the full
   session (JIT + verify, with the reference interpreter backing the
   per-translation checks) agrees on the exit code, proving the scanner
   lints code the executors accept. *)

let t name f = Alcotest.test_case name `Quick f

(* ---- Decode.iter_block / Truncated_at ----------------------------- *)

(* a fetch over a fixed byte string; anything outside faults *)
let fetch_of (bytes : string) (base : int64) : Guest.Decode.fetch =
 fun a ->
  let off = Int64.to_int (Int64.sub a base) in
  if off >= 0 && off < String.length bytes then Char.code bytes.[off]
  else raise Guest.Decode.Truncated

let test_truncated_exact () =
  (* movi needs 6 bytes; give it 3.  The faulting byte is base+3. *)
  let f = fetch_of "\x02\x01\x2a" 0x1000L in
  (match Guest.Decode.decode_exact f 0x1000L with
  | exception Guest.Decode.Truncated_at a ->
      Alcotest.(check int64) "fault offset" 0x1003L a
  | _ -> Alcotest.fail "expected Truncated_at");
  (* iter_block: one complete nop, then the partial movi.  The returned
     pc is the partial instruction's start, the stop carries the exact
     faulting byte. *)
  let f = fetch_of "\x00\x02\x01\x2a" 0x1000L in
  let seen = ref [] in
  let after, stop =
    Guest.Decode.iter_block f 0x1000L (fun a _ len -> seen := (a, len) :: !seen)
  in
  Alcotest.(check (list (pair int64 int))) "one nop" [ (0x1000L, 1) ] !seen;
  Alcotest.(check int64) "partial start" 0x1001L after;
  match stop with
  | Guest.Decode.S_truncated fa ->
      Alcotest.(check int64) "faulting byte" 0x1004L fa
  | _ -> Alcotest.fail "expected S_truncated"

let test_iter_block_stops () =
  (* control stop: jmp ends the run *)
  let jmp = "\x00\x39\x10\x20\x00\x00" (* nop; jmp 0x2010 *) in
  let f = fetch_of jmp 0x1000L in
  let after, stop = Guest.Decode.iter_block f 0x1000L (fun _ _ _ -> ()) in
  Alcotest.(check int64) "after jmp" 0x1006L after;
  (match stop with
  | Guest.Decode.S_control (Guest.Decode.C_jump t) ->
      Alcotest.(check int64) "jmp target" 0x2010L t
  | _ -> Alcotest.fail "expected C_jump stop");
  (* limit stop *)
  let f = fetch_of (String.make 16 '\x00') 0x1000L in
  let _, stop = Guest.Decode.iter_block ~limit:4 f 0x1000L (fun _ _ _ -> ()) in
  (match stop with
  | Guest.Decode.S_limit -> ()
  | _ -> Alcotest.fail "expected S_limit");
  (* stop_before: the run halts at a known address without decoding it *)
  let f = fetch_of (String.make 16 '\x00') 0x1000L in
  let n = ref 0 in
  let after, stop =
    Guest.Decode.iter_block
      ~stop_before:(fun a -> a = 0x1002L)
      f 0x1000L
      (fun _ _ _ -> incr n)
  in
  Alcotest.(check int) "decoded before stop" 2 !n;
  Alcotest.(check int64) "stopped at" 0x1002L after;
  match stop with
  | Guest.Decode.S_known -> ()
  | _ -> Alcotest.fail "expected S_known"

(* ---- hostile fixtures --------------------------------------------- *)

let classes_of_image img =
  Static.Lint.classes_of (Static.Lint.run (Static.Cfg.scan img))

let test_fixture_findings () =
  List.iter
    (fun fx ->
      let classes = classes_of_image fx.Static.Hostile.fx_image in
      List.iter
        (fun want ->
          if not (List.mem want classes) then
            Alcotest.failf "%s: expected class %s, got [%s]"
              fx.Static.Hostile.fx_name want (String.concat "," classes))
        fx.Static.Hostile.fx_expect)
    (Static.Hostile.all ())

let test_fixture_differential () =
  List.iter
    (fun fx ->
      match fx.Static.Hostile.fx_runnable with
      | None -> ()
      | Some expect ->
          let name = fx.Static.Hostile.fx_name in
          (* native engine *)
          let eng = Native.create fx.Static.Hostile.fx_image in
          (match Native.run eng with
          | Native.Exited n ->
              Alcotest.(check int) (name ^ " native exit") expect n
          | _ -> Alcotest.failf "%s: native did not exit" name);
          (* full session (JIT + verifiers + soundness oracle) *)
          let options =
            { Vg_core.Session.default_options with scan = true }
          in
          let s =
            Vg_core.Session.create ~options ~tool:Vg_core.Tool.nulgrind
              fx.Static.Hostile.fx_image
          in
          (match Vg_core.Session.run s with
          | Vg_core.Session.Exited n ->
              Alcotest.(check int) (name ^ " session exit") expect n
          | _ -> Alcotest.failf "%s: session did not exit" name);
          (* even hostile-but-runnable fixtures must be fully covered:
             the taken branch into an instruction body was statically
             decoded as a second stream *)
          let st = Vg_core.Session.stats s in
          Alcotest.(check int) (name ^ " cfg_miss") 0 st.st_cfg_miss)
    (Static.Hostile.all ())

let test_jump_table_recovery () =
  let fx =
    List.find
      (fun f -> f.Static.Hostile.fx_name = "jump-table")
      (Static.Hostile.all ())
  in
  let cfg = Static.Cfg.scan fx.Static.Hostile.fx_image in
  match cfg.Static.Cfg.tables with
  | [ tb ] ->
      Alcotest.(check bool) "bounded" true tb.Static.Cfg.tb_bounded;
      Alcotest.(check int) "entries" 4
        (List.length tb.Static.Cfg.tb_entries);
      (* every entry became a real block *)
      let starts = Static.Cfg.block_starts cfg in
      List.iter
        (fun e ->
          Alcotest.(check bool) "entry is a block" true (List.mem e starts))
        tb.Static.Cfg.tb_entries
  | l -> Alcotest.failf "expected 1 table, got %d" (List.length l)

(* ---- benign corpus ------------------------------------------------- *)

let test_scan_deterministic () =
  let img =
    Workloads.compile ~scale:1 (Option.get (Workloads.find "gzip"))
  in
  let report i =
    let cfg = Static.Cfg.scan i in
    Static.Report.to_json ~blocks:true cfg (Static.Lint.run cfg)
  in
  Alcotest.(check string) "bit-identical" (report img) (report img)

let test_benign_no_findings () =
  let img =
    Workloads.compile ~scale:1 (Option.get (Workloads.find "mcf"))
  in
  let findings = Static.Lint.run (Static.Cfg.scan img) in
  Alcotest.(check int) "no findings" 0 (List.length findings)

(* ---- soundness oracle + AOT seeding -------------------------------- *)

let run_workload ~scan ~aot_seed name =
  let img = Workloads.compile ~scale:1 (Option.get (Workloads.find name)) in
  let options =
    {
      Vg_core.Session.default_options with
      max_blocks = 20_000L;
      scan;
      aot_seed;
    }
  in
  let s = Vg_core.Session.create ~options ~tool:Vg_core.Tool.nulgrind img in
  let (_ : Vg_core.Session.exit_reason) = Vg_core.Session.run s in
  (Vg_core.Session.stats s, Vg_core.Session.client_stdout s)

let test_oracle_and_aot () =
  let st, out = run_workload ~scan:true ~aot_seed:true "mcf" in
  let st0, out0 = run_workload ~scan:false ~aot_seed:false "mcf" in
  Alcotest.(check int) "cfg_miss" 0 st.st_cfg_miss;
  Alcotest.(check bool) "oracle ran" true (st.st_cfg_checked > 0);
  Alcotest.(check bool) "seeded blocks" true (st.st_aot_seeded > 0);
  Alcotest.(check int) "no seed failures" 0 st.st_aot_failed;
  Alcotest.(check string) "output transparent" out0 out;
  (* the AOT win: runtime JIT cycles (total minus the seeding share)
     land strictly below the unseeded run's JIT cycles *)
  let runtime = Int64.sub st.st_jit_cycles st.st_aot_cycles in
  if Int64.compare runtime st0.st_jit_cycles >= 0 then
    Alcotest.failf "no AOT win: runtime %Ld vs unseeded %Ld" runtime
      st0.st_jit_cycles

let test_scan_only_session () =
  (* --scan without seeding: oracle runs, nothing is pre-translated *)
  let st, _ = run_workload ~scan:true ~aot_seed:false "gzip" in
  Alcotest.(check int) "cfg_miss" 0 st.st_cfg_miss;
  Alcotest.(check int) "nothing seeded" 0 st.st_aot_seeded;
  Alcotest.(check bool) "oracle ran" true (st.st_cfg_checked > 0)

let tests =
  [
    t "decode: truncated exact offset" test_truncated_exact;
    t "decode: iter_block stop reasons" test_iter_block_stops;
    t "hostile: expected finding classes" test_fixture_findings;
    t "hostile: differential execution" test_fixture_differential;
    t "hostile: bounded jump-table recovery" test_jump_table_recovery;
    t "benign: deterministic report" test_scan_deterministic;
    t "benign: zero findings" test_benign_no_findings;
    t "session: oracle + AOT seeding win" test_oracle_and_aot;
    t "session: scan-only oracle" test_scan_only_session;
  ]
