(* JIT tests.

   The centrepiece is a differential fuzzer: random guest programs are run
   to completion on the native reference interpreter and under the
   Valgrind engine (translated through all eight JIT phases and executed
   on the simulated host CPU), and the full architectural state each
   program dumps at exit must agree bit-for-bit.  This is the
   "verifiability" property §3.5 claims for D&R: any disassembly or
   code-generation bug makes visibly wrong behaviour.

   Plus unit tests for the optimisation passes and the register
   allocator's spill machinery. *)

open Guest.Arch

let t name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Random program generation                                            *)
(* ------------------------------------------------------------------ *)

type gi = I of insn | Skip of cond * int  (* branch over the next k insns *)

let gen_program (rng : Support.Rng.t) : insn list =
  let module R = Support.Rng in
  let n_body = 30 + R.int rng 60 in
  let wreg () = R.int rng 6 (* r0..r5; r6 = data base, r7 = sp *) in
  let rreg () = R.int rng 7 in
  let freg () = R.int rng 4 in
  let vreg () = R.int rng 4 in
  let imm () = Int64.of_int (R.int rng 0x10000 - 0x8000) in
  let disp () = Int64.of_int (4 * R.int rng 200) in
  let alu () =
    List.nth [ ADD; SUB; AND; OR; XOR; SHL; SHR; SAR; MUL ] (R.int rng 9)
  in
  let cond () =
    List.nth [ Ceq; Cne; Clts; Cles; Cgts; Cges; Cltu; Cleu; Cgtu; Cgeu; Cs; Cns ]
      (R.int rng 12)
  in
  let falu () = List.nth [ FADD; FSUB; FMUL; FMIN; FMAX ] (R.int rng 5) in
  let valu () =
    List.nth [ VAND; VOR; VXOR; VADD32; VSUB32; VCMPEQ32; VADD8; VSUB8 ]
      (R.int rng 8)
  in
  let body = ref [] in
  let emit i = body := i :: !body in
  for _ = 1 to n_body do
    match R.int rng 25 with
    | 0 | 1 -> emit (I (Movi (wreg (), imm ())))
    | 2 -> emit (I (Mov (wreg (), rreg ())))
    | 3 | 4 | 5 -> emit (I (Alu (alu (), wreg (), rreg ())))
    | 6 | 7 -> emit (I (Alui (alu (), wreg (), imm ())))
    | 8 ->
        (* division by a guaranteed-nonzero immediate *)
        emit (I (Alui ((if R.bool rng then DIVS else DIVU), wreg (),
                       Int64.of_int (1 + R.int rng 9))))
    | 9 -> emit (I (Ld (W4, Zx, wreg (), mem_b 6 (disp ()))))
    | 10 -> emit (I (St (W4, mem_b 6 (disp ()), rreg ())))
    | 11 -> emit (I (Ld (W1, (if R.bool rng then Sx else Zx), wreg (),
                         mem_b 6 (disp ()))))
    | 12 -> emit (I (Lea (wreg (), mem_bi 6 (R.int rng 6) 4 (disp ()))))
    | 13 -> emit (I (Cmp (rreg (), rreg ())))
    | 14 -> emit (I (Setcc (cond (), wreg ())))
    | 15 -> emit (I (if R.bool rng then Inc (wreg ()) else Dec (wreg ())))
    | 16 -> emit (I (if R.bool rng then Neg (wreg ()) else Not (wreg ())))
    | 17 -> emit (I (Fldi (freg (), float_of_int (R.int rng 1000 - 500) /. 8.0)))
    | 18 -> emit (I (Falu (falu (), freg (), freg ())))
    | 19 -> emit (I (Fitod (freg (), rreg ())))
    | 20 -> emit (I (Fcmp (freg (), freg ())))
    | 21 -> emit (I (Vsplat (vreg (), rreg ())))
    | 22 -> emit (I (Valu (valu (), vreg (), vreg ())))
    | 23 -> (
        (* FP and vector memory traffic *)
        match R.int rng 4 with
        | 0 -> emit (I (Fst (mem_b 6 (disp ()), freg ())))
        | 1 -> emit (I (Fld (freg (), mem_b 6 (disp ()))))
        | 2 -> emit (I (Vst (mem_b 6 (disp ()), vreg ())))
        | _ -> emit (I (Vld (vreg (), mem_b 6 (disp ())))))
    | _ -> emit (Skip (cond (), 1 + R.int rng 3))
  done;
  let body = List.rev !body in
  (* prologue: deterministic initial values *)
  let prologue =
    List.concat
      [
        List.init 6 (fun r -> I (Movi (r, Int64.of_int ((r * 1234567) + 17))));
        List.init 4 (fun f -> I (Fldi (f, float_of_int f +. 0.5)));
        [ I (Movi (5, 3L)) ];
        List.init 4 (fun v -> I (Vsplat (v, v + 1)));
        (* r6 = data base, patched below via a symbolic value *)
      ]
  in
  (* epilogue: dump everything to [r6], then exit(0) *)
  let dump =
    List.concat
      [
        List.init 6 (fun r -> I (St (W4, mem_b 6 (Int64.of_int (3200 + (4 * r))), r)));
        List.init 4 (fun f ->
            I (Fst (mem_b 6 (Int64.of_int (3232 + (8 * f))), f)));
        List.init 4 (fun v ->
            I (Vst (mem_b 6 (Int64.of_int (3280 + (16 * v))), v)));
        (* dump the flags by materialising every condition *)
        [ I (Setcc (Ceq, 0)); I (St (W4, mem_b 6 3360L, 0));
          I (Setcc (Clts, 0)); I (St (W4, mem_b 6 3364L, 0));
          I (Setcc (Cltu, 0)); I (St (W4, mem_b 6 3368L, 0));
          I (Setcc (Cs, 0)); I (St (W4, mem_b 6 3372L, 0)) ];
        [ I (Movi (0, 1L)); I (Movi (1, 0L)); I Syscall ];
      ]
  in
  let all = prologue @ body @ dump in
  (* resolve Skip markers to absolute Jcc targets *)
  let text_base = Guest.Image.default_text_base in
  (* first pass: addresses. every gi has a fixed encoded length *)
  let len_of = function
    | I i -> Guest.Encode.length i
    | Skip _ -> Guest.Encode.length (Jcc (Ceq, 0L))
  in
  let addrs = Array.make (List.length all) 0L in
  let _ =
    List.fold_left
      (fun (i, a) gi ->
        addrs.(i) <- a;
        (i + 1, Int64.add a (Int64.of_int (len_of gi))))
      (0, text_base) all
  in
  let end_addr =
    match List.length all with
    | 0 -> text_base
    | n -> Int64.add addrs.(n - 1) (Int64.of_int (len_of (List.nth all (n - 1))))
  in
  List.mapi
    (fun i gi ->
      match gi with
      | I insn -> insn
      | Skip (c, k) ->
          let tgt = if i + 1 + k < Array.length addrs then addrs.(i + 1 + k) else end_addr in
          Jcc (c, tgt))
    all

let image_of_insns (insns : insn list) : Guest.Image.t =
  let buf = Support.Buf.create ~capacity:1024 () in
  (* r6 must point at the data segment; emit that first *)
  let text_base = Guest.Image.default_text_base in
  (* the data base depends on text length; iterate once to fix point *)
  let encode data_base =
    let b = Support.Buf.create ~capacity:1024 () in
    Guest.Encode.emit b (Movi (6, data_base));
    List.iter (Guest.Encode.emit b) insns;
    b
  in
  let tentative = encode 0L in
  let text_len = Support.Buf.length tentative + 16 in
  let data_base =
    Aspace.round_up (Int64.add text_base (Int64.of_int text_len))
  in
  let final = encode data_base in
  ignore buf;
  {
    Guest.Image.text_addr = text_base;
    text = Support.Buf.contents final;
    data_addr = data_base;
    data = Bytes.make 4096 '\000';
    bss_len = 0;
    entry = text_base;
    symbols = [ ("_start", text_base) ];
  }

(* [gen_program] resolved branch targets against text_base without the
   image's leading [movi r6, data]; shift them by its length *)
let image_of_program (rng : Support.Rng.t) : Guest.Image.t =
  let movi_len = Guest.Encode.length (Movi (6, 0L)) in
  let insns = gen_program rng in
  (* shift branch targets by movi_len *)
  let insns =
    List.map
      (function
        | Jcc (c, t) -> Jcc (c, Int64.add t (Int64.of_int movi_len))
        | i -> i)
      insns
  in
  image_of_insns insns

(* ------------------------------------------------------------------ *)
(* Differential execution                                               *)
(* ------------------------------------------------------------------ *)

let dump_region (mem : Aspace.t) (data_base : int64) : string =
  Bytes.to_string
    (Aspace.read_bytes mem (Int64.add data_base 3200L) 176)

let run_native_img (img : Guest.Image.t) : string * int =
  let eng = Native.create img in
  match Native.run ~max_insns:1_000_000L eng with
  | Native.Exited n -> (dump_region eng.mem img.data_addr, n)
  | Native.Fatal_signal s -> (Printf.sprintf "signal %d" s, -s)
  | Native.Out_of_fuel -> ("fuel", -999)

let run_vg_img ?(tool = Vg_core.Tool.nulgrind) (img : Guest.Image.t) :
    string * int =
  let opts = { Vg_core.Session.default_options with max_blocks = 500_000L } in
  let s = Vg_core.Session.create ~options:opts ~tool img in
  match Vg_core.Session.run s with
  | Vg_core.Session.Exited n -> (dump_region s.mem img.data_addr, n)
  | Vg_core.Session.Fatal_signal sg -> (Printf.sprintf "signal %d" sg, -sg)
  | Vg_core.Session.Out_of_fuel -> ("fuel", -999)

let hex (s : string) = String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c)) (List.init (String.length s) (String.get s)))

let test_differential_nulgrind () =
  for seed = 1 to 60 do
    let rng = Support.Rng.create seed in
    let img = image_of_program rng in
    let nd, nc = run_native_img img in
    let vd, vc = run_vg_img img in
    if nd <> vd || nc <> vc then
      Alcotest.failf "seed %d: native and nulgrind disagree\nnative: %s (%d)\nvg:     %s (%d)"
        seed (hex nd) nc (hex vd) vc
  done

let test_differential_memcheck () =
  (* Memcheck's heavy instrumentation must not perturb the client *)
  for seed = 100 to 115 do
    let rng = Support.Rng.create seed in
    let img = image_of_program rng in
    let nd, nc = run_native_img img in
    let vd, vc = run_vg_img ~tool:Tools.Memcheck.tool img in
    if nd <> vd || nc <> vc then
      Alcotest.failf "seed %d: native and memcheck disagree" seed
  done

let test_differential_taintgrind () =
  for seed = 200 to 210 do
    let rng = Support.Rng.create seed in
    let img = image_of_program rng in
    let nd, nc = run_native_img img in
    let vd, vc = run_vg_img ~tool:Tools.Taintgrind.tool img in
    if nd <> vd || nc <> vc then
      Alcotest.failf "seed %d: native and taintgrind disagree" seed
  done

(* ------------------------------------------------------------------ *)
(* Optimisation pass unit tests                                         *)
(* ------------------------------------------------------------------ *)

let fetch_of_image (img : Guest.Image.t) (a : int64) : int =
  Char.code (Bytes.get img.text (Int64.to_int (Int64.sub a img.text_addr)))

let count_stmts pred (b : Vex_ir.Ir.block) =
  List.length (List.filter pred (Vex_ir.Ir.stmts b))

let test_opt_removes_redundant_puts () =
  let img =
    Guest.Asm.assemble
      {|
_start: movi r0, 1
        movi r1, 2
        add r0, r1
        add r0, r1
        jmp next
next:   mov r2, r0
        jmp next
|}
  in
  let tree, _ =
    Jit.Disasm.superblock ~fetch:(fetch_of_image img) img.entry
  in
  let flat = Jit.Opt.opt1 tree in
  let is_eip_put = function
    | Vex_ir.Ir.Put (off, _) when off = Guest.Arch.off_eip -> true
    | _ -> false
  in
  let is_ccop_put = function
    | Vex_ir.Ir.Put (off, _) when off = Guest.Arch.off_cc_op -> true
    | _ -> false
  in
  Alcotest.(check bool) "eip puts reduced" true
    (count_stmts is_eip_put flat < count_stmts is_eip_put tree);
  (* the first add's thunk is clobbered by the second: one cc_op put *)
  Alcotest.(check bool) "dead flags thunk removed" true
    (count_stmts is_ccop_put flat < count_stmts is_ccop_put tree)

let test_opt_preserves_semantics () =
  (* run pre-opt and post-opt IR through the evaluator; same result *)
  for seed = 300 to 320 do
    let rng = Support.Rng.create seed in
    let img = image_of_program rng in
    let mem = Aspace.create () in
    let _ = Guest.Image.load img mem in
    let tree, _ =
      Jit.Disasm.superblock ~fetch:(Aspace.fetch_u8 mem) img.entry
    in
    let opt = Jit.Opt.opt1 (Vex_ir.Ir.copy_block tree) in
    let run_block b =
      let mem2 = Aspace.create () in
      let _ = Guest.Image.load img mem2 in
      let guest = Bytes.make 1024 '\000' in
      let env =
        {
          Vex_ir.Helpers.he_get_guest =
            (fun off size ->
              let v = ref 0L in
              for i = size - 1 downto 0 do
                v :=
                  Int64.logor (Int64.shift_left !v 8)
                    (Int64.of_int (Char.code (Bytes.get guest (off + i))))
              done;
              !v);
          he_put_guest =
            (fun off size v ->
              for i = 0 to size - 1 do
                Bytes.set guest (off + i)
                  (Char.chr
                     (Int64.to_int
                        (Int64.logand
                           (Int64.shift_right_logical v (8 * i))
                           0xFFL)))
              done);
          he_load = (fun a sz -> Aspace.read mem2 a sz);
          he_store = (fun a sz v -> Aspace.write mem2 a sz v);
        }
      in
      let o = Vex_ir.Eval.run env b in
      (o.next_pc, Bytes.to_string guest)
    in
    let r1 = run_block tree in
    let r2 = run_block opt in
    if r1 <> r2 then Alcotest.failf "seed %d: opt1 changed block semantics" seed
  done

(* ---- constant folding: fold = Eval, and folds are canonical --------- *)

(* Every integer operator the folder can see.  F64/V128 ops are excluded
   on purpose: [fold_op] declines V128 constants and float folding is
   covered by the evaluator equivalence below anyway. *)
let foldable_binops =
  [
    Vex_ir.Ir.Add32; Sub32; Mul32; MulHiS32; DivS32; DivU32; And32; Or32;
    Xor32; Shl32; Shr32; Sar32; CmpEQ32; CmpNE32; CmpLT32S; CmpLE32S;
    CmpLT32U; CmpLE32U; Add64; Sub64; Mul64; And64; Or64; Xor64; Shl64;
    Shr64; Sar64; CmpEQ64; CmpNE64; Cat32x2;
  ]

let foldable_unops =
  [
    Vex_ir.Ir.Not1; Not32; Not64; Neg32; Neg64; U1to32; U8to32; S8to32;
    U16to32; S16to32; U32to64; S32to64; T64to32; T32to8; T32to16; T32to1;
    CmpNEZ8; CmpNEZ32; CmpNEZ64; CmpwNEZ32; CmpwNEZ64; Left32; Left64;
    Clz32; Ctz32;
  ]

let rand_const rng (ty : Vex_ir.Ir.ty) : Vex_ir.Ir.const =
  let open Vex_ir.Ir in
  (* bias toward boundary values: the old folder bug only showed on
     results with bits above 31 (e.g. Neg32 of small positives) *)
  let u64 () =
    match Support.Rng.int rng 4 with
    | 0 -> 0L
    | 1 -> Int64.of_int (Support.Rng.int rng 256)
    | 2 -> Int64.sub (Int64.of_int (Support.Rng.int rng 8)) 4L
    | _ -> Support.Rng.next_u64 rng
  in
  match ty with
  | I1 -> CI1 (Support.Rng.bool rng)
  | I8 -> CI8 (Support.Rng.int rng 256)
  | I16 -> CI16 (Support.Rng.int rng 65536)
  | I32 -> CI32 (Support.Bits.trunc32 (u64 ()))
  | I64 -> CI64 (u64 ())
  | F64 -> CF64 (Support.Rng.float rng)
  | V128 -> CV128 (Support.Rng.int rng 65536)

let const_canonical (c : Vex_ir.Ir.const) : bool =
  match c with
  | Vex_ir.Ir.CI8 v -> v >= 0 && v <= 0xFF
  | CI16 v -> v >= 0 && v <= 0xFFFF
  | CI32 v -> Support.Bits.trunc32 v = v
  | CI1 _ | CI64 _ | CF64 _ | CV128 _ -> true

let test_fold_matches_eval () =
  (* property: whenever the folder replaces an operator over constants
     with a constant, that constant (a) equals what the reference
     evaluator computes for the unfolded expression and (b) is in
     canonical zero-extended form — the invariant ircheck now enforces
     at every flat-IR phase boundary *)
  let open Vex_ir.Ir in
  let rng = Support.Rng.create 4242 in
  let b = new_block () in
  let folded = ref 0 in
  for _ = 1 to 2000 do
    let e =
      if Support.Rng.bool rng then begin
        let op = List.nth foldable_binops
            (Support.Rng.int rng (List.length foldable_binops))
        in
        let tx, ty_, _ = binop_sig op in
        Binop (op, Const (rand_const rng tx), Const (rand_const rng ty_))
      end
      else begin
        let op = List.nth foldable_unops
            (Support.Rng.int rng (List.length foldable_unops))
        in
        let ta, _ = unop_sig op in
        Unop (op, Const (rand_const rng ta))
      end
    in
    match Jit.Opt.fold_op b e with
    | Some (Const c) ->
        incr folded;
        if not (const_canonical c) then
          Alcotest.failf "fold produced non-canonical constant %s"
            (Fmt.str "%a" Vex_ir.Pp.pp_const c);
        let expected =
          match e with
          | Unop (op, Const a) ->
              Vex_ir.Eval.eval_unop op (Vex_ir.Eval.const_value a)
          | Binop (op, Const x, Const y) ->
              Vex_ir.Eval.eval_binop op (Vex_ir.Eval.const_value x)
                (Vex_ir.Eval.const_value y)
          | _ -> assert false
        in
        if Vex_ir.Eval.const_value c <> expected then
          Alcotest.failf "fold diverged from Eval on %s"
            (Fmt.str "%a" Vex_ir.Pp.pp_expr e)
    | Some _ | None -> ()
  done;
  (* the property is vacuous if folding never fires *)
  Alcotest.(check bool)
    (Printf.sprintf "folder exercised (%d folds)" !folded)
    true (!folded > 500)

let test_fold_self_cancelling () =
  (* x - x, x ^ x fold to zero for non-constant atoms, and the folded
     block is Eval-equivalent to the original *)
  let open Vex_ir.Ir in
  let cases =
    [
      (Sub32, I32, CI32 0L); (Xor32, I32, CI32 0L);
      (Sub64, I64, CI64 0L); (Xor64, I64, CI64 0L);
    ]
  in
  List.iter
    (fun (op, ty, zero) ->
      let b = new_block () in
      let t0 = new_tmp b ty in
      add_stmt b (WrTmp (t0, Get (0, ty)));
      add_stmt b (Put (8, Binop (op, RdTmp t0, RdTmp t0)));
      b.next <- i32 0L;
      (* the folder sees through the temp *)
      Alcotest.(check bool) "folds to zero" true
        (Jit.Opt.fold_op b (Binop (op, RdTmp t0, RdTmp t0))
        = Some (Const zero));
      let opt = Jit.Opt.constprop b in
      (* Eval-equivalence under an arbitrary guest value *)
      let run blk =
        let guest = Bytes.make 64 '\x00' in
        let env =
          {
            Vex_ir.Helpers.he_get_guest = (fun _ _ -> 0xDEAD_BEEF_CAFEL);
            he_put_guest =
              (fun off size v ->
                for i = 0 to size - 1 do
                  Bytes.set guest (off + i)
                    (Char.chr
                       (Int64.to_int
                          (Int64.logand
                             (Int64.shift_right_logical v (8 * i))
                             0xFFL)))
                done);
            he_load = (fun _ _ -> 0L);
            he_store = (fun _ _ _ -> ());
          }
        in
        ignore (Vex_ir.Eval.run env blk);
        Bytes.to_string guest
      in
      Alcotest.(check string) "identity preserves semantics" (run b) (run opt))
    cases

let test_ircheck_rejects_noncanonical () =
  (* the canonical-constant invariant is enforced at phase boundaries:
     a hand-built block smuggling a wide CI32 must be rejected *)
  let open Vex_ir.Ir in
  let b = new_block () in
  add_stmt b (Put (0, Const (CI32 0x1_0000_0001L)));
  b.next <- i32 0L;
  match Verify.Ircheck.check_flat_ssa ~phase:"test" b with
  | () -> Alcotest.fail "non-canonical CI32 accepted"
  | exception Verify.Verr.Error _ -> ()

let test_regalloc_spills () =
  (* more than 13 simultaneously-live integer values forces spilling;
     the result must still be correct *)
  let b = Buffer.create 512 in
  Buffer.add_string b "_start:\n";
  (* build 8 values in registers, spill them via stack... simpler: a
     deep expression chain in guest code cannot exceed 8 guest regs, so
     instead force long live ranges through memcheck's shadow pressure:
     run the mcf workload under memcheck (lots of shadow temps) — if the
     allocator mishandled spills, the differential tests above would
     already fail.  Here, directly test the allocator on synthetic
     vcode. *)
  ignore (Buffer.contents b);
  let open Jit.Isel in
  let open Host.Arch in
  let n = 24 in
  (* v16..v16+n-1 := 1..n; then sum them all *)
  let code =
    List.init n (fun i -> V (Movi (16 + i, Int64.of_int (i + 1))))
    @ [ V (Movi (16 + n, 0L)) ]
    @ List.init n (fun i -> V (Alu (W64, Add, 16 + n, 16 + n, 16 + i)))
    @ [ V (Goto (ek_boring, 16 + n)) ]
  in
  let next_label = ref 0 in
  let hcode = Jit.Regalloc.run code ~n_int:(16 + n + 1) ~n_vec:8 ~next_label in
  let mem = Aspace.create () in
  (* the spill zone lives off the GSP: give it a ThreadState *)
  Aspace.map mem ~addr:0x10000L ~len:Host.Arch.threadstate_size
    ~perm:Aspace.perm_rw;
  let cpu = Host.Interp.create mem in
  cpu.hregs.(Host.Arch.gsp) <- 0x10000L;
  let env =
    {
      Vex_ir.Helpers.he_get_guest = (fun _ _ -> 0L);
      he_put_guest = (fun _ _ _ -> ());
      he_load = (fun _ _ -> 0L);
      he_store = (fun _ _ _ -> ());
    }
  in
  let decoded = Host.Encode.decode (Host.Encode.assemble hcode) in
  let _, dest, _ = Host.Interp.run cpu ~env decoded in
  Alcotest.(check int) "sum 1..24 via spilled registers" (n * (n + 1) / 2)
    (Int64.to_int dest)

let test_treebuild_load_store_order () =
  (* a load must not be substituted past a store to (possibly) the same
     address *)
  let open Vex_ir.Ir in
  let b = new_block () in
  let t0 = new_tmp b I32 in
  add_stmt b (WrTmp (t0, Load (I32, i32 0x100L)));
  add_stmt b (Store (i32 0x100L, i32 42L));
  add_stmt b (Put (0, RdTmp t0));
  b.next <- i32 0L;
  let built = Jit.Treebuild.build b in
  (* evaluate: the PUT must see the OLD value (0), not 42 *)
  let guest = Bytes.make 64 '\xFF' in
  let memv = ref 0L in
  let env =
    {
      Vex_ir.Helpers.he_get_guest = (fun _ _ -> 0L);
      he_put_guest =
        (fun off _ v -> Bytes.set guest off (Char.chr (Int64.to_int (Int64.logand v 0xFFL))));
      he_load = (fun _ _ -> !memv);
      he_store = (fun _ _ v -> memv := v);
    }
  in
  ignore (Vex_ir.Eval.run env built);
  Alcotest.(check char) "load not moved past store" '\000' (Bytes.get guest 0)

let test_loop_unrolling () =
  (* a one-block spin loop: with unrolling, the block covers two
     iterations, halving blocks executed; results must be identical *)
  let src =
    {|
        .text
_start: movi r0, 0
        movi r2, 100000
loop:   inc r0
        dec r2
        jne loop
        mov r1, r0
        movi r0, 1
        syscall
|}
  in
  let img = Guest.Asm.assemble src in
  let run unroll =
    let opts = { Vg_core.Session.default_options with unroll_loops = unroll } in
    let s = Vg_core.Session.create ~options:opts ~tool:Vg_core.Tool.nulgrind img in
    match Vg_core.Session.run s with
    | Vg_core.Session.Exited n -> (n, (Vg_core.Session.stats s).st_blocks)
    | _ -> Alcotest.fail "loop program failed"
  in
  let n1, blocks_unrolled = run true in
  let n2, blocks_plain = run false in
  Alcotest.(check int) "same result" n2 n1;
  Alcotest.(check int) "result" 100000 n1;
  Alcotest.(check bool)
    (Printf.sprintf "unrolling halves dispatches (%Ld vs %Ld)" blocks_unrolled
       blocks_plain)
    true
    (Int64.to_float blocks_unrolled < Int64.to_float blocks_plain *. 0.6)

(* ------------------------------------------------------------------ *)
(* Translation chaining                                                 *)
(* ------------------------------------------------------------------ *)

let loop_src =
  {|
        .text
_start: movi r0, 0
        movi r2, 100000
loop:   inc r0
        dec r2
        jne loop
        mov r1, r0
        movi r0, 1
        syscall
|}

let run_loop chaining =
  let img = Guest.Asm.assemble loop_src in
  let opts = { Vg_core.Session.default_options with chaining } in
  let s = Vg_core.Session.create ~options:opts ~tool:Vg_core.Tool.nulgrind img in
  match Vg_core.Session.run s with
  | Vg_core.Session.Exited n -> (n, s)
  | _ -> Alcotest.fail "loop program failed"

let test_chain_slots_recorded () =
  (* every translation records its constant-target exit sites, and every
     patched slot points at the resident translation for its target *)
  let n, s = run_loop true in
  Alcotest.(check int) "result" 100000 n;
  let entries = Vg_core.Transtab.all_entries s.transtab in
  let total_slots =
    List.fold_left
      (fun acc (e : Vg_core.Transtab.entry) ->
        acc + Array.length e.e_trans.Jit.Pipeline.t_exits)
      0 entries
  in
  Alcotest.(check bool) "translations record chain slots" true
    (total_slots > 0);
  List.iter
    (fun (e : Vg_core.Transtab.entry) ->
      Array.iter
        (fun (slot : Jit.Pipeline.chain_slot) ->
          match slot.cs_next with
          | None -> ()
          | Some dst ->
              Alcotest.(check int64)
                "patched slot points at its own target"
                slot.cs_target dst.Jit.Pipeline.t_guest_addr;
              (match Vg_core.Transtab.find s.transtab slot.cs_target with
              | Some resident ->
                  Alcotest.(check bool) "chain target is resident" true
                    (resident == dst)
              | None -> Alcotest.fail "patched slot into evicted translation"))
        e.e_trans.Jit.Pipeline.t_exits)
    entries;
  let st = Vg_core.Session.stats s in
  Alcotest.(check bool) "live chains exist" true (st.st_chain_live > 0)

let test_chain_slot_index_agrees () =
  (* the O(1) cs_index-keyed lookup must agree with the O(n) scan over
     t_exits at every instruction index of every live translation *)
  let _, s = run_loop true in
  let entries = Vg_core.Transtab.all_entries s.transtab in
  let checked = ref 0 in
  List.iter
    (fun (e : Vg_core.Transtab.entry) ->
      let t = e.e_trans in
      for idx = -1 to Array.length t.Jit.Pipeline.t_decoded do
        incr checked;
        let fast = Jit.Pipeline.find_chain_slot t idx in
        let slow = Jit.Pipeline.find_chain_slot_scan t idx in
        match (fast, slow) with
        | None, None -> ()
        | Some a, Some b when a == b -> ()
        | _ ->
            Alcotest.failf "index and scan disagree at insn %d of 0x%LX" idx
              t.Jit.Pipeline.t_guest_addr
      done)
    entries;
  Alcotest.(check bool) "indices checked" true (!checked > 0)

let test_chain_dispatcher_reduction () =
  (* the ISSUE acceptance bar: on a loop benchmark, chaining must cut
     dispatcher entries by >= 30% with identical guest-visible results
     and lower modelled cycles *)
  let n1, s1 = run_loop true in
  let n2, s2 = run_loop false in
  Alcotest.(check int) "identical result" n2 n1;
  let st1 = Vg_core.Session.stats s1 and st2 = Vg_core.Session.stats s2 in
  Alcotest.(check bool) "chained transfers counted" true
    (Int64.unsigned_compare st1.st_chained 0L > 0);
  let e1 = Int64.to_float st1.st_dispatch_entries
  and e2 = Int64.to_float st2.st_dispatch_entries in
  Alcotest.(check bool)
    (Printf.sprintf "dispatcher entries cut >=30%% (%.0f vs %.0f)" e1 e2)
    true
    (e1 <= e2 *. 0.7);
  Alcotest.(check bool)
    (Printf.sprintf "cycles lower (%Ld vs %Ld)" st1.st_total_cycles
       st2.st_total_cycles)
    true
    (Int64.unsigned_compare st1.st_total_cycles st2.st_total_cycles < 0)

let tests =
  [
    t "loop unrolling" test_loop_unrolling;
    t "chain slots recorded and consistent" test_chain_slots_recorded;
    t "chain-slot index agrees with scan" test_chain_slot_index_agrees;
    t "chaining cuts dispatcher entries >=30%" test_chain_dispatcher_reduction;
    t "differential: native = nulgrind (60 random programs)"
      test_differential_nulgrind;
    t "differential: native = memcheck (16 programs)"
      test_differential_memcheck;
    t "differential: native = taintgrind (11 programs)"
      test_differential_taintgrind;
    t "opt1 removes redundant puts" test_opt_removes_redundant_puts;
    t "opt1 preserves block semantics" test_opt_preserves_semantics;
    t "fold_op = Eval and folds are canonical" test_fold_matches_eval;
    t "self-cancelling identities fold to zero" test_fold_self_cancelling;
    t "ircheck rejects non-canonical constants" test_ircheck_rejects_noncanonical;
    t "regalloc spills correctly" test_regalloc_spills;
    t "treebuild respects load/store order" test_treebuild_load_store_order;
  ]
