(* IR construction, typechecking, flatness and evaluator tests. *)

open Vex_ir
open Vex_ir.Ir

let t name f = Alcotest.test_case name `Quick f
let ti64 = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* a helper env over plain arrays, for Eval tests *)
let array_env () =
  let guest = Bytes.make 1024 '\000' in
  let mem = Hashtbl.create 64 in
  let load addr size =
    let v = ref 0L in
    for i = size - 1 downto 0 do
      let b =
        Option.value ~default:0
          (Hashtbl.find_opt mem (Int64.add addr (Int64.of_int i)))
      in
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int b)
    done;
    !v
  in
  let store addr size v =
    for i = 0 to size - 1 do
      Hashtbl.replace mem
        (Int64.add addr (Int64.of_int i))
        (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL))
    done
  in
  let env =
    {
      Helpers.he_get_guest =
        (fun off size ->
          let v = ref 0L in
          for i = size - 1 downto 0 do
            v :=
              Int64.logor (Int64.shift_left !v 8)
                (Int64.of_int (Char.code (Bytes.get guest (off + i))))
          done;
          !v);
      he_put_guest =
        (fun off size v ->
          for i = 0 to size - 1 do
            Bytes.set guest (off + i)
              (Char.chr
                 (Int64.to_int
                    (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
          done);
      he_load = load;
      he_store = store;
    }
  in
  (env, guest)

let test_typecheck_ok () =
  let b = new_block () in
  let t0 = new_tmp b I32 in
  add_stmt b (WrTmp (t0, Binop (Add32, Get (0, I32), i32 5L)));
  add_stmt b (Put (4, RdTmp t0));
  add_stmt b (Store (RdTmp t0, i32 99L));
  b.next <- RdTmp t0;
  Typecheck.check_block b

let test_typecheck_bad_binop () =
  let b = new_block () in
  let t0 = new_tmp b I32 in
  add_stmt b (WrTmp (t0, Binop (Add32, i32 1L, i64 2L)));
  b.next <- i32 0L;
  try
    Typecheck.check_block b;
    Alcotest.fail "expected Ill_typed"
  with Typecheck.Ill_typed _ -> ()

let test_typecheck_bad_tmp () =
  let b = new_block () in
  let t0 = new_tmp b I64 in
  add_stmt b (WrTmp (t0, i32 1L));
  b.next <- i32 0L;
  try
    Typecheck.check_block b;
    Alcotest.fail "expected Ill_typed"
  with Typecheck.Ill_typed _ -> ()

(* error paths: each ill-typed or non-flat block must raise Ill_typed
   with a message naming the actual problem *)
let expect_ill_typed what check b msg =
  match check b with
  | () -> Alcotest.failf "%s: expected Ill_typed" what
  | exception Typecheck.Ill_typed m ->
      if not (contains m msg) then
        Alcotest.failf "%s: message %S does not mention %S" what m msg

let test_typecheck_error_messages () =
  (* shift amount must be I8 (the VEX signature), not the operand width *)
  let b = new_block () in
  let t0 = new_tmp b I32 in
  add_stmt b (WrTmp (t0, Binop (Shl32, i32 1L, i32 2L)));
  b.next <- i32 0L;
  expect_ill_typed "I32 shift amount" Typecheck.check_block b
    "Shl32 rhs has type I32, expected I8";
  let b = new_block () in
  let t0 = new_tmp b I64 in
  add_stmt b (WrTmp (t0, Binop (Shl64, i64 1L, i64 2L)));
  b.next <- i32 0L;
  expect_ill_typed "I64 shift amount" Typecheck.check_block b
    "Shl64 rhs has type I64, expected I8";
  (* a correctly-typed I8 shift amount passes *)
  let b = new_block () in
  let t0 = new_tmp b I32 in
  add_stmt b (WrTmp (t0, Binop (Shr32, i32 1L, i8 2)));
  b.next <- i32 0L;
  Typecheck.check_block b;
  (* GET at a negative offset *)
  let b = new_block () in
  let t0 = new_tmp b I32 in
  add_stmt b (WrTmp (t0, Get (-4, I32)));
  b.next <- i32 0L;
  expect_ill_typed "negative GET" Typecheck.check_block b
    "GET at negative offset -4";
  (* temp assigned a value of the wrong type *)
  let b = new_block () in
  let t0 = new_tmp b I64 in
  add_stmt b (WrTmp (t0, i32 7L));
  b.next <- i32 0L;
  expect_ill_typed "tmp type mismatch" Typecheck.check_block b
    "t0 has type I64 but is assigned I32";
  (* guards must be I1 *)
  let b = new_block () in
  add_stmt b (Exit (i32 1L, Jk_boring, 0x1000L));
  b.next <- i32 0L;
  expect_ill_typed "exit guard" Typecheck.check_block b
    "Exit guard has type I32";
  (* out-of-range temporary *)
  let b = new_block () in
  add_stmt b (Put (0, RdTmp 3));
  b.next <- i32 0L;
  expect_ill_typed "RdTmp range" Typecheck.check_block b "out of range";
  (* block next must be a 32-bit code address *)
  let b = new_block () in
  b.next <- i64 0L;
  expect_ill_typed "next type" Typecheck.check_block b
    "block next has type I64, expected I32"

let test_flatness_error_messages () =
  (* non-atom PUT payload *)
  let b = new_block () in
  add_stmt b (Put (0, Binop (Add32, i32 1L, i32 2L)));
  b.next <- i32 0L;
  expect_ill_typed "put not flat" Typecheck.check_flat b "PUT not flat";
  (* nested operator in a WrTmp *)
  let b = new_block () in
  let t0 = new_tmp b I32 in
  add_stmt b
    (WrTmp (t0, Binop (Add32, Unop (Not32, i32 1L), i32 2L)));
  b.next <- i32 0L;
  expect_ill_typed "wrtmp not flat" Typecheck.check_flat b
    "WrTmp rhs not flat";
  (* non-atom store operands *)
  let b = new_block () in
  add_stmt b (Store (Binop (Add32, i32 1L, i32 2L), i32 0L));
  b.next <- i32 0L;
  expect_ill_typed "store not flat" Typecheck.check_flat b "Store not flat";
  (* computed next *)
  let b = new_block () in
  b.next <- Binop (Add32, i32 1L, i32 2L);
  expect_ill_typed "next not flat" Typecheck.check_flat b
    "block next not flat"

let test_flatness () =
  let b = new_block () in
  let t0 = new_tmp b I32 in
  add_stmt b (WrTmp (t0, Binop (Add32, Binop (Add32, i32 1L, i32 2L), i32 3L)));
  b.next <- i32 0L;
  Typecheck.check_block b;
  (try
     Typecheck.check_flat b;
     Alcotest.fail "nested tree accepted as flat"
   with Typecheck.Ill_typed _ -> ());
  let b' = Jit.Opt.flatten b in
  Typecheck.check_flat b'

let eval_block build =
  let b = new_block () in
  let next = build b in
  b.next <- next;
  let env, guest = array_env () in
  ((Eval.run env b).next_pc, guest)

let test_eval_arith () =
  let r, _ =
    eval_block (fun b ->
        let t0 = new_tmp b I32 in
        add_stmt b (WrTmp (t0, Binop (Mul32, i32 7L, i32 6L)));
        RdTmp t0)
  in
  Alcotest.check ti64 "7*6" 42L r

let test_eval_wraps () =
  let r, _ =
    eval_block (fun b ->
        let t0 = new_tmp b I32 in
        add_stmt b (WrTmp (t0, Binop (Add32, i32 0xFFFFFFFFL, i32 1L)));
        RdTmp t0)
  in
  Alcotest.check ti64 "wraps" 0L r

let test_eval_div_zero () =
  let b = new_block () in
  let t0 = new_tmp b I32 in
  add_stmt b (WrTmp (t0, Binop (DivS32, i32 5L, i32 0L)));
  b.next <- RdTmp t0;
  let env, _ = array_env () in
  try
    ignore (Eval.run env b);
    Alcotest.fail "division by zero did not raise"
  with Eval.Eval_error _ -> ()

let test_eval_memory () =
  let r, guest =
    eval_block (fun b ->
        add_stmt b (Store (i32 0x100L, i32 0xDEADBEEFL));
        let t0 = new_tmp b I32 in
        add_stmt b (WrTmp (t0, Load (I32, i32 0x100L)));
        let t1 = new_tmp b I16 in
        add_stmt b (WrTmp (t1, Load (I16, i32 0x102L)));
        let t2 = new_tmp b I32 in
        add_stmt b (WrTmp (t2, Unop (U16to32, RdTmp t1)));
        add_stmt b (Put (0, RdTmp t0));
        RdTmp t2)
  in
  Alcotest.check ti64 "halfword load" 0xDEADL r;
  Alcotest.(check char) "put wrote guest" '\xEF' (Bytes.get guest 0)

let test_eval_exit () =
  let r, guest =
    eval_block (fun b ->
        add_stmt b (Exit (i1 true, Jk_boring, 0x1234L));
        add_stmt b (Put (0, i32 1L));
        i32 0L)
  in
  Alcotest.check ti64 "took exit" 0x1234L r;
  Alcotest.(check char) "skipped rest" '\000' (Bytes.get guest 0)

let test_eval_fp_simd () =
  let r, _ =
    eval_block (fun b ->
        let f = new_tmp b F64 in
        add_stmt b (WrTmp (f, Binop (MulF64, Const (CF64 1.5), Const (CF64 4.0))));
        let i = new_tmp b I32 in
        add_stmt b (WrTmp (i, Unop (F64toI32S, RdTmp f)));
        let v = new_tmp b V128 in
        add_stmt b (WrTmp (v, Unop (Dup32x4, RdTmp i)));
        let v2 = new_tmp b V128 in
        add_stmt b (WrTmp (v2, Binop (Add32x4, RdTmp v, RdTmp v)));
        let h = new_tmp b I64 in
        add_stmt b (WrTmp (h, Unop (V128to64, RdTmp v2)));
        let out = new_tmp b I32 in
        add_stmt b (WrTmp (out, Unop (T64to32, RdTmp h)));
        RdTmp out)
  in
  Alcotest.check ti64 "1.5*4 doubled" 12L r

let test_eval_memcheck_combinators () =
  let one name op arg expected =
    let r, _ =
      eval_block (fun b ->
          let t = new_tmp b I32 in
          add_stmt b (WrTmp (t, Unop (op, i32 arg)));
          RdTmp t)
    in
    Alcotest.check ti64 name expected r
  in
  one "Left32 smears up" Left32 0x8L 0xFFFFFFF8L;
  one "CmpwNEZ32 zero" CmpwNEZ32 0L 0L;
  one "CmpwNEZ32 nonzero" CmpwNEZ32 4L 0xFFFFFFFFL

let test_eval_ccall () =
  let callee =
    Helpers.register ~name:"test_sum3" ~cost:1 (fun _env args ->
        Int64.add args.(0) (Int64.add args.(1) args.(2)))
  in
  let r, _ =
    eval_block (fun b ->
        let t = new_tmp b I32 in
        add_stmt b (WrTmp (t, CCall (callee, I32, [ i32 1L; i32 2L; i32 3L ])));
        RdTmp t)
  in
  Alcotest.check ti64 "ccall" 6L r

let test_guarded_dirty () =
  let hits = ref 0 in
  let callee =
    Helpers.register ~name:"test_hit" ~cost:1 (fun _env _args ->
        incr hits;
        0L)
  in
  let _r, _ =
    eval_block (fun b ->
        add_stmt b
          (Dirty
             { d_guard = i1 false; d_callee = callee; d_args = [];
               d_tmp = None; d_mfx = Mfx_none });
        add_stmt b
          (Dirty
             { d_guard = i1 true; d_callee = callee; d_args = [];
               d_tmp = None; d_mfx = Mfx_none });
        i32 0L)
  in
  Alcotest.(check int) "guard respected" 1 !hits

let prop_eval_add =
  QCheck.Test.make ~count:300 ~name:"eval Add32 = int64 add (mod 2^32)"
    QCheck.(pair int64 int64)
    (fun (x, y) ->
      match
        Eval.eval_binop Add32
          (Eval.VI (Support.Bits.trunc32 x))
          (Eval.VI (Support.Bits.trunc32 y))
      with
      | Eval.VI r -> r = Support.Bits.trunc32 (Int64.add x y)
      | _ -> false)

let prop_eval_cmp =
  QCheck.Test.make ~count:300 ~name:"eval CmpLT32S = signed compare"
    QCheck.(pair int64 int64)
    (fun (x, y) ->
      let x = Support.Bits.trunc32 x and y = Support.Bits.trunc32 y in
      match Eval.eval_binop CmpLT32S (Eval.VI x) (Eval.VI y) with
      | Eval.VI r -> (r = 1L) = (Support.Bits.sext32 x < Support.Bits.sext32 y)
      | _ -> false)

let test_pp_smoke () =
  let b = new_block () in
  let t0 = new_tmp b I32 in
  add_stmt b (IMark (0x1000L, 4));
  add_stmt b (WrTmp (t0, Binop (Add32, Get (0, I32), i32 1L)));
  add_stmt b (Exit (Unop (CmpNEZ32, RdTmp t0), Jk_boring, 0x2000L));
  b.next <- i32 0x1004L;
  let s = Pp.block_to_string b in
  Alcotest.(check bool) "mentions Add32" true (contains s "Add32");
  Alcotest.(check bool) "mentions IMark" true (contains s "IMark")

let tests =
  [
    t "typecheck accepts well-formed" test_typecheck_ok;
    t "typecheck rejects bad binop" test_typecheck_bad_binop;
    t "typecheck rejects tmp mismatch" test_typecheck_bad_tmp;
    t "typecheck error messages" test_typecheck_error_messages;
    t "flatness error messages" test_flatness_error_messages;
    t "flatness" test_flatness;
    t "eval arithmetic" test_eval_arith;
    t "eval 32-bit wrap" test_eval_wraps;
    t "eval div-by-zero traps" test_eval_div_zero;
    t "eval loads/stores/puts" test_eval_memory;
    t "eval side exits" test_eval_exit;
    t "eval FP + SIMD" test_eval_fp_simd;
    t "eval memcheck combinators" test_eval_memcheck_combinators;
    t "eval pure helper calls" test_eval_ccall;
    t "guarded dirty calls" test_guarded_dirty;
    t "pretty-printer" test_pp_smoke;
    QCheck_alcotest.to_alcotest prop_eval_add;
    QCheck_alcotest.to_alcotest prop_eval_cmp;
  ]
