(* Unit tests for the core's data structures: translation table,
   dispatcher cache, error recording/suppressions, and the stack-pointer
   change classifier (2MB heuristic + registered stacks). *)

let t name f = Alcotest.test_case name `Quick f

(* a dummy translation for table tests *)
let dummy_trans_exits key exits : Jit.Pipeline.translation =
  {
    t_guest_addr = key;
    t_code = Bytes.create 4;
    t_decoded = [||];
    t_guest_insns = 1;
    t_guest_bytes = 4;
    t_guest_ranges = [ (key, 4) ];
    t_smc_check = false;
    t_code_hash = 0L;
    t_ir_stmts_pre = 1;
    t_ir_stmts_post = 1;
    t_exits = exits;
    t_exit_index = Jit.Pipeline.exit_index_of [||] exits;
    t_phase_cycles = Array.make Jit.Pipeline.n_phases 0;
    t_tier = Jit.Pipeline.Tier_full;
    t_constituents = [ key ];
    t_hotness = 0L;
    t_no_promote = false;
    t_dead = false;
    t_epoch = 0;
    t_core = 0;
  }

let dummy_trans key = dummy_trans_exits key [||]

(* a dummy translation with one chainable exit site aimed at [target] *)
let dummy_trans_with_exit key target :
    Jit.Pipeline.translation * Jit.Pipeline.chain_slot =
  let slot =
    {
      Jit.Pipeline.cs_index = 0;
      cs_target = target;
      cs_kind = Host.Arch.ek_boring;
      cs_next = None;
      cs_hot = 0L;
    }
  in
  (dummy_trans_exits key [| slot |], slot)

(* a superblock translation: guest ranges span every constituent, so a
   discard hitting any of them must take the whole thing down *)
let dummy_super head constituents : Jit.Pipeline.translation =
  {
    (dummy_trans head) with
    t_tier = Jit.Pipeline.Tier_super;
    t_constituents = constituents;
    t_guest_ranges = List.map (fun pc -> (pc, 4)) constituents;
  }

let test_transtab_basics () =
  let tt = Vg_core.Transtab.create ~capacity:64 () in
  for i = 0 to 29 do
    Vg_core.Transtab.insert tt (Int64.of_int (i * 16)) (dummy_trans (Int64.of_int (i * 16)))
  done;
  (match Vg_core.Transtab.find tt 160L with
  | Some tr -> Alcotest.(check int64) "found right entry" 160L tr.t_guest_addr
  | None -> Alcotest.fail "entry lost");
  Alcotest.(check (option reject)) "missing key" None
    (Option.map ignore (Vg_core.Transtab.find tt 12345L))

let test_transtab_fifo_eviction () =
  let tt = Vg_core.Transtab.create ~capacity:64 () in
  (* push past 80%: eviction drops the OLDEST 1/8 *)
  for i = 0 to 59 do
    Vg_core.Transtab.insert tt (Int64.of_int i) (dummy_trans (Int64.of_int i))
  done;
  Alcotest.(check bool) "evictions happened" true (tt.n_evicted > 0);
  (* the newest entries survive *)
  Alcotest.(check bool) "newest survives" true
    (Vg_core.Transtab.find tt 59L <> None);
  (* the very first insert was FIFO-evicted *)
  Alcotest.(check bool) "oldest evicted" true (Vg_core.Transtab.find tt 0L = None)

let test_transtab_discard_range () =
  let tt = Vg_core.Transtab.create ~capacity:64 () in
  List.iter
    (fun k -> Vg_core.Transtab.insert tt k (dummy_trans k))
    [ 0x1000L; 0x2000L; 0x3000L ];
  let n = Vg_core.Transtab.discard_range tt 0x2000L 4096 in
  Alcotest.(check int) "one discarded" 1 n;
  Alcotest.(check bool) "0x1000 kept" true (Vg_core.Transtab.find tt 0x1000L <> None);
  Alcotest.(check bool) "0x2000 gone" true (Vg_core.Transtab.find tt 0x2000L = None)

let test_super_discard_constituent () =
  let tt = Vg_core.Transtab.create ~capacity:64 () in
  (* constituent blocks stay resident under their own keys (side-exit
     fallback); the superblock replaces the head's entry *)
  List.iter
    (fun k -> Vg_core.Transtab.insert tt k (dummy_trans k))
    [ 0x2000L; 0x3000L ];
  Vg_core.Transtab.insert tt 0x1000L
    (dummy_super 0x1000L [ 0x1000L; 0x2000L; 0x3000L ]);
  Alcotest.(check bool) "middle constituent is covered" true
    (Vg_core.Transtab.covered_by_super tt 0x2000L);
  Alcotest.(check bool) "unrelated pc is not" false
    (Vg_core.Transtab.covered_by_super tt 0x4000L);
  (* an SMC write inside the middle constituent: both the per-block
     translation and the superblock spanning it must go *)
  let n = Vg_core.Transtab.discard_range tt 0x2002L 1 in
  Alcotest.(check int) "superblock and block discarded" 2 n;
  Alcotest.(check bool) "superblock gone" true
    (Vg_core.Transtab.find tt 0x1000L = None);
  Alcotest.(check bool) "untouched constituent survives" true
    (Vg_core.Transtab.find tt 0x3000L <> None);
  Alcotest.(check bool) "coverage dissolved with the superblock" false
    (Vg_core.Transtab.covered_by_super tt 0x3000L)

(* ---- translation chaining: link/unlink invariants ------------------- *)

let test_chain_link_basics () =
  let tt = Vg_core.Transtab.create ~capacity:64 () in
  let src, slot = dummy_trans_with_exit 0x1000L 0x2000L in
  let dst = dummy_trans 0x2000L in
  (* neither end resident: refused *)
  Alcotest.(check bool) "link refused when not resident" false
    (Vg_core.Transtab.link tt ~src ~slot ~dst);
  Vg_core.Transtab.insert tt 0x1000L src;
  (* dst still absent: refused (an unreachable chain target could never
     be unlinked) *)
  Alcotest.(check bool) "link refused when dst absent" false
    (Vg_core.Transtab.link tt ~src ~slot ~dst);
  Vg_core.Transtab.insert tt 0x2000L dst;
  Alcotest.(check bool) "link succeeds" true
    (Vg_core.Transtab.link tt ~src ~slot ~dst);
  Alcotest.(check bool) "slot patched" true
    (match slot.cs_next with Some t -> t == dst | None -> false);
  Alcotest.(check int) "one live chain" 1 tt.live_chains;
  (* double-patching the same slot is refused *)
  Alcotest.(check bool) "re-link refused" false
    (Vg_core.Transtab.link tt ~src ~slot ~dst)

let test_chain_unlink_on_eviction () =
  let tt = Vg_core.Transtab.create ~capacity:64 () in
  let src, slot = dummy_trans_with_exit 0x10L 0x20L in
  let dst = dummy_trans 0x20L in
  Vg_core.Transtab.insert tt 0x10L src;
  Vg_core.Transtab.insert tt 0x20L dst;
  Alcotest.(check bool) "linked" true (Vg_core.Transtab.link tt ~src ~slot ~dst);
  (* push past 80% occupancy: FIFO eviction drops the oldest chunk,
     which includes src and dst — the chain must be unlinked *)
  for i = 0 to 59 do
    Vg_core.Transtab.insert tt
      (Int64.of_int (0x9000 + i))
      (dummy_trans (Int64.of_int (0x9000 + i)))
  done;
  Alcotest.(check bool) "eviction happened" true (tt.n_evicted > 0);
  Alcotest.(check bool) "chain target evicted" true
    (Vg_core.Transtab.find tt 0x20L = None);
  Alcotest.(check bool) "slot unlinked (no stale jump)" true
    (slot.cs_next = None);
  Alcotest.(check int) "no live chains" 0 tt.live_chains;
  Alcotest.(check bool) "unlink counted" true (tt.n_chain_unlinks >= 1)

let test_chain_unlink_on_discard_range () =
  let tt = Vg_core.Transtab.create ~capacity:64 () in
  let src, slot = dummy_trans_with_exit 0x1000L 0x2000L in
  let dst = dummy_trans 0x2000L in
  Vg_core.Transtab.insert tt 0x1000L src;
  Vg_core.Transtab.insert tt 0x2000L dst;
  ignore (Vg_core.Transtab.link tt ~src ~slot ~dst);
  (* unmap / discard-translations over the TARGET's range *)
  Alcotest.(check int) "one discarded" 1
    (Vg_core.Transtab.discard_range tt 0x2000L 16);
  Alcotest.(check bool) "slot unlinked" true (slot.cs_next = None);
  Alcotest.(check bool) "source survives" true
    (Vg_core.Transtab.find tt 0x1000L <> None);
  Alcotest.(check int) "no live chains" 0 tt.live_chains

let test_chain_unlink_on_smc_discard () =
  let tt = Vg_core.Transtab.create ~capacity:64 () in
  let a, slot_a = dummy_trans_with_exit 0x100L 0x300L in
  let b, slot_b = dummy_trans_with_exit 0x200L 0x300L in
  let victim = dummy_trans 0x300L in
  Vg_core.Transtab.insert tt 0x100L a;
  Vg_core.Transtab.insert tt 0x200L b;
  Vg_core.Transtab.insert tt 0x300L victim;
  ignore (Vg_core.Transtab.link tt ~src:a ~slot:slot_a ~dst:victim);
  ignore (Vg_core.Transtab.link tt ~src:b ~slot:slot_b ~dst:victim);
  Alcotest.(check int) "two live chains" 2 tt.live_chains;
  (* SMC invalidation discards the victim: EVERY chain into it must go *)
  Vg_core.Transtab.discard_key tt 0x300L;
  Alcotest.(check bool) "slot a unlinked" true (slot_a.cs_next = None);
  Alcotest.(check bool) "slot b unlinked" true (slot_b.cs_next = None);
  Alcotest.(check int) "no live chains" 0 tt.live_chains;
  (* a retranslation under the same key must NOT inherit old chains *)
  let victim' = dummy_trans 0x300L in
  Vg_core.Transtab.insert tt 0x300L victim';
  Alcotest.(check bool) "slots still unlinked after retranslation" true
    (slot_a.cs_next = None && slot_b.cs_next = None)

let test_chain_flush_resets () =
  let tt = Vg_core.Transtab.create ~capacity:64 () in
  let src, slot = dummy_trans_with_exit 0x10L 0x20L in
  let dst = dummy_trans 0x20L in
  Vg_core.Transtab.insert tt 0x10L src;
  Vg_core.Transtab.insert tt 0x20L dst;
  ignore (Vg_core.Transtab.link tt ~src ~slot ~dst);
  Vg_core.Transtab.flush tt;
  Alcotest.(check int) "table empty" 0 tt.used;
  Alcotest.(check bool) "entries gone" true
    (Vg_core.Transtab.find tt 0x10L = None);
  Alcotest.(check bool) "slot unlinked" true (slot.cs_next = None);
  Alcotest.(check int) "live chains reset" 0 tt.live_chains;
  Alcotest.(check bool) "cumulative counters preserved" true
    (tt.n_chain_links = 1 && tt.n_chain_unlinks = 1)

let test_dispatch_cache () =
  let d = Vg_core.Dispatch.create ~size:16 () in
  Alcotest.(check bool) "miss on empty" true (Vg_core.Dispatch.lookup d 5L = None);
  Vg_core.Dispatch.update d 5L (dummy_trans 5L);
  (match Vg_core.Dispatch.lookup d 5L with
  | Some tr -> Alcotest.(check int64) "hit" 5L tr.t_guest_addr
  | None -> Alcotest.fail "expected hit");
  (* conflicting key (same slot in a 16-entry direct map) evicts *)
  Vg_core.Dispatch.update d 21L (dummy_trans 21L);
  Alcotest.(check bool) "conflict evicts" true (Vg_core.Dispatch.lookup d 5L = None);
  Alcotest.(check bool) "hit rate computed" true
    (Vg_core.Dispatch.hit_rate d > 0.0 && Vg_core.Dispatch.hit_rate d < 1.0)

let test_dispatch_hit_rate_fresh () =
  (* no lookups yet: the rate must be exactly 0.0, never NaN/1.0 — this
     value flows unguarded into stats and the JSON export *)
  let d = Vg_core.Dispatch.create ~size:16 () in
  Alcotest.(check (float 0.0)) "fresh cache rate" 0.0 (Vg_core.Dispatch.hit_rate d);
  Alcotest.(check bool) "not NaN" false
    (Float.is_nan (Vg_core.Dispatch.hit_rate d));
  (* a fresh session (zero blocks run) exports the same well-defined 0 *)
  let img = Minicc.Driver.compile "int main() { return 0; }" in
  let s = Vg_core.Session.create ~tool:Vg_core.Tool.nulgrind img in
  let st = Vg_core.Session.stats s in
  Alcotest.(check (float 0.0)) "fresh session rate" 0.0 st.st_dispatch_hit_rate;
  Alcotest.(check int64) "no entries" 0L st.st_dispatch_entries

let test_errors_dedup () =
  let e = Vg_core.Errors.create ~output:(fun _ -> ()) () in
  let fresh1 = Vg_core.Errors.record e ~kind:"K" ~msg:"m" ~stack:[ 1L; 2L ] in
  let fresh2 = Vg_core.Errors.record e ~kind:"K" ~msg:"m" ~stack:[ 1L; 2L ] in
  let fresh3 = Vg_core.Errors.record e ~kind:"K" ~msg:"m" ~stack:[ 9L ] in
  Alcotest.(check bool) "first is fresh" true fresh1;
  Alcotest.(check bool) "repeat deduplicated" false fresh2;
  Alcotest.(check bool) "different stack fresh" true fresh3;
  Alcotest.(check int) "distinct" 2 (Vg_core.Errors.distinct_errors e);
  Alcotest.(check int) "total counts repeats" 3 (Vg_core.Errors.total_errors e)

let test_suppression_parsing () =
  let supps =
    Vg_core.Errors.parse_suppressions
      {|
# a comment-free format
{
  first
  UninitValue
  fun:main*
  fun:*
}
{
  second
  *
  fun:libfunc
}
|}
  in
  Alcotest.(check int) "two suppressions" 2 (List.length supps);
  let e = Vg_core.Errors.create ~output:(fun _ -> ()) () in
  e.symbolize <- (fun a -> if a = 1L then "main+0x10" else "other");
  List.iter (Vg_core.Errors.add_suppression e) supps;
  Alcotest.(check bool) "matches prefix+wildcard" true
    (Vg_core.Errors.suppressed e ~kind:"UninitValue" ~stack:[ 1L; 2L ]);
  Alcotest.(check bool) "kind mismatch not suppressed" false
    (Vg_core.Errors.suppressed e ~kind:"InvalidRead" ~stack:[ 1L; 2L ])

let test_sp_classifier () =
  let regs = Vg_core.Stack_events.make_registered_stacks () in
  let threshold = 0x20_0000L in
  let classify = Vg_core.Stack_events.classify_sp_change ~threshold regs in
  (* small growth: allocation *)
  (match classify ~old_sp:0x1000L ~new_sp:0xFF0L with
  | Some (base, 16, true) -> Alcotest.(check int64) "alloc base" 0xFF0L base
  | _ -> Alcotest.fail "small growth misclassified");
  (* small shrink: death *)
  (match classify ~old_sp:0xFF0L ~new_sp:0x1000L with
  | Some (base, 16, false) -> Alcotest.(check int64) "die base" 0xFF0L base
  | _ -> Alcotest.fail "small shrink misclassified");
  (* beyond 2MB: a stack switch, no events *)
  Alcotest.(check bool) "2MB heuristic" true
    (classify ~old_sp:0x1000_0000L ~new_sp:0x100_0000L = None);
  (* but a registered stack overrides the heuristic *)
  regs.stacks <- [ (1, 0x100_0000L, 0x1800_0000L) ];
  (match classify ~old_sp:0x1000_0000L ~new_sp:0xFF0_0000L with
  | Some (_, _, true) -> ()
  | _ -> Alcotest.fail "registered stack should allow big moves");
  (* moving between two different registered stacks is a switch *)
  regs.stacks <- (2, 0x2000_0000L, 0x2100_0000L) :: regs.stacks;
  Alcotest.(check bool) "cross-stack move is a switch" true
    (classify ~old_sp:0x1080_0000L ~new_sp:0x2080_0000L = None)

let test_shadow_mem_word_ops () =
  (* extra shadow-memory stress: mixed stores and distinguished states *)
  let sm = Tools.Shadow_mem.create () in
  Tools.Shadow_mem.make_defined sm 0x100000L 1024;
  ignore (Tools.Shadow_mem.store sm 0x100100L 8 0xFF00FF00FF00FF00L);
  let ok, v = Tools.Shadow_mem.load sm 0x100100L 8 in
  Alcotest.(check bool) "addressable" true ok;
  Alcotest.(check int64) "vbits roundtrip" 0xFF00FF00FF00FF00L v;
  let ok2, v2 = Tools.Shadow_mem.load sm 0x100104L 4 in
  Alcotest.(check bool) "addressable2" true ok2;
  Alcotest.(check int64) "unaligned slice" 0xFF00FF00L v2

let test_all_events_fire () =
  (* a compact client touching every Table-1 event source; every event
     slot must have fired at least once under Memcheck *)
  let src =
    {| int deep(int n) {
         int local[32];
         local[0] = n;
         if (n <= 0) { return local[0]; }
         return deep(n - 1) + local[0];
       }
       int main() {
         int tv[2]; int tz[2];
         char *m; char *m2;
         int fd; char buf[8]; int sum;
         sum = 0;
         gettimeofday(tv, tz);
         settimeofday(tv);
         fd = open("f.txt", 0);
         if (fd >= 0) { read(fd, buf, 8); close(fd); }
         write(1, "x\n", 2);
         m = mmap(65536);
         m[0] = 'a';
         m2 = mremap(m, 65536, 131072);
         sum = sum + m2[0];
         munmap(m2, 131072);
         sum = sum + brk(brk(0) + 8192);
         sum = sum + brk(brk(0) - 4096);
         sum = sum + deep(12);
         return sum * 0;
       } |}
  in
  let img = Minicc.Driver.compile src in
  let s = Vg_core.Session.create ~tool:Tools.Memcheck.tool img in
  Kernel.add_file s.kern "f.txt" "contents";
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited 0 -> ()
  | _ -> Alcotest.fail "events client failed");
  List.iter
    (fun (name, _site, count) ->
      Alcotest.(check bool) (name ^ " fired") true (count > 0L))
    (Vg_core.Events.table1_rows s.events)

let tests =
  [
    t "all fourteen events fire" test_all_events_fire;
    t "transtab: insert/find" test_transtab_basics;
    t "transtab: FIFO chunk eviction" test_transtab_fifo_eviction;
    t "transtab: discard range" test_transtab_discard_range;
    t "transtab: constituent discard kills superblock"
      test_super_discard_constituent;
    t "chaining: link requires residency" test_chain_link_basics;
    t "chaining: eviction unlinks" test_chain_unlink_on_eviction;
    t "chaining: discard range unlinks" test_chain_unlink_on_discard_range;
    t "chaining: SMC discard unlinks all" test_chain_unlink_on_smc_discard;
    t "chaining: flush resets chain state" test_chain_flush_resets;
    t "dispatch: direct-mapped cache" test_dispatch_cache;
    t "dispatch: fresh cache hit rate is 0" test_dispatch_hit_rate_fresh;
    t "errors: dedup" test_errors_dedup;
    t "errors: suppression parsing/matching" test_suppression_parsing;
    t "stack events: SP-change classifier" test_sp_classifier;
    t "shadow memory: word slices" test_shadow_mem_word_ops;
  ]
