(* End-to-end tests of the Valgrind core: a client program must behave
   identically under Nulgrind (translated, dispatched, scheduled) and on
   the native engine. *)

let fact_src =
  {|
        .text
        .global _start
_start: movi r0, 10
        push r0
        call fact
        addi sp, 4
        ; print the result as exit code
        mov r1, r0
        movi r0, 1          ; sys_exit
        syscall

fact:   push fp
        mov fp, sp
        ldw r0, [fp+8]      ; n
        cmpi r0, 1
        jle base
        dec r0
        push r0
        call fact
        addi sp, 4
        ldw r1, [fp+8]
        mul r0, r1
        pop fp
        ret
base:   movi r0, 1
        pop fp
        ret
|}

let hello_src =
  {|
        .text
        .global _start
_start: movi r1, msg
        movi r2, 14
        movi r0, 2          ; sys_write
        mov r3, r2
        mov r2, r1
        movi r1, 1          ; fd 1
        syscall
        movi r0, 1
        movi r1, 0
        syscall
        .data
msg:    .ascii "hello, world!\n"
|}

let run_native src =
  let img = Guest.Asm.assemble src in
  let eng = Native.create img in
  let reason = Native.run eng in
  (reason, Native.stdout_contents eng)

let run_valgrind ?(tool = Vg_core.Tool.nulgrind) ?options src =
  let img = Guest.Asm.assemble src in
  let s = Vg_core.Session.create ?options ~tool img in
  let reason = Vg_core.Session.run s in
  (s, reason, Vg_core.Session.client_stdout s)

let check_exit what expected = function
  | Native.Exited n -> Alcotest.(check int) what expected n
  | Native.Fatal_signal n -> Alcotest.failf "%s: fatal signal %d" what n
  | Native.Out_of_fuel -> Alcotest.failf "%s: out of fuel" what

let check_vg_exit what expected = function
  | Vg_core.Session.Exited n -> Alcotest.(check int) what expected n
  | Vg_core.Session.Fatal_signal n -> Alcotest.failf "%s: fatal signal %d" what n
  | Vg_core.Session.Out_of_fuel -> Alcotest.failf "%s: out of fuel" what

let test_fact_native () =
  let reason, _ = run_native fact_src in
  check_exit "fact native exit" 3628800 reason

let test_fact_nulgrind () =
  let _, reason, _ = run_valgrind fact_src in
  check_vg_exit "fact nulgrind exit" 3628800 reason

let test_hello_both () =
  let nr, nout = run_native hello_src in
  check_exit "hello native" 0 nr;
  Alcotest.(check string) "native stdout" "hello, world!\n" nout;
  let _, vr, vout = run_valgrind hello_src in
  check_vg_exit "hello nulgrind" 0 vr;
  Alcotest.(check string) "nulgrind stdout" "hello, world!\n" vout

let test_dispatcher_stats () =
  let s, reason, _ = run_valgrind fact_src in
  check_vg_exit "exit" 3628800 reason;
  let st = Vg_core.Session.stats s in
  Alcotest.(check bool) "made translations" true (st.st_translations > 0);
  Alcotest.(check bool)
    "ran blocks" true
    (Int64.unsigned_compare st.st_blocks 10L > 0)

(* ---- threads under the valgrind engine (serialised execution) ------- *)

let threads_src =
  {|
        .text
        .global _start
_start: movi r0, 7            ; mmap a second stack
        movi r1, 0
        movi r2, 65536
        syscall
        mov r2, r0
        addi r2, 65532
        movi r0, 15           ; thread_create(entry=worker, sp, arg=300)
        movi r1, worker
        movi r3, 300
        syscall
main_loop:
        movi r3, counter
        ldw r4, [r3]
        inc r4
        stw [r3], r4
        movi r0, 17           ; yield
        syscall
        movi r3, done_flag
        ldw r4, [r3]
        cmpi r4, 1
        jne main_loop
        movi r3, counter
        ldw r1, [r3]
        movi r0, 1
        syscall
worker: mov r5, r1
wloop:  movi r3, counter
        ldw r4, [r3]
        inc r4
        stw [r3], r4
        movi r0, 17
        syscall
        dec r5
        jne wloop
        movi r3, done_flag
        movi r4, 1
        stw [r3], r4
        movi r0, 16           ; thread_exit
        syscall
        .data
counter:   .word 0
done_flag: .word 0
|}

let test_threads_serialised () =
  let nr, _ = run_native threads_src in
  let s, vr, _ = run_valgrind threads_src in
  (match (nr, vr) with
  | Native.Exited n, Vg_core.Session.Exited v ->
      Alcotest.(check bool) "native counter >= 600" true (n >= 600);
      Alcotest.(check bool) "vg counter >= 600" true (v >= 600)
  | _ -> Alcotest.fail "thread programs failed");
  let st = Vg_core.Session.stats s in
  Alcotest.(check bool) "the lock changed hands" true
    (Int64.to_int st.st_lock_handoffs > 100)

(* ---- signals under the valgrind engine ------------------------------ *)

let signal_src =
  {|
        .text
        .global _start
_start: movi r0, 12          ; sigaction(SIGUSR1, handler)
        movi r1, 10
        movi r2, handler
        syscall
        movi r0, 13          ; kill(1, SIGUSR1)
        movi r1, 1
        movi r2, 10
        syscall
        movi r3, flag        ; sigreturn restored the registers, so the
        ldw r4, [r3]         ; handler reports through memory
        cmpi r4, 99
        jne bad
        movi r0, 1
        movi r1, 42
        syscall
bad:    movi r0, 1
        movi r1, 13
        syscall
handler: ldw r3, [sp+4]
        cmpi r3, 10
        jne hbad
        movi r3, flag
        movi r4, 99
        stw [r3], r4
        ret
hbad:   ret
        .data
flag:   .word 0
|}

let test_signals_vg () =
  let _, vr, _ = run_valgrind signal_src in
  check_vg_exit "handler ran, sigreturn resumed" 42 vr;
  let nr, _ = run_native signal_src in
  check_exit "same natively" 42 nr

(* ---- self-modifying code (the §3.16 hash mechanism) ------------------ *)

let test_smc_on_stack () =
  let src = Test_guest.smc_stack_src in
  let nr, _ = run_native src in
  check_exit "native smc" 1077 nr;
  let s, vr, _ = run_valgrind src in
  check_vg_exit "vg smc" 1077 vr;
  let st = Vg_core.Session.stats s in
  Alcotest.(check bool) "retranslated after hash mismatch" true
    (st.st_retranslations_smc >= 1)

let test_smc_mode_none_misses_it () =
  (* with --smc-check=none the stale translation keeps running: the
     second call must still see the FIRST patched value *)
  let options =
    { Vg_core.Session.default_options with smc_mode = Vg_core.Session.Smc_none }
  in
  let _, vr, _ = run_valgrind ~options Test_guest.smc_stack_src in
  match vr with
  | Vg_core.Session.Exited n ->
      Alcotest.(check int) "stale translation result" 154 n (* 77 + 77 *)
  | _ -> Alcotest.fail "unexpected termination"

(* ---- discard-translations client request (JIT-style codegen) -------- *)

let test_discard_translations () =
  (* same self-modifying program, smc-check=none, but with an explicit
     discard client request between the patches — the dynamic-code-
     generator protocol of §3.16 *)
  let src =
    {|
        .text
_start: mov r2, sp
        subi r2, 256
        movi r1, template
        movi r3, 16
cploop: ldb r4, [r1]
        stb [r2], r4
        inc r1
        inc r2
        dec r3
        jne cploop
        mov r2, sp
        subi r2, 256
        movi r4, 77
        stw [r2+2], r4
        call* r2
        mov r5, r0
        movi r4, 1000
        stw [r2+2], r4
        ; tell the core the code changed: args block = [addr, len]
        mov r3, sp
        subi r3, 512
        stw [r3], r2
        movi r4, 16
        stw [r3+4], r4
        movi r0, 2           ; CR discard_translations
        mov r1, r3
        clreq
        mov r2, sp
        subi r2, 256
        call* r2
        add r5, r0
        mov r0, r5
        mov r1, r5
        movi r0, 1
        syscall
template:
        movi r0, 11
        ret
|}
  in
  let options =
    { Vg_core.Session.default_options with smc_mode = Vg_core.Session.Smc_none }
  in
  let _, vr, _ = run_valgrind ~options src in
  check_vg_exit "discard request forces retranslation" 1077 vr

(* ---- function wrapping (§3.13) --------------------------------------- *)

let test_function_wrapping () =
  let src =
    {| int compute(int x) { return x * x + 1; }
       int main() {
         int r;
         r = compute(6);     /* 37 */
         r = r + compute(3); /* + 10 = 47 */
         return r;
       } |}
  in
  let img = Minicc.Driver.compile src in
  let enters = ref [] in
  let exits = ref [] in
  let wrapping_tool : Vg_core.Tool.t =
    {
      name = "wraptest";
      description = "wraps compute";
      shadow_ranges = [];
      create =
        (fun caps ->
          caps.wrap_function ~symbol:"compute"
            ~on_enter:(fun () ->
              (* args at [sp+4] inside the wrapper stub *)
              let sp = caps.read_guest Guest.Arch.off_sp 4 in
              let arg = Aspace.read caps.mem (Int64.add sp 4L) 4 in
              enters := Int64.to_int arg :: !enters)
            ~on_exit:(fun () ->
              (* original's result in r1; transparent: write it to r0 *)
              let v = caps.read_guest (Guest.Arch.off_reg 1) 4 in
              exits := Int64.to_int v :: !exits;
              caps.write_guest (Guest.Arch.off_reg 0) 4 v);
          {
            instrument = (fun b -> b);
            fini = (fun ~exit_code:_ -> ());
            client_request = (fun ~code:_ ~args:_ -> None);
            snapshot = Vg_core.Tool.snapshot_nothing;
            restore = Vg_core.Tool.restore_nothing;
          });
    }
  in
  let s = Vg_core.Session.create ~tool:wrapping_tool img in
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited 47 -> ()
  | Vg_core.Session.Exited n -> Alcotest.failf "wrapped result %d, wanted 47" n
  | _ -> Alcotest.fail "bad termination");
  Alcotest.(check (list int)) "arguments observed" [ 3; 6 ] !enters;
  Alcotest.(check (list int)) "results observed" [ 10; 37 ] !exits

(* ---- suppressions ----------------------------------------------------- *)

let test_suppressions () =
  let src =
    {| int main() {
         int x[2];
         if (x[0] > 3) { return 1; }
         return 0;
       } |}
  in
  let img = Minicc.Driver.compile src in
  let s = Vg_core.Session.create ~tool:Tools.Memcheck.tool img in
  List.iter
    (Vg_core.Errors.add_suppression s.errors)
    (Vg_core.Errors.parse_suppressions
       {|
{
  ignore-main-uninit
  UninitValue
  fun:main*
}
|});
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited _ -> ()
  | _ -> Alcotest.fail "bad termination");
  Alcotest.(check int) "error suppressed" 0
    (Vg_core.Errors.total_errors s.errors);
  Alcotest.(check bool) "counted as suppressed" true (s.errors.n_suppressed > 0)

(* ---- client requests / transparency of RUNNING_ON_VALGRIND ---------- *)

let test_running_on_valgrind () =
  let src =
    {| int main() { return vg_running_on_valgrind(); } |}
  in
  let img = Minicc.Driver.compile src in
  let eng = Native.create img in
  (match Native.run eng with
  | Native.Exited 0 -> () (* natively: clreq is a no-op returning 0 *)
  | _ -> Alcotest.fail "native run failed");
  let s = Vg_core.Session.create ~tool:Vg_core.Tool.nulgrind img in
  match Vg_core.Session.run s with
  | Vg_core.Session.Exited 1 -> ()
  | _ -> Alcotest.fail "RUNNING_ON_VALGRIND not 1 under the core"

(* ---- the core protects itself (§3.10) -------------------------------- *)

let test_mmap_precheck () =
  (* a client mmap cannot land inside the core's address range; the
     kernel hook makes it fail cleanly rather than corrupting the core *)
  let src =
    {| int main() {
         char *p;
         int i;
         /* exhaust... no: just check a big pile of mmaps never lands in
            the valgrind range */
         for (i = 0; i < 50; i++) {
           p = mmap(1048576);
           if ((int)p == -12) { return 2; }   /* ENOMEM: also fine */
           if ((int)p >= (int)0x38000000 && (int)p < (int)0x70000000) {
             return 1;                        /* intruded! *)  */
           }
         }
         return 0;
       } |}
  in
  let img = Minicc.Driver.compile src in
  let s = Vg_core.Session.create ~tool:Vg_core.Tool.nulgrind img in
  match Vg_core.Session.run s with
  | Vg_core.Session.Exited n ->
      Alcotest.(check bool) "never intrudes" true (n = 0 || n = 2)
  | _ -> Alcotest.fail "bad termination"

(* ---- chaining is semantics-preserving -------------------------------- *)

let test_chaining_equivalent () =
  let chained = { Vg_core.Session.default_options with chaining = true } in
  let unchained = { Vg_core.Session.default_options with chaining = false } in
  let s1, r1, out1 = run_valgrind ~options:chained fact_src in
  let s2, r2, out2 = run_valgrind ~options:unchained fact_src in
  (match (r1, r2) with
  | Vg_core.Session.Exited a, Vg_core.Session.Exited b ->
      Alcotest.(check int) "same result" a b
  | _ -> Alcotest.fail "bad termination");
  Alcotest.(check string) "same output" out1 out2;
  let st1 = Vg_core.Session.stats s1 and st2 = Vg_core.Session.stats s2 in
  Alcotest.(check bool) "chained transfers happened" true
    (Int64.unsigned_compare st1.st_chained 0L > 0);
  Alcotest.(check int64) "no chaining without the flag" 0L st2.st_chained;
  Alcotest.(check bool) "fewer dispatcher entries when chained" true
    (Int64.unsigned_compare st1.st_dispatch_entries st2.st_dispatch_entries
    < 0)

(* ---- chaining invalidation under transtab eviction pressure ---------- *)

(* a client with ~80 distinct code blocks (40 called functions plus their
   return continuations), looped: with a tiny translation table this
   thrashes the FIFO eviction constantly while chains are live, so any
   stale chain into an evicted-then-retranslated block would compute the
   wrong sum *)
let many_blocks_src =
  let b = Buffer.create 4096 in
  Buffer.add_string b "        .text\n_start: movi r0, 0\n        movi r2, 100\n";
  Buffer.add_string b "outer:\n";
  for i = 0 to 39 do
    Buffer.add_string b (Printf.sprintf "        call fn%d\n" i)
  done;
  Buffer.add_string b
    "        dec r2\n        jne outer\n        mov r1, r0\n        movi r0, 1\n        syscall\n";
  for i = 0 to 39 do
    Buffer.add_string b (Printf.sprintf "fn%d:    inc r0\n        ret\n" i)
  done;
  Buffer.contents b

let test_chaining_eviction_pressure () =
  let options =
    {
      Vg_core.Session.default_options with
      chaining = true;
      transtab_capacity = 64;
    }
  in
  let s, vr, _ = run_valgrind ~options many_blocks_src in
  check_vg_exit "sum correct under constant eviction" 4000 vr;
  let st = Vg_core.Session.stats s in
  Alcotest.(check bool) "table thrashed" true (st.st_transtab_evictions > 0);
  Alcotest.(check bool) "chains were patched" true (st.st_chain_patched > 0);
  Alcotest.(check bool) "eviction unlinked chains" true
    (st.st_chain_unlinked > 0);
  (* the same program, unchained, must agree (it trivially does natively
     too, but this pins the chained/unchained pair) *)
  let _, vr2, _ =
    run_valgrind
      ~options:{ options with chaining = false }
      many_blocks_src
  in
  check_vg_exit "same result unchained" 4000 vr2

(* ---- chaining vs self-modifying code --------------------------------- *)

let test_chaining_smc () =
  (* the §3.16 SMC client, explicitly chained: the discard of the stale
     translation must unlink chains so the patched code is re-entered
     through a fresh translation *)
  let options = { Vg_core.Session.default_options with chaining = true } in
  let s, vr, _ = run_valgrind ~options Test_guest.smc_stack_src in
  check_vg_exit "smc result correct with chaining" 1077 vr;
  let st = Vg_core.Session.stats s in
  Alcotest.(check bool) "retranslated after hash mismatch" true
    (st.st_retranslations_smc >= 1)

(* ---- tiered translation ---------------------------------------------- *)

(* aggressive tiering knobs so the short test clients exercise promotion
   and trace formation within a few hundred block executions *)
let tiered_hot_options =
  {
    Vg_core.Session.default_options with
    tier0 = true;
    promote_threshold = 2;
    superblocks = true;
    trace_threshold = 8;
    trace_max_blocks = 4;
  }

let full_only_options =
  { Vg_core.Session.default_options with tier0 = false; superblocks = false }

(* a hot multi-block loop with a conditional side path: every 4th
   iteration takes the fallthrough, the rest branch over it, so a
   superblock stitched along the hot path keeps leaving through its
   side exit.  sum = 200 + 50*100 = 5200. *)
let side_exit_src =
  {|
        .text
        .global _start
_start: movi r0, 0
        movi r2, 200
loop:   mov r3, r2
        andi r3, 3
        jnz skip
        addi r0, 100
skip:   inc r0
        dec r2
        jnz loop
        mov r1, r0
        movi r0, 1          ; sys_exit
        syscall
|}

let test_promotion_exactly_once () =
  (* with tier-0 on and superblocks off, every full-pipeline translation
     is a promotion, and a promoted block never promotes again (the
     replacement is Tier_full, which the promotion check skips) — so
     promotions = full translations <= quick translations *)
  let options =
    { tiered_hot_options with promote_threshold = 4; superblocks = false }
  in
  let s, vr, out = run_valgrind ~options many_blocks_src in
  check_vg_exit "tiered result correct" 4000 vr;
  let st = Vg_core.Session.stats s in
  Alcotest.(check bool) "hot blocks promoted" true (st.st_promotions > 0);
  Alcotest.(check int) "every full translation is one promotion"
    st.st_promotions st.st_translations_full;
  Alcotest.(check bool) "at most one promotion per quick translation" true
    (st.st_promotions <= st.st_translations_tier0);
  Alcotest.(check int) "tier counters partition the total"
    st.st_translations
    (st.st_translations_tier0 + st.st_translations_full
   + st.st_translations_super);
  (* the same client through the full pipeline only must agree *)
  let _, vr2, out2 = run_valgrind ~options:full_only_options many_blocks_src in
  check_vg_exit "full-only result agrees" 4000 vr2;
  Alcotest.(check string) "same client output" out2 out

let test_superblock_side_exits () =
  (* the stitched hot path leaves through its inverted side exit 50
     times; guest state and the tool's event stream must be exactly what
     block-by-block execution produces *)
  let run options =
    let img = Guest.Asm.assemble side_exit_src in
    let s = Vg_core.Session.create ~options ~tool:Tools.Lackey.tool img in
    let reason = Vg_core.Session.run s in
    (s, reason, Vg_core.Session.client_stdout s, Vg_core.Session.tool_output s)
  in
  let s1, r1, out1, tool1 = run tiered_hot_options in
  let _, r2, out2, tool2 = run full_only_options in
  check_vg_exit "tiered exit" 5200 r1;
  check_vg_exit "full-only exit" 5200 r2;
  Alcotest.(check string) "same client output" out2 out1;
  Alcotest.(check string) "same tool event totals" tool2 tool1;
  let st = Vg_core.Session.stats s1 in
  Alcotest.(check bool) "a superblock actually formed" true
    (st.st_translations_super >= 1)

let test_superblock_smc () =
  (* the SMC client under aggressive tiering: whatever got promoted or
     stitched over the patched range must be invalidated by the code
     write, or the stale translation computes the wrong sum *)
  let s, vr, _ = run_valgrind ~options:tiered_hot_options Test_guest.smc_stack_src in
  check_vg_exit "smc result correct under tiering" 1077 vr;
  let st = Vg_core.Session.stats s in
  Alcotest.(check bool) "retranslated after hash mismatch" true
    (st.st_retranslations_smc >= 1)

let test_tiered_deterministic () =
  (* two identical tiered runs must agree on every published metric
     (promotion points, superblock formation, per-tier cycle splits) *)
  let run () =
    let img = Guest.Asm.assemble side_exit_src in
    let s = Vg_core.Session.create ~options:tiered_hot_options ~tool:Vg_core.Tool.nulgrind img in
    let _ = Vg_core.Session.run s in
    Vg_core.Session.stats_json s
  in
  Alcotest.(check string) "bit-identical metrics" (run ()) (run ())

let tests =
  [
    Alcotest.test_case "fact native" `Quick test_fact_native;
    Alcotest.test_case "fact nulgrind" `Quick test_fact_nulgrind;
    Alcotest.test_case "hello native+nulgrind" `Quick test_hello_both;
    Alcotest.test_case "dispatcher stats" `Quick test_dispatcher_stats;
    Alcotest.test_case "threads serialised" `Quick test_threads_serialised;
    Alcotest.test_case "signals between blocks" `Quick test_signals_vg;
    Alcotest.test_case "smc on stack retranslates" `Quick test_smc_on_stack;
    Alcotest.test_case "smc-check=none goes stale" `Quick
      test_smc_mode_none_misses_it;
    Alcotest.test_case "discard-translations request" `Quick
      test_discard_translations;
    Alcotest.test_case "function wrapping" `Quick test_function_wrapping;
    Alcotest.test_case "suppressions" `Quick test_suppressions;
    Alcotest.test_case "RUNNING_ON_VALGRIND" `Quick test_running_on_valgrind;
    Alcotest.test_case "mmap pre-check" `Quick test_mmap_precheck;
    Alcotest.test_case "chaining equivalent" `Quick test_chaining_equivalent;
    Alcotest.test_case "chaining under eviction pressure" `Quick
      test_chaining_eviction_pressure;
    Alcotest.test_case "chaining vs smc" `Quick test_chaining_smc;
    Alcotest.test_case "tier0: promotion exactly once" `Quick
      test_promotion_exactly_once;
    Alcotest.test_case "superblocks: side exits equivalent" `Quick
      test_superblock_side_exits;
    Alcotest.test_case "superblocks vs smc" `Quick test_superblock_smc;
    Alcotest.test_case "tiering deterministic" `Quick
      test_tiered_deterministic;
  ]
