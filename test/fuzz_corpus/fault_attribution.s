; curated: mid-block fault attribution.  Scratch registers are written
; before a store to an unmapped address; the signal number, faulting
; PC, sp and fp must match the native interpreter exactly (scratch
; register PUTs may legally be dead-store-eliminated at the fault, so
; the oracle only pins the precise-exception set).
_start:
    movi r1, 0x11
    addi r1, 0x22
    movi r2, 0xeeee0010
    shli r1, 4
    stw [r2], r1           ; unmapped: SIGSEGV here
    movi r0, 1
    movi r1, 0
    syscall
