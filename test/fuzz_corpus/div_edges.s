; curated: signed/unsigned division edge cases every engine must agree
; on bit-for-bit: INT_MIN/-1 (the x86-overflow case), INT_MIN/1,
; all-ones unsigned, and quotients feeding flags.
_start:
    movi r1, 0x80000000
    movi r2, 0xffffffff
    mov r3, r1
    divs r3, r2            ; INT_MIN / -1
    stw [buf+0], r3
    mov r4, r1
    movi r5, 1
    divs r4, r5            ; INT_MIN / 1 -> INT_MIN
    stw [buf+4], r4
    mov r5, r2
    movi r3, 3
    divu r5, r3            ; 0xffffffff /u 3 -> 0x55555555
    stw [buf+8], r5
    cmpi r5, 0x55555555
    seteq r1
    movi r0, 1
    syscall
.data
buf:
    .space 16
