; curated: overlapping decode streams.  The 6-byte movi at ov encodes
; "mov r3, r1; nop; nop" starting at ov+2; both entry points execute
; depending on r0, and flags set before the overlapped region must
; survive into the join under both decodings.
_start:
    movi r5, 0
    movi r0, 0
again:
    movi r1, 9
    cmpi r0, 1
    jeq ov+2               ; second pass enters mid-instruction
ov:
    movi r2, 0x3101        ; +2 decodes as: mov r3, r1; nop; nop
    movi r3, 4
join:
    add r5, r3             ; pass 1: +4, pass 2: +9
    inc r0
    cmpi r0, 2
    jb again
    mov r1, r5             ; 13
    movi r0, 1
    syscall
