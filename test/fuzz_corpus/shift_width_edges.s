; curated: shift counts at and beyond the 32-bit register width.
; VG32 masks shift counts mod 32 (like x86); the interp, the JIT's
; constant folder and the host ALU must all agree on 31/32/33/63/64.
_start:
    movi r1, 0x80000001
    mov r2, r1
    shli r2, 31            ; -> 0x80000000
    mov r3, r1
    shli r3, 32            ; count 32 masks to 0 -> unchanged
    mov r4, r1
    shri r4, 33            ; count 33 masks to 1 -> 0x40000000
    mov r5, r1
    sari r5, 63            ; count 63 masks to 31 -> 0xffffffff
    movi r0, 64
    mov r1, r1
    shl r1, r0             ; register count 64 masks to 0 -> unchanged
    ; fold everything into the exit code
    xor r1, r2
    xor r1, r3
    xor r1, r4
    xor r1, r5
    stw [buf+0], r1
    andi r1, 63
    movi r0, 1
    syscall
.data
buf:
    .space 16
