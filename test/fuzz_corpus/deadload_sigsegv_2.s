; vgfuzz minimized repro: seed=1000102 size=5 (shrunk from 20), generator faulty mode
; same dead-load DCE class as deadload_sigsegv_1.s, reached through an
; SMC-on-stack block: native faulted at 0x100b0, the session ran 43 extra
; instructions and exited cleanly before the fix
_start:
    movi r0, 0x20
    movi r1, 0x10000
    movi r2, 0x2cf4c828
    movi r3, 0x2
    movi r4, 0xffff
    movi r5, 0x55555555
b0:
    call fn0_0
b1:
    mov r4, sp
    subi r4, 1792
    ldw r3, [smc1]
    stw [r4], r3
    ldw r3, [smc1+4]
    stw [r4+4], r3
    ldw r3, [smc1+8]
    stw [r4+8], r3
    movi r2, 206
    stb [r4+2], r2
    callr r4
    add r0, r3
    movi r2, 206
    stb [r4+2], r2
    callr r4
    xor r0, r3
b2:
    movi r0, 0x12cae2d4
    push r3
    pop r1
    cmpi r0, 0xd168819c
    seta r1
    muli r5, 0x7a0cfd69
    ori r0, 1
    divu r2, r0
    andi r3, 0xf8
    ldbs r2, [r3+buf+0]
b3:
    movi r4, 0x44
    ldw r3, [r4]
b4:
    movi r5, 4
b4l:
    mov r3, r2
    test r2, r1
    setlt r0
    movi r3, 0x8000
    ori r0, 0x416cd15a
    dec r5
    jne b4l
b5:
    stw [buf+0], r0
    stw [buf+4], r1
    stw [buf+8], r2
    stw [buf+12], r3
    stw [buf+16], r4
    stw [buf+20], r5
    mov r1, r0
    xor r1, r2
    xor r1, r3
    xor r1, r4
    xor r1, r5
    andi r1, 63
    movi r0, 1
    syscall
fn0_0:
    movi r0, 0x5abd6e39
    sub r4, r1
    andi r5, 0xf8
    ldw r0, [r5+buf+3]
    call fn0_1
    ret
fn0_1:
    movi r3, 0x7fffffff
    call fn0_2
    vsplat v2, r4
    vcmpeq32 v2, v1
    vextr r5, v2, 3
    ret
fn0_2:
    add r5, r3
    mov r0, r3
    mul r3, r1
    call fn0_3
    ret
fn0_3:
    xori r4, 0x0
    sub r5, r2
    ret
smc1:
    movi r3, 0
    ret
    nop
    nop
    nop
    nop
    nop
.data
buf:
    .space 256

