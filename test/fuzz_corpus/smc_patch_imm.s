; curated: self-modifying code on the rwx stack.  Copies a donor
; routine (movi r3, 0; ret) below sp, patches the movi immediate byte
; between calls, and calls it twice; the second call must see the new
; immediate under every engine (the session must invalidate the first
; translation of the stack-hosted block).
_start:
    mov r4, sp
    subi r4, 512
    ldw r3, [donor]
    stw [r4], r3
    ldw r3, [donor+4]
    stw [r4+4], r3
    movi r2, 21
    stb [r4+2], r2         ; patch imm low byte: movi r3, 21
    callr r4
    mov r5, r3
    movi r2, 33
    stb [r4+2], r2         ; repatch: movi r3, 33
    callr r4
    add r5, r3             ; 21 + 33 = 54
    movi r0, 1
    mov r1, r5
    syscall
donor:
    movi r3, 0
    ret
    nop
