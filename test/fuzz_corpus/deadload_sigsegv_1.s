; vgfuzz minimized repro: seed=1000032 size=4 (shrunk from 10), generator faulty mode
; found 2026-08: the JIT's dead-code pass dropped a load whose destination
; register was overwritten later in the superblock, swallowing the SIGSEGV
; (native: signal 11 at 0x10082; session before the fix: clean exit 0)
_start:
    movi r0, 0x97252a5a
    movi r1, 0xfec5f1bd
    movi r2, 0x80
    movi r3, 0xb135b87
    movi r4, 0x418e8bdb
    movi r5, 0x80
b0:
    movi r1, 1
    cmpi r1, 1
    jeq ov0+2
ov0:
    movi r2, 0x3101
b1:
    andi r3, 3
    ldw r4, [r3*4+jt1]
    jmpr r4
jt1c0:
    ldw r2, [buf+148]
    mul r2, r2
    jmp b1x
jt1c1:
    mul r1, r3
    jmp b1x
jt1c2:
    lea r3, [r0+r1*2+0xa92]
    jmp b1x
jt1c3:
    cmpi r3, 0x34dbec85
    setbe r2
    fitod f1, r1
    fmul f1, f1
    fdtoi r3, f1
b1x:
b2:
    movi r4, 0xc0f0000
    ldw r3, [r4]
b3:
    andi r2, 0x5d04dbf5
    mov r2, r5
    cmpi r2, 0x28022dea
    setgt r4
    mov r5, r0
    fitod f0, r4
    fadd f0, f2
    fdtoi r3, f0
    movi r1, 0x532bafb3
b4:
    stw [buf+0], r0
    stw [buf+4], r1
    stw [buf+8], r2
    stw [buf+12], r3
    stw [buf+16], r4
    stw [buf+20], r5
    mov r1, r0
    xor r1, r2
    xor r1, r3
    xor r1, r4
    xor r1, r5
    andi r1, 63
    movi r0, 1
    syscall
.data
buf:
    .space 256
jt1:
    .word jt1c0, jt1c1, jt1c2, jt1c3

