(* Vglint verifier tests: the dataflow engine, the mutation-catch suite
   (every seeded miscompile caught at its earliest phase boundary), and
   zero false positives over a tool corpus. *)

open Vex_ir.Ir
module DF = Verify.Dataflow

let t name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Dataflow engine                                                      *)
(* ------------------------------------------------------------------ *)

(* t0 = GET(r0); t1 = t0+1; PUT(r1) = t1; next = t0 *)
let small_block () =
  let b = new_block () in
  let t0 = new_tmp b I32 in
  let t1 = new_tmp b I32 in
  add_stmt b (WrTmp (t0, Get (0, I32)));
  add_stmt b (WrTmp (t1, Binop (Add32, RdTmp t0, i32 1L)));
  add_stmt b (Put (4, RdTmp t1));
  b.next <- RdTmp t0;
  b

let test_liveness () =
  let b = small_block () in
  let live = DF.liveness b in
  (* before stmt 0 nothing is live (t0 is defined there, and liveness is
     of temporaries, which have no value before their definition) *)
  Alcotest.(check bool) "t0 dead before its def" false
    (DF.ISet.mem 0 live.(0));
  (* between stmt 0 and 1: t0 live (used by stmt 1 and next) *)
  Alcotest.(check bool) "t0 live after def" true (DF.ISet.mem 0 live.(1));
  (* between stmt 1 and 2: t1 live, t0 still live via next *)
  Alcotest.(check bool) "t1 live" true (DF.ISet.mem 1 live.(2));
  Alcotest.(check bool) "t0 live into next" true (DF.ISet.mem 0 live.(3))

let test_def_sites () =
  let b = small_block () in
  let defs = DF.def_sites b in
  Alcotest.(check (option int)) "t0 defined at 0" (Some 0) defs.(0);
  Alcotest.(check (option int)) "t1 defined at 1" (Some 1) defs.(1)

let test_state_rw () =
  let b = small_block () in
  let reads, writes = DF.block_state_rw b in
  Alcotest.(check bool) "reads r0" true (List.mem (0, 4) reads);
  Alcotest.(check bool) "writes r1" true (List.mem (4, 4) writes);
  Alcotest.(check bool) "does not write r0" false (List.mem (0, 4) writes)

let test_range_cover () =
  Alcotest.(check bool) "inside" true
    (DF.covered_by (324, 4) [ (320, 160) ]);
  Alcotest.(check bool) "straddles end" false
    (DF.covered_by (476, 8) [ (320, 160) ]);
  Alcotest.(check bool) "outside" false (DF.covered_by (100, 4) [ (320, 160) ])

(* ------------------------------------------------------------------ *)
(* Mutation suite: seeded miscompiles caught at the right boundary      *)
(* ------------------------------------------------------------------ *)

let outcomes = lazy (Verify.Mutate.run ())

let test_mutations_all_caught () =
  let os = Lazy.force outcomes in
  Alcotest.(check bool)
    "at least 10 seeded mutations" true
    (List.length os >= 10);
  List.iter
    (fun (o : Verify.Mutate.outcome) ->
      if not o.o_caught then
        Alcotest.failf "mutation %s: expected a %s failure, got %s" o.o_name
          o.o_expect
          (match o.o_phase with
          | Some p -> p ^ ": " ^ o.o_msg
          | None -> o.o_msg))
    os

let test_mutations_cover_all_phases () =
  (* the suite must exercise every boundary from flat IR to bytes *)
  let os = Lazy.force outcomes in
  List.iter
    (fun phase ->
      Alcotest.(check bool)
        (Printf.sprintf "some mutation caught at %s" phase)
        true
        (List.exists
           (fun (o : Verify.Mutate.outcome) -> o.o_expect = phase)
           os))
    [ "phase 2"; "phase 3"; "phase 4"; "phase 5"; "phase 6"; "phase 7";
      "phase 8" ]

(* ------------------------------------------------------------------ *)
(* Zero false positives over a tool corpus                              *)
(* ------------------------------------------------------------------ *)

let corpus_tools : (string * Vg_core.Tool.t) list =
  [
    ("nulgrind", Vg_core.Tool.nulgrind);
    ("memcheck", Tools.Memcheck.tool);
    ("memcheck-origins", Tools.Memcheck.tool_origins);
    ("cachegrind", Tools.Cachegrind.tool);
    ("massif", Tools.Massif.tool);
    ("lackey", Tools.Lackey.tool);
    ("taintgrind", Tools.Taintgrind.tool);
    ("annelid", Tools.Annelid.tool);
    ("redux", Tools.Redux.tool);
    ("icnti", Tools.Icnt.icnt_inline);
    ("icntc", Tools.Icnt.icnt_call);
  ]

let test_corpus_clean () =
  (* verify_jit is on by default: a verifier false positive on any tool
     raises out of Session.run and fails this test *)
  let w = Option.get (Workloads.find "gcc") in
  let img = Workloads.compile ~scale:1 w in
  List.iter
    (fun (name, tool) ->
      let options =
        { Vg_core.Session.default_options with max_blocks = 20_000L }
      in
      let s = Vg_core.Session.create ~options ~tool img in
      (try ignore (Vg_core.Session.run s)
       with Verify.Verr.Error _ as e ->
         Alcotest.failf "false positive under %s: %s" name
           (Verify.Verr.to_string e));
      let st = Vg_core.Session.stats s in
      Alcotest.(check bool)
        (name ^ " ran boundary checks")
        true
        (st.st_verify_checks >= 8 * st.st_translations))
    corpus_tools

let test_verify_off_runs_no_checks () =
  let w = Option.get (Workloads.find "mcf") in
  let img = Workloads.compile ~scale:1 w in
  let options =
    {
      Vg_core.Session.default_options with
      verify_jit = false;
      max_blocks = 5_000L;
    }
  in
  let s =
    Vg_core.Session.create ~options ~tool:Vg_core.Tool.nulgrind img
  in
  ignore (Vg_core.Session.run s);
  let st = Vg_core.Session.stats s in
  Alcotest.(check int) "no checks when disabled" 0 st.st_verify_checks

let tests =
  [
    t "liveness" test_liveness;
    t "def sites" test_def_sites;
    t "guest-state def/use summary" test_state_rw;
    t "shadow-range cover" test_range_cover;
    t "seeded mutations all caught" test_mutations_all_caught;
    t "mutations cover phases 2-8" test_mutations_cover_all_phases;
    Alcotest.test_case "tool corpus has zero false positives" `Slow
      test_corpus_clean;
    t "verify_jit=false runs no checks" test_verify_off_runs_no_checks;
  ]
