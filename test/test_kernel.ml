(* Simulated-kernel tests: file descriptors, brk, mmap family, signals,
   and the syscall dispatcher itself. *)

let t name f = Alcotest.test_case name `Quick f
let i64 = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

let make () =
  let mem = Aspace.create () in
  let k = Kernel.create mem in
  Aspace.map mem ~addr:0x10000L ~len:65536 ~perm:Aspace.perm_rw;
  (mem, k)

(* a fake register file for driving Kernel.syscall *)
let regs_of (arr : int64 array) : Kernel.regs =
  { get = (fun r -> arr.(r)); set = (fun r v -> arr.(r) <- v) }

let syscall k args =
  let arr = Array.make 8 0L in
  List.iteri (fun i v -> arr.(i) <- v) args;
  let action = Kernel.syscall k ~tid:1 (regs_of arr) in
  (action, arr.(0))

let test_write_read_console () =
  let mem, k = make () in
  Aspace.write_bytes mem 0x10000L (Bytes.of_string "hello!");
  let _, r =
    syscall k [ Int64.of_int Kernel.Num.sys_write; 1L; 0x10000L; 6L ]
  in
  Alcotest.check i64 "wrote 6" 6L r;
  Alcotest.(check string) "captured" "hello!" (Kernel.stdout_contents k)

let test_files () =
  let mem, k = make () in
  Kernel.add_file k "data.txt" "abcdef";
  Aspace.write_bytes mem 0x10000L (Bytes.of_string "data.txt\000");
  let _, fd = syscall k [ Int64.of_int Kernel.Num.sys_open; 0x10000L; 0L ] in
  Alcotest.(check bool) "fd >= 3" true (Int64.to_int fd >= 3);
  let _, n = syscall k [ Int64.of_int Kernel.Num.sys_read; fd; 0x10100L; 4L ] in
  Alcotest.check i64 "read 4" 4L n;
  Alcotest.(check string) "contents" "abcd"
    (Bytes.to_string (Aspace.read_bytes mem 0x10100L 4));
  let _, n2 = syscall k [ Int64.of_int Kernel.Num.sys_read; fd; 0x10100L; 10L ] in
  Alcotest.check i64 "remaining 2" 2L n2;
  let _, c = syscall k [ Int64.of_int Kernel.Num.sys_close; fd ] in
  Alcotest.check i64 "close ok" 0L c;
  let _, e = syscall k [ Int64.of_int Kernel.Num.sys_read; fd; 0x10100L; 1L ] in
  Alcotest.(check bool) "EBADF after close" true (Int64.to_int (Support.Bits.sext32 e) < 0)

let test_open_missing () =
  let mem, k = make () in
  Aspace.write_bytes mem 0x10000L (Bytes.of_string "nope\000");
  let _, fd = syscall k [ Int64.of_int Kernel.Num.sys_open; 0x10000L; 0L ] in
  Alcotest.(check int) "ENOENT" (-2) (Int64.to_int (Support.Bits.sext32 fd))

let test_brk () =
  let _mem, k = make () in
  Kernel.set_brk_base k 0x100000L;
  let _, cur = syscall k [ Int64.of_int Kernel.Num.sys_brk; 0L ] in
  Alcotest.check i64 "initial brk" 0x100000L cur;
  let _, grown = syscall k [ Int64.of_int Kernel.Num.sys_brk; 0x110000L ] in
  Alcotest.check i64 "grown" 0x110000L grown;
  Aspace.write k.mem 0x10FFF0L 4 7L;
  (* shrink *)
  let _, shrunk = syscall k [ Int64.of_int Kernel.Num.sys_brk; 0x101000L ] in
  Alcotest.check i64 "shrunk" 0x101000L shrunk;
  try
    ignore (Aspace.read k.mem 0x10F000L 4);
    Alcotest.fail "freed brk memory still mapped"
  with Aspace.Fault _ -> ()

let test_mmap_family () =
  let _mem, k = make () in
  let _, addr = syscall k [ Int64.of_int Kernel.Num.sys_mmap; 0L; 65536L ] in
  Alcotest.(check bool) "mmap in arena" true
    (Int64.unsigned_compare addr 0x2000_0000L >= 0);
  Aspace.write k.mem addr 4 0x1234L;
  let _, naddr =
    syscall k [ Int64.of_int Kernel.Num.sys_mremap; addr; 65536L; 262144L ]
  in
  Alcotest.(check bool) "mremap moved" true (naddr <> addr);
  Alcotest.check i64 "contents copied" 0x1234L (Aspace.read k.mem naddr 4);
  let _, r = syscall k [ Int64.of_int Kernel.Num.sys_munmap; naddr; 262144L ] in
  Alcotest.check i64 "munmap" 0L r

let test_map_allowed_hook () =
  let _mem, k = make () in
  k.map_allowed <- (fun _ _ -> false);
  let _, addr = syscall k [ Int64.of_int Kernel.Num.sys_mmap; 0L; 4096L ] in
  Alcotest.(check int) "denied -> ENOMEM" (-12)
    (Int64.to_int (Support.Bits.sext32 addr))

(* ---- error returns: the unhappy paths clients actually hit --------- *)

let errno r = Int64.to_int (Support.Bits.sext32 r)

let test_mmap_errors () =
  let _mem, k = make () in
  (* zero / negative length: EINVAL, nothing mapped *)
  let _, r = syscall k [ Int64.of_int Kernel.Num.sys_mmap; 0L; 0L ] in
  Alcotest.(check int) "mmap len 0 -> EINVAL" Kernel.einval (errno r);
  let _, r = syscall k [ Int64.of_int Kernel.Num.sys_mmap; 0L; -4096L ] in
  Alcotest.(check int) "mmap len <0 -> EINVAL" Kernel.einval (errno r);
  (* arena exhaustion: a request larger than the whole mmap arena *)
  let arena = Int64.sub k.mmap_limit k.mmap_base in
  let _, r =
    syscall k [ Int64.of_int Kernel.Num.sys_mmap; 0L; Int64.add arena 4096L ]
  in
  Alcotest.(check int) "mmap too big -> ENOMEM" Kernel.enomem (errno r);
  (* munmap of a bad length is EINVAL too *)
  let _, r = syscall k [ Int64.of_int Kernel.Num.sys_munmap; 0x2000_0000L; 0L ] in
  Alcotest.(check int) "munmap len 0 -> EINVAL" Kernel.einval (errno r)

let test_mremap_errors () =
  let _mem, k = make () in
  let _, addr = syscall k [ Int64.of_int Kernel.Num.sys_mmap; 0L; 4096L ] in
  Alcotest.(check bool) "mmap ok" true (errno addr > 0);
  (* bad lengths: EINVAL, mapping untouched *)
  let _, r =
    syscall k [ Int64.of_int Kernel.Num.sys_mremap; addr; 0L; 8192L ]
  in
  Alcotest.(check int) "mremap old_len 0 -> EINVAL" Kernel.einval (errno r);
  let _, r =
    syscall k [ Int64.of_int Kernel.Num.sys_mremap; addr; 4096L; 0L ]
  in
  Alcotest.(check int) "mremap new_len 0 -> EINVAL" Kernel.einval (errno r);
  (* growth denied by the map_allowed hook: ENOMEM, original survives *)
  Aspace.write k.mem addr 4 0xBEEFL;
  k.map_allowed <- (fun _ _ -> false);
  let _, r =
    syscall k [ Int64.of_int Kernel.Num.sys_mremap; addr; 4096L; 65536L ]
  in
  Alcotest.(check int) "mremap denied -> ENOMEM" Kernel.enomem (errno r);
  Alcotest.check i64 "original mapping intact" 0xBEEFL (Aspace.read k.mem addr 4)

let test_sigaction_errors () =
  let _mem, k = make () in
  let try_sig n =
    let _, r = syscall k [ Int64.of_int Kernel.Num.sys_sigaction; n; 0x4000L ] in
    errno r
  in
  Alcotest.(check int) "signal 0 -> EINVAL" Kernel.einval (try_sig 0L);
  Alcotest.(check int) "signal -1 -> EINVAL" Kernel.einval (try_sig (-1L));
  Alcotest.(check int) "signal 32 -> EINVAL" Kernel.einval
    (try_sig (Int64.of_int Kernel.Sig.count));
  (* no handler registered by any failed call *)
  for s = 1 to Kernel.Sig.count - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "no handler for %d" s)
      true
      (Kernel.handler_for k s = None)
  done

let test_kill_errors () =
  let _mem, k = make () in
  let try_kill n =
    let _, r = syscall k [ Int64.of_int Kernel.Num.sys_kill; 1L; n ] in
    errno r
  in
  Alcotest.(check int) "kill sig 0 -> EINVAL" Kernel.einval (try_kill 0L);
  Alcotest.(check int) "kill sig 32 -> EINVAL" Kernel.einval
    (try_kill (Int64.of_int Kernel.Sig.count));
  (* nothing was queued by the failed kills *)
  Alcotest.(check bool) "no signal queued" true
    (Kernel.take_pending_signal k = None)

let test_gettimeofday () =
  let mem, k = make () in
  k.now_cycles <- (fun () -> 2_500_000_000L) (* 2.5 simulated seconds *);
  let _, r =
    syscall k [ Int64.of_int Kernel.Num.sys_gettimeofday; 0x10000L; 0L ]
  in
  Alcotest.check i64 "ok" 0L r;
  Alcotest.check i64 "seconds" 2L (Aspace.read mem 0x10000L 4);
  Alcotest.check i64 "microseconds" 500000L (Aspace.read mem 0x10004L 4)

let test_signals () =
  let _mem, k = make () in
  let _, r =
    syscall k [ Int64.of_int Kernel.Num.sys_sigaction; 10L; 0x4000L ]
  in
  Alcotest.check i64 "sigaction ok" 0L r;
  (match Kernel.handler_for k 10 with
  | Some h -> Alcotest.check i64 "handler addr" 0x4000L h.sh_addr
  | None -> Alcotest.fail "handler not registered");
  let _, r2 = syscall k [ Int64.of_int Kernel.Num.sys_kill; 1L; 10L ] in
  Alcotest.check i64 "kill ok" 0L r2;
  (match Kernel.take_pending_signal k with
  | Some (1, 10) -> ()
  | _ -> Alcotest.fail "signal not queued");
  Alcotest.(check bool) "queue drained" true (Kernel.take_pending_signal k = None)

let test_actions () =
  let _mem, k = make () in
  (match syscall k [ Int64.of_int Kernel.Num.sys_exit; 7L ] with
  | Kernel.Exit_process 7, _ -> ()
  | _ -> Alcotest.fail "exit action");
  (match syscall k [ Int64.of_int Kernel.Num.sys_thread_create; 0x100L; 0x200L; 3L ] with
  | Kernel.Thread_create { entry = 0x100L; sp = 0x200L; arg = 3L }, _ -> ()
  | _ -> Alcotest.fail "thread_create action");
  match syscall k [ Int64.of_int Kernel.Num.sys_yield ] with
  | Kernel.Yield, _ -> ()
  | _ -> Alcotest.fail "yield action"

let test_unknown_syscall () =
  let _mem, k = make () in
  let _, r = syscall k [ 9999L ] in
  Alcotest.(check int) "ENOSYS" (-38) (Int64.to_int (Support.Bits.sext32 r))

let tests =
  [
    t "write to console" test_write_read_console;
    t "open/read/close files" test_files;
    t "open missing file" test_open_missing;
    t "brk grow/shrink" test_brk;
    t "mmap/mremap/munmap" test_mmap_family;
    t "map_allowed pre-check hook" test_map_allowed_hook;
    t "mmap error returns" test_mmap_errors;
    t "mremap error returns" test_mremap_errors;
    t "sigaction error returns" test_sigaction_errors;
    t "kill error returns" test_kill_errors;
    t "gettimeofday" test_gettimeofday;
    t "signals" test_signals;
    t "thread/exit/yield actions" test_actions;
    t "unknown syscall" test_unknown_syscall;
  ]
