(* Vgrewind tier-1 tests: record/replay bit-identity across every tool,
   threaded clients, chaos fault schedules; time-travel (seek / back);
   tool snapshot round-trips; and the satellite bug fixes (massif's
   closing timeline snapshot, the short-IO counter, divergence
   reporting). *)

let t name f = Alcotest.test_case name `Quick f

let all_tools : Vg_core.Tool.t list =
  [
    Vg_core.Tool.nulgrind;
    Tools.Memcheck.tool;
    Tools.Memcheck.tool_origins;
    Tools.Cachegrind.tool;
    Tools.Massif.tool;
    Tools.Lackey.tool;
    Tools.Taintgrind.tool;
    Tools.Annelid.tool;
    Tools.Redux.tool;
    Tools.Drd.tool;
    Tools.Icnt.icnt_inline;
    Tools.Icnt.icnt_call;
  ]

(* ---- the program matrix ---------------------------------------------- *)

let io_src =
  {|
int main() {
  int fd; int n; int total; int buf;
  fd = open("data.txt", 0);
  if (fd < 0) { return 1; }
  total = 0;
  n = read(fd, &buf, 4);
  while (n > 0) { total = total + n; n = read(fd, &buf, 4); }
  close(fd);
  print_str("read "); print_int(total); print_str(" bytes\n");
  return 0;
}
|}

type prog = {
  pr_name : string;
  pr_img : unit -> Guest.Image.t;
  pr_files : (string * string) list;  (** simulated files, record side only *)
  pr_cores : int list;
}

let progs =
  [
    {
      pr_name = "hello";
      pr_img = (fun () -> Minicc.Driver.compile Test_sched.compute_src);
      pr_files = [];
      pr_cores = [ 1 ];
    };
    {
      pr_name = "threads4";
      pr_img = (fun () -> Guest.Asm.assemble Test_sched.four_thread_src);
      pr_files = [];
      pr_cores = [ 1; 2 ];
    };
    {
      pr_name = "io";
      pr_img = (fun () -> Minicc.Driver.compile io_src);
      pr_files = [ ("data.txt", String.make 100 'z') ];
      pr_cores = [ 1 ];
    };
  ]

(* ---- record / replay harness ----------------------------------------- *)

let record_session ?(base = Vg_core.Session.default_options) ?chaos ~tool
    ~cores (pr : prog) : Vg_core.Session.t * string =
  let rec_ = Replay.recorder () in
  let options = { base with cores; chaos; rr = Replay.Record rec_ } in
  let s = Vg_core.Session.create ~options ~tool (pr.pr_img ()) in
  List.iter (fun (n, c) -> Kernel.add_file s.kern n c) pr.pr_files;
  ignore (Vg_core.Session.run s);
  (s, Replay.to_string rec_)

(* NB: the replay side never sees [pr_files] — recorded syscall effects
   must reconstruct all client-visible IO, or the digests drift. *)
let replay_session ?(base = Vg_core.Session.default_options)
    ?(snapshot_every = 0L) ~tool (pr : prog) (data : string) :
    Vg_core.Session.t =
  let p = Replay.player_of_string data in
  let options =
    {
      base with
      cores = p.Replay.p_log.Replay.l_cores;
      chaos = None;
      rr = Replay.Replay p;
      snapshot_every;
    }
  in
  Vg_core.Session.create ~options ~tool (pr.pr_img ())

let check_roundtrip ?chaos ~tool ~cores (pr : prog) : Vg_core.Session.t =
  let _rec_s, data = record_session ?chaos ~tool ~cores pr in
  let s = replay_session ~tool pr data in
  ignore (Vg_core.Session.run s);
  (match Vg_core.Session.replay_mismatches s with
  | [] -> ()
  | ms ->
      Alcotest.failf "%s/%s cores=%d diverged: %s" tool.Vg_core.Tool.name
        pr.pr_name cores
        (String.concat "; "
           (List.map
              (fun (k, want, got) ->
                Printf.sprintf "%s recorded=%s replayed=%s" k want got)
              ms)));
  s

(* ---- bit-identity across the full matrix ----------------------------- *)

let test_matrix () =
  List.iter
    (fun tool ->
      List.iter
        (fun pr ->
          List.iter
            (fun cores -> ignore (check_roundtrip ~tool ~cores pr))
            pr.pr_cores)
        progs)
    all_tools

(* ---- chaos: injected faults land in the log and replay exactly ------- *)

let test_chaos_roundtrip () =
  let io = List.find (fun p -> p.pr_name = "io") progs in
  List.iter
    (fun seed ->
      let c = Chaos.create (Chaos.hostile ~seed) in
      let rec_s, data =
        record_session ~chaos:c ~tool:Tools.Memcheck.tool ~cores:1 io
      in
      let s = replay_session ~tool:Tools.Memcheck.tool io data in
      ignore (Vg_core.Session.run s);
      (match Vg_core.Session.replay_mismatches s with
      | [] -> ()
      | ms ->
          Alcotest.failf "chaos seed %d diverged on %s" seed
            (String.concat "," (List.map (fun (k, _, _) -> k) ms)));
      (* the client-visible short-IO outcome is part of the identity:
         same console bytes, same wrapper counters *)
      Alcotest.(check string)
        (Printf.sprintf "seed %d: stdout" seed)
        (Kernel.stdout_contents rec_s.kern)
        (Kernel.stdout_contents s.kern);
      Alcotest.(check int)
        (Printf.sprintf "seed %d: short-io counter" seed)
        rec_s.sysw.Vg_core.Syswrap.n_short_io s.sysw.Vg_core.Syswrap.n_short_io;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: injected-errno counter" seed)
        rec_s.sysw.Vg_core.Syswrap.n_injected_errnos
        s.sysw.Vg_core.Syswrap.n_injected_errnos)
    [ 1; 2; 3 ]

(* ---- satellite: short IO is counted only when IO actually happened --- *)

let quiet_chaos ~seed =
  {
    Chaos.seed;
    p_eintr = 0.0;
    p_errno = 0.0;
    p_short = 0.0;
    p_map_denial = 0.0;
    p_translation_failure = 0.0;
    force_phase = None;
    p_flush = 0.0;
    p_handoff_stall = 0.0;
    p_retire_delay = 0.0;
    max_injections = 0;
  }

let run_chaos_src cfg src =
  let c = Chaos.create cfg in
  let options =
    { Vg_core.Session.default_options with chaos = Some (c : Chaos.t) }
  in
  let s =
    Vg_core.Session.create ~options ~tool:Vg_core.Tool.nulgrind
      (Minicc.Driver.compile src)
  in
  Kernel.add_file s.kern "data.txt" (String.make 64 'x');
  ignore (Vg_core.Session.run s);
  s

let test_short_io_counter () =
  (* every read gets a short length injected; reads from a bad fd fail
     outright and perform no IO, so they must NOT count (they used to) *)
  let bad_fd_src =
    {|
int main() {
  int n; int buf; int i;
  for (i = 0; i < 5; i++) { n = read(99, &buf, 4); }
  return 0;
}
|}
  in
  let s = run_chaos_src { (quiet_chaos ~seed:5) with p_short = 1.0 } bad_fd_src in
  Alcotest.(check int) "failed reads counted no short IO" 0
    s.sysw.Vg_core.Syswrap.n_short_io;
  (* the same schedule over a real file does clamp and does count *)
  let s2 = run_chaos_src { (quiet_chaos ~seed:5) with p_short = 1.0 } io_src in
  Alcotest.(check bool) "successful short reads counted" true
    (s2.sysw.Vg_core.Syswrap.n_short_io > 0)

(* ---- satellite: massif's closing timeline snapshot ------------------- *)

let test_massif_timeline_golden () =
  (* 2 allocations: not divisible by snapshot_every (16), so the whole
     timeline used to be dropped — no periodic snapshot ever fired and
     fini took no closing one *)
  let src =
    {| int main() {
         char *a; char *b;
         a = malloc(100);
         b = malloc(50);
         free(a);
         return 0;
       } |}
  in
  let s =
    Vg_core.Session.create ~tool:Tools.Massif.tool (Minicc.Driver.compile src)
  in
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited 0 -> ()
  | _ -> Alcotest.fail "bad termination");
  let out = Vg_core.Session.tool_output s in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "timeline header printed" true
    (contains out "==massif== heap timeline (allocs: live bytes):");
  (* the closing snapshot: 2 allocations, 50 bytes still live *)
  Alcotest.(check bool) "final snapshot present" true
    (contains out "     2: 50\n")

(* ---- satellite: divergence is detected and reported ------------------ *)

let test_divergence_detected () =
  (* replay an io recording against a different program: the first
     syscall out of step raises Divergence (with a crash context
     rendered into the tool output stream by the session) *)
  let io = List.find (fun p -> p.pr_name = "io") progs in
  let _s, data = record_session ~tool:Vg_core.Tool.nulgrind ~cores:1 io in
  let wrong =
    { io with pr_img = (fun () -> Minicc.Driver.compile Test_sched.compute_src) }
  in
  let s = replay_session ~tool:Vg_core.Tool.nulgrind wrong data in
  match Vg_core.Session.run s with
  | exception Replay.Divergence { dv_cycle; dv_expected; dv_got } ->
      Alcotest.(check bool) "cycle is plausible" true (dv_cycle >= 0L);
      Alcotest.(check bool) "expected and got differ" true
        (dv_expected <> dv_got)
  | _ -> Alcotest.fail "divergence not detected"

(* ---- time travel: seek lands on the exact state ---------------------- *)

let state_of (s : Vg_core.Session.t) =
  ( Vg_core.Session.wall_cycles s,
    Vg_core.Session.host_insns s,
    s.blocks_executed,
    List.map
      (fun (th : Vg_core.Threads.thread) ->
        ( th.tid,
          Vg_core.Threads.get_eip s.threads th,
          List.init Guest.Arch.n_regs (fun r ->
              Vg_core.Threads.get_reg s.threads th r) ))
      (List.sort
         (fun (a : Vg_core.Threads.thread) b -> compare a.tid b.tid)
         s.threads.threads) )

let test_seek_exact () =
  let hello = List.hd progs in
  let _s, data = record_session ~tool:Tools.Lackey.tool ~cores:1 hello in
  let s = replay_session ~snapshot_every:2000L ~tool:Tools.Lackey.tool hello data in
  (* run to a mid-point boundary and capture the full thread state *)
  let target = 60_000L in
  Vg_core.Session.run_to s ~stop:(fun s ->
      Int64.compare (Vg_core.Session.wall_cycles s) target >= 0);
  let mid = state_of s in
  let mid_cycle = Vg_core.Session.wall_cycles s in
  (* run to the end, then travel back: re-execution from the nearest
     checkpoint must land on the identical boundary and state *)
  Vg_core.Session.run_to s ~stop:(fun _ -> false);
  Alcotest.(check bool) "ran past the capture point" true
    (Int64.compare (Vg_core.Session.wall_cycles s) mid_cycle > 0);
  Vg_core.Session.seek s ~cycle:target;
  Alcotest.(check bool) "seek restored the exact ThreadState" true
    (state_of s = mid);
  (* and seeking forward again from the restored state stays on rails
     (run, not run_to: the tool digest covers the fini report) *)
  ignore (Vg_core.Session.run s);
  match Vg_core.Session.replay_mismatches s with
  | [] -> ()
  | ms ->
      Alcotest.failf "post-seek re-execution diverged on %s"
        (String.concat "," (List.map (fun (k, _, _) -> k) ms))

(* ---- time travel: back, across superblock formation ------------------ *)

let test_back_across_superblocks () =
  (* the hot multi-block loop gets stitched into a superblock under the
     aggressive tiering knobs; stepping backwards over code that was
     re-translated along the way exercises the transtab restore path *)
  let sb =
    {
      pr_name = "side-exit";
      pr_img = (fun () -> Guest.Asm.assemble Test_core.side_exit_src);
      pr_files = [];
      pr_cores = [ 1 ];
    }
  in
  let base = Test_core.tiered_hot_options in
  let _s, data =
    record_session ~base ~tool:Vg_core.Tool.nulgrind ~cores:1 sb
  in
  let s =
    replay_session ~base ~snapshot_every:2000L ~tool:Vg_core.Tool.nulgrind sb
      data
  in
  Vg_core.Session.run_to s ~stop:(fun _ -> false);
  let end_insns = Vg_core.Session.host_insns s in
  Alcotest.(check bool) "superblocks formed" true
    ((Vg_core.Session.stats s).st_translations_super > 0);
  Vg_core.Session.back s ~insns:1000L;
  let here = Vg_core.Session.host_insns s in
  Alcotest.(check bool) "moved backwards" true (Int64.compare here end_insns < 0);
  Alcotest.(check bool) "at or after the target boundary" true
    (Int64.compare here (Int64.sub end_insns 1000L) >= 0);
  Alcotest.(check bool) "no longer exited" true (s.exit_reason = None);
  (* forward again: the rerun must converge on the recorded final state *)
  ignore (Vg_core.Session.run s);
  Alcotest.(check bool) "same end point" true
    (Vg_core.Session.host_insns s = end_insns);
  match Vg_core.Session.replay_mismatches s with
  | [] -> ()
  | ms ->
      Alcotest.failf "post-back re-execution diverged on %s"
        (String.concat "," (List.map (fun (k, _, _) -> k) ms))

(* ---- tool snapshots round-trip --------------------------------------- *)

let test_tool_snapshot_roundtrip () =
  (* for EVERY tool: checkpoint mid-run, travel back over accumulated
     tool state, and re-execute to the end.  The tool digest covers the
     fini report, so it only matches if snapshot/restore reproduced the
     tool's internal state exactly (counters, shadow maps, heap books) *)
  let hello = List.hd progs in
  List.iter
    (fun tool ->
      let _s, data = record_session ~tool ~cores:1 hello in
      let s = replay_session ~snapshot_every:3000L ~tool hello data in
      Vg_core.Session.run_to s ~stop:(fun s ->
          Int64.compare s.blocks_executed 120L >= 0);
      let mid = Vg_core.Session.wall_cycles s in
      Vg_core.Session.run_to s ~stop:(fun _ -> false);
      Vg_core.Session.seek s ~cycle:mid;
      ignore (Vg_core.Session.run s);
      match Vg_core.Session.replay_mismatches s with
      | [] -> ()
      | ms ->
          Alcotest.failf "%s: tool state did not survive time travel (%s)"
            tool.Vg_core.Tool.name
            (String.concat "," (List.map (fun (k, _, _) -> k) ms)))
    all_tools

(* ---- the log codec round-trips --------------------------------------- *)

let test_log_codec_roundtrip () =
  let io = List.find (fun p -> p.pr_name = "io") progs in
  let c = Chaos.create (Chaos.hostile ~seed:9) in
  let _s, data = record_session ~chaos:c ~tool:Tools.Drd.tool ~cores:1 io in
  let log = (Replay.player_of_string data).Replay.p_log in
  Alcotest.(check string) "tool" "drd" log.Replay.l_tool;
  Alcotest.(check int) "cores" 1 log.Replay.l_cores;
  Alcotest.(check bool) "has events" true (log.Replay.l_events <> []);
  Alcotest.(check bool) "has digests" true (log.Replay.l_digests <> []);
  (* decode(encode(decode(x))) = decode(x) *)
  let data2 = Replay.encode log in
  Alcotest.(check string) "codec is a fixpoint" data2
    (Replay.encode (Replay.player_of_string data2).Replay.p_log)

let tests =
  [
    t "record/replay bit-identity: tools x programs x cores" test_matrix;
    t "chaos seeds 1-3 record/replay exactly" test_chaos_roundtrip;
    t "short IO counted only on successful IO" test_short_io_counter;
    t "massif timeline closing snapshot (golden)" test_massif_timeline_golden;
    t "replay divergence is detected" test_divergence_detected;
    t "seek lands on the exact ThreadState" test_seek_exact;
    t "back steps across superblock formation" test_back_across_superblocks;
    t "tool snapshots round-trip" test_tool_snapshot_roundtrip;
    t "log codec round-trips" test_log_codec_roundtrip;
  ]
