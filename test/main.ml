let () =
  Alcotest.run "ovalgrind"
    [
      ("support", Test_support.tests);
      ("ir", Test_ir.tests);
      ("guest", Test_guest.tests);
      ("asm", Test_asm.tests);
      ("host", Test_host.tests);
      ("aspace", Test_aspace.tests);
      ("kernel", Test_kernel.tests);
      ("jit", Test_jit.tests);
      ("native", Test_native.tests);
      ("minicc", Test_minicc.tests);
      ("core", Test_core.tests);
      ("core-units", Test_core_units.tests);
      ("sched", Test_sched.tests);
      ("drd", Test_drd.tests);
      ("obs", Test_obs.tests);
      ("chaos", Test_chaos.tests);
      ("verify", Test_verify.tests);
      ("static", Test_static.tests);
      ("memcheck", Test_memcheck.tests);
      ("tools", Test_tools.tests);
      ("caa", Test_caa.tests);
      ("workloads", Test_workloads.tests);
      ("fuzz", Test_fuzz.tests);
      ("replay", Test_replay.tests);
    ]
