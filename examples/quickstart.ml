(** Quickstart: "Valgrind core + tool plug-in = Valgrind tool" (§3.1).

    This example builds a complete (tiny) tool — a conditional-branch
    profiler — from scratch against the public API, and runs a mini-C
    client under it.  The whole tool is the [branch_profiler] value
    below: an [instrument] function that adds a helper call at every
    conditional exit, and a [fini] that reports.

    Run with: [dune exec examples/quickstart.exe] *)

open Vex_ir.Ir

(* --- the tool -------------------------------------------------------- *)

let branch_profiler : Vg_core.Tool.t =
  {
    name = "branchprof";
    description = "counts taken conditional branches per source function";
    shadow_ranges = [];
    create =
      (fun caps ->
        let taken = Hashtbl.create 64 in
        (* a helper callable from generated code; cost models a counter
           update in C *)
        let h_taken =
          caps.register_helper ~name:"bp_taken" ~cost:3 ~nargs:1 (fun args ->
              let site = args.(0) in
              Hashtbl.replace taken site
                (Int64.add 1L
                   (Option.value ~default:0L (Hashtbl.find_opt taken site)));
              0L)
        in
        let instrument (b : block) : block =
          (* rebuild the block, adding a guarded call at each Exit: the
             guard of the call IS the branch condition, so the helper
             runs exactly when the branch is taken *)
          let nb =
            { tyenv = Support.Vec.copy b.tyenv;
              stmts = Support.Vec.create NoOp;
              next = b.next;
              jumpkind = b.jumpkind }
          in
          let site = ref 0L in
          Support.Vec.iter
            (fun s ->
              (match s with
              | IMark (addr, _) -> site := addr
              | Exit (guard, _, _) ->
                  add_stmt nb
                    (Dirty
                       { d_guard = guard; d_callee = h_taken;
                         d_args = [ i32 !site ]; d_tmp = None;
                         d_mfx = Mfx_none })
              | _ -> ());
              add_stmt nb s)
            b.stmts;
          nb
        in
        {
          instrument;
          fini =
            (fun ~exit_code:_ ->
              let rows =
                Hashtbl.fold (fun k v acc -> (k, v) :: acc) taken []
                |> List.sort (fun (_, a) (_, b) -> compare b a)
              in
              caps.output "==branchprof== hottest taken branches:\n";
              List.iteri
                (fun i (site, count) ->
                  if i < 5 then
                    caps.output
                      (Printf.sprintf "==branchprof==   %8Ld taken at %s\n"
                         count (caps.symbolize site)))
                rows);
          client_request = (fun ~code:_ ~args:_ -> None);
          snapshot = Vg_core.Tool.snapshot_nothing;
          restore = Vg_core.Tool.restore_nothing;
        });
  }

(* --- a client to run under it ---------------------------------------- *)

let client =
  {|
int collatz(int n) {
  int steps;
  steps = 0;
  while (n != 1) {
    if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
    steps++;
  }
  return steps;
}
int main() {
  int i; int total;
  total = 0;
  for (i = 1; i <= 200; i++) { total = total + collatz(i); }
  print_str("total collatz steps: "); print_int(total); print_str("\n");
  return 0;
}
|}

let () =
  print_endline "Compiling the client with minicc...";
  let img = Minicc.Driver.compile client in
  print_endline "Running it under the branch-profiler tool:\n";
  let s = Vg_core.Session.create ~tool:branch_profiler img in
  let reason = Vg_core.Session.run s in
  print_string (Vg_core.Session.client_stdout s);
  print_string (Vg_core.Session.tool_output s);
  let st = Vg_core.Session.stats s in
  Printf.printf
    "\n(core ran %Ld code blocks through %d translations; dispatcher hit \
     rate %.1f%%)\n"
    st.st_blocks st.st_translations
    (100.0 *. st.st_dispatch_hit_rate);
  Printf.printf
    "(translation chaining: %Ld transfers bypassed the dispatcher via %d \
     patched exit sites, %d unlinked)\n"
    st.st_chained st.st_chain_patched st.st_chain_unlinked;
  match reason with
  | Vg_core.Session.Exited 0 -> ()
  | _ -> print_endline "client did not exit cleanly!"
