(** VH64 interpreter — the simulated host CPU that runs translations.

    The dispatcher points [h15] (GSP) at the current ThreadState and runs
    a decoded translation; the translation ends with an exit instruction
    carrying the next guest PC and an exit kind.  Helper [Call]s are
    routed through the global {!Vex_ir.Helpers} table with an environment
    that accesses the same simulated address space the guest lives in.

    Cycle accounting uses {!Arch.cost}; the dispatcher/scheduler add
    their own costs on top (paper §3.9). *)

open Arch
open Support

(** Raised when translated code divides by zero (guest SIGFPE). *)
exception Host_sigfpe

type cpu = {
  hregs : int64 array;  (** h0..h15 *)
  hvregs : V128.t array;  (** hv0..hv7 *)
  mem : Aspace.t;
  mutable cycles : int64;
  mutable insns : int64;
}

let create mem =
  {
    hregs = Array.make n_hregs 0L;
    hvregs = Array.make n_hvregs V128.zero;
    mem;
    cycles = 0L;
    insns = 0L;
  }

let alu_eval (w : width) (op : alu_op) (a : int64) (b : int64) : int64 =
  let fin v = match w with W32 -> Bits.trunc32 v | W64 -> v in
  let a32 () = Bits.sext32 a and b32 () = Bits.sext32 b in
  match (op, w) with
  | Add, _ -> fin (Int64.add a b)
  | Sub, _ -> fin (Int64.sub a b)
  | And, _ -> fin (Int64.logand a b)
  | Or, _ -> fin (Int64.logor a b)
  | Xor, _ -> fin (Int64.logxor a b)
  | Shl, W32 -> Bits.shl32 a b
  | Shl, W64 -> Bits.shl64 a b
  | Shr, W32 -> Bits.shr32 a b
  | Shr, W64 -> Bits.shr64 a b
  | Sar, W32 -> Bits.sar32 a b
  | Sar, W64 -> Bits.sar64 a b
  | Mul, _ -> fin (Int64.mul a b)
  | Mulhs, W32 ->
      Bits.trunc32 (Int64.shift_right (Int64.mul (a32 ()) (b32 ())) 32)
  | Mulhs, W64 ->
      (* high part of signed 64x64; sufficient approximation via floats is
         not acceptable — use the standard 32-bit split *)
      let ah = Int64.shift_right a 32 and al = Bits.trunc32 a in
      let bh = Int64.shift_right b 32 and bl = Bits.trunc32 b in
      let albl = Int64.mul al bl in
      let mid1 = Int64.mul ah bl and mid2 = Int64.mul al bh in
      let carry =
        Int64.shift_right_logical
          (Int64.add (Int64.add (Bits.trunc32 mid1) (Bits.trunc32 mid2))
             (Int64.shift_right_logical albl 32))
          32
      in
      Int64.add
        (Int64.add (Int64.mul ah bh)
           (Int64.add (Int64.shift_right mid1 32) (Int64.shift_right mid2 32)))
        carry
  | Divs, W32 ->
      if Bits.trunc32 b = 0L then raise Host_sigfpe
      else Bits.trunc32 (Int64.div (a32 ()) (b32 ()))
  | Divs, W64 -> if b = 0L then raise Host_sigfpe else Int64.div a b
  | Divu, W32 ->
      if Bits.trunc32 b = 0L then raise Host_sigfpe
      else Bits.trunc32 (Int64.unsigned_div (Bits.trunc32 a) (Bits.trunc32 b))
  | Divu, W64 -> if b = 0L then raise Host_sigfpe else Int64.unsigned_div a b
  | CmpEq, W32 -> Bits.bool64 (Bits.trunc32 a = Bits.trunc32 b)
  | CmpEq, W64 -> Bits.bool64 (a = b)
  | CmpNe, W32 -> Bits.bool64 (Bits.trunc32 a <> Bits.trunc32 b)
  | CmpNe, W64 -> Bits.bool64 (a <> b)
  | CmpLts, W32 -> Bits.bool64 (Bits.cmp32s a b < 0)
  | CmpLts, W64 -> Bits.bool64 (Int64.compare a b < 0)
  | CmpLes, W32 -> Bits.bool64 (Bits.cmp32s a b <= 0)
  | CmpLes, W64 -> Bits.bool64 (Int64.compare a b <= 0)
  | CmpLtu, W32 -> Bits.bool64 (Bits.cmp32u a b < 0)
  | CmpLtu, W64 -> Bits.bool64 (Int64.unsigned_compare a b < 0)
  | CmpLeu, W32 -> Bits.bool64 (Bits.cmp32u a b <= 0)
  | CmpLeu, W64 -> Bits.bool64 (Int64.unsigned_compare a b <= 0)

let falu_eval op a b =
  let fa = Bits.float_of_bits a and fb = Bits.float_of_bits b in
  match op with
  | FAdd -> Bits.bits_of_float (fa +. fb)
  | FSub -> Bits.bits_of_float (fa -. fb)
  | FMul -> Bits.bits_of_float (fa *. fb)
  | FDiv -> Bits.bits_of_float (fa /. fb)
  | FMin -> Bits.bits_of_float (Float.min fa fb)
  | FMax -> Bits.bits_of_float (Float.max fa fb)
  | FCmpEq -> Bits.bool64 (fa = fb)
  | FCmpLt -> Bits.bool64 (fa < fb)
  | FCmpLe -> Bits.bool64 (fa <= fb)

let fun1_eval op a =
  match op with
  | FSqrt -> Bits.bits_of_float (Float.sqrt (Bits.float_of_bits a))
  | FNeg -> Bits.bits_of_float (-.Bits.float_of_bits a)
  | FAbs -> Bits.bits_of_float (Float.abs (Bits.float_of_bits a))
  | I32StoF64 -> Bits.bits_of_float (Int64.to_float (Bits.sext32 a))
  | F64toI32S ->
      Bits.trunc32 (Int64.of_float (Float.trunc (Bits.float_of_bits a)))
  | Clz32 -> Bits.clz32 a
  | Ctz32 -> Bits.ctz32 a

let valu_eval op a b =
  match op with
  | VAnd -> V128.logand a b
  | VOr -> V128.logor a b
  | VXor -> V128.logxor a b
  | VAdd32 -> V128.add32x4 a b
  | VSub32 -> V128.sub32x4 a b
  | VCmpEq32 -> V128.cmpeq32x4 a b
  | VAdd8 -> V128.add8x16 a b
  | VSub8 -> V128.sub8x16 a b

(** Execute decoded translation [code] until an exit instruction fires.
    Returns the exit kind, the next guest PC, and the index in [code] of
    the exit instruction that fired — the "exit site".  A site whose
    target is a constant ([ExitIf]/[GotoI]) is the kind of jump
    translation chaining patches: the core maps the index back to the
    translation's chain slot to decide whether the transfer can bypass
    the dispatcher.  [env] is the helper environment (built by the core
    around the current ThreadState). *)
let run (cpu : cpu) ~(env : Vex_ir.Helpers.env) (code : insn array) :
    exit_kind * int64 * int =
  let r = cpu.hregs and v = cpu.hvregs in
  let mem = cpu.mem in
  let pc = ref 0 in
  let cycles = ref 0 in
  let steps = ref 0 in
  let result = ref None in
  let n = Array.length code in
  while !result = None && !pc < n do
    let i = code.(!pc) in
    incr pc;
    cycles := !cycles + cost i;
    incr steps;
    (match i with
    | Movi (d, imm) -> r.(d) <- imm
    | Mov (d, s) -> r.(d) <- r.(s)
    | Alu (w, op, d, s1, s2) -> r.(d) <- alu_eval w op r.(s1) r.(s2)
    | Alui (w, op, d, s1, imm) -> r.(d) <- alu_eval w op r.(s1) imm
    | Ld (sz, sx, d, b, disp) ->
        let addr = Int64.add r.(b) (Int64.of_int disp) in
        let x = Aspace.read mem addr sz in
        r.(d) <-
          (if sx then
             match sz with
             | 1 -> Bits.sext8 x
             | 2 -> Bits.sext16 x
             | 4 -> Bits.sext32 x
             | _ -> x
           else x)
    | St (sz, s, b, disp) ->
        Aspace.write mem (Int64.add r.(b) (Int64.of_int disp)) sz r.(s)
    | Cmov (d, c, s) -> if r.(c) <> 0L then r.(d) <- r.(s)
    | Falu (op, d, s1, s2) -> r.(d) <- falu_eval op r.(s1) r.(s2)
    | Fun1 (op, d, s) -> r.(d) <- fun1_eval op r.(s)
    | Vld (d, b, disp) ->
        let addr = Int64.add r.(b) (Int64.of_int disp) in
        v.(d) <-
          V128.make ~lo:(Aspace.read mem addr 8)
            ~hi:(Aspace.read mem (Int64.add addr 8L) 8)
    | Vst (s, b, disp) ->
        let addr = Int64.add r.(b) (Int64.of_int disp) in
        Aspace.write mem addr 8 (V128.lo v.(s));
        Aspace.write mem (Int64.add addr 8L) 8 (V128.hi v.(s))
    | Vmov (d, s) -> v.(d) <- v.(s)
    | Valu (op, d, s1, s2) -> v.(d) <- valu_eval op v.(s1) v.(s2)
    | Vnot (d, s) -> v.(d) <- V128.lognot v.(s)
    | Vsplat32 (d, s) -> v.(d) <- V128.splat32 r.(s)
    | Vpack (d, hi, lo) -> v.(d) <- V128.make ~hi:r.(hi) ~lo:r.(lo)
    | Vunpack (d, s, half) ->
        r.(d) <- (if half = 0 then V128.lo v.(s) else V128.hi v.(s))
    | Call (id, nargs, _cost) ->
        let args = Array.init nargs (fun k -> r.(k)) in
        r.(ret_reg) <- Vex_ir.Helpers.call id env args
    | Jz (c, l) -> if r.(c) = 0L then pc := l
    | Jnz (c, l) -> if r.(c) <> 0L then pc := l
    | Jmp l -> pc := l
    | Label _ -> ()
    | ExitIf (c, ek, dest) ->
        if r.(c) <> 0L then result := Some (ek, dest, !pc - 1)
    | Goto (ek, s) -> result := Some (ek, Bits.trunc32 r.(s), !pc - 1)
    | GotoI (ek, dest) -> result := Some (ek, dest, !pc - 1));
    if !result = None && !pc >= n then
      (* fell off the end of a translation: a JIT bug *)
      invalid_arg "Host.Interp.run: translation fell through"
  done;
  cpu.cycles <- Int64.add cpu.cycles (Int64.of_int !cycles);
  cpu.insns <- Int64.add cpu.insns (Int64.of_int !steps);
  match !result with Some x -> x | None -> assert false
