(** Record/replay on the deterministic substrate (Vgrewind).

    The kernel, scheduler and cycle model are already pure functions of
    the guest image and the session options (PR 6), so a session has
    very few non-derivable inputs.  This module defines the log of
    exactly those inputs and the two machines around it:

    - a {!recorder} that a recording session feeds from the syscall
      wrapper layer and the chaos decision points, and
    - a {!player} that a replaying session consults instead of invoking
      the kernel or rolling chaos dice.

    What is logged (and nothing else):
    - every syscall: the client-visible result, the engine action, the
      cycles the wrapper charged, the syswrap fault counters and the
      kernel's side effects on guest-visible state (memory writes,
      mappings, console/file output, handler installation, brk);
    - every asynchronous signal delivery, keyed by the scheduler-loop
      ordinal at which it happened;
    - every chaos scheduling decision that is not a pure function of
      cycle counts: forced cache flushes, core-handoff stalls, epoch
      retirement delays, and forced translation failures (keyed by the
      translation-request ordinal, with the condemned phase).

    Everything else — instruction semantics, JIT behaviour, thread
    scheduling, cycle accounting — re-derives by execution.  Recording
    charges zero simulated cycles: a recorded run is cycle-identical to
    the same run without recording.

    Log format: "VGRW" magic, a version byte, a metadata header
    (tool, cores, arbitrary key/value meta including the guest program
    source so a log is self-contained), a tagged event stream, and a
    trailer of digests of the final state for replay verification. *)

let magic = "VGRW"
let version = 1

exception Corrupt of string

(** Raised when a replaying session diverges from its log: the log is
    exhausted, or the session requests a different event than the log
    holds at that point.  Carries enough context for a crash report. *)
exception
  Divergence of { dv_cycle : int64; dv_expected : string; dv_got : string }

let () =
  Printexc.register_printer (function
    | Divergence { dv_cycle; dv_expected; dv_got } ->
        Some
          (Printf.sprintf
             "replay divergence at cycle %Ld: log has %s, session wanted %s"
             dv_cycle dv_expected dv_got)
    | Corrupt msg -> Some (Printf.sprintf "corrupt replay log: %s" msg)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Log model                                                            *)
(* ------------------------------------------------------------------ *)

(** A kernel side effect on guest-visible state, replayed in order. *)
type effect_ =
  | E_mem of { em_addr : int64; em_bytes : Bytes.t }
      (** bytes the kernel stored into guest memory *)
  | E_map of { ep_addr : int64; ep_len : int; ep_perm : int; ep_zero : bool }
      (** pages mapped (perm as r|w|x bits 1|2|4) *)
  | E_unmap of { eu_addr : int64; eu_len : int }
  | E_out of { eo_fd : int; eo_name : string; eo_data : string }
      (** bytes appended to a console or file descriptor *)
  | E_handler of { eh_signo : int; eh_addr : int64 }
      (** signal handler installed via sigaction *)

type sys_event = {
  se_num : int;
  se_ret : int64;  (** r0 after the wrapper, the client-visible result *)
  se_brk : int64;  (** kernel brk after the call (wrapper post-events read it) *)
  se_charged : int;  (** cycles the wrapper charged during the call *)
  se_cycle : int64;  (** wall cycles at the call (informational, for `when`) *)
  se_action : Kernel.action;
  se_counters : int * int * int * int;
      (** syswrap counters after the call: restarts, injected errnos,
          short io, map retries *)
  se_effects : effect_ list;
}

type event =
  | Ev_syscall of sys_event
  | Ev_signal of { sg_iter : int64; sg_tid : int; sg_signo : int;
                   sg_cycle : int64 }
  | Ev_flush of { fl_iter : int64; fl_cycle : int64 }
  | Ev_stall of { st_iter : int64; st_cycles : int; st_cycle : int64 }
  | Ev_retire of { rt_iter : int64; rt_cycle : int64 }
  | Ev_condemn of { cd_req : int64; cd_phase : int; cd_pc : int64;
                    cd_cycle : int64 }

type log = {
  l_tool : string;
  l_cores : int;
  l_meta : (string * string) list;
  l_events : event list;  (** chronological *)
  l_digests : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* Binary codec                                                         *)
(* ------------------------------------------------------------------ *)

let put_u8 b n = Buffer.add_char b (Char.chr (n land 0xFF))

let put_i32 b n =
  put_u8 b n;
  put_u8 b (n asr 8);
  put_u8 b (n asr 16);
  put_u8 b (n asr 24)

let put_i64 b (v : int64) =
  for i = 0 to 7 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF)
  done

let put_str b s =
  put_i32 b (String.length s);
  Buffer.add_string b s

let put_assoc b kvs =
  put_i32 b (List.length kvs);
  List.iter
    (fun (k, v) ->
      put_str b k;
      put_str b v)
    kvs

type cursor = { data : string; mutable pos : int }

let need (c : cursor) n =
  if c.pos + n > String.length c.data then raise (Corrupt "truncated")

let get_u8 c =
  need c 1;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_i32 c =
  let b0 = get_u8 c in
  let b1 = get_u8 c in
  let b2 = get_u8 c in
  let b3 = get_u8 c in
  let v = b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) in
  (* sign-extend from 32 bits so negative ints round-trip *)
  if v land 0x8000_0000 <> 0 then v - (1 lsl 32) else v

let get_i64 c =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (get_u8 c)) (8 * i))
  done;
  !v

let get_str c =
  let n = get_i32 c in
  if n < 0 then raise (Corrupt "negative string length");
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_assoc c =
  let n = get_i32 c in
  List.init n (fun _ ->
      let k = get_str c in
      let v = get_str c in
      (k, v))

let encode_action b (a : Kernel.action) =
  match a with
  | Kernel.Ok -> put_u8 b 0
  | Kernel.Exit_process n ->
      put_u8 b 1;
      put_i32 b n
  | Kernel.Thread_create { entry; sp; arg } ->
      put_u8 b 2;
      put_i64 b entry;
      put_i64 b sp;
      put_i64 b arg
  | Kernel.Thread_exit -> put_u8 b 3
  | Kernel.Yield -> put_u8 b 4
  | Kernel.Sigreturn -> put_u8 b 5

let decode_action c : Kernel.action =
  match get_u8 c with
  | 0 -> Kernel.Ok
  | 1 -> Kernel.Exit_process (get_i32 c)
  | 2 ->
      let entry = get_i64 c in
      let sp = get_i64 c in
      let arg = get_i64 c in
      Kernel.Thread_create { entry; sp; arg }
  | 3 -> Kernel.Thread_exit
  | 4 -> Kernel.Yield
  | 5 -> Kernel.Sigreturn
  | n -> raise (Corrupt (Printf.sprintf "bad action tag %d" n))

let encode_effect b = function
  | E_mem { em_addr; em_bytes } ->
      put_u8 b 0;
      put_i64 b em_addr;
      put_str b (Bytes.to_string em_bytes)
  | E_map { ep_addr; ep_len; ep_perm; ep_zero } ->
      put_u8 b 1;
      put_i64 b ep_addr;
      put_i32 b ep_len;
      put_u8 b ep_perm;
      put_u8 b (if ep_zero then 1 else 0)
  | E_unmap { eu_addr; eu_len } ->
      put_u8 b 2;
      put_i64 b eu_addr;
      put_i32 b eu_len
  | E_out { eo_fd; eo_name; eo_data } ->
      put_u8 b 3;
      put_i32 b eo_fd;
      put_str b eo_name;
      put_str b eo_data
  | E_handler { eh_signo; eh_addr } ->
      put_u8 b 4;
      put_i32 b eh_signo;
      put_i64 b eh_addr

let decode_effect c =
  match get_u8 c with
  | 0 ->
      let em_addr = get_i64 c in
      let em_bytes = Bytes.of_string (get_str c) in
      E_mem { em_addr; em_bytes }
  | 1 ->
      let ep_addr = get_i64 c in
      let ep_len = get_i32 c in
      let ep_perm = get_u8 c in
      let ep_zero = get_u8 c = 1 in
      E_map { ep_addr; ep_len; ep_perm; ep_zero }
  | 2 ->
      let eu_addr = get_i64 c in
      let eu_len = get_i32 c in
      E_unmap { eu_addr; eu_len }
  | 3 ->
      let eo_fd = get_i32 c in
      let eo_name = get_str c in
      let eo_data = get_str c in
      E_out { eo_fd; eo_name; eo_data }
  | 4 ->
      let eh_signo = get_i32 c in
      let eh_addr = get_i64 c in
      E_handler { eh_signo; eh_addr }
  | n -> raise (Corrupt (Printf.sprintf "bad effect tag %d" n))

let encode_event b = function
  | Ev_syscall se ->
      put_u8 b 1;
      put_i32 b se.se_num;
      put_i64 b se.se_ret;
      put_i64 b se.se_brk;
      put_i32 b se.se_charged;
      put_i64 b se.se_cycle;
      encode_action b se.se_action;
      let c1, c2, c3, c4 = se.se_counters in
      put_i32 b c1;
      put_i32 b c2;
      put_i32 b c3;
      put_i32 b c4;
      put_i32 b (List.length se.se_effects);
      List.iter (encode_effect b) se.se_effects
  | Ev_signal { sg_iter; sg_tid; sg_signo; sg_cycle } ->
      put_u8 b 2;
      put_i64 b sg_iter;
      put_i32 b sg_tid;
      put_i32 b sg_signo;
      put_i64 b sg_cycle
  | Ev_flush { fl_iter; fl_cycle } ->
      put_u8 b 3;
      put_i64 b fl_iter;
      put_i64 b fl_cycle
  | Ev_stall { st_iter; st_cycles; st_cycle } ->
      put_u8 b 4;
      put_i64 b st_iter;
      put_i32 b st_cycles;
      put_i64 b st_cycle
  | Ev_retire { rt_iter; rt_cycle } ->
      put_u8 b 5;
      put_i64 b rt_iter;
      put_i64 b rt_cycle
  | Ev_condemn { cd_req; cd_phase; cd_pc; cd_cycle } ->
      put_u8 b 6;
      put_i64 b cd_req;
      put_i32 b cd_phase;
      put_i64 b cd_pc;
      put_i64 b cd_cycle

let decode_event c tag =
  match tag with
  | 1 ->
      let se_num = get_i32 c in
      let se_ret = get_i64 c in
      let se_brk = get_i64 c in
      let se_charged = get_i32 c in
      let se_cycle = get_i64 c in
      let se_action = decode_action c in
      let c1 = get_i32 c in
      let c2 = get_i32 c in
      let c3 = get_i32 c in
      let c4 = get_i32 c in
      let n = get_i32 c in
      let se_effects = List.init n (fun _ -> decode_effect c) in
      Ev_syscall
        { se_num; se_ret; se_brk; se_charged; se_cycle; se_action;
          se_counters = (c1, c2, c3, c4); se_effects }
  | 2 ->
      let sg_iter = get_i64 c in
      let sg_tid = get_i32 c in
      let sg_signo = get_i32 c in
      let sg_cycle = get_i64 c in
      Ev_signal { sg_iter; sg_tid; sg_signo; sg_cycle }
  | 3 ->
      let fl_iter = get_i64 c in
      let fl_cycle = get_i64 c in
      Ev_flush { fl_iter; fl_cycle }
  | 4 ->
      let st_iter = get_i64 c in
      let st_cycles = get_i32 c in
      let st_cycle = get_i64 c in
      Ev_stall { st_iter; st_cycles; st_cycle }
  | 5 ->
      let rt_iter = get_i64 c in
      let rt_cycle = get_i64 c in
      Ev_retire { rt_iter; rt_cycle }
  | 6 ->
      let cd_req = get_i64 c in
      let cd_phase = get_i32 c in
      let cd_pc = get_i64 c in
      let cd_cycle = get_i64 c in
      Ev_condemn { cd_req; cd_phase; cd_pc; cd_cycle }
  | n -> raise (Corrupt (Printf.sprintf "bad event tag %d" n))

let encode (l : log) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  put_u8 b version;
  put_str b l.l_tool;
  put_u8 b l.l_cores;
  put_assoc b l.l_meta;
  List.iter (encode_event b) l.l_events;
  put_u8 b 0xFF;
  put_assoc b l.l_digests;
  Buffer.contents b

let decode (s : string) : log =
  let c = { data = s; pos = 0 } in
  need c 4;
  if String.sub s 0 4 <> magic then raise (Corrupt "bad magic");
  c.pos <- 4;
  let v = get_u8 c in
  if v <> version then
    raise (Corrupt (Printf.sprintf "unsupported version %d (want %d)" v version));
  let l_tool = get_str c in
  let l_cores = get_u8 c in
  let l_meta = get_assoc c in
  let events = ref [] in
  let digests = ref [] in
  let rec loop () =
    let tag = get_u8 c in
    if tag = 0xFF then digests := get_assoc c
    else begin
      events := decode_event c tag :: !events;
      loop ()
    end
  in
  loop ();
  { l_tool; l_cores; l_meta; l_events = List.rev !events;
    l_digests = !digests }

(* ------------------------------------------------------------------ *)
(* Recorder                                                             *)
(* ------------------------------------------------------------------ *)

(** In-flight capture of one syscall's side effects: store spans (kept
    coalesced) interleaved with map events, in order. *)
type item = I_span of { mutable sp_a : int64; mutable sp_l : int } | I_eff of effect_

type recorder = {
  mutable r_tool : string;
  mutable r_cores : int;
  mutable r_meta : (string * string) list;
  mutable r_events : event list;  (** reversed *)
  mutable r_n_events : int;
  mutable r_digests : (string * string) list;
  (* in-flight syscall capture *)
  mutable r_in_sys : bool;
  mutable r_num : int;
  mutable r_args : int64 * int64 * int64;
  mutable r_items : item list;  (** reversed *)
}

let recorder () =
  {
    r_tool = "";
    r_cores = 1;
    r_meta = [];
    r_events = [];
    r_n_events = 0;
    r_digests = [];
    r_in_sys = false;
    r_num = 0;
    r_args = (0L, 0L, 0L);
    r_items = [];
  }

let set_header r ~tool ~cores =
  r.r_tool <- tool;
  r.r_cores <- cores

let add_meta r k v = r.r_meta <- r.r_meta @ [ (k, v) ]
let n_events r = r.r_n_events

let push r ev =
  r.r_events <- ev :: r.r_events;
  r.r_n_events <- r.r_n_events + 1

(** Store watch: only stores made while a syscall is in flight are
    kernel effects (guest code never runs during [invoke]). *)
let note_store r addr size =
  if r.r_in_sys then
    match r.r_items with
    | I_span sp :: _ when Int64.add sp.sp_a (Int64.of_int sp.sp_l) = addr ->
        sp.sp_l <- sp.sp_l + size
    | _ -> r.r_items <- I_span { sp_a = addr; sp_l = size } :: r.r_items

let perm_bits (p : Aspace.perm) =
  (if p.Aspace.r then 1 else 0)
  lor (if p.Aspace.w then 2 else 0)
  lor (if p.Aspace.x then 4 else 0)

let perm_of_bits n : Aspace.perm =
  { Aspace.r = n land 1 <> 0; w = n land 2 <> 0; x = n land 4 <> 0 }

let note_map r (ev : Aspace.map_event) =
  if r.r_in_sys then
    let eff =
      match ev with
      | Aspace.Mapped { addr; len; perm; zero } ->
          E_map { ep_addr = addr; ep_len = len; ep_perm = perm_bits perm;
                  ep_zero = zero }
      | Aspace.Unmapped { addr; len } ->
          E_unmap { eu_addr = addr; eu_len = len }
    in
    r.r_items <- I_eff eff :: r.r_items

let begin_syscall r ~num ~args =
  r.r_in_sys <- true;
  r.r_num <- num;
  r.r_args <- args;
  r.r_items <- []

(** Close the in-flight syscall and append its event.  Store spans read
    their final bytes here: within one syscall a later store or zeroing
    map over an earlier span leaves both effects writing the same final
    bytes, so applying them in order on replay reproduces the final
    memory exactly.  A span whose pages were unmapped again before the
    syscall returned is dropped — the mapping no longer exists, so the
    bytes are not guest-visible. *)
let end_syscall r ~(kern : Kernel.t) ~ret ~action ~charged ~cycle ~counters =
  r.r_in_sys <- false;
  let mem = kern.Kernel.mem in
  let effects =
    List.rev_map
      (function
        | I_eff e -> Some e
        | I_span { sp_a; sp_l } -> (
            match Aspace.read_bytes mem sp_a sp_l with
            | bytes -> Some (E_mem { em_addr = sp_a; em_bytes = bytes })
            | exception Aspace.Fault _ -> None))
      r.r_items
    |> List.filter_map (fun x -> x)
  in
  let a1, a2, _a3 = r.r_args in
  let ok = Int64.unsigned_compare ret 0xFFFF_F000L < 0 in
  let effects =
    (* console/file appends do not go through guest memory, so they are
       synthesised from the write arguments and the (possibly
       chaos-shortened) result *)
    if r.r_num = Kernel.Num.sys_write && ok && Int64.compare ret 0L > 0 then
      let fd = Int64.to_int a1 in
      let name =
        match Hashtbl.find_opt kern.Kernel.fds fd with
        | Some f -> f.Kernel.fd_name
        | None -> ""
      in
      match Aspace.read_bytes mem a2 (Int64.to_int ret) with
      | bytes ->
          effects
          @ [ E_out { eo_fd = fd; eo_name = name;
                      eo_data = Bytes.to_string bytes } ]
      | exception Aspace.Fault _ -> effects
    else if r.r_num = Kernel.Num.sys_sigaction && ret = 0L then
      effects
      @ [ E_handler { eh_signo = Int64.to_int a1; eh_addr = a2 } ]
    else effects
  in
  push r
    (Ev_syscall
       { se_num = r.r_num; se_ret = ret; se_brk = kern.Kernel.brk;
         se_charged = charged; se_cycle = cycle; se_action = action;
         se_counters = counters; se_effects = effects })

let record_signal r ~iter ~tid ~signo ~cycle =
  push r (Ev_signal { sg_iter = iter; sg_tid = tid; sg_signo = signo;
                      sg_cycle = cycle })

let record_flush r ~iter ~cycle =
  push r (Ev_flush { fl_iter = iter; fl_cycle = cycle })

let record_stall r ~iter ~cycles ~cycle =
  push r (Ev_stall { st_iter = iter; st_cycles = cycles; st_cycle = cycle })

let record_retire r ~iter ~cycle =
  push r (Ev_retire { rt_iter = iter; rt_cycle = cycle })

let record_condemn r ~req ~phase ~pc ~cycle =
  push r (Ev_condemn { cd_req = req; cd_phase = phase; cd_pc = pc;
                       cd_cycle = cycle })

let finish r ~digests = r.r_digests <- digests

let recorded_log (r : recorder) : log =
  {
    l_tool = r.r_tool;
    l_cores = r.r_cores;
    l_meta = r.r_meta;
    l_events = List.rev r.r_events;
    l_digests = r.r_digests;
  }

let to_string r = encode (recorded_log r)

let to_file r path =
  let oc = open_out_bin path in
  output_string oc (to_string r);
  close_out oc

let log_of_file path : log =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  decode s

(* ------------------------------------------------------------------ *)
(* Player                                                               *)
(* ------------------------------------------------------------------ *)

type player = {
  p_log : log;
  p_sys : sys_event array;
  mutable p_sys_i : int;
  p_sig : (int64 * int * int) array;  (** iter, tid, signo *)
  mutable p_sig_i : int;
  p_flush : int64 array;  (** iters *)
  mutable p_flush_i : int;
  p_stall : (int64 * int) array;  (** iter, cycles *)
  mutable p_stall_i : int;
  p_retire : int64 array;  (** iters *)
  mutable p_retire_i : int;
  p_condemn : (int64 * int) array;  (** req ordinal, phase *)
  mutable p_condemn_i : int;
}

let player (l : log) : player =
  let sys = ref [] and sg = ref [] and fl = ref [] and st = ref [] in
  let rt = ref [] and cd = ref [] in
  List.iter
    (function
      | Ev_syscall se -> sys := se :: !sys
      | Ev_signal s -> sg := (s.sg_iter, s.sg_tid, s.sg_signo) :: !sg
      | Ev_flush f -> fl := f.fl_iter :: !fl
      | Ev_stall s -> st := (s.st_iter, s.st_cycles) :: !st
      | Ev_retire r -> rt := r.rt_iter :: !rt
      | Ev_condemn c -> cd := (c.cd_req, c.cd_phase) :: !cd)
    l.l_events;
  {
    p_log = l;
    p_sys = Array.of_list (List.rev !sys);
    p_sys_i = 0;
    p_sig = Array.of_list (List.rev !sg);
    p_sig_i = 0;
    p_flush = Array.of_list (List.rev !fl);
    p_flush_i = 0;
    p_stall = Array.of_list (List.rev !st);
    p_stall_i = 0;
    p_retire = Array.of_list (List.rev !rt);
    p_retire_i = 0;
    p_condemn = Array.of_list (List.rev !cd);
    p_condemn_i = 0;
  }

let player_of_file path = player (log_of_file path)
let player_of_string s = player (decode s)

(** Cursor positions, for snapshot/restore during time-travel. *)
type marks = int * int * int * int * int * int

let mark (p : player) : marks =
  (p.p_sys_i, p.p_sig_i, p.p_flush_i, p.p_stall_i, p.p_retire_i, p.p_condemn_i)

let reset (p : player) ((a, b, c, d, e, f) : marks) =
  p.p_sys_i <- a;
  p.p_sig_i <- b;
  p.p_flush_i <- c;
  p.p_stall_i <- d;
  p.p_retire_i <- e;
  p.p_condemn_i <- f

let diverged ~cycle ~expected ~got =
  raise (Divergence { dv_cycle = cycle; dv_expected = expected; dv_got = got })

let apply_effect (kern : Kernel.t) = function
  | E_mem { em_addr; em_bytes } ->
      Aspace.write_bytes kern.Kernel.mem em_addr em_bytes
  | E_map { ep_addr; ep_len; ep_perm; ep_zero } ->
      Aspace.map ~zero:ep_zero kern.Kernel.mem ~addr:ep_addr ~len:ep_len
        ~perm:(perm_of_bits ep_perm)
  | E_unmap { eu_addr; eu_len } ->
      Aspace.unmap kern.Kernel.mem ~addr:eu_addr ~len:eu_len
  | E_out { eo_fd; eo_name; eo_data } ->
      let fd =
        match Hashtbl.find_opt kern.Kernel.fds eo_fd with
        | Some fd -> fd
        | None ->
            (* the record run opened this fd via sys_open; the kernel
               never ran here, so create it lazily with the recorded
               name ([next_fd] is monotonic, so numbers never clash) *)
            let fd =
              { Kernel.kind = Kernel.Fd_write (Buffer.create 64);
                fd_name = eo_name }
            in
            Hashtbl.replace kern.Kernel.fds eo_fd fd;
            if eo_fd >= kern.Kernel.next_fd then
              kern.Kernel.next_fd <- eo_fd + 1;
            fd
      in
      (match fd.Kernel.kind with
      | Kernel.Fd_console b | Kernel.Fd_write b -> Buffer.add_string b eo_data
      | Kernel.Fd_read _ -> ());
      if kern.Kernel.stdout_echo && (eo_fd = 1 || eo_fd = 2) then
        print_string eo_data
  | E_handler { eh_signo; eh_addr } ->
      ignore (Kernel.set_handler kern eh_signo eh_addr)

(** Replay one syscall from the log instead of invoking the kernel:
    checks the syscall number, applies the recorded side effects, syncs
    brk, places the recorded result in r0 and returns the recorded
    action plus the cycles charged and the syswrap counter values. *)
let replay_syscall (p : player) ~(kern : Kernel.t) ~num ~(r : Kernel.regs)
    ~cycle : Kernel.action * int * (int * int * int * int) =
  if p.p_sys_i >= Array.length p.p_sys then
    diverged ~cycle ~expected:"end of log"
      ~got:(Printf.sprintf "syscall %s" (Kernel.Num.name num));
  let se = p.p_sys.(p.p_sys_i) in
  if se.se_num <> num then
    diverged ~cycle
      ~expected:(Printf.sprintf "syscall %s" (Kernel.Num.name se.se_num))
      ~got:(Printf.sprintf "syscall %s" (Kernel.Num.name num));
  p.p_sys_i <- p.p_sys_i + 1;
  List.iter (apply_effect kern) se.se_effects;
  kern.Kernel.brk <- se.se_brk;
  r.Kernel.set 0 se.se_ret;
  (se.se_action, se.se_charged, se.se_counters)

(** Is a signal delivery recorded at this scheduler iteration?  A log
    entry for an iteration already passed means the session diverged. *)
let signal_due (p : player) ~iter ~cycle : (int * int) option =
  if p.p_sig_i >= Array.length p.p_sig then None
  else
    let it, tid, signo = p.p_sig.(p.p_sig_i) in
    if Int64.compare it iter < 0 then
      diverged ~cycle
        ~expected:(Printf.sprintf "signal %d to tid %d at iteration %Ld" signo
                     tid it)
        ~got:(Printf.sprintf "iteration %Ld" iter)
    else if it = iter then begin
      p.p_sig_i <- p.p_sig_i + 1;
      Some (tid, signo)
    end
    else None

let flush_due (p : player) ~iter ~cycle : bool =
  if p.p_flush_i >= Array.length p.p_flush then false
  else
    let it = p.p_flush.(p.p_flush_i) in
    if Int64.compare it iter < 0 then
      diverged ~cycle
        ~expected:(Printf.sprintf "cache flush at iteration %Ld" it)
        ~got:(Printf.sprintf "iteration %Ld" iter)
    else if it = iter then begin
      p.p_flush_i <- p.p_flush_i + 1;
      true
    end
    else false

let stall_due (p : player) ~iter ~cycle : int option =
  if p.p_stall_i >= Array.length p.p_stall then None
  else
    let it, n = p.p_stall.(p.p_stall_i) in
    if Int64.compare it iter < 0 then
      diverged ~cycle
        ~expected:(Printf.sprintf "handoff stall at iteration %Ld" it)
        ~got:(Printf.sprintf "iteration %Ld" iter)
    else if it = iter then begin
      p.p_stall_i <- p.p_stall_i + 1;
      Some n
    end
    else None

let retire_due (p : player) ~iter ~cycle : bool =
  if p.p_retire_i >= Array.length p.p_retire then false
  else
    let it = p.p_retire.(p.p_retire_i) in
    if Int64.compare it iter < 0 then
      diverged ~cycle
        ~expected:(Printf.sprintf "retire delay at iteration %Ld" it)
        ~got:(Printf.sprintf "iteration %Ld" iter)
    else if it = iter then begin
      p.p_retire_i <- p.p_retire_i + 1;
      true
    end
    else false

(** Forced translation failure, keyed by the translation-request
    ordinal; returns the condemned phase. *)
let condemn_due (p : player) ~req ~cycle : int option =
  if p.p_condemn_i >= Array.length p.p_condemn then None
  else
    let rq, phase = p.p_condemn.(p.p_condemn_i) in
    if Int64.compare rq req < 0 then
      diverged ~cycle
        ~expected:(Printf.sprintf "condemned translation at request %Ld" rq)
        ~got:(Printf.sprintf "request %Ld" req)
    else if rq = req then begin
      p.p_condemn_i <- p.p_condemn_i + 1;
      Some phase
    end
    else None

(** How much of the log has been consumed, for the replay.* metrics. *)
let progress (p : player) : (string * int) list =
  [
    ("syscalls", p.p_sys_i);
    ("signals", p.p_sig_i);
    ("flushes", p.p_flush_i);
    ("stalls", p.p_stall_i);
    ("retires", p.p_retire_i);
    ("condemns", p.p_condemn_i);
  ]

(* ------------------------------------------------------------------ *)
(* Session integration                                                  *)
(* ------------------------------------------------------------------ *)

(** How a session relates to a log: not at all, feeding a recorder, or
    driven by a player. *)
type rr = No_rr | Record of recorder | Replay of player

(* ------------------------------------------------------------------ *)
(* Digest helpers                                                       *)
(* ------------------------------------------------------------------ *)

let fnv_prime = 0x100000001B3L
let fnv_basis = 0xCBF29CE484222325L

let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xFF))) fnv_prime

let fnv_string ?(h = fnv_basis) (s : string) : int64 =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

let fnv_bytes ?(h = fnv_basis) (b : Bytes.t) : int64 =
  fnv_string ~h (Bytes.to_string b)

let hex (h : int64) = Printf.sprintf "%016Lx" h

(** Hash the entire mapped address space: page indices, permissions and
    contents, in page order.  Stronger than the fuzz oracle's data+bss
    hash — replay equality covers every mapping. *)
let hash_aspace (mem : Aspace.t) : int64 =
  let s = Aspace.snapshot mem in
  let h = ref fnv_basis in
  List.iter
    (fun (pi, data, perm) ->
      h := fnv_byte !h pi;
      h := fnv_byte !h (pi lsr 8);
      h := fnv_byte !h (pi lsr 16);
      h := fnv_byte !h (perm_bits perm);
      h := fnv_bytes ~h:!h data)
    s.Aspace.s_pages;
  !h

(** Drop metric lines that only exist on one side of a record/replay
    pair: chaos.* (the recording side rolled the dice) and replay.*
    (the replaying side counts log consumption).
    transtab.retire_pending is dropped too: the transtab snapshot
    deliberately forgets the retire list (dead cache hits behave like
    misses, so replayed behaviour is unaffected), which zeroes this
    transient gauge after time travel.  Trailing commas are
    normalised away so the remainder compares exactly. *)
let filter_stats (json : string) : string =
  let has_prefix p t =
    String.length t >= String.length p && String.sub t 0 (String.length p) = p
  in
  let keep line =
    let t = String.trim line in
    not
      (has_prefix "\"chaos." t
      || has_prefix "\"replay." t
      || has_prefix "\"transtab.retire_pending" t)
  in
  String.split_on_char '\n' json
  |> List.filter (fun l ->
         let t = String.trim l in
         String.length t > 0 && t.[0] = '"' && keep l)
  |> List.map (fun l ->
         let l = String.trim l in
         if String.length l > 0 && l.[String.length l - 1] = ',' then
           String.sub l 0 (String.length l - 1)
         else l)
  |> String.concat "\n"
