(** Simulated address-space manager.

    Valgrind's core initialises "the address space manager and its own
    internal memory allocator" first thing at start-up (§3.3); squeezing
    the client and the tool into one process means the address space must
    be explicitly partitioned (R2) and mmap-like requests from the client
    pre-checked against the tool's mappings (§3.10).

    This module provides the mechanism: a sparse paged 32-bit address
    space with per-page permissions.  Policy (which ranges belong to the
    client vs the core/tool) lives in {!Vg_core.Layout} and the kernel.

    Addresses are [int64] with only the low 32 bits significant. *)

let page_size = 4096
let page_shift = 12

(** Round an address up/down to a page boundary. *)
let round_up (a : int64) = Int64.logand (Int64.add a 4095L) (Int64.lognot 4095L)

let round_down (a : int64) = Int64.logand a (Int64.lognot 4095L)
let round_up_int (n : int) = (n + 4095) land lnot 4095

type perm = { r : bool; w : bool; x : bool }

let perm_rwx = { r = true; w = true; x = true }
let perm_rw = { r = true; w = true; x = false }
let perm_rx = { r = true; w = false; x = true }
let perm_none = { r = false; w = false; x = false }

let pp_perm ppf p =
  Fmt.pf ppf "%c%c%c"
    (if p.r then 'r' else '-')
    (if p.w then 'w' else '-')
    (if p.x then 'x' else '-')

type page = { data : Bytes.t; mutable perm : perm }

type access_kind = Read | Write | Exec | Map

exception Fault of { addr : int64; kind : access_kind }

let pp_access_kind ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"
  | Exec -> Fmt.string ppf "exec"
  | Map -> Fmt.string ppf "map"

(** Mapping-level events, for observers that need to mirror the address
    space (the record/replay log watches these alongside stores). *)
type map_event =
  | Mapped of { addr : int64; len : int; perm : perm; zero : bool }
  | Unmapped of { addr : int64; len : int }

type t = {
  pages : (int, page) Hashtbl.t;
  mutable bytes_mapped : int;  (** total currently-mapped bytes *)
  mutable store_watch : (int64 -> int -> unit) list;
      (** called on every successful store (address, size); used by the
          core and interpreters to notice self-modifying code *)
  mutable map_watch : (map_event -> unit) list;
      (** called on every map/unmap, before the pages change *)
}

let create () =
  { pages = Hashtbl.create 1024; bytes_mapped = 0; store_watch = [];
    map_watch = [] }

let add_store_watch t f = t.store_watch <- f :: t.store_watch
let notify_store t addr size = List.iter (fun f -> f addr size) t.store_watch
let add_map_watch t f = t.map_watch <- f :: t.map_watch
let notify_map t ev = List.iter (fun f -> f ev) t.map_watch

let page_index (addr : int64) =
  Int64.to_int (Int64.shift_right_logical (Support.Bits.trunc32 addr) page_shift)

let page_offset (addr : int64) = Int64.to_int (Int64.logand addr 0xFFFL)

let is_mapped t addr = Hashtbl.mem t.pages (page_index addr)

let perm_at t addr =
  match Hashtbl.find_opt t.pages (page_index addr) with
  | None -> perm_none
  | Some p -> p.perm

(** Round [len] up and [addr] down to page boundaries; iterate pages. *)
let iter_pages addr len f =
  if len > 0 then begin
    let first = page_index addr in
    let last = page_index (Int64.add addr (Int64.of_int (len - 1))) in
    for pi = first to last do
      f pi
    done
  end

(** Map [len] bytes at [addr] (both page-rounded) with permission [perm].
    Newly mapped pages are zero-filled; remapping an existing page keeps
    its contents but updates the permission (like mmap MAP_FIXED over an
    existing mapping would zero it — we zero too when [zero] is true). *)
let map ?(zero = true) t ~addr ~len ~perm =
  if len > 0 then notify_map t (Mapped { addr; len; perm; zero });
  iter_pages addr len (fun pi ->
      match Hashtbl.find_opt t.pages pi with
      | Some p ->
          p.perm <- perm;
          if zero then Bytes.fill p.data 0 page_size '\000'
      | None ->
          Hashtbl.replace t.pages pi { data = Bytes.make page_size '\000'; perm };
          t.bytes_mapped <- t.bytes_mapped + page_size)

let unmap t ~addr ~len =
  if len > 0 then notify_map t (Unmapped { addr; len });
  iter_pages addr len (fun pi ->
      if Hashtbl.mem t.pages pi then begin
        Hashtbl.remove t.pages pi;
        t.bytes_mapped <- t.bytes_mapped - page_size
      end)

let protect t ~addr ~len ~perm =
  iter_pages addr len (fun pi ->
      match Hashtbl.find_opt t.pages pi with
      | Some p -> p.perm <- perm
      | None -> raise (Fault { addr = Int64.of_int (pi lsl page_shift); kind = Map }))

(** Is [addr..addr+len) entirely mapped with at least [kind] access? *)
let check_range t ~addr ~len kind =
  let ok = ref true in
  iter_pages addr len (fun pi ->
      match Hashtbl.find_opt t.pages pi with
      | None -> ok := false
      | Some p ->
          let allowed =
            match kind with
            | Read -> p.perm.r
            | Write -> p.perm.w
            | Exec -> p.perm.x
            | Map -> true
          in
          if not allowed then ok := false);
  !ok

(** Find [len] bytes of unmapped space at or above [hint], page aligned.
    Returns the base address.  Raises [Not_found] if the search passes
    [limit]. *)
let find_free t ~hint ~limit ~len =
  let npages = (len + page_size - 1) / page_size in
  let limit_pi = page_index limit in
  let rec search pi =
    if pi + npages > limit_pi then raise Not_found;
    let rec free k = k = npages || ((not (Hashtbl.mem t.pages (pi + k))) && free (k + 1)) in
    if free 0 then Int64.of_int (pi lsl page_shift)
    else search (pi + 1)
  in
  search (page_index hint)

let get_page t addr kind =
  match Hashtbl.find_opt t.pages (page_index addr) with
  | Some p -> p
  | None -> raise (Fault { addr; kind })

(** {2 Byte-level access with permission checks} *)

let read_u8 t addr =
  let p = get_page t addr Read in
  if not p.perm.r then raise (Fault { addr; kind = Read });
  Char.code (Bytes.unsafe_get p.data (page_offset addr))

let write_u8 t addr v =
  let p = get_page t addr Write in
  if not p.perm.w then raise (Fault { addr; kind = Write });
  Bytes.unsafe_set p.data (page_offset addr) (Char.unsafe_chr (v land 0xFF));
  notify_store t addr 1

(** [read t addr size] reads [size] (1/2/4/8/16? no — 1..8) bytes LE.
    Fast path when the access stays within one page. *)
let read t addr size : int64 =
  let off = page_offset addr in
  if off + size <= page_size then begin
    let p = get_page t addr Read in
    if not p.perm.r then raise (Fault { addr; kind = Read });
    match size with
    | 1 -> Int64.of_int (Char.code (Bytes.unsafe_get p.data off))
    | 2 -> Int64.of_int (Bytes.get_uint16_le p.data off)
    | 4 -> Int64.of_int32 (Bytes.get_int32_le p.data off) |> Support.Bits.trunc32
    | 8 -> Bytes.get_int64_le p.data off
    | _ ->
        let v = ref 0L in
        for i = size - 1 downto 0 do
          v := Int64.logor (Int64.shift_left !v 8)
                 (Int64.of_int (Char.code (Bytes.unsafe_get p.data (off + i))))
        done;
        !v
  end
  else begin
    (* crosses a page boundary: byte at a time *)
    let v = ref 0L in
    for i = size - 1 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8)
             (Int64.of_int (read_u8 t (Int64.add addr (Int64.of_int i))))
    done;
    !v
  end

let write t addr size (v : int64) =
  let off = page_offset addr in
  if off + size <= page_size then begin
    let p = get_page t addr Write in
    if not p.perm.w then raise (Fault { addr; kind = Write });
    (match size with
    | 1 -> Bytes.unsafe_set p.data off (Char.unsafe_chr (Int64.to_int v land 0xFF))
    | 2 -> Bytes.set_uint16_le p.data off (Int64.to_int v land 0xFFFF)
    | 4 -> Bytes.set_int32_le p.data off (Int64.to_int32 v)
    | 8 -> Bytes.set_int64_le p.data off v
    | _ ->
        for i = 0 to size - 1 do
          Bytes.unsafe_set p.data (off + i)
            (Char.unsafe_chr
               (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
        done);
    notify_store t addr size
  end
  else
    for i = 0 to size - 1 do
      write_u8 t
        (Int64.add addr (Int64.of_int i))
        (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF)
    done

(** Read for instruction fetch: checks execute permission. *)
let fetch_u8 t addr =
  let p = get_page t addr Exec in
  if not p.perm.x then raise (Fault { addr; kind = Exec });
  Char.code (Bytes.unsafe_get p.data (page_offset addr))

(** Copy [len] raw bytes out (read-checked). *)
let read_bytes t addr len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (read_u8 t (Int64.add addr (Int64.of_int i))))
  done;
  b

(** Copy [len] raw bytes in (write-checked). *)
let write_bytes t addr (src : Bytes.t) =
  for i = 0 to Bytes.length src - 1 do
    write_u8 t (Int64.add addr (Int64.of_int i)) (Char.code (Bytes.unsafe_get src i))
  done

(** Read a NUL-terminated string (at most [max] bytes, default 4096). *)
let read_asciiz ?(max = 4096) t addr =
  let buf = Buffer.create 32 in
  let rec go i =
    if i >= max then Buffer.contents buf
    else
      let c = read_u8 t (Int64.add addr (Int64.of_int i)) in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        go (i + 1)
      end
  in
  go 0

(** Copy [len] bytes from [src] to [dst] handling overlap (memmove). *)
let move t ~src ~dst ~len =
  let tmp = read_bytes t src len in
  write_bytes t dst tmp

(** {2 Snapshot / restore}

    A deep copy of every page plus the mapped-byte count.  Watches are
    deliberately not part of a snapshot: they belong to the observers,
    not to the observed state.  Restoring mutates [t] in place so every
    existing reference (kernel, engines, threads) stays valid. *)

type snap = { s_pages : (int * Bytes.t * perm) list; s_bytes_mapped : int }

let snapshot (t : t) : snap =
  let s_pages =
    Hashtbl.fold (fun pi p acc -> (pi, Bytes.copy p.data, p.perm) :: acc)
      t.pages []
  in
  { s_pages = List.sort (fun (a, _, _) (b, _, _) -> compare a b) s_pages;
    s_bytes_mapped = t.bytes_mapped }

let restore (t : t) (s : snap) : unit =
  Hashtbl.reset t.pages;
  List.iter
    (fun (pi, data, perm) ->
      Hashtbl.replace t.pages pi { data = Bytes.copy data; perm })
    s.s_pages;
  t.bytes_mapped <- s.s_bytes_mapped
