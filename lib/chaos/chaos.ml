(** Vgchaos: seeded deterministic fault injection.

    The paper's core promise (§3.2, §3.9, §3.12) is that Valgrind stays
    in control {e no matter what happens}: bad instructions become
    signals, syscalls fail and are retried or surfaced, translations can
    be dropped at any moment.  The simulated kernel and JIT are normally
    infallible, so none of those recovery paths would ever run.  This
    module makes them run: a session configured with a [Chaos.t]
    experiences transient syscall errors, short reads/writes, address-
    space mapping denials, forced translation failures at any of the
    eight JIT phase boundaries, and forced code-cache flushes — all
    drawn from a single splitmix64 stream, so a given seed reproduces
    the exact same fault schedule, injection for injection.

    Decision functions consume randomness {e only} at eligible points
    (e.g. a [read] syscall, a translation request), which is what makes
    replay exact: the nth eligible point always sees the nth draw.

    Every injected fault is recorded in an append-only log ({!log_lines})
    used by [bin/vgchaos] to assert bit-identical replay per seed. *)

open Support

(** Injection probabilities, all in [0, 1].  A probability of zero
    disables that injection point without consuming randomness. *)
type config = {
  seed : int;
  p_eintr : float;  (** EINTR on restartable syscalls (read, nanosleep) *)
  p_errno : float;  (** client-visible transient errno on read/write *)
  p_short : float;  (** short read/write (length clamped) *)
  p_map_denial : float;  (** transient mmap/mremap placement denial *)
  p_translation_failure : float;  (** forced [Translation_failure] *)
  force_phase : int option;
      (** pin forced translation failures to one phase (1..8); [None]
          draws the phase uniformly per failure *)
  p_flush : float;  (** forced full code-cache flush, between blocks *)
  p_handoff_stall : float;
      (** stall cycles charged when the scheduler hands execution to a
          different core (models cross-core migration cost under
          contention); deterministic, so it perturbs the multi-core
          interleaving without breaking replay *)
  p_retire_delay : float;
      (** hold the transtab's retire list one extra epoch at an epoch
          boundary (stresses the grace-period machinery: dead
          translations stay referenced-but-unfreed longer) *)
  max_injections : int;  (** stop injecting after this many (0 = no cap) *)
}

(** Faults whose recovery is transparent to the client: EINTR on
    restartable syscalls (the wrapper restarts them), mapping denials
    (the wrapper retries with backoff, and denials are capped below the
    retry budget), translation failures (the block runs interpreted) and
    cache flushes (blocks retranslate).  A run under this schedule must
    produce output identical to the fault-free run. *)
let idempotent ~seed =
  {
    seed;
    p_eintr = 0.25;
    p_errno = 0.0;
    p_short = 0.0;
    p_map_denial = 0.3;
    p_translation_failure = 0.05;
    force_phase = None;
    p_flush = 0.002;
    p_handoff_stall = 0.0;
    p_retire_delay = 0.0;
    max_injections = 0;
  }

(** Everything in {!idempotent} plus client-visible faults: transient
    errnos and short reads/writes the client must cope with.  Output
    equivalence is not guaranteed — only survival and exact replay. *)
let hostile ~seed =
  {
    seed;
    p_eintr = 0.2;
    p_errno = 0.1;
    p_short = 0.15;
    p_map_denial = 0.3;
    p_translation_failure = 0.08;
    force_phase = None;
    p_flush = 0.003;
    p_handoff_stall = 0.0;
    p_retire_delay = 0.0;
    max_injections = 0;
  }

(** {!hostile} plus the multi-core fault points: core-handoff stalls
    and epoch-retirement delays.  Meaningful with [--cores >= 2] (a
    single core never hands off); stalls reshape the deterministic
    interleaving, delays stretch the transtab grace period.  Replay
    stays exact per seed. *)
let sharded ~seed =
  {
    (hostile ~seed) with
    p_handoff_stall = 0.05;
    p_retire_delay = 0.25;
  }

type t = {
  cfg : config;
  rng : Rng.t;
  mutable log : string list;  (** injections, newest first *)
  mutable n_injected : int;
  mutable consec_map_denials : int;
  mutable recoveries : (string * int) list;
      (** recovery-path activations observed by the core, by kind *)
  mutable sink : (kind:string -> detail:string -> unit) option;
      (** observer notified of every injection (the session wires this
          to its trace ring; a closure so chaos stays obs-free) *)
}

let create (cfg : config) : t =
  {
    cfg;
    rng = Rng.create cfg.seed;
    log = [];
    n_injected = 0;
    consec_map_denials = 0;
    recoveries = [];
    sink = None;
  }

(** Install an injection observer (at most one; the session uses it to
    mirror the fault log into its structured trace). *)
let set_sink t (f : kind:string -> detail:string -> unit) = t.sink <- Some f

let seed t = t.cfg.seed
let n_injected t = t.n_injected

(** The fault log, oldest first: one line per injection, fully
    deterministic for a given seed and execution path. *)
let log_lines t : string list = List.rev t.log

let budget_ok t =
  t.cfg.max_injections = 0 || t.n_injected < t.cfg.max_injections

let inject t kind detail =
  t.n_injected <- t.n_injected + 1;
  t.log <- Printf.sprintf "chaos[%d] %s: %s" t.n_injected kind detail :: t.log;
  match t.sink with Some f -> f ~kind ~detail | None -> ()

(* One biased coin flip; never consumes randomness when the injection
   point is disabled (p = 0) or the budget is spent, so turning one
   point off does not shift the draws other points see... it does shift
   them across configs, but within a config the stream is stable. *)
let roll t p = p > 0.0 && budget_ok t && Rng.float t.rng < p

(** The core reports each recovery-path activation here, so drivers can
    assert faults were actually survived (not merely never injected). *)
let note_recovery t kind =
  t.recoveries <-
    (match List.assoc_opt kind t.recoveries with
    | Some n -> (kind, n + 1) :: List.remove_assoc kind t.recoveries
    | None -> (kind, 1) :: t.recoveries)

let recovery_count t kind =
  Option.value (List.assoc_opt kind t.recoveries) ~default:0

let recoveries t = t.recoveries

(* ------------------------------------------------------------------ *)
(* Injection points                                                     *)
(* ------------------------------------------------------------------ *)

(** A fault to apply to one syscall invocation. *)
type fault =
  | Errno of int  (** fail with this errno instead of calling the kernel *)
  | Short_len of int  (** clamp the length argument (short read/write) *)

let restartable num =
  num = Kernel.Num.sys_read || num = Kernel.Num.sys_nanosleep

(** Decide the fate of one syscall invocation.  [len] is the byte count
    argument for read/write (used to pick a short length), 0 otherwise.
    Eligible points: EINTR on read/nanosleep; transient errnos and short
    lengths on read/write. *)
let syscall_fault t ~(num : int) ~(len : int) : fault option =
  let name = Kernel.Num.name num in
  let io = num = Kernel.Num.sys_read || num = Kernel.Num.sys_write in
  if restartable num && roll t t.cfg.p_eintr then begin
    inject t "syscall" (name ^ " -> EINTR");
    Some (Errno Kernel.eintr)
  end
  else if io && roll t t.cfg.p_errno then begin
    let e, en =
      match Rng.int t.rng 2 with
      | 0 -> (Kernel.eagain, "EAGAIN")
      | _ -> (Kernel.enomem, "ENOMEM")
    in
    inject t "syscall" (Printf.sprintf "%s -> %s" name en);
    Some (Errno e)
  end
  else if io && len > 1 && roll t t.cfg.p_short then begin
    let n = 1 + Rng.int t.rng (len - 1) in
    inject t "syscall" (Printf.sprintf "short %s: %d of %d bytes" name n len);
    Some (Short_len n)
  end
  else None

(** Deny this mmap/mremap placement?  Consecutive denials are capped at
    3 — below the wrapper's retry budget of 4 attempts — so an injected
    denial is always transient and recovery always succeeds. *)
let map_denied t ~(addr : int64) ~(len : int) : bool =
  if t.cfg.p_map_denial <= 0.0 || not (budget_ok t) then false
  else if t.consec_map_denials >= 3 then begin
    t.consec_map_denials <- 0;
    false
  end
  else if Rng.float t.rng < t.cfg.p_map_denial then begin
    t.consec_map_denials <- t.consec_map_denials + 1;
    inject t "aspace" (Printf.sprintf "deny mapping of %d bytes at 0x%LX" len addr);
    true
  end
  else begin
    t.consec_map_denials <- 0;
    false
  end

let phase_names =
  [|
    "disassembly"; "optimisation 1"; "instrumentation"; "optimisation 2";
    "tree building"; "instruction selection"; "register allocation";
    "assembly";
  |]

(* A checks record that raises Translation_failure at exactly one of the
   eight phase boundaries and is silent at the other seven. *)
let checks_failing_at (phase : int) : Jit.Pipeline.checks =
  let boom () =
    raise
      (Jit.Pipeline.Translation_failure
         (Printf.sprintf "chaos: forced failure at phase %d (%s)" phase
            phase_names.(phase - 1)))
  in
  {
    Jit.Pipeline.ck_tree = (fun _ -> if phase = 1 then boom ());
    ck_flat = (fun _ -> if phase = 2 then boom ());
    ck_instrumented = (fun ~pre:_ ~post:_ -> if phase = 3 then boom ());
    ck_opt2 = (fun ~pre:_ ~post:_ -> if phase = 4 then boom ());
    ck_treebuilt = (fun ~pre:_ ~post:_ -> if phase = 5 then boom ());
    ck_vcode = (fun _ ~n_int:_ ~n_vec:_ ~n_label:_ -> if phase = 6 then boom ());
    ck_hcode = (fun _ -> if phase = 7 then boom ());
    ck_bytes = (fun ~hcode:_ ~bytes:_ -> if phase = 8 then boom ());
  }

(** Decide whether this translation request fails, and at which phase
    boundary.  Returns the condemned phase (1..8); the record/replay
    log stores this ordinal so a replaying session can rebuild the same
    failing checks without a chaos stream. *)
let translation_fate t ~(pc : int64) : int option =
  if roll t t.cfg.p_translation_failure then begin
    let phase =
      match t.cfg.force_phase with
      | Some p ->
          if p < 1 || p > 8 then invalid_arg "Chaos: force_phase not in 1..8";
          p
      | None -> 1 + Rng.int t.rng 8
    in
    inject t "jit"
      (Printf.sprintf "force Translation_failure at phase %d (%s), pc 0x%LX"
         phase phase_names.(phase - 1) pc);
    Some phase
  end
  else None

(** As {!translation_fate}, but returns the composable checks record:
    it raises [Translation_failure] at the chosen boundary. *)
let translation_checks t ~(pc : int64) : Jit.Pipeline.checks option =
  Option.map checks_failing_at (translation_fate t ~pc)

(** Force a full code-cache flush before the next block?  (Simulates
    extreme cache pressure: every resident translation and chain is
    dropped at once, §3.8.) *)
let flush_cache t : bool =
  if roll t t.cfg.p_flush then begin
    inject t "cache" "force full translation-table flush";
    true
  end
  else false

(** Stall the scheduler's handoff to [core]?  Eligible point: the
    scheduler picked a different core than the one that stepped last.
    Returns the stall in cycles (charged to the incoming core's
    overhead), drawn from the stream so replay is exact. *)
let handoff_stall t ~(core : int) : int option =
  if roll t t.cfg.p_handoff_stall then begin
    let cycles = 50 + Rng.int t.rng 200 in
    inject t "sched"
      (Printf.sprintf "stall handoff to core %d for %d cycles" core cycles);
    Some cycles
  end
  else None

(** Hold the transtab retire list one extra epoch?  Eligible point: a
    scheduler epoch boundary with retired translations pending. *)
let retire_delay t ~(pending : int) : bool =
  if roll t t.cfg.p_retire_delay then begin
    inject t "cache"
      (Printf.sprintf "delay retirement of %d dead translations" pending);
    true
  end
  else false

(** One-line summary for drivers. *)
let summary t : string =
  Printf.sprintf "seed %d: %d faults injected; recoveries: %s" t.cfg.seed
    t.n_injected
    (if t.recoveries = [] then "none"
     else
       String.concat ", "
         (List.map
            (fun (k, n) -> Printf.sprintf "%s x%d" k n)
            (List.sort compare t.recoveries)))
