(** Vgscope: the cycle-exact observability layer.

    Valgrind's evaluation (paper §5) lives or dies on knowing {e where}
    cycles go — dispatch vs. JIT vs. tool instrumentation.  This module
    is the measurement substrate the rest of the core publishes into:

    - {!Registry}: a named-metric registry (push counters, cycle
      histograms, and {e probes} — pull closures that read a subsystem's
      own live field, so the registry can never drift from the legacy
      [stats] record it mirrors);
    - {!Trace}: a bounded ring of structured events (translations, chain
      patch/unlink, evictions, chaos faults, signals) exportable as
      JSON-lines or Chrome [trace_event] JSON;
    - {!Profile}: a flat + caller/callee guest-execution profile (a
      mini-Callgrind of the framework itself), driven by exact block
      counters.

    Everything here is deterministic by construction: timestamps come
    from the simulated cycle model (never wall-clock), iteration orders
    are sorted, and floats are rendered with a fixed format — so two
    runs of the same workload and seed produce bit-identical exports. *)

(* ------------------------------------------------------------------ *)
(* JSON rendering helpers (no JSON library: the flat formats below are  *)
(* parsed back by the bench gate's 20-line reader)                      *)
(* ------------------------------------------------------------------ *)

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Fixed-format float: deterministic across runs and platforms for the
   rationals we produce (hit rates, occupancy). *)
let json_float (f : float) : string = Printf.sprintf "%.6f" f

(* ------------------------------------------------------------------ *)
(* The metrics registry                                                 *)
(* ------------------------------------------------------------------ *)

module Registry = struct
  type counter = { mutable c_value : int64 }

  (** A log2-bucketed cycle histogram: bucket [k] counts observations
      [v] with [2^(k-1) <= v < 2^k] (bucket 0 counts zeros). *)
  type hist = {
    h_buckets : int64 array;  (** 65 buckets *)
    mutable h_count : int64;
    mutable h_sum : int64;
    mutable h_max : int64;
  }

  type metric =
    | M_counter of counter
    | M_probe of (unit -> int64)  (** pulls a subsystem's live field *)
    | M_fprobe of (unit -> float)
    | M_hist of hist

  type t = { metrics : (string, metric) Hashtbl.t }

  let create () : t = { metrics = Hashtbl.create 64 }

  let register (t : t) (name : string) (m : metric) =
    if Hashtbl.mem t.metrics name then
      invalid_arg ("Obs.Registry: duplicate metric " ^ name);
    Hashtbl.replace t.metrics name m

  let counter (t : t) (name : string) : counter =
    let c = { c_value = 0L } in
    register t name (M_counter c);
    c

  let probe (t : t) (name : string) (f : unit -> int64) : unit =
    register t name (M_probe f)

  let fprobe (t : t) (name : string) (f : unit -> float) : unit =
    register t name (M_fprobe f)

  let hist (t : t) (name : string) : hist =
    let h =
      { h_buckets = Array.make 65 0L; h_count = 0L; h_sum = 0L; h_max = 0L }
    in
    register t name (M_hist h);
    h

  let add (c : counter) (n : int64) = c.c_value <- Int64.add c.c_value n
  let incr (c : counter) = add c 1L
  let value (c : counter) = c.c_value

  let bucket_of (v : int64) : int =
    if Int64.compare v 0L <= 0 then 0
    else begin
      let k = ref 0 and x = ref v in
      while Int64.unsigned_compare !x 0L > 0 do
        x := Int64.shift_right_logical !x 1;
        k := !k + 1
      done;
      !k
    end

  let observe (h : hist) (v : int64) =
    h.h_buckets.(bucket_of v) <- Int64.add h.h_buckets.(bucket_of v) 1L;
    h.h_count <- Int64.add h.h_count 1L;
    h.h_sum <- Int64.add h.h_sum v;
    if Int64.unsigned_compare v h.h_max > 0 then h.h_max <- v

  (** One exported sample. *)
  type sample = I of int64 | F of float

  (* Flatten one metric into (suffix, sample) rows; histograms expand to
     .count/.sum/.max plus their non-empty buckets. *)
  let flatten (name : string) (m : metric) : (string * sample) list =
    match m with
    | M_counter c -> [ (name, I c.c_value) ]
    | M_probe f -> [ (name, I (f ())) ]
    | M_fprobe f -> [ (name, F (f ())) ]
    | M_hist h ->
        [ (name ^ ".count", I h.h_count);
          (name ^ ".sum", I h.h_sum);
          (name ^ ".max", I h.h_max) ]
        @ List.concat
            (List.init 65 (fun k ->
                 if h.h_buckets.(k) = 0L then []
                 else [ (Printf.sprintf "%s.b%02d" name k, I h.h_buckets.(k)) ]))

  (** Every sample in the registry, sorted by name (deterministic). *)
  let samples (t : t) : (string * sample) list =
    Hashtbl.fold (fun name m acc -> flatten name m @ acc) t.metrics []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let find (t : t) (name : string) : sample option =
    match Hashtbl.find_opt t.metrics name with
    | Some m -> ( match flatten name m with (_, s) :: _ -> Some s | [] -> None)
    | None ->
        (* Flattened-only names: histogram sub-keys like "h.count". *)
        List.assoc_opt name (samples t)

  let find_i64 (t : t) (name : string) : int64 option =
    match find t name with Some (I v) -> Some v | _ -> None

  (** Flat JSON object, one "name": value per line, keys sorted — the
      same shape [BENCH_baseline.json] uses, so the bench gate's parser
      reads it unchanged. *)
  let to_json (t : t) : string =
    let ss = samples t in
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, s) ->
        Buffer.add_string b
          (Printf.sprintf "  \"%s\": %s%s\n" (json_escape k)
             (match s with I v -> Int64.to_string v | F f -> json_float f)
             (if i = List.length ss - 1 then "" else ",")))
      ss;
    Buffer.add_string b "}\n";
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* The structured-event trace ring                                      *)
(* ------------------------------------------------------------------ *)

module Trace = struct
  type arg = I of int64 | S of string | F of float

  type event = {
    ev_ts : int64;  (** simulated cycles at the event *)
    ev_dur : int64;  (** duration in cycles; 0 = instant *)
    ev_cat : string;  (** "jit", "chain", "cache", "chaos", "signal", … *)
    ev_name : string;
    ev_args : (string * arg) list;
  }

  (** A bounded ring: the last [capacity] events are retained; earlier
      ones are counted in [dropped] so exports are honest about
      truncation. *)
  type t = {
    capacity : int;
    ring : event option array;
    mutable total : int;  (** events ever emitted *)
  }

  let create ~(capacity : int) : t =
    if capacity <= 0 then invalid_arg "Obs.Trace.create: capacity <= 0";
    { capacity; ring = Array.make capacity None; total = 0 }

  let emit (t : t) ~(ts : int64) ?(dur = 0L) ~(cat : string) ~(name : string)
      ?(args = []) () =
    t.ring.(t.total mod t.capacity) <-
      Some { ev_ts = ts; ev_dur = dur; ev_cat = cat; ev_name = name;
             ev_args = args };
    t.total <- t.total + 1

  let total (t : t) = t.total
  let dropped (t : t) = max 0 (t.total - t.capacity)

  (** Retained events, oldest first. *)
  let events (t : t) : event list =
    let n = min t.total t.capacity in
    List.filter_map
      (fun i -> t.ring.((t.total - n + i) mod t.capacity))
      (List.init n Fun.id)

  let arg_json (v : arg) : string =
    match v with
    | I v -> Int64.to_string v
    | F f -> json_float f
    | S s -> "\"" ^ json_escape s ^ "\""

  let args_json (args : (string * arg) list) : string =
    "{"
    ^ String.concat ", "
        (List.map
           (fun (k, v) -> "\"" ^ json_escape k ^ "\": " ^ arg_json v)
           args)
    ^ "}"

  (** JSON-lines: one event object per line, oldest first. *)
  let to_jsonl (t : t) : string =
    let b = Buffer.create 4096 in
    if dropped t > 0 then
      Buffer.add_string b
        (Printf.sprintf "{\"dropped\": %d}\n" (dropped t));
    List.iter
      (fun e ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"ts\": %Ld, \"dur\": %Ld, \"cat\": \"%s\", \"name\": \"%s\", \
              \"args\": %s}\n"
             e.ev_ts e.ev_dur (json_escape e.ev_cat) (json_escape e.ev_name)
             (args_json e.ev_args)))
      (events t);
    Buffer.contents b

  (** Chrome [trace_event] format (load in chrome://tracing or Perfetto).
      Simulated cycles are presented as microseconds; events with a
      duration become "X" (complete) slices, instants become "i". *)
  let to_chrome (t : t) : string =
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\"traceEvents\": [\n";
    let es = events t in
    List.iteri
      (fun i e ->
        let common =
          Printf.sprintf
            "\"name\": \"%s\", \"cat\": \"%s\", \"pid\": 1, \"tid\": 1, \
             \"ts\": %Ld, \"args\": %s"
            (json_escape e.ev_name) (json_escape e.ev_cat) e.ev_ts
            (args_json e.ev_args)
        in
        let body =
          if e.ev_dur > 0L then
            Printf.sprintf "{\"ph\": \"X\", \"dur\": %Ld, %s}" e.ev_dur common
          else Printf.sprintf "{\"ph\": \"i\", \"s\": \"g\", %s}" common
        in
        Buffer.add_string b
          ("  " ^ body ^ (if i = List.length es - 1 then "" else ",") ^ "\n"))
      es;
    Buffer.add_string b "], \"displayTimeUnit\": \"ns\"}\n";
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* The guest-execution profiler                                         *)
(* ------------------------------------------------------------------ *)

module Profile = struct
  type fn = {
    pf_base : int64;  (** symbol base address (the aggregation key) *)
    pf_name : string;
    mutable pf_blocks : int64;  (** code blocks executed in this fn *)
    mutable pf_cycles : int64;  (** host cycles attributed to this fn *)
    mutable pf_calls : int64;  (** times entered via a call exit *)
    mutable pf_core_cycles : (int * int64) list;
        (** [pf_cycles] split by the simulated core that executed the
            blocks (sorted by core id); a single-core profile keeps the
            whole total under core 0 *)
  }

  type t = {
    fns : (int64, fn) Hashtbl.t;
    edges : (int64 * int64, int64 ref) Hashtbl.t;  (** caller -> callee *)
  }

  let create () : t = { fns = Hashtbl.create 64; edges = Hashtbl.create 64 }

  let touch (t : t) ~(base : int64) ~(name : string) : fn =
    match Hashtbl.find_opt t.fns base with
    | Some f -> f
    | None ->
        let f =
          { pf_base = base; pf_name = name; pf_blocks = 0L; pf_cycles = 0L;
            pf_calls = 0L; pf_core_cycles = [] }
        in
        Hashtbl.replace t.fns base f;
        f

  (** Attribute one executed block and its cycles to the function at
      [base], executed on simulated core [core]. *)
  let block ?(core = 0) (t : t) ~(base : int64) ~(name : string)
      ~(cycles : int64) =
    let f = touch t ~base ~name in
    f.pf_blocks <- Int64.add f.pf_blocks 1L;
    f.pf_cycles <- Int64.add f.pf_cycles cycles;
    f.pf_core_cycles <-
      (match List.assoc_opt core f.pf_core_cycles with
      | Some c ->
          List.sort compare
            ((core, Int64.add c cycles)
            :: List.remove_assoc core f.pf_core_cycles)
      | None -> List.sort compare ((core, cycles) :: f.pf_core_cycles))

  (** Record one call edge (an [ek_call] block exit). *)
  let call (t : t) ~(caller : int64) ~(callee_base : int64)
      ~(callee_name : string) =
    let f = touch t ~base:callee_base ~name:callee_name in
    f.pf_calls <- Int64.add f.pf_calls 1L;
    match Hashtbl.find_opt t.edges (caller, callee_base) with
    | Some r -> r := Int64.add !r 1L
    | None -> Hashtbl.replace t.edges (caller, callee_base) (ref 1L)

  let functions (t : t) : fn list =
    Hashtbl.fold (fun _ f acc -> f :: acc) t.fns []
    |> List.sort (fun a b ->
           match Int64.compare b.pf_cycles a.pf_cycles with
           | 0 -> Int64.compare a.pf_base b.pf_base
           | c -> c)

  let edge_list (t : t) : ((int64 * int64) * int64) list =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.edges []
    |> List.sort (fun ((a1, a2), ca) ((b1, b2), cb) ->
           match Int64.compare cb ca with
           | 0 -> compare (a1, a2) (b1, b2)
           | c -> c)

  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: xs -> x :: take (n - 1) xs

  (** The [--profile] report: a flat top-N by attributed cycles, then the
      top-N caller/callee edges.  [name_of] renders a function base for
      the edge table.  Deterministic: fixed sort orders and formats. *)
  let report ?(top = 20) ~(name_of : int64 -> string) (t : t) : string =
    let b = Buffer.create 1024 in
    let fns = functions t in
    let total =
      List.fold_left (fun a f -> Int64.add a f.pf_cycles) 0L fns
    in
    Buffer.add_string b
      (Printf.sprintf
         "==vgscope== guest profile: %d functions, %Ld attributed cycles\n"
         (List.length fns) total);
    Buffer.add_string b
      (Printf.sprintf "%14s %6s %10s %8s  %s\n" "cycles" "%" "blocks"
         "calls" "function");
    (* per-core attribution column, shown once any cycles landed off
       core 0 (single-core profiles keep the classic layout) *)
    let multicore =
      List.exists
        (fun f -> List.exists (fun (c, _) -> c <> 0) f.pf_core_cycles)
        fns
    in
    List.iter
      (fun f ->
        let pct =
          if total = 0L then 0.0
          else 100.0 *. Int64.to_float f.pf_cycles /. Int64.to_float total
        in
        let cores =
          if not multicore then ""
          else
            Printf.sprintf "  [%s]"
              (String.concat " "
                 (List.map
                    (fun (c, cy) -> Printf.sprintf "c%d:%Ld" c cy)
                    f.pf_core_cycles))
        in
        Buffer.add_string b
          (Printf.sprintf "%14Ld %5.1f%% %10Ld %8Ld  %s%s\n" f.pf_cycles pct
             f.pf_blocks f.pf_calls f.pf_name cores))
      (take top fns);
    let edges = edge_list t in
    Buffer.add_string b
      (Printf.sprintf "==vgscope== call edges: %d distinct\n"
         (List.length edges));
    List.iter
      (fun ((caller, callee), n) ->
        Buffer.add_string b
          (Printf.sprintf "%14Ld  %s -> %s\n" n (name_of caller)
             (name_of callee)))
      (take top edges);
    Buffer.contents b
end
