(** Phases 2 and 4 — IR optimisation.

    Phase 2 ({!opt1}) runs after disassembly and before instrumentation:
    it flattens the tree IR and performs redundant-GET/PUT elimination,
    copy and constant propagation, constant folding, common
    sub-expression elimination and dead-code removal (paper §3.7 phase 2).
    The program-counter PUT emitted for every instruction is removed only
    when no statement that could raise a memory exception (or a dirty
    call that declares it reads the PC) intervenes before the next PC
    write — the precision rule the paper illustrates with statement 5 of
    Figure 1.

    Phase 4 ({!opt2}) runs after instrumentation: constant folding and
    dead code removal only.  "This optimisation makes life easier for
    tools by allowing them to be somewhat simple-minded, knowing that the
    code will be subsequently improved" (§3.7 phase 4 — Figure 2's 48
    statements reduce to 18 here). *)

open Vex_ir.Ir
module GA = Guest.Arch

(* ------------------------------------------------------------------ *)
(* Flattening: tree IR -> flat IR                                      *)
(* ------------------------------------------------------------------ *)

let is_atom = function RdTmp _ | Const _ -> true | _ -> false

let rec flatten_expr (b : block) (out : stmt -> unit) (e : expr) : expr =
  let atom e =
    let e' = flatten_expr b out e in
    if is_atom e' then e'
    else begin
      let t = new_tmp b (type_of b e') in
      out (WrTmp (t, e'));
      RdTmp t
    end
  in
  match e with
  | Get _ | RdTmp _ | Const _ -> e
  | Load (ty, a) -> Load (ty, atom a)
  | Unop (op, a) -> Unop (op, atom a)
  | Binop (op, x, y) ->
      let x = atom x in
      let y = atom y in
      Binop (op, x, y)
  | ITE (c, t, f) ->
      let c = atom c in
      let t = atom t in
      let f = atom f in
      ITE (c, t, f)
  | CCall (callee, ty, args) -> CCall (callee, ty, List.map atom args)

(* Flatten a rhs that is allowed to remain one operator deep. *)
let flatten_rhs b out (e : expr) : expr =
  match e with
  | Get _ | RdTmp _ | Const _ | Load _ | Unop _ | Binop _ | ITE _ | CCall _ ->
      flatten_expr b out e

let flatten (b : block) : block =
  let nb =
    { tyenv = Support.Vec.copy b.tyenv;
      stmts = Support.Vec.create NoOp;
      next = b.next;
      jumpkind = b.jumpkind }
  in
  let out s = add_stmt nb s in
  Support.Vec.iter
    (fun s ->
      match s with
      | NoOp | IMark _ -> out s
      | AbiHint (e, l) ->
          let e' = flatten_expr nb out e in
          let e' = if is_atom e' then e' else begin
            let t = new_tmp nb (type_of nb e') in
            out (WrTmp (t, e')); RdTmp t end
          in
          out (AbiHint (e', l))
      | Put (off, e) ->
          let e' = flatten_expr nb out e in
          let e' =
            if is_atom e' then e'
            else begin
              let t = new_tmp nb (type_of nb e') in
              out (WrTmp (t, e'));
              RdTmp t
            end
          in
          out (Put (off, e'))
      | WrTmp (t, e) -> out (WrTmp (t, flatten_rhs nb out e))
      | Store (a, d) ->
          let fa (e : expr) =
            let e' = flatten_expr nb out e in
            if is_atom e' then e'
            else begin
              let t = new_tmp nb (type_of nb e') in
              out (WrTmp (t, e'));
              RdTmp t
            end
          in
          let a = fa a in
          let d = fa d in
          out (Store (a, d))
      | Dirty d ->
          let fa (e : expr) =
            let e' = flatten_expr nb out e in
            if is_atom e' then e'
            else begin
              let t = new_tmp nb (type_of nb e') in
              out (WrTmp (t, e'));
              RdTmp t
            end
          in
          let guard = fa d.d_guard in
          let args = List.map fa d.d_args in
          let mfx =
            match d.d_mfx with
            | Mfx_none -> Mfx_none
            | Mfx_read (e, n) -> Mfx_read (fa e, n)
            | Mfx_write (e, n) -> Mfx_write (fa e, n)
          in
          out (Dirty { d with d_guard = guard; d_args = args; d_mfx = mfx })
      | Exit (g, jk, dest) ->
          let g' = flatten_expr nb out g in
          let g' =
            if is_atom g' then g'
            else begin
              let t = new_tmp nb I1 in
              out (WrTmp (t, g'));
              RdTmp t
            end
          in
          out (Exit (g', jk, dest)))
    b.stmts;
  (let e' = flatten_expr nb out nb.next in
   nb.next <-
     (if is_atom e' then e'
      else begin
        let t = new_tmp nb (type_of nb e') in
        out (WrTmp (t, e'));
        RdTmp t
      end));
  nb

(* ------------------------------------------------------------------ *)
(* Copy/constant propagation and folding (flat IR)                     *)
(* ------------------------------------------------------------------ *)

(* Fold a pure operator over constant atoms using the reference
   evaluator's semantics; returns None if not foldable (e.g. division by
   zero must trap at run time, not at JIT time). *)
let fold_op (b : block) (e : expr) : expr option =
  let const_of_value ty (v : Vex_ir.Eval.value) : const option =
    match (ty, v) with
    | I1, VI x -> Some (CI1 (x <> 0L))
    | I8, VI x -> Some (CI8 (Int64.to_int x land 0xFF))
    | I16, VI x -> Some (CI16 (Int64.to_int x land 0xFFFF))
    | I32, VI x -> Some (CI32 (Support.Bits.trunc32 x))
    | I64, VI x -> Some (CI64 x)
    | F64, VF f -> Some (CF64 f)
    | _ -> None (* V128 constants are pattern-limited; don't fold *)
  in
  match e with
  | Unop (op, Const c) -> (
      try
        let v = Vex_ir.Eval.eval_unop op (Vex_ir.Eval.const_value c) in
        Option.map (fun c -> Const c) (const_of_value (type_of b e) v)
      with _ -> None)
  | Binop (op, Const x, Const y) -> (
      try
        let v =
          Vex_ir.Eval.eval_binop op (Vex_ir.Eval.const_value x)
            (Vex_ir.Eval.const_value y)
        in
        Option.map (fun c -> Const c) (const_of_value (type_of b e) v)
      with _ -> None)
  | ITE (Const (CI1 true), t, _) -> Some t
  | ITE (Const (CI1 false), _, f) -> Some f
  | ITE (_, t, f) when t = f -> Some t
  (* algebraic identities on atoms *)
  | Binop (Add32, x, Const (CI32 0L)) | Binop (Add32, Const (CI32 0L), x) ->
      Some x
  | Binop (Sub32, x, Const (CI32 0L)) -> Some x
  | Binop ((Or32 | Xor32), x, Const (CI32 0L))
  | Binop ((Or32 | Xor32), Const (CI32 0L), x) ->
      Some x
  | Binop (And32, _, (Const (CI32 0L) as z))
  | Binop (And32, (Const (CI32 0L) as z), _) ->
      Some z
  | Binop (And32, x, Const (CI32 0xFFFFFFFFL))
  | Binop (And32, Const (CI32 0xFFFFFFFFL), x) ->
      Some x
  | Binop (Or32, x, y) when x = y -> Some x
  | Binop (And32, x, y) when x = y -> Some x
  (* self-cancelling: x - x and x ^ x are zero for any x (pure atoms) *)
  | Binop (Sub32, x, y) when x = y -> Some (Const (CI32 0L))
  | Binop (Xor32, x, y) when x = y -> Some (Const (CI32 0L))
  | Binop (Xor64, x, y) when x = y -> Some (Const (CI64 0L))
  | Binop (Sub64, x, y) when x = y -> Some (Const (CI64 0L))
  | Binop ((Shl32 | Shr32 | Sar32), x, Const (CI8 0)) -> Some x
  | Binop (Mul32, x, Const (CI32 1L)) | Binop (Mul32, Const (CI32 1L), x) ->
      Some x
  | Binop ((Add64 | Or64 | Xor64), x, Const (CI64 0L))
  | Binop ((Add64 | Or64 | Xor64), Const (CI64 0L), x) ->
      Some x
  | Binop (And64, x, y) when x = y -> Some x
  | Binop (Or64, x, y) when x = y -> Some x
  | Unop (U1to32, Unop (T32to1, _)) -> None (* not equivalent in general *)
  | _ -> None

(* One forward pass of copy/const propagation + folding. *)
let constprop (b : block) : block =
  let n = Support.Vec.length b.tyenv in
  let env : expr option array = Array.make n None in
  let subst_atom = function
    | RdTmp t as e -> ( match env.(t) with Some a -> a | None -> e)
    | e -> e
  in
  let subst_rhs (e : expr) : expr =
    let e =
      match e with
      | Get _ | Const _ -> e
      | RdTmp _ -> subst_atom e
      | Load (ty, a) -> Load (ty, subst_atom a)
      | Unop (op, a) -> Unop (op, subst_atom a)
      | Binop (op, x, y) -> Binop (op, subst_atom x, subst_atom y)
      | ITE (c, t, f) -> ITE (subst_atom c, subst_atom t, subst_atom f)
      | CCall (callee, ty, args) -> CCall (callee, ty, List.map subst_atom args)
    in
    match fold_op b e with Some e' -> e' | None -> e
  in
  let nb =
    { tyenv = Support.Vec.copy b.tyenv;
      stmts = Support.Vec.create NoOp;
      next = b.next;
      jumpkind = b.jumpkind }
  in
  Support.Vec.iter
    (fun s ->
      match s with
      | NoOp -> ()
      | IMark _ -> add_stmt nb s
      | AbiHint (e, l) -> add_stmt nb (AbiHint (subst_atom e, l))
      | Put (off, e) -> add_stmt nb (Put (off, subst_atom e))
      | WrTmp (t, e) -> (
          let e' = subst_rhs e in
          match e' with
          | Const _ | RdTmp _ ->
              (* pure copy: record and drop the statement *)
              env.(t) <- Some e'
          | _ -> add_stmt nb (WrTmp (t, e')))
      | Store (a, d) -> add_stmt nb (Store (subst_atom a, subst_atom d))
      | Dirty d ->
          add_stmt nb
            (Dirty
               {
                 d with
                 d_guard = subst_atom d.d_guard;
                 d_args = List.map subst_atom d.d_args;
                 d_mfx =
                   (match d.d_mfx with
                   | Mfx_none -> Mfx_none
                   | Mfx_read (e, n) -> Mfx_read (subst_atom e, n)
                   | Mfx_write (e, n) -> Mfx_write (subst_atom e, n));
               })
      | Exit (g, jk, dest) -> (
          match subst_atom g with
          | Const (CI1 false) -> () (* never taken *)
          | g' -> add_stmt nb (Exit (g', jk, dest))))
    b.stmts;
  nb.next <- subst_atom b.next;
  nb

(* ------------------------------------------------------------------ *)
(* Redundant GET elimination and PUT shortcutting (flat IR)            *)
(* ------------------------------------------------------------------ *)

(* Track known guest-state contents as (offset, ty, atom). *)
let redundant_getput (b : block) : block =
  let known : (int * ty * expr) list ref = ref [] in
  let overlaps off1 sz1 off2 sz2 = off1 < off2 + sz2 && off2 < off1 + sz1 in
  let invalidate off sz =
    known :=
      List.filter (fun (o, ty, _) -> not (overlaps o (size_of_ty ty) off sz)) !known
  in
  let invalidate_all () = known := [] in
  let nb =
    { tyenv = Support.Vec.copy b.tyenv;
      stmts = Support.Vec.create NoOp;
      next = b.next;
      jumpkind = b.jumpkind }
  in
  let rewrite_get (e : expr) : expr =
    match e with
    | Get (off, ty) -> (
        match
          List.find_opt (fun (o, t, _) -> o = off && t = ty) !known
        with
        | Some (_, _, atom) -> atom
        | None -> e)
    | e -> e
  in
  Support.Vec.iter
    (fun s ->
      match s with
      | NoOp | IMark _ | AbiHint _ | Exit _ -> add_stmt nb s
      | WrTmp (t, e) ->
          let e' = rewrite_get e in
          add_stmt nb (WrTmp (t, e'));
          (* a GET that survives records the state contents *)
          (match e' with
          | Get (off, ty) -> known := (off, ty, RdTmp t) :: !known
          | _ -> ())
      | Put (off, atom) ->
          let sz = size_of_ty (type_of nb atom) in
          (* put of the very value already known to be there: drop *)
          let same =
            List.exists
              (fun (o, ty, a) -> o = off && size_of_ty ty = sz && a = atom)
              !known
          in
          if not same then begin
            invalidate off sz;
            known := (off, type_of nb atom, atom) :: !known;
            add_stmt nb (Put (off, atom))
          end
      | Store _ -> add_stmt nb s
      | Dirty d ->
          (* helper may write the guest state it declares; invalidate *)
          List.iter (fun (o, s) -> invalidate o s) d.d_callee.c_fx_writes;
          if d.d_callee.c_fx_writes = [] && d.d_callee.c_fx_reads = [] then
            (* unannotated helper: be conservative *)
            invalidate_all ();
          add_stmt nb (Dirty d))
    b.stmts;
  nb.next <- rewrite_get b.next;
  nb

(* ------------------------------------------------------------------ *)
(* Common sub-expression elimination (flat IR)                         *)
(* ------------------------------------------------------------------ *)

let cse (b : block) : block =
  let table : (expr, tmp) Hashtbl.t = Hashtbl.create 64 in
  let replace : expr option array = Array.make (Support.Vec.length b.tyenv) None in
  let subst = function
    | RdTmp t as e -> ( match replace.(t) with Some a -> a | None -> e)
    | e -> e
  in
  let nb =
    { tyenv = Support.Vec.copy b.tyenv;
      stmts = Support.Vec.create NoOp;
      next = b.next;
      jumpkind = b.jumpkind }
  in
  Support.Vec.iter
    (fun s ->
      match s with
      | WrTmp (t, e) -> (
          let e =
            match e with
            | Unop (op, a) -> Unop (op, subst a)
            | Binop (op, x, y) -> Binop (op, subst x, subst y)
            | ITE (c, x, y) -> ITE (subst c, subst x, subst y)
            | CCall (callee, ty, args) -> CCall (callee, ty, List.map subst args)
            | Load (ty, a) -> Load (ty, subst a)
            | e -> e
          in
          match e with
          | Unop _ | Binop _ | ITE _ ->
              (* pure value ops are CSE-able *)
              (match Hashtbl.find_opt table e with
              | Some t0 -> replace.(t) <- Some (RdTmp t0)
              | None ->
                  Hashtbl.replace table e t;
                  add_stmt nb (WrTmp (t, e)))
          | _ -> add_stmt nb (WrTmp (t, e)))
      | Put (off, a) -> add_stmt nb (Put (off, subst a))
      | Store (x, y) -> add_stmt nb (Store (subst x, subst y))
      | AbiHint (e, l) -> add_stmt nb (AbiHint (subst e, l))
      | Exit (g, jk, d) -> add_stmt nb (Exit (subst g, jk, d))
      | Dirty d ->
          add_stmt nb
            (Dirty
               {
                 d with
                 d_guard = subst d.d_guard;
                 d_args = List.map subst d.d_args;
                 d_mfx =
                   (match d.d_mfx with
                   | Mfx_none -> Mfx_none
                   | Mfx_read (e, n) -> Mfx_read (subst e, n)
                   | Mfx_write (e, n) -> Mfx_write (subst e, n));
               })
      | s -> add_stmt nb s)
    b.stmts;
  nb.next <- subst b.next;
  nb

(* ------------------------------------------------------------------ *)
(* Dead code removal (flat IR, backward)                               *)
(* ------------------------------------------------------------------ *)

(* Statements that can raise a guest-visible exception, for the
   precise-exceptions rule. *)
let can_fault = function
  | Store _ -> true
  | WrTmp (_, Load _) -> true
  | WrTmp (_, Binop ((DivS32 | DivU32), _, _)) -> true
  | Dirty _ -> true
  | _ -> false

(* Guest-state offsets requiring precise memory exceptions: a PUT to one
   of these may not be removed across a potentially-faulting statement
   (VEX's guest_state_requires_precise_mem_exns; for x86 it is
   ESP/EBP/EIP, for VG32 sp/fp/eip).  This is also what keeps every
   stack-pointer write visible to the core's stack-event pass. *)
let precise_offsets = [ GA.off_eip; GA.off_sp; GA.off_reg GA.reg_fp ]

let dead (b : block) : block =
  let n = Support.Vec.length b.tyenv in
  let live = Array.make n false in
  let mark e =
    let rec go = function
      | RdTmp t -> live.(t) <- true
      | Get _ | Const _ -> ()
      | Load (_, a) -> go a
      | Unop (_, a) -> go a
      | Binop (_, x, y) ->
          go x;
          go y
      | ITE (c, t, f) ->
          go c;
          go t;
          go f
      | CCall (_, _, args) -> List.iter go args
    in
    go e
  in
  let stmts = Array.of_list (stmts b) in
  let keep = Array.make (Array.length stmts) false in
  mark b.next;
  (* Track, walking backwards: has the PC been overwritten (with no
     intervening faulting statement) — and similarly per guest offset
     whether a full overwrite follows before any observation. *)
  let module IMap = Map.Make (Int) in
  (* overwritten.(off) = Some size: a PUT of [size] bytes at [off] follows
     with no observation in between *)
  let overwritten : int IMap.t ref = ref IMap.empty in
  let observe_all () = overwritten := IMap.empty in
  let observe_range off sz =
    overwritten :=
      IMap.filter
        (fun o s -> not (o < off + sz && off < o + s))
        !overwritten
  in
  for i = Array.length stmts - 1 downto 0 do
    let s = stmts.(i) in
    let needed =
      match s with
      | NoOp -> false
      | IMark _ -> true
      | AbiHint _ -> true
      | Put (off, e) ->
          let sz = size_of_ty (type_of b e) in
          let covered =
            match IMap.find_opt off !overwritten with
            | Some s2 -> s2 >= sz
            | None -> false
          in
          not covered
      | WrTmp (t, e) -> (
          live.(t)
          ||
          match e with
          | Binop ((DivS32 | DivU32), _, _) -> true (* may trap *)
          | Load _ -> true
              (* a load whose value is dead still faults on an unmapped
                 address: dropping it would swallow the client's SIGSEGV
                 (found by vgfuzz: ldw into a register that is
                 overwritten later in the same superblock) *)
          | _ -> false)
      | Store _ -> true
      | Dirty _ -> true
      | Exit _ -> true
    in
    keep.(i) <- needed;
    (* update overwrite/observation state *)
    (match s with
    | Put (off, e) when needed ->
        let sz = size_of_ty (type_of b e) in
        overwritten := IMap.add off sz !overwritten
    | Put _ -> ()
    | Exit _ -> observe_all ()
    | Dirty d ->
        (* helper observes what it declares it reads, plus everything if
           unannotated *)
        if d.d_callee.c_fx_reads = [] && d.d_callee.c_fx_writes = [] then
          observe_all ()
        else begin
          List.iter (fun (o, s) -> observe_range o s) d.d_callee.c_fx_reads;
          (* and its declared writes stop earlier overwrite tracking *)
          List.iter (fun (o, s) -> observe_range o s) d.d_callee.c_fx_writes
        end;
        (* dirty calls can fault / report errors: precise state needed *)
        List.iter (fun o -> observe_range o 4) precise_offsets
    | WrTmp (_, Get (off, ty)) -> observe_range off (size_of_ty ty)
    | _ -> ());
    if can_fault s then List.iter (fun o -> observe_range o 4) precise_offsets;
    (* mark uses *)
    if needed then
      match s with
      | Put (_, e) | WrTmp (_, e) | AbiHint (e, _) -> mark e
      | Store (a, d) ->
          mark a;
          mark d
      | Exit (g, _, _) -> mark g
      | Dirty d ->
          mark d.d_guard;
          List.iter mark d.d_args;
          (match d.d_mfx with
          | Mfx_none -> ()
          | Mfx_read (e, _) | Mfx_write (e, _) -> mark e)
      | _ -> ()
  done;
  let nb =
    { tyenv = Support.Vec.copy b.tyenv;
      stmts = Support.Vec.create NoOp;
      next = b.next;
      jumpkind = b.jumpkind }
  in
  Array.iteri (fun i s -> if keep.(i) then add_stmt nb s) stmts;
  nb

(* Iterate dead removal until it stops helping (liveness is computed in a
   single backward pass, so chains of dead temps need iteration). *)
let rec dead_fix ?(rounds = 4) b =
  let b' = dead b in
  if rounds <= 1 || Support.Vec.length b'.stmts = Support.Vec.length b.stmts
  then b'
  else dead_fix ~rounds:(rounds - 1) b'

(* ------------------------------------------------------------------ *)
(* Simple intra-block loop unrolling (flat IR)                         *)
(* ------------------------------------------------------------------ *)

(* "and even simple loop unrolling for intra-block loops" (§3.7 phase 2):
   when a block's fall-through successor is its own first instruction (a
   self-loop, e.g. a one-block spin or copy loop), append a second copy
   of the body with freshly renamed temporaries.  Side exits are
   duplicated too, so semantics are exactly "two iterations per
   dispatch"; the win is halving the dispatcher transfers on hot tight
   loops. *)
let unroll_limit_stmts = 60

let first_imark (b : block) : int64 option =
  let r = ref None in
  Support.Vec.iter
    (fun s ->
      match (s, !r) with IMark (a, _), None -> r := Some a | _ -> ())
    b.stmts;
  !r

(* append a temp-renamed copy of [b]'s statements to [nb]; statements are
   transformed through [tweak] first (identity by default) *)
let append_renamed_copy (nb : block) (b : block) =
  let rename = Hashtbl.create 32 in
  let rn t =
    match Hashtbl.find_opt rename t with
    | Some t' -> t'
    | None ->
        let t' = new_tmp nb (tmp_ty b t) in
        Hashtbl.replace rename t t';
        t'
  in
  let rec rx (e : expr) : expr =
    match e with
    | RdTmp t -> RdTmp (rn t)
    | Get _ | Const _ -> e
    | Load (ty, a) -> Load (ty, rx a)
    | Unop (op, a) -> Unop (op, rx a)
    | Binop (op, x, y) -> Binop (op, rx x, rx y)
    | ITE (c, t, f) -> ITE (rx c, rx t, rx f)
    | CCall (callee, ty, args) -> CCall (callee, ty, List.map rx args)
  in
  Support.Vec.iter
    (fun s ->
      add_stmt nb
        (match s with
        | NoOp | IMark _ -> s
        | AbiHint (e, l) -> AbiHint (rx e, l)
        | Put (off, e) -> Put (off, rx e)
        | WrTmp (t, e) -> WrTmp (rn t, rx e)
        | Store (a, d) -> Store (rx a, rx d)
        | Dirty d ->
            Dirty
              {
                d with
                d_guard = rx d.d_guard;
                d_args = List.map rx d.d_args;
                d_tmp = Option.map rn d.d_tmp;
                d_mfx =
                  (match d.d_mfx with
                  | Mfx_none -> Mfx_none
                  | Mfx_read (e, n) -> Mfx_read (rx e, n)
                  | Mfx_write (e, n) -> Mfx_write (rx e, n));
              }
        | Exit (g, jk, dst) -> Exit (rx g, jk, dst)))
    b.stmts

(* the final statement, if any *)
let last_stmt (b : block) : stmt option =
  let n = Support.Vec.length b.stmts in
  if n = 0 then None else Some (Support.Vec.get b.stmts (n - 1))

let unroll_self_loop (b : block) : block =
  if Support.Vec.length b.stmts > unroll_limit_stmts then b
  else
    match first_imark b with
    | None -> b
    | Some start -> (
        let fresh () =
          { tyenv = Support.Vec.copy b.tyenv;
            stmts = Support.Vec.create NoOp;
            next = b.next;
            jumpkind = b.jumpkind }
        in
        match (b.next, b.jumpkind, last_stmt b) with
        (* shape 1: ...; goto start  (unconditional backedge) *)
        | Const (CI32 dest), Jk_boring, _ when dest = start ->
            let nb = fresh () in
            Support.Vec.iter (add_stmt nb) b.stmts;
            append_renamed_copy nb b;
            nb
        (* shape 2: ...; if (g) goto start; goto after  (the common
           conditional-backedge loop, e.g. dec+jne) *)
        | Const (CI32 _after), Jk_boring, Some (Exit (g, Jk_boring, dest))
          when dest = start ->
            let nb = fresh () in
            (* copy 1 with the final backedge inverted into a loop-exit *)
            let n = Support.Vec.length b.stmts in
            Support.Vec.iteri
              (fun i s -> if i < n - 1 then add_stmt nb s)
              b.stmts;
            let tng = new_tmp nb I1 in
            add_stmt nb (WrTmp (tng, Unop (Not1, g)));
            (match b.next with
            | Const (CI32 after) ->
                add_stmt nb (Exit (RdTmp tng, Jk_boring, after))
            | _ -> assert false);
            (* copy 2 verbatim (renamed), keeping its backedge *)
            append_renamed_copy nb b;
            nb
        | _ -> b)

(** Phase 2: tree IR -> optimised flat IR.  [unroll] enables the simple
    self-loop unrolling (on by default, as in VEX). *)
let opt1 ?(unroll = true) (b : block) : block =
  let b =
    b |> flatten |> constprop |> redundant_getput |> constprop |> cse
    |> constprop |> dead_fix
  in
  if unroll then
    let b' = unroll_self_loop b in
    if b' != b then
      (* re-run the cheap passes over the doubled body *)
      b' |> constprop |> redundant_getput |> constprop |> dead_fix
    else b
  else b

(** Phase 4: flat IR -> flat IR (folding + dead code only). *)
let opt2 (b : block) : block = b |> constprop |> cse |> constprop |> dead_fix
