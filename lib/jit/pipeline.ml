(** The complete eight-phase translation pipeline (paper §3.7).

    {v
    1. Disassembly*         machine code   -> tree IR     (core)
    2. Optimisation 1       tree IR        -> flat IR     (core)
    3. Instrumentation      flat IR        -> flat IR     (tool)
    4. Optimisation 2       flat IR        -> flat IR     (core)
    5. Tree building        flat IR        -> tree IR     (core)
    6. Instruction selection* tree IR      -> vreg insns  (core)
    7. Register allocation  vreg insns     -> host insns  (core)
    8. Assembly*            host insns     -> machine code(core)
    v}

    Phases marked * are architecture-specific.  The instrumentation
    callback is supplied by the tool plug-in (via the core); everything
    else is the core's. *)

type instrument = Vex_ir.Ir.block -> Vex_ir.Ir.block

(** Optional phase-boundary verification hooks (VEX's [sanityCheckIRSB],
    generalised to every representation).  The pipeline itself always
    runs the cheap flatness/typing checks; a [checks] record — normally
    built by [Verify.pipeline_checks] — adds the heavyweight verifiers:
    SSA and def-before-use discipline, effect-skeleton preservation,
    vcode and regalloc dataflow checks, and the assemble→decode
    round-trip.  Hooks signal problems by raising; the pipeline calls
    them at the boundary named by the field and does not catch. *)
type checks = {
  ck_tree : Vex_ir.Ir.block -> unit;  (** after phase 1 (disassembly) *)
  ck_flat : Vex_ir.Ir.block -> unit;  (** after phase 2 (opt1) *)
  ck_instrumented : pre:Vex_ir.Ir.block -> post:Vex_ir.Ir.block -> unit;
      (** after phase 3; [pre] is the uninstrumented block *)
  ck_opt2 : pre:Vex_ir.Ir.block -> post:Vex_ir.Ir.block -> unit;
      (** after phase 4 *)
  ck_treebuilt : pre:Vex_ir.Ir.block -> post:Vex_ir.Ir.block -> unit;
      (** after phase 5 *)
  ck_vcode :
    Isel.vinsn list -> n_int:int -> n_vec:int -> n_label:int -> unit;
      (** after phase 6 *)
  ck_hcode : Host.Arch.insn list -> unit;  (** after phase 7 *)
  ck_bytes : hcode:Host.Arch.insn list -> bytes:Bytes.t -> unit;
      (** after phase 8 *)
}

(** The trivial hooks: every boundary check is a no-op. *)
let no_checks : checks =
  {
    ck_tree = (fun _ -> ());
    ck_flat = (fun _ -> ());
    ck_instrumented = (fun ~pre:_ ~post:_ -> ());
    ck_opt2 = (fun ~pre:_ ~post:_ -> ());
    ck_treebuilt = (fun ~pre:_ ~post:_ -> ());
    ck_vcode = (fun _ ~n_int:_ ~n_vec:_ ~n_label:_ -> ());
    ck_hcode = (fun _ -> ());
    ck_bytes = (fun ~hcode:_ ~bytes:_ -> ());
  }

(** Run [a]'s hook then [b]'s at every boundary (e.g. the verifiers
    composed with a fault injector's forced failures). *)
let compose_checks (a : checks) (b : checks) : checks =
  {
    ck_tree = (fun x -> a.ck_tree x; b.ck_tree x);
    ck_flat = (fun x -> a.ck_flat x; b.ck_flat x);
    ck_instrumented =
      (fun ~pre ~post ->
        a.ck_instrumented ~pre ~post;
        b.ck_instrumented ~pre ~post);
    ck_opt2 =
      (fun ~pre ~post ->
        a.ck_opt2 ~pre ~post;
        b.ck_opt2 ~pre ~post);
    ck_treebuilt =
      (fun ~pre ~post ->
        a.ck_treebuilt ~pre ~post;
        b.ck_treebuilt ~pre ~post);
    ck_vcode =
      (fun v ~n_int ~n_vec ~n_label ->
        a.ck_vcode v ~n_int ~n_vec ~n_label;
        b.ck_vcode v ~n_int ~n_vec ~n_label);
    ck_hcode = (fun h -> a.ck_hcode h; b.ck_hcode h);
    ck_bytes =
      (fun ~hcode ~bytes ->
        a.ck_bytes ~hcode ~bytes;
        b.ck_bytes ~hcode ~bytes);
  }

(** Which pipeline produced a translation (tiered JIT).

    - [Tier_quick]: the cheap tier-0 quick-translate for cold blocks.
      The shared front end (disassembly, opt1, instrumentation) runs
      unchanged — so the tool instruments exactly the IR it would see in
      the optimizing tier and the event stream is bit-identical — but
      phases 4 and 5 are skipped (identity transforms) and the back end
      template-emits host code straight from the flat instrumented IR.
    - [Tier_full]: the eight-phase optimizing pipeline.
    - [Tier_super]: a trace superblock — several chained-hot guest
      blocks stitched into one region and run through the full pipeline,
      so the optimizer and the instrumenters see across the original
      block boundaries. *)
type tier = Tier_quick | Tier_full | Tier_super

let tier_name = function
  | Tier_quick -> "tier0"
  | Tier_full -> "full"
  | Tier_super -> "super"

(** A finished translation. *)
type translation = {
  t_guest_addr : int64;  (** guest address this was translated from *)
  t_code : Bytes.t;  (** assembled host machine code *)
  t_decoded : Host.Arch.insn array;  (** decoded-once cache of [t_code] *)
  t_guest_insns : int;  (** guest instructions covered *)
  t_guest_bytes : int;  (** guest bytes covered *)
  t_guest_ranges : (int64 * int) list;  (** covered [addr,len) ranges *)
  t_smc_check : bool;  (** prepend a self-hash check when executing *)
  t_code_hash : int64;  (** hash of the original guest bytes (for SMC) *)
  t_ir_stmts_pre : int;  (** flat statements before instrumentation *)
  t_ir_stmts_post : int;  (** after instrumentation + opt2 *)
  t_exits : chain_slot array;  (** chainable (constant-target) exit sites *)
  t_exit_index : chain_slot option array;
      (** [t_exits] indexed by [cs_index]: entry [i] is the chain slot
          whose exit instruction is [t_decoded.(i)], if any.  Shares the
          slot records with [t_exits], so patching through either view is
          seen by both. *)
  t_phase_cycles : int array;
      (** JIT cycles attributed to each of the eight phases under the
          VH64 cost model; {!translation_cost} is their sum *)
  t_tier : tier;  (** which pipeline produced this translation *)
  t_constituents : int64 list;
      (** guest start addresses of the blocks this translation covers:
          [[t_guest_addr]] for ordinary translations, the stitched path
          (head first) for superblocks *)
  mutable t_hotness : int64;
      (** executions of this translation (bumped by the session) *)
  mutable t_no_promote : bool;
      (** set when a promotion attempt failed (e.g. under fault
          injection) so the session does not retry every execution *)
  mutable t_dead : bool;
      (** retired: removed from the translation table but possibly still
          referenced by a core's fast-lookup cache or last-exit record.
          Readers must treat a dead translation as a miss; the retire
          list frees it at the next scheduler epoch boundary. *)
  mutable t_epoch : int;
      (** translation-table epoch this translation was published in
          (stamped by [Transtab.insert]); retirement is deferred until
          the epoch has advanced past every possible reader *)
  mutable t_core : int;
      (** simulated core that requested this translation (ownership tag
          for per-core JIT attribution; stamped by the session) *)
}

(** A chainable exit site: a host exit instruction whose guest target is
    a compile-time constant.  The paper's Valgrind deliberately returns
    to the dispatcher on every such exit (§3.9); with chaining enabled
    the core patches [cs_next] so control transfers straight to the
    successor translation.  The slot is the unit the translation table's
    reverse chain index tracks — when the successor is evicted or
    discarded, every slot pointing at it is unlinked (set back to
    [None]) so no stale jump survives. *)
and chain_slot = {
  cs_index : int;  (** index of the exit insn in [t_decoded] *)
  cs_target : int64;  (** the constant guest destination *)
  cs_kind : Host.Arch.exit_kind;
  mutable cs_next : translation option;  (** patched successor, if any *)
  mutable cs_hot : int64;
      (** chained transfers taken through this slot; drives trace
          superblock formation *)
}

let n_phases = 8

(** Phase names, indexed by phase number - 1; used for metric names,
    trace events and reports, so keep them short and stable. *)
let phase_names =
  [|
    "disassembly"; "opt1"; "instrument"; "opt2"; "treebuild"; "isel";
    "regalloc"; "assembly";
  |]

(** Cycle cost charged for making one translation (the JIT itself runs
    on the host CPU; D&R "will probably translate code more slowly" —
    this surfaces in total cycle counts for short runs).  The total is
    the sum of the per-phase attribution computed by
    [translate_phases], so per-phase cycles always add up exactly to
    the JIT cycles the session charges. *)
let translation_cost (t : translation) =
  Array.fold_left ( + ) 0 t.t_phase_cycles

(* Exit kinds eligible for chaining: plain transfers.  Syscalls, client
   requests, yields and faults must return to the core between blocks. *)
let chainable_ek (ek : Host.Arch.exit_kind) =
  ek = Host.Arch.ek_boring || ek = Host.Arch.ek_call || ek = Host.Arch.ek_ret

(** Scan decoded host code for chainable exit sites (constant-target
    exits of plain jump kinds). *)
let chain_slots_of (code : Host.Arch.insn array) : chain_slot array =
  let slots = ref [] in
  Array.iteri
    (fun i insn ->
      match insn with
      | Host.Arch.ExitIf (_, ek, dest) when chainable_ek ek ->
          slots :=
            {
              cs_index = i;
              cs_target = dest;
              cs_kind = ek;
              cs_next = None;
              cs_hot = 0L;
            }
            :: !slots
      | Host.Arch.GotoI (ek, dest) when chainable_ek ek ->
          slots :=
            {
              cs_index = i;
              cs_target = dest;
              cs_kind = ek;
              cs_next = None;
              cs_hot = 0L;
            }
            :: !slots
      | _ -> ())
    code;
  Array.of_list (List.rev !slots)

(** Dense index of [slots] keyed by [cs_index], for O(1) lookup from the
    instruction index the executor reports. *)
let exit_index_of (decoded : Host.Arch.insn array) (slots : chain_slot array)
    : chain_slot option array =
  let n =
    Array.fold_left
      (fun n s -> max n (s.cs_index + 1))
      (Array.length decoded) slots
  in
  let index = Array.make n None in
  Array.iter (fun s -> index.(s.cs_index) <- Some s) slots;
  index

(** Reference O(n) lookup over [t_exits]; kept as the specification the
    indexed {!find_chain_slot} is tested against. *)
let find_chain_slot_scan (t : translation) (idx : int) : chain_slot option =
  let n = Array.length t.t_exits in
  let rec go i =
    if i >= n then None
    else if t.t_exits.(i).cs_index = idx then Some t.t_exits.(i)
    else go (i + 1)
  in
  go 0

(** The chain slot whose exit instruction sits at [idx] in [t_decoded]
    (the index {!Host.Interp.run} reports), if that exit is chainable.
    O(1): a direct lookup in [t_exit_index]. *)
let find_chain_slot (t : translation) (idx : int) : chain_slot option =
  if idx < 0 || idx >= Array.length t.t_exit_index then None
  else t.t_exit_index.(idx)

(** Deep-copy a graph of translations for snapshot/restore: fresh
    chain-slot records (so later patching of the copy never touches the
    original, and vice versa) with [cs_next] cross-references remapped
    through [memo] so shared targets stay shared.  The memo is keyed by
    physical identity — chained translations can form cycles, so
    structural comparison would not terminate.  Immutable payloads
    ([t_code], [t_decoded], [t_phase_cycles], ...) are shared. *)
let rec copy_translation (memo : (translation * translation) list ref)
    (t : translation) : translation =
  match List.assq t !memo with
  | copy -> copy
  | exception Not_found ->
      let slots = Array.map (fun s -> { s with cs_next = None }) t.t_exits in
      let copy =
        { t with t_exits = slots; t_exit_index = exit_index_of t.t_decoded slots }
      in
      memo := (t, copy) :: !memo;
      Array.iteri
        (fun i orig ->
          match orig.cs_next with
          | Some dst -> slots.(i).cs_next <- Some (copy_translation memo dst)
          | None -> ())
        t.t_exits;
      copy

(* FNV-1a over the guest bytes a translation was made from.  Unfetchable
   bytes (a block ending in undecodable unmapped memory) hash as zero. *)
let hash_guest_bytes (fetch : int64 -> int) (ranges : (int64 * int) list) :
    int64 =
  let h = ref 0xCBF29CE484222325L in
  List.iter
    (fun (addr, len) ->
      for i = 0 to len - 1 do
        let b =
          try fetch (Int64.add addr (Int64.of_int i)) with Aspace.Fault _ -> 0
        in
        h := Int64.mul (Int64.logxor !h (Int64.of_int b)) 0x100000001B3L
      done)
    ranges;
  !h

(** Extract the guest address ranges covered by a block's IMarks. *)
let imark_ranges (b : Vex_ir.Ir.block) : (int64 * int) list =
  let ranges = ref [] in
  Support.Vec.iter
    (fun s ->
      match s with
      | Vex_ir.Ir.IMark (a, l) -> ranges := (a, l) :: !ranges
      | _ -> ())
    b.stmts;
  List.rev !ranges

exception Translation_failure of string

(** Intermediate results of each phase, for inspection/printing (the
    bench harness regenerates the paper's Figures 1–3 from these). *)
type phases = {
  p_tree : Vex_ir.Ir.block;  (** after phase 1 *)
  p_flat : Vex_ir.Ir.block;  (** after phase 2 *)
  p_instrumented : Vex_ir.Ir.block;  (** after phase 3 *)
  p_opt2 : Vex_ir.Ir.block;  (** after phase 4 *)
  p_treebuilt : Vex_ir.Ir.block;  (** after phase 5 *)
  p_vcode : Isel.vinsn list;  (** after phase 6 *)
  p_n_int : int;  (** int vreg count declared by isel *)
  p_n_vec : int;  (** vec vreg count declared by isel *)
  p_n_label : int;  (** label count declared by isel *)
  p_hcode : Host.Arch.insn list;  (** after phase 7 *)
  p_bytes : Bytes.t;  (** after phase 8 *)
}

(* The VH64 JIT cost model: each phase's cycles are proportional to the
   size of the representation it consumes and produces (all sizes are
   deterministic functions of the guest code and the tool, so JIT cycle
   accounting replays bit-identically).  The per-insn/per-stmt weights
   are in rough ratio to the phases' costs in VEX: the optimiser passes
   and register allocation dominate. *)
let phase_cycle_model ~(guest_insns : int) ~(guest_bytes : int)
    ~(tree_stmts : int) ~(flat_stmts : int) ~(instr_stmts : int)
    ~(opt2_stmts : int) ~(treebuilt_stmts : int) ~(vcode_len : int)
    ~(hcode_len : int) ~(code_bytes : int) : int array =
  [|
    (14 * guest_insns) + (2 * guest_bytes);  (* 1: disassembly *)
    6 * (tree_stmts + flat_stmts);  (* 2: optimisation 1 *)
    4 * instr_stmts;  (* 3: instrumentation plumbing *)
    7 * (instr_stmts + opt2_stmts);  (* 4: optimisation 2 *)
    3 * (opt2_stmts + treebuilt_stmts);  (* 5: tree building *)
    9 * vcode_len;  (* 6: instruction selection *)
    11 * hcode_len;  (* 7: register allocation *)
    2 * code_bytes;  (* 8: assembly *)
  |]

(* The tier-0 cost model: only decode, instrumentation hooks and
   assembly are paid (the copy-and-annotate economics of lib/caa).
   Phase 2 is charged as a single flattening walk over the tree — the
   quick tier still *runs* the full opt1 so the tool instruments
   exactly the IR the optimizing tier would hand it (event-stream
   parity across promotion), but a real quick tier would only flatten,
   and the deterministic cost model prices that.  Phases 4 and 5 are
   identity transforms and cost nothing; the back end is a template
   emitter — no tree matching over rebuilt expressions, no
   coalescing-quality allocation — charged far below the optimizing
   weights.  Quick code is longer, so the bigger vcode/hcode/byte
   counts claw some of that back honestly. *)
let quick_phase_cycle_model ~(guest_insns : int) ~(guest_bytes : int)
    ~(tree_stmts : int) ~(flat_stmts : int) ~(instr_stmts : int)
    ~(vcode_len : int) ~(hcode_len : int) ~(code_bytes : int) : int array =
  ignore flat_stmts;
  [|
    (14 * guest_insns) + (2 * guest_bytes);  (* 1: disassembly *)
    2 * tree_stmts;  (* 2: flattening walk only *)
    4 * instr_stmts;  (* 3: instrumentation plumbing *)
    0;  (* 4: optimisation 2 skipped *)
    0;  (* 5: tree building skipped *)
    vcode_len;  (* 6: template instruction selection *)
    hcode_len;  (* 7: single-pass linear-scan allocation *)
    2 * code_bytes;  (* 8: assembly *)
  |]

(** Run the pipeline over an already-disassembled [tree], returning
    every intermediate result.  This is the shared body of
    {!translate_phases} (which disassembles one guest block) and the
    superblock path (which stitches several).  [tier] selects the
    pipeline: [Tier_quick] keeps the front end (so the tool instruments
    exactly the IR the optimizing tier would hand it) but makes phases 4
    and 5 identity transforms — every boundary check still fires, with
    [pre == post] at the skipped phases, so verification and fault
    injection cover the quick tier with no special cases. *)
let translate_tree ?(unroll = true) ?(checks : checks option)
    ?(tier = Tier_full) ?(constituents : int64 list option)
    ~(fetch : int64 -> int) ~(instrument : instrument)
    ((tree, stats) : Vex_ir.Ir.block * Disasm.stats) (guest_addr : int64) :
    phases * translation =
  let ck f = match checks with None -> () | Some c -> f c in
  ck (fun c -> c.ck_tree tree);
  (* 2: optimisation 1 *)
  let flat = Opt.opt1 ~unroll tree in
  let pre_stmts = Support.Vec.length flat.stmts in
  (try Vex_ir.Typecheck.check_flat flat
   with Vex_ir.Typecheck.Ill_typed m ->
     raise (Translation_failure ("phase 2 output ill-typed: " ^ m)));
  ck (fun c -> c.ck_flat flat);
  (* 3: instrumentation (tool) *)
  let instrumented = instrument (Vex_ir.Ir.copy_block flat) in
  (try Vex_ir.Typecheck.check_flat instrumented
   with Vex_ir.Typecheck.Ill_typed m ->
     raise (Translation_failure ("instrumented IR ill-typed: " ^ m)));
  ck (fun c -> c.ck_instrumented ~pre:flat ~post:instrumented);
  (* 4: optimisation 2; 5: tree building — identity in the quick tier *)
  let opt2, treebuilt =
    match tier with
    | Tier_quick ->
        ck (fun c -> c.ck_opt2 ~pre:instrumented ~post:instrumented);
        ck (fun c -> c.ck_treebuilt ~pre:instrumented ~post:instrumented);
        (instrumented, instrumented)
    | Tier_full | Tier_super ->
        let opt2 = Opt.opt2 instrumented in
        (try Vex_ir.Typecheck.check_flat opt2
         with Vex_ir.Typecheck.Ill_typed m ->
           raise (Translation_failure ("phase 4 output ill-typed: " ^ m)));
        ck (fun c -> c.ck_opt2 ~pre:instrumented ~post:opt2);
        let treebuilt = Treebuild.build opt2 in
        ck (fun c -> c.ck_treebuilt ~pre:opt2 ~post:treebuilt);
        (opt2, treebuilt)
  in
  let post_stmts = Support.Vec.length opt2.stmts in
  (* 6: instruction selection *)
  let vcode, n_int, n_vec, n_label =
    try Isel.select treebuilt
    with Isel.Unrepresentable m ->
      raise (Translation_failure ("instruction selection failed: " ^ m))
  in
  ck (fun c -> c.ck_vcode vcode ~n_int ~n_vec ~n_label);
  (* 7: register allocation *)
  let next_label = ref n_label in
  let hcode =
    try Regalloc.run vcode ~n_int ~n_vec ~next_label
    with Regalloc.Out_of_spill_slots ->
      raise
        (Translation_failure "register allocation failed: out of spill slots")
  in
  ck (fun c -> c.ck_hcode hcode);
  (* 8: assembly *)
  let bytes = Host.Encode.assemble hcode in
  ck (fun c -> c.ck_bytes ~hcode ~bytes);
  let ranges = imark_ranges tree in
  let decoded = Host.Encode.decode bytes in
  let exits = chain_slots_of decoded in
  let phase_cycles =
    match tier with
    | Tier_quick ->
        quick_phase_cycle_model ~guest_insns:stats.guest_insns
          ~guest_bytes:stats.guest_bytes
          ~tree_stmts:(Support.Vec.length tree.stmts)
          ~flat_stmts:pre_stmts
          ~instr_stmts:(Support.Vec.length instrumented.stmts)
          ~vcode_len:(List.length vcode) ~hcode_len:(List.length hcode)
          ~code_bytes:(Bytes.length bytes)
    | Tier_full | Tier_super ->
        phase_cycle_model ~guest_insns:stats.guest_insns
          ~guest_bytes:stats.guest_bytes
          ~tree_stmts:(Support.Vec.length tree.stmts)
          ~flat_stmts:pre_stmts
          ~instr_stmts:(Support.Vec.length instrumented.stmts)
          ~opt2_stmts:post_stmts
          ~treebuilt_stmts:(Support.Vec.length treebuilt.stmts)
          ~vcode_len:(List.length vcode) ~hcode_len:(List.length hcode)
          ~code_bytes:(Bytes.length bytes)
  in
  let t =
    {
      t_guest_addr = guest_addr;
      t_code = bytes;
      t_decoded = decoded;
      t_guest_insns = stats.guest_insns;
      t_guest_bytes = stats.guest_bytes;
      t_guest_ranges = ranges;
      t_smc_check = false;
      t_code_hash = hash_guest_bytes fetch ranges;
      t_ir_stmts_pre = pre_stmts;
      t_ir_stmts_post = post_stmts;
      t_exits = exits;
      t_exit_index = exit_index_of decoded exits;
      t_phase_cycles = phase_cycles;
      t_tier = tier;
      t_constituents =
        (match constituents with Some cs -> cs | None -> [ guest_addr ]);
      t_hotness = 0L;
      t_no_promote = false;
      t_dead = false;
      t_epoch = 0;
      t_core = 0;
    }
  in
  ( {
      p_tree = tree;
      p_flat = flat;
      p_instrumented = instrumented;
      p_opt2 = opt2;
      p_treebuilt = treebuilt;
      p_vcode = vcode;
      p_n_int = n_int;
      p_n_vec = n_vec;
      p_n_label = n_label;
      p_hcode = hcode;
      p_bytes = bytes;
    },
    t )

(** Run all eight phases over one guest block, returning every
    intermediate result.  [unroll] controls phase 2's self-loop
    unrolling; [checks] supplies the optional per-boundary verifiers;
    [tier] selects the quick or the optimizing pipeline. *)
let translate_phases ?(unroll = true) ?checks ?(tier = Tier_full) ~fetch
    ~instrument (guest_addr : int64) : phases * translation =
  let tree_stats = Disasm.superblock ~fetch guest_addr in
  translate_tree ~unroll ?checks ~tier ~fetch ~instrument tree_stats
    guest_addr

(** Run all eight phases, returning just the translation. *)
let translate ?(unroll = true) ?checks ?(tier = Tier_full) ~fetch ~instrument
    guest_addr : translation =
  snd (translate_phases ~unroll ?checks ~tier ~fetch ~instrument guest_addr)

(** Stitch the guest blocks along a hot chained [path] into one
    superblock and translate it with the full optimizing pipeline, so
    the optimiser and the tool see across the original block
    boundaries.  Returns [None] when fewer than two blocks stitch (the
    trace is not worth a combined translation); the caller falls back to
    the constituent translations, which stay resident under their own
    keys — a side exit from the superblock simply dispatches into
    them. *)
let translate_trace ?(unroll = true) ?checks ~fetch ~instrument
    (path : int64 list) : translation option =
  match Superblock.build ~fetch path with
  | None -> None
  | Some (tree, stats, stitched) ->
      let head = List.hd stitched in
      Some
        (snd
           (translate_tree ~unroll ?checks ~tier:Tier_super
              ~constituents:stitched ~fetch ~instrument (tree, stats) head))

(** Run the front half of the pipeline only (phases 1–4), returning the
    instrumented, optimised flat IR.  This is the graceful-degradation
    path: when the back end (or a fault injector) refuses a translation,
    the core evaluates this IR directly with {!Vex_ir.Eval.run} — tool
    instrumentation included, so analysis stays sound — instead of
    executing host code.  No boundary checks run here: the block is
    about to be interpreted by the reference evaluator, which is itself
    the oracle the verifiers compare against. *)
let translate_ir ?(unroll = true) ~(fetch : int64 -> int)
    ~(instrument : instrument) (guest_addr : int64) :
    Vex_ir.Ir.block * Disasm.stats =
  let tree, stats = Disasm.superblock ~fetch guest_addr in
  let flat = Opt.opt1 ~unroll tree in
  let instrumented = instrument (Vex_ir.Ir.copy_block flat) in
  let opt2 = Opt.opt2 instrumented in
  (opt2, stats)

(** The identity instrumentation (what Nulgrind passes). *)
let no_instrument : instrument = Fun.id
