(** Phase 1 — Disassembly: guest machine code -> (unoptimised) tree IR.

    Each guest instruction is disassembled independently into one or more
    statements that fully update the affected guest registers in the
    ThreadState: registers are pulled with GET, operated on, and written
    back with PUT (paper §3.7 phase 1 and Figure 1).  Condition codes are
    synthesised explicitly as the four thunk PUTs; most are later removed
    by optimisation.

    Superblock-building policy (§3.7): follow instructions until (a) the
    instruction limit (~50) is reached, (b) a conditional branch is hit,
    (c) a branch to an unknown target is hit, or (d) more than three
    unconditional branches to known targets have been chased. *)

open Vex_ir.Ir
module GA = Guest.Arch

let insn_limit = 50
let chase_limit = 3

(* -- expression-building conveniences ------------------------------- *)

let get_reg r = Get (GA.off_reg r, I32)
let get_freg f = Get (GA.off_freg f, F64)
let get_vreg v = Get (GA.off_vreg v, V128)

let wr b e =
  let t = new_tmp b (type_of b e) in
  add_stmt b (WrTmp (t, e));
  RdTmp t

let put_reg b r e = add_stmt b (Put (GA.off_reg r, e))
let put_freg b f e = add_stmt b (Put (GA.off_freg f, e))
let put_vreg b v e = add_stmt b (Put (GA.off_vreg v, e))

(* Set the condition-code thunk. *)
let put_thunk b ~op ~dep1 ~dep2 ~ndep =
  add_stmt b (Put (GA.off_cc_op, i32 op));
  add_stmt b (Put (GA.off_cc_dep1, dep1));
  add_stmt b (Put (GA.off_cc_dep2, dep2));
  add_stmt b (Put (GA.off_cc_ndep, ndep))

(* Call the lazy flags calculators on the current thunk. *)
let thunk_args = [ Get (GA.off_cc_op, I32); Get (GA.off_cc_dep1, I32);
                   Get (GA.off_cc_dep2, I32); Get (GA.off_cc_ndep, I32) ]

let calc_condition (c : GA.cond) =
  CCall (Ghelpers.calculate_condition, I32,
         i32 (Int64.of_int (Guest.Flags.cond_to_int c)) :: thunk_args)

let calc_eflags = CCall (Ghelpers.calculate_eflags, I32, thunk_args)

(** Effective-address expression of a memory operand (the CISC addressing
    mode becomes an explicit IR tree, Figure 1 statement 2). *)
let ea (m : GA.mem) : expr =
  let base = Option.map get_reg m.base in
  let index =
    Option.map
      (fun (r, scale) ->
        if scale = 1 then get_reg r
        else
          Binop (Shl32, get_reg r,
                 i8 (match scale with 2 -> 1 | 4 -> 2 | _ -> 3)))
      m.index
  in
  let disp = Support.Bits.trunc32 m.disp in
  let parts = List.filter_map Fun.id [ base; index ] in
  match parts with
  | [] -> i32 disp
  | [ e ] -> if disp = 0L then e else Binop (Add32, e, i32 disp)
  | [ e1; e2 ] ->
      let s = Binop (Add32, e1, e2) in
      if disp = 0L then s else Binop (Add32, s, i32 disp)
  | _ -> assert false

let alu_binop : GA.alu_op -> binop = function
  | ADD -> Add32 | SUB -> Sub32 | AND -> And32 | OR -> Or32 | XOR -> Xor32
  | SHL -> Shl32 | SHR -> Shr32 | SAR -> Sar32 | MUL -> Mul32
  | DIVS -> DivS32 | DIVU -> DivU32

(* Disassemble one ALU operation (register or immediate source). *)
let dis_alu b (op : GA.alu_op) (rd : GA.reg) (src : expr) =
  let a = wr b (get_reg rd) in
  let s = wr b src in
  let s' =
    match op with
    | SHL | SHR | SAR -> Unop (T32to8, s) (* shift amount is I8 in IR *)
    | _ -> s
  in
  let res = wr b (Binop (alu_binop op, a, s')) in
  put_reg b rd res;
  let cc = Guest.Flags.cc_op_of_alu op in
  if cc = Guest.Flags.cc_op_add || cc = Guest.Flags.cc_op_sub then
    put_thunk b ~op:cc ~dep1:a ~dep2:s ~ndep:(i32 0L)
  else if cc = Guest.Flags.cc_op_mul then begin
    let hi = wr b (Binop (MulHiS32, a, s)) in
    put_thunk b ~op:cc ~dep1:res ~dep2:hi ~ndep:(i32 0L)
  end
  else put_thunk b ~op:cc ~dep1:res ~dep2:s ~ndep:(i32 0L)

let load_widened b (w : GA.width) (sx : GA.signedness) (addr : expr) : expr =
  match (w, sx) with
  | GA.W4, _ -> wr b (Load (I32, addr))
  | GA.W1, GA.Zx -> wr b (Unop (U8to32, Load (I8, addr)))
  | GA.W1, GA.Sx -> wr b (Unop (S8to32, Load (I8, addr)))
  | GA.W2, GA.Zx -> wr b (Unop (U16to32, Load (I16, addr)))
  | GA.W2, GA.Sx -> wr b (Unop (S16to32, Load (I16, addr)))

(* push/pop building blocks (used by push/pop/call/ret) *)
let emit_push b (value : expr) =
  let sp = wr b (Binop (Sub32, Get (GA.off_sp, I32), i32 4L)) in
  add_stmt b (Put (GA.off_sp, sp));
  add_stmt b (Store (sp, value))

let emit_pop b : expr =
  let sp = wr b (Get (GA.off_sp, I32)) in
  let v = wr b (Load (I32, sp)) in
  add_stmt b (Put (GA.off_sp, Binop (Add32, sp, i32 4L)));
  v

(** Why instruction disassembly ended the superblock. *)
type stop =
  | Fallthrough  (** keep going *)
  | Chase of int64  (** unconditional jump to known target *)
  | End of expr * jumpkind  (** block is finished *)

(** Disassemble instruction [insn] at [addr] (already fetched; [len]
    bytes) into [b].  Returns how to continue. *)
let dis_insn b (insn : GA.insn) ~(addr : int64) ~(next : int64) : stop =
  let open GA in
  match insn with
  | Nop -> Fallthrough
  | Mov (d, s) ->
      put_reg b d (wr b (get_reg s));
      Fallthrough
  | Movi (d, imm) ->
      put_reg b d (i32 imm);
      Fallthrough
  | Lea (d, m) ->
      put_reg b d (wr b (ea m));
      Fallthrough
  | Ld (w, sx, d, m) ->
      let a = wr b (ea m) in
      put_reg b d (load_widened b w sx a);
      Fallthrough
  | St (w, m, s) ->
      let a = wr b (ea m) in
      let v = wr b (get_reg s) in
      let v' =
        match w with
        | W1 -> wr b (Unop (T32to8, v))
        | W2 -> wr b (Unop (T32to16, v))
        | W4 -> v
      in
      add_stmt b (Store (a, v'));
      Fallthrough
  | Alu (op, d, s) ->
      dis_alu b op d (get_reg s);
      Fallthrough
  | Alui (op, d, imm) ->
      dis_alu b op d (i32 imm);
      Fallthrough
  | Cmp (x, y) ->
      let a = wr b (get_reg x) and c = wr b (get_reg y) in
      put_thunk b ~op:Guest.Flags.cc_op_sub ~dep1:a ~dep2:c ~ndep:(i32 0L);
      Fallthrough
  | Cmpi (x, imm) ->
      let a = wr b (get_reg x) in
      put_thunk b ~op:Guest.Flags.cc_op_sub ~dep1:a ~dep2:(i32 imm)
        ~ndep:(i32 0L);
      Fallthrough
  | Test (x, y) ->
      let a = wr b (Binop (And32, get_reg x, get_reg y)) in
      put_thunk b ~op:Guest.Flags.cc_op_logic ~dep1:a ~dep2:(i32 0L)
        ~ndep:(i32 0L);
      Fallthrough
  | Inc d ->
      let old_flags = wr b calc_eflags in
      let res = wr b (Binop (Add32, get_reg d, i32 1L)) in
      put_reg b d res;
      put_thunk b ~op:Guest.Flags.cc_op_inc ~dep1:res ~dep2:(i32 0L)
        ~ndep:old_flags;
      Fallthrough
  | Dec d ->
      let old_flags = wr b calc_eflags in
      let res = wr b (Binop (Sub32, get_reg d, i32 1L)) in
      put_reg b d res;
      put_thunk b ~op:Guest.Flags.cc_op_dec ~dep1:res ~dep2:(i32 0L)
        ~ndep:old_flags;
      Fallthrough
  | Neg d ->
      let v = wr b (get_reg d) in
      let res = wr b (Unop (Neg32, v)) in
      put_reg b d res;
      put_thunk b ~op:Guest.Flags.cc_op_sub ~dep1:(i32 0L) ~dep2:v
        ~ndep:(i32 0L);
      Fallthrough
  | Not d ->
      put_reg b d (wr b (Unop (Not32, get_reg d)));
      Fallthrough
  | Setcc (c, d) ->
      put_reg b d (wr b (calc_condition c));
      Fallthrough
  | Jcc (c, target) ->
      let cnd = wr b (calc_condition c) in
      let guard = wr b (Unop (CmpNEZ32, cnd)) in
      add_stmt b (Exit (guard, Jk_boring, target));
      End (i32 next, Jk_boring)
  | Jmp target -> Chase target
  | Jmpi s -> End (wr b (get_reg s), Jk_boring)
  | Call target ->
      emit_push b (i32 next);
      End (i32 target, Jk_call)
  | Calli s ->
      let dest = wr b (get_reg s) in
      emit_push b (i32 next);
      End (dest, Jk_call)
  | Ret -> End (emit_pop b, Jk_ret)
  | Push s ->
      (* read the value before moving sp, as guest semantics require *)
      let v = wr b (get_reg s) in
      emit_push b v;
      Fallthrough
  | Pushi imm ->
      emit_push b (i32 imm);
      Fallthrough
  | Pop d ->
      put_reg b d (emit_pop b);
      Fallthrough
  | Sysinfo ->
      add_stmt b
        (Dirty
           {
             d_guard = i1 true;
             d_callee = Ghelpers.sysinfo;
             d_args = [];
             d_tmp = None;
             d_mfx = Mfx_none;
           });
      Fallthrough
  | Syscall ->
      add_stmt b (Put (GA.off_eip, i32 next));
      End (i32 next, Jk_syscall)
  | Clreq ->
      add_stmt b (Put (GA.off_eip, i32 next));
      End (i32 next, Jk_clientreq)
  | Fld (d, m) ->
      put_freg b d (wr b (Load (F64, wr b (ea m))));
      Fallthrough
  | Fst (m, s) ->
      let a = wr b (ea m) in
      add_stmt b (Store (a, wr b (get_freg s)));
      Fallthrough
  | Fmovr (d, s) ->
      put_freg b d (wr b (get_freg s));
      Fallthrough
  | Fldi (d, x) ->
      put_freg b d (Const (CF64 x));
      Fallthrough
  | Falu (op, d, s) ->
      let a = wr b (get_freg d) and c = wr b (get_freg s) in
      let bop =
        match op with
        | FADD -> AddF64 | FSUB -> SubF64 | FMUL -> MulF64 | FDIV -> DivF64
        | FMIN -> MinF64 | FMAX -> MaxF64
      in
      put_freg b d (wr b (Binop (bop, a, c)));
      Fallthrough
  | Fun1 (op, d, s) ->
      let a = wr b (get_freg s) in
      let uop = match op with FSQRT -> SqrtF64 | FNEG -> NegF64 | FABS -> AbsF64 in
      put_freg b d (wr b (Unop (uop, a)));
      Fallthrough
  | Fcmp (x, y) ->
      let a = wr b (get_freg x) and c = wr b (get_freg y) in
      (* 0 = eq, 1 = lt, 2 = gt, 3 = unordered; NaN detected via x <> x *)
      let ordered_code =
        ITE (Binop (CmpEQF64, a, c), i32 0L,
             ITE (Binop (CmpLTF64, a, c), i32 1L, i32 2L))
      in
      let code =
        wr b
          (ITE (Binop (CmpEQF64, a, a),
                ITE (Binop (CmpEQF64, c, c), ordered_code, i32 3L),
                i32 3L))
      in
      put_thunk b ~op:Guest.Flags.cc_op_fcmp ~dep1:code ~dep2:(i32 0L)
        ~ndep:(i32 0L);
      Fallthrough
  | Fitod (d, s) ->
      put_freg b d (wr b (Unop (I32StoF64, get_reg s)));
      Fallthrough
  | Fdtoi (d, s) ->
      put_reg b d (wr b (Unop (F64toI32S, get_freg s)));
      Fallthrough
  | Vld (d, m) ->
      put_vreg b d (wr b (Load (V128, wr b (ea m))));
      Fallthrough
  | Vst (m, s) ->
      let a = wr b (ea m) in
      add_stmt b (Store (a, wr b (get_vreg s)));
      Fallthrough
  | Vmovr (d, s) ->
      put_vreg b d (wr b (get_vreg s));
      Fallthrough
  | Valu (op, d, s) ->
      let a = wr b (get_vreg d) and c = wr b (get_vreg s) in
      let bop =
        match op with
        | VAND -> AndV128 | VOR -> OrV128 | VXOR -> XorV128
        | VADD32 -> Add32x4 | VSUB32 -> Sub32x4 | VCMPEQ32 -> CmpEQ32x4
        | VADD8 -> Add8x16 | VSUB8 -> Sub8x16
      in
      put_vreg b d (wr b (Binop (bop, a, c)));
      Fallthrough
  | Vsplat (d, s) ->
      put_vreg b d (wr b (Unop (Dup32x4, get_reg s)));
      Fallthrough
  | Vextr (d, s, lane) ->
      let half =
        if lane < 2 then Unop (V128to64, get_vreg s)
        else Unop (V128HIto64, get_vreg s)
      in
      let h = wr b half in
      let shifted = if lane land 1 = 0 then h else Binop (Shr64, h, i8 32) in
      put_reg b d (wr b (Unop (T64to32, shifted)));
      Fallthrough
  | Ud ->
      (* keep control: exit to the scheduler, which delivers SIGILL *)
      add_stmt b (Put (GA.off_eip, i32 addr));
      End (i32 addr, Jk_sigill)

(** Statistics about a disassembled superblock. *)
type stats = { guest_insns : int; guest_bytes : int }

(** Disassemble a superblock starting at [pc], fetching through
    [fetch].  Every instruction gets an IMark and an up-front PUT of the
    guest program counter (removed later when provably redundant —
    paper's phase-2 example). *)
let superblock ~(fetch : int64 -> int) (pc : int64) : block * stats =
  let b = new_block () in
  let n_insns = ref 0 in
  let n_bytes = ref 0 in
  let chased = ref 0 in
  let rec go (addr : int64) =
    if !n_insns >= insn_limit then begin
      b.next <- i32 addr;
      b.jumpkind <- Jk_boring
    end
    else begin
      let insn, len =
        (* Unmapped or non-executable code must not silently decode (the
           old behaviour read zeroes -> Ud -> SIGILL, where native
           execution faults with SIGSEGV).  An unfetchable first
           instruction means the whole translation request is invalid:
           raise [Truncated] so the core delivers SIGSEGV.  Running into
           unfetchable memory mid-block just ends the block before it —
           the fault then surfaces (correctly attributed) when execution
           actually reaches that address. *)
        try Guest.Decode.decode fetch addr
        with Aspace.Fault _ ->
          if !n_insns = 0 then raise Guest.Decode.Truncated
          else begin
            b.next <- i32 addr;
            b.jumpkind <- Jk_boring;
            raise Exit
          end
      in
      incr n_insns;
      n_bytes := !n_bytes + len;
      add_stmt b (IMark (addr, len));
      add_stmt b (Put (GA.off_eip, i32 addr));
      let next = Support.Bits.trunc32 (Int64.add addr (Int64.of_int len)) in
      match dis_insn b insn ~addr ~next with
      | Fallthrough -> go next
      | Chase target ->
          if !chased >= chase_limit then begin
            b.next <- i32 target;
            b.jumpkind <- Jk_boring
          end
          else begin
            incr chased;
            go target
          end
      | End (next_e, jk) ->
          b.next <- next_e;
          b.jumpkind <- jk
    end
  in
  (try go pc with Exit -> () (* block ended at unfetchable memory *));
  (b, { guest_insns = !n_insns; guest_bytes = !n_bytes })
