(** Trace superblock formation: stitch a hot chained path of guest
    blocks into one IR region, so the optimizing pipeline and the tool's
    instrumenter see across the original block boundaries ("Optimizing
    Binary Code Produced by Valgrind" pursues the same across-block
    payoff).

    Stitching happens at the guest level: each constituent block is
    re-disassembled and appended with its temporaries renamed into the
    combined block's namespace.  Only [Jk_boring] edges are stitched.
    When a constituent falls through to the next path element the
    statements are appended directly; when it reaches it via a taken
    conditional branch (a final [Exit] whose target is the next
    element), the branch is inverted — the old fallthrough becomes the
    side exit and the trace continues straight through — exactly the
    transformation that makes a trace profitable.  Side exits keep their
    guest-address targets, so leaving the superblock simply dispatches
    into the constituent translations, which stay resident under their
    own keys. *)

open Vex_ir.Ir

let rec rename_expr (off : int) (e : expr) : expr =
  match e with
  | RdTmp t -> RdTmp (t + off)
  | Get _ | Const _ -> e
  | Load (ty, a) -> Load (ty, rename_expr off a)
  | Unop (o, a) -> Unop (o, rename_expr off a)
  | Binop (o, a, b) -> Binop (o, rename_expr off a, rename_expr off b)
  | ITE (c, t, f) ->
      ITE (rename_expr off c, rename_expr off t, rename_expr off f)
  | CCall (f, ty, args) -> CCall (f, ty, List.map (rename_expr off) args)

let rename_stmt (off : int) (s : stmt) : stmt =
  match s with
  | NoOp | IMark _ -> s
  | AbiHint (e, l) -> AbiHint (rename_expr off e, l)
  | Put (o, e) -> Put (o, rename_expr off e)
  | WrTmp (t, e) -> WrTmp (t + off, rename_expr off e)
  | Store (a, d) -> Store (rename_expr off a, rename_expr off d)
  | Dirty d ->
      Dirty
        {
          d with
          d_guard = rename_expr off d.d_guard;
          d_args = List.map (rename_expr off) d.d_args;
          d_tmp = Option.map (fun t -> t + off) d.d_tmp;
          d_mfx =
            (match d.d_mfx with
            | Mfx_none -> Mfx_none
            | Mfx_read (e, n) -> Mfx_read (rename_expr off e, n)
            | Mfx_write (e, n) -> Mfx_write (rename_expr off e, n));
        }
  | Exit (g, jk, tgt) -> Exit (rename_expr off g, jk, tgt)

(* Import [src]'s temporaries into [dst], returning the renaming
   offset. *)
let import_tyenv (dst : block) (src : block) : int =
  let off = Support.Vec.length dst.tyenv in
  Support.Vec.iter (fun ty -> ignore (new_tmp dst ty)) src.tyenv;
  off

(* Can control fall off [src] into [continue_pc] without leaving the
   trace?  [`Straight]: the block's fallthrough is the next element.
   [`Invert fall]: the block reaches it via a taken conditional branch
   (final [Exit]); the returned [fall] is the old fallthrough address,
   which becomes the inverted side exit's target. *)
let stitchable (src : block) ~(continue_pc : int64) :
    [ `Straight | `Invert of int64 ] option =
  if src.jumpkind <> Jk_boring then None
  else
    match src.next with
    | Const (CI32 v) when v = continue_pc -> Some `Straight
    | Const (CI32 fall) -> (
        let n = Support.Vec.length src.stmts in
        if n = 0 then None
        else
          match Support.Vec.get src.stmts (n - 1) with
          | Exit (_, Jk_boring, tgt) when tgt = continue_pc ->
              Some (`Invert fall)
          | _ -> None)
    | _ -> None

(* Append [src] to [dst] as a non-final constituent, per the
   [stitchable] decision. *)
let append_stitched (dst : block) (src : block)
    (decision : [ `Straight | `Invert of int64 ]) : unit =
  let off = import_tyenv dst src in
  let n = Support.Vec.length src.stmts in
  let keep = match decision with `Invert _ -> n - 1 | `Straight -> n in
  for i = 0 to keep - 1 do
    add_stmt dst (rename_stmt off (Support.Vec.get src.stmts i))
  done;
  match decision with
  | `Straight -> ()
  | `Invert fall -> (
      match Support.Vec.get src.stmts (n - 1) with
      | Exit (g, Jk_boring, _) ->
          let ng = new_tmp dst I1 in
          add_stmt dst (WrTmp (ng, Unop (Not1, rename_expr off g)));
          add_stmt dst (Exit (RdTmp ng, Jk_boring, fall))
      | _ -> assert false)

(* Append [src] as the superblock's final constituent: all statements
   plus its terminator. *)
let append_final (dst : block) (src : block) : unit =
  let off = import_tyenv dst src in
  Support.Vec.iter (fun s -> add_stmt dst (rename_stmt off s)) src.stmts;
  dst.next <- rename_expr off src.next;
  dst.jumpkind <- src.jumpkind

(** Stitch the guest blocks starting at the addresses in [path] (head
    first) into one superblock.  The path is truncated at the first edge
    that cannot be stitched (non-boring jumpkind, computed successor, or
    a successor that is not the next path element); that constituent
    becomes the final one, keeping its own terminator.  Returns the
    combined block, aggregate disassembly stats and the list of
    constituent start addresses actually stitched — or [None] when
    fewer than two blocks stitch, in which case a combined translation
    would buy nothing over the existing per-block ones. *)
let build ~(fetch : int64 -> int) (path : int64 list) :
    (block * Disasm.stats * int64 list) option =
  match path with
  | [] | [ _ ] -> None
  | _ ->
      let dst = new_block () in
      let insns = ref 0 in
      let bytes = ref 0 in
      let stitched = ref [] in
      let record pc (st : Disasm.stats) =
        stitched := pc :: !stitched;
        insns := !insns + st.guest_insns;
        bytes := !bytes + st.guest_bytes
      in
      let rec go (pcs : int64 list) =
        match pcs with
        | [] -> ()
        | pc :: rest -> (
            match Disasm.superblock ~fetch pc with
            | exception Guest.Decode.Truncated ->
                (* The code at [pc] vanished between trace selection and
                   now.  End the trace here; execution falls back to the
                   dispatcher at [pc], which surfaces the fault at the
                   right address. *)
                dst.next <- i32 pc;
                dst.jumpkind <- Jk_boring
            | src, st -> (
                let finish () = append_final dst src; record pc st in
                match rest with
                | next_pc :: _ -> (
                    match stitchable src ~continue_pc:next_pc with
                    | Some decision ->
                        append_stitched dst src decision;
                        record pc st;
                        go rest
                    | None -> finish ())
                | [] -> finish ()))
      in
      go path;
      let stitched = List.rev !stitched in
      if List.length stitched < 2 then None
      else
        Some
          ( dst,
            { Disasm.guest_insns = !insns; guest_bytes = !bytes },
            stitched )
