(** Vgscan: whole-image static analysis of VG32 guests.

    {!Cfg} recovers a sound whole-image control-flow graph by recursive
    traversal, {!Lint} turns the recovered facts into hostile-code
    findings, {!Report} serialises both deterministically, and
    {!Hostile} carries the hand-written hostile fixture images used by
    tests and CI goldens. *)

module Cfg = Cfg
module Lint = Lint
module Report = Report
module Hostile = Hostile
