(** Whole-image static CFG recovery for VG32 guests (the Vgscan core).

    Recursive-traversal disassembly over a {!Guest.Image}: starting from
    the image entry point, every text symbol, and every direct
    jump/branch/call target, straight-line runs are decoded through the
    same block iterator the reference interpreter uses
    ({!Guest.Decode.iter_block}), so the scanner and the executors agree
    on instruction boundaries by construction.

    Indirect control flow is handled explicitly rather than guessed:

    - [jmpi r] sites are matched against the bounded jump-table pattern
      (a [ldw rT, \[table + rI*4\]] defining the jump register, ideally
      guarded by a [cmpi rI, n] bound); recognised tables contribute
      their in-text entries as further roots, unrecognised sites land on
      the {e frontier}.
    - [calli r] sites always land on the frontier; their possible
      targets are approximated by the {e address-taken} set — immediates
      in reached code ([movi]/[pushi]/absolute [lea]) whose value falls
      inside text.  Address-taken roots are decoded {e weakly}: their
      instruction starts feed the soundness oracle (overapproximation is
      safe there) but never the lint layer (a data-looking constant that
      happens to land mid-instruction must not produce findings).

    Unreached text bytes are reported as gaps, never classified as
    code.  Everything in the result is sorted, so reports built from it
    are bit-identical across runs. *)

module Arch = Guest.Arch
module Decode = Guest.Decode
module Image = Guest.Image

type edge_kind =
  | E_fall  (** straight-line continuation into the next block *)
  | E_jump  (** unconditional direct jump *)
  | E_branch  (** the taken edge of a conditional branch *)
  | E_ret_site  (** continuation after a call (the return site) *)
  | E_table  (** one recognised jump-table entry *)

let edge_name = function
  | E_fall -> "fall"
  | E_jump -> "jump"
  | E_branch -> "branch"
  | E_ret_site -> "ret-site"
  | E_table -> "table"

type entry_kind =
  | Ent_image  (** the image entry point *)
  | Ent_symbol  (** a text symbol *)
  | Ent_addr_taken  (** an in-code immediate landing in text (weak) *)

type frontier_reason = F_calli | F_jmpi

type frontier_item = {
  fr_addr : int64;  (** address of the indirect-flow instruction *)
  fr_reason : frontier_reason;
}

type table = {
  tb_jump : int64;  (** address of the [jmpi] *)
  tb_base : int64;  (** first table word *)
  tb_entries : int64 list;  (** accepted targets, in table order *)
  tb_bounded : bool;  (** an index bound ([cmpi rI, n]) guarded it *)
}

type block = {
  bk_addr : int64;
  bk_len : int;  (** bytes *)
  bk_insns : int;
  bk_succs : (int64 * edge_kind) list;  (** sorted by (addr, kind) *)
  bk_term : string;  (** terminator class, for reports *)
}

(* Raw facts accumulated during traversal; the lint layer consumes them. *)
type raw = {
  r_overlaps : (int64 * int64) list;
      (** (earlier claimant, second stream start) byte-sharing pairs *)
  r_targets : (int64 * int64) list;  (** (site, direct target) *)
  r_stores : (int64 * int64 * int) list;
      (** (site, absolute EA, width) for statically evaluable stores *)
  r_loads : (int64 * int64 * int) list;
      (** (site, absolute EA, width) for statically evaluable loads —
          the self-inspection signature (text checksums, unpacker keys) *)
  r_truncated : (int64 * int64) list;
      (** (instruction start, exact faulting byte) inside text *)
}

type t = {
  image : Image.t;
  text_lo : int64;
  text_hi : int64;  (** exclusive *)
  insns : (int64, Arch.insn * int) Hashtbl.t;  (** strongly reached *)
  weak : (int64, unit) Hashtbl.t;  (** weak-only instruction starts *)
  owner : int array;
      (** per text byte: offset of the first strong instruction claiming
          it, or -1 (unreached) *)
  blocks : block list;  (** sorted by address *)
  entries : (int64 * entry_kind) list;  (** sorted roots *)
  calls : (int64 * int64) list;  (** (call site, callee), sorted *)
  frontier : frontier_item list;  (** sorted by address *)
  tables : table list;  (** sorted by jump address *)
  unreached : (int64 * int) list;  (** maximal never-decoded gaps *)
  raw : raw;
  n_insns : int;
  n_weak : int;
  coverage_bytes : int;
}

let in_text (t_lo : int64) (t_hi : int64) (a : int64) : bool =
  Int64.unsigned_compare a t_lo >= 0 && Int64.unsigned_compare a t_hi < 0

(** Does the soundness oracle know [pc] as an instruction start?  Strong
    or weak: the oracle only ever overapproximates. *)
let known_insn (t : t) (pc : int64) : bool =
  Hashtbl.mem t.insns pc || Hashtbl.mem t.weak pc

(** The integer registers an instruction writes (for jump-table
    recognition: finding the defining load of the jump register). *)
let writes_reg (i : Arch.insn) (r : int) : bool =
  let open Arch in
  match i with
  | Mov (d, _) | Movi (d, _) | Lea (d, _) | Ld (_, _, d, _)
  | Alu (_, d, _) | Alui (_, d, _) | Inc d | Dec d | Neg d | Not d
  | Setcc (_, d) | Pop d | Fdtoi (d, _) | Vextr (d, _, _) ->
      d = r
  | Sysinfo | Syscall | Clreq -> r = 0 || r = 1
  | _ -> false

(* Read a 32-bit little-endian word from the image's static bytes (text
   or data); [None] outside both. *)
let read_word (img : Image.t) (addr : int64) : int64 option =
  let from (base : int64) (bytes : Bytes.t) =
    let off = Int64.to_int (Int64.sub addr base) in
    if
      Int64.unsigned_compare addr base >= 0
      && off + 4 <= Bytes.length bytes
    then
      Some (Int64.of_int32 (Bytes.get_int32_le bytes off) |> fun v ->
            Int64.logand v 0xFFFF_FFFFL)
    else None
  in
  match from img.Image.text_addr img.Image.text with
  | Some v -> Some v
  | None -> from img.Image.data_addr img.Image.data

let max_unbounded_table = 256
let max_bounded_table = 1024

(** Recognise the bounded jump-table pattern behind [jmpi jr] at
    [jaddr], looking back through [recent] (newest first: the current
    run's instructions before the jump).  The defining write of [jr]
    must be [ldw jr, \[base + rI*scale\]] with a constant base; a
    [cmpi rI, n] anywhere earlier in the run bounds the table.  Entries
    are read from the image and accepted while they land in text. *)
let recognise_table (img : Image.t) ~(t_lo : int64) ~(t_hi : int64)
    ~(jaddr : int64) ~(jr : int) (recent : (int64 * Arch.insn) list) :
    table option =
  let open Arch in
  (* the defining write of the jump register *)
  let rec find_def = function
    | [] -> None
    | (_, i) :: rest ->
        if writes_reg i jr then
          match i with
          | Ld (W4, Zx, d, { base = None; index = Some (ri, sc); disp })
            when d = jr ->
              Some (ri, sc, disp, rest)
          | _ -> None (* clobbered by something that is not a table load *)
        else find_def rest
  in
  match find_def recent with
  | None -> None
  | Some (ri, scale, base, before) ->
      let bound =
        List.find_map
          (fun (_, i) ->
            match i with
            | Cmpi (r, n) when r = ri && Int64.unsigned_compare n 0L > 0 ->
                Some (Int64.to_int n)
            | _ -> None)
          before
      in
      let limit =
        match bound with
        | Some n -> min n max_bounded_table
        | None -> max_unbounded_table
      in
      let entries = ref [] in
      let k = ref 0 in
      let stop = ref false in
      while (not !stop) && !k < limit do
        (match read_word img (Int64.add base (Int64.of_int (!k * scale))) with
        | Some v when in_text t_lo t_hi v -> entries := v :: !entries
        | _ -> stop := true);
        incr k
      done;
      let entries = List.rev !entries in
      if entries = [] then None
      else
        Some
          {
            tb_jump = jaddr;
            tb_base = base;
            tb_entries = entries;
            tb_bounded = bound <> None;
          }

let uniq_sorted (cmp : 'a -> 'a -> int) (l : 'a list) : 'a list =
  let sorted = List.sort cmp l in
  let rec dedup = function
    | a :: b :: rest when cmp a b = 0 -> dedup (b :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

(** Scan [img]: recover the whole-image CFG.  Pure and deterministic —
    the same image always produces the identical result value. *)
let scan (img : Image.t) : t =
  let t_lo = img.Image.text_addr in
  let text_len = Bytes.length img.Image.text in
  let t_hi = Int64.add t_lo (Int64.of_int text_len) in
  let fetch a =
    if in_text t_lo t_hi a then
      Bytes.get_uint8 img.Image.text (Int64.to_int (Int64.sub a t_lo))
    else raise (Decode.Truncated_at a)
  in
  let insns : (int64, Arch.insn * int) Hashtbl.t = Hashtbl.create 4096 in
  let weak : (int64, unit) Hashtbl.t = Hashtbl.create 256 in
  let owner = Array.make text_len (-1) in
  (* accumulators (reversed; sorted at the end) *)
  let overlaps = ref [] and overlap_seen = Hashtbl.create 64 in
  let targets = ref [] in
  let stores = ref [] in
  let loads = ref [] in
  let truncated = ref [] in
  let calls = ref [] in
  let frontier = ref [] in
  let tables = ref [] in
  let starts : (int64, unit) Hashtbl.t = Hashtbl.create 1024 in
  let add_start a = if in_text t_lo t_hi a then Hashtbl.replace starts a () in
  (* roots *)
  let entries = ref [] in
  let pending = Queue.create () in
  let root kind a =
    if in_text t_lo t_hi a then begin
      entries := (a, kind) :: !entries;
      add_start a;
      Queue.add (a, true) pending
    end
  in
  root Ent_image img.Image.entry;
  List.iter
    (fun (_, a) -> if in_text t_lo t_hi a then root Ent_symbol a)
    (List.sort
       (fun (n1, a1) (n2, a2) ->
         match Int64.unsigned_compare a1 a2 with
         | 0 -> compare n1 n2
         | c -> c)
       img.Image.symbols);
  let weak_pending = Queue.create () in
  let weak_root a =
    if in_text t_lo t_hi a then begin
      entries := (a, Ent_addr_taken) :: !entries;
      Queue.add a weak_pending
    end
  in
  (* ---- strong traversal ------------------------------------------- *)
  let claim (a : int64) (len : int) =
    let off = Int64.to_int (Int64.sub a t_lo) in
    for b = off to min (off + len - 1) (text_len - 1) do
      if owner.(b) = -1 then owner.(b) <- off
      else if owner.(b) <> off then begin
        let pair = (Int64.add t_lo (Int64.of_int owner.(b)), a) in
        if not (Hashtbl.mem overlap_seen pair) then begin
          Hashtbl.replace overlap_seen pair ();
          overlaps := pair :: !overlaps
        end
      end
    done
  in
  let note_insn (a : int64) (i : Arch.insn) (len : int) =
    let open Arch in
    claim a len;
    (* direct control targets (lints check them; traversal roots them) *)
    (match i with
    | Jmp tgt | Jcc (_, tgt) | Call tgt -> targets := (a, tgt) :: !targets
    | _ -> ());
    (match i with
    | Call tgt when in_text t_lo t_hi tgt -> calls := (a, tgt) :: !calls
    | _ -> ());
    (* address-taken immediates: possible indirect-call/handler targets *)
    (match i with
    | Movi (_, v) | Pushi v | Alui (ADD, _, v) ->
        if in_text t_lo t_hi v && not (Hashtbl.mem starts v) then weak_root v
    | Lea (_, { base = None; index = None; disp }) ->
        if in_text t_lo t_hi disp && not (Hashtbl.mem starts disp) then
          weak_root disp
    | _ -> ());
    (* statically evaluable stores (static SMC candidates) *)
    (match i with
    | St (w, { base = None; index = None; disp }, _) ->
        let wb = match w with W1 -> 1 | W2 -> 2 | W4 -> 4 in
        stores := (a, disp, wb) :: !stores
    | Fst ({ base = None; index = None; disp }, _) ->
        stores := (a, disp, 8) :: !stores
    | Vst ({ base = None; index = None; disp }, _) ->
        stores := (a, disp, 16) :: !stores
    | _ -> ());
    (* statically evaluable loads (self-inspection candidates) *)
    match i with
    | Ld (w, _, _, { base = None; index = None; disp }) ->
        let wb = match w with W1 -> 1 | W2 -> 2 | W4 -> 4 in
        loads := (a, disp, wb) :: !loads
    | Fld (_, { base = None; index = None; disp }) ->
        loads := (a, disp, 8) :: !loads
    | Vld (_, { base = None; index = None; disp }) ->
        loads := (a, disp, 16) :: !loads
    | _ -> ()
  in
  let drain_strong () =
    while not (Queue.is_empty pending) do
      let a, _strong = Queue.pop pending in
      if in_text t_lo t_hi a && not (Hashtbl.mem insns a) then begin
        let pc = ref a in
        let continue_run = ref true in
        (* [recent] spans branch/call continuations within this root, so a
           jump-table bound check separated from the load by its guard
           branch is still seen by [recognise_table] *)
        let recent = ref [] in
        while !continue_run do
          continue_run := false;
          let run_start = !pc in
          match
            Decode.iter_block ~stop_before:(Hashtbl.mem insns) fetch
              run_start (fun ia insn len ->
                Hashtbl.replace insns ia (insn, len);
                recent := (ia, insn) :: !recent;
                note_insn ia insn len)
          with
          | exception Decode.Truncated_at fa ->
              (* nothing decoded: the root itself is unfetchable (only
                 possible for a root at the very end of text) *)
              if in_text t_lo t_hi run_start then
                truncated := (run_start, fa) :: !truncated
          | after, stop -> (
              match stop with
              | Decode.S_known | Decode.S_limit -> ()
              | Decode.S_truncated fa ->
                  (* [after] is the start of the partial instruction; a
                     run ending exactly at text end is a clean stop, not
                     a finding *)
                  if Int64.unsigned_compare after t_hi < 0 then
                    truncated := (after, fa) :: !truncated
              | Decode.S_control c -> (
                  let term_addr =
                    (* the terminator is the newest instruction seen *)
                    match !recent with (ia, _) :: _ -> ia | [] -> run_start
                  in
                  match c with
                  | Decode.C_fall -> ()
                  | Decode.C_stop | Decode.C_ret -> ()
                  | Decode.C_jump tgt ->
                      add_start tgt;
                      Queue.add (tgt, true) pending
                  | Decode.C_branch tgt ->
                      add_start tgt;
                      Queue.add (tgt, true) pending;
                      add_start after;
                      pc := after;
                      continue_run := true
                  | Decode.C_call tgt ->
                      add_start tgt;
                      Queue.add (tgt, true) pending;
                      add_start after;
                      pc := after;
                      continue_run := true
                  | Decode.C_call_ind _ ->
                      frontier :=
                        { fr_addr = term_addr; fr_reason = F_calli }
                        :: !frontier;
                      add_start after;
                      pc := after;
                      continue_run := true
                  | Decode.C_jump_ind jr -> (
                      match
                        recognise_table img ~t_lo ~t_hi ~jaddr:term_addr
                          ~jr (List.tl !recent)
                      with
                      | Some tb ->
                          tables := tb :: !tables;
                          List.iter
                            (fun e ->
                              add_start e;
                              Queue.add (e, true) pending)
                            tb.tb_entries
                      | None ->
                          frontier :=
                            { fr_addr = term_addr; fr_reason = F_jmpi }
                            :: !frontier)))
        done
      end
    done
  in
  drain_strong ();
  (* ---- weak traversal (address-taken roots; oracle only) ----------- *)
  let known a = Hashtbl.mem insns a || Hashtbl.mem weak a in
  while not (Queue.is_empty weak_pending) do
    let a = Queue.pop weak_pending in
    if in_text t_lo t_hi a && not (known a) then begin
      let pc = ref a in
      let continue_run = ref true in
      while !continue_run do
        continue_run := false;
        match
          Decode.iter_block ~stop_before:known fetch !pc
            (fun ia _insn _len -> Hashtbl.replace weak ia ())
        with
        | exception Decode.Truncated_at _ -> ()
        | after, stop -> (
            match stop with
            | Decode.S_known | Decode.S_limit | Decode.S_truncated _ -> ()
            | Decode.S_control c -> (
                match c with
                | Decode.C_fall | Decode.C_stop | Decode.C_ret
                | Decode.C_jump_ind _ ->
                    ()
                | Decode.C_jump tgt ->
                    if (not (known tgt)) && in_text t_lo t_hi tgt then begin
                      pc := tgt;
                      continue_run := true
                    end
                | Decode.C_branch tgt | Decode.C_call tgt ->
                    if (not (known tgt)) && in_text t_lo t_hi tgt then
                      Queue.add tgt weak_pending;
                    pc := after;
                    continue_run := true
                | Decode.C_call_ind _ ->
                    pc := after;
                    continue_run := true))
      done
    end
  done;
  (* a strong insn supersedes a weak record at the same address *)
  Hashtbl.iter (fun a _ -> if Hashtbl.mem insns a then Hashtbl.remove weak a)
    (Hashtbl.copy weak);
  (* ---- block structure --------------------------------------------- *)
  let sorted_insns =
    Hashtbl.fold (fun a (i, len) acc -> (a, i, len) :: acc) insns []
    |> List.sort (fun (a, _, _) (b, _, _) -> Int64.unsigned_compare a b)
  in
  let tables_l =
    List.sort (fun a b -> Int64.unsigned_compare a.tb_jump b.tb_jump) !tables
  in
  let table_succs : (int64, (int64 * edge_kind) list) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun tb ->
      Hashtbl.replace table_succs tb.tb_jump
        (List.map (fun e -> (e, E_table)) tb.tb_entries))
    tables_l;
  let blocks = ref [] in
  let cur : (int64 * int * int) option ref = ref None in
  (* (start, bytes, insns) of the open block *)
  let succs_of (term_addr : int64) (i : Arch.insn) (after : int64) :
      (int64 * edge_kind) list * string =
    match Decode.control_of i with
    | Decode.C_fall -> ([ (after, E_fall) ], "fall")
    | Decode.C_jump tgt -> ([ (tgt, E_jump) ], "jmp")
    | Decode.C_branch tgt ->
        ([ (tgt, E_branch); (after, E_fall) ], "jcc")
    | Decode.C_call _ -> ([ (after, E_ret_site) ], "call")
    | Decode.C_call_ind _ -> ([ (after, E_ret_site) ], "calli")
    | Decode.C_jump_ind _ -> (
        match Hashtbl.find_opt table_succs term_addr with
        | Some es -> (es, "jmpi-table")
        | None -> ([], "jmpi"))
    | Decode.C_ret -> ([], "ret")
    | Decode.C_stop -> ([], "ud")
  in
  let flush term_addr term_insn after =
    match !cur with
    | None -> ()
    | Some (bstart, bytes, count) ->
        let succs, term =
          match term_insn with
          | Some i ->
              let s, t = succs_of term_addr i after in
              ( uniq_sorted
                  (fun (a1, k1) (a2, k2) ->
                    match Int64.unsigned_compare a1 a2 with
                    | 0 -> compare (edge_name k1) (edge_name k2)
                    | c -> c)
                  s,
                t )
          | None -> ([], "cut")
        in
        blocks :=
          {
            bk_addr = bstart;
            bk_len = bytes;
            bk_insns = count;
            bk_succs = succs;
            bk_term = term;
          }
          :: !blocks;
        cur := None
  in
  let prev : (int64 * Arch.insn * int) option ref = ref None in
  List.iter
    (fun (a, i, len) ->
      let after = Int64.add a (Int64.of_int len) in
      let discontinuous =
        match !prev with
        | Some (pa, _, plen) -> Int64.add pa (Int64.of_int plen) <> a
        | None -> true
      in
      if discontinuous || Hashtbl.mem starts a then begin
        (* close the open block at the previous instruction *)
        (match !prev with
        | Some (pa, pi, plen) ->
            flush pa (Some pi) (Int64.add pa (Int64.of_int plen))
        | None -> ());
        cur := Some (a, 0, 0)
      end;
      (match !cur with
      | Some (bstart, bytes, count) ->
          cur := Some (bstart, bytes + len, count + 1)
      | None -> cur := Some (a, len, 1));
      (* a terminator closes the block immediately *)
      (match Decode.control_of i with
      | Decode.C_fall -> ()
      | _ -> flush a (Some i) after);
      prev := Some (a, i, len))
    sorted_insns;
  (match !prev with
  | Some (pa, pi, plen) -> flush pa (Some pi) (Int64.add pa (Int64.of_int plen))
  | None -> ());
  let blocks = List.rev !blocks in
  (* ---- unreached gaps ---------------------------------------------- *)
  let unreached = ref [] in
  let gap_start = ref (-1) in
  for b = 0 to text_len - 1 do
    if owner.(b) = -1 then begin
      if !gap_start = -1 then gap_start := b
    end
    else if !gap_start >= 0 then begin
      unreached :=
        (Int64.add t_lo (Int64.of_int !gap_start), b - !gap_start)
        :: !unreached;
      gap_start := -1
    end
  done;
  if !gap_start >= 0 then
    unreached :=
      (Int64.add t_lo (Int64.of_int !gap_start), text_len - !gap_start)
      :: !unreached;
  let coverage = Array.fold_left (fun n o -> if o >= 0 then n + 1 else n) 0 owner in
  let cmp2 (a1, b1) (a2, b2) =
    match Int64.unsigned_compare a1 a2 with
    | 0 -> Int64.unsigned_compare b1 b2
    | c -> c
  in
  {
    image = img;
    text_lo = t_lo;
    text_hi = t_hi;
    insns;
    weak;
    owner;
    blocks;
    entries =
      uniq_sorted
        (fun (a1, k1) (a2, k2) ->
          match Int64.unsigned_compare a1 a2 with
          | 0 -> compare k1 k2
          | c -> c)
        !entries;
    calls = uniq_sorted cmp2 !calls;
    frontier =
      uniq_sorted
        (fun f1 f2 ->
          match Int64.unsigned_compare f1.fr_addr f2.fr_addr with
          | 0 -> compare f1.fr_reason f2.fr_reason
          | c -> c)
        !frontier;
    tables = tables_l;
    unreached = List.rev !unreached;
    raw =
      {
        r_overlaps = uniq_sorted cmp2 !overlaps;
        r_targets = uniq_sorted cmp2 !targets;
        r_stores =
          uniq_sorted
            (fun (a1, b1, c1) (a2, b2, c2) ->
              match cmp2 (a1, b1) (a2, b2) with
              | 0 -> compare c1 c2
              | c -> c)
            !stores;
        r_loads =
          uniq_sorted
            (fun (a1, b1, c1) (a2, b2, c2) ->
              match cmp2 (a1, b1) (a2, b2) with
              | 0 -> compare c1 c2
              | c -> c)
            !loads;
        r_truncated = uniq_sorted cmp2 !truncated;
      };
    n_insns = Hashtbl.length insns;
    n_weak = Hashtbl.length weak;
    coverage_bytes = coverage;
  }

(** Sorted strong block starts — the AOT seeding order. *)
let block_starts (t : t) : int64 list = List.map (fun b -> b.bk_addr) t.blocks

let n_edges (t : t) : int =
  List.fold_left (fun n b -> n + List.length b.bk_succs) 0 t.blocks
