(** Hand-written hostile guest images for exercising the static lints.

    Each fixture is a small VG32 image built to trigger one hostile-code
    class.  Where the code is runnable, the hostile construct is guarded
    so execution stays well-defined and exits with a known code — the
    test suite runs those fixtures through both the reference
    interpreter and the native executor and checks differential
    agreement, proving the scanner flags code that executors accept. *)

type fixture = {
  fx_name : string;
  fx_image : Guest.Image.t;
  fx_expect : string list;  (** finding classes that must appear *)
  fx_runnable : int option;  (** expected exit code, when runnable *)
}

(* Two instruction streams over the same bytes.  The taken branch lands
   two bytes into the [movi r2, 0x3101] whose immediate bytes re-decode
   as [mov r3, r1; nop; nop], re-merging with the straight stream at the
   next instruction — both paths are valid code, so this runs cleanly
   while sharing text bytes between streams. *)
let overlap_src =
  {|
_start:
    movi r1, 1
    cmpi r1, 1
    jeq over+2
over:
    movi r2, 0x3101
merge:
    movi r0, 1
    movi r1, 6
    syscall
|}

(* A (dynamically never-taken) branch into the immediate of a movi. *)
let midinsn_src =
  {|
_start:
    movi r1, 0
    cmpi r1, 1
    jeq hold+2
hold:
    movi r2, 0xFFFFFFFF
    movi r0, 1
    movi r1, 5
    syscall
|}

(* The canonical bounded jump-table dispatch: bound check, table load,
   indirect jump.  The scanner must recognise the table and root every
   entry. *)
let jumptable_src =
  {|
_start:
    movi r1, 2
    cmpi r1, 4
    jae default
    ldw r2, [tbl+r1*4]
    jmpr r2
case0:
    movi r3, 10
    jmp done
case1:
    movi r3, 11
    jmp done
case2:
    movi r3, 12
    jmp done
case3:
    movi r3, 13
    jmp done
default:
    movi r3, 99
done:
    movi r0, 1
    mov r1, r3
    syscall

    .data
tbl:
    .word case0, case1, case2, case3
|}

(* A store aimed at the image's own text (a static SMC candidate),
   guarded so it never actually executes. *)
let smc_src =
  {|
_start:
    movi r1, 0
    cmpi r1, 0
    jeq skip
    stb [patch], r1
patch:
    nop
skip:
    movi r0, 1
    movi r1, 3
    syscall
|}

(* A (never-executed) direct jump clean out of the image. *)
let badtarget_src =
  {|
_start:
    movi r1, 0
    cmpi r1, 0
    jeq ok
    jmp 0xDEAD0000
ok:
    movi r0, 1
    movi r1, 4
    syscall
|}

(* Text that ends in the middle of an instruction: [nop] followed by
   the first two bytes of a movi.  Built from raw bytes — no assembler
   will emit this. *)
let truncated_image () : Guest.Image.t =
  let text = Bytes.of_string "\x00\x02\x01" in
  let text_addr = Guest.Image.default_text_base in
  {
    Guest.Image.text_addr;
    text;
    data_addr = Guest.Image.round_page (Int64.add text_addr 3L);
    data = Bytes.create 0;
    bss_len = 0;
    entry = text_addr;
    symbols = [ ("_start", text_addr) ];
  }

let all () : fixture list =
  let asm name src = (name, Guest.Asm.assemble src) in
  let n1, i1 = asm "overlap-exec" overlap_src in
  let n2, i2 = asm "midinsn-branch" midinsn_src in
  let n3, i3 = asm "jump-table" jumptable_src in
  let n4, i4 = asm "smc-stub" smc_src in
  let n5, i5 = asm "bad-target" badtarget_src in
  [
    {
      fx_name = n1;
      fx_image = i1;
      fx_expect = [ "overlap"; "mid-insn-jump" ];
      fx_runnable = Some 6;
    };
    {
      fx_name = n2;
      fx_image = i2;
      fx_expect = [ "mid-insn-jump" ];
      fx_runnable = Some 5;
    };
    {
      fx_name = n3;
      fx_image = i3;
      fx_expect = [ "jump-table" ];
      fx_runnable = Some 12;
    };
    {
      fx_name = n4;
      fx_image = i4;
      fx_expect = [ "smc-write" ];
      fx_runnable = Some 3;
    };
    {
      fx_name = n5;
      fx_image = i5;
      fx_expect = [ "bad-target" ];
      fx_runnable = Some 4;
    };
    {
      fx_name = "truncated-text";
      fx_image = truncated_image ();
      fx_expect = [ "truncated" ];
      fx_runnable = None;
    };
  ]
