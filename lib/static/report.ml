(** Deterministic reports over a scan: machine JSON and a human view.

    Both forms are pure functions of the (already fully sorted) scan
    result, so the same image always serialises to the identical byte
    string — the CI scanner job asserts this by running every workload
    twice and comparing outputs bit for bit. *)

let hex (a : int64) = Printf.sprintf "0x%Lx" a

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** Machine-readable scan report.  [blocks] additionally embeds the full
    basic-block list (large for real workloads; the fixture golden uses
    it). *)
let to_json ?(blocks = false) (cfg : Cfg.t) (findings : Lint.finding list) :
    string =
  let open Cfg in
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"text_lo\": \"%s\",\n" (hex cfg.text_lo);
  add "  \"text_len\": %Ld,\n" (Int64.sub cfg.text_hi cfg.text_lo);
  add "  \"entry\": \"%s\",\n" (hex cfg.image.Guest.Image.entry);
  add "  \"insns\": %d,\n" cfg.n_insns;
  add "  \"weak_insns\": %d,\n" cfg.n_weak;
  add "  \"coverage_bytes\": %d,\n" cfg.coverage_bytes;
  add "  \"blocks\": %d,\n" (List.length cfg.blocks);
  add "  \"edges\": %d,\n" (n_edges cfg);
  add "  \"entries\": %d,\n" (List.length cfg.entries);
  add "  \"calls\": %d,\n" (List.length cfg.calls);
  add "  \"tables\": %d,\n" (List.length cfg.tables);
  add "  \"frontier\": %d,\n" (List.length cfg.frontier);
  add "  \"unreached\": [";
  List.iteri
    (fun i (a, len) ->
      add "%s{\"addr\": \"%s\", \"len\": %d}"
        (if i = 0 then "" else ", ")
        (hex a) len)
    cfg.unreached;
  add "],\n";
  add "  \"findings\": [";
  List.iteri
    (fun i (f : Lint.finding) ->
      add "%s\n    {\"class\": \"%s\", \"addr\": \"%s\", \"aux\": \"%s\", \"msg\": \"%s\"}"
        (if i = 0 then "" else ",")
        (json_escape f.Lint.f_class)
        (hex f.Lint.f_addr) (hex f.Lint.f_aux)
        (json_escape f.Lint.f_msg))
    findings;
  add "%s],\n" (if findings = [] then "" else "\n  ");
  if blocks then begin
    add "  \"block_list\": [";
    List.iteri
      (fun i blk ->
        add "%s\n    {\"addr\": \"%s\", \"len\": %d, \"insns\": %d, \"term\": \"%s\", \"succs\": ["
          (if i = 0 then "" else ",")
          (hex blk.bk_addr) blk.bk_len blk.bk_insns
          (json_escape blk.bk_term);
        List.iteri
          (fun j (s, k) ->
            add "%s{\"addr\": \"%s\", \"kind\": \"%s\"}"
              (if j = 0 then "" else ", ")
              (hex s) (edge_name k))
          blk.bk_succs;
        add "]}")
      cfg.blocks;
    add "%s],\n" (if cfg.blocks = [] then "" else "\n  ")
  end;
  add "  \"finding_classes\": [";
  List.iteri
    (fun i c -> add "%s\"%s\"" (if i = 0 then "" else ", ") (json_escape c))
    (Lint.classes_of findings);
  add "]\n}\n";
  Buffer.contents b

(** Human-readable summary for the terminal. *)
let human (cfg : Cfg.t) (findings : Lint.finding list) : string =
  let open Cfg in
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let text_len = Int64.to_int (Int64.sub cfg.text_hi cfg.text_lo) in
  add "vgscan: text %s..%s (%d bytes)\n" (hex cfg.text_lo) (hex cfg.text_hi)
    text_len;
  add "  %d instructions (%d weak), %d/%d bytes reached (%.1f%%)\n"
    cfg.n_insns cfg.n_weak cfg.coverage_bytes text_len
    (if text_len = 0 then 100.0
     else 100.0 *. float_of_int cfg.coverage_bytes /. float_of_int text_len);
  add "  %d blocks, %d edges, %d calls, %d entries\n"
    (List.length cfg.blocks) (n_edges cfg) (List.length cfg.calls)
    (List.length cfg.entries);
  add "  %d jump tables, %d frontier sites, %d unreached gaps\n"
    (List.length cfg.tables) (List.length cfg.frontier)
    (List.length cfg.unreached);
  if findings = [] then add "  no findings\n"
  else begin
    add "  %d findings:\n" (List.length findings);
    List.iter
      (fun (f : Lint.finding) ->
        add "    [%s] %s: %s\n" f.Lint.f_class (hex f.Lint.f_addr)
          f.Lint.f_msg)
      findings
  end;
  Buffer.contents b
