(** Hostile-code lints over a recovered static CFG.

    Every check reads only {e strongly} reached facts from {!Cfg.t} —
    weakly (address-taken) decoded bytes never produce findings, so a
    constant that happens to point into text cannot cause a false
    positive.  The benign corpus gate in [vglint]/[vgscan selfcheck]
    asserts an empty finding list for every minicc workload. *)

type finding = {
  f_class : string;
  f_addr : int64;  (** primary site (instruction address) *)
  f_aux : int64;  (** secondary address or count; [0L] when unused *)
  f_msg : string;
}

(** All classes a scan can emit, for registration in lint drivers. *)
let classes =
  [
    "overlap";
    "mid-insn-jump";
    "bad-target";
    "smc-write";
    "truncated";
    "jump-table";
    "jump-table-density";
    "indirect-unresolved";
    "text-read";
    "timing-probe";
    "sp-pivot";
  ]

(* How many recognised-or-unresolved indirect-dispatch sites make an
   image "jump-table heavy". *)
let density_threshold = 4

let hex (a : int64) = Printf.sprintf "0x%Lx" a

(** Is [tgt] inside the byte range of a decoded instruction, without
    being an instruction start?  Instructions are at most 10 bytes. *)
let mid_insn (cfg : Cfg.t) (tgt : int64) : int64 option =
  let rec probe d =
    if d > 9 then None
    else
      let a = Int64.sub tgt (Int64.of_int d) in
      match Hashtbl.find_opt cfg.Cfg.insns a with
      | Some (_, len) when len > d -> Some a
      | _ -> probe (d + 1)
  in
  probe 1

let run (cfg : Cfg.t) : finding list =
  let open Cfg in
  let t_lo = cfg.text_lo and t_hi = cfg.text_hi in
  let text_len = Int64.to_int (Int64.sub t_hi t_lo) in
  let fs = ref [] in
  let emit f_class f_addr f_aux f_msg =
    fs := { f_class; f_addr; f_aux; f_msg } :: !fs
  in
  (* overlapping instruction sequences: two decode streams claim the
     same text bytes *)
  List.iter
    (fun (first, second) ->
      emit "overlap" second first
        (Printf.sprintf "instruction stream at %s shares bytes with the one at %s"
           (hex second) (hex first)))
    cfg.raw.r_overlaps;
  (* direct jump/branch/call targets: out of image, or into the middle
     of a decoded instruction *)
  List.iter
    (fun (site, tgt) ->
      if not (in_text t_lo t_hi tgt) then
        emit "bad-target" site tgt
          (Printf.sprintf "direct target %s is outside the text image"
             (hex tgt))
      else
        match mid_insn cfg tgt with
        | Some hold ->
            emit "mid-insn-jump" site tgt
              (Printf.sprintf
                 "target %s lands inside the instruction at %s" (hex tgt)
                 (hex hold))
        | None -> ())
    cfg.raw.r_targets;
  (* statically evaluable stores into executable bytes (SMC candidates);
     the text range intersection reuses the dataflow range algebra *)
  List.iter
    (fun (site, ea, width) ->
      if
        Verify.Dataflow.ranges_overlap
          (Int64.to_int ea, width)
          (Int64.to_int t_lo, text_len)
      then
        emit "smc-write" site ea
          (Printf.sprintf "%d-byte store to %s targets executable text"
             width (hex ea)))
    cfg.raw.r_stores;
  (* statically evaluable loads from executable bytes: the program reads
     its own code — integrity checksums, unpacker key material (vgfuzz's
     selfdecrypt hostile guest is the canonical instance) *)
  List.iter
    (fun (site, ea, width) ->
      if
        Verify.Dataflow.ranges_overlap
          (Int64.to_int ea, width)
          (Int64.to_int t_lo, text_len)
      then
        emit "text-read" site ea
          (Printf.sprintf "%d-byte load from %s reads executable text"
             width (hex ea)))
    cfg.raw.r_loads;
  (* timing probe: two or more static getcycles call sites (movi r0, 21
     immediately followed by syscall).  One read is ordinary profiling;
     two make a delta, and branching on a clock delta is the classic
     instrumentation detector. *)
  (let sites = ref [] in
   Hashtbl.iter
     (fun a (i, len) ->
       match i with
       | Guest.Arch.Movi (0, 21L) -> (
           match
             Hashtbl.find_opt cfg.insns (Int64.add a (Int64.of_int len))
           with
           | Some (Guest.Arch.Syscall, _) -> sites := a :: !sites
           | _ -> ())
       | _ -> ())
     cfg.insns;
   let sites = List.sort Int64.unsigned_compare !sites in
   match sites with
   | first :: _ :: _ ->
       emit "timing-probe" first (Int64.of_int (List.length sites))
         (Printf.sprintf
            "%d static getcycles sites: the program can measure its own \
             slow-down"
            (List.length sites))
   | _ -> ());
  (* stack pivot: sp written from something other than fp or sp-relative
     arithmetic.  Compiled code only ever moves fp back into sp or
     adjusts sp by an immediate; loading sp from a general register or a
     constant is the ROP/stack-switch signature. *)
  Hashtbl.iter
    (fun a (i, _len) ->
      let open Guest.Arch in
      let pivot =
        match i with
        | Mov (d, s) -> d = reg_sp && s <> reg_fp && s <> reg_sp
        | Movi (d, _) -> d = reg_sp
        | Lea (d, m) -> d = reg_sp && m.base <> Some reg_sp
        | _ -> false
      in
      if pivot then
        emit "sp-pivot" a 0L
          (Printf.sprintf
             "sp is loaded at %s from outside the frame discipline" (hex a)))
    cfg.insns;
  (* instructions straddling the end of text mid-image *)
  List.iter
    (fun (start, fault) ->
      emit "truncated" start fault
        (Printf.sprintf
           "instruction at %s is cut off at %s before the text end"
           (hex start) (hex fault)))
    cfg.raw.r_truncated;
  (* recognised jump tables (informational but reportable: dispatch the
     JIT will resolve only dynamically) *)
  List.iter
    (fun tb ->
      emit "jump-table" tb.tb_jump tb.tb_base
        (Printf.sprintf "%s jump table at %s with %d in-text entries"
           (if tb.tb_bounded then "bounded" else "unbounded")
           (hex tb.tb_base)
           (List.length tb.tb_entries)))
    cfg.tables;
  (* unresolved indirect jumps: the static CFG is open there *)
  List.iter
    (fun it ->
      match it.fr_reason with
      | F_jmpi ->
          emit "indirect-unresolved" it.fr_addr 0L
            (Printf.sprintf
               "indirect jump at %s matches no recognised table pattern"
               (hex it.fr_addr))
      | F_calli -> ())
    cfg.frontier;
  (* dispatch density: many indirect-dispatch sites in one image *)
  let dispatch_sites =
    List.map (fun tb -> tb.tb_jump) cfg.tables
    @ List.filter_map
        (fun it -> if it.fr_reason = F_jmpi then Some it.fr_addr else None)
        cfg.frontier
  in
  (if List.length dispatch_sites >= density_threshold then
     let first =
       List.fold_left min (List.hd dispatch_sites) dispatch_sites
     in
     emit "jump-table-density" first
       (Int64.of_int (List.length dispatch_sites))
       (Printf.sprintf "%d indirect-dispatch sites in one image"
          (List.length dispatch_sites)));
  List.sort
    (fun a b ->
      match compare a.f_class b.f_class with
      | 0 -> (
          match Int64.unsigned_compare a.f_addr b.f_addr with
          | 0 -> Int64.unsigned_compare a.f_aux b.f_aux
          | c -> c)
      | c -> c)
    !fs

(** The distinct classes present in a finding list, sorted. *)
let classes_of (fs : finding list) : string list =
  List.sort_uniq compare (List.map (fun f -> f.f_class) fs)
