(** VG32 instruction decoder.

    Decodes from any byte source (a [fetch] function), so it is shared by
    the JIT disassembler (phase 1, fetching through the address space with
    execute permission) and by the guest reference interpreter.  An
    unknown opcode decodes to [Ud] so that the translator can emit a
    SIGILL exit rather than failing (paper: Valgrind must keep control on
    all code, including garbage jumped to by a buggy client). *)

open Arch

type fetch = int64 -> int (* address -> unsigned byte *)

exception Truncated (* fetch faulted: page not executable/mapped *)

exception Truncated_at of int64
(** Like {!Truncated}, but carries the exact unfetchable byte address, so
    an instruction straddling an image or mapping boundary is reported at
    the byte that faulted rather than "somewhere in this block".  Raised
    by {!decode_exact} and {!iter_block}. *)

let alu_of_index = function
  | 0 -> ADD | 1 -> SUB | 2 -> AND | 3 -> OR | 4 -> XOR | 5 -> SHL
  | 6 -> SHR | 7 -> SAR | 8 -> MUL | 9 -> DIVS | 10 -> DIVU
  | _ -> invalid_arg "alu_of_index"

let falu_of_index = function
  | 0 -> FADD | 1 -> FSUB | 2 -> FMUL | 3 -> FDIV | 4 -> FMIN | 5 -> FMAX
  | _ -> invalid_arg "falu_of_index"

let fun1_of_index = function
  | 0 -> FSQRT | 1 -> FNEG | 2 -> FABS | _ -> invalid_arg "fun1_of_index"

let valu_of_index = function
  | 0 -> VAND | 1 -> VOR | 2 -> VXOR | 3 -> VADD32 | 4 -> VSUB32
  | 5 -> VCMPEQ32 | 6 -> VADD8 | 7 -> VSUB8
  | _ -> invalid_arg "valu_of_index"

(** [decode fetch addr] decodes the instruction at [addr]; returns the
    instruction and its encoded length. *)
let decode (fetch : fetch) (addr : int64) : insn * int =
  let pos = ref addr in
  let u8 () =
    let b = fetch !pos in
    pos := Int64.add !pos 1L;
    b
  in
  let u32 () =
    let a = u8 () in
    let b = u8 () in
    let c = u8 () in
    let d = u8 () in
    Int64.of_int (a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24))
  in
  let u64 () =
    let lo = u32 () in
    let hi = u32 () in
    Int64.logor lo (Int64.shift_left hi 32)
  in
  let rr () =
    let b = u8 () in
    ((b lsr 4) land 0xF, b land 0xF)
  in
  let mem () =
    let mode = u8 () in
    let base = if mode land 0x80 <> 0 then Some (mode land 7) else None in
    let index =
      if mode land 0x40 <> 0 then begin
        let scale = 1 lsl ((mode lsr 4) land 3) in
        let i = u8 () in
        Some (i land 7, scale)
      end
      else None
    in
    let disp = u32 () in
    { base; index; disp }
  in
  let r_mem () =
    let r = u8 () in
    let m = mem () in
    (r land 0xF, m)
  in
  let opcode = u8 () in
  let insn =
    match opcode with
    | 0x00 -> Nop
    | 0x01 ->
        let d, s = rr () in
        Mov (d, s)
    | 0x02 ->
        let d = u8 () in
        Movi (d land 7, u32 ())
    | 0x03 ->
        let d, m = r_mem () in
        Lea (d, m)
    | 0x04 ->
        let d, m = r_mem () in
        Ld (W1, Zx, d, m)
    | 0x05 ->
        let d, m = r_mem () in
        Ld (W1, Sx, d, m)
    | 0x06 ->
        let d, m = r_mem () in
        Ld (W2, Zx, d, m)
    | 0x07 ->
        let d, m = r_mem () in
        Ld (W2, Sx, d, m)
    | 0x08 ->
        let d, m = r_mem () in
        Ld (W4, Zx, d, m)
    | 0x09 ->
        let s, m = r_mem () in
        St (W1, m, s)
    | 0x0A ->
        let s, m = r_mem () in
        St (W2, m, s)
    | 0x0B ->
        let s, m = r_mem () in
        St (W4, m, s)
    | op when op >= 0x10 && op <= 0x1A ->
        let d, s = rr () in
        Alu (alu_of_index (op - 0x10), d, s)
    | op when op >= 0x20 && op <= 0x2A ->
        let d = u8 () in
        Alui (alu_of_index (op - 0x20), d land 7, u32 ())
    | 0x30 ->
        let a, b = rr () in
        Cmp (a, b)
    | 0x31 ->
        let a = u8 () in
        Cmpi (a land 7, u32 ())
    | 0x32 ->
        let a, b = rr () in
        Test (a, b)
    | 0x33 ->
        let d, _ = rr () in
        Inc d
    | 0x34 ->
        let d, _ = rr () in
        Dec d
    | 0x35 ->
        let d, _ = rr () in
        Neg d
    | 0x36 ->
        let d, _ = rr () in
        Not d
    | 0x37 ->
        let c, d = rr () in
        if c > 11 then Ud else Setcc (Flags.cond_of_int c, d)
    | 0x38 ->
        let c = u8 () in
        let target = u32 () in
        if c land 0xF > 11 then Ud else Jcc (Flags.cond_of_int (c land 0xF), target)
    | 0x39 -> Jmp (u32 ())
    | 0x3A ->
        let s, _ = rr () in
        Jmpi s
    | 0x3B -> Call (u32 ())
    | 0x3C ->
        let s, _ = rr () in
        Calli s
    | 0x3D -> Ret
    | 0x3E ->
        let s, _ = rr () in
        Push s
    | 0x3F -> Pushi (u32 ())
    | 0x40 ->
        let d, _ = rr () in
        Pop d
    | 0x41 -> Sysinfo
    | 0x42 -> Syscall
    | 0x43 -> Clreq
    | 0x50 ->
        let d, m = r_mem () in
        Fld (d, m)
    | 0x51 ->
        let s, m = r_mem () in
        Fst (m, s)
    | 0x52 ->
        let d, s = rr () in
        Fmovr (d, s)
    | 0x53 ->
        let d = u8 () in
        Fldi (d land 3, Support.Bits.float_of_bits (u64 ()))
    | op when op >= 0x54 && op <= 0x59 ->
        let d, s = rr () in
        Falu (falu_of_index (op - 0x54), d, s)
    | op when op >= 0x5A && op <= 0x5C ->
        let d, s = rr () in
        Fun1 (fun1_of_index (op - 0x5A), d, s)
    | 0x5D ->
        let a, b = rr () in
        Fcmp (a, b)
    | 0x5E ->
        let d, s = rr () in
        Fitod (d, s)
    | 0x5F ->
        let d, s = rr () in
        Fdtoi (d, s)
    | 0x60 ->
        let d, m = r_mem () in
        Vld (d, m)
    | 0x61 ->
        let s, m = r_mem () in
        Vst (m, s)
    | 0x62 ->
        let d, s = rr () in
        Vmovr (d, s)
    | op when op >= 0x63 && op <= 0x6A ->
        let d, s = rr () in
        Valu (valu_of_index (op - 0x63), d, s)
    | 0x6B ->
        let d, s = rr () in
        Vsplat (d, s)
    | 0x6C ->
        let d, s = rr () in
        let lane = u8 () in
        Vextr (d, s, lane land 3)
    | _ -> Ud
  in
  (insn, Int64.to_int (Int64.sub !pos addr))

(* ------------------------------------------------------------------ *)
(* Block-decoding iterator                                              *)
(* ------------------------------------------------------------------ *)

(** How an instruction transfers control — the classification both the
    reference interpreter's decode cache and the Vgscan static scanner
    use to delimit straight-line runs, so the two always agree on where
    a block ends. *)
type control =
  | C_fall  (** execution continues at the next instruction only *)
  | C_jump of int64  (** unconditional direct jump *)
  | C_branch of int64  (** conditional: taken target, else fallthrough *)
  | C_call of int64  (** direct call; execution resumes at the return site *)
  | C_call_ind of int  (** indirect call through a register *)
  | C_jump_ind of int  (** indirect jump through a register *)
  | C_ret
  | C_stop  (** [Ud]: decoding past it is meaningless *)

let control_of (i : insn) : control =
  match i with
  | Jmp t -> C_jump t
  | Jcc (_, t) -> C_branch t
  | Call t -> C_call t
  | Calli r -> C_call_ind r
  | Jmpi r -> C_jump_ind r
  | Ret -> C_ret
  | Ud -> C_stop
  | _ -> C_fall

(** [decode_exact fetch addr] is {!decode}, but a fetch fault —
    [Truncated] from a synthetic byte source or [Aspace.Fault] from the
    address space — is reported as [Truncated_at a] where [a] is the
    exact byte that could not be fetched. *)
let decode_exact (fetch : fetch) (addr : int64) : insn * int =
  let f a =
    try fetch a with Truncated | Aspace.Fault _ -> raise (Truncated_at a)
  in
  decode f addr

(** Why {!iter_block} stopped decoding. *)
type stop =
  | S_control of control  (** the run ended at a control-flow instruction *)
  | S_limit  (** the instruction budget ran out mid-run *)
  | S_known  (** [stop_before] recognised the next address *)
  | S_truncated of int64
      (** a later instruction was unfetchable at this exact byte; every
          complete instruction before it was delivered *)

(** [iter_block ?limit ?stop_before fetch addr f] decodes the
    straight-line run starting at [addr], calling [f addr insn len] for
    every complete instruction, and returns the address one past the
    last delivered instruction together with the reason the run ended
    (for [S_truncated] the returned address is the start of the partial
    instruction).  [stop_before] is consulted before each instruction
    after the first — the interpreter passes its decode-cache membership,
    the scanner its already-decoded set, so neither re-decodes shared
    tails.  A fetch fault on the very first instruction raises
    {!Truncated_at}: the caller got nothing. *)
let iter_block ?(limit = max_int) ?(stop_before = fun _ -> false)
    (fetch : fetch) (addr : int64) (f : int64 -> insn -> int -> unit) :
    int64 * stop =
  let pc = ref addr and n = ref 0 in
  let result = ref None in
  while !result = None do
    if !n > 0 && stop_before !pc then result := Some S_known
    else if !n >= limit then result := Some S_limit
    else
      match decode_exact fetch !pc with
      | exception Truncated_at a ->
          if !n = 0 then raise (Truncated_at a)
          else result := Some (S_truncated a)
      | insn, len ->
          f !pc insn len;
          incr n;
          pc := Int64.add !pc (Int64.of_int len);
          (match control_of insn with
          | C_fall -> ()
          | c -> result := Some (S_control c))
  done;
  (!pc, Option.get !result)
