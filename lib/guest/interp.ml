(** VG32 reference interpreter — the simulated "native CPU".

    Running a program directly on this interpreter is the baseline
    ("Nat." column of Table 2); running it under the Valgrind core means
    JIT-compiling it to VH64 host code instead, and the ratio of the two
    cycle counters is the slow-down factor.

    The interpreter maintains the flags thunk lazily with exactly the same
    {!Flags} functions the JIT's helpers use, so the two executions agree
    bit-for-bit on every architectural value. *)

open Arch
open Support

type state = {
  regs : int64 array;  (** r0..r7; 32-bit values zero-extended *)
  mutable eip : int64;
  mutable cc_op : int64;
  mutable cc_dep1 : int64;
  mutable cc_dep2 : int64;
  mutable cc_ndep : int64;
  fregs : float array;  (** f0..f3 *)
  vregs : V128.t array;  (** v0..v3 *)
  mem : Aspace.t;
  mutable cycles : int64;  (** simulated native cycles *)
  mutable insns_retired : int64;
}

(** Raised when the guest executes an undefined opcode. *)
exception Sigill of int64

(** Raised on integer division by zero. *)
exception Sigfpe of int64

let create mem =
  {
    regs = Array.make n_regs 0L;
    eip = 0L;
    cc_op = Flags.cc_op_copy;
    cc_dep1 = 0L;
    cc_dep2 = 0L;
    cc_ndep = 0L;
    fregs = Array.make n_fregs 0.0;
    vregs = Array.make n_vregs V128.zero;
    mem;
    cycles = 0L;
    insns_retired = 0L;
  }

let get_reg st r = st.regs.(r)
let set_reg st r v = st.regs.(r) <- Bits.trunc32 v

(** Current flags word, materialised from the thunk. *)
let flags st =
  Flags.calculate ~op:st.cc_op ~dep1:st.cc_dep1 ~dep2:st.cc_dep2
    ~ndep:st.cc_ndep

let set_thunk st ~op ~dep1 ~dep2 ~ndep =
  st.cc_op <- op;
  st.cc_dep1 <- dep1;
  st.cc_dep2 <- dep2;
  st.cc_ndep <- ndep

(** [sysinfo] semantics (shared with the JIT's dirty helper): leaf in r0,
    results in (r0, r1). *)
let sysinfo_result (leaf : int64) : int64 * int64 =
  match Int64.to_int (Bits.trunc32 leaf) with
  | 0 -> (0x56473332L, 1L) (* "VG32", version 1 *)
  | 1 -> (0x7L, 0L) (* feature bits: int|fp|simd *)
  | _ -> (0L, 0L)

(** Effective address of a memory operand. *)
let ea st (m : mem) : int64 =
  let base = match m.base with Some b -> st.regs.(b) | None -> 0L in
  let idx =
    match m.index with
    | Some (i, s) -> Int64.mul st.regs.(i) (Int64.of_int s)
    | None -> 0L
  in
  Bits.trunc32 (Int64.add (Int64.add base idx) m.disp)

(* Cycle cost of one instruction, on the simple in-order native model. *)
let cost (i : insn) : int =
  match i with
  | Alu ((MUL | DIVS | DIVU), _, _) | Alui ((MUL | DIVS | DIVU), _, _) -> (
      match i with
      | Alu (MUL, _, _) | Alui (MUL, _, _) -> 3
      | _ -> 20)
  | Falu (FDIV, _, _) -> 16
  | Fun1 (FSQRT, _, _) -> 16
  | Falu _ | Fun1 _ | Fcmp _ | Fitod _ | Fdtoi _ -> 3
  | Ld _ | St _ | Fld _ | Fst _ | Vld _ | Vst _ | Push _ | Pushi _ | Pop _ -> 2
  | Call _ | Calli _ | Ret -> 2
  | Sysinfo -> 10
  | _ -> 1

type handlers = {
  on_syscall : state -> unit;
      (** invoked with [eip] already advanced past the [syscall] insn *)
  on_clreq : state -> unit;
      (** client request; default native behaviour is r0 := 0 *)
}

let default_handlers =
  { on_syscall = (fun _ -> ()); on_clreq = (fun st -> set_reg st 0 0L) }

(* Decode cache, invalidated on stores into cached pages (self-modifying
   code works natively too, which the SMC tests rely on). *)
type cached_interp = {
  st : state;
  dcache : (int64, insn * int) Hashtbl.t;
  cached_pages : (int, int64 list ref) Hashtbl.t;
}

let with_cache st =
  let t = { st; dcache = Hashtbl.create 4096; cached_pages = Hashtbl.create 64 } in
  Aspace.add_store_watch st.mem (fun addr _size ->
      let pi = Aspace.page_index addr in
      match Hashtbl.find_opt t.cached_pages pi with
      | None -> ()
      | Some addrs ->
          List.iter (Hashtbl.remove t.dcache) !addrs;
          Hashtbl.remove t.cached_pages pi);
  t

let decode_at (t : cached_interp) (addr : int64) : insn * int =
  match Hashtbl.find_opt t.dcache addr with
  | Some r -> r
  | None ->
      let cache a r =
        Hashtbl.replace t.dcache a r;
        let pi = Aspace.page_index a in
        match Hashtbl.find_opt t.cached_pages pi with
        | Some l -> l := a :: !l
        | None -> Hashtbl.replace t.cached_pages pi (ref [ a ])
      in
      (* Fill the cache a straight-line run at a time through the shared
         block iterator (the same loop the Vgscan static scanner walks),
         so the interpreter and the scanner agree on where a block ends.
         A fault on a later instruction just shortens the run; the first
         instruction re-decodes below so the fault surfaces exactly as a
         plain decode would raise it. *)
      (try
         ignore
           (Decode.iter_block ~limit:64
              ~stop_before:(Hashtbl.mem t.dcache)
              (Aspace.fetch_u8 t.st.mem) addr (fun a insn len ->
                cache a (insn, len)))
       with Decode.Truncated_at _ -> ());
      (match Hashtbl.find_opt t.dcache addr with
      | Some r -> r
      | None -> Decode.decode (Aspace.fetch_u8 t.st.mem) addr)

let alu_eval op (a : int64) (b : int64) ~at : int64 =
  match op with
  | ADD -> Bits.trunc32 (Int64.add a b)
  | SUB -> Bits.trunc32 (Int64.sub a b)
  | AND -> Int64.logand a b
  | OR -> Int64.logor a b
  | XOR -> Int64.logxor a b
  | SHL -> Bits.shl32 a b
  | SHR -> Bits.shr32 a b
  | SAR -> Bits.sar32 a b
  | MUL -> Bits.trunc32 (Int64.mul a b)
  | DIVS ->
      let d = Bits.sext32 b in
      if d = 0L then raise (Sigfpe at)
      else Bits.trunc32 (Int64.div (Bits.sext32 a) d)
  | DIVU -> if b = 0L then raise (Sigfpe at) else Bits.trunc32 (Int64.unsigned_div a b)

(* Set the flags thunk after an ALU op. *)
let alu_flags st op (a : int64) (b : int64) (res : int64) =
  let cc = Flags.cc_op_of_alu op in
  if cc = Flags.cc_op_add || cc = Flags.cc_op_sub then
    set_thunk st ~op:cc ~dep1:a ~dep2:b ~ndep:0L
  else if cc = Flags.cc_op_mul then
    let hi =
      Bits.trunc32 (Int64.shift_right (Int64.mul (Bits.sext32 a) (Bits.sext32 b)) 32)
    in
    set_thunk st ~op:cc ~dep1:res ~dep2:hi ~ndep:0L
  else set_thunk st ~op:cc ~dep1:res ~dep2:(Bits.trunc32 b) ~ndep:0L

let push st v =
  let sp = Bits.trunc32 (Int64.sub st.regs.(reg_sp) 4L) in
  st.regs.(reg_sp) <- sp;
  Aspace.write st.mem sp 4 v

let pop st =
  let sp = st.regs.(reg_sp) in
  let v = Aspace.read st.mem sp 4 in
  st.regs.(reg_sp) <- Bits.trunc32 (Int64.add sp 4L);
  v

let step_inner (t : cached_interp) (h : handlers) : unit =
  let st = t.st in
  let at = st.eip in
  let insn, len = decode_at t at in
  st.cycles <- Int64.add st.cycles (Int64.of_int (cost insn));
  st.insns_retired <- Int64.add st.insns_retired 1L;
  let next = Bits.trunc32 (Int64.add at (Int64.of_int len)) in
  st.eip <- next;
  match insn with
  | Nop -> ()
  | Mov (d, s) -> st.regs.(d) <- st.regs.(s)
  | Movi (d, imm) -> set_reg st d imm
  | Lea (d, m) -> st.regs.(d) <- ea st m
  | Ld (w, sx, d, m) ->
      let a = ea st m in
      let size = match w with W1 -> 1 | W2 -> 2 | W4 -> 4 in
      let v = Aspace.read st.mem a size in
      let v =
        match (w, sx) with
        | W1, Sx -> Bits.trunc32 (Bits.sext8 v)
        | W2, Sx -> Bits.trunc32 (Bits.sext16 v)
        | _ -> v
      in
      st.regs.(d) <- v
  | St (w, m, s) ->
      let a = ea st m in
      let size = match w with W1 -> 1 | W2 -> 2 | W4 -> 4 in
      Aspace.write st.mem a size st.regs.(s)
  | Alu (op, d, s) ->
      let a = st.regs.(d) and b = st.regs.(s) in
      let res = alu_eval op a b ~at in
      st.regs.(d) <- res;
      alu_flags st op a b res
  | Alui (op, d, imm) ->
      let a = st.regs.(d) and b = Bits.trunc32 imm in
      let res = alu_eval op a b ~at in
      st.regs.(d) <- res;
      alu_flags st op a b res
  | Cmp (x, y) ->
      set_thunk st ~op:Flags.cc_op_sub ~dep1:st.regs.(x) ~dep2:st.regs.(y) ~ndep:0L
  | Cmpi (x, imm) ->
      set_thunk st ~op:Flags.cc_op_sub ~dep1:st.regs.(x) ~dep2:(Bits.trunc32 imm)
        ~ndep:0L
  | Test (x, y) ->
      set_thunk st ~op:Flags.cc_op_logic
        ~dep1:(Int64.logand st.regs.(x) st.regs.(y))
        ~dep2:0L ~ndep:0L
  | Inc d ->
      let old_flags = flags st in
      let res = Bits.trunc32 (Int64.add st.regs.(d) 1L) in
      st.regs.(d) <- res;
      set_thunk st ~op:Flags.cc_op_inc ~dep1:res ~dep2:0L ~ndep:old_flags
  | Dec d ->
      let old_flags = flags st in
      let res = Bits.trunc32 (Int64.sub st.regs.(d) 1L) in
      st.regs.(d) <- res;
      set_thunk st ~op:Flags.cc_op_dec ~dep1:res ~dep2:0L ~ndep:old_flags
  | Neg d ->
      let v = st.regs.(d) in
      let res = Bits.trunc32 (Int64.neg v) in
      st.regs.(d) <- res;
      set_thunk st ~op:Flags.cc_op_sub ~dep1:0L ~dep2:v ~ndep:0L
  | Not d -> st.regs.(d) <- Bits.trunc32 (Int64.lognot st.regs.(d))
  | Setcc (c, d) ->
      st.regs.(d) <- (if Flags.cond_holds c (flags st) then 1L else 0L)
  | Jcc (c, target) -> if Flags.cond_holds c (flags st) then st.eip <- target
  | Jmp target -> st.eip <- target
  | Jmpi s -> st.eip <- st.regs.(s)
  | Call target ->
      push st next;
      st.eip <- target
  | Calli s ->
      push st next;
      st.eip <- st.regs.(s)
  | Ret -> st.eip <- pop st
  | Push s -> push st st.regs.(s)
  | Pushi imm -> push st (Bits.trunc32 imm)
  | Pop d -> st.regs.(d) <- pop st
  | Sysinfo ->
      let r0, r1 = sysinfo_result st.regs.(0) in
      st.regs.(0) <- r0;
      st.regs.(1) <- r1
  | Syscall -> h.on_syscall st
  | Clreq -> h.on_clreq st
  | Fld (d, m) -> st.fregs.(d) <- Bits.float_of_bits (Aspace.read st.mem (ea st m) 8)
  | Fst (m, s) -> Aspace.write st.mem (ea st m) 8 (Bits.bits_of_float st.fregs.(s))
  | Fmovr (d, s) -> st.fregs.(d) <- st.fregs.(s)
  | Fldi (d, x) -> st.fregs.(d) <- x
  | Falu (op, d, s) ->
      let a = st.fregs.(d) and b = st.fregs.(s) in
      st.fregs.(d) <-
        (match op with
        | FADD -> a +. b
        | FSUB -> a -. b
        | FMUL -> a *. b
        | FDIV -> a /. b
        | FMIN -> Float.min a b
        | FMAX -> Float.max a b)
  | Fun1 (op, d, s) ->
      let a = st.fregs.(s) in
      st.fregs.(d) <-
        (match op with
        | FSQRT -> Float.sqrt a
        | FNEG -> -.a
        | FABS -> Float.abs a)
  | Fcmp (x, y) ->
      set_thunk st ~op:Flags.cc_op_fcmp
        ~dep1:(Flags.fcmp_code st.fregs.(x) st.fregs.(y))
        ~dep2:0L ~ndep:0L
  | Fitod (d, s) -> st.fregs.(d) <- Int64.to_float (Bits.sext32 st.regs.(s))
  | Fdtoi (d, s) ->
      st.regs.(d) <- Bits.trunc32 (Int64.of_float (Float.trunc st.fregs.(s)))
  | Vld (d, m) ->
      let a = ea st m in
      st.vregs.(d) <-
        V128.make ~lo:(Aspace.read st.mem a 8)
          ~hi:(Aspace.read st.mem (Int64.add a 8L) 8)
  | Vst (m, s) ->
      let a = ea st m in
      Aspace.write st.mem a 8 (V128.lo st.vregs.(s));
      Aspace.write st.mem (Int64.add a 8L) 8 (V128.hi st.vregs.(s))
  | Vmovr (d, s) -> st.vregs.(d) <- st.vregs.(s)
  | Valu (op, d, s) ->
      let a = st.vregs.(d) and b = st.vregs.(s) in
      st.vregs.(d) <-
        (match op with
        | VAND -> V128.logand a b
        | VOR -> V128.logor a b
        | VXOR -> V128.logxor a b
        | VADD32 -> V128.add32x4 a b
        | VSUB32 -> V128.sub32x4 a b
        | VCMPEQ32 -> V128.cmpeq32x4 a b
        | VADD8 -> V128.add8x16 a b
        | VSUB8 -> V128.sub8x16 a b)
  | Vsplat (d, s) -> st.vregs.(d) <- V128.splat32 st.regs.(s)
  | Vextr (d, s, lane) -> st.regs.(d) <- V128.get_lane32 st.vregs.(s) lane
  | Ud -> raise (Sigill at)

(** Execute exactly one instruction.  [eip] is advanced appropriately;
    syscall/clreq handlers see the post-instruction [eip].  If the
    instruction faults ({!Aspace.Fault}, {!Sigill}, {!Sigfpe}), [eip] is
    left at the faulting instruction so a signal handler sees the right
    PC. *)
let step (t : cached_interp) (h : handlers) : unit =
  let st = t.st in
  let at = st.eip in
  try step_inner t h
  with (Aspace.Fault _ | Sigill _ | Sigfpe _) as e ->
    st.eip <- at;
    raise e

(* ------------------------------------------------------------------ *)
(* One-shot external-state stepping                                     *)
(* ------------------------------------------------------------------ *)

(** How a single externally-backed step ended. *)
type external_outcome =
  | X_next  (** ordinary instruction; eip advanced *)
  | X_syscall  (** a [syscall] insn: the caller must run the kernel *)
  | X_clreq  (** a [clreq] insn: the caller must handle the request *)

(** Execute exactly one guest instruction against externally-owned
    architectural state: registers, eip, the flags thunk, float and
    vector registers are loaded through [get] (at the {!Arch} state
    offsets), and written back through [put] after the instruction
    retires.  This is the Valgrind core's last-resort degradation rung —
    when even the IR front end cannot process a block, the core steps
    the current thread's ThreadState one instruction at a time, then
    retries the JIT at the next block boundary.

    Returns [(cost_cycles, outcome)].  On a fault ({!Aspace.Fault},
    {!Sigill}, {!Sigfpe}) nothing is written back, so the external state
    still shows the faulting instruction's PC. *)
let step_external ~(mem : Aspace.t) ~(get : int -> int -> int64)
    ~(put : int -> int -> int64 -> unit) : int * external_outcome =
  let st = create mem in
  for r = 0 to n_regs - 1 do
    st.regs.(r) <- get (off_reg r) 4
  done;
  st.eip <- get off_eip 4;
  st.cc_op <- get off_cc_op 4;
  st.cc_dep1 <- get off_cc_dep1 4;
  st.cc_dep2 <- get off_cc_dep2 4;
  st.cc_ndep <- get off_cc_ndep 4;
  for f = 0 to n_fregs - 1 do
    st.fregs.(f) <- Bits.float_of_bits (get (off_freg f) 8)
  done;
  for v = 0 to n_vregs - 1 do
    st.vregs.(v) <-
      V128.make ~lo:(get (off_vreg v) 8) ~hi:(get (off_vreg v + 8) 8)
  done;
  let outcome = ref X_next in
  let h =
    {
      on_syscall = (fun _ -> outcome := X_syscall);
      on_clreq = (fun _ -> outcome := X_clreq);
    }
  in
  (* a one-shot private decode cache: never reused, no store watch *)
  let t = { st; dcache = Hashtbl.create 1; cached_pages = Hashtbl.create 1 } in
  step t h;
  for r = 0 to n_regs - 1 do
    put (off_reg r) 4 st.regs.(r)
  done;
  put off_eip 4 st.eip;
  put off_cc_op 4 st.cc_op;
  put off_cc_dep1 4 st.cc_dep1;
  put off_cc_dep2 4 st.cc_dep2;
  put off_cc_ndep 4 st.cc_ndep;
  for f = 0 to n_fregs - 1 do
    put (off_freg f) 8 (Bits.bits_of_float st.fregs.(f))
  done;
  for v = 0 to n_vregs - 1 do
    put (off_vreg v) 8 (V128.lo st.vregs.(v));
    put (off_vreg v + 8) 8 (V128.hi st.vregs.(v))
  done;
  (Int64.to_int st.cycles, !outcome)
