(** The guest C runtime, written in mini-C itself (plus a few lines of
    start-up assembly).

    It matters for the reproduction that the allocator is a real
    free-list allocator in guest code over [brk] (R8: "most programs use
    a heap allocator from a library that hands out heap blocks from
    larger chunks allocated with a system call ... each heap block
    typically has book-keeping data attached"): Memcheck redirects
    [malloc]/[free]/[calloc]/[realloc] away from this code, while native
    runs and non-heap tools execute it as-is.

    The [vg_*] functions are the guest-side client-request macros
    (the valgrind.h equivalent, §3.11). *)

let source = {|
/* ---- syscall veneers ---------------------------------------------- */

void exit(int code) { __syscall1(1, code); }
int write(int fd, char *buf, int len) { return __syscall3(2, fd, (int)buf, len); }
int read(int fd, char *buf, int len) { return __syscall3(3, fd, (int)buf, len); }
int open(char *name, int flags) { return __syscall2(4, (int)name, flags); }
int close(int fd) { return __syscall1(5, fd); }
int brk(int addr) { return __syscall1(6, addr); }
char *mmap(int len) { return (char *)__syscall2(7, 0, len); }
int munmap(char *addr, int len) { return __syscall2(8, (int)addr, len); }
char *mremap(char *addr, int oldlen, int newlen) {
  return (char *)__syscall3(9, (int)addr, oldlen, newlen);
}
int gettimeofday(int *tv, int *tz) { return __syscall2(10, (int)tv, (int)tz); }
int settimeofday(int *tv) { return __syscall1(11, (int)tv); }
int sigaction(int sig, int handler) { return __syscall2(12, sig, handler); }
int kill(int tid, int sig) { return __syscall2(13, tid, sig); }
int thread_create(int entry, int stack, int arg) {
  return __syscall3(15, entry, stack, arg);
}
void thread_exit() { __syscall0(16); }
void yield() { __syscall0(17); }
int getpid() { return __syscall0(18); }

/* ---- heap allocator (free list over brk) -------------------------- */

int __free_list = 0;
int __heap_end = 0;

char *__morecore(int n) {
  int cur;
  if (__heap_end == 0) { __heap_end = brk(0); }
  cur = __heap_end;
  __heap_end = cur + n;
  brk(__heap_end);
  return (char *)cur;
}

char *malloc(int n) {
  int *p;
  int *prev;
  int *blk;
  if (n < 1) { n = 1; }
  n = (n + 7) & ~7;
  prev = (int *)0;
  p = (int *)__free_list;
  while ((int)p != 0) {
    if (p[0] >= n) {
      if ((int)prev == 0) { __free_list = p[1]; } else { prev[1] = p[1]; }
      return (char *)(p + 2);
    }
    prev = p;
    p = (int *)p[1];
  }
  blk = (int *)__morecore(n + 8);
  blk[0] = n;
  blk[1] = 0;
  return (char *)(blk + 2);
}

void free(char *cp) {
  int *p;
  if ((int)cp == 0) { return; }
  p = (int *)cp - 2;
  p[1] = __free_list;
  __free_list = (int)p;
}

char *calloc(int nmemb, int size) {
  int n;
  char *p;
  n = nmemb * size;
  p = malloc(n);
  memset(p, 0, n);
  return p;
}

char *realloc(char *old, int n) {
  int *hdr;
  int oldsz;
  char *np;
  if ((int)old == 0) { return malloc(n); }
  hdr = (int *)old - 2;
  oldsz = hdr[0];
  if (oldsz >= n) { return old; }
  np = malloc(n);
  memcpy(np, old, oldsz);
  free(old);
  return np;
}

/* ---- string / memory ---------------------------------------------- */

int strlen(char *s) {
  int n;
  n = 0;
  while (s[n] != 0) { n = n + 1; }
  return n;
}

int strcmp(char *a, char *b) {
  int i;
  i = 0;
  while (a[i] != 0 && a[i] == b[i]) { i = i + 1; }
  return a[i] - b[i];
}

char *strcpy(char *dst, char *src) {
  int i;
  i = 0;
  while (src[i] != 0) { dst[i] = src[i]; i = i + 1; }
  dst[i] = 0;
  return dst;
}

char *memcpy(char *dst, char *src, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { dst[i] = src[i]; }
  return dst;
}

char *memset(char *dst, int c, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { dst[i] = (char)c; }
  return dst;
}

/* ---- formatted-ish output ----------------------------------------- */

void print_str(char *s) { write(1, s, strlen(s)); }
void putchar_(int c) {
  char b[4];
  b[0] = (char)c;
  write(1, b, 1);
}

void print_int(int n) {
  char buf[16];
  int i;
  int neg;
  i = 15;
  neg = 0;
  if (n < 0) { neg = 1; n = -n; }
  if (n == 0) { buf[i] = '0'; i = i - 1; }
  while (n > 0) {
    buf[i] = (char)('0' + n % 10);
    n = n / 10;
    i = i - 1;
  }
  if (neg) { buf[i] = '-'; i = i - 1; }
  write(1, &buf[i + 1], 15 - i);
}

void print_double(double x) {
  int whole;
  int frac;
  if (x < 0.0) { putchar_('-'); x = -x; }
  whole = (int)x;
  frac = (int)((x - (double)whole) * 1000000.0);
  print_int(whole);
  putchar_('.');
  /* zero-pad the fraction */
  if (frac < 100000) { putchar_('0'); }
  if (frac < 10000) { putchar_('0'); }
  if (frac < 1000) { putchar_('0'); }
  if (frac < 100) { putchar_('0'); }
  if (frac < 10) { putchar_('0'); }
  print_int(frac);
}

/* ---- misc ---------------------------------------------------------- */

int __rand_state = 123456789;

void srand(int seed) { __rand_state = seed; }

int rand() {
  __rand_state = __rand_state * 1103515245 + 12345;
  return (__rand_state >> 16) & 32767;
}

int abs(int n) { if (n < 0) { return -n; } return n; }

/* ---- client requests (the valgrind.h equivalent) ------------------- */

int vg_running_on_valgrind() {
  int a[4];
  return __clreq(1, a);
}

int vg_discard_translations(char *addr, int len) {
  int a[4];
  a[0] = (int)addr;
  a[1] = len;
  return __clreq(2, a);
}

void vg_print(char *s) { __clreq(3, (int *)s); }

int vg_stack_register(int lo, int hi) {
  int a[4];
  a[0] = lo;
  a[1] = hi;
  return __clreq(4, a);
}

int vg_stack_deregister(int id) {
  int a[4];
  a[0] = id;
  return __clreq(5, a);
}

int vg_make_mem_noaccess(char *addr, int len) {
  int a[4];
  a[0] = (int)addr;
  a[1] = len;
  return __clreq(4097, a);
}

int vg_make_mem_undefined(char *addr, int len) {
  int a[4];
  a[0] = (int)addr;
  a[1] = len;
  return __clreq(4098, a);
}

int vg_make_mem_defined(char *addr, int len) {
  int a[4];
  a[0] = (int)addr;
  a[1] = len;
  return __clreq(4099, a);
}

int vg_check_mem_is_defined(char *addr, int len) {
  int a[4];
  a[0] = (int)addr;
  a[1] = len;
  return __clreq(4101, a);
}

int vg_count_errors() {
  int a[4];
  return __clreq(4102, a);
}

int vg_do_leak_check() {
  int a[4];
  return __clreq(4103, a);
}

int vg_taint_mem(char *addr, int len) {
  int a[4];
  a[0] = (int)addr;
  a[1] = len;
  return __clreq(8193, a);
}

int vg_untaint_mem(char *addr, int len) {
  int a[4];
  a[0] = (int)addr;
  a[1] = len;
  return __clreq(8194, a);
}

int vg_check_taint(char *addr, int len) {
  int a[4];
  a[0] = (int)addr;
  a[1] = len;
  return __clreq(8195, a);
}

/* DRD tool-arbitrated locks: try-acquire returns 1 on success, 0 when
   another thread holds the lock.  vg_drd_lock spins with yield until
   the acquire succeeds; under tools without lock requests the clreq
   returns 0 forever, so callers should only use these under drd. */
int vg_drd_trylock(int id) {
  int a[4];
  a[0] = id;
  return __clreq(12289, a);
}

void vg_drd_lock(int id) {
  while (vg_drd_trylock(id) == 0) { yield(); }
}

void vg_drd_unlock(int id) {
  int a[4];
  a[0] = id;
  __clreq(12290, a);
}
|}

(** Start-up code: call main, pass its result to exit. *)
let startup_asm = {|
        .text
        .global _start
_start: call main
        mov r1, r0
        movi r0, 1
        syscall
|}
