(** Replay-exact shrinking.

    A generated program is a pure function of [(seed, size)], and the
    per-block randomness streams are independent of [size] — so the
    program of size [k] is the original with its last [size - k] blocks
    removed (branch targets past the end re-clamp to the epilogue).
    Shrinking is therefore just a scan: re-generate at sizes 1, 2, ...
    and keep the first size that still fails.  That size is minimal by
    construction — every smaller program (every "remove trailing
    blocks" reduction) passes — and rerunning the scan on the same
    failure is deterministic, so a repro shrinks to the same [.s] file
    on every machine. *)

type result = {
  r_seed : int;
  r_size : int;  (** minimal failing size *)
  r_orig_size : int;
  r_faulty : bool;  (** generator faulty mode (part of program identity) *)
  r_divs : Diff.divergence list;  (** divergences at the minimal size *)
}

(** Find the smallest [k <= size] at which [check ~seed ~size:k] still
    reports divergences.  [check] defaults to the full differential
    oracle.  [faulty] must match the flag the program was generated
    with — it is part of the program's identity, and is recorded in the
    result so {!repro_source} regenerates the same bytes. *)
let shrink ?check ?(faulty = false) ~seed ~size () : result =
  let check =
    match check with
    | Some f -> f
    | None -> fun ~seed ~size -> Diff.check (Gen.image ~faulty ~seed ~size ())
  in
  let rec scan k =
    if k >= size then
      { r_seed = seed; r_size = size; r_orig_size = size; r_faulty = faulty;
        r_divs = check ~seed ~size }
    else
      match check ~seed ~size:k with
      | [] -> scan (k + 1)
      | divs -> { r_seed = seed; r_size = k; r_orig_size = size;
                  r_faulty = faulty; r_divs = divs }
  in
  scan 1

(** Render a minimized repro as a committable [.s] file: the generated
    source verbatim, headed by a comment recording provenance and the
    divergence list, so replaying the file needs no generator at all. *)
let repro_source (r : result) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "; vgfuzz minimized repro: seed=%d size=%d (shrunk from %d)\n"
       r.r_seed r.r_size r.r_orig_size);
  List.iter
    (fun d ->
      Buffer.add_string b ("; divergence: " ^ Diff.pp_divergence d ^ "\n"))
    r.r_divs;
  Buffer.add_string b
    (Gen.source ~faulty:r.r_faulty ~seed:r.r_seed ~size:r.r_size ());
  Buffer.contents b
