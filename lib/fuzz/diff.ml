(** Differential execution of one guest image across the native
    reference interpreter and the full instrumented session.

    The architectural result of a run is everything the paper's
    soundness claim covers: exit disposition, the final register file
    and materialised flags, a hash of client data memory, client
    stdout, and the retired-instruction count.  A session run adds the
    tool view: the witness tool's output, which folds in its helper
    counters (instructions/loads/stores) and the fired Table-1 event
    totals — so "exact tool event totals" is part of the oracle, not a
    separate channel.

    Comparison policy — what counts as an explained difference:
    - on a clean exit everything must match, bit for bit;
    - on a fatal signal the signal number, faulting PC, sp, fp, memory
      image, stdout and icnt must match, but scratch registers and the
      flags thunk may be stale in the session: the optimiser only keeps
      eip/sp/fp precise across potentially-faulting statements (VEX's
      precise-memory-exceptions set, {!Jit.Opt.precise_offsets}), so a
      dead-store-eliminated scratch PUT is not a soundness bug;
    - tool output must be identical across *session* variants (native
      has no tool), fuel exhaustion is compared like any other exit. *)

module GA = Guest.Arch

type exit_kind = Exit of int | Signal of int | Fuel

let exit_kind_str = function
  | Exit n -> Printf.sprintf "exit %d" n
  | Signal s -> Printf.sprintf "signal %d" s
  | Fuel -> "fuel"

type outcome = {
  o_engine : string;
  o_exit : exit_kind;
  o_regs : int64 array;  (** r0..r7 *)
  o_eip : int64;
  o_flags : int64;  (** materialised from the thunk *)
  o_mem : int64;  (** FNV-1a over the data+bss segment *)
  o_stdout : string;
  o_icnt : int64;
  o_tool : string;  (** "" for the native reference *)
}

(* --- memory hashing -------------------------------------------------- *)

let fnv_prime = 0x100000001B3L

let hash_mem (mem : Aspace.t) (img : Guest.Image.t) : int64 =
  let len = Bytes.length img.Guest.Image.data + img.Guest.Image.bss_len in
  let h = ref 0xCBF29CE484222325L in
  for i = 0 to len - 1 do
    let b =
      Aspace.read mem (Int64.add img.Guest.Image.data_addr (Int64.of_int i)) 1
    in
    h := Int64.mul (Int64.logxor !h b) fnv_prime
  done;
  !h

(* --- the witness tool ------------------------------------------------ *)

type totals = {
  mutable n_instrs : int64;
  mutable n_loads : int64;
  mutable n_stores : int64;
}

(** A lackey-shaped witness tool that also installs a no-op callback in
    every Table-1 event slot, so (a) the counted wrappers tick and (b)
    the core's stack-pointer instrumentation engages.  [fini] prints the
    helper counters and every event total: tool-output equality across
    session variants is then exactly "exact tool event totals". *)
let witness_tool () : Vg_core.Tool.t * totals =
  let tot = { n_instrs = 0L; n_loads = 0L; n_stores = 0L } in
  let open Vex_ir.Ir in
  let tool : Vg_core.Tool.t =
    {
      name = "vgfuzz";
      description = "differential-fuzzing witness";
      shadow_ranges = [];
      create =
        (fun caps ->
          let ev = caps.Vg_core.Tool.events in
          ev.Vg_core.Events.pre_reg_read <-
            Some (fun ~syscall:_ ~off:_ ~size:_ -> ());
          ev.post_reg_write <- Some (fun ~syscall:_ ~off:_ ~size:_ -> ());
          ev.pre_mem_read <- Some (fun ~syscall:_ ~addr:_ ~len:_ -> ());
          ev.pre_mem_read_asciiz <- Some (fun ~syscall:_ ~addr:_ -> ());
          ev.pre_mem_write <- Some (fun ~syscall:_ ~addr:_ ~len:_ -> ());
          ev.post_mem_write <- Some (fun ~addr:_ ~len:_ -> ());
          ev.new_mem_startup <-
            Some (fun ~addr:_ ~len:_ ~defined:_ ~what:_ -> ());
          ev.new_mem_mmap <- Some (fun ~addr:_ ~len:_ -> ());
          ev.die_mem_munmap <- Some (fun ~addr:_ ~len:_ -> ());
          ev.new_mem_brk <- Some (fun ~addr:_ ~len:_ -> ());
          ev.die_mem_brk <- Some (fun ~addr:_ ~len:_ -> ());
          ev.copy_mem_mremap <- Some (fun ~src:_ ~dst:_ ~len:_ -> ());
          ev.new_mem_stack <- Some (fun ~addr:_ ~len:_ -> ());
          ev.die_mem_stack <- Some (fun ~addr:_ ~len:_ -> ());
          let h_load =
            caps.register_helper ~name:"fz_load" ~cost:1 ~nargs:2 (fun _ ->
                tot.n_loads <- Int64.add tot.n_loads 1L;
                0L)
          in
          let h_store =
            caps.register_helper ~name:"fz_store" ~cost:1 ~nargs:2 (fun _ ->
                tot.n_stores <- Int64.add tot.n_stores 1L;
                0L)
          in
          let h_instr =
            caps.register_helper ~name:"fz_instr" ~cost:1 ~nargs:0 (fun _ ->
                tot.n_instrs <- Int64.add tot.n_instrs 1L;
                0L)
          in
          let instrument (b : block) : block =
            let nb =
              {
                tyenv = Support.Vec.copy b.tyenv;
                stmts = Support.Vec.create NoOp;
                next = b.next;
                jumpkind = b.jumpkind;
              }
            in
            let call callee args =
              add_stmt nb
                (Dirty
                   {
                     d_guard = i1 true;
                     d_callee = callee;
                     d_args = args;
                     d_tmp = None;
                     d_mfx = Mfx_none;
                   })
            in
            Support.Vec.iter
              (fun s ->
                (match s with
                | WrTmp (_, Load (ty, addr)) ->
                    call h_load [ addr; i32 (Int64.of_int (size_of_ty ty)) ]
                | Store (addr, d) ->
                    call h_store
                      [ addr; i32 (Int64.of_int (size_of_ty (type_of nb d))) ]
                | _ -> ());
                add_stmt nb s;
                match s with IMark _ -> call h_instr [] | _ -> ())
              b.stmts;
            nb
          in
          {
            Vg_core.Tool.instrument;
            fini =
              (fun ~exit_code:_ ->
                caps.output
                  (Printf.sprintf
                     "==vgfuzz== instrs %Ld loads %Ld stores %Ld\n"
                     tot.n_instrs tot.n_loads tot.n_stores);
                List.iter
                  (fun (group, name, count) ->
                    if count <> 0L then
                      caps.output
                        (Printf.sprintf "==vgfuzz== ev %s %s %Ld\n" group
                           name count))
                  (Vg_core.Events.table1_rows ev));
            client_request = (fun ~code:_ ~args:_ -> None);
            snapshot = Vg_core.Tool.snapshot_nothing;
            restore = Vg_core.Tool.restore_nothing;
          });
    }
  in
  (tool, tot)

(* --- engines --------------------------------------------------------- *)

let native_fuel = 30_000_000L
let session_fuel = 2_000_000L

(** The native reference run: [Guest.Interp] through {!Native}. *)
let run_native (img : Guest.Image.t) : outcome =
  let t = Native.create img in
  let er = Native.run ~max_insns:native_fuel t in
  let th =
    List.find (fun (x : Native.thread) -> x.Native.tid = 1) t.Native.threads
  in
  let st = th.Native.st in
  {
    o_engine = "interp";
    o_exit =
      (match er with
      | Native.Exited n -> Exit n
      | Native.Fatal_signal s -> Signal s
      | Native.Out_of_fuel -> Fuel);
    o_regs = Array.copy st.Guest.Interp.regs;
    o_eip = st.Guest.Interp.eip;
    o_flags = Guest.Interp.flags st;
    o_mem = hash_mem t.Native.mem img;
    o_stdout = Native.stdout_contents t;
    o_icnt = Native.total_insns t;
    o_tool = "";
  }

type variant = {
  v_name : string;
  v_cores : int;
  v_aot : bool;
  v_chaos : int option;  (** idempotent-schedule seed *)
  v_degrade : bool;  (** force every block through interp fallback *)
}

let variants =
  [
    { v_name = "jit-c1"; v_cores = 1; v_aot = false; v_chaos = None;
      v_degrade = false };
    { v_name = "jit-c2"; v_cores = 2; v_aot = false; v_chaos = None;
      v_degrade = false };
    { v_name = "jit-aot"; v_cores = 1; v_aot = true; v_chaos = None;
      v_degrade = false };
    { v_name = "jit-chaos"; v_cores = 1; v_aot = false; v_chaos = Some 7;
      v_degrade = false };
  ]

let outcome_of_session ~(name : string) ~(tot : totals)
    (s : Vg_core.Session.t) (er : Vg_core.Session.exit_reason)
    (img : Guest.Image.t) : outcome =
  let th =
    match Vg_core.Threads.find s.Vg_core.Session.threads 1 with
    | Some th -> th
    | None -> failwith "vgfuzz: main thread vanished"
  in
  let threads = s.Vg_core.Session.threads in
  let gs off = Vg_core.Threads.get_state threads th ~off ~size:4 in
  {
    o_engine = name;
    o_exit =
      (match er with
      | Vg_core.Session.Exited n -> Exit n
      | Vg_core.Session.Fatal_signal s -> Signal s
      | Vg_core.Session.Out_of_fuel -> Fuel);
    o_regs = Array.init GA.n_regs (fun r -> gs (GA.off_reg r));
    o_eip = gs GA.off_eip;
    o_flags =
      Guest.Flags.calculate ~op:(gs GA.off_cc_op) ~dep1:(gs GA.off_cc_dep1)
        ~dep2:(gs GA.off_cc_dep2) ~ndep:(gs GA.off_cc_ndep);
    o_mem = hash_mem s.Vg_core.Session.mem img;
    o_stdout = Vg_core.Session.client_stdout s;
    o_icnt = tot.n_instrs;
    o_tool = Vg_core.Session.tool_output s;
  }

(** One full session run under the witness tool. *)
let run_session ?(verify = false) (v : variant) (img : Guest.Image.t) :
    outcome =
  let tool, tot = witness_tool () in
  let chaos =
    match (v.v_chaos, v.v_degrade) with
    | Some seed, _ -> Some (Chaos.create (Chaos.idempotent ~seed))
    | None, true ->
        (* every translation refused: the whole program runs through the
           graceful-degradation IR evaluator *)
        Some
          (Chaos.create
             {
               (Chaos.idempotent ~seed:1) with
               Chaos.p_eintr = 0.0;
               p_errno = 0.0;
               p_short = 0.0;
               p_map_denial = 0.0;
               p_flush = 0.0;
               p_translation_failure = 1.0;
               max_injections = 0 (* uncapped *);
             })
    | None, false -> None
  in
  let options =
    {
      Vg_core.Session.default_options with
      cores = v.v_cores;
      aot_seed = v.v_aot;
      scan = v.v_aot;
      chaos;
      max_blocks = session_fuel;
      verify_jit = verify;
      transtab_capacity = 256;
    }
  in
  let s = Vg_core.Session.create ~options ~tool img in
  let er = Vg_core.Session.run s in
  outcome_of_session
    ~name:(v.v_name ^ if v.v_degrade then "+degrade" else "")
    ~tot s er img

(* --- comparison ------------------------------------------------------ *)

type divergence = {
  dv_engine : string;
  dv_field : string;
  dv_ref : string;
  dv_got : string;
}

let pp_divergence d =
  Printf.sprintf "[%s] %s: reference=%s got=%s" d.dv_engine d.dv_field
    d.dv_ref d.dv_got

(** The sixth way: record the plain jit-c1 run, then re-execute it
    purely from the log — the kernel never runs, every syscall result
    and signal delivery comes off the event stream — and compare the
    replayed outcome like any other engine.  Trailer-digest mismatches
    are reported as their own divergences. *)
let run_replayed (img : Guest.Image.t) : outcome * divergence list =
  let tool, _tot = witness_tool () in
  let rec_ = Replay.recorder () in
  let options =
    {
      Vg_core.Session.default_options with
      max_blocks = session_fuel;
      transtab_capacity = 256;
      rr = Replay.Record rec_;
    }
  in
  let s = Vg_core.Session.create ~options ~tool img in
  ignore (Vg_core.Session.run s);
  let tool2, tot2 = witness_tool () in
  let p = Replay.player_of_string (Replay.to_string rec_) in
  let options2 = { options with rr = Replay.Replay p } in
  let s2 = Vg_core.Session.create ~options:options2 ~tool:tool2 img in
  let er, diverged =
    try (Vg_core.Session.run s2, None)
    with Replay.Divergence _ as e -> (Vg_core.Session.Exited 255, Some e)
  in
  let ds =
    match diverged with
    | Some e ->
        [
          {
            dv_engine = "jit-replay";
            dv_field = "replay";
            dv_ref = "bit-identical re-execution";
            dv_got = Printexc.to_string e;
          };
        ]
    | None ->
        List.map
          (fun (k, want, got) ->
            {
              dv_engine = "jit-replay";
              dv_field = "digest:" ^ k;
              dv_ref = want;
              dv_got = got;
            })
          (Vg_core.Session.replay_mismatches s2)
  in
  (outcome_of_session ~name:"jit-replay" ~tot:tot2 s2 er img, ds)

(** Compare a session outcome against the native reference. *)
let against_native ~(ref_ : outcome) (o : outcome) : divergence list =
  let ds = ref [] in
  let fail field r g =
    ds := { dv_engine = o.o_engine; dv_field = field; dv_ref = r; dv_got = g }
          :: !ds
  in
  let eq_i64 field a b =
    if a <> b then fail field (Printf.sprintf "0x%Lx" a)
        (Printf.sprintf "0x%Lx" b)
  in
  if ref_.o_exit <> o.o_exit then
    fail "exit" (exit_kind_str ref_.o_exit) (exit_kind_str o.o_exit);
  (match ref_.o_exit with
  | Exit _ | Fuel ->
      for r = 0 to GA.n_regs - 1 do
        eq_i64 (Printf.sprintf "r%d" r) ref_.o_regs.(r) o.o_regs.(r)
      done;
      eq_i64 "flags" ref_.o_flags o.o_flags;
      eq_i64 "eip" ref_.o_eip o.o_eip
  | Signal _ ->
      (* only the precise-exception registers are guaranteed at a fault *)
      eq_i64 "eip@fault" ref_.o_eip o.o_eip;
      eq_i64 "sp@fault" ref_.o_regs.(GA.reg_sp) o.o_regs.(GA.reg_sp);
      eq_i64 "fp@fault" ref_.o_regs.(GA.reg_fp) o.o_regs.(GA.reg_fp));
  eq_i64 "memhash" ref_.o_mem o.o_mem;
  eq_i64 "icnt" ref_.o_icnt o.o_icnt;
  if ref_.o_stdout <> o.o_stdout then
    fail "stdout" (String.escaped ref_.o_stdout) (String.escaped o.o_stdout);
  List.rev !ds

(** Tool-output equality across session variants. *)
let tool_agreement (sessions : outcome list) : divergence list =
  match sessions with
  | [] | [ _ ] -> []
  | first :: rest ->
      List.filter_map
        (fun o ->
          if o.o_tool <> first.o_tool then
            Some
              {
                dv_engine = o.o_engine;
                dv_field = "tool-output vs " ^ first.o_engine;
                dv_ref = first.o_tool;
                dv_got = o.o_tool;
              }
          else None)
        rest

(** Run one image everywhere and collect every divergence. *)
let check ?(verify = true) (img : Guest.Image.t) : divergence list =
  let ref_ = run_native img in
  let sessions =
    List.map
      (fun v -> run_session ~verify:(verify && v.v_name = "jit-c1") v img)
      variants
  in
  let replayed, replay_ds = run_replayed img in
  let sessions = sessions @ [ replayed ] in
  List.concat_map (against_native ~ref_) sessions
  @ tool_agreement sessions @ replay_ds
