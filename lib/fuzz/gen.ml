(** Vgfuzz program generator: seeded, replay-exact VG32 clients.

    A generated program is fully determined by the pair [(seed, size)]:
    [size] is the number of code blocks, and block [i] draws all of its
    randomness from a private splitmix64 stream derived from [(seed, i)].
    Because the streams are independent, the program of size [k] is a
    strict prefix of the program of size [k+1] (plus the fixed epilogue)
    — which is what makes shrinking replay-exact: re-generating at a
    smaller size *is* the reduced test case, no test-case mutation or
    state capture needed (same determinism discipline as {!Chaos}).

    The emitted source is well-formed but deliberately weird: random
    arithmetic over the edge-width/flag-thunk surface (shift counts past
    the register width, signed division at INT_MIN, mul flag hi-halves),
    sub-word loads and stores, computed branches through bounded jump
    tables, branches into the middle of a [movi] immediate (overlapping
    decode), self-modifying code hosted on the stack, and deep call
    chains.  Constructs whose native-vs-session difference is *by
    design* are excluded: [clreq] (RUNNING_ON_VALGRIND), [getcycles] /
    [gettimeofday] / [time] (virtual-clock reads), threads, and
    fallible syscalls under chaos.  Control flow is forward-only apart
    from counted loops with a dedicated counter register, so every
    program terminates by construction. *)

open Support

(* Arch-stable integer mix (no [Hashtbl.hash]): derives the per-block
   stream seed from (seed, block index). *)
let mix (seed : int) (i : int) : int =
  let x = (seed * 0x9E3779B1) lxor ((i + 1) * 0x85EBCA6B) in
  let x = x lxor (x lsr 13) in
  (x * 0x27D4EB2F) land 0x3FFFFFFF

type ctx = {
  code : Buffer.t;  (** main instruction stream *)
  helpers : Buffer.t;  (** call-chain bodies + SMC donor routines *)
  data : Buffer.t;  (** .data items (jump tables) *)
  size : int;
  faulty : bool;  (** allow blocks that fault on purpose *)
}

let ins ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.code "    ";
      Buffer.add_string ctx.code s;
      Buffer.add_char ctx.code '\n')
    fmt

let lbl ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.code s;
      Buffer.add_string ctx.code ":\n")
    fmt

let hins ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.helpers "    ";
      Buffer.add_string ctx.helpers s;
      Buffer.add_char ctx.helpers '\n')
    fmt

let hlbl ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.helpers s;
      Buffer.add_string ctx.helpers ":\n")
    fmt

(* Immediates biased towards the 32-bit edge cases the flag thunk and
   the width-changing ops care about. *)
let interesting =
  [|
    0L; 1L; 2L; 0x7FL; 0x80L; 0xFFL; 0x100L; 0x7FFFL; 0x8000L; 0xFFFFL;
    0x10000L; 0x7FFFFFFFL; 0x80000000L; 0xFFFFFFFFL; 0xFFFFFFFEL;
    0x55555555L; 0xAAAAAAAAL; 31L; 32L; 33L; 63L;
  |]

let imm rng =
  if Rng.bool rng then interesting.(Rng.int rng (Array.length interesting))
  else Int64.logand (Rng.next_u64 rng) 0xFFFFFFFFL

let conds =
  [| "eq"; "ne"; "lt"; "le"; "gt"; "ge"; "b"; "be"; "a"; "ae"; "s"; "ns" |]

let cond rng = conds.(Rng.int rng (Array.length conds))

(* Scratch-buffer size in .data; all generated loads/stores land inside. *)
let buf_len = 256

(** Emit one random straight-line instruction (or a short idiom).
    [maxreg] bounds the register pool: loop bodies use r0..r4 so the
    loop counter in r5 survives; everything else may use r0..r5.  r6/r7
    (fp/sp) are only touched by the dedicated SMC/push templates. *)
let rand_op ctx rng ~maxreg =
  let reg () = Rng.int rng (maxreg + 1) in
  let alu2 = [| "add"; "sub"; "and"; "or"; "xor"; "mul" |] in
  let alu2i = [| "addi"; "subi"; "andi"; "ori"; "xori"; "muli" |] in
  match Rng.int rng 20 with
  | 0 | 1 | 2 ->
      ins ctx "%s r%d, r%d" alu2.(Rng.int rng 6) (reg ()) (reg ())
  | 3 | 4 -> ins ctx "%s r%d, 0x%Lx" alu2i.(Rng.int rng 6) (reg ()) (imm rng)
  | 5 ->
      (* shift by immediate, including counts >= the register width *)
      let op = [| "shli"; "shri"; "sari" |].(Rng.int rng 3) in
      ins ctx "%s r%d, %d" op (reg ()) (Rng.int rng 41)
  | 6 ->
      (* shift by register: the count is whatever the register holds *)
      let op = [| "shl"; "shr"; "sar" |].(Rng.int rng 3) in
      ins ctx "%s r%d, r%d" op (reg ()) (reg ())
  | 7 ->
      (* division: force the divisor odd so it is never zero *)
      let d = reg () and s = reg () in
      ins ctx "ori r%d, 1" s;
      ins ctx "%s r%d, r%d" (if Rng.bool rng then "divs" else "divu") d s
  | 8 ->
      ins ctx "%s r%d" [| "inc"; "dec"; "neg"; "not" |].(Rng.int rng 4)
        (reg ())
  | 9 ->
      (match Rng.int rng 3 with
      | 0 -> ins ctx "cmp r%d, r%d" (reg ()) (reg ())
      | 1 -> ins ctx "cmpi r%d, 0x%Lx" (reg ()) (imm rng)
      | _ -> ins ctx "test r%d, r%d" (reg ()) (reg ()));
      ins ctx "set%s r%d" (cond rng) (reg ())
  | 10 | 11 ->
      (* sub-word and word loads from the scratch buffer; offsets may be
         unaligned on purpose *)
      let w = [| "ldb"; "ldbs"; "ldh"; "ldhs"; "ldw" |].(Rng.int rng 5) in
      if Rng.bool rng then
        ins ctx "%s r%d, [buf+%d]" w (reg ()) (Rng.int rng (buf_len - 4))
      else begin
        let i = reg () in
        ins ctx "andi r%d, 0x%x" i (buf_len - 8);
        ins ctx "%s r%d, [r%d+buf+%d]" w (reg ()) i (Rng.int rng 4)
      end
  | 12 ->
      let w = [| "stb"; "sth"; "stw" |].(Rng.int rng 3) in
      ins ctx "%s [buf+%d], r%d" w (Rng.int rng (buf_len - 4)) (reg ())
  | 13 ->
      let scale = [| 1; 2; 4; 8 |].(Rng.int rng 4) in
      ins ctx "lea r%d, [r%d+r%d*%d+0x%Lx]" (reg ()) (reg ()) (reg ()) scale
        (Int64.of_int (Rng.int rng 4096))
  | 14 ->
      let a = reg () and b = reg () in
      ins ctx "push r%d" a;
      ins ctx "pop r%d" b
  | 15 ->
      (* float round-trip; fabs keeps fsqrt's operand non-negative *)
      let f1 = Rng.int rng 4 and f2 = Rng.int rng 4 in
      ins ctx "fitod f%d, r%d" f1 (reg ());
      (match Rng.int rng 4 with
      | 0 -> ins ctx "fadd f%d, f%d" f1 f2
      | 1 -> ins ctx "fsub f%d, f%d" f1 f2
      | 2 -> ins ctx "fmul f%d, f%d" f1 f2
      | _ ->
          ins ctx "fabs f%d" f1;
          ins ctx "fsqrt f%d" f1);
      ins ctx "fdtoi r%d, f%d" (reg ()) f1
  | 16 ->
      let v1 = Rng.int rng 4 and v2 = Rng.int rng 4 in
      ins ctx "vsplat v%d, r%d" v1 (reg ());
      (match Rng.int rng 4 with
      | 0 -> ins ctx "vadd32 v%d, v%d" v1 v2
      | 1 -> ins ctx "vxor v%d, v%d" v1 v2
      | 2 -> ins ctx "vsub8 v%d, v%d" v1 v2
      | _ -> ins ctx "vcmpeq32 v%d, v%d" v1 v2);
      ins ctx "vextr r%d, v%d, %d" (reg ()) v1 (Rng.int rng 4)
  | 17 -> ins ctx "mov r%d, r%d" (reg ()) (reg ())
  | 18 ->
      if Rng.int rng 4 = 0 then ins ctx "sysinfo"
      else ins ctx "movi r%d, 0x%Lx" (reg ()) (imm rng)
  | _ -> ins ctx "movi r%d, 0x%Lx" (reg ()) (imm rng)

let rand_ops ctx rng ~maxreg n =
  for _ = 1 to n do
    rand_op ctx rng ~maxreg
  done

(* --- block kinds ---------------------------------------------------- *)

let gen_straight ctx rng = rand_ops ctx rng ~maxreg:5 (4 + Rng.int rng 6)

let gen_branch ctx rng ~i =
  rand_ops ctx rng ~maxreg:5 (1 + Rng.int rng 4);
  (match Rng.int rng 3 with
  | 0 -> ins ctx "cmp r%d, r%d" (Rng.int rng 6) (Rng.int rng 6)
  | 1 -> ins ctx "cmpi r%d, 0x%Lx" (Rng.int rng 6) (imm rng)
  | _ -> ins ctx "test r%d, r%d" (Rng.int rng 6) (Rng.int rng 6));
  let tgt = min (i + 1 + Rng.int rng 2) ctx.size in
  ins ctx "j%s b%d" (cond rng) tgt;
  rand_ops ctx rng ~maxreg:5 (Rng.int rng 3)

let gen_loop ctx rng ~i =
  ins ctx "movi r5, %d" (1 + Rng.int rng 6);
  lbl ctx "b%dl" i;
  rand_ops ctx rng ~maxreg:4 (1 + Rng.int rng 4);
  ins ctx "dec r5";
  ins ctx "jne b%dl" i

let gen_call ctx rng ~i =
  let deep = Rng.int rng 5 = 0 in
  let depth = if deep then 12 + Rng.int rng 8 else 1 + Rng.int rng 4 in
  if Rng.bool rng then ins ctx "call fn%d_0" i
  else begin
    ins ctx "movi r4, fn%d_0" i;
    ins ctx "callr r4"
  end;
  for k = 0 to depth - 1 do
    hlbl ctx "fn%d_%d" i k;
    (* helper bodies share the generator but write through the helper
       buffer: temporarily swap [code] *)
    let saved = { ctx with code = ctx.helpers } in
    rand_ops saved rng ~maxreg:5 (if deep then Rng.int rng 2 else 1 + Rng.int rng 3);
    if k < depth - 1 then hins ctx "call fn%d_%d" i (k + 1);
    rand_ops saved rng ~maxreg:5 (Rng.int rng 2);
    hins ctx "ret"
  done

let gen_jumptable ctx rng ~i =
  let idx = Rng.int rng 4 (* r0..r3: must not be the r4 target temp *) in
  ins ctx "andi r%d, 3" idx;
  ins ctx "ldw r4, [r%d*4+jt%d]" idx i;
  ins ctx "jmpr r4";
  for c = 0 to 3 do
    lbl ctx "jt%dc%d" i c;
    rand_ops ctx rng ~maxreg:3 (1 + Rng.int rng 2);
    if c < 3 then ins ctx "jmp b%dx" i
  done;
  lbl ctx "b%dx" i;
  Buffer.add_string ctx.data
    (Printf.sprintf "jt%d:\n    .word jt%dc0, jt%dc1, jt%dc2, jt%dc3\n" i i i
       i i)

(* Branch into the middle of a [movi] immediate: the bytes 01 31 00 00
   of [movi r2, 0x3101] re-decode from +2 as [mov r3, r1; nop; nop], so
   the taken and fall-through paths overlap and rejoin at the next
   instruction.  Same shape as the Vgscan overlap fixture. *)
let gen_overlap ctx rng ~i =
  ins ctx "movi r1, %d" (Rng.int rng 2);
  ins ctx "cmpi r1, 1";
  ins ctx "jeq ov%d+2" i;
  lbl ctx "ov%d" i;
  ins ctx "movi r2, 0x3101"

(* Self-modifying code on the stack: copy a 12-byte donor routine
   ([movi r3, imm; ret] plus padding) well below sp, patch the low
   immediate byte, call it — then re-patch and call again so the
   session's SMC hash check must catch the rewrite. *)
let gen_smc ctx rng ~i =
  let off = 1024 + (256 * Rng.int rng 4) in
  ins ctx "mov r4, sp";
  ins ctx "subi r4, %d" off;
  ins ctx "ldw r3, [smc%d]" i;
  ins ctx "stw [r4], r3";
  ins ctx "ldw r3, [smc%d+4]" i;
  ins ctx "stw [r4+4], r3";
  ins ctx "ldw r3, [smc%d+8]" i;
  ins ctx "stw [r4+8], r3";
  ins ctx "movi r2, %d" (Rng.int rng 256);
  ins ctx "stb [r4+2], r2";
  ins ctx "callr r4";
  ins ctx "add r0, r3";
  if Rng.bool rng then begin
    ins ctx "movi r2, %d" (Rng.int rng 256);
    ins ctx "stb [r4+2], r2";
    ins ctx "callr r4";
    ins ctx "xor r0, r3"
  end;
  hlbl ctx "smc%d" i;
  hins ctx "movi r3, 0";
  hins ctx "ret";
  for _ = 1 to 5 do
    hins ctx "nop"
  done

(* Deliberate faults (only with ~faulty:true): an unmapped data access
   or a jump to unmapped memory, for the faulting-PC attribution
   oracle.  Everything after the fault is dead code. *)
let gen_fault ctx rng ~i:_ =
  let addr =
    [| 0x44L; 0x0C0F_0000L; 0xEEEE_0010L |].(Rng.int rng 3)
  in
  match Rng.int rng 3 with
  | 0 ->
      ins ctx "movi r4, 0x%Lx" addr;
      ins ctx "ldw r3, [r4]"
  | 1 ->
      ins ctx "movi r4, 0x%Lx" addr;
      ins ctx "stw [r4], r3"
  | _ ->
      ins ctx "movi r4, 0x%Lx" addr;
      ins ctx "jmpr r4"

let gen_block ctx rng ~i =
  lbl ctx "b%d" i;
  let n_kinds = if ctx.faulty then 11 else 10 in
  match Rng.int rng n_kinds with
  | 0 | 1 | 2 -> gen_straight ctx rng
  | 3 | 4 -> gen_branch ctx rng ~i
  | 5 -> gen_loop ctx rng ~i
  | 6 -> gen_call ctx rng ~i
  | 7 -> gen_jumptable ctx rng ~i
  | 8 -> gen_overlap ctx rng ~i
  | 9 -> gen_smc ctx rng ~i
  | _ -> gen_fault ctx rng ~i

(* --- whole programs ------------------------------------------------- *)

let name ~seed ~size = Printf.sprintf "s%d_n%d" seed size

(** The generated assembly source for [(seed, size)]. *)
let source ?(faulty = false) ~seed ~size () : string =
  let ctx =
    {
      code = Buffer.create 4096;
      helpers = Buffer.create 1024;
      data = Buffer.create 256;
      size;
      faulty;
    }
  in
  Buffer.add_string ctx.code
    (Printf.sprintf "; vgfuzz %s%s\n" (name ~seed ~size)
       (if faulty then " (faulty)" else ""));
  lbl ctx "_start";
  let rng0 = Rng.create (mix seed 1_000_003) in
  for r = 0 to 5 do
    ins ctx "movi r%d, 0x%Lx" r (imm rng0)
  done;
  for i = 0 to size - 1 do
    let rng = Rng.create (mix seed i) in
    gen_block ctx rng ~i
  done;
  (* epilogue: publish the register file to memory, fold it into an
     exit code, leave *)
  lbl ctx "b%d" size;
  for r = 0 to 5 do
    ins ctx "stw [buf+%d], r%d" (4 * r) r
  done;
  ins ctx "mov r1, r0";
  for r = 2 to 5 do
    ins ctx "xor r1, r%d" r
  done;
  ins ctx "andi r1, 63";
  ins ctx "movi r0, 1";
  ins ctx "syscall";
  Buffer.add_buffer ctx.code ctx.helpers;
  Buffer.add_string ctx.code ".data\nbuf:\n";
  Buffer.add_string ctx.code (Printf.sprintf "    .space %d\n" buf_len);
  Buffer.add_buffer ctx.code ctx.data;
  Buffer.contents ctx.code

(** Assembled image for [(seed, size)]. *)
let image ?(faulty = false) ~seed ~size () : Guest.Image.t =
  Guest.Asm.assemble (source ~faulty ~seed ~size ())
