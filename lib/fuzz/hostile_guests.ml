(** The curated hostile suite: malware-shaped clients beyond the static
    fixtures in {!Static.Hostile}.

    Each guest is an *executable* adversarial pattern from the
    anti-instrumentation literature (self-decryption, timing probes,
    stack pivots, overlapping dispatch), with a deterministic
    architectural result so it can run under every tool and every
    schedule and still be checked exactly.  Guests that read the
    virtual cycle clock are excluded from the differential register
    oracle (the clock legitimately differs under instrumentation) —
    their contract is the exit code, zero uncaught exceptions, and a
    deterministic report. *)

type guest = {
  g_name : string;
  g_desc : string;
  g_source : string;
  g_exit : int;  (** expected exit code under every engine and tool *)
  g_lints : string list;
      (** Vgscan lint classes that must fire on the image *)
}

(* --- self-decrypting XOR loop ---------------------------------------- *)

let xor_key = 0x5A

(* [movi r3, v; ret] padded to 8 bytes, encrypted byte-wise. *)
let payload v =
  List.map (fun b -> b lxor xor_key) [ 0x02; 0x03; v; 0x00; 0x00; 0x00; 0x3D; 0x00 ]

let bytes_directive bs =
  "    .byte " ^ String.concat ", " (List.map (Printf.sprintf "0x%02x") bs)

(* Decrypts an 8-byte payload from text into rwx stack memory and calls
   it; then decrypts a *different* payload over the same address —
   rewriting the body it just executed — and calls again.  The
   encrypted blobs live in .text (data-in-text, the classic packer
   shape), and the absolute [ldw] from text is the integrity-probe
   signature the [text-read] lint keys on. *)
let selfdecrypt =
  {
    g_name = "selfdecrypt";
    g_desc = "XOR-decrypts its own code onto the stack, twice";
    g_exit = 66 (* 55 + 11 *);
    g_lints = [ "text-read" ];
    g_source =
      String.concat "\n"
        [
          "_start:";
          "    ldw r2, [enc1]        ; self-inspection: absolute read of own text";
          "    mov r4, sp";
          "    subi r4, 2048";
          "    movi r1, 0";
          "d1:";
          "    ldb r2, [r1+enc1]";
          "    xori r2, 0x5A";
          "    stb [r4+r1], r2";
          "    inc r1";
          "    cmpi r1, 8";
          "    jne d1";
          "    callr r4";
          "    mov r5, r3";
          "    movi r1, 0";
          "d2:";
          "    ldb r2, [r1+enc2]";
          "    xori r2, 0x5A";
          "    stb [r4+r1], r2";
          "    inc r1";
          "    cmpi r1, 8";
          "    jne d2";
          "    callr r4";
          "    add r5, r3";
          "    movi r0, 1";
          "    mov r1, r5";
          "    syscall";
          "enc1:";
          bytes_directive (payload 55);
          "enc2:";
          bytes_directive (payload 11);
          "";
        ];
  }

(* --- anti-instrumentation timing probe ------------------------------- *)

(* Reads the virtual cycle clock twice and branches on the delta.  The
   delta differs under instrumentation (tool helpers charge cycles) —
   the transparency bound we assert is behavioural: under every engine
   the delta is positive and below the generous threshold, so the probe
   takes the same path and exits 7 everywhere. *)
let timingprobe =
  {
    g_name = "timingprobe";
    g_desc = "branches on a cycle-clock delta, twice-read";
    g_exit = 7;
    g_lints = [ "timing-probe" ];
    g_source =
      String.concat "\n"
        [
          "_start:";
          "    movi r0, 21           ; sys_getcycles";
          "    syscall";
          "    mov r4, r0";
          "    movi r0, 21";
          "    syscall";
          "    sub r0, r4            ; delta";
          "    cmpi r0, 0";
          "    jle caught            ; clock stalled: instrumentation visible";
          "    cmpi r0, 100000";
          "    ja caught             ; clock jumped: instrumentation visible";
          "    movi r1, 7";
          "    jmp leave";
          "caught:";
          "    movi r1, 8";
          "leave:";
          "    movi r0, 1";
          "    syscall";
          "";
        ];
  }

(* --- stack pivot onto heap memory ------------------------------------ *)

(* mmaps a page, points sp into it, runs pushes/pops/calls on the
   pivoted stack, then restores.  Exercises the unknown-SP-update
   classifier (the delta is far past any frame size, so the core must
   treat it as a stack switch, not allocation). *)
let stackpivot =
  {
    g_name = "stackpivot";
    g_desc = "pivots sp onto mmap'd heap, computes, pivots back";
    g_exit = 44 (* (0x1234 + 0x5678) land 63 *);
    g_lints = [ "sp-pivot" ];
    g_source =
      String.concat "\n"
        [
          "_start:";
          "    movi r0, 7            ; sys_mmap";
          "    movi r2, 4096         ; length";
          "    syscall";
          "    mov r4, r0";
          "    addi r4, 4080";
          "    mov r5, sp";
          "    mov sp, r4            ; pivot";
          "    pushi 0x1234";
          "    pushi 0x5678";
          "    pop r2";
          "    pop r3";
          "    add r2, r3";
          "    call onpivot";
          "    mov sp, r5            ; pivot back";
          "    andi r2, 63";
          "    movi r0, 1";
          "    mov r1, r2";
          "    syscall";
          "onpivot:";
          "    push r2";
          "    pop r2";
          "    ret";
          "";
        ];
  }

(* --- jump-table dispatch over overlapping instruction starts --------- *)

(* A 4-entry dispatch table whose entries include both [ov] and [ov+2]:
   the same text bytes execute as two different instruction streams
   depending on the dynamic index.  r3 per iteration: 5 (case0),
   5 (ov: movi r2 only), 9 (case2), 3 (ov+2: mov r3, r1 with r1=3). *)
let overjump =
  {
    g_name = "overjump";
    g_desc = "jump table dispatching into overlapping decode streams";
    g_exit = 22 (* 5 + 5 + 9 + 3 *);
    g_lints = [];
    g_source =
      String.concat "\n"
        [
          "_start:";
          "    movi r5, 0";
          "    movi r1, 0";
          "next:";
          "    andi r1, 3";
          "    ldw r4, [r1*4+jt]";
          "    jmpr r4";
          "case0:";
          "    movi r3, 5";
          "    jmp join";
          "ov:";
          "    movi r2, 0x3101       ; +2 decodes as mov r3, r1; nop; nop";
          "    jmp join";
          "case2:";
          "    movi r3, 9";
          "    jmp join";
          "join:";
          "    add r5, r3";
          "    inc r1";
          "    cmpi r1, 4";
          "    jb next";
          "    mov r1, r5";
          "    andi r1, 63";
          "    movi r0, 1";
          "    syscall";
          ".data";
          "jt:";
          "    .word case0, ov, case2, ov+2";
          "";
        ];
  }

let all () : guest list = [ selfdecrypt; timingprobe; stackpivot; overjump ]

let image (g : guest) : Guest.Image.t = Guest.Asm.assemble g.g_source
