(** Vglint: static verification of every JIT phase boundary.

    The paper's Valgrind sanity-checks IR between phases with
    [sanityCheckIRSB]; this library extends the idea to all eight phases
    of our pipeline plus a tool-instrumentation linter, packaged as a
    {!Jit.Pipeline.checks} record that {!Jit.Pipeline.translate} calls at
    each boundary:

    - phase 1 (disasm): tree-IR well-formedness ({!Ircheck.check_tree});
    - phase 2 (opt1): flatness + single assignment
      ({!Ircheck.check_flat_ssa});
    - phase 3 (instrument): flat SSA again, plus the {!Lint} rules over
      the tool's declared shadow ranges;
    - phase 4 (opt2): effect-skeleton subsequence ({!Ircheck.check_opt2});
    - phase 5 (treebuild): effect-skeleton equality
      ({!Ircheck.check_treebuild});
    - phase 6 (isel): vreg/operand/label sanity ({!Vcheck.check});
    - phase 7 (regalloc): host-register dataflow, spill-slot discipline
      and encodability ({!Hcheck.check});
    - phase 8 (assemble): decode round-trip equality ({!Asmcheck.check}).

    All checkers raise {!Verr.Error} on failure. *)

(** Build the per-boundary check record for one translation.

    [shadow] is the tool's declared shadow-state ranges (absolute
    ThreadState offsets), used by the phase-3 lints.  [on_check] is
    called with a short phase tag before each boundary check runs (for
    counters).  By default a lint violation raises {!Verr.Error} like any
    other check; pass [on_lint] to collect violations instead. *)
let pipeline_checks ?(shadow : (int * int) list = [])
    ?(on_check : string -> unit = fun _ -> ())
    ?(on_lint : (Lint.violation list -> unit) option) () :
    Jit.Pipeline.checks =
  {
    ck_tree =
      (fun b ->
        on_check "tree";
        Ircheck.check_tree ~phase:"phase 1 (disasm)" b);
    ck_flat =
      (fun b ->
        on_check "flat";
        Ircheck.check_flat_ssa ~phase:"phase 2 (opt1)" b);
    ck_instrumented =
      (fun ~pre ~post ->
        on_check "instrument";
        Ircheck.check_flat_ssa ~phase:"phase 3 (instrument)" post;
        let violations = Lint.check ~shadow ~pre ~post in
        match on_lint with
        | Some f -> f violations
        | None -> (
            match violations with
            | [] -> ()
            | v :: _ ->
                Verr.fail "phase 3 (instrument)" "[%s] %s" v.Lint.v_rule
                  v.Lint.v_msg));
    ck_opt2 =
      (fun ~pre ~post ->
        on_check "opt2";
        Ircheck.check_opt2 ~pre ~post);
    ck_treebuilt =
      (fun ~pre ~post ->
        on_check "treebuild";
        Ircheck.check_treebuild ~pre ~post);
    ck_vcode =
      (fun code ~n_int ~n_vec ~n_label ->
        on_check "isel";
        Vcheck.check code ~n_int ~n_vec ~n_label);
    ck_hcode =
      (fun code ->
        on_check "regalloc";
        Hcheck.check code);
    ck_bytes =
      (fun ~hcode ~bytes ->
        on_check "assemble";
        Asmcheck.check ~hcode ~bytes);
  }

(** Run every boundary check over a completed {!Jit.Pipeline.phases}
    record, in phase order.  Used by the mutation harness and tests to
    verify intermediate results after the fact (or after tampering). *)
let check_all ?shadow ?on_check ?on_lint (p : Jit.Pipeline.phases) : unit =
  let c = pipeline_checks ?shadow ?on_check ?on_lint () in
  c.ck_tree p.p_tree;
  c.ck_flat p.p_flat;
  c.ck_instrumented ~pre:p.p_flat ~post:p.p_instrumented;
  c.ck_opt2 ~pre:p.p_instrumented ~post:p.p_opt2;
  c.ck_treebuilt ~pre:p.p_opt2 ~post:p.p_treebuilt;
  c.ck_vcode p.p_vcode ~n_int:p.p_n_int ~n_vec:p.p_n_vec
    ~n_label:p.p_n_label;
  c.ck_hcode p.p_hcode;
  c.ck_bytes ~hcode:p.p_hcode ~bytes:p.p_bytes
