(** Vglint: static verification of every JIT phase boundary.

    See {!Check} for the overview and the {!Check.pipeline_checks}
    builder that {!Jit.Pipeline.translate} consumes, {!Lint} for the
    tool-instrumentation rules, and {!Mutate} for the seeded-bug
    validation harness. *)

module Verr = Verr
module Dataflow = Dataflow
module Ircheck = Ircheck
module Vcheck = Vcheck
module Hcheck = Hcheck
module Lint = Lint
module Asmcheck = Asmcheck
module Mutate = Mutate
include Check
