(** A small reusable dataflow engine over flat VEX IR.

    Superblocks are single-entry / multi-exit straight-line statement
    lists (side exits leave, they never rejoin), so intra-block dataflow
    needs no fixpoint: a forward analysis is a left fold over the
    statements and a backward analysis a right fold.  On top of the two
    folds this module provides the classic analyses the phase verifiers
    and the tool lints are built from:

    - temporary def/use extraction per statement,
    - liveness (backward): the set of temps live into each statement,
    - reaching definitions (forward): for SSA-by-construction blocks the
      unique defining statement index of each temp,
    - guest-state def/use summaries: which ThreadState byte ranges a
      statement (or whole block) reads and writes, counting [Get]/[Put]
      as well as the declared RdFX/WrFX effects of helper calls. *)

open Vex_ir.Ir

module ISet = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Def / use extraction                                                 *)
(* ------------------------------------------------------------------ *)

(** Temporaries read by an expression tree (deep). *)
let expr_uses (e : expr) : ISet.t =
  let rec go acc = function
    | RdTmp t -> ISet.add t acc
    | Get _ | Const _ -> acc
    | Load (_, a) -> go acc a
    | Unop (_, a) -> go acc a
    | Binop (_, x, y) -> go (go acc x) y
    | ITE (c, t, f) -> go (go (go acc c) t) f
    | CCall (_, _, args) -> List.fold_left go acc args
  in
  go ISet.empty e

(** Temporaries read by a statement. *)
let stmt_uses (s : stmt) : ISet.t =
  match s with
  | NoOp | IMark _ -> ISet.empty
  | AbiHint (e, _) | Put (_, e) | WrTmp (_, e) -> expr_uses e
  | Store (a, d) -> ISet.union (expr_uses a) (expr_uses d)
  | Exit (g, _, _) -> expr_uses g
  | Dirty d ->
      let acc = expr_uses d.d_guard in
      let acc =
        List.fold_left (fun acc a -> ISet.union acc (expr_uses a)) acc d.d_args
      in
      (match d.d_mfx with
      | Mfx_none -> acc
      | Mfx_read (e, _) | Mfx_write (e, _) -> ISet.union acc (expr_uses e))

(** Temporaries assigned by a statement ([WrTmp] destinations and
    [Dirty] result temps). *)
let stmt_defs (s : stmt) : int list =
  match s with
  | WrTmp (t, _) -> [ t ]
  | Dirty { d_tmp = Some t; _ } -> [ t ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* The two folds                                                        *)
(* ------------------------------------------------------------------ *)

(** [forward ~init ~f b] folds [f] left-to-right over the statements:
    [f state idx stmt] returns the state after executing [stmt]. *)
let forward ~(init : 'a) ~(f : 'a -> int -> stmt -> 'a) (b : block) : 'a =
  let st = ref init in
  Support.Vec.iteri (fun i s -> st := f !st i s) b.stmts;
  !st

(** [backward ~init ~f b] folds right-to-left: [f state idx stmt] returns
    the state {e before} [stmt] given the state after it.  [init] is the
    state at the end of the block (after the final statement, before the
    [next] expression is evaluated — include [next]'s uses in [init] when
    doing liveness). *)
let backward ~(init : 'a) ~(f : 'a -> int -> stmt -> 'a) (b : block) : 'a =
  let n = Support.Vec.length b.stmts in
  let st = ref init in
  for i = n - 1 downto 0 do
    st := f !st i (Support.Vec.get b.stmts i)
  done;
  !st

(* ------------------------------------------------------------------ *)
(* Liveness (backward)                                                  *)
(* ------------------------------------------------------------------ *)

(** [liveness b] returns an array [live] of length [n_stmts + 1]:
    [live.(i)] is the set of temps live immediately before statement [i],
    and [live.(n)] the set live at the block end (the uses of [next]).
    Within a superblock a side [Exit] only adds its guard's uses. *)
let liveness (b : block) : ISet.t array =
  let n = Support.Vec.length b.stmts in
  let live = Array.make (n + 1) ISet.empty in
  live.(n) <- expr_uses b.next;
  for i = n - 1 downto 0 do
    let s = Support.Vec.get b.stmts i in
    let after = live.(i + 1) in
    let minus_defs =
      List.fold_left (fun acc t -> ISet.remove t acc) after (stmt_defs s)
    in
    live.(i) <- ISet.union minus_defs (stmt_uses s)
  done;
  live

(* ------------------------------------------------------------------ *)
(* Reaching definitions (forward, SSA flavour)                          *)
(* ------------------------------------------------------------------ *)

(** The definition site of each temp: [def_site.(t) = Some i] when temp
    [t] is assigned by statement [i].  Raises nothing itself; multiple
    assignments keep the {e first} site (the SSA checker reports the
    violation separately). *)
let def_sites (b : block) : int option array =
  let sites = Array.make (Support.Vec.length b.tyenv) None in
  Support.Vec.iteri
    (fun i s ->
      List.iter
        (fun t ->
          if t >= 0 && t < Array.length sites && sites.(t) = None then
            sites.(t) <- Some i)
        (stmt_defs s))
    b.stmts;
  sites

(* ------------------------------------------------------------------ *)
(* Guest-state def/use summaries                                        *)
(* ------------------------------------------------------------------ *)

(** A byte range [(offset, size)] of the ThreadState. *)
type range = int * int

let ranges_overlap (o1, s1) (o2, s2) = o1 < o2 + s2 && o2 < o1 + s1

let range_inside (o, s) (o', s') = o >= o' && o + s <= o' + s'

(** Is [r] covered by any range in [rs]?  (Single-range containment: the
    declared shadow ranges are contiguous planes, so no stitching is
    needed.) *)
let covered_by (r : range) (rs : range list) =
  List.exists (fun r' -> range_inside r r') rs

(** Guest-state ranges read by an expression ([Get]s, plus the declared
    [fx_reads] of pure helper calls). *)
let expr_state_reads (b : block) (e : expr) : range list =
  ignore b;
  let rec go acc = function
    | Get (off, ty) -> (off, size_of_ty ty) :: acc
    | RdTmp _ | Const _ -> acc
    | Load (_, a) -> go acc a
    | Unop (_, a) -> go acc a
    | Binop (_, x, y) -> go (go acc x) y
    | ITE (c, t, f) -> go (go (go acc c) t) f
    | CCall (callee, _, args) ->
        List.fold_left go (callee.c_fx_reads @ acc) args
  in
  go [] e

(** Guest-state ranges a statement reads / writes, including Dirty
    helpers' declared RdFX/WrFX effects. *)
let stmt_state_rw (b : block) (s : stmt) : range list * range list =
  match s with
  | NoOp | IMark _ -> ([], [])
  | AbiHint (e, _) -> (expr_state_reads b e, [])
  | Put (off, e) ->
      (expr_state_reads b e, [ (off, size_of_ty (type_of b e)) ])
  | WrTmp (_, e) -> (expr_state_reads b e, [])
  | Store (a, d) -> (expr_state_reads b a @ expr_state_reads b d, [])
  | Exit (g, _, _) -> (expr_state_reads b g, [])
  | Dirty d ->
      let arg_reads =
        List.concat_map (expr_state_reads b) (d.d_guard :: d.d_args)
      in
      let mfx_reads =
        match d.d_mfx with
        | Mfx_read (e, _) | Mfx_write (e, _) -> expr_state_reads b e
        | Mfx_none -> []
      in
      ( arg_reads @ mfx_reads @ d.d_callee.c_fx_reads,
        d.d_callee.c_fx_writes )

(** Whole-block guest-state def/use summary (union of per-statement
    effects plus the [next] expression's reads). *)
let block_state_rw (b : block) : range list * range list =
  let reads, writes =
    forward ~init:([], [])
      ~f:(fun (r, w) _ s ->
        let r', w' = stmt_state_rw b s in
        (r' @ r, w' @ w))
      b
  in
  (expr_state_reads b b.next @ reads, writes)

(** The multiset of [Put] targets below [limit] (offset, size), in
    statement order — the "architectural put skeleton" the lint compares
    across instrumentation. *)
let put_skeleton ?(limit = max_int) (b : block) : range list =
  List.rev
    (forward ~init:[]
       ~f:(fun acc _ s ->
         match s with
         | Put (off, e) when off < limit ->
             (off, size_of_ty (type_of b e)) :: acc
         | _ -> acc)
       b)
