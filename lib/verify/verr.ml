(** Verification failures.

    Every checker in this library reports problems through {!Error},
    tagged with the phase boundary at which the problem was detected
    ("phase 2 (opt1)", "phase 7 (regalloc)", ...).  The mutation harness
    keys on that tag to assert that a seeded miscompile is caught at the
    earliest boundary that could possibly see it. *)

exception Error of { ve_phase : string; ve_msg : string }

let fail phase fmt =
  Fmt.kstr (fun s -> raise (Error { ve_phase = phase; ve_msg = s })) fmt

let to_string = function
  | Error { ve_phase; ve_msg } -> Printf.sprintf "[%s] %s" ve_phase ve_msg
  | e -> Printexc.to_string e
