(** IR-level phase-boundary verifiers (phases 1–5).

    Valgrind runs [sanityCheckIRSB] between JIT phases; these checks are
    the equivalent for our pipeline, built on {!Dataflow}:

    - {!check_tree}: well-formedness of tree IR (typing, at most one
      assignment per temporary, definition before use) — the output of
      disassembly (phase 1) and of tree building (phase 5);
    - {!check_flat_ssa}: the above plus the flatness invariant — the
      output of opt1 (phase 2), instrumentation (phase 3) and opt2
      (phase 4);
    - {!check_opt2}: opt2 may only {e remove} effects, so its output's
      effect skeleton (PUTs, stores, dirty calls, side exits, IMarks in
      order) must be a subsequence of its input's;
    - {!check_treebuild}: tree building reorders nothing and drops only
      substituted [WrTmp]s, so the effect skeleton must survive
      {e exactly} — this is the boundary that catches a dropped PUT. *)

open Vex_ir.Ir
module DF = Dataflow

(* ---------------- single assignment + def-before-use ---------------- *)

let check_ssa phase (b : block) : unit =
  let n = Support.Vec.length b.tyenv in
  let defined = Array.make n false in
  let check_uses i s =
    DF.ISet.iter
      (fun t ->
        if t < 0 || t >= n then
          Verr.fail phase "stmt %d: use of out-of-range t%d" i t;
        if not defined.(t) then
          Verr.fail phase "stmt %d: t%d used before its definition (%a)" i t
            Vex_ir.Pp.pp_stmt s)
      (DF.stmt_uses s)
  in
  Support.Vec.iteri
    (fun i s ->
      check_uses i s;
      List.iter
        (fun t ->
          if t < 0 || t >= n then
            Verr.fail phase "stmt %d: assignment to out-of-range t%d" i t;
          if defined.(t) then
            Verr.fail phase
              "stmt %d: t%d assigned more than once (violates SSA)" i t;
          defined.(t) <- true)
        (DF.stmt_defs s))
    b.stmts;
  DF.ISet.iter
    (fun t ->
      if t < 0 || t >= n || not defined.(t) then
        Verr.fail phase "block next uses undefined t%d" t)
    (DF.expr_uses b.next)

let typecheck phase f b =
  try f b
  with Vex_ir.Typecheck.Ill_typed m -> Verr.fail phase "ill-typed: %s" m

(* ------------------- canonical constants ---------------------------- *)

(* Every constant in the IR must be in canonical (zero-extended) form:
   CI8 in [0, 0xFF], CI16 in [0, 0xFFFF], CI32 with no bits above 31.
   The smart constructors (Ir.i8/i16/i32) and the evaluator truncate, but
   a fold pass that manufactures a constant by hand can smuggle in a
   wide value — which then compares unequal to the canonical form of the
   same number, breaking downstream CSE and constant-branch folding. *)

let const_canonical = function
  | CI8 v -> v >= 0 && v <= 0xFF
  | CI16 v -> v >= 0 && v <= 0xFFFF
  | CI32 v -> Support.Bits.trunc32 v = v
  | CI1 _ | CI64 _ | CF64 _ | CV128 _ -> true

let rec check_expr_consts phase i = function
  | Get _ | RdTmp _ -> ()
  | Load (_, a) -> check_expr_consts phase i a
  | Const c ->
      if not (const_canonical c) then
        Verr.fail phase "stmt %d: non-canonical constant %a" i
          Vex_ir.Pp.pp_const c
  | Unop (_, a) -> check_expr_consts phase i a
  | Binop (_, a, b) ->
      check_expr_consts phase i a;
      check_expr_consts phase i b
  | ITE (c, t, e) ->
      check_expr_consts phase i c;
      check_expr_consts phase i t;
      check_expr_consts phase i e
  | CCall (_, _, args) -> List.iter (check_expr_consts phase i) args

let check_consts phase (b : block) : unit =
  Support.Vec.iteri
    (fun i s ->
      match s with
      | NoOp | IMark _ -> ()
      | AbiHint (e, _) | Put (_, e) | WrTmp (_, e) | Exit (e, _, _) ->
          check_expr_consts phase i e
      | Store (a, d) ->
          check_expr_consts phase i a;
          check_expr_consts phase i d
      | Dirty d ->
          check_expr_consts phase i d.d_guard;
          List.iter (check_expr_consts phase i) d.d_args;
          (match d.d_mfx with
          | Mfx_none -> ()
          | Mfx_read (e, _) | Mfx_write (e, _) -> check_expr_consts phase i e))
    b.stmts;
  check_expr_consts phase (Support.Vec.length b.stmts) b.next

(** Tree-IR well-formedness: typing + SSA + def-before-use + canonical
    constants. *)
let check_tree ~phase (b : block) : unit =
  typecheck phase Vex_ir.Typecheck.check_block b;
  check_ssa phase b;
  check_consts phase b

(** Flat-IR well-formedness: typing + flatness + SSA + def-before-use +
    canonical constants. *)
let check_flat_ssa ~phase (b : block) : unit =
  typecheck phase Vex_ir.Typecheck.check_flat b;
  check_ssa phase b;
  check_consts phase b

(* ---------------------- effect skeletons ---------------------------- *)

(** The observable-effect skeleton of a block: the sequence of
    side-effecting statements with their identifying payloads.  Pure
    [WrTmp]s are excluded (optimisation may remove or merge them). *)
type effect_item =
  | EPut of int * int  (** offset, size *)
  | EStore
  | EDirty of string  (** callee name *)
  | EExit of jumpkind * int64
  | EImark of int64 * int

let pp_item ppf = function
  | EPut (o, s) -> Fmt.pf ppf "PUT(%d,%d)" o s
  | EStore -> Fmt.string ppf "STORE"
  | EDirty n -> Fmt.pf ppf "DIRTY(%s)" n
  | EExit (_, d) -> Fmt.pf ppf "EXIT(0x%LX)" d
  | EImark (a, l) -> Fmt.pf ppf "IMARK(0x%LX,%d)" a l

let skeleton (b : block) : effect_item list =
  List.rev
    (DF.forward ~init:[]
       ~f:(fun acc _ s ->
         match s with
         | Put (off, e) -> EPut (off, size_of_ty (type_of b e)) :: acc
         | Store _ -> EStore :: acc
         | Dirty d -> EDirty d.d_callee.c_name :: acc
         | Exit (_, jk, dest) -> EExit (jk, dest) :: acc
         | IMark (a, l) -> EImark (a, l) :: acc
         | _ -> acc)
       b)

let rec is_subsequence (xs : effect_item list) (ys : effect_item list) :
    effect_item option =
  match (xs, ys) with
  | [], _ -> None
  | x :: _, [] -> Some x
  | x :: xs', y :: ys' ->
      if x = y then is_subsequence xs' ys' else is_subsequence xs ys'

(** Phase-4 boundary: opt2's output must be flat, SSA, well-typed, keep
    the jump kind, and its effect skeleton must be a subsequence of its
    input's (folding and dead-code removal only ever drop effects —
    redundant PUTs, never-taken exits — they cannot invent or reorder
    them). *)
let check_opt2 ~pre ~post : unit =
  let phase = "phase 4 (opt2)" in
  check_flat_ssa ~phase post;
  if post.jumpkind <> pre.jumpkind then
    Verr.fail phase "jump kind changed across opt2";
  match is_subsequence (skeleton post) (skeleton pre) with
  | None -> ()
  | Some item ->
      Verr.fail phase
        "effect %a in opt2 output is not a subsequence of its input \
         (reordered or invented effect)"
        pp_item item

(** Phase-5 boundary: tree building must preserve the effect skeleton
    exactly (it only substitutes single-use temp definitions into use
    sites), and its output must be well-formed tree IR.  A PUT dropped or
    reordered by tree building is caught here. *)
let check_treebuild ~pre ~post : unit =
  let phase = "phase 5 (treebuild)" in
  check_tree ~phase post;
  if post.jumpkind <> pre.jumpkind then
    Verr.fail phase "jump kind changed across tree building";
  (match (pre.next, post.next) with
  | Const c1, Const c2 when c1 <> c2 ->
      Verr.fail phase "constant block successor changed across tree building"
  | _ -> ());
  let sk_pre = skeleton pre and sk_post = skeleton post in
  if sk_pre <> sk_post then
    let rec first_diff i = function
      | [], [] -> assert false
      | x :: _, [] | [], x :: _ ->
          Verr.fail phase "effect skeleton length changed at item %d: %a" i
            pp_item x
      | x :: xs, y :: ys ->
          if x <> y then
            Verr.fail phase "effect %d changed: %a became %a" i pp_item x
              pp_item y
          else first_diff (i + 1) (xs, ys)
    in
    first_diff 0 (sk_pre, sk_post)
