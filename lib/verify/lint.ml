(** Tool-instrumentation lints (the static side of phase 3).

    A tool's [instrument] receives flat IR and may only {e add} analysis
    code around it: shadow-state PUTs inside the tool's declared shadow
    ranges, helper calls, and client-memory loads/stores.  Given the
    block before and after instrumentation and the tool's declared shadow
    ranges, these lints flag phase-3 output that

    - drops, reorders or invents {e architectural} guest-state PUTs
      (offsets below [Guest.Arch.shadow_offset]) — rule [arch-puts];
    - writes guest state at or above the shadow base outside the tool's
      declared shadow ranges — rule [shadow-range];
    - adds Dirty helper calls whose declared RdFX/WrFX guest-state
      effects are malformed (empty or out of the ThreadState's guest
      area) or clobber architectural state — rule [helper-fx];
    - declares a memory effect ([Mfx_read]/[Mfx_write]) with a
      non-positive size — rule [mfx].

    The rules are exact for the instrumentation style all in-tree tools
    use (statement insertion, never rewriting of architectural effects),
    so a violation is a real tool bug, not noise. *)

open Vex_ir.Ir
module DF = Dataflow
module GA = Guest.Arch

type violation = { v_rule : string; v_msg : string }

let v rule fmt = Fmt.kstr (fun m -> { v_rule = rule; v_msg = m }) fmt

(* the architectural PUT skeleton: ordered (offset, size) of PUTs below
   the shadow base *)
let arch_puts (b : block) : (int * int) list =
  DF.put_skeleton ~limit:GA.shadow_offset b

let dirty_names (b : block) : (string, unit) Hashtbl.t =
  let tbl = Hashtbl.create 8 in
  Support.Vec.iter
    (fun s ->
      match s with
      | Dirty d -> Hashtbl.replace tbl d.d_callee.c_name ()
      | _ -> ())
    b.stmts;
  tbl

(** Lint one instrumentation step.  [shadow] is the tool's declared
    shadow ranges ([(offset, size)], absolute ThreadState offsets).
    Returns all violations found (empty = clean). *)
let check ~(shadow : (int * int) list) ~(pre : block) ~(post : block) :
    violation list =
  let out = ref [] in
  let emit x = out := x :: !out in
  (* [arch-puts]: the instrumented block must preserve the architectural
     PUT sequence exactly — tools insert, they do not rewrite *)
  let pre_sk = arch_puts pre and post_sk = arch_puts post in
  if pre_sk <> post_sk then begin
    let rec diff i = function
      | [], [] -> ()
      | (o, s) :: _, [] ->
          emit
            (v "arch-puts"
               "instrumentation dropped architectural PUT(%d,%d) (item %d)" o
               s i)
      | [], (o, s) :: _ ->
          emit
            (v "arch-puts"
               "instrumentation added architectural PUT(%d,%d) (item %d)" o s
               i)
      | (o1, s1) :: xs, (o2, s2) :: ys ->
          if (o1, s1) <> (o2, s2) then
            emit
              (v "arch-puts"
                 "architectural PUT %d changed: (%d,%d) became (%d,%d)" i o1
                 s1 o2 s2)
          else diff (i + 1) (xs, ys)
    in
    diff 0 (pre_sk, post_sk)
  end;
  (* [shadow-range]: every PUT at/above the shadow base must fall inside
     a declared shadow range *)
  Support.Vec.iteri
    (fun i s ->
      match s with
      | Put (off, e) when off >= GA.shadow_offset ->
          let r = (off, size_of_ty (type_of post e)) in
          if not (DF.covered_by r shadow) then
            emit
              (v "shadow-range"
                 "stmt %d: PUT(%d,%d) outside the tool's declared shadow \
                  ranges"
                 i (fst r) (snd r))
      | _ -> ())
    post.stmts;
  (* [helper-fx] / [mfx]: effect declarations on tool-added Dirty calls *)
  let pre_dirty = dirty_names pre in
  Support.Vec.iteri
    (fun i s ->
      match s with
      | Dirty d ->
          (match d.d_mfx with
          | Mfx_read (_, n) | Mfx_write (_, n) ->
              if n <= 0 then
                emit
                  (v "mfx"
                     "stmt %d: Dirty %s declares a memory effect of size %d"
                     i d.d_callee.c_name n)
          | Mfx_none -> ());
          if not (Hashtbl.mem pre_dirty d.d_callee.c_name) then begin
            let check_range what allow_arch (o, sz) =
              if sz <= 0 then
                emit
                  (v "helper-fx" "stmt %d: helper %s declares %s(%d,%d)" i
                     d.d_callee.c_name what o sz)
              else if o < 0 || o + sz > GA.state_size then
                emit
                  (v "helper-fx"
                     "stmt %d: helper %s declares %s(%d,%d) outside the \
                      guest state [0,%d)"
                     i d.d_callee.c_name what o sz GA.state_size)
              else if
                (not allow_arch)
                && o < GA.shadow_offset
                && not (DF.covered_by (o, sz) shadow)
              then
                emit
                  (v "helper-fx"
                     "stmt %d: helper %s declares %s(%d,%d) clobbering \
                      architectural guest state"
                     i d.d_callee.c_name what o sz)
            in
            List.iter (check_range "RdFX" true) d.d_callee.c_fx_reads;
            List.iter (check_range "WrFX" false) d.d_callee.c_fx_writes
          end
      | _ -> ())
    post.stmts;
  List.rev !out
