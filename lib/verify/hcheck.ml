(** Phase-7 boundary: sanity of register-allocated host code.

    After allocation every register field must be a real VH64 register
    (4-bit encodable), and a forward dataflow over the listing proves:

    - no instruction reads an integer or vector host register that no
      earlier instruction (on every path) has written — at entry only the
      GSP holds a defined value;
    - the GSP itself is never written;
    - spill-slot discipline: loads from the per-thread spill zone only
      read slots a store has filled on every path, accesses are
      width-natural (8-byte int / 16-byte vec) and slot-aligned, and
      GSP-relative addressing stays inside the ThreadState;
    - label integrity: labels defined exactly once, branches target
      defined labels and only branch forward (superblock invariant);
    - helper calls respect the ABI: argument registers defined at the
      call, caller-saved registers treated as clobbered after it;
    - immediates and displacements survive the 32-bit encodings, and
      control cannot fall off the end of the listing.

    Branch joins meet states by intersection ("defined only if defined on
    every incoming path"), which is exact for the forward-branching code
    the JIT emits. *)

module H = Host.Arch

let phase = "phase 7 (regalloc)"

type state = {
  idef : bool array;  (** integer register holds a defined value *)
  vdef : bool array;
  istored : bool array;  (** int spill slot has been filled *)
  vstored : bool array;
}

let entry_state () =
  let idef = Array.make H.n_hregs false in
  idef.(H.gsp) <- true;
  {
    idef;
    vdef = Array.make H.n_hvregs false;
    istored = Array.make H.spill_slots_int false;
    vstored = Array.make H.spill_slots_vec false;
  }

(* top: the state for code only reachable by branches we have not seen
   (i.e. not reachable at all in a forward-branch listing) *)
let top_state () =
  {
    idef = Array.make H.n_hregs true;
    vdef = Array.make H.n_hvregs true;
    istored = Array.make H.spill_slots_int true;
    vstored = Array.make H.spill_slots_vec true;
  }

let copy_state s =
  {
    idef = Array.copy s.idef;
    vdef = Array.copy s.vdef;
    istored = Array.copy s.istored;
    vstored = Array.copy s.vstored;
  }

let meet_into (dst : state) (src : state) =
  let andwise d s = Array.iteri (fun i v -> d.(i) <- d.(i) && v) s in
  andwise dst.idef src.idef;
  andwise dst.vdef src.vdef;
  andwise dst.istored src.istored;
  andwise dst.vstored src.vstored

(* register fields referenced by an insn, for the 4-bit encodability
   check: (int fields, vec fields) *)
let reg_fields : H.insn -> int list * int list = function
  | H.Movi (d, _) -> ([ d ], [])
  | H.Mov (d, s) -> ([ d; s ], [])
  | H.Alu (_, _, d, s1, s2) -> ([ d; s1; s2 ], [])
  | H.Alui (_, _, d, s1, _) -> ([ d; s1 ], [])
  | H.Ld (_, _, d, b, _) -> ([ d; b ], [])
  | H.St (_, s, b, _) -> ([ s; b ], [])
  | H.Cmov (d, c, s) -> ([ d; c; s ], [])
  | H.Falu (_, d, s1, s2) -> ([ d; s1; s2 ], [])
  | H.Fun1 (_, d, s) -> ([ d; s ], [])
  | H.Vld (d, b, _) -> ([ b ], [ d ])
  | H.Vst (s, b, _) -> ([ b ], [ s ])
  | H.Vmov (d, s) -> ([], [ d; s ])
  | H.Valu (_, d, s1, s2) -> ([], [ d; s1; s2 ])
  | H.Vnot (d, s) -> ([], [ d; s ])
  | H.Vsplat32 (d, s) -> ([ s ], [ d ])
  | H.Vpack (d, hi, lo) -> ([ hi; lo ], [ d ])
  | H.Vunpack (d, s, _) -> ([ d ], [ s ])
  | H.Call _ -> ([], [])
  | H.Jz (c, _) | H.Jnz (c, _) -> ([ c ], [])
  | H.Jmp _ | H.Label _ -> ([], [])
  | H.ExitIf (c, _, _) -> ([ c ], [])
  | H.Goto (_, s) -> ([ s ], [])
  | H.GotoI _ -> ([], [])

let fits_u32 (v : int64) = Int64.logand v 0xFFFF_FFFFL = v

let fits_disp (disp : int) =
  disp >= Int32.to_int Int32.min_int && disp <= Int32.to_int Int32.max_int

let pp = H.pp_insn

(** Check a register-allocated listing. *)
let check (code : H.insn list) : unit =
  let code = Array.of_list code in
  let n = Array.length code in
  (* pass 1: label positions *)
  let label_pos = Hashtbl.create 16 in
  Array.iteri
    (fun pos i ->
      match i with
      | H.Label l ->
          if Hashtbl.mem label_pos l then
            Verr.fail phase "insn %d: label L%d defined twice" pos l;
          Hashtbl.replace label_pos l pos
      | _ -> ())
    code;
  let check_target pos l =
    match Hashtbl.find_opt label_pos l with
    | None -> Verr.fail phase "insn %d: branch to undefined label L%d" pos l
    | Some p when p <= pos ->
        Verr.fail phase
          "insn %d: backward branch to L%d (superblocks branch forward only)"
          pos l
    | Some _ -> ()
  in
  (* snapshots of branch states per label *)
  let incoming : (int, state) Hashtbl.t = Hashtbl.create 16 in
  let record_jump l st =
    match Hashtbl.find_opt incoming l with
    | None -> Hashtbl.replace incoming l (copy_state st)
    | Some acc -> meet_into acc st
  in
  let st = ref (entry_state ()) in
  let reachable = ref true in
  let read_i pos r =
    if not (!st).idef.(r) then
      Verr.fail phase
        "insn %d: read of unassigned host register %%h%d (%a)" pos r pp
        code.(pos)
  in
  let read_v pos v =
    if not (!st).vdef.(v) then
      Verr.fail phase
        "insn %d: read of unassigned vector register %%hv%d (%a)" pos v pp
        code.(pos)
  in
  let write_i pos r =
    if r = H.gsp then
      Verr.fail phase "insn %d: write to the reserved GSP %%h%d (%a)" pos r pp
        code.(pos);
    (!st).idef.(r) <- true
  in
  let write_v _pos v = (!st).vdef.(v) <- true in
  (* classify a GSP-relative displacement *)
  let in_int_spill disp =
    disp >= H.spill_base_int && disp < H.spill_base_vec
  in
  let in_vec_spill disp =
    disp >= H.spill_base_vec && disp < H.threadstate_size
  in
  let int_slot pos disp =
    if (disp - H.spill_base_int) mod 8 <> 0 then
      Verr.fail phase "insn %d: misaligned int spill access at %d" pos disp;
    (disp - H.spill_base_int) / 8
  in
  let vec_slot pos disp =
    if (disp - H.spill_base_vec) mod 16 <> 0 then
      Verr.fail phase "insn %d: misaligned vec spill access at %d" pos disp;
    (disp - H.spill_base_vec) / 16
  in
  let check_gsp_range pos disp sz =
    if disp < 0 || disp + sz > H.threadstate_size then
      Verr.fail phase
        "insn %d: GSP-relative access [%d,%d) outside the ThreadState (%a)"
        pos disp (disp + sz) pp code.(pos)
  in
  for pos = 0 to n - 1 do
    let i = code.(pos) in
    (* 4-bit register-field encodability *)
    let irs, vrs = reg_fields i in
    List.iter
      (fun r ->
        if r < 0 || r >= H.n_hregs then
          Verr.fail phase
            "insn %d: integer register field %d not encodable (%a)" pos r pp i)
      irs;
    List.iter
      (fun v ->
        if v < 0 || v >= H.n_hvregs then
          Verr.fail phase
            "insn %d: vector register field %d not encodable (%a)" pos v pp i)
      vrs;
    (match i with
    | H.Label l ->
        (* join point: meet branch states with fall-through *)
        let joined =
          match (Hashtbl.find_opt incoming l, !reachable) with
          | Some acc, true ->
              meet_into acc !st;
              acc
          | Some acc, false -> acc
          | None, true -> !st
          | None, false -> top_state ()
        in
        st := joined;
        reachable := true
    | _ when not !reachable ->
        (* skip unreachable straight-line code (does not occur in
           JIT output, but keep the checker total) *)
        ()
    | H.Movi (d, _) -> write_i pos d
    | H.Mov (d, s) ->
        read_i pos s;
        write_i pos d
    | H.Alu (_, _, d, s1, s2) ->
        read_i pos s1;
        read_i pos s2;
        write_i pos d
    | H.Alui (w, _, d, s1, imm) ->
        let ok =
          match w with
          | H.W32 -> Int64.unsigned_compare imm 0xFFFF_FFFFL <= 0
          | H.W64 -> Support.Bits.sext32 imm = imm
        in
        if not ok then
          Verr.fail phase "insn %d: immediate 0x%LX not encodable (%a)" pos
            imm pp i;
        read_i pos s1;
        write_i pos d
    | H.Ld (sz, _, d, b, disp) ->
        if not (List.mem sz [ 1; 2; 4; 8 ]) then
          Verr.fail phase "insn %d: bad load size %d" pos sz;
        if not (fits_disp disp) then
          Verr.fail phase "insn %d: displacement %d not encodable" pos disp;
        if b = H.gsp then begin
          check_gsp_range pos disp sz;
          if in_vec_spill disp then
            Verr.fail phase
              "insn %d: integer load from the vector spill zone (%a)" pos pp i;
          if in_int_spill disp then begin
            if sz <> 8 then
              Verr.fail phase "insn %d: %d-byte access to an int spill slot"
                pos sz;
            let slot = int_slot pos disp in
            if not (!st).istored.(slot) then
              Verr.fail phase
                "insn %d: load from int spill slot %d before any store (%a)"
                pos slot pp i
          end
        end
        else read_i pos b;
        write_i pos d
    | H.St (sz, s, b, disp) ->
        if not (List.mem sz [ 1; 2; 4; 8 ]) then
          Verr.fail phase "insn %d: bad store size %d" pos sz;
        if not (fits_disp disp) then
          Verr.fail phase "insn %d: displacement %d not encodable" pos disp;
        read_i pos s;
        if b = H.gsp then begin
          check_gsp_range pos disp sz;
          if in_vec_spill disp then
            Verr.fail phase
              "insn %d: integer store into the vector spill zone (%a)" pos pp
              i;
          if in_int_spill disp then begin
            if sz <> 8 then
              Verr.fail phase "insn %d: %d-byte access to an int spill slot"
                pos sz;
            (!st).istored.(int_slot pos disp) <- true
          end
        end
        else read_i pos b
    | H.Cmov (d, c, s) ->
        read_i pos c;
        read_i pos s;
        read_i pos d;
        (* conditional: d keeps its old value when c = 0 *)
        write_i pos d
    | H.Falu (_, d, s1, s2) ->
        read_i pos s1;
        read_i pos s2;
        write_i pos d
    | H.Fun1 (_, d, s) ->
        read_i pos s;
        write_i pos d
    | H.Vld (d, b, disp) ->
        if not (fits_disp disp) then
          Verr.fail phase "insn %d: displacement %d not encodable" pos disp;
        if b = H.gsp then begin
          check_gsp_range pos disp 16;
          if in_int_spill disp then
            Verr.fail phase
              "insn %d: vector load from the int spill zone (%a)" pos pp i;
          if in_vec_spill disp then begin
            let slot = vec_slot pos disp in
            if not (!st).vstored.(slot) then
              Verr.fail phase
                "insn %d: load from vec spill slot %d before any store" pos
                slot
          end
        end
        else read_i pos b;
        write_v pos d
    | H.Vst (s, b, disp) ->
        if not (fits_disp disp) then
          Verr.fail phase "insn %d: displacement %d not encodable" pos disp;
        read_v pos s;
        if b = H.gsp then begin
          check_gsp_range pos disp 16;
          if in_int_spill disp then
            Verr.fail phase
              "insn %d: vector store into the int spill zone (%a)" pos pp i;
          if in_vec_spill disp then (!st).vstored.(vec_slot pos disp) <- true
        end
        else read_i pos b
    | H.Vmov (d, s) ->
        read_v pos s;
        write_v pos d
    | H.Valu (_, d, s1, s2) ->
        read_v pos s1;
        read_v pos s2;
        write_v pos d
    | H.Vnot (d, s) ->
        read_v pos s;
        write_v pos d
    | H.Vsplat32 (d, s) ->
        read_i pos s;
        write_v pos d
    | H.Vpack (d, hi, lo) ->
        read_i pos hi;
        read_i pos lo;
        write_v pos d
    | H.Vunpack (d, s, half) ->
        if half <> 0 && half <> 1 then
          Verr.fail phase "insn %d: vunpack half %d not 0/1" pos half;
        read_v pos s;
        write_i pos d
    | H.Call (id, nargs, cost) ->
        if id < 0 || id > 0xFFFF then
          Verr.fail phase "insn %d: helper id %d not encodable" pos id;
        if nargs < 0 || nargs > List.length H.arg_regs then
          Verr.fail phase "insn %d: call with %d arguments exceeds the ABI"
            pos nargs;
        if cost < 0 || cost > 0xFFFF then
          Verr.fail phase "insn %d: call cost %d not encodable" pos cost;
        for a = 0 to nargs - 1 do
          read_i pos a
        done;
        (* caller-saved registers are clobbered; the result lands in h0 *)
        List.iter (fun r -> (!st).idef.(r) <- false) H.caller_saved_int;
        List.iter (fun v -> (!st).vdef.(v) <- false) H.caller_saved_vec;
        (!st).idef.(H.ret_reg) <- true
    | H.Jz (c, l) | H.Jnz (c, l) ->
        read_i pos c;
        check_target pos l;
        record_jump l !st
    | H.Jmp l ->
        check_target pos l;
        record_jump l !st;
        reachable := false
    | H.ExitIf (c, ek, dest) ->
        read_i pos c;
        if ek < 0 || ek > 0xFF then
          Verr.fail phase "insn %d: exit kind %d not encodable" pos ek;
        if not (fits_u32 dest) then
          Verr.fail phase "insn %d: exit target 0x%LX not encodable" pos dest
    | H.Goto (ek, s) ->
        read_i pos s;
        if ek < 0 || ek > 0xFF then
          Verr.fail phase "insn %d: exit kind %d not encodable" pos ek;
        reachable := false
    | H.GotoI (ek, dest) ->
        if ek < 0 || ek > 0xFF then
          Verr.fail phase "insn %d: exit kind %d not encodable" pos ek;
        if not (fits_u32 dest) then
          Verr.fail phase "insn %d: exit target 0x%LX not encodable" pos dest;
        reachable := false)
  done;
  if !reachable then
    Verr.fail phase "control can fall off the end of the translation"
