(** Phase-6 boundary: sanity of the instruction selector's output.

    Isel emits {!Jit.Isel.vinsn}s over {e virtual} registers numbered
    from [Host.Arch.n_hregs] (resp. [n_hvregs]) upward, so the only
    physical register that may appear is the GSP — and only as the base
    of a load or store.  The selector works bottom-up, so every virtual
    register is defined strictly before its first use, labels are defined
    exactly once and only branched to forward, and helper calls respect
    the argument-register ABI limit. *)

open Jit.Isel
module H = Host.Arch

let phase = "phase 6 (isel)"

(* (int reads, int writes, vec reads, vec writes, gsp-eligible bases) *)
let operands (i : vinsn) :
    int list * int list * int list * int list * int list =
  match i with
  | V (H.Movi (d, _)) -> ([], [ d ], [], [], [])
  | V (H.Mov (d, s)) -> ([ s ], [ d ], [], [], [])
  | V (H.Alu (_, _, d, s1, s2)) -> ([ s1; s2 ], [ d ], [], [], [])
  | V (H.Alui (_, _, d, s1, _)) -> ([ s1 ], [ d ], [], [], [])
  | V (H.Ld (_, _, d, b, _)) -> ([], [ d ], [], [], [ b ])
  | V (H.St (_, s, b, _)) -> ([ s ], [], [], [], [ b ])
  | V (H.Cmov (d, c, s)) -> ([ c; s; d ], [ d ], [], [], [])
  | V (H.Falu (_, d, s1, s2)) -> ([ s1; s2 ], [ d ], [], [], [])
  | V (H.Fun1 (_, d, s)) -> ([ s ], [ d ], [], [], [])
  | V (H.Vld (d, b, _)) -> ([], [], [], [ d ], [ b ])
  | V (H.Vst (s, b, _)) -> ([], [], [ s ], [], [ b ])
  | V (H.Vmov (d, s)) -> ([], [], [ s ], [ d ], [])
  | V (H.Valu (_, d, s1, s2)) -> ([], [], [ s1; s2 ], [ d ], [])
  | V (H.Vnot (d, s)) -> ([], [], [ s ], [ d ], [])
  | V (H.Vsplat32 (d, s)) -> ([ s ], [], [], [ d ], [])
  | V (H.Vpack (d, hi, lo)) -> ([ hi; lo ], [], [], [ d ], [])
  | V (H.Vunpack (d, s, _)) -> ([], [ d ], [ s ], [], [])
  | V (H.Call _) -> ([], [], [], [], [])
  | V (H.Jz (c, _)) | V (H.Jnz (c, _)) -> ([ c ], [], [], [], [])
  | V (H.Jmp _) | V (H.Label _) -> ([], [], [], [], [])
  | V (H.ExitIf (c, _, _)) -> ([ c ], [], [], [], [])
  | V (H.Goto (_, s)) -> ([ s ], [], [], [], [])
  | V (H.GotoI _) -> ([], [], [], [], [])
  | VCall { args; dst; _ } -> (args, Option.to_list dst, [], [], [])

let pp_vinsn ppf = function
  | V i -> H.pp_insn ppf i
  | VCall { callee; args; _ } ->
      Fmt.pf ppf "vcall %s/%d" callee.Vex_ir.Ir.c_name (List.length args)

(** Check a full vcode listing against its declared register and label
    counts. *)
let check (code : vinsn list) ~(n_int : int) ~(n_vec : int) ~(n_label : int)
    : unit =
  let int_defined = Array.make (max n_int H.n_hregs) false in
  let vec_defined = Array.make (max n_vec H.n_hvregs) false in
  let label_def = Array.make (max n_label 1) (-1) in
  (* pass 1: label definition sites *)
  List.iteri
    (fun pos i ->
      match i with
      | V (H.Label l) ->
          if l < 0 || l >= n_label then
            Verr.fail phase "insn %d: label L%d out of range [0,%d)" pos l
              n_label;
          if label_def.(l) >= 0 then
            Verr.fail phase "insn %d: label L%d defined twice" pos l;
          label_def.(l) <- pos
      | _ -> ())
    code;
  let check_target pos l =
    if l < 0 || l >= n_label then
      Verr.fail phase "insn %d: branch to out-of-range label L%d" pos l;
    if label_def.(l) < 0 then
      Verr.fail phase "insn %d: branch to undefined label L%d" pos l;
    if label_def.(l) <= pos then
      Verr.fail phase
        "insn %d: backward branch to L%d (superblocks branch forward only)"
        pos l
  in
  List.iteri
    (fun pos i ->
      let ir, iw, vr, vw, bases = operands i in
      List.iter
        (fun r ->
          if r <> H.gsp then begin
            if r < H.n_hregs || r >= n_int then
              Verr.fail phase
                "insn %d: base register %d is neither the GSP nor a valid \
                 int vreg (%a)"
                pos r pp_vinsn i;
            if not int_defined.(r) then
              Verr.fail phase "insn %d: base vreg %d used before definition"
                pos r
          end)
        bases;
      List.iter
        (fun r ->
          if r < H.n_hregs || r >= n_int then
            Verr.fail phase "insn %d: int vreg %d out of range [%d,%d) (%a)"
              pos r H.n_hregs n_int pp_vinsn i;
          if not int_defined.(r) then
            Verr.fail phase "insn %d: int vreg %d used before definition (%a)"
              pos r pp_vinsn i)
        ir;
      List.iter
        (fun v ->
          if v < H.n_hvregs || v >= n_vec then
            Verr.fail phase "insn %d: vec vreg %d out of range [%d,%d)" pos v
              H.n_hvregs n_vec;
          if not vec_defined.(v) then
            Verr.fail phase "insn %d: vec vreg %d used before definition" pos
              v)
        vr;
      (match i with
      | V (H.Call _) ->
          Verr.fail phase "insn %d: physical Call before register allocation"
            pos
      | V (H.Jz (_, l)) | V (H.Jnz (_, l)) | V (H.Jmp l) ->
          check_target pos l
      | VCall { args; _ } ->
          let limit = List.length H.arg_regs in
          if List.length args > limit then
            Verr.fail phase
              "insn %d: helper call with %d arguments exceeds the %d \
               argument registers"
              pos (List.length args) limit
      | _ -> ());
      List.iter
        (fun r ->
          if r < H.n_hregs || r >= n_int then
            Verr.fail phase
              "insn %d: write to int register %d outside the vreg space" pos
              r
          else int_defined.(r) <- true)
        iw;
      List.iter
        (fun v ->
          if v < H.n_hvregs || v >= n_vec then
            Verr.fail phase
              "insn %d: write to vec register %d outside the vreg space" pos
              v
          else vec_defined.(v) <- true)
        vw)
    code
