(** Phase-8 boundary: the assembled bytes must decode back to the
    register-allocated listing.

    The encoding is narrowing in known ways (labels become instruction
    indices, ALU immediates and displacements travel as 32 bits and are
    sign-extended at decode, exit targets as unsigned 32 bits), so the
    check first {e normalises} the listing through those lawful
    narrowings and then requires [decode (assemble hcode)] to match it
    instruction for instruction.  Any other difference — a corrupted
    byte, an emitter bug, a register field that silently overflowed its
    4-bit slot — is a verification failure. *)

module H = Host.Arch
open Support

let phase = "phase 8 (assemble)"

(* label -> index of the following real instruction (matches how decode
   rewrites branch byte-offsets: a label's byte offset is the offset of
   the next encoded instruction) *)
let label_indices (hcode : H.insn list) : (int, int) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  let idx = ref 0 in
  List.iter
    (fun i ->
      match i with
      | H.Label l -> Hashtbl.replace tbl l !idx
      | _ -> incr idx)
    hcode;
  tbl

(** The instruction array [decode (assemble hcode)] must produce. *)
let expected (hcode : H.insn list) : H.insn array =
  let labels = label_indices hcode in
  let target pos l =
    match Hashtbl.find_opt labels l with
    | Some i -> i
    | None -> Verr.fail phase "insn %d: undefined label L%d" pos l
  in
  let norm_imm imm = Bits.sext32 (Bits.trunc32 imm) in
  let norm_disp disp = Int64.to_int (Bits.sext32 (Int64.of_int disp)) in
  let norm_dest dest = Int64.logand dest 0xFFFF_FFFFL in
  hcode
  |> List.filter (function H.Label _ -> false | _ -> true)
  |> List.mapi (fun pos i ->
         match i with
         | H.Alui (w, op, d, s1, imm) -> H.Alui (w, op, d, s1, norm_imm imm)
         | H.Ld (sz, sx, d, b, disp) -> H.Ld (sz, sx, d, b, norm_disp disp)
         | H.St (sz, s, b, disp) -> H.St (sz, s, b, norm_disp disp)
         | H.Vld (d, b, disp) -> H.Vld (d, b, norm_disp disp)
         | H.Vst (s, b, disp) -> H.Vst (s, b, norm_disp disp)
         | H.Jz (c, l) -> H.Jz (c, target pos l)
         | H.Jnz (c, l) -> H.Jnz (c, target pos l)
         | H.Jmp l -> H.Jmp (target pos l)
         | H.ExitIf (c, ek, dest) -> H.ExitIf (c, ek, norm_dest dest)
         | H.GotoI (ek, dest) -> H.GotoI (ek, norm_dest dest)
         | H.Call (id, nargs, cost) ->
             H.Call (id land 0xFFFF, nargs land 0xFF, cost land 0xFFFF)
         | i -> i)
  |> Array.of_list

(** Check [bytes] against the listing it was assembled from. *)
let check ~(hcode : H.insn list) ~(bytes : Bytes.t) : unit =
  let want = expected hcode in
  let got =
    try Host.Encode.decode bytes
    with Host.Encode.Decode_error off ->
      Verr.fail phase "assembled bytes fail to decode at offset %d" off
  in
  if Array.length got <> Array.length want then
    Verr.fail phase "decoded %d instructions, assembled %d"
      (Array.length got) (Array.length want);
  Array.iteri
    (fun i g ->
      if g <> want.(i) then
        Verr.fail phase
          "round-trip mismatch at insn %d: assembled %a, decoded %a" i
          H.pp_insn want.(i) H.pp_insn g)
    got
