(** Mutation validation for the phase-boundary verifiers.

    The only way to trust a verifier is to show it catching real bugs:
    this harness compiles a small guest corpus through the full pipeline
    under a representative shadow-state tool, then injects seeded
    miscompile bugs into individual intermediate results — a dropped PUT,
    a register-allocator assignment lost, a wrong shift width, a stale
    branch label, a corrupted byte — and asserts that re-running the
    checks reports each one {e at the earliest boundary that can see it}.
    A mutation that slips through every check is a verifier hole; CI
    fails on any such escape (see [bin/vglint.ml]). *)

open Vex_ir.Ir
module H = Host.Arch
module GA = Guest.Arch
module P = Jit.Pipeline

(* ------------------------------------------------------------------ *)
(* Corpus: a guest program exercising shifts, flags, branches, memory  *)
(* and a loop, instrumented by a mini shadow-state tool                *)
(* ------------------------------------------------------------------ *)

(* Register values at block entry are unknown to the JIT, so the shifts
   below survive constant folding and reach the back end. *)
let corpus_src =
  {|
_start: shl r0, 2
        shr r1, r0
        mov r3, r1
        add r3, r0
        cmp r3, 960
        jne over
        sub r3, 1
over:   dec r2
        cmp r2, 0
        jne over
        jmp done
done:   jmp done
|}

(** The shadow ranges our mini-tool declares: the full per-register
    shadow bank, like memcheck's V-bits. *)
let shadow = [ (GA.shadow_offset, GA.guest_state_used) ]

(* A representative tool instrumenter: per instruction it calls a helper
   that declares an eip read (like an error-reporting helper) and writes
   one shadow location.  Exercises the Dirty and shadow-PUT lint paths
   the way the real tools do. *)
let h_note =
  lazy
    (Vex_ir.Helpers.register
       ~fx_reads:[ (GA.off_eip, 4) ]
       ~name:"vglint_note" ~cost:2
       (fun _env _args -> 0L))

let instrument (b : block) : block =
  let nb =
    {
      tyenv = Support.Vec.copy b.tyenv;
      stmts = Support.Vec.create NoOp;
      next = b.next;
      jumpkind = b.jumpkind;
    }
  in
  Support.Vec.iter
    (fun s ->
      add_stmt nb s;
      match s with
      | IMark _ ->
          add_stmt nb
            (Dirty
               {
                 d_guard = i1 true;
                 d_callee = Lazy.force h_note;
                 d_args = [];
                 d_tmp = None;
                 d_mfx = Mfx_none;
               });
          add_stmt nb (Put (GA.shadow_offset, i32 1L))
      | _ -> ())
    b.stmts;
  nb

let fetch_of (img : Guest.Image.t) (a : int64) : int =
  Char.code (Bytes.get img.text (Int64.to_int (Int64.sub a img.text_addr)))

let compile () : P.phases =
  let img = Guest.Asm.assemble corpus_src in
  fst (P.translate_phases ~fetch:(fetch_of img) ~instrument img.entry)

(* The same corpus through the tier-0 quick pipeline: phases 4 and 5 are
   identity transforms there, but every boundary check still fires, so a
   bug seeded into any quick-tier result must be caught just like in the
   optimizing tier. *)
let compile_quick () : P.phases =
  let img = Guest.Asm.assemble corpus_src in
  fst
    (P.translate_phases ~tier:P.Tier_quick ~fetch:(fetch_of img) ~instrument
       img.entry)

(* And through the superblock path: the entry block stitched with the
   [over] loop block (the conditional edge gets inverted), then the full
   optimizing pipeline over the combined region. *)
let compile_super () : P.phases =
  let img = Guest.Asm.assemble corpus_src in
  let fetch = fetch_of img in
  let over =
    match List.assoc_opt "over" img.symbols with
    | Some a -> a
    | None -> invalid_arg "mutate: corpus lost its 'over' label"
  in
  match Jit.Superblock.build ~fetch [ img.entry; over ] with
  | None -> invalid_arg "mutate: corpus path did not stitch"
  | Some (tree, stats, stitched) ->
      fst
        (P.translate_tree ~tier:P.Tier_super ~constituents:stitched ~fetch
           ~instrument (tree, stats) (List.hd stitched))

(* ------------------------------------------------------------------ *)
(* Block / listing surgery                                             *)
(* ------------------------------------------------------------------ *)

let with_stmts (b : block) (f : stmt list -> stmt list) : block =
  let nb = copy_block b in
  let ss = f (Support.Vec.to_list nb.stmts) in
  Support.Vec.clear nb.stmts;
  List.iter (Support.Vec.push nb.stmts) ss;
  nb

(* drop the first statement matching [p] (assert it exists) *)
let drop_first p ss =
  let rec go = function
    | [] -> invalid_arg "mutate: no statement to drop"
    | s :: tl -> if p s then tl else s :: go tl
  in
  go ss

(* rewrite the first statement matching [p] via [f] *)
let rewrite_first p f ss =
  let rec go = function
    | [] -> invalid_arg "mutate: no statement to rewrite"
    | s :: tl -> if p s then f s :: tl else s :: go tl
  in
  go ss

let int_reads : H.insn -> int list = function
  | H.Mov (_, s) -> [ s ]
  | H.Alu (_, _, _, s1, s2) -> [ s1; s2 ]
  | H.Alui (_, _, _, s1, _) -> [ s1 ]
  | H.Ld (_, _, _, b, _) -> [ b ]
  | H.St (_, s, b, _) -> [ s; b ]
  | H.Cmov (d, c, s) -> [ d; c; s ]
  | H.Vld (_, b, _) | H.Vst (_, b, _) -> [ b ]
  | H.Vsplat32 (_, s) -> [ s ]
  | H.Vpack (_, hi, lo) -> [ hi; lo ]
  | H.Jz (c, _) | H.Jnz (c, _) -> [ c ]
  | H.ExitIf (c, _, _) -> [ c ]
  | H.Goto (_, s) -> [ s ]
  | _ -> []

let int_writes : H.insn -> int list = function
  | H.Movi (d, _) | H.Mov (d, _) -> [ d ]
  | H.Alu (_, _, d, _, _) | H.Alui (_, _, d, _, _) -> [ d ]
  | H.Ld (_, _, d, _, _) -> [ d ]
  | H.Cmov (d, _, _) -> [ d ]
  | H.Vunpack (d, _, _) -> [ d ]
  | H.Call _ -> [ H.ret_reg ]
  | _ -> []

(* Find an instruction that is the *first* definition of a register read
   downstream before any redefinition — deleting it leaves a read of a
   never-assigned register for the regalloc checker to find.  (Deleting
   a later redefinition would be invisible to def-before-use analysis:
   the register would merely hold a stale value.) *)
let find_live_def (code : H.insn array) : int =
  let n = Array.length code in
  let live_after i r =
    let rec scan j =
      if j >= n then false
      else if List.mem r (int_reads code.(j)) then true
      else if List.mem r (int_writes code.(j)) then false
      else scan (j + 1)
    in
    scan (i + 1)
  in
  let seen = Hashtbl.create 16 in
  let rec go i =
    if i >= n then invalid_arg "mutate: no live defining instruction"
    else
      let first_def =
        match int_writes code.(i) with
        | [ r ]
          when r <> H.gsp && (not (Hashtbl.mem seen r)) && live_after i r ->
            true
        | _ -> false
      in
      if first_def then i
      else begin
        List.iter (fun r -> Hashtbl.replace seen r ()) (int_writes code.(i));
        go (i + 1)
      end
  in
  go 0

(* first int vreg defined anywhere in a vcode listing *)
let some_defined_vreg (code : Jit.Isel.vinsn list) : int =
  let found = ref (-1) in
  List.iter
    (fun vi ->
      if !found < 0 then
        match vi with
        | Jit.Isel.V i -> (
            match int_writes i with
            | [ r ] when r >= H.n_hregs -> found := r
            | _ -> ())
        | Jit.Isel.VCall { dst = Some d; _ } -> found := d
        | _ -> ())
    code;
  if !found < 0 then invalid_arg "mutate: no int vreg defined" else !found

(* ------------------------------------------------------------------ *)
(* The seeded bugs                                                     *)
(* ------------------------------------------------------------------ *)

type mutation = {
  m_name : string;
  m_expect : string;  (** earliest boundary that must catch it, e.g. "phase 5" *)
  m_shadow : (int * int) list;  (** shadow ranges to lint against *)
  m_apply : P.phases -> P.phases;
}

let mutations : mutation list =
  [
    {
      m_name = "use-before-def";
      m_expect = "phase 2";
      m_shadow = shadow;
      m_apply =
        (fun p ->
          (* reference a temporary before the statement defining it *)
          let t =
            Support.Vec.fold
              (fun acc s ->
                match (acc, s) with
                | None, WrTmp (t, _) when tmp_ty p.p_flat t = I32 ->
                    Some t
                | _ -> acc)
              None p.p_flat.stmts
            |> Option.get
          in
          {
            p with
            p_flat =
              with_stmts p.p_flat (fun ss ->
                  Put (GA.off_sp, RdTmp t) :: ss);
          });
    };
    {
      m_name = "wrong-shift-width";
      m_expect = "phase 2";
      m_shadow = shadow;
      m_apply =
        (fun p ->
          (* the classic miscompile: a 32-bit shift lowered as 64-bit *)
          {
            p with
            p_flat =
              with_stmts p.p_flat
                (rewrite_first
                   (function
                     | WrTmp (_, Binop (Shl32, _, _)) -> true | _ -> false)
                   (function
                     | WrTmp (t, Binop (Shl32, a, b)) ->
                         WrTmp (t, Binop (Shl64, a, b))
                     | s -> s));
          });
    };
    {
      m_name = "tool-clobbers-arch-state";
      m_expect = "phase 3";
      m_shadow = shadow;
      m_apply =
        (fun p ->
          (* instrumentation inventing an architectural register write *)
          {
            p with
            p_instrumented =
              with_stmts p.p_instrumented (fun ss ->
                  ss @ [ Put (GA.off_reg 0, i32 0L) ]);
          });
    };
    {
      m_name = "tool-undeclared-shadow-write";
      m_expect = "phase 3";
      m_shadow = [];  (* the tool "forgot" to declare its shadow ranges *)
      m_apply = (fun p -> p);
    };
    {
      m_name = "tool-bad-helper-fx";
      m_expect = "phase 3";
      m_shadow = shadow;
      m_apply =
        (fun p ->
          (* a helper declaring a guest-state write beyond the state *)
          let evil =
            Vex_ir.Helpers.register
              ~fx_writes:[ (GA.state_size + 100, 4) ]
              ~name:"vglint_evil" ~cost:1
              (fun _env _args -> 0L)
          in
          {
            p with
            p_instrumented =
              with_stmts p.p_instrumented (fun ss ->
                  ss
                  @ [
                      Dirty
                        {
                          d_guard = i1 true;
                          d_callee = evil;
                          d_args = [];
                          d_tmp = None;
                          d_mfx = Mfx_none;
                        };
                    ]);
          });
    };
    {
      m_name = "duplicate-assignment";
      m_expect = "phase 4";
      m_shadow = shadow;
      m_apply =
        (fun p ->
          (* an optimiser bug duplicating a temp definition *)
          let def =
            Support.Vec.fold
              (fun acc s ->
                match (acc, s) with
                | None, WrTmp _ -> Some s
                | _ -> acc)
              None p.p_opt2.stmts
            |> Option.get
          in
          { p with p_opt2 = with_stmts p.p_opt2 (fun ss -> ss @ [ def ]) });
    };
    {
      m_name = "nonflat-opt2";
      m_expect = "phase 4";
      m_shadow = shadow;
      m_apply =
        (fun p ->
          (* folding producing a nested (non-flat) expression *)
          {
            p with
            p_opt2 =
              with_stmts p.p_opt2
                (rewrite_first
                   (function
                     | WrTmp (t, _) -> tmp_ty p.p_opt2 t = I32
                     | _ -> false)
                   (function
                     | WrTmp (t, rhs) ->
                         WrTmp (t, Unop (Not32, Unop (Not32, rhs)))
                     | s -> s));
          });
    };
    {
      m_name = "dropped-put";
      m_expect = "phase 5";
      m_shadow = shadow;
      m_apply =
        (fun p ->
          (* tree building silently losing a guest-state write *)
          {
            p with
            p_treebuilt =
              with_stmts p.p_treebuilt
                (drop_first (function Put _ -> true | _ -> false));
          });
    };
    {
      m_name = "vreg-out-of-range";
      m_expect = "phase 6";
      m_shadow = shadow;
      m_apply =
        (fun p ->
          (* the selector emitting a register it never allocated *)
          let d = some_defined_vreg p.p_vcode in
          {
            p with
            p_vcode =
              p.p_vcode @ [ Jit.Isel.V (H.Mov (d, p.p_n_int + 50)) ];
          });
    };
    {
      m_name = "vcall-arity";
      m_expect = "phase 6";
      m_shadow = shadow;
      m_apply =
        (fun p ->
          (* more helper arguments than the ABI has registers *)
          let r = some_defined_vreg p.p_vcode in
          let args = List.init (List.length H.arg_regs + 1) (fun _ -> r) in
          {
            p with
            p_vcode =
              p.p_vcode
              @ [
                  Jit.Isel.VCall
                    {
                      callee = Lazy.force h_note;
                      args;
                      dst = None;
                    };
                ];
          });
    };
    {
      m_name = "regalloc-lost-def";
      m_expect = "phase 7";
      m_shadow = shadow;
      m_apply =
        (fun p ->
          (* the allocator losing an assignment: delete a defining
             instruction whose register is read downstream *)
          let code = Array.of_list p.p_hcode in
          let i = find_live_def code in
          {
            p with
            p_hcode =
              List.filteri (fun j _ -> j <> i) p.p_hcode;
          });
    };
    {
      m_name = "regalloc-clobber-gsp";
      m_expect = "phase 7";
      m_shadow = shadow;
      m_apply =
        (fun p ->
          { p with p_hcode = H.Movi (H.gsp, 0L) :: p.p_hcode });
    };
    {
      m_name = "stale-label";
      m_expect = "phase 7";
      m_shadow = shadow;
      m_apply =
        (fun p ->
          (* a branch left pointing at a label that no longer exists *)
          { p with p_hcode = H.Jmp 9999 :: p.p_hcode });
    };
    {
      m_name = "spill-load-before-store";
      m_expect = "phase 7";
      m_shadow = shadow;
      m_apply =
        (fun p ->
          (* a reload from a spill slot nothing was spilled to *)
          let slot = H.spill_base_int + (8 * (H.spill_slots_int - 1)) in
          { p with p_hcode = H.Ld (8, false, 0, H.gsp, slot) :: p.p_hcode });
    };
    {
      m_name = "corrupted-byte";
      m_expect = "phase 8";
      m_shadow = shadow;
      m_apply =
        (fun p ->
          let bytes = Bytes.copy p.p_bytes in
          let last = Bytes.length bytes - 1 in
          Bytes.set bytes last
            (Char.chr (Char.code (Bytes.get bytes last) lxor 0xFF));
          { p with p_bytes = bytes });
    };
  ]

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

type outcome = {
  o_name : string;
  o_expect : string;  (** the boundary that should catch it *)
  o_phase : string option;  (** the boundary that did, if any *)
  o_msg : string;  (** the verifier's message (or why it escaped) *)
  o_caught : bool;  (** caught at exactly the expected boundary *)
}

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let run_one (base : P.phases) (m : mutation) : outcome =
  match
    let p = m.m_apply base in
    Check.check_all ~shadow:m.m_shadow p
  with
  | () ->
      {
        o_name = m.m_name;
        o_expect = m.m_expect;
        o_phase = None;
        o_msg = "escaped every check";
        o_caught = false;
      }
  | exception Verr.Error { ve_phase; ve_msg } ->
      {
        o_name = m.m_name;
        o_expect = m.m_expect;
        o_phase = Some ve_phase;
        o_msg = ve_msg;
        o_caught = starts_with ~prefix:m.m_expect ve_phase;
      }

(** Compile the corpus through all three pipelines — optimizing,
    tier-0 quick and superblock — verify each clean build passes every
    check (no false positives), then run every seeded mutation against
    each.  Outcome names are prefixed with the pipeline they were seeded
    into. *)
let run () : outcome list =
  let bases =
    [
      ("full", compile ());
      ("tier0", compile_quick ());
      ("super", compile_super ());
    ]
  in
  List.concat_map
    (fun (tag, base) ->
      (* the unmutated build must be clean — a false positive here would
         invalidate the whole exercise *)
      Check.check_all ~shadow base;
      List.map
        (fun m ->
          let o = run_one base m in
          { o with o_name = tag ^ ":" ^ o.o_name })
        mutations)
    bases

let all_caught (os : outcome list) : bool =
  List.for_all (fun o -> o.o_caught) os

let pp_outcome ppf (o : outcome) =
  Fmt.pf ppf "%-28s %s  expected %-8s %s" o.o_name
    (if o.o_caught then "CAUGHT " else "ESCAPED")
    o.o_expect
    (match o.o_phase with
    | Some p -> Printf.sprintf "caught at %s: %s" p o.o_msg
    | None -> o.o_msg)
