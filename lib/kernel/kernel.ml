(** Simulated operating-system kernel for VG32 programs.

    Implements the system-call layer both execution engines share: the
    native runner calls straight in; the Valgrind core goes through its
    system-call wrappers (which fire the R4/R6 events of Table 1 around
    these same entry points, and pre-check resource requests against the
    tool's own mappings, §3.10).

    The kernel owns file descriptors, the program break, anonymous
    mappings, signal dispositions and pending-signal queues.  Thread
    scheduling belongs to the execution engine; thread-affecting calls
    return an {!action} the engine interprets. *)

open Support

(** Syscall numbers (the VG32 ABI). *)
module Num = struct
  let sys_exit = 1
  let sys_write = 2
  let sys_read = 3
  let sys_open = 4
  let sys_close = 5
  let sys_brk = 6
  let sys_mmap = 7
  let sys_munmap = 8
  let sys_mremap = 9
  let sys_gettimeofday = 10
  let sys_settimeofday = 11
  let sys_sigaction = 12
  let sys_kill = 13
  let sys_sigreturn = 14
  let sys_thread_create = 15
  let sys_thread_exit = 16
  let sys_yield = 17
  let sys_getpid = 18
  let sys_time = 19
  let sys_nanosleep = 20
  let sys_getcycles = 21 (* read the virtual cycle counter *)

  let name = function
    | 1 -> "exit" | 2 -> "write" | 3 -> "read" | 4 -> "open" | 5 -> "close"
    | 6 -> "brk" | 7 -> "mmap" | 8 -> "munmap" | 9 -> "mremap"
    | 10 -> "gettimeofday" | 11 -> "settimeofday" | 12 -> "sigaction"
    | 13 -> "kill" | 14 -> "sigreturn" | 15 -> "thread_create"
    | 16 -> "thread_exit" | 17 -> "yield" | 18 -> "getpid" | 19 -> "time"
    | 20 -> "nanosleep" | 21 -> "getcycles"
    | n -> Printf.sprintf "sys_%d" n
end

(** Signal numbers. *)
module Sig = struct
  let sigill = 4
  let sigfpe = 8
  let sigusr1 = 10
  let sigsegv = 11
  let sigusr2 = 12
  let sigterm = 15
  let count = 32

  let name = function
    | 4 -> "SIGILL" | 8 -> "SIGFPE" | 10 -> "SIGUSR1" | 11 -> "SIGSEGV"
    | 12 -> "SIGUSR2" | 15 -> "SIGTERM"
    | n -> Printf.sprintf "SIG%d" n
end

(** Errno values (returned as negative results, Linux style). *)
let enoent = -2

let eintr = -4
let ebadf = -9
let eagain = -11
let enomem = -12
let einval = -22

type fd_kind =
  | Fd_console of Buffer.t  (** collected output (stdout/stderr) *)
  | Fd_read of { content : string; mutable pos : int }
  | Fd_write of Buffer.t  (** a written file *)

type fd = { kind : fd_kind; fd_name : string }

(** A registered guest signal handler. *)
type sighandler = { sh_addr : int64 }

(** What the engine must do after a syscall. *)
type action =
  | Ok  (** result already placed in r0 *)
  | Exit_process of int
  | Thread_create of { entry : int64; sp : int64; arg : int64 }
      (** engine creates the thread and writes the tid to r0 *)
  | Thread_exit
  | Yield
  | Sigreturn

type t = {
  mem : Aspace.t;
  fds : (int, fd) Hashtbl.t;
  mutable next_fd : int;
  files : (string, string) Hashtbl.t;  (** simulated filesystem *)
  mutable brk : int64;
  mutable brk_limit : int64;
  mutable mmap_base : int64;  (** client mmap arena cursor base *)
  mutable mmap_limit : int64;
  handlers : sighandler option array;  (** per-signal disposition *)
  pending : (int * int) Queue.t;  (** (tid, signal) queue *)
  mutable now_cycles : unit -> int64;  (** virtual time source *)
  mutable pid : int;
  (* A hook the Valgrind core installs to pre-check address-space
     requests against its own mappings (§3.10): returns false to deny. *)
  mutable map_allowed : int64 -> int -> bool;
  mutable stdout_echo : bool;  (** also echo console output to real stdout *)
}

let create ?(mmap_base = 0x2000_0000L) ?(mmap_limit = 0x3000_0000L)
    (mem : Aspace.t) : t =
  let t =
    {
      mem;
      fds = Hashtbl.create 16;
      next_fd = 3;
      files = Hashtbl.create 16;
      brk = 0L;
      brk_limit = 0x1800_0000L;
      mmap_base;
      mmap_limit;
      handlers = Array.make Sig.count None;
      pending = Queue.create ();
      now_cycles = (fun () -> 0L);
      pid = 4242;
      map_allowed = (fun _ _ -> true);
      stdout_echo = false;
    }
  in
  Hashtbl.replace t.fds 0 { kind = Fd_read { content = ""; pos = 0 }; fd_name = "stdin" };
  Hashtbl.replace t.fds 1 { kind = Fd_console (Buffer.create 256); fd_name = "stdout" };
  Hashtbl.replace t.fds 2 { kind = Fd_console (Buffer.create 256); fd_name = "stderr" };
  t

let set_brk_base t brk = t.brk <- brk

(** Provide stdin contents. *)
let set_stdin t content =
  Hashtbl.replace t.fds 0
    { kind = Fd_read { content; pos = 0 }; fd_name = "stdin" }

(** Register a file in the simulated filesystem. *)
let add_file t name content = Hashtbl.replace t.files name content

(** Collected console output (fd 1 + fd 2 interleaving not preserved). *)
let stdout_contents t =
  match Hashtbl.find_opt t.fds 1 with
  | Some { kind = Fd_console b; _ } -> Buffer.contents b
  | _ -> ""

let stderr_contents t =
  match Hashtbl.find_opt t.fds 2 with
  | Some { kind = Fd_console b; _ } -> Buffer.contents b
  | _ -> ""

(** Contents written to a named file via open/write. *)
let file_contents t name =
  match
    Hashtbl.fold
      (fun _ fd acc ->
        match fd.kind with
        | Fd_write b when fd.fd_name = name -> Some (Buffer.contents b)
        | _ -> acc)
      t.fds None
  with
  | Some s -> Some s
  | None -> Hashtbl.find_opt t.files name

(* ------------------------------------------------------------------ *)
(* Signals                                                              *)
(* ------------------------------------------------------------------ *)

let set_handler t signal addr =
  if signal < 1 || signal >= Sig.count then einval
  else begin
    t.handlers.(signal) <- (if addr = 0L then None else Some { sh_addr = addr });
    0
  end

let handler_for t signal =
  if signal < 1 || signal >= Sig.count then None else t.handlers.(signal)

let post_signal t ~tid ~signal = Queue.add (tid, signal) t.pending

let take_pending_signal t : (int * int) option =
  if Queue.is_empty t.pending then None else Some (Queue.take t.pending)

(* ------------------------------------------------------------------ *)
(* The syscall implementations                                          *)
(* ------------------------------------------------------------------ *)

(** Register interface the engines provide: read/write guest integer
    registers of the calling thread. *)
type regs = { get : int -> int64; set : int -> int64 -> unit }

let ret (r : regs) v = r.set 0 (Bits.trunc32 (Int64.of_int v))
let ret64 (r : regs) v = r.set 0 (Bits.trunc32 v)

let do_write t fd_num addr len : int =
  match Hashtbl.find_opt t.fds fd_num with
  | None -> ebadf
  | Some fd -> (
      match fd.kind with
      | Fd_read _ -> ebadf
      | Fd_console b | Fd_write b ->
          (try
             let data = Aspace.read_bytes t.mem addr len in
             Buffer.add_bytes b data;
             if t.stdout_echo && (fd_num = 1 || fd_num = 2) then
               print_string (Bytes.to_string data);
             len
           with Aspace.Fault _ -> einval))

let do_read t fd_num addr len : int =
  match Hashtbl.find_opt t.fds fd_num with
  | None -> ebadf
  | Some fd -> (
      match fd.kind with
      | Fd_read r ->
          let avail = String.length r.content - r.pos in
          let n = min len (max 0 avail) in
          (try
             Aspace.write_bytes t.mem addr
               (Bytes.of_string (String.sub r.content r.pos n));
             r.pos <- r.pos + n;
             n
           with Aspace.Fault _ -> einval)
      | _ -> ebadf)

let do_open t name_addr flags : int =
  let name = Aspace.read_asciiz t.mem name_addr in
  let writing = Int64.logand flags 1L <> 0L in
  if writing then begin
    let fd = t.next_fd in
    t.next_fd <- fd + 1;
    Hashtbl.replace t.fds fd { kind = Fd_write (Buffer.create 64); fd_name = name };
    fd
  end
  else
    match Hashtbl.find_opt t.files name with
    | None -> enoent
    | Some content ->
        let fd = t.next_fd in
        t.next_fd <- fd + 1;
        Hashtbl.replace t.fds fd
          { kind = Fd_read { content; pos = 0 }; fd_name = name };
        fd

let do_close t fd = if Hashtbl.mem t.fds fd then (Hashtbl.remove t.fds fd; 0) else ebadf

let do_brk t (new_brk : int64) : int64 =
  if new_brk = 0L then t.brk
  else if
    Int64.unsigned_compare new_brk t.brk_limit <= 0
    && Int64.unsigned_compare new_brk 0x10000L > 0
  then begin
    if Int64.unsigned_compare new_brk t.brk > 0 then
      Aspace.map ~zero:false t.mem ~addr:t.brk
        ~len:(Int64.to_int (Int64.sub new_brk t.brk))
        ~perm:Aspace.perm_rw
    else if Int64.unsigned_compare new_brk t.brk < 0 then
      Aspace.unmap t.mem
        ~addr:(Aspace.round_up new_brk)
        ~len:(Int64.to_int (Int64.sub (Aspace.round_up t.brk) (Aspace.round_up new_brk)));
    t.brk <- new_brk;
    new_brk
  end
  else t.brk

let do_mmap t ~(len : int) : int64 =
  if len <= 0 then Int64.of_int einval
  else
    match
      Aspace.find_free t.mem ~hint:t.mmap_base ~limit:t.mmap_limit ~len
    with
    | exception Not_found -> Int64.of_int enomem
    | addr ->
        if not (t.map_allowed addr len) then Int64.of_int enomem
        else begin
          Aspace.map t.mem ~addr ~len ~perm:Aspace.perm_rw;
          addr
        end

let do_munmap t addr len : int =
  if len <= 0 then einval
  else begin
    Aspace.unmap t.mem ~addr ~len;
    0
  end

(** mremap may move the block; returns the (possibly new) address.  When
    it moves, memory values are copied — and the Valgrind wrapper fires
    [copy_mem_mremap] so shadow memory follows (R6). *)
let do_mremap t addr old_len new_len : int64 =
  if old_len <= 0 || new_len <= 0 then Int64.of_int einval
  else if new_len <= old_len then begin
    let keep = Aspace.round_up_int new_len in
    if keep < old_len then
      Aspace.unmap t.mem
        ~addr:(Int64.add addr (Int64.of_int keep))
        ~len:(old_len - keep);
    addr
  end
  else
    match
      Aspace.find_free t.mem ~hint:t.mmap_base ~limit:t.mmap_limit ~len:new_len
    with
    | exception Not_found -> Int64.of_int enomem
    | naddr ->
        if not (t.map_allowed naddr new_len) then Int64.of_int enomem
        else begin
          Aspace.map t.mem ~addr:naddr ~len:new_len ~perm:Aspace.perm_rw;
          Aspace.move t.mem ~src:addr ~dst:naddr ~len:old_len;
          Aspace.unmap t.mem ~addr ~len:old_len;
          naddr
        end

(* struct timeval { u32 sec; u32 usec; } *)
let do_gettimeofday t tv_addr tz_addr : int =
  let cycles = t.now_cycles () in
  let usec_total = Int64.div cycles 1000L (* 1 GHz simulated, in us *) in
  let sec = Int64.div usec_total 1_000_000L in
  let usec = Int64.rem usec_total 1_000_000L in
  try
    Aspace.write t.mem tv_addr 4 sec;
    Aspace.write t.mem (Int64.add tv_addr 4L) 4 usec;
    if tz_addr <> 0L then begin
      Aspace.write t.mem tz_addr 4 0L;
      Aspace.write t.mem (Int64.add tz_addr 4L) 4 0L
    end;
    0
  with Aspace.Fault _ -> einval

let do_settimeofday t tv_addr : int =
  (* reads the structs (firing pre_mem_read under Valgrind) and ignores
     the values: the simulated clock is the cycle counter *)
  try
    ignore (Aspace.read t.mem tv_addr 4);
    ignore (Aspace.read t.mem (Int64.add tv_addr 4L) 4);
    0
  with Aspace.Fault _ -> einval

(* ------------------------------------------------------------------ *)
(* Snapshot / restore (time-travel support)                             *)
(* ------------------------------------------------------------------ *)

type fd_kind_snap =
  | K_console of string
  | K_read of string * int
  | K_write of string

type snap = {
  s_fds : (int * string * fd_kind_snap) list;
  s_next_fd : int;
  s_files : (string * string) list;
  s_brk : int64;
  s_brk_limit : int64;
  s_mmap_base : int64;
  s_mmap_limit : int64;
  s_handlers : sighandler option array;
  s_pending : (int * int) list;
  s_pid : int;
}

(** Deep-copy every piece of mutable kernel state except the installed
    hooks ([now_cycles], [map_allowed], [stdout_echo]), which belong to
    the session wiring, not to the guest-visible state. *)
let snapshot (t : t) : snap =
  {
    s_fds =
      Hashtbl.fold
        (fun n fd acc ->
          let k =
            match fd.kind with
            | Fd_console b -> K_console (Buffer.contents b)
            | Fd_read r -> K_read (r.content, r.pos)
            | Fd_write b -> K_write (Buffer.contents b)
          in
          (n, fd.fd_name, k) :: acc)
        t.fds []
      |> List.sort compare;
    s_next_fd = t.next_fd;
    s_files = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.files [];
    s_brk = t.brk;
    s_brk_limit = t.brk_limit;
    s_mmap_base = t.mmap_base;
    s_mmap_limit = t.mmap_limit;
    s_handlers = Array.copy t.handlers;
    s_pending = Queue.fold (fun acc x -> x :: acc) [] t.pending |> List.rev;
    s_pid = t.pid;
  }

let restore (t : t) (s : snap) : unit =
  Hashtbl.reset t.fds;
  List.iter
    (fun (n, fd_name, k) ->
      let kind =
        match k with
        | K_console c ->
            let b = Buffer.create (String.length c + 64) in
            Buffer.add_string b c;
            Fd_console b
        | K_read (content, pos) -> Fd_read { content; pos }
        | K_write c ->
            let b = Buffer.create (String.length c + 64) in
            Buffer.add_string b c;
            Fd_write b
      in
      Hashtbl.replace t.fds n { kind; fd_name })
    s.s_fds;
  t.next_fd <- s.s_next_fd;
  Hashtbl.reset t.files;
  List.iter (fun (k, v) -> Hashtbl.replace t.files k v) s.s_files;
  t.brk <- s.s_brk;
  t.brk_limit <- s.s_brk_limit;
  t.mmap_base <- s.s_mmap_base;
  t.mmap_limit <- s.s_mmap_limit;
  Array.blit s.s_handlers 0 t.handlers 0 (Array.length t.handlers);
  Queue.clear t.pending;
  List.iter (fun x -> Queue.add x t.pending) s.s_pending;
  t.pid <- s.s_pid

(** Dispatch one syscall: number in r0, args in r1..r5, result to r0.
    [tid] is the calling thread. *)
let syscall (t : t) ~tid:(_tid : int) (r : regs) : action =
  let num = Int64.to_int (r.get 0) in
  let a1 = r.get 1
  and a2 = r.get 2
  and a3 = r.get 3 in
  let open Num in
  if num = sys_exit then Exit_process (Int64.to_int (Bits.sext32 a1))
  else if num = sys_write then begin
    ret r (do_write t (Int64.to_int a1) a2 (Int64.to_int a3));
    Ok
  end
  else if num = sys_read then begin
    ret r (do_read t (Int64.to_int a1) a2 (Int64.to_int a3));
    Ok
  end
  else if num = sys_open then begin
    ret r (do_open t a1 a2);
    Ok
  end
  else if num = sys_close then begin
    ret r (do_close t (Int64.to_int a1));
    Ok
  end
  else if num = sys_brk then begin
    ret64 r (do_brk t a1);
    Ok
  end
  else if num = sys_mmap then begin
    ret64 r (do_mmap t ~len:(Int64.to_int a2));
    Ok
  end
  else if num = sys_munmap then begin
    ret r (do_munmap t a1 (Int64.to_int a2));
    Ok
  end
  else if num = sys_mremap then begin
    ret64 r (do_mremap t a1 (Int64.to_int a2) (Int64.to_int a3));
    Ok
  end
  else if num = sys_gettimeofday then begin
    ret r (do_gettimeofday t a1 a2);
    Ok
  end
  else if num = sys_settimeofday then begin
    ret r (do_settimeofday t a1);
    Ok
  end
  else if num = sys_sigaction then begin
    ret r (set_handler t (Int64.to_int a1) a2);
    Ok
  end
  else if num = sys_kill then begin
    let signal = Int64.to_int a2 in
    if signal < 1 || signal >= Sig.count then begin
      ret r einval;
      Ok
    end
    else begin
      post_signal t ~tid:(Int64.to_int a1) ~signal;
      ret r 0;
      Ok
    end
  end
  else if num = sys_sigreturn then Sigreturn
  else if num = sys_thread_create then
    Thread_create { entry = a1; sp = a2; arg = a3 }
  else if num = sys_thread_exit then Thread_exit
  else if num = sys_yield then begin
    ret r 0;
    Yield
  end
  else if num = sys_getpid then begin
    ret r t.pid;
    Ok
  end
  else if num = sys_time then begin
    ret64 r (Int64.div (t.now_cycles ()) 1_000_000_000L);
    Ok
  end
  else if num = sys_nanosleep then begin
    ret r 0;
    Yield
  end
  else if num = sys_getcycles then begin
    ret64 r (t.now_cycles ());
    Ok
  end
  else begin
    ret r (-38) (* ENOSYS *);
    Ok
  end
