(** System-call wrappers (paper §3.10, §3.12).

    Valgrind provides a wrapper for every system call which invokes the
    R4/R6 event callbacks as needed: argument registers are announced
    with [pre_reg_read], pointed-to memory with [pre_mem_read]/
    [pre_mem_write], results with [post_reg_write]/[post_mem_write], and
    the allocation syscalls fire new/die/copy memory events.  The
    wrappers also keep the core safe: [munmap] discards any translations
    made from the unmapped range, and client [mmap] requests were already
    pre-checked against the core's own mappings by the hook installed in
    the kernel.

    (The real Valgrind's wrappers are ~15,000 lines covering ~300
    syscalls with all their sub-cases; VG32's kernel has ~20, so this
    file is mercifully shorter, but the structure is the same: one
    wrapper per syscall, each encoding that syscall's exact access
    pattern.) *)

open Kernel
module GA = Guest.Arch

(** Per-session wrapper counters (owned by the session, read by its
    statistics): how often each robustness path ran. *)
type counters = {
  mutable n_restarts : int;  (** EINTR restarts of read/nanosleep *)
  mutable n_injected_errnos : int;  (** faults surfaced to the client *)
  mutable n_short_io : int;  (** short reads/writes applied *)
  mutable n_map_retries : int;  (** mmap/mremap retries after ENOMEM *)
}

let fresh_counters () =
  { n_restarts = 0; n_injected_errnos = 0; n_short_io = 0; n_map_retries = 0 }

(** Publish the wrapper counters into a metrics registry as probes (the
    registry reads the same mutable fields the stats record does). *)
let publish (r : Obs.Registry.t) (c : counters) =
  let pi name f = Obs.Registry.probe r name (fun () -> Int64.of_int (f ())) in
  pi "syswrap.restarts" (fun () -> c.n_restarts);
  pi "syswrap.injected_errnos" (fun () -> c.n_injected_errnos);
  pi "syswrap.short_io" (fun () -> c.n_short_io);
  pi "syswrap.map_retries" (fun () -> c.n_map_retries)

type env = {
  events : Events.t;
  kern : Kernel.t;
  on_discard : int64 -> int -> unit;  (** munmap'd/discarded code ranges *)
  chaos : Chaos.t option;  (** fault injection, if the session runs chaos *)
  counters : counters;
  charge : int -> unit;  (** cycle accounting for restart/backoff work *)
  rr : Replay.rr;
      (** record/replay hook: [Record] logs every kernel invocation's
          client-visible result and effects; [Replay] skips the kernel
          entirely and reconstructs them from the log *)
  now : unit -> int64;  (** current wall cycle (informational, logged) *)
}

(* How often the wrapper re-issues before giving up and letting the
   client see the error.  Chaos caps consecutive injections below these,
   so injected faults always recover. *)
let restart_limit = 8
let map_attempt_limit = 4

let enomem32 = Support.Bits.trunc32 (Int64.of_int Kernel.enomem)

(* Invoke the kernel with fault injection and recovery around it:
   - an injected EINTR on a restartable syscall (read, nanosleep) is
     restarted transparently, like the kernel's SA_RESTART handling —
     the client never observes it;
   - other injected errnos are placed in r0 without entering the kernel;
   - an injected short length clamps r3 for the duration of the call
     (a short read/write, which clients must already cope with);
   - mmap/mremap placement denials (transient, injected through the
     kernel's [map_allowed] hook) are retried with exponential backoff,
     charged as cycles. *)
let rec invoke ?(restarts = 0) (e : env) ~tid ~num (r : Kernel.regs) :
    Kernel.action =
  let fault =
    match e.chaos with
    | None -> None
    | Some c ->
        let len =
          if num = Num.sys_read || num = Num.sys_write then
            Int64.to_int (r.get 3)
          else 0
        in
        Chaos.syscall_fault c ~num ~len
  in
  match fault with
  | Some (Chaos.Errno err)
    when err = Kernel.eintr && Chaos.restartable num
         && restarts < restart_limit ->
      e.counters.n_restarts <- e.counters.n_restarts + 1;
      (match e.chaos with
      | Some c -> Chaos.note_recovery c "syscall_restart"
      | None -> ());
      e.charge 40;
      invoke ~restarts:(restarts + 1) e ~tid ~num r
  | Some (Chaos.Errno err) ->
      e.counters.n_injected_errnos <- e.counters.n_injected_errnos + 1;
      Kernel.ret r err;
      Kernel.Ok
  | Some (Chaos.Short_len n) ->
      let saved = r.get 3 in
      r.set 3 (Int64.of_int n);
      let a = Kernel.syscall e.kern ~tid r in
      r.set 3 saved;
      (* count only if the clamped call succeeded: a call that failed
         outright performed no IO, so no short IO was applied to the
         client (the recorded counter must match the client-visible
         outcome, or record/replay digests drift) *)
      if Int64.unsigned_compare (r.get 0) 0xFFFF_F000L < 0 then
        e.counters.n_short_io <- e.counters.n_short_io + 1;
      a
  | None ->
      if num = Num.sys_mmap || num = Num.sys_mremap then
        map_with_retry e ~tid ~num r 0
      else Kernel.syscall e.kern ~tid r

and map_with_retry (e : env) ~tid ~num (r : Kernel.regs) (attempt : int) :
    Kernel.action =
  let a = Kernel.syscall e.kern ~tid r in
  if e.chaos <> None && r.get 0 = enomem32 && attempt + 1 < map_attempt_limit
  then begin
    e.counters.n_map_retries <- e.counters.n_map_retries + 1;
    (match e.chaos with
    | Some c -> Chaos.note_recovery c "map_retry"
    | None -> ());
    e.charge (100 lsl attempt);
    (* the kernel wrote -ENOMEM into r0, which also carries the syscall
       number on entry: restore it or the retry dispatches garbage *)
    r.set 0 (Int64.of_int num);
    map_with_retry e ~tid ~num r (attempt + 1)
  end
  else a

(* Convenience: announce that the syscall reads its number and [n]
   argument registers. *)
let pre_args (e : env) ~name ~n =
  Events.fire_pre_reg_read e.events ~syscall:name ~off:(GA.off_reg 0) ~size:4;
  for i = 1 to n do
    Events.fire_pre_reg_read e.events ~syscall:name ~off:(GA.off_reg i) ~size:4
  done

let post_ret (e : env) ~name =
  Events.fire_post_reg_write e.events ~syscall:name ~off:(GA.off_reg 0) ~size:4

(** Run one system call for the current thread, firing events around the
    kernel's implementation. *)
let syscall (e : env) ~(tid : int) (r : Kernel.regs) : Kernel.action =
  let num = Int64.to_int (r.get 0) in
  let name = Num.name num in
  let a1 = r.get 1 and a2 = r.get 2 and a3 = r.get 3 in
  let ev = e.events in
  (* pre-events *)
  let n_args =
    if num = Num.sys_exit then 1
    else if num = Num.sys_write || num = Num.sys_read then 3
    else if num = Num.sys_open then 2
    else if num = Num.sys_close then 1
    else if num = Num.sys_brk then 1
    else if num = Num.sys_mmap then 2
    else if num = Num.sys_munmap then 2
    else if num = Num.sys_mremap then 3
    else if num = Num.sys_gettimeofday then 2
    else if num = Num.sys_settimeofday then 1
    else if num = Num.sys_sigaction then 2
    else if num = Num.sys_kill then 2
    else if num = Num.sys_thread_create then 3
    else 0
  in
  pre_args e ~name ~n:n_args;
  if num = Num.sys_write then
    Events.fire_pre_mem_read ev ~syscall:name ~addr:a2 ~len:(Int64.to_int a3)
  else if num = Num.sys_read then
    Events.fire_pre_mem_write ev ~syscall:name ~addr:a2 ~len:(Int64.to_int a3)
  else if num = Num.sys_open then
    Events.fire_pre_mem_read_asciiz ev ~syscall:name ~addr:a1
  else if num = Num.sys_gettimeofday then begin
    Events.fire_pre_mem_write ev ~syscall:name ~addr:a1 ~len:8;
    if a2 <> 0L then Events.fire_pre_mem_write ev ~syscall:name ~addr:a2 ~len:8
  end
  else if num = Num.sys_settimeofday then
    Events.fire_pre_mem_read ev ~syscall:name ~addr:a1 ~len:8;
  (* state snapshots needed for post-events *)
  let old_brk = e.kern.brk in
  (* the call itself, with fault injection + restart/retry around it —
     or, on replay, the logged result applied without entering the
     kernel at all (injected faults were already folded into what the
     record run logged) *)
  let action =
    match e.rr with
    | Replay.Replay p ->
        let action, charged, (restarts, errnos, short_io, map_retries) =
          Replay.replay_syscall p ~kern:e.kern ~num ~r ~cycle:(e.now ())
        in
        (* the record run charged restart/backoff cycles incrementally;
           nothing reads the clock mid-invoke (the kernel never runs
           here), so one lump of the recorded total is equivalent *)
        e.charge charged;
        e.counters.n_restarts <- restarts;
        e.counters.n_injected_errnos <- errnos;
        e.counters.n_short_io <- short_io;
        e.counters.n_map_retries <- map_retries;
        action
    | Replay.Record rec_ ->
        Replay.begin_syscall rec_ ~num ~args:(a1, a2, a3);
        let charged = ref 0 in
        let e' =
          {
            e with
            charge =
              (fun c ->
                charged := !charged + c;
                e.charge c);
          }
        in
        let action = invoke e' ~tid ~num r in
        Replay.end_syscall rec_ ~kern:e.kern ~ret:(r.get 0) ~action
          ~charged:!charged ~cycle:(e.now ())
          ~counters:
            ( e.counters.n_restarts, e.counters.n_injected_errnos,
              e.counters.n_short_io, e.counters.n_map_retries );
        action
    | Replay.No_rr -> invoke e ~tid ~num r
  in
  let ret = r.get 0 in
  let ok = Int64.unsigned_compare ret 0xFFFF_F000L < 0 (* not -errno *) in
  (* post-events *)
  post_ret e ~name;
  if num = Num.sys_read && ok then
    Events.fire_post_mem_write ev ~addr:a2 ~len:(Int64.to_int ret)
  else if num = Num.sys_gettimeofday && ok then begin
    Events.fire_post_mem_write ev ~addr:a1 ~len:8;
    if a2 <> 0L then Events.fire_post_mem_write ev ~addr:a2 ~len:8
  end
  else if num = Num.sys_brk then begin
    let new_brk = e.kern.brk in
    if Int64.unsigned_compare new_brk old_brk > 0 then
      Events.fire_new_mem_brk ev ~addr:old_brk
        ~len:(Int64.to_int (Int64.sub new_brk old_brk))
    else if Int64.unsigned_compare new_brk old_brk < 0 then
      Events.fire_die_mem_brk ev ~addr:new_brk
        ~len:(Int64.to_int (Int64.sub old_brk new_brk))
  end
  else if num = Num.sys_mmap && ok then
    Events.fire_new_mem_mmap ev ~addr:ret ~len:(Int64.to_int a2)
  else if num = Num.sys_munmap && ok then begin
    let len = Int64.to_int a2 in
    Events.fire_die_mem_munmap ev ~addr:a1 ~len;
    (* unloaded code: evict any translations made from it (§3.8) *)
    e.on_discard a1 len
  end
  else if num = Num.sys_mremap && ok then begin
    let old_len = Int64.to_int a2 and new_len = Int64.to_int a3 in
    let dst = ret in
    if dst <> a1 then begin
      (* moved: shadow memory must follow the copied values *)
      Events.fire_copy_mem_mremap ev ~src:a1 ~dst ~len:(min old_len new_len);
      if new_len > old_len then
        Events.fire_new_mem_mmap ev
          ~addr:(Int64.add dst (Int64.of_int old_len))
          ~len:(new_len - old_len);
      Events.fire_die_mem_munmap ev ~addr:a1 ~len:old_len;
      e.on_discard a1 old_len
    end
    else if new_len < old_len then begin
      Events.fire_die_mem_munmap ev
        ~addr:(Int64.add a1 (Int64.of_int new_len))
        ~len:(old_len - new_len);
      e.on_discard (Int64.add a1 (Int64.of_int new_len)) (old_len - new_len)
    end
    else if new_len > old_len then
      Events.fire_new_mem_mmap ev
        ~addr:(Int64.add a1 (Int64.of_int old_len))
        ~len:(new_len - old_len)
  end;
  action
