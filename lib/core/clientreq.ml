(** Client request codes (paper §3.11).

    A client program embeds [clreq] instructions (via macros in the
    guest's valgrind.h equivalent — see [examples/] and the guest libc)
    with a request code in r0 and an argument-block pointer in r1.  Under
    a tool, the core routes the request; run natively, [clreq] is a
    cheap no-op that leaves 0 in r0. *)

(* Core requests *)
let running_on_valgrind = 0x0001L
let discard_translations = 0x0002L (* args: [addr; len] *)
let print_msg = 0x0003L (* r1 = asciiz pointer *)
let stack_register = 0x0004L (* args: [start; end] -> id *)
let stack_deregister = 0x0005L (* args: [id] *)
let stack_change = 0x0006L (* args: [id; start; end] *)

(* Internal requests used by replacement-function stubs *)
let internal_base = 0x0100L

(* Tool requests (Memcheck-compatible set) *)
let mem_make_noaccess = 0x1001L
let mem_make_undefined = 0x1002L
let mem_make_defined = 0x1003L
let mem_check_addressable = 0x1004L
let mem_check_defined = 0x1005L
let mem_count_errors = 0x1006L
let mem_do_leak_check = 0x1007L

(* Taint-tool requests *)
let taint_mark = 0x2001L (* args: [addr; len] *)
let taint_clear = 0x2002L
let taint_check = 0x2003L

(* DRD (lockset race detector) requests.  The tool itself arbitrates
   the lock: try-acquire returns 1 on success, 0 when another thread
   holds it (the guest spins with yield between attempts), so
   acquisition is atomic at block granularity under any core count. *)
let drd_lock_acquire = 0x3001L (* args: [lock id] -> 0|1 *)
let drd_lock_release = 0x3002L (* args: [lock id] *)
