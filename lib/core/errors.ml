(** Error recording, deduplication and suppression (R9 services, §4).

    The core provides tools with error recording (errors are deduplicated
    by kind + stack trace, like Valgrind's), suppressions read from a
    simple suppression format, stack tracing through the guest's frame
    pointer chain, and symbolised output. *)

type error = {
  err_kind : string;  (** e.g. "UninitValue", "InvalidRead" *)
  err_msg : string;
  err_stack : int64 list;  (** innermost first *)
  mutable err_count : int;  (** occurrences after dedup *)
}

(** A suppression: matches an error kind and a prefix of the symbolised
    stack ("*" matches any frame). *)
type suppression = {
  supp_name : string;
  supp_kind : string;
  supp_frames : string list;
}

type t = {
  mutable errors : error list;  (** newest first *)
  mutable suppressions : suppression list;
  mutable n_suppressed : int;
  mutable symbolize : int64 -> string;
  mutable output : string -> unit;
  mutable show_immediately : bool;
  mutable on_record : (error -> unit) option;
      (** observer fired for each {e new} (post-dedup, unsuppressed)
          error; vgrewind's [when] subcommand hooks this to find the
          cycle an error first fired at *)
}

let create ?(output = prerr_string) () =
  {
    errors = [];
    suppressions = [];
    n_suppressed = 0;
    symbolize = (fun a -> Printf.sprintf "0x%LX" a);
    output;
    show_immediately = true;
    on_record = None;
  }

let add_suppression t s = t.suppressions <- s :: t.suppressions

(** Parse suppressions in a minimal format:
    {v
    {
      name
      Kind
      fun:frame1
      fun:*
    }
    v} *)
let parse_suppressions (text : string) : suppression list =
  let lines =
    String.split_on_char '\n' text |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let rec go acc cur = function
    | [] -> List.rev acc
    | "{" :: rest -> go acc (Some []) rest
    | "}" :: rest -> (
        match cur with
        | Some (name :: kind :: frames) ->
            let frames =
              List.map
                (fun f ->
                  if String.length f > 4 && String.sub f 0 4 = "fun:" then
                    String.sub f 4 (String.length f - 4)
                  else f)
                frames
            in
            go ({ supp_name = name; supp_kind = kind; supp_frames = frames } :: acc)
              None rest
        | _ -> go acc None rest)
    | l :: rest -> (
        match cur with
        | Some fields -> go acc (Some (fields @ [ l ])) rest
        | None -> go acc None rest)
  in
  go [] None lines

let frame_matches pattern frame =
  pattern = "*" || pattern = frame
  || (String.length pattern > 0
     && pattern.[String.length pattern - 1] = '*'
     && String.length frame >= String.length pattern - 1
     && String.sub frame 0 (String.length pattern - 1)
        = String.sub pattern 0 (String.length pattern - 1))

let suppressed (t : t) ~kind ~(stack : int64 list) : bool =
  let frames = List.map t.symbolize stack in
  List.exists
    (fun s ->
      (s.supp_kind = "*" || s.supp_kind = kind)
      &&
      let rec prefix ps fs =
        match (ps, fs) with
        | [], _ -> true
        | _, [] -> false
        | p :: ps', f :: fs' -> frame_matches p f && prefix ps' fs'
      in
      prefix s.supp_frames frames)
    t.suppressions

let render (t : t) (e : error) : string =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "==err== %s: %s\n" e.err_kind e.err_msg);
  List.iteri
    (fun i a ->
      Buffer.add_string buf
        (Printf.sprintf "==err==    %s 0x%LX: %s\n"
           (if i = 0 then "at" else "by")
           a (t.symbolize a)))
    e.err_stack;
  Buffer.contents buf

(** Record an error; returns true if it was new (not deduplicated, not
    suppressed). *)
let record (t : t) ~kind ~msg ~(stack : int64 list) : bool =
  if suppressed t ~kind ~stack then begin
    t.n_suppressed <- t.n_suppressed + 1;
    false
  end
  else
    match
      List.find_opt
        (fun e -> e.err_kind = kind && e.err_stack = stack && e.err_msg = msg)
        t.errors
    with
    | Some e ->
        e.err_count <- e.err_count + 1;
        false
    | None ->
        let e = { err_kind = kind; err_msg = msg; err_stack = stack; err_count = 1 } in
        t.errors <- e :: t.errors;
        if t.show_immediately then t.output (render t e);
        (match t.on_record with Some f -> f e | None -> ());
        true

(** {2 Snapshot / restore} — the recorded error list (with per-error
    dedup counts) and the suppression counter.  Suppressions, the
    symbolizer and the sinks are wiring and survive untouched. *)

type snap = { s_errors : (error * int) list; s_n_suppressed : int }

let snapshot (t : t) : snap =
  {
    s_errors = List.map (fun e -> (e, e.err_count)) t.errors;
    s_n_suppressed = t.n_suppressed;
  }

let restore (t : t) (s : snap) : unit =
  List.iter (fun (e, n) -> e.err_count <- n) s.s_errors;
  t.errors <- List.map fst s.s_errors;
  t.n_suppressed <- s.s_n_suppressed

let distinct_errors t = List.length t.errors
let total_errors t = List.fold_left (fun a e -> a + e.err_count) 0 t.errors

let summary (t : t) : string =
  Printf.sprintf
    "==err== ERROR SUMMARY: %d errors from %d contexts (suppressed: %d)\n"
    (total_errors t) (distinct_errors t) t.n_suppressed

(* ------------------------------------------------------------------ *)
(* Crash context                                                        *)
(* ------------------------------------------------------------------ *)

(** A post-mortem snapshot the core renders when an error escapes every
    recovery path (§3.2: even when Valgrind cannot stay in control, it
    should say exactly where control was lost).  Captures the current
    thread's guest state and the dispatcher's recent history. *)
type crash_context = {
  cc_what : string;  (** the escaping exception, printed *)
  cc_eip : int64;  (** guest PC of the current thread *)
  cc_regs : int64 array;  (** r0..r7 *)
  cc_blocks : int64;  (** blocks executed when the error escaped *)
  cc_trace : int64 list;
      (** last-N dispatched block addresses, oldest first *)
  cc_stack : int64 list;  (** guest stack trace, innermost first *)
}

(** Render a crash context through this error sink's symbolizer. *)
let render_crash (t : t) (c : crash_context) : string =
  let buf = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "==vg== FATAL: unrecoverable error: %s\n" c.cc_what;
  pr "==vg==   guest eip = 0x%LX (%s), after %Ld blocks\n" c.cc_eip
    (t.symbolize c.cc_eip) c.cc_blocks;
  Array.iteri
    (fun i v ->
      if i land 3 = 0 then pr "==vg==   ";
      pr "r%d=0x%LX%s" i v (if i land 3 = 3 then "\n" else " "))
    c.cc_regs;
  if Array.length c.cc_regs land 3 <> 0 then pr "\n";
  if c.cc_trace <> [] then begin
    pr "==vg==   recent blocks (oldest first):\n";
    List.iter (fun a -> pr "==vg==     0x%LX: %s\n" a (t.symbolize a)) c.cc_trace
  end;
  if c.cc_stack <> [] then begin
    pr "==vg==   guest stack:\n";
    List.iteri
      (fun i a ->
        pr "==vg==     %s 0x%LX: %s\n"
          (if i = 0 then "at" else "by")
          a (t.symbolize a))
      c.cc_stack
  end;
  Buffer.contents buf
