(** A Valgrind session: core + tool plug-in + client, all in one
    (simulated) process.

    This module is the core's scheduler and start-up sequence (§3.2,
    §3.3, §3.9): it initialises the address-space manager, loads the
    client, initialises the tool, and then spends its life making,
    finding and running translations — none of the client's original
    code is ever run.  It also owns signal interception and
    between-blocks delivery (§3.15), self-modifying-code checks (§3.16),
    client requests (§3.11) and function redirection (§3.13).

    Thread scheduling replaces the paper's §3.14 big lock with N
    deterministic simulated cores ({!Engine}): threads are pinned to
    cores, each core owns its fast-lookup cache, cycle clocks and
    chaining state, and the scheduler always steps the core with the
    lowest clock (ties to the lowest id).  Because the interleave is a
    pure function of cycle counts — never wall time — execution is
    bit-identical for a given [--cores N], and a single-threaded client
    only ever touches core 0, making its output identical for {e any}
    N.  Translation retirement is epoch-based (see {!Transtab}): cores
    notice dead translations lazily, and the retire list is freed at
    scheduler epoch boundaries. *)

module GA = Guest.Arch
module HA = Host.Arch

type smc_mode = Smc_none | Smc_stack | Smc_all

type options = {
  cores : int;
      (** simulated cores (default 1).  Threads are pinned to core
          [(tid - 1) mod cores]; the scheduler interleaves cores on
          cycle counts, so any value replays bit-identically and a
          single-threaded client behaves identically for every value. *)
  chaining : bool;
      (** direct translation chaining (on by default): patch a
          translation's constant-target exit sites to transfer straight
          to the successor translation, bypassing the dispatcher.  The
          paper's Valgrind deliberately does not chain (§3.9); pass
          [--no-chaining] / [chaining = false] to reproduce its baseline
          dispatcher behaviour. *)
  chain_cost : int;  (** cycles for a chained transfer *)
  smc_mode : smc_mode;  (** default [Smc_stack], like Valgrind *)
  timeslice_blocks : int;  (** thread-switch period (paper: 100,000) *)
  sched_poll_blocks : int;
      (** the dispatcher falls back into the scheduler this often
          (paper: "every few thousand translation executions") *)
  transtab_capacity : int;
  dispatch_size : int;
  dispatch_fast_cost : int;
  dispatch_slow_cost : int;
  stack_switch_threshold : int64;  (** the 2MB heuristic, changeable *)
  unroll_loops : bool;  (** phase-2 self-loop unrolling (VEX default: on) *)
  max_blocks : int64;  (** fuel: abort runaway clients (0 = unlimited) *)
  verify_jit : bool;
      (** run the Vglint phase-boundary verifiers on every translation
          (IR well-formedness, effect-skeleton preservation, vreg and
          host-register dataflow, assemble/decode round-trip, and the
          tool-instrumentation lints against the tool's declared
          [shadow_ranges]).  On by default; a verification failure
          raises {!Verify.Verr.Error}. *)
  chaos : Chaos.t option;
      (** seeded deterministic fault injection (default [None]): the
          session experiences transient syscall errors, mapping denials,
          forced translation failures and cache flushes drawn from the
          [Chaos.t]'s RNG stream.  See {!Chaos}. *)
  interp_fallback : bool;
      (** graceful degradation (on by default): a block whose
          translation fails ([Jit.Pipeline.Translation_failure], which
          phase 6/7 failures are wrapped into) executes one-shot via the
          IR evaluator — instrumentation included — instead of killing
          the session; later blocks re-enter the JIT as usual.  Off:
          translation failures propagate to the caller. *)
  profile : bool;
      (** build the guest-execution profile (flat + caller/callee, a
          mini-Callgrind) from exact block counters; read it back with
          {!profile_report}.  Off by default: profiling costs a symbol
          lookup per block. *)
  trace_capacity : int;
      (** size of the structured-event trace ring (translations, chain
          patch/unlink, evictions, chaos faults, signals, degradations).
          0 (the default) disables tracing.  Export with {!trace} +
          {!Obs.Trace.to_jsonl}/{!Obs.Trace.to_chrome}. *)
  tier0 : bool;
      (** tiered JIT (on by default): translate cold blocks with the
          cheap tier-0 quick pipeline (shared front end, identity
          phases 4/5, template back end) and promote them to the full
          optimizing pipeline when they turn hot.  Off: every block pays
          the full pipeline up front (the pre-tiering behaviour). *)
  promote_threshold : int;
      (** executions after which a tier-0 translation is retranslated
          with the optimizing pipeline (0 = never promote) *)
  superblocks : bool;
      (** trace superblock formation (on by default): when a chained
          exit stays hot, stitch the blocks along the hot path into one
          superblock translation so the optimiser and the tool see
          across block boundaries *)
  trace_threshold : int;
      (** chained transfers through one exit site before the path it
          starts is stitched into a superblock (0 = never) *)
  trace_max_blocks : int;  (** max constituent blocks per superblock *)
  scan : bool;
      (** static whole-image analysis (Vgscan) before start-up: recover
          the guest CFG and keep it for the soundness oracle — every
          dynamically executed block start is checked against the
          statically discovered instruction set, with misses counted
          under [static.cfg_miss].  Off by default. *)
  aot_seed : bool;
      (** ahead-of-time translation seeding (implies the scan): every
          statically discovered basic block is pre-translated through
          the cold tier before the client runs, so start-up JIT cost is
          paid up front and counted separately ([jit.aot.*]).  Off by
          default. *)
  aot_limit : int;
      (** cap on the number of blocks AOT seeding will pre-translate *)
  rr : Replay.rr;
      (** record/replay binding (Vgrewind; default [No_rr]).  [Record r]
          feeds every non-derivable input — syscall results and side
          effects, async signal deliveries, chaos scheduling decisions —
          into [r], at zero simulated cycles.  [Replay p] drives the
          session from [p]'s log instead of the kernel and the chaos
          RNG; a replaying session must be created with the log's core
          count and with [chaos = None]. *)
  snapshot_every : int64;
      (** time-travel checkpoint cadence in simulated wall cycles
          (replay mode only; 0 = no checkpoints).  {!seek} and {!back}
          restore the nearest checkpoint at or before the target and
          re-execute forward. *)
}

let default_options =
  {
    cores = 1;
    chaining = true;
    chain_cost = 2;
    smc_mode = Smc_stack;
    timeslice_blocks = 100_000;
    sched_poll_blocks = 3000;
    transtab_capacity = 32768;
    dispatch_size = 8192;
    dispatch_fast_cost = Dispatch.default_fast_cost;
    dispatch_slow_cost = Dispatch.default_slow_cost;
    stack_switch_threshold = 0x20_0000L;
    unroll_loops = true;
    max_blocks = 0L;
    verify_jit = true;
    chaos = None;
    interp_fallback = true;
    profile = false;
    trace_capacity = 0;
    tier0 = true;
    promote_threshold = 256;
    superblocks = true;
    trace_threshold = 16384;
    trace_max_blocks = 3;
    scan = false;
    aot_seed = false;
    aot_limit = 8192;
    rr = Replay.No_rr;
    snapshot_every = 0L;
  }

type exit_reason =
  | Exited of int
  | Fatal_signal of int
  | Out_of_fuel

(** One full-state checkpoint (time travel, replay mode): everything a
    scheduler step reads or writes, deep-copied.  Restoring mutates the
    live session in place; a snapshot can be restored any number of
    times (the translation graph is re-copied on every restore). *)
type snapshot = {
  sp_cycle : int64;  (** simulated wall cycles at capture *)
  sp_insns : int64;  (** host instructions executed at capture *)
  sp_mem : Aspace.snap;
  sp_kern : Kernel.snap;
  sp_threads : Threads.snap;
  sp_transtab : Transtab.snap;
  sp_engines : Engine.snap array;
  sp_active : int;
  sp_events : Events.snap;
  sp_errors : Errors.snap;
  sp_output : string;
  sp_tool : Bytes.t;  (** the tool instance's serialized private state *)
  sp_marks : Replay.marks option;  (** log cursor positions *)
  sp_sched_iters : int64;
  sp_trans_reqs : int64;
  sp_blocks : int64;
  sp_translations : int * int * int * int;  (** made, tier0, full, super *)
  sp_retrans_smc : int;
  sp_verify_checks : int;
  sp_interp_fallbacks : int;
  sp_uninstr : int;
  sp_chaos_flushes : int;
  sp_promotions : int * int;  (** promotions, promotions_failed *)
  sp_super_aborts : int;
  sp_jit_t0 : int64;
  sp_jit_phase : int64 array;
  sp_jit_phase_t0 : int64 array;
  sp_sysw : int * int * int * int;
  sp_arena_next : int64;
  sp_regstacks : int * (int * int64 * int64) list;
  sp_cfg : int * int;  (** cfg_checked, cfg_miss *)
  sp_exit : exit_reason option;
}

type t = {
  opts : options;
  mem : Aspace.t;
  kern : Kernel.t;
  events : Events.t;
  errors : Errors.t;
  threads : Threads.t;
  transtab : Transtab.t;
  cores : Engine.t array;  (** the simulated cores, indexed by id *)
  mutable active : Engine.t;  (** the core currently stepping *)
  redirect : Redirect.t;
  regstacks : Stack_events.registered_stacks;
  image : Guest.Image.t;
  tool : Tool.t;
  mutable instance : Tool.instance option;
  output_buf : Buffer.t;
  mutable echo_output : bool;
  (* accounting.  Cycle counters (host/overhead/jit/smc), block counts,
     chained transfers and chaining state live on each core's {!Engine};
     [blocks_executed] here is the global total (fuel + poll cadence). *)
  mutable blocks_executed : int64;
  mutable translations_made : int;
  mutable retranslations_smc : int;
  mutable verify_checks : int;  (** boundary checks run by the verifier *)
  mutable interp_fallbacks : int;
      (** blocks degraded to one-shot IR interpretation *)
  mutable uninstrumented_steps : int;
      (** last-resort single-instruction steps (no instrumentation) *)
  mutable chaos_flushes : int;  (** forced transtab flushes (chaos) *)
  (* tiered JIT *)
  mutable translations_tier0 : int;  (** quick-tier translations made *)
  mutable translations_full : int;  (** full-pipeline translations made *)
  mutable translations_super : int;  (** superblock translations made *)
  mutable promotions : int;  (** tier-0 -> full retranslations *)
  mutable promotions_failed : int;
      (** promotion attempts that failed (the tier-0 translation keeps
          running; e.g. chaos condemned the retranslation) *)
  mutable superblock_aborts : int;
      (** trace-formation attempts abandoned (path would not stitch, or
          the combined translation failed) *)
  mutable jit_cycles_tier0 : int64;  (** JIT cycles spent in tier 0 *)
  sysw : Syswrap.counters;  (** wrapper restart/retry accounting *)
  (* observability (Vgscope) *)
  metrics : Obs.Registry.t;
      (** the metrics registry every subsystem publishes into; probes
          read the live fields above, so registry and [stats] agree by
          construction *)
  trace : Obs.Trace.t option;  (** structured-event ring, if enabled *)
  profiler : Obs.Profile.t option;  (** guest profile, if enabled *)
  jit_phase_cycles : int64 array;
      (** [jit_cycles] split across the eight pipeline phases; the
          entries always sum to [jit_cycles] exactly *)
  jit_phase_cycles_tier0 : int64 array;
      (** the tier-0 share of [jit_phase_cycles], same indexing; the
          entries sum to [jit_cycles_tier0] exactly *)
  fn_cache : (int64, string * int64) Hashtbl.t;
      (** block pc -> (function name, base), for profile attribution *)
  mutable exit_reason : exit_reason option;
  (* stack-event helpers (registered lazily per session) *)
  mutable stack_helpers : Stack_events.helpers option;
  (* core client-space allocator arena *)
  mutable arena_next : int64;
  arena_limit : int64;
  (* stubs *)
  mutable sigreturn_tramp : int64;
  mutable thread_exit_tramp : int64;
  (* main stack range, for SMC-on-stack detection *)
  mutable stack_lo : int64;
  mutable stack_hi : int64;
  (* static analysis (Vgscan): the whole-image CFG when --scan or
     --aot-seed asked for one, plus oracle and seeding accounting *)
  static_scan : Static.Cfg.t option;
  mutable cfg_checked : int;  (** block starts checked against the CFG *)
  mutable cfg_miss : int;  (** executed starts the scan never found *)
  mutable aot_seeded : int;  (** blocks pre-translated before start-up *)
  mutable aot_failed : int;  (** seed attempts that failed to translate *)
  mutable aot_cycles : int64;
      (** the share of jit cycles spent during AOT seeding *)
  mutable in_aot : bool;  (** inside the seeding loop (accounting flag) *)
  (* record/replay + time travel (Vgrewind) *)
  mutable started : bool;  (** start-up + AOT seeding have run *)
  mutable sched_iters : int64;
      (** scheduler-loop ordinal: the replay key for async signal
          deliveries, chaos flushes, handoff stalls and retire delays *)
  mutable trans_reqs : int64;
      (** translation-request ordinal: the replay key for chaos-condemned
          translations *)
  mutable snapshots : (int64 * snapshot) list;
      (** time-travel checkpoints, newest first, keyed by wall cycle *)
  mutable next_snap_at : int64;  (** next checkpoint wall-cycle mark *)
}

(** Total work cycles across every core (host + overhead + jit + smc;
    idle padding excluded — idle is waiting, not work). *)
let total_cycles (s : t) : int64 =
  Array.fold_left
    (fun acc e -> Int64.add acc (Engine.work_cycles e))
    0L s.cores

(** Simulated wall time: the furthest-ahead core clock (work + idle). *)
let wall_cycles (s : t) : int64 =
  Array.fold_left (fun acc e -> max acc (Engine.clock e)) 0L s.cores

let output s msg =
  Buffer.add_string s.output_buf msg;
  if s.echo_output then prerr_string msg

(* Emit one structured trace event, timestamped on the simulated cycle
   clock (never wall-clock: traces replay bit-identically). *)
let tev (s : t) ~cat ~name ?(args = []) () =
  match s.trace with
  | None -> ()
  | Some tr -> Obs.Trace.emit tr ~ts:(total_cycles s) ~cat ~name ~args ()

(* Publish every subsystem's counters into the session's metrics
   registry.  All entries are probes over the same mutable fields the
   [stats] record reads, so the registry and [stats] cannot disagree. *)
let publish_metrics (s : t) =
  let r = s.metrics in
  let pL name f = Obs.Registry.probe r name f in
  let pi name f = pL name (fun () -> Int64.of_int (f ())) in
  let sumL f =
    Array.fold_left (fun acc e -> Int64.add acc (f e)) 0L s.cores
  in
  pL "core.blocks" (fun () -> s.blocks_executed);
  pL "core.host_cycles" (fun () -> sumL (fun e -> e.Engine.cpu.cycles));
  pL "core.host_insns" (fun () -> sumL (fun e -> e.Engine.cpu.insns));
  pL "core.overhead_cycles" (fun () -> sumL (fun e -> e.Engine.overhead_cycles));
  pL "core.jit_cycles" (fun () -> sumL (fun e -> e.Engine.jit_cycles));
  pL "core.smc_cycles" (fun () -> sumL (fun e -> e.Engine.smc_cycles));
  pL "core.total_cycles" (fun () -> total_cycles s);
  pL "core.chained_transfers" (fun () -> sumL (fun e -> e.Engine.chained_transfers));
  pL "core.lock_handoffs" (fun () -> s.threads.lock_handoffs);
  pi "sched.cores" (fun () -> Array.length s.cores);
  pL "sched.wall_cycles" (fun () -> wall_cycles s);
  pi "core.translations" (fun () -> s.translations_made);
  pi "core.retranslations_smc" (fun () -> s.retranslations_smc);
  pi "core.verify_checks" (fun () -> s.verify_checks);
  pi "core.interp_fallbacks" (fun () -> s.interp_fallbacks);
  pi "core.uninstrumented_steps" (fun () -> s.uninstrumented_steps);
  pi "core.chaos_flushes" (fun () -> s.chaos_flushes);
  (* tiered JIT: translation counts and cycle split per tier.  "full"
     cycles cover the optimizing pipeline wherever it ran — promoted
     retranslations and superblocks included. *)
  pi "jit.tier0.translations" (fun () -> s.translations_tier0);
  pi "jit.full.translations" (fun () -> s.translations_full);
  pi "jit.super.translations" (fun () -> s.translations_super);
  pi "jit.promotions" (fun () -> s.promotions);
  pi "jit.promotions_failed" (fun () -> s.promotions_failed);
  pi "jit.superblock_aborts" (fun () -> s.superblock_aborts);
  pL "jit.tier0.cycles" (fun () -> s.jit_cycles_tier0);
  pL "jit.full.cycles" (fun () ->
      Int64.sub (sumL (fun e -> e.Engine.jit_cycles)) s.jit_cycles_tier0);
  for i = 0 to Jit.Pipeline.n_phases - 1 do
    pL
      (Printf.sprintf "jit.phase%d.%s.cycles" (i + 1)
         Jit.Pipeline.phase_names.(i))
      (fun () -> s.jit_phase_cycles.(i));
    pL
      (Printf.sprintf "jit.tier0.phase%d.%s.cycles" (i + 1)
         Jit.Pipeline.phase_names.(i))
      (fun () -> s.jit_phase_cycles_tier0.(i))
  done;
  (* dispatcher aggregates over the per-core caches (the per-core view
     is published by each core under [sched.core<i>.dispatch.*]) *)
  let dsum f = sumL (fun e -> f e.Engine.dispatch) in
  pL "dispatch.hits" (fun () -> dsum (fun d -> d.Dispatch.hits));
  pL "dispatch.misses" (fun () -> dsum (fun d -> d.Dispatch.misses));
  pL "dispatch.entries" (fun () -> dsum Dispatch.entries);
  Obs.Registry.fprobe r "dispatch.hit_rate" (fun () ->
      let hits = dsum (fun d -> d.Dispatch.hits) in
      let total = dsum Dispatch.entries in
      if total = 0L then 0.0
      else Int64.to_float hits /. Int64.to_float total);
  (* Vgscan: soundness oracle and AOT seeding (only when a scan ran,
     so default sessions publish an unchanged metric set) *)
  (match s.static_scan with
  | Some cfg ->
      pi "static.insns" (fun () -> cfg.Static.Cfg.n_insns);
      pi "static.weak_insns" (fun () -> cfg.Static.Cfg.n_weak);
      pi "static.blocks" (fun () -> List.length cfg.Static.Cfg.blocks);
      pi "static.cfg_checked" (fun () -> s.cfg_checked);
      pi "static.cfg_miss" (fun () -> s.cfg_miss);
      pi "jit.aot.seeded" (fun () -> s.aot_seeded);
      pi "jit.aot.failed" (fun () -> s.aot_failed);
      pL "jit.aot.cycles" (fun () -> s.aot_cycles)
  | None -> ());
  (* Vgrewind: log production/consumption counters.  replay.* keys are
     excluded from record/replay digest comparison (Replay.filter_stats),
     like chaos.*, since they only exist on one side of the pair. *)
  (match s.opts.rr with
  | Replay.Record rec_ ->
      pi "replay.recorded_events" (fun () -> Replay.n_events rec_)
  | Replay.Replay p ->
      List.iter
        (fun (k, _) ->
          pi ("replay." ^ k) (fun () -> List.assoc k (Replay.progress p)))
        (Replay.progress p);
      pi "replay.snapshots" (fun () -> List.length s.snapshots)
  | Replay.No_rr -> ());
  Array.iter (fun e -> Engine.publish r e) s.cores;
  Transtab.publish r s.transtab;
  Syswrap.publish r s.sysw;
  match s.opts.chaos with
  | Some c ->
      pi "chaos.injected" (fun () -> Chaos.n_injected c);
      pi "chaos.recoveries" (fun () ->
          List.fold_left (fun a (_, n) -> a + n) 0 (Chaos.recoveries c))
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)
(* ------------------------------------------------------------------ *)

let symbolize_with (img : Guest.Image.t) (addr : int64) : string =
  match Guest.Image.symbol_for img addr with
  | Some (name, base) when Int64.sub addr base < 0x10000L ->
      if addr = base then name
      else Printf.sprintf "%s+0x%LX" name (Int64.sub addr base)
  | _ -> Printf.sprintf "0x%LX" addr

let create ?(options = default_options) ~(tool : Tool.t)
    (image : Guest.Image.t) : t =
  let mem = Aspace.create () in
  let kern = Kernel.create ~mmap_base:Layout.client_mmap_base
      ~mmap_limit:Layout.client_mmap_limit mem
  in
  kern.map_allowed <- Layout.client_map_allowed;
  if options.cores < 1 then invalid_arg "Session.create: cores must be >= 1";
  let threads = Threads.create ~n_cores:options.cores mem in
  let errors = Errors.create () in
  let events = Events.create () in
  let cores =
    Array.init options.cores (fun id ->
        Engine.create ~id ~mem ~dispatch_size:options.dispatch_size
          ~fast_cost:options.dispatch_fast_cost
          ~slow_cost:options.dispatch_slow_cost)
  in
  let s =
    {
      opts = options;
      mem;
      kern;
      events;
      errors;
      threads;
      transtab =
        Transtab.create ~events ~capacity:options.transtab_capacity
          ~shards:options.cores ();
      cores;
      active = cores.(0);
      redirect = Redirect.create mem;
      regstacks = Stack_events.make_registered_stacks ();
      image;
      tool;
      instance = None;
      output_buf = Buffer.create 1024;
      echo_output = false;
      blocks_executed = 0L;
      translations_made = 0;
      retranslations_smc = 0;
      verify_checks = 0;
      interp_fallbacks = 0;
      uninstrumented_steps = 0;
      chaos_flushes = 0;
      translations_tier0 = 0;
      translations_full = 0;
      translations_super = 0;
      promotions = 0;
      promotions_failed = 0;
      superblock_aborts = 0;
      jit_cycles_tier0 = 0L;
      sysw = Syswrap.fresh_counters ();
      metrics = Obs.Registry.create ();
      trace =
        (if options.trace_capacity > 0 then
           Some (Obs.Trace.create ~capacity:options.trace_capacity)
         else None);
      profiler = (if options.profile then Some (Obs.Profile.create ()) else None);
      jit_phase_cycles = Array.make Jit.Pipeline.n_phases 0L;
      jit_phase_cycles_tier0 = Array.make Jit.Pipeline.n_phases 0L;
      fn_cache = Hashtbl.create 256;
      exit_reason = None;
      stack_helpers = None;
      arena_next = 0x1900_0000L;
      arena_limit = 0x1A00_0000L;
      sigreturn_tramp = 0L;
      thread_exit_tramp = 0L;
      stack_lo = 0L;
      stack_hi = 0L;
      static_scan =
        (if options.scan || options.aot_seed then
           Some (Static.Cfg.scan image)
         else None);
      cfg_checked = 0;
      cfg_miss = 0;
      aot_seeded = 0;
      aot_failed = 0;
      aot_cycles = 0L;
      in_aot = false;
      started = false;
      sched_iters = 0L;
      trans_reqs = 0L;
      snapshots = [];
      next_snap_at = 0L;
    }
  in
  (* record/replay wiring.  Recording: capture the kernel's stores and
     mapping changes (only those made while a syscall is in flight count
     — guest code never runs during [invoke]).  Replaying: the log's
     core count must match, or every scheduling decision is off. *)
  (match options.rr with
  | Replay.Record rec_ ->
      Replay.set_header rec_ ~tool:tool.Tool.name ~cores:options.cores;
      Aspace.add_store_watch mem (fun addr size ->
          Replay.note_store rec_ addr size);
      Aspace.add_map_watch mem (fun ev -> Replay.note_map rec_ ev)
  | Replay.Replay p ->
      if p.Replay.p_log.Replay.l_cores <> options.cores then
        invalid_arg
          (Printf.sprintf
             "Session.create: log was recorded with cores=%d, session has %d"
             p.Replay.p_log.Replay.l_cores options.cores)
  | Replay.No_rr -> ());
  (* chaos: transient mapping denials, injected behind the core's own
     pre-check so a denial looks exactly like address-space pressure *)
  (match options.chaos with
  | Some c ->
      let base = kern.map_allowed in
      kern.map_allowed <-
        (fun addr len -> base addr len && not (Chaos.map_denied c ~addr ~len))
  | None -> ());
  errors.symbolize <-
    (fun a ->
      match Redirect.stub_name s.redirect a with
      | Some n -> n
      | None -> symbolize_with image a);
  errors.output <- (fun msg -> output s msg);
  kern.now_cycles <- (fun () -> total_cycles s);
  Transtab.set_observer s.transtab ~trace:s.trace
    ~now:(fun () -> total_cycles s);
  (* chaos injections mirror into the structured trace *)
  (match (options.chaos, s.trace) with
  | Some c, Some _ ->
      Chaos.set_sink c (fun ~kind ~detail ->
          tev s ~cat:"chaos" ~name:kind ~args:[ ("detail", Obs.Trace.S detail) ] ())
  | _ -> ());
  publish_metrics s;
  s

(** Symbolise an address: image symbols, plus redirection-stub names. *)
let symbolize (s : t) (a : int64) : string =
  match Redirect.stub_name s.redirect a with
  | Some n -> n
  | None -> symbolize_with s.image a

(* The function a block pc belongs to (cached): a redirection stub by
   its own name, else the nearest image symbol at or below.  Local
   labels (".L...", emitted by minicc for branch targets) are skipped
   so attribution rolls up to the enclosing function. *)
let is_local_label (n : string) =
  String.length n >= 2 && n.[0] = '.' && n.[1] = 'L'

let fn_symbol_for (img : Guest.Image.t) (addr : int64) =
  List.fold_left
    (fun best (name, a) ->
      if is_local_label name then best
      else if Int64.unsigned_compare a addr <= 0 then
        match best with
        | Some (_, ba) when Int64.unsigned_compare ba a >= 0 -> best
        | _ -> Some (name, a)
      else best)
    None img.Guest.Image.symbols

let resolve_fn (s : t) (pc : int64) : string * int64 =
  match Hashtbl.find_opt s.fn_cache pc with
  | Some r -> r
  | None ->
      let r =
        match Redirect.stub_name s.redirect pc with
        | Some n -> (n, pc)
        | None -> (
            match fn_symbol_for s.image pc with
            | Some (n, base) -> (n, base)
            | None -> (Printf.sprintf "0x%LX" pc, pc))
      in
      Hashtbl.replace s.fn_cache pc r;
      r

(* The helper environment: guest-state access goes to the *current*
   thread's ThreadState; memory to the shared address space. *)
let helper_env (s : t) : Vex_ir.Helpers.env =
  {
    he_get_guest =
      (fun off size -> Threads.get_state s.threads s.threads.current ~off ~size);
    he_put_guest =
      (fun off size v ->
        Threads.put_state s.threads s.threads.current ~off ~size v);
    he_load = (fun addr size -> Aspace.read s.mem addr size);
    he_store = (fun addr size v -> Aspace.write s.mem addr size v);
  }

(* Core client-space allocator (backs replacement heap allocators). *)
let client_alloc (s : t) (size : int) : int64 =
  let size = (size + 15) land lnot 15 in
  let addr = s.arena_next in
  let next = Int64.add addr (Int64.of_int size) in
  if Int64.unsigned_compare next s.arena_limit >= 0 then
    failwith "core allocator: client arena exhausted";
  (* map on demand, page-rounded *)
  Aspace.map ~zero:false s.mem ~addr:(Aspace.round_down addr)
    ~len:(Int64.to_int (Int64.sub (Aspace.round_up next) (Aspace.round_down addr)))
    ~perm:Aspace.perm_rw;
  s.arena_next <- next;
  addr

let on_discard (s : t) (addr : int64) (len : int) =
  (* discard_range unlinks every chain into the dropped translations
     (the correctness-critical §3.16 path) and marks them dead; each
     core's fast-lookup cache notices lazily (a hit on a dead
     translation is a miss), so no cross-core flush is needed *)
  ignore (Transtab.discard_range s.transtab addr len)

let charge (s : t) c = Engine.charge s.active c

let caps_of (s : t) : Tool.caps =
  {
    events = s.events;
    errors = s.errors;
    mem = s.mem;
    output = (fun msg -> output s msg);
    read_guest =
      (fun off size -> Threads.get_state s.threads s.threads.current ~off ~size);
    write_guest =
      (fun off size v ->
        Threads.put_state s.threads s.threads.current ~off ~size v);
    cur_eip = (fun () -> Threads.get_eip s.threads s.threads.current);
    cur_tid = (fun () -> s.threads.current.tid);
    stack_trace =
      (fun () -> Threads.stack_trace s.threads s.threads.current ());
    symbolize = symbolize s;
    client_alloc = (fun size -> client_alloc s size);
    replace_function =
      (fun ~symbol ~handler ->
        match List.assoc_opt symbol s.image.symbols with
        | Some addr ->
            Redirect.replace ~name:(symbol ^ " (redirected)") s.redirect
              ~addr ~handler
        | None -> ());
    wrap_function =
      (fun ~symbol ~on_enter ~on_exit ->
        match List.assoc_opt symbol s.image.symbols with
        | Some addr ->
            Redirect.wrap s.redirect ~addr ~arity:4 ~on_enter ~on_exit
        | None -> ());
    discard_translations = (fun addr len -> on_discard s addr len);
    charge_cycles = (fun c -> charge s c);
    register_helper =
      (fun ?(fx_reads = []) ~name ~cost ~nargs f ->
        ignore nargs;
        Vex_ir.Helpers.register ~fx_reads ~name ~cost (fun _env args -> f args));
  }

(* Register the stack-event helpers for this session (only when the tool
   tracks stack events). *)
let make_stack_helpers (s : t) : Stack_events.helpers =
  let fx = [ (GA.off_sp, 4) ] in
  let h_new =
    Vex_ir.Helpers.register ~name:"core_new_mem_stack" ~cost:4 ~fx_reads:fx
      (fun _env args ->
        Events.fire_new_mem_stack s.events ~addr:args.(0)
          ~len:(Int64.to_int args.(1));
        0L)
  in
  let h_die =
    Vex_ir.Helpers.register ~name:"core_die_mem_stack" ~cost:4 ~fx_reads:fx
      (fun _env args ->
        Events.fire_die_mem_stack s.events
          ~addr:(Int64.sub args.(0) args.(1))
          ~len:(Int64.to_int args.(1));
        0L)
  in
  let h_unknown =
    Vex_ir.Helpers.register ~name:"core_unknown_sp_update" ~cost:8
      ~fx_reads:fx (fun env args ->
        let old_sp = env.he_get_guest GA.off_sp 4 in
        let new_sp = args.(0) in
        (match
           Stack_events.classify_sp_change
             ~threshold:s.opts.stack_switch_threshold s.regstacks ~old_sp
             ~new_sp
         with
        | None -> () (* stack switch: no events *)
        | Some (base, len, is_alloc) ->
            if is_alloc then
              Events.fire_new_mem_stack s.events ~addr:base ~len
            else Events.fire_die_mem_stack s.events ~addr:base ~len);
        0L)
  in
  { h_new; h_die; h_unknown }

(* ------------------------------------------------------------------ *)
(* Start-up (§3.3)                                                      *)
(* ------------------------------------------------------------------ *)

let startup (s : t) =
  (* tool initialisation: registers events, redirects, helpers *)
  let inst = s.tool.create (caps_of s) in
  s.instance <- Some inst;
  if s.events.new_mem_stack <> None || s.events.die_mem_stack <> None then
    s.stack_helpers <- Some (make_stack_helpers s);
  (* trampolines *)
  s.sigreturn_tramp <-
    Redirect.write_stub s.redirect
      [ GA.Movi (0, Int64.of_int Kernel.Num.sys_sigreturn); GA.Syscall ];
  s.thread_exit_tramp <-
    Redirect.write_stub s.redirect
      [ GA.Movi (0, Int64.of_int Kernel.Num.sys_thread_exit); GA.Syscall ];
  (* load the client; fire R5 startup events *)
  let entry, sp, brk, mapped = Guest.Image.load s.image s.mem in
  Kernel.set_brk_base s.kern brk;
  List.iter
    (fun (m : Guest.Image.mapped) ->
      if m.m_what = "stack" then begin
        s.stack_lo <- m.m_base;
        s.stack_hi <- Int64.add m.m_base (Int64.of_int m.m_len)
      end;
      Events.fire_new_mem_startup s.events ~addr:m.m_base ~len:m.m_len
        ~defined:m.m_defined ~what:m.m_what)
    mapped;
  let th = s.threads.current in
  Threads.put_reg s.threads th GA.reg_sp sp;
  Threads.put_reg s.threads th GA.reg_fp sp;
  Threads.put_eip s.threads th entry

(* ------------------------------------------------------------------ *)
(* Translation                                                          *)
(* ------------------------------------------------------------------ *)

let instrument_fn (s : t) : Jit.Pipeline.instrument =
 fun b ->
  let b =
    match s.instance with Some i -> i.instrument b | None -> b
  in
  match s.stack_helpers with
  | Some h -> Stack_events.instrument h b
  | None -> b

let wants_smc_check (s : t) (pc : int64) : bool =
  match s.opts.smc_mode with
  | Smc_none -> false
  | Smc_all -> true
  | Smc_stack ->
      (Int64.unsigned_compare pc s.stack_lo >= 0
      && Int64.unsigned_compare pc s.stack_hi < 0)
      || List.exists
           (fun (_, lo, hi) ->
             Int64.unsigned_compare lo pc <= 0
             && Int64.unsigned_compare pc hi < 0)
           s.regstacks.stacks

(* The per-boundary checks for one translation request: the Vglint
   verifiers composed with any chaos-condemned forced failures.  The
   quick tier calls every boundary hook too (with [pre == post] at the
   identity phases), so both verification coverage and the chaos
   failure contract are tier-independent. *)
let translation_checks (s : t) ~(fetch_pc : int64) :
    Jit.Pipeline.checks option =
  (* every translation request gets an ordinal: the replay key for
     chaos-condemned translations (the request sequence is deterministic,
     the dice roll is not) *)
  s.trans_reqs <- Int64.add s.trans_reqs 1L;
  let verify_checks =
    if s.opts.verify_jit then
      Some
        (Verify.pipeline_checks ~shadow:s.tool.shadow_ranges
           ~on_check:(fun _ -> s.verify_checks <- s.verify_checks + 1)
           ())
    else None
  in
  (* chaos: this translation request may be condemned to fail at one of
     the eight phase boundaries (recovery interprets the block instead).
     Recording logs the condemned phase; replay re-applies it from the
     log without a Chaos.t. *)
  let chaos_checks =
    match s.opts.rr with
    | Replay.Replay p -> (
        match Replay.condemn_due p ~req:s.trans_reqs ~cycle:(wall_cycles s) with
        | Some phase -> Some (Chaos.checks_failing_at phase)
        | None -> None)
    | rr -> (
        match s.opts.chaos with
        | Some c -> (
            let fate = Chaos.translation_fate c ~pc:fetch_pc in
            (match (fate, rr) with
            | Some phase, Replay.Record rec_ ->
                Replay.record_condemn rec_ ~req:s.trans_reqs ~phase
                  ~pc:fetch_pc ~cycle:(wall_cycles s)
            | _ -> ());
            Option.map Chaos.checks_failing_at fate)
        | None -> None)
  in
  match (verify_checks, chaos_checks) with
  | Some a, Some b -> Some (Jit.Pipeline.compose_checks a b)
  | (Some _ as a), None -> a
  | None, (Some _ as b) -> b
  | None, None -> None

(* Charge a fresh translation's cycles (total and per-tier), count it,
   mirror it into the trace, and make it resident. *)
let account_translation (s : t) ~(pc : int64) (t : Jit.Pipeline.translation)
    : unit =
  let start = total_cycles s in
  let cost = Jit.Pipeline.translation_cost t in
  Array.iteri
    (fun i c ->
      s.jit_phase_cycles.(i) <-
        Int64.add s.jit_phase_cycles.(i) (Int64.of_int c))
    t.t_phase_cycles;
  (* the requesting core pays for (and owns) the translation *)
  t.t_core <- s.active.Engine.id;
  s.active.Engine.jit_cycles <-
    Int64.add s.active.Engine.jit_cycles (Int64.of_int cost);
  (* AOT seeding pays normal jit cycles, but the share is sub-accounted
     so cold-start cost (total jit minus aot) stays measurable *)
  if s.in_aot then s.aot_cycles <- Int64.add s.aot_cycles (Int64.of_int cost);
  (match t.t_tier with
  | Jit.Pipeline.Tier_quick ->
      Array.iteri
        (fun i c ->
          s.jit_phase_cycles_tier0.(i) <-
            Int64.add s.jit_phase_cycles_tier0.(i) (Int64.of_int c))
        t.t_phase_cycles;
      s.jit_cycles_tier0 <- Int64.add s.jit_cycles_tier0 (Int64.of_int cost);
      s.translations_tier0 <- s.translations_tier0 + 1
  | Jit.Pipeline.Tier_full -> s.translations_full <- s.translations_full + 1
  | Jit.Pipeline.Tier_super ->
      s.translations_super <- s.translations_super + 1);
  s.translations_made <- s.translations_made + 1;
  (* trace: one summary slice for the translation plus one slice per
     phase, tiled end to end on the simulated timeline *)
  (match s.trace with
  | Some tr ->
      Obs.Trace.emit tr ~ts:start ~dur:(Int64.of_int cost) ~cat:"jit"
        ~name:"translate"
        ~args:
          [ ("pc", Obs.Trace.I pc);
            ("tier", Obs.Trace.S (Jit.Pipeline.tier_name t.t_tier));
            ("stmts_pre", Obs.Trace.I (Int64.of_int t.t_ir_stmts_pre));
            ("stmts_post", Obs.Trace.I (Int64.of_int t.t_ir_stmts_post));
            ("code_bytes", Obs.Trace.I (Int64.of_int (Bytes.length t.t_code))) ]
        ();
      let ts = ref start in
      Array.iteri
        (fun i c ->
          Obs.Trace.emit tr ~ts:!ts ~dur:(Int64.of_int c) ~cat:"jit"
            ~name:Jit.Pipeline.phase_names.(i)
            ~args:[ ("pc", Obs.Trace.I pc) ]
            ();
          ts := Int64.add !ts (Int64.of_int c))
        t.t_phase_cycles
  | None -> ());
  Transtab.insert s.transtab pc t

let translate_tier (s : t) ~(tier : Jit.Pipeline.tier) (pc : int64) :
    Jit.Pipeline.translation =
  let fetch_pc = Redirect.resolve s.redirect pc in
  let fetch addr = Aspace.fetch_u8 s.mem addr in
  let checks = translation_checks s ~fetch_pc in
  let t =
    Jit.Pipeline.translate ~unroll:s.opts.unroll_loops ?checks ~tier ~fetch
      ~instrument:(instrument_fn s) fetch_pc
  in
  let t = { t with t_guest_addr = pc; t_smc_check = wants_smc_check s fetch_pc } in
  account_translation s ~pc t;
  t

(* Tier selection for a cold block: quick when tiering is on. *)
let translate (s : t) (pc : int64) : Jit.Pipeline.translation =
  let tier =
    if s.opts.tier0 then Jit.Pipeline.Tier_quick else Jit.Pipeline.Tier_full
  in
  translate_tier s ~tier pc

(* find-or-translate via the scheduler (slow path) *)
let scheduler_find (s : t) (pc : int64) : Jit.Pipeline.translation =
  match Transtab.find s.transtab pc with
  | Some t -> t
  | None -> translate s pc

(* AOT seeding: pre-translate every statically discovered basic block
   through the cold tier before the client executes its first
   instruction.  Failures are counted, never fatal — a block the static
   scan found but the JIT rejects simply translates lazily later. *)
let aot_seed_blocks (s : t) : unit =
  match s.static_scan with
  | Some cfg when s.opts.aot_seed ->
      let tier =
        if s.opts.tier0 then Jit.Pipeline.Tier_quick
        else Jit.Pipeline.Tier_full
      in
      s.in_aot <- true;
      (try
         List.iter
           (fun pc ->
             if s.aot_seeded >= s.opts.aot_limit then raise Exit;
             if Transtab.find s.transtab pc = None then
               match translate_tier s ~tier pc with
               | _ -> s.aot_seeded <- s.aot_seeded + 1
               | exception
                   ( Jit.Pipeline.Translation_failure _
                   | Guest.Decode.Truncated
                   | Guest.Decode.Truncated_at _
                   | Aspace.Fault _ ) ->
                   s.aot_failed <- s.aot_failed + 1)
           (Static.Cfg.block_starts cfg)
       with Exit -> ());
      s.in_aot <- false;
      tev s ~cat:"jit" ~name:"aot_seed"
        ~args:
          [ ("seeded", Obs.Trace.I (Int64.of_int s.aot_seeded));
            ("failed", Obs.Trace.I (Int64.of_int s.aot_failed)) ]
        ()
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Signals (§3.15)                                                      *)
(* ------------------------------------------------------------------ *)

let fatal (s : t) (th : Threads.thread) (signal : int) =
  tev s ~cat:"signal" ~name:"fatal"
    ~args:[ ("sig", Obs.Trace.S (Kernel.Sig.name signal)) ]
    ();
  output s
    (Printf.sprintf "==vg== Process terminating with default action of %s\n"
       (Kernel.Sig.name signal));
  let stack = Threads.stack_trace s.threads th () in
  List.iteri
    (fun i a ->
      output s
        (Printf.sprintf "==vg==    %s 0x%LX: %s\n"
           (if i = 0 then "at" else "by")
           a
           (symbolize s a)))
    stack;
  s.exit_reason <- Some (Fatal_signal signal)

(** Deliver [signal] to [th], between code blocks — so a load/shadow-load
    pair is never separated (§3.15). *)
let deliver_signal (s : t) (th : Threads.thread) (signal : int) =
  match Kernel.handler_for s.kern signal with
  | None -> fatal s th signal
  | Some h ->
      tev s ~cat:"signal" ~name:"deliver"
        ~args:[ ("sig", Obs.Trace.S (Kernel.Sig.name signal)) ]
        ();
      Threads.save_frame s.threads th;
      (* push the signal number argument and the sigreturn trampoline as
         the return address, then enter the handler *)
      let sp = Threads.get_reg s.threads th GA.reg_sp in
      let sp = Int64.sub sp 4L in
      Aspace.write s.mem sp 4 (Int64.of_int signal);
      let sp = Int64.sub sp 4L in
      Aspace.write s.mem sp 4 s.sigreturn_tramp;
      Threads.put_reg s.threads th GA.reg_sp sp;
      Threads.put_eip s.threads th h.sh_addr

(* Deliver into the target thread's ThreadState, and preempt its core
   so the handler runs the next time that core steps (when the target is
   on the stepping core, it runs immediately — the single-core
   behaviour). *)
let deliver_to (s : t) (tid : int) (signal : int) =
  match Threads.find s.threads tid with
  | Some th when th.status = Threads.Runnable ->
      Threads.preempt s.threads th
        ~make_current:(th.core = s.active.Engine.id);
      deliver_signal s th signal
  | _ -> deliver_signal s s.threads.current signal

let check_signals (s : t) =
  match s.opts.rr with
  | Replay.Replay p -> (
      (* the kernel never runs on replay, so its pending queue stays
         empty; deliveries come from the log, keyed by the scheduler
         iteration at which the recording session took them *)
      match Replay.signal_due p ~iter:s.sched_iters ~cycle:(wall_cycles s) with
      | Some (tid, signo) -> deliver_to s tid signo
      | None -> ())
  | rr -> (
      match Kernel.take_pending_signal s.kern with
      | None -> ()
      | Some (tid, signal) ->
          (match rr with
          | Replay.Record rec_ ->
              Replay.record_signal rec_ ~iter:s.sched_iters ~tid
                ~signo:signal ~cycle:(wall_cycles s)
          | _ -> ());
          deliver_to s tid signal)

(* ------------------------------------------------------------------ *)
(* Client requests (§3.11)                                              *)
(* ------------------------------------------------------------------ *)

let read_args (s : t) (argp : int64) (n : int) : int64 array =
  Array.init n (fun i ->
      try Aspace.read s.mem (Int64.add argp (Int64.of_int (4 * i))) 4
      with Aspace.Fault _ -> 0L)

let handle_client_request (s : t) =
  let th = s.threads.current in
  let code = Threads.get_reg s.threads th 0 in
  let argp = Threads.get_reg s.threads th 1 in
  let set_result v = Threads.put_reg s.threads th 0 v in
  (* internal codes from replacement stubs *)
  match Redirect.lookup_handler s.redirect code with
  | Some handler -> handler ()
  | None ->
      if code = Clientreq.running_on_valgrind then set_result 1L
      else if code = Clientreq.discard_translations then begin
        let args = read_args s argp 2 in
        on_discard s args.(0) (Int64.to_int args.(1));
        set_result 0L
      end
      else if code = Clientreq.print_msg then begin
        let msg = Aspace.read_asciiz s.mem argp in
        output s msg;
        set_result (Int64.of_int (String.length msg))
      end
      else if code = Clientreq.stack_register then begin
        let args = read_args s argp 2 in
        let id = s.regstacks.next_id in
        s.regstacks.next_id <- id + 1;
        s.regstacks.stacks <- (id, args.(0), args.(1)) :: s.regstacks.stacks;
        set_result (Int64.of_int id)
      end
      else if code = Clientreq.stack_deregister then begin
        let args = read_args s argp 1 in
        s.regstacks.stacks <-
          List.filter
            (fun (id, _, _) -> id <> Int64.to_int args.(0))
            s.regstacks.stacks;
        set_result 0L
      end
      else if code = Clientreq.stack_change then begin
        let args = read_args s argp 3 in
        s.regstacks.stacks <-
          List.map
            (fun (id, lo, hi) ->
              if id = Int64.to_int args.(0) then (id, args.(1), args.(2))
              else (id, lo, hi))
            s.regstacks.stacks;
        set_result 0L
      end
      else
        let args = read_args s argp 4 in
        match s.instance with
        | Some inst -> (
            match inst.client_request ~code ~args with
            | Some v -> set_result v
            | None -> set_result 0L)
        | None -> set_result 0L

(* ------------------------------------------------------------------ *)
(* Time travel (Vgrewind): snapshots, digests                           *)
(* ------------------------------------------------------------------ *)

(** Host instructions executed so far, summed over every core — the
    target unit for {!back}. *)
let host_insns (s : t) : int64 =
  Array.fold_left (fun acc e -> Int64.add acc e.Engine.cpu.insns) 0L s.cores

(** Capture a full-state checkpoint of the running session.  Charges
    nothing: checkpoints are a debugger feature, not simulated work. *)
let take_snapshot (s : t) : unit =
  let tt, remap = Transtab.snapshot s.transtab in
  let sp =
    {
      sp_cycle = wall_cycles s;
      sp_insns = host_insns s;
      sp_mem = Aspace.snapshot s.mem;
      sp_kern = Kernel.snapshot s.kern;
      sp_threads = Threads.snapshot s.threads;
      sp_transtab = tt;
      sp_engines = Array.map (fun e -> Engine.snapshot e ~remap) s.cores;
      sp_active = s.active.Engine.id;
      sp_events = Events.snapshot s.events;
      sp_errors = Errors.snapshot s.errors;
      sp_output = Buffer.contents s.output_buf;
      sp_tool =
        (match s.instance with
        | Some i -> i.Tool.snapshot ()
        | None -> Bytes.empty);
      sp_marks =
        (match s.opts.rr with
        | Replay.Replay p -> Some (Replay.mark p)
        | _ -> None);
      sp_sched_iters = s.sched_iters;
      sp_trans_reqs = s.trans_reqs;
      sp_blocks = s.blocks_executed;
      sp_translations =
        ( s.translations_made, s.translations_tier0, s.translations_full,
          s.translations_super );
      sp_retrans_smc = s.retranslations_smc;
      sp_verify_checks = s.verify_checks;
      sp_interp_fallbacks = s.interp_fallbacks;
      sp_uninstr = s.uninstrumented_steps;
      sp_chaos_flushes = s.chaos_flushes;
      sp_promotions = (s.promotions, s.promotions_failed);
      sp_super_aborts = s.superblock_aborts;
      sp_jit_t0 = s.jit_cycles_tier0;
      sp_jit_phase = Array.copy s.jit_phase_cycles;
      sp_jit_phase_t0 = Array.copy s.jit_phase_cycles_tier0;
      sp_sysw =
        ( s.sysw.Syswrap.n_restarts, s.sysw.Syswrap.n_injected_errnos,
          s.sysw.Syswrap.n_short_io, s.sysw.Syswrap.n_map_retries );
      sp_arena_next = s.arena_next;
      sp_regstacks = (s.regstacks.next_id, s.regstacks.stacks);
      sp_cfg = (s.cfg_checked, s.cfg_miss);
      sp_exit = s.exit_reason;
    }
  in
  s.snapshots <- (sp.sp_cycle, sp) :: s.snapshots

(** Restore the session, in place, to a previously captured checkpoint.
    The address space goes first (ThreadStates and shadow state live in
    guest memory), then the kernel, threads, translation table and
    per-core caches (through the translation-copy memo so every
    reference lands on the same fresh copy), then the flat counters. *)
let restore_snapshot (s : t) (sp : snapshot) : unit =
  Aspace.restore s.mem sp.sp_mem;
  Kernel.restore s.kern sp.sp_kern;
  Threads.restore s.threads sp.sp_threads;
  let remap = Transtab.restore s.transtab sp.sp_transtab in
  Array.iteri (fun i e -> Engine.restore e sp.sp_engines.(i) ~remap) s.cores;
  s.active <- s.cores.(sp.sp_active);
  Events.restore s.events sp.sp_events;
  Errors.restore s.errors sp.sp_errors;
  Buffer.clear s.output_buf;
  Buffer.add_string s.output_buf sp.sp_output;
  (match s.instance with
  | Some i -> i.Tool.restore sp.sp_tool
  | None -> ());
  (match (s.opts.rr, sp.sp_marks) with
  | Replay.Replay p, Some m -> Replay.reset p m
  | _ -> ());
  s.sched_iters <- sp.sp_sched_iters;
  s.trans_reqs <- sp.sp_trans_reqs;
  s.blocks_executed <- sp.sp_blocks;
  let tm, t0, tf, tsu = sp.sp_translations in
  s.translations_made <- tm;
  s.translations_tier0 <- t0;
  s.translations_full <- tf;
  s.translations_super <- tsu;
  s.retranslations_smc <- sp.sp_retrans_smc;
  s.verify_checks <- sp.sp_verify_checks;
  s.interp_fallbacks <- sp.sp_interp_fallbacks;
  s.uninstrumented_steps <- sp.sp_uninstr;
  s.chaos_flushes <- sp.sp_chaos_flushes;
  let pm, pf = sp.sp_promotions in
  s.promotions <- pm;
  s.promotions_failed <- pf;
  s.superblock_aborts <- sp.sp_super_aborts;
  s.jit_cycles_tier0 <- sp.sp_jit_t0;
  Array.blit sp.sp_jit_phase 0 s.jit_phase_cycles 0
    (Array.length s.jit_phase_cycles);
  Array.blit sp.sp_jit_phase_t0 0 s.jit_phase_cycles_tier0 0
    (Array.length s.jit_phase_cycles_tier0);
  let r1, r2, r3, r4 = sp.sp_sysw in
  s.sysw.Syswrap.n_restarts <- r1;
  s.sysw.Syswrap.n_injected_errnos <- r2;
  s.sysw.Syswrap.n_short_io <- r3;
  s.sysw.Syswrap.n_map_retries <- r4;
  s.arena_next <- sp.sp_arena_next;
  let rid, rstacks = sp.sp_regstacks in
  s.regstacks.next_id <- rid;
  s.regstacks.stacks <- rstacks;
  let cchk, cmiss = sp.sp_cfg in
  s.cfg_checked <- cchk;
  s.cfg_miss <- cmiss;
  s.exit_reason <- sp.sp_exit

(* Checkpoint cadence: replay mode only, keyed on simulated wall cycles.
   [next_snap_at] is deliberately NOT restored by time travel — it is a
   high-water mark, so re-executing a stretch never re-captures the
   checkpoints already taken over it. *)
let maybe_snapshot (s : t) =
  match s.opts.rr with
  | Replay.Replay _
    when Int64.compare s.opts.snapshot_every 0L > 0
         && Int64.compare (wall_cycles s) s.next_snap_at >= 0 ->
      take_snapshot s;
      s.next_snap_at <- Int64.add (wall_cycles s) s.opts.snapshot_every
  | _ -> ()

let ensure_started (s : t) =
  if not s.started then begin
    s.started <- true;
    startup s;
    aot_seed_blocks s;
    (* replay mode: a base checkpoint right after start-up, so seeking
       near cycle zero never needs a run-from-nothing *)
    maybe_snapshot s
  end

(** Final-state digests, written to the log trailer by a recording
    session and checked after replay.  "stats" covers the whole metrics
    registry modulo the chaos.* / replay.* keys that only exist on one
    side of a record/replay pair. *)
let digests (s : t) : (string * string) list =
  let exit_str =
    match s.exit_reason with
    | Some (Exited n) -> Printf.sprintf "exited:%d" n
    | Some (Fatal_signal n) -> Printf.sprintf "signal:%d" n
    | Some Out_of_fuel -> "out_of_fuel"
    | None -> "running"
  in
  let th_h = ref Replay.fnv_basis in
  List.iter
    (fun (th : Threads.thread) ->
      th_h :=
        Replay.fnv_string ~h:!th_h
          (Printf.sprintf "t%d@%Ld" th.tid (Threads.get_eip s.threads th));
      for rg = 0 to GA.n_regs - 1 do
        th_h :=
          Replay.fnv_string ~h:!th_h
            (Int64.to_string (Threads.get_reg s.threads th rg))
      done)
    (List.sort
       (fun (a : Threads.thread) (b : Threads.thread) -> compare a.tid b.tid)
       s.threads.threads);
  let ev_h =
    Array.fold_left
      (fun h v -> Replay.fnv_string ~h (Int64.to_string v))
      Replay.fnv_basis
      (Events.snapshot s.events)
  in
  [
    ("exit", exit_str);
    ("threads", Replay.hex !th_h);
    ("memory", Replay.hex (Replay.hash_aspace s.mem));
    ("events", Replay.hex ev_h);
    ("stdout", Replay.hex (Replay.fnv_string (Kernel.stdout_contents s.kern)));
    ("tool", Replay.hex (Replay.fnv_string (Buffer.contents s.output_buf)));
    ( "stats",
      Replay.hex
        (Replay.fnv_string
           (Replay.filter_stats (Obs.Registry.to_json s.metrics))) );
  ]

(** Compare the replayed final state against the log's trailer.
    Returns [(key, recorded, got)] mismatches; empty = bit-identical. *)
let replay_mismatches (s : t) : (string * string * string) list =
  match s.opts.rr with
  | Replay.Replay p ->
      let got = digests s in
      List.filter_map
        (fun (k, want) ->
          match List.assoc_opt k got with
          | Some g when g = want -> None
          | Some g -> Some (k, want, g)
          | None -> Some (k, want, "<missing>"))
        p.Replay.p_log.Replay.l_digests
  | _ -> []

(* ------------------------------------------------------------------ *)
(* The main scheduler loop (§3.9)                                       *)
(* ------------------------------------------------------------------ *)

(* SMC self-check: rehash the guest bytes a translation came from. *)
let smc_ok (s : t) (t : Jit.Pipeline.translation) : bool =
  let fetch addr = try Aspace.read_u8 s.mem addr with Aspace.Fault _ -> 0 in
  let h = Jit.Pipeline.hash_guest_bytes fetch t.t_guest_ranges in
  let e = s.active in
  e.Engine.smc_cycles <-
    Int64.add e.Engine.smc_cycles (Int64.of_int (2 * t.t_guest_bytes));
  h = t.t_code_hash

(* Dispatcher entry: the stepping core's fast-lookup cache, then the
   scheduler (§3.9). *)
let lookup_via_dispatcher (s : t) (pc : int64) : Jit.Pipeline.translation =
  let d = s.active.Engine.dispatch in
  match Dispatch.lookup d pc with
  | Some t ->
      charge s d.fast_cost;
      t
  | None ->
      charge s (d.fast_cost + d.slow_cost);
      let t = scheduler_find s pc in
      Dispatch.update d pc t;
      t

(* -- tiered JIT: promotion and trace superblocks ------------------- *)

(* Hotness promotion: retranslate a hot tier-0 block with the optimizing
   pipeline.  [Transtab.insert] on the same key unlinks every chain into
   the quick translation and the dispatcher entry is refreshed, so the
   replacement happens exactly once and no stale pointer survives.  A
   failed attempt (e.g. chaos condemned the retranslation) marks the
   quick translation so it keeps running without a retry storm. *)
let promote (s : t) (pc : int64) (t0 : Jit.Pipeline.translation) :
    Jit.Pipeline.translation =
  match translate_tier s ~tier:Jit.Pipeline.Tier_full pc with
  | exception (Guest.Decode.Truncated | Jit.Pipeline.Translation_failure _)
    ->
      t0.t_no_promote <- true;
      s.promotions_failed <- s.promotions_failed + 1;
      tev s ~cat:"jit" ~name:"promote_failed"
        ~args:[ ("pc", Obs.Trace.I pc) ]
        ();
      (match s.opts.chaos with
      | Some c -> Chaos.note_recovery c "promotion_failed"
      | None -> ());
      t0
  | t ->
      t.t_hotness <- t0.t_hotness;
      s.promotions <- s.promotions + 1;
      Dispatch.update s.active.Engine.dispatch pc t;
      tev s ~cat:"jit" ~name:"promote" ~args:[ ("pc", Obs.Trace.I pc) ] ();
      t

(* Trace selection: starting from the full-tier translation whose hot
   exit just fired, greedily follow the hottest boring chainable exit
   into resident full-tier translations.  Stops at cycles, redirected
   addresses, cold or non-boring exits, missing/other-tier translations,
   or the length cap.  Everything consulted (slot heat, tier, residency)
   is a deterministic function of the execution history, so formation
   replays bit-identically. *)
let select_trace (s : t) (src : Jit.Pipeline.translation) : int64 list =
  (* successors must be at least half as hot as the trigger threshold:
     on a straight hot path the downstream slots trail the trigger by at
     most one transfer, while genuinely cold side paths stay excluded *)
  let min_hot = Int64.of_int ((s.opts.trace_threshold + 1) / 2) in
  let rec go (visited : int64 list) (t : Jit.Pipeline.translation) (n : int)
      : int64 list =
    if n >= s.opts.trace_max_blocks then List.rev visited
    else
      let best =
        Array.fold_left
          (fun best (sl : Jit.Pipeline.chain_slot) ->
            if
              sl.Jit.Pipeline.cs_kind <> HA.ek_boring
              || Int64.unsigned_compare sl.cs_hot min_hot < 0
              || List.mem sl.cs_target visited
              || Redirect.resolve s.redirect sl.cs_target <> sl.cs_target
              || Transtab.covered_by_super s.transtab sl.cs_target
            then best
            else
              match best with
              | Some (b : Jit.Pipeline.chain_slot)
                when Int64.unsigned_compare b.cs_hot sl.cs_hot >= 0 ->
                  best
              | _ -> Some sl)
          None t.t_exits
      in
      match best with
      | None -> List.rev visited
      | Some sl -> (
          match Transtab.find s.transtab sl.cs_target with
          | Some nt when nt.t_tier = Jit.Pipeline.Tier_full ->
              go (sl.cs_target :: visited) nt (n + 1)
          | _ -> List.rev visited)
  in
  go [ src.t_guest_addr ] src 1

(* Stitch the hot path starting at [head] into one superblock
   translation and make it resident under the head's key (the
   constituent translations stay resident under theirs, so side exits
   fall back to them).  Unstitchable or failed traces just count an
   abort — execution continues on the per-block translations. *)
let form_superblock (s : t) (head : Jit.Pipeline.translation) : unit =
  let pc = head.t_guest_addr in
  let path = select_trace s head in
  if List.length path < 2 then
    s.superblock_aborts <- s.superblock_aborts + 1
  else
    let fetch addr = Aspace.fetch_u8 s.mem addr in
    let checks = translation_checks s ~fetch_pc:pc in
    match
      Jit.Pipeline.translate_trace ~unroll:s.opts.unroll_loops ?checks
        ~fetch ~instrument:(instrument_fn s) path
    with
    | exception (Guest.Decode.Truncated | Jit.Pipeline.Translation_failure _)
      ->
        s.superblock_aborts <- s.superblock_aborts + 1;
        tev s ~cat:"jit" ~name:"superblock_abort"
          ~args:[ ("pc", Obs.Trace.I pc) ]
          ();
        (match s.opts.chaos with
        | Some c -> Chaos.note_recovery c "superblock_abort"
        | None -> ())
    | None -> s.superblock_aborts <- s.superblock_aborts + 1
    | Some t ->
        (* SMC policy is per constituent: check whenever any stitched
           range wants it.  [t_guest_ranges] spans every constituent, so
           discard-by-range invalidation needs no special casing. *)
        let t =
          {
            t with
            t_smc_check = List.exists (wants_smc_check s) t.t_constituents;
          }
        in
        account_translation s ~pc t;
        Dispatch.update s.active.Engine.dispatch pc t;
        tev s ~cat:"jit" ~name:"superblock"
          ~args:
            [ ("pc", Obs.Trace.I pc);
              ("blocks", Obs.Trace.I (Int64.of_int (List.length t.t_constituents))) ]
          ()

(* Bump a chained exit's heat; at exactly the threshold (once per slot),
   try to stitch the hot path it starts into a superblock. *)
let note_chained_transfer (s : t) (src : Jit.Pipeline.translation)
    (slot : Jit.Pipeline.chain_slot) : unit =
  slot.cs_hot <- Int64.add slot.cs_hot 1L;
  if
    s.opts.superblocks && s.opts.trace_threshold > 0
    && slot.cs_hot = Int64.of_int s.opts.trace_threshold
    && src.t_tier = Jit.Pipeline.Tier_full
    && slot.cs_kind = HA.ek_boring
    && Redirect.resolve s.redirect src.t_guest_addr = src.t_guest_addr
    && not (Transtab.covered_by_super s.transtab src.t_guest_addr)
  then form_superblock s src

let find_translation (s : t) (pc : int64) : Jit.Pipeline.translation =
  let e = s.active in
  match e.Engine.last_exit with
  | Some (src, slot) when s.opts.chaining && slot.cs_target = pc -> (
      (* the previous block on this core left through a chainable
         (constant-target) exit site whose target is where we are going *)
      match slot.cs_next with
      | Some t when not t.Jit.Pipeline.t_dead ->
          (* patched: control transfers straight to the successor *)
          charge s s.opts.chain_cost;
          e.Engine.chained_transfers <-
            Int64.add e.Engine.chained_transfers 1L;
          Events.tick_chain_followed s.events;
          note_chained_transfer s src slot;
          t
      | _ ->
          (* first warm transit of this exit: dispatch normally, then
             patch the site so the dispatcher is bypassed from now on.
             [Transtab.link] refuses if either translation is no longer
             resident (nothing would unlink the chain later); the link
             is recorded in this core's chain shard. *)
          let t = lookup_via_dispatcher s pc in
          ignore (Transtab.link s.transtab ~core:e.Engine.id ~src ~slot ~dst:t);
          t)
  | _ -> lookup_via_dispatcher s pc

let do_thread_create (s : t) ~entry ~sp ~arg =
  let th = Threads.spawn s.threads in
  (* new thread: r1 = arg, return address = thread-exit trampoline *)
  Threads.put_reg s.threads th 1 arg;
  let sp = Int64.sub sp 4L in
  Aspace.write s.mem sp 4 s.thread_exit_tramp;
  Threads.put_reg s.threads th GA.reg_sp sp;
  Threads.put_reg s.threads th GA.reg_fp sp;
  Threads.put_eip s.threads th entry;
  (* if the thread landed on an idle core, fast-forward that core to
     the creating core's clock: a core cannot have executed the thread
     before it existed *)
  if
    th.core <> s.active.Engine.id
    && not
         (List.exists
            (fun (x : Threads.thread) ->
              x.tid <> th.tid && x.status = Threads.Runnable)
            (Threads.on_core s.threads th.core))
  then Engine.fast_forward s.cores.(th.core) ~now:(Engine.clock s.active);
  th.tid

let finish (s : t) (reason : exit_reason) =
  if s.exit_reason = None then s.exit_reason <- Some reason

(* Rotate the stepping core to its next runnable thread, counting an
   actual handoff (tid changed) against that core. *)
let switch_thread (s : t) : bool =
  let before = s.threads.current.tid in
  let ok = Threads.switch_to_next s.threads in
  if ok && s.threads.current.tid <> before then
    s.active.Engine.handoffs <- Int64.add s.active.Engine.handoffs 1L;
  ok

(* Act on the exit kind a block left through — shared by the JIT path
   and the interpreted degradation paths, so a degraded block's
   syscalls, client requests and signals behave identically. *)
let handle_exit (s : t) (th : Threads.thread) ~(ek : int) ~(dest : int64) =
  if ek = HA.ek_syscall then begin
    let wrap_env =
      { Syswrap.events = s.events; kern = s.kern;
        on_discard = (fun a l -> on_discard s a l);
        chaos = s.opts.chaos; counters = s.sysw;
        charge = (fun c -> charge s c);
        rr = s.opts.rr; now = (fun () -> wall_cycles s) }
    in
    match Syswrap.syscall wrap_env ~tid:th.tid (Threads.regs_of s.threads th) with
    | Kernel.Ok -> ()
    | Kernel.Exit_process code -> finish s (Exited code)
    | Kernel.Thread_create { entry; sp; arg } ->
        let tid = do_thread_create s ~entry ~sp ~arg in
        Threads.put_reg s.threads th 0 (Int64.of_int tid)
    | Kernel.Thread_exit ->
        (* the stepping core may be out of threads, but others may not
           be: global exhaustion is the scheduler's call (no core has a
           runnable thread), not this core's *)
        th.status <- Threads.Exited;
        ignore (switch_thread s)
    | Kernel.Yield -> ignore (switch_thread s)
    | Kernel.Sigreturn ->
        if not (Threads.restore_frame s.threads th) then
          fatal s th Kernel.Sig.sigsegv
  end
  else if ek = HA.ek_clientreq then handle_client_request s
  else if ek = HA.ek_sigill then begin
    output s
      (Printf.sprintf "==vg== Illegal instruction at 0x%LX\n" dest);
    deliver_signal s th Kernel.Sig.sigill
  end
  else if ek = HA.ek_yield then ignore (switch_thread s)

let invalid_exec (s : t) (th : Threads.thread) (pc : int64) =
  (* jumping to unmapped/non-executable memory faults exactly like
     native execution: SIGSEGV, not SIGILL from decoding zero bytes *)
  s.active.Engine.last_exit <- None;
  output s (Printf.sprintf "==vg== Invalid exec at address 0x%LX\n" pc);
  deliver_signal s th Kernel.Sig.sigsegv

(* Last rung of the degradation ladder: execute one guest instruction
   directly against the ThreadState, uninstrumented.  Only reached when
   even the IR front end (phases 1-4) cannot process the block. *)
let step_uninstrumented (s : t) (th : Threads.thread) =
  s.uninstrumented_steps <- s.uninstrumented_steps + 1;
  tev s ~cat:"degrade" ~name:"uninstrumented_step"
    ~args:[ ("pc", Obs.Trace.I (Threads.get_eip s.threads th)) ]
    ();
  (match s.opts.chaos with
  | Some c -> Chaos.note_recovery c "uninstrumented_step"
  | None -> ());
  let get off size = Threads.get_state s.threads th ~off ~size in
  let put off size v = Threads.put_state s.threads th ~off ~size v in
  match Guest.Interp.step_external ~mem:s.mem ~get ~put with
  | exception Aspace.Fault f ->
      s.active.Engine.last_exit <- None;
      output s
        (Printf.sprintf "==vg== Invalid %s at address 0x%LX\n"
           (Fmt.str "%a" Aspace.pp_access_kind f.kind)
           f.addr);
      deliver_signal s th Kernel.Sig.sigsegv
  | exception Guest.Interp.Sigill at ->
      output s (Printf.sprintf "==vg== Illegal instruction at 0x%LX\n" at);
      deliver_signal s th Kernel.Sig.sigill
  | exception Guest.Interp.Sigfpe _ ->
      s.active.Engine.last_exit <- None;
      deliver_signal s th Kernel.Sig.sigfpe
  | cost, outcome -> (
      charge s cost;
      s.blocks_executed <- Int64.add s.blocks_executed 1L;
      s.active.Engine.blocks_executed <-
        Int64.add s.active.Engine.blocks_executed 1L;
      th.blocks_run <- Int64.add th.blocks_run 1L;
      match outcome with
      | Guest.Interp.X_next -> ()
      | Guest.Interp.X_syscall ->
          handle_exit s th ~ek:HA.ek_syscall
            ~dest:(Threads.get_eip s.threads th)
      | Guest.Interp.X_clreq ->
          handle_exit s th ~ek:HA.ek_clientreq
            ~dest:(Threads.get_eip s.threads th))

(* Graceful degradation (the recovery half of Vgchaos): the JIT refused
   this block, so run it one-shot through the IR evaluator instead of
   killing the session.  Phases 1-4 are rebuilt — including the tool's
   instrumentation — and evaluated with the same helper environment the
   compiled code would use, so every tool event, shadow update and
   helper call still fires and analysis results stay exact.  Nothing is
   inserted into the translation table: the next visit to this address
   re-enters the JIT (where translation will normally succeed). *)
let run_block_interp (s : t) (th : Threads.thread) ~(pc : int64) =
  s.interp_fallbacks <- s.interp_fallbacks + 1;
  s.active.Engine.last_exit <- None;
  tev s ~cat:"degrade" ~name:"interp_fallback"
    ~args:[ ("pc", Obs.Trace.I pc) ]
    ();
  (match s.opts.chaos with
  | Some c -> Chaos.note_recovery c "interp_fallback"
  | None -> ());
  let fetch_pc = Redirect.resolve s.redirect pc in
  match
    Jit.Pipeline.translate_ir ~unroll:s.opts.unroll_loops
      ~fetch:(fun a -> Aspace.fetch_u8 s.mem a)
      ~instrument:(instrument_fn s) fetch_pc
  with
  | exception Guest.Decode.Truncated -> invalid_exec s th pc
  | exception
      ( Jit.Pipeline.Translation_failure _ | Vex_ir.Typecheck.Ill_typed _
      | Failure _ | Invalid_argument _ | Not_found ) ->
      step_uninstrumented s th
  | ir, _stats -> (
      (* interpretation is slower than compiled code; charge for it *)
      let interp_cost = 8 * Support.Vec.length ir.Vex_ir.Ir.stmts in
      charge s interp_cost;
      match Vex_ir.Eval.run (helper_env s) ir with
      | exception Aspace.Fault f ->
          output s
            (Printf.sprintf "==vg== Invalid %s at address 0x%LX\n"
               (Fmt.str "%a" Aspace.pp_access_kind f.kind)
               f.addr);
          deliver_signal s th Kernel.Sig.sigsegv
      | exception Vex_ir.Eval.Eval_error msg
        when msg = "integer division by zero" ->
          deliver_signal s th Kernel.Sig.sigfpe
      | { Vex_ir.Eval.next_pc; jumpkind } ->
          Threads.put_eip s.threads th next_pc;
          s.blocks_executed <- Int64.add s.blocks_executed 1L;
          s.active.Engine.blocks_executed <-
            Int64.add s.active.Engine.blocks_executed 1L;
          th.blocks_run <- Int64.add th.blocks_run 1L;
          (match s.profiler with
          | Some p ->
              let name, base = resolve_fn s pc in
              Obs.Profile.block p ~core:s.active.Engine.id ~base ~name
                ~cycles:(Int64.of_int interp_cost)
          | None -> ());
          handle_exit s th ~ek:(HA.ek_of_jumpkind jumpkind) ~dest:next_pc)

(* Acquire the translation for [pc], including the SMC re-check, with
   translation failures surfaced as data instead of exceptions. *)
let acquire_translation (s : t) (pc : int64) :
    [ `T of Jit.Pipeline.translation | `Invalid_exec | `Failed of string ] =
  match find_translation s pc with
  | exception Guest.Decode.Truncated -> `Invalid_exec
  | exception Jit.Pipeline.Translation_failure m -> `Failed m
  | t ->
      if t.t_smc_check && not (smc_ok s t) then begin
        (* §3.16: hash mismatch -> discard and retranslate.  discard_key
           unlinks every chain pointing into the stale translation and
           marks it dead; other cores' caches notice lazily. *)
        Transtab.discard_key s.transtab pc;
        s.retranslations_smc <- s.retranslations_smc + 1;
        tev s ~cat:"smc" ~name:"retranslate"
          ~args:[ ("pc", Obs.Trace.I pc) ]
          ();
        match translate s pc with
        | exception Guest.Decode.Truncated -> `Invalid_exec
        | exception Jit.Pipeline.Translation_failure m -> `Failed m
        | t' ->
            Dispatch.update s.active.Engine.dispatch pc t';
            `T t'
      end
      else `T t

(** Execute one code block of the stepping core's current thread. *)
let run_block (s : t) =
  let e = s.active in
  let th = s.threads.current in
  let pc = Threads.get_eip s.threads th in
  Engine.trace_block e pc;
  (* Vgscan soundness oracle: every executed block start inside the
     image text must be a statically discovered instruction start.
     Stubs, trampolines and stack-hosted code live outside text and are
     exempt by the range check. *)
  (match s.static_scan with
  | Some cfg ->
      if
        Int64.unsigned_compare pc cfg.Static.Cfg.text_lo >= 0
        && Int64.unsigned_compare pc cfg.Static.Cfg.text_hi < 0
      then begin
        s.cfg_checked <- s.cfg_checked + 1;
        if not (Static.Cfg.known_insn cfg pc) then
          s.cfg_miss <- s.cfg_miss + 1
      end
  | None -> ());
  match acquire_translation s pc with
  | `Invalid_exec -> invalid_exec s th pc
  | `Failed msg ->
      if not s.opts.interp_fallback then
        raise (Jit.Pipeline.Translation_failure msg);
      run_block_interp s th ~pc
  | `T t -> (
      (* tiered JIT: a quick translation that crossed the hotness
         threshold is promoted to the optimizing tier before running *)
      let t =
        if
          t.t_tier = Jit.Pipeline.Tier_quick
          && s.opts.promote_threshold > 0
          && (not t.t_no_promote)
          && Int64.unsigned_compare t.t_hotness
               (Int64.of_int s.opts.promote_threshold)
             >= 0
        then promote s pc t
        else t
      in
      t.t_hotness <- Int64.add t.t_hotness 1L;
      e.Engine.cpu.hregs.(HA.gsp) <- th.ts_addr;
      let env = helper_env s in
      let prof_cycles0 = e.Engine.cpu.cycles in
      match Host.Interp.run e.Engine.cpu ~env t.t_decoded with
      | exception Aspace.Fault f ->
          e.Engine.last_exit <- None;
          output s
            (Printf.sprintf "==vg== Invalid %s at address 0x%LX\n"
               (Fmt.str "%a" Aspace.pp_access_kind f.kind)
               f.addr);
          deliver_signal s th Kernel.Sig.sigsegv
      | exception Host.Interp.Host_sigfpe ->
          e.Engine.last_exit <- None;
          deliver_signal s th Kernel.Sig.sigfpe
      | ek, dest, exit_site ->
          e.Engine.last_exit <-
            (if s.opts.chaining then
               match Jit.Pipeline.find_chain_slot t exit_site with
               | Some slot -> Some (t, slot)
               | None -> None
             else None);
          Threads.put_eip s.threads th dest;
          s.blocks_executed <- Int64.add s.blocks_executed 1L;
          e.Engine.blocks_executed <- Int64.add e.Engine.blocks_executed 1L;
          th.blocks_run <- Int64.add th.blocks_run 1L;
          (match s.profiler with
          | Some p ->
              let name, base = resolve_fn s pc in
              Obs.Profile.block p ~core:e.Engine.id ~base ~name
                ~cycles:(Int64.sub e.Engine.cpu.cycles prof_cycles0);
              if ek = HA.ek_call then begin
                let callee_name, callee_base = resolve_fn s dest in
                Obs.Profile.call p ~caller:base ~callee_base ~callee_name
              end
          | None -> ());
          handle_exit s th ~ek ~dest)

(* Scheduler epoch boundary: free translations retired a full epoch ago
   and sweep them out of every core's fast-lookup cache and last-exit
   record.  A chaos fault point ([p_retire_delay]) can hold the retire
   list one extra epoch — the delayed schedule must stay safe, which the
   [t_dead] lazy-miss rule guarantees.  Bookkeeping only: no cycles. *)
let advance_epoch (s : t) =
  let delay =
    match s.opts.rr with
    | Replay.Replay p ->
        Replay.retire_due p ~iter:s.sched_iters ~cycle:(wall_cycles s)
    | rr -> (
        match s.opts.chaos with
        | Some c when Transtab.retire_pending s.transtab > 0 ->
            let d =
              Chaos.retire_delay c
                ~pending:(Transtab.retire_pending s.transtab)
            in
            (match rr with
            | Replay.Record rec_ when d ->
                Replay.record_retire rec_ ~iter:s.sched_iters
                  ~cycle:(wall_cycles s)
            | _ -> ());
            d
        | _ -> false)
  in
  let freed = Transtab.advance_epoch ~delay s.transtab in
  if freed <> [] then
    Array.iter
      (fun e ->
        Dispatch.purge_dead e.Engine.dispatch;
        match e.Engine.last_exit with
        | Some (src, _) when src.Jit.Pipeline.t_dead ->
            e.Engine.last_exit <- None
        | _ -> ())
      s.cores

(* The scheduler's core pick: among cores with a runnable thread, the
   one with the lowest clock; ties go to the lowest id (the fold runs
   in ascending id order, so an earlier equal clock wins).  [None]
   means no thread anywhere can run — the session is done. *)
let pick_core (s : t) : Engine.t option =
  Array.fold_left
    (fun best e ->
      if not (Threads.has_runnable s.threads ~core:e.Engine.id) then best
      else
        match best with
        | Some b when Int64.compare (Engine.clock b) (Engine.clock e) <= 0 ->
            best
        | _ -> Some e)
    None s.cores

(** One scheduler-loop iteration: checkpoint if due, bump the iteration
    ordinal, roll (or replay) the chaos scheduling points, pick a core
    and run one block.  Returns [false] once the session has exited. *)
let step (s : t) : bool =
  ensure_started s;
  (match s.exit_reason with
  | Some _ -> ()
  | None -> (
      maybe_snapshot s;
      s.sched_iters <- Int64.add s.sched_iters 1L;
      if
        s.opts.max_blocks > 0L
        && Int64.unsigned_compare s.blocks_executed s.opts.max_blocks > 0
      then finish s Out_of_fuel
      else begin
        (* chaos: forced code-cache pressure between blocks — every
           resident translation and chain is dropped at once, on every
           core.  Recorded/replayed by scheduler iteration. *)
        let flush_now =
          match s.opts.rr with
          | Replay.Replay p ->
              Replay.flush_due p ~iter:s.sched_iters ~cycle:(wall_cycles s)
          | rr -> (
              match s.opts.chaos with
              | Some c when Chaos.flush_cache c ->
                  (match rr with
                  | Replay.Record rec_ ->
                      Replay.record_flush rec_ ~iter:s.sched_iters
                        ~cycle:(wall_cycles s)
                  | _ -> ());
                  true
              | _ -> false)
        in
        if flush_now then begin
          Transtab.flush s.transtab;
          Array.iter
            (fun e ->
              Dispatch.flush e.Engine.dispatch;
              e.Engine.last_exit <- None)
            s.cores;
          s.chaos_flushes <- s.chaos_flushes + 1
        end;
        match pick_core s with
        | None -> finish s (Exited 0)
        | Some e ->
            (* core handoff: chaos may model a migration stall on the
               incoming core (never fires at the default p = 0) *)
            if e.Engine.id <> s.active.Engine.id then begin
              (match s.opts.rr with
              | Replay.Replay p -> (
                  match
                    Replay.stall_due p ~iter:s.sched_iters
                      ~cycle:(wall_cycles s)
                  with
                  | Some cycles -> Engine.charge e cycles
                  | None -> ())
              | rr -> (
                  match s.opts.chaos with
                  | Some c -> (
                      match Chaos.handoff_stall c ~core:e.Engine.id with
                      | Some cycles ->
                          (match rr with
                          | Replay.Record rec_ ->
                              Replay.record_stall rec_ ~iter:s.sched_iters
                                ~cycles ~cycle:(wall_cycles s)
                          | _ -> ());
                          Engine.charge e cycles
                      | None -> ())
                  | None -> ()));
              s.active <- e
            end;
            Threads.select s.threads ~core:e.Engine.id;
            (* periodic scheduler entry: signal poll + epoch advance.
               On replay the pending queue is always empty (the kernel
               never runs), so the log is polled every iteration — it
               holds deliveries from both record-side branches. *)
            if
              Int64.rem s.blocks_executed
                (Int64.of_int s.opts.sched_poll_blocks)
              = 0L
            then begin
              charge s e.Engine.dispatch.slow_cost;
              check_signals s;
              advance_epoch s
            end
            else if
              match s.opts.rr with
              | Replay.Replay _ -> true
              | _ -> not (Queue.is_empty s.kern.pending)
            then check_signals s;
            (* timeslice rotation keyed on the *thread's own* block
               count, so a thread that arrives mid-interval still gets
               a full slice (rotation used to key on the global block
               counter modulo, which starved late-arriving threads) *)
            let th = s.threads.current in
            if
              s.opts.timeslice_blocks > 0
              && th.status = Threads.Runnable
              && Int64.compare
                   (Int64.sub th.blocks_run th.slice_start)
                   (Int64.of_int s.opts.timeslice_blocks)
                 >= 0
            then ignore (switch_thread s);
            if s.threads.current.status <> Threads.Runnable then
              ignore (switch_thread s)
            else run_block s
      end));
  s.exit_reason = None

(** Step until the session exits or [stop] holds (checked between
    iterations, i.e. at block boundaries). *)
let run_to (s : t) ~(stop : t -> bool) : unit =
  ensure_started s;
  let continue_ = ref true in
  while !continue_ do
    if s.exit_reason <> None || stop s then continue_ := false
    else continue_ := step s
  done

let run_inner (s : t) : exit_reason =
  run_to s ~stop:(fun _ -> false);
  let reason = Option.value s.exit_reason ~default:(Exited 0) in
  (match s.instance with
  | Some inst ->
      let exit_code = match reason with Exited c -> c | _ -> 1 in
      inst.fini ~exit_code
  | None -> ());
  (* recording: seal the log with the final-state digests (after the
     tool's fini, so the tool-output digest covers its report) *)
  (match s.opts.rr with
  | Replay.Record rec_ -> Replay.finish rec_ ~digests:(digests s)
  | _ -> ());
  reason

(* Snapshot the current thread's guest state and the dispatcher's recent
   history for post-mortem rendering. *)
let crash_context (s : t) (what : string) : Errors.crash_context =
  let th = s.threads.current in
  let trace = Engine.recent_blocks s.active in
  {
    cc_what = what;
    cc_eip = Threads.get_eip s.threads th;
    cc_regs = Array.init GA.n_regs (fun r -> Threads.get_reg s.threads th r);
    cc_blocks = s.blocks_executed;
    cc_trace = trace;
    cc_stack = (try Threads.stack_trace s.threads th () with _ -> []);
  }

(** Run the client to completion.  Returns the exit reason.  An error
    that escapes every recovery path (a verifier failure, a core bug) is
    re-raised — but only after a crash context (guest registers, PC, the
    last dispatched blocks, guest stack) is rendered to the tool output
    stream, so there is always a post-mortem record of what the client
    was doing when control was lost (§3.2). *)
let run (s : t) : exit_reason =
  try run_inner s
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    (try output s (Errors.render_crash s.errors (crash_context s (Printexc.to_string e)))
     with _ -> ());
    Printexc.raise_with_backtrace e bt

(* ------------------------------------------------------------------ *)
(* Time travel: seek / back                                             *)
(* ------------------------------------------------------------------ *)

(* Restore the newest checkpoint satisfying [pick], else the oldest one
   there is (the post-start-up base checkpoint, when cadence is on). *)
let rewind_to_best (s : t) (pick : snapshot -> bool) =
  match List.find_opt (fun (_, sp) -> pick sp) s.snapshots with
  | Some (_, sp) -> restore_snapshot s sp
  | None -> (
      match List.rev s.snapshots with
      | (_, sp) :: _ -> restore_snapshot s sp
      | [] -> ())

(** Move the session to the first block boundary at or after wall-cycle
    [cycle] — backwards via checkpoint restore + re-execution, forwards
    by plain execution.  Replay mode with [snapshot_every > 0]. *)
let seek (s : t) ~(cycle : int64) : unit =
  ensure_started s;
  if Int64.compare (wall_cycles s) cycle > 0 then
    rewind_to_best s (fun sp -> Int64.compare sp.sp_cycle cycle <= 0);
  run_to s ~stop:(fun s -> Int64.compare (wall_cycles s) cycle >= 0)

(** Step backwards [insns] host instructions (block granularity: lands
    on the first block boundary at or after the target). *)
let back (s : t) ~(insns : int64) : unit =
  ensure_started s;
  let target = Int64.sub (host_insns s) insns in
  let target = if Int64.compare target 0L < 0 then 0L else target in
  rewind_to_best s (fun sp -> Int64.compare sp.sp_insns target <= 0);
  run_to s ~stop:(fun s -> Int64.compare (host_insns s) target >= 0)

(* ------------------------------------------------------------------ *)
(* Statistics                                                           *)
(* ------------------------------------------------------------------ *)

type stats = {
  st_blocks : int64;
  st_host_cycles : int64;
  st_host_insns : int64;
  st_overhead_cycles : int64;
  st_jit_cycles : int64;
  st_smc_cycles : int64;
  st_total_cycles : int64;
      (** work cycles summed over every core (idle excluded) *)
  st_cores : int;  (** simulated cores this session ran with *)
  st_wall_cycles : int64;
      (** simulated wall time: the furthest-ahead core clock *)
  st_translations : int;
  st_retranslations_smc : int;
  st_verify_checks : int;  (** phase-boundary verifications run *)
  st_jit_phase_cycles : int64 array;
      (** [st_jit_cycles] attributed to the eight pipeline phases; the
          entries sum to [st_jit_cycles] exactly *)
  (* tiered JIT *)
  st_translations_tier0 : int;  (** quick-tier translations made *)
  st_translations_full : int;  (** full-pipeline translations made *)
  st_translations_super : int;  (** superblock translations made *)
  st_promotions : int;  (** tier-0 -> full retranslations *)
  st_promotions_failed : int;  (** promotion attempts that failed *)
  st_superblock_aborts : int;  (** abandoned trace formations *)
  st_jit_cycles_tier0 : int64;  (** the tier-0 share of [st_jit_cycles] *)
  st_jit_phase_cycles_tier0 : int64 array;
      (** the tier-0 share of [st_jit_phase_cycles]; the entries sum to
          [st_jit_cycles_tier0] exactly *)
  st_dispatch_hits : int64;
  st_dispatch_misses : int64;
  st_dispatch_hit_rate : float;
  st_dispatch_entries : int64;  (** lookups = hits + misses *)
  st_chained : int64;  (** transfers that bypassed the dispatcher *)
  st_chain_patched : int;  (** exit sites patched (cumulative) *)
  st_chain_unlinked : int;  (** slots unlinked on evict/discard/SMC *)
  st_chain_live : int;  (** currently-patched slots *)
  st_transtab_used : int;
  st_transtab_evictions : int;
  st_lock_handoffs : int64;
  (* robustness / chaos *)
  st_interp_fallbacks : int;  (** blocks degraded to IR interpretation *)
  st_uninstrumented_steps : int;  (** last-resort single steps *)
  st_chaos_flushes : int;  (** forced cache flushes *)
  st_syscall_restarts : int;  (** transparent EINTR restarts *)
  st_injected_errnos : int;  (** injected errnos the client saw *)
  st_short_io : int;  (** injected short reads/writes *)
  st_map_retries : int;  (** mmap/mremap retries after transient denial *)
  (* static analysis (Vgscan) *)
  st_cfg_checked : int;  (** block starts checked by the oracle *)
  st_cfg_miss : int;  (** executed starts the static scan never found *)
  st_aot_seeded : int;  (** blocks pre-translated before start-up *)
  st_aot_failed : int;  (** AOT seed attempts that failed *)
  st_aot_cycles : int64;  (** the AOT share of [st_jit_cycles] *)
}

let stats (s : t) : stats =
  let sumL f = Array.fold_left (fun acc e -> Int64.add acc (f e)) 0L s.cores in
  {
    st_blocks = s.blocks_executed;
    st_host_cycles = sumL (fun e -> e.Engine.cpu.cycles);
    st_host_insns = sumL (fun e -> e.Engine.cpu.insns);
    st_overhead_cycles = sumL (fun e -> e.Engine.overhead_cycles);
    st_jit_cycles = sumL (fun e -> e.Engine.jit_cycles);
    st_smc_cycles = sumL (fun e -> e.Engine.smc_cycles);
    st_total_cycles = total_cycles s;
    st_cores = Array.length s.cores;
    st_wall_cycles = wall_cycles s;
    st_translations = s.translations_made;
    st_retranslations_smc = s.retranslations_smc;
    st_verify_checks = s.verify_checks;
    st_jit_phase_cycles = Array.copy s.jit_phase_cycles;
    st_translations_tier0 = s.translations_tier0;
    st_translations_full = s.translations_full;
    st_translations_super = s.translations_super;
    st_promotions = s.promotions;
    st_promotions_failed = s.promotions_failed;
    st_superblock_aborts = s.superblock_aborts;
    st_jit_cycles_tier0 = s.jit_cycles_tier0;
    st_jit_phase_cycles_tier0 = Array.copy s.jit_phase_cycles_tier0;
    st_dispatch_hits = sumL (fun e -> e.Engine.dispatch.Dispatch.hits);
    st_dispatch_misses = sumL (fun e -> e.Engine.dispatch.Dispatch.misses);
    st_dispatch_hit_rate =
      (let hits = sumL (fun e -> e.Engine.dispatch.Dispatch.hits) in
       let total = sumL (fun e -> Dispatch.entries e.Engine.dispatch) in
       if total = 0L then 0.0
       else Int64.to_float hits /. Int64.to_float total);
    st_dispatch_entries = sumL (fun e -> Dispatch.entries e.Engine.dispatch);
    st_chained = sumL (fun e -> e.Engine.chained_transfers);
    st_chain_patched = s.transtab.n_chain_links;
    st_chain_unlinked = s.transtab.n_chain_unlinks;
    st_chain_live = s.transtab.live_chains;
    st_transtab_used = s.transtab.used;
    st_transtab_evictions = s.transtab.n_evicted;
    st_lock_handoffs = s.threads.lock_handoffs;
    st_interp_fallbacks = s.interp_fallbacks;
    st_uninstrumented_steps = s.uninstrumented_steps;
    st_chaos_flushes = s.chaos_flushes;
    st_syscall_restarts = s.sysw.n_restarts;
    st_injected_errnos = s.sysw.n_injected_errnos;
    st_short_io = s.sysw.n_short_io;
    st_map_retries = s.sysw.n_map_retries;
    st_cfg_checked = s.cfg_checked;
    st_cfg_miss = s.cfg_miss;
    st_aot_seeded = s.aot_seeded;
    st_aot_failed = s.aot_failed;
    st_aot_cycles = s.aot_cycles;
  }

(** Client console output (via the simulated kernel). *)
let client_stdout (s : t) = Kernel.stdout_contents s.kern

let tool_output (s : t) = Buffer.contents s.output_buf

(* ------------------------------------------------------------------ *)
(* Observability exports (Vgscope)                                      *)
(* ------------------------------------------------------------------ *)

(** The session's metrics registry: every subsystem's counters, gauges
    and probes, readable at any time.  The probes read the same mutable
    fields {!stats} reads, so the two views cannot disagree. *)
let metrics (s : t) : Obs.Registry.t = s.metrics

(** All metrics as one flat JSON object (sorted keys, one line per
    metric) — the [--stats=json] payload.  Deterministic: every value
    comes from the simulated cycle model or exact counters. *)
let stats_json (s : t) : string = Obs.Registry.to_json s.metrics

(** The structured-event trace ring, if tracing was enabled. *)
let trace (s : t) : Obs.Trace.t option = s.trace

(** Render the guest-execution profile (the [--profile] report): a flat
    per-function table from exact block counters, the observed
    caller/callee edges, and the hottest resident translations with
    their per-translation metadata. *)
let profile_report ?(top = 20) (s : t) : string =
  match s.profiler with
  | None -> "==vgscope== profiling was not enabled (pass --profile)\n"
  | Some p ->
      let b = Buffer.create 1024 in
      Buffer.add_string b
        (Obs.Profile.report ~top ~name_of:(fun pc -> fst (resolve_fn s pc)) p);
      let hot = Transtab.hottest s.transtab top in
      if hot <> [] then begin
        Buffer.add_string b
          "==vgscope== hot translations (resident, by executions):\n";
        Buffer.add_string b
          "==vgscope==       execs  tier   jit-cyc  bytes  ir-pre  ir-post  location\n";
        List.iter
          (fun (t : Jit.Pipeline.translation) ->
            Buffer.add_string b
              (Printf.sprintf "==vgscope== %11Ld %5s %9d %6d %7d %8d  %s\n"
                 t.t_hotness
                 (Jit.Pipeline.tier_name t.t_tier)
                 (Jit.Pipeline.translation_cost t)
                 (Bytes.length t.t_code) t.t_ir_stmts_pre t.t_ir_stmts_post
                 (symbolize s t.t_guest_addr)))
          hot
      end;
      Buffer.contents b
