(** The dispatcher's direct-mapped fast-lookup cache (paper §3.9).

    "The dispatcher looks for the appropriate translation in a small
    direct-mapped cache which holds addresses of recently-used
    translations.  If that look-up succeeds (the hit-rate is around 98%),
    the translation is executed immediately.  This fast case takes only
    fourteen instructions on x86."  Misses fall back to the scheduler,
    which searches the full translation table (and translates on a
    complete miss).

    Cycle costs are modelled explicitly so the Table-2 and §3.9
    experiments can reproduce the paper's dispatch-cost arguments
    (including the Strata footnote: a ~250-cycle dispatch gives a 22x
    basic slow-down; Valgrind's 14-instruction dispatcher is why its
    no-chaining slow-down is only ~4.3x).

    With translation chaining enabled (the default; see
    {!Transtab.link}), most block boundaries never enter the dispatcher
    at all: the predecessor's exit site is patched on the first warm
    lookup and subsequent transfers bypass this cache entirely.  The
    [entries] count therefore measures exactly what chaining saves.

    Each simulated core owns one of these caches.  Invalidation is
    {e lazy}: the translation table retires translations by marking
    them dead ([Jit.Pipeline.t_dead]) instead of broadcasting a flush
    to every core, and a hit on a dead translation counts — and
    behaves — as a miss.  The session additionally sweeps dead entries
    out at scheduler epoch boundaries ({!purge_dead}), the moment the
    retire list is actually freed. *)

type t = {
  keys : int64 array;
  values : Jit.Pipeline.translation option array;
  size : int;
  mutable hits : int64;
  mutable misses : int64;
  (* model parameters *)
  mutable fast_cost : int;  (** cycles per fast-path lookup (14) *)
  mutable slow_cost : int;  (** cycles to fall back into the scheduler *)
}

let default_fast_cost = 14
let default_slow_cost = 250

let create ?(size = 8192) ?(fast_cost = default_fast_cost)
    ?(slow_cost = default_slow_cost) () =
  {
    keys = Array.make size Int64.minus_one;
    values = Array.make size None;
    size;
    hits = 0L;
    misses = 0L;
    fast_cost;
    slow_cost;
  }

let slot t key = Int64.to_int (Int64.unsigned_rem key (Int64.of_int t.size))

(** Fast lookup. Some = hit (charge [fast_cost]); None = fall back to the
    scheduler (charge [fast_cost + slow_cost]).  A slot holding a dead
    (retired) translation is a miss: the entry is dropped and the caller
    refills it from the translation table, which is how a core notices
    retirement without any cross-core flush. *)
let lookup (t : t) (key : int64) : Jit.Pipeline.translation option =
  let i = slot t key in
  match (if t.keys.(i) = key then t.values.(i) else None) with
  | Some tr when not tr.Jit.Pipeline.t_dead ->
      t.hits <- Int64.add t.hits 1L;
      Some tr
  | Some _ ->
      (* stale: retired since it was cached here *)
      t.keys.(i) <- Int64.minus_one;
      t.values.(i) <- None;
      t.misses <- Int64.add t.misses 1L;
      None
  | None ->
      t.misses <- Int64.add t.misses 1L;
      None

let update (t : t) (key : int64) (v : Jit.Pipeline.translation) =
  let i = slot t key in
  t.keys.(i) <- key;
  t.values.(i) <- Some v

(** Drop everything (forced cache pressure / chaos flush). *)
let flush (t : t) =
  Array.fill t.keys 0 t.size Int64.minus_one;
  Array.fill t.values 0 t.size None

(** Sweep out entries whose translation has been retired.  Called by the
    session when the transtab's retire list is freed at an epoch
    boundary, so no cache slot outlives the translation it names.
    Bookkeeping only: charges no simulated cycles. *)
let purge_dead (t : t) =
  for i = 0 to t.size - 1 do
    match t.values.(i) with
    | Some tr when tr.Jit.Pipeline.t_dead ->
        t.keys.(i) <- Int64.minus_one;
        t.values.(i) <- None
    | _ -> ()
  done

(** {2 Snapshot / restore}

    Cache entries are remapped through the transtab snapshot memo; an
    entry whose translation is dead or gone from the memo is dropped,
    which is behaviour-identical (a dead hit already counts and charges
    as a miss, and dead slots have no patched chains left). *)

type snap = {
  s_keys : int64 array;
  s_values : Jit.Pipeline.translation option array;
  s_hits : int64;
  s_misses : int64;
}

let snapshot (t : t)
    ~(remap : Jit.Pipeline.translation -> Jit.Pipeline.translation option) :
    snap =
  let s_keys = Array.copy t.keys in
  let s_values = Array.make t.size None in
  for i = 0 to t.size - 1 do
    match t.values.(i) with
    | Some tr when not tr.Jit.Pipeline.t_dead -> (
        match remap tr with
        | Some c -> s_values.(i) <- Some c
        | None -> s_keys.(i) <- Int64.minus_one)
    | Some _ -> s_keys.(i) <- Int64.minus_one
    | None -> ()
  done;
  { s_keys; s_values; s_hits = t.hits; s_misses = t.misses }

let restore (t : t) (s : snap)
    ~(remap : Jit.Pipeline.translation -> Jit.Pipeline.translation option) =
  for i = 0 to t.size - 1 do
    match s.s_values.(i) with
    | Some tr -> (
        match remap tr with
        | Some c ->
            t.keys.(i) <- s.s_keys.(i);
            t.values.(i) <- Some c
        | None ->
            t.keys.(i) <- Int64.minus_one;
            t.values.(i) <- None)
    | None ->
        t.keys.(i) <- Int64.minus_one;
        t.values.(i) <- None
  done;
  t.hits <- s.s_hits;
  t.misses <- s.s_misses

(** Total over all states: a dispatcher that has never been entered has
    a hit rate of 0.0 (not 1.0, and never NaN — this value flows into
    the stats record and the JSON export unguarded). *)
let hit_rate t =
  let total = Int64.add t.hits t.misses in
  if total = 0L then 0.0
  else Int64.to_float t.hits /. Int64.to_float total

(** Total dispatcher entries (every [lookup], hit or miss).  Chained
    transfers bypass the dispatcher and are not counted here. *)
let entries t = Int64.add t.hits t.misses

(** Publish this dispatcher's live counters into a metrics registry as
    probes: the registry reads the same mutable fields the legacy stats
    record does, so the two can never disagree.  [prefix] namespaces the
    metrics (per-core caches publish under their core's prefix). *)
let publish ?(prefix = "") (r : Obs.Registry.t) (t : t) =
  Obs.Registry.probe r (prefix ^ "dispatch.hits") (fun () -> t.hits);
  Obs.Registry.probe r (prefix ^ "dispatch.misses") (fun () -> t.misses);
  Obs.Registry.probe r (prefix ^ "dispatch.entries") (fun () -> entries t);
  Obs.Registry.fprobe r (prefix ^ "dispatch.hit_rate") (fun () -> hit_rate t)
