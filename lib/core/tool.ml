(** The tool plug-in interface (paper §3.1: "Valgrind core + tool plug-in
    = Valgrind tool").

    A tool is a value of type {!t}: a name and a [create] function the
    core calls at start-up with the capabilities record {!caps}.  The
    tool registers event callbacks, installs function replacements, and
    returns an {!instance} whose [instrument] is phase 3 of the JIT. *)

(** Capabilities the core hands to a tool at initialisation. *)
type caps = {
  events : Events.t;  (** register Table-1 event callbacks here *)
  errors : Errors.t;  (** error recording/dedup/suppressions *)
  mem : Aspace.t;  (** the shared address space (client + tool) *)
  output : string -> unit;  (** R9 side-channel output *)
  read_guest : int -> int -> int64;
      (** [read_guest off size]: current thread's guest state *)
  write_guest : int -> int -> int64 -> unit;
  cur_eip : unit -> int64;  (** guest PC of the current thread *)
  cur_tid : unit -> int;  (** id of the current (executing) thread *)
  stack_trace : unit -> int64 list;  (** current thread, innermost first *)
  symbolize : int64 -> string;  (** address -> symbol+offset *)
  client_alloc : int -> int64;
      (** allocate client-space memory from the core allocator (for
          replacement heap allocators); returns the base address *)
  replace_function :
    symbol:string -> handler:(unit -> unit) -> unit;
      (** install a replacement: guest calls to [symbol] trap to
          [handler], which reads arguments from the guest stack via
          [read_guest]/[mem] and writes the result to r0 *)
  wrap_function :
    symbol:string -> on_enter:(unit -> unit) -> on_exit:(unit -> unit) -> unit;
      (** function wrapping: inspect arguments before and the return
          value after, with the original still executed *)
  discard_translations : int64 -> int -> unit;
  charge_cycles : int -> unit;
      (** account simulated cycles for work done inside an OCaml-side
          handler (e.g. a replacement allocator's bookkeeping) so tool
          slow-down factors stay honest *)
  register_helper :
    ?fx_reads:(int * int) list ->
    name:string ->
    cost:int ->
    nargs:int ->
    (int64 array -> int64) ->
    Vex_ir.Ir.callee;
      (** register a tool helper callable from instrumented IR.
          [fx_reads] declares guest-state (offset, size) ranges the
          helper reads — e.g. the PC for error reporting — so the
          optimiser keeps those PUTs live (the paper's RdFX-gst
          annotations) *)
}

(** What a tool gives back to the core. *)
type instance = {
  instrument : Vex_ir.Ir.block -> Vex_ir.Ir.block;  (** phase 3 *)
  fini : exit_code:int -> unit;  (** called at client exit *)
  client_request : code:int64 -> args:int64 array -> int64 option;
      (** tool-specific client requests; [None] = not handled.
          [args] is the argument block (up to 4 words) read for you. *)
  snapshot : unit -> Bytes.t;
      (** serialize the tool's mutable shadow state (vgrewind snapshots
          it alongside the core for time-travel seeks).  Shadow state
          kept {e in guest memory} (ThreadState shadow registers, shadow
          bitmaps in the address space) is captured by the core's
          address-space snapshot and must not be re-serialized here. *)
  restore : Bytes.t -> unit;
      (** reinstall state produced by [snapshot] on the same instance *)
}

(** Snapshot/restore for tools with no OCaml-side mutable state. *)
let snapshot_nothing : unit -> Bytes.t = fun () -> Bytes.empty

let restore_nothing : Bytes.t -> unit = fun _ -> ()

(** Default serialize-whole-state implementation: build the pair from a
    plain-data projection of the tool's mutable state.  [save] must
    return closure-free data (records, lists, hashtables, buffers are
    all fine); [load] writes the projection back into the live state.
    Marshal deep-copies on the way out, so the snapshot is immune to
    later mutation and restorable any number of times. *)
let marshal_pair (type a) ~(save : unit -> a) ~(load : a -> unit) :
    (unit -> Bytes.t) * (Bytes.t -> unit) =
  ( (fun () -> Marshal.to_bytes (save ()) []),
    fun b -> load (Marshal.from_bytes b 0) )

type t = {
  name : string;
  description : string;
  shadow_ranges : (int * int) list;
      (** guest-state [(offset, size)] ranges this tool uses for shadow
          state (§3.4).  The phase-3 verifier lints every instrumented
          block against this declaration: a PUT at or above
          [Guest.Arch.shadow_offset] outside these ranges is flagged. *)
  create : caps -> instance;
}

(** The null tool: no instrumentation, no events — measures the cost of
    the core itself (Table 2's "Nulgrind" column). *)
let nulgrind : t =
  {
    name = "nulgrind";
    description = "the null tool; adds no analysis code";
    shadow_ranges = [];
    create =
      (fun _caps ->
        {
          instrument = (fun b -> b);
          fini = (fun ~exit_code:_ -> ());
          client_request = (fun ~code:_ ~args:_ -> None);
          snapshot = snapshot_nothing;
          restore = restore_nothing;
        });
  }
