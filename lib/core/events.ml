(** The events system (paper §3.12 and Table 1).

    The IR is expressive but cannot describe guest-state and memory
    changes made behind the client's back — system-call reads/writes,
    start-up allocations, mmap/brk/stack growth.  Tools register
    callbacks here; the core's system-call wrappers, loader and
    stack-pointer instrumentation invoke them.  Each callback slot also
    counts invocations so the Table-1 bench can report observed trigger
    counts. *)

type counted = { mutable count : int64 }

let tick c = c.count <- Int64.add c.count 1L

type t = {
  (* R4: system calls reading/writing registers *)
  mutable pre_reg_read : (syscall:string -> off:int -> size:int -> unit) option;
  c_pre_reg_read : counted;
  mutable post_reg_write : (syscall:string -> off:int -> size:int -> unit) option;
  c_post_reg_write : counted;
  (* R4: system calls reading/writing memory *)
  mutable pre_mem_read : (syscall:string -> addr:int64 -> len:int -> unit) option;
  c_pre_mem_read : counted;
  mutable pre_mem_read_asciiz : (syscall:string -> addr:int64 -> unit) option;
  c_pre_mem_read_asciiz : counted;
  mutable pre_mem_write : (syscall:string -> addr:int64 -> len:int -> unit) option;
  c_pre_mem_write : counted;
  mutable post_mem_write : (addr:int64 -> len:int -> unit) option;
  c_post_mem_write : counted;
  (* R5: start-up allocations *)
  mutable new_mem_startup :
    (addr:int64 -> len:int -> defined:bool -> what:string -> unit) option;
  c_new_mem_startup : counted;
  (* R6: system-call (de)allocations *)
  mutable new_mem_mmap : (addr:int64 -> len:int -> unit) option;
  c_new_mem_mmap : counted;
  mutable die_mem_munmap : (addr:int64 -> len:int -> unit) option;
  c_die_mem_munmap : counted;
  mutable new_mem_brk : (addr:int64 -> len:int -> unit) option;
  c_new_mem_brk : counted;
  mutable die_mem_brk : (addr:int64 -> len:int -> unit) option;
  c_die_mem_brk : counted;
  mutable copy_mem_mremap : (src:int64 -> dst:int64 -> len:int -> unit) option;
  c_copy_mem_mremap : counted;
  (* R7: stack (de)allocations *)
  mutable new_mem_stack : (addr:int64 -> len:int -> unit) option;
  c_new_mem_stack : counted;
  mutable die_mem_stack : (addr:int64 -> len:int -> unit) option;
  c_die_mem_stack : counted;
  (* Core-internal observability: the translation-chaining lifecycle
     (§3.9 extension).  Not tool events — counters only, surfaced via
     session stats, the quickstart example and chain_bench. *)
  c_chain_patched : counted;  (** exit sites patched to a successor *)
  c_chain_unlinked : counted;  (** slots unlinked on evict/discard/SMC *)
  c_chain_followed : counted;  (** transfers that bypassed the dispatcher *)
}

let create () =
  {
    pre_reg_read = None;
    c_pre_reg_read = { count = 0L };
    post_reg_write = None;
    c_post_reg_write = { count = 0L };
    pre_mem_read = None;
    c_pre_mem_read = { count = 0L };
    pre_mem_read_asciiz = None;
    c_pre_mem_read_asciiz = { count = 0L };
    pre_mem_write = None;
    c_pre_mem_write = { count = 0L };
    post_mem_write = None;
    c_post_mem_write = { count = 0L };
    new_mem_startup = None;
    c_new_mem_startup = { count = 0L };
    new_mem_mmap = None;
    c_new_mem_mmap = { count = 0L };
    die_mem_munmap = None;
    c_die_mem_munmap = { count = 0L };
    new_mem_brk = None;
    c_new_mem_brk = { count = 0L };
    die_mem_brk = None;
    c_die_mem_brk = { count = 0L };
    copy_mem_mremap = None;
    c_copy_mem_mremap = { count = 0L };
    new_mem_stack = None;
    c_new_mem_stack = { count = 0L };
    die_mem_stack = None;
    c_die_mem_stack = { count = 0L };
    c_chain_patched = { count = 0L };
    c_chain_unlinked = { count = 0L };
    c_chain_followed = { count = 0L };
  }

(* Firing helpers used by the core. *)

let fire_pre_reg_read t ~syscall ~off ~size =
  match t.pre_reg_read with
  | None -> ()
  | Some f ->
      tick t.c_pre_reg_read;
      f ~syscall ~off ~size

let fire_post_reg_write t ~syscall ~off ~size =
  match t.post_reg_write with
  | None -> ()
  | Some f ->
      tick t.c_post_reg_write;
      f ~syscall ~off ~size

let fire_pre_mem_read t ~syscall ~addr ~len =
  match t.pre_mem_read with
  | None -> ()
  | Some f ->
      tick t.c_pre_mem_read;
      f ~syscall ~addr ~len

let fire_pre_mem_read_asciiz t ~syscall ~addr =
  match t.pre_mem_read_asciiz with
  | None -> ()
  | Some f ->
      tick t.c_pre_mem_read_asciiz;
      f ~syscall ~addr

let fire_pre_mem_write t ~syscall ~addr ~len =
  match t.pre_mem_write with
  | None -> ()
  | Some f ->
      tick t.c_pre_mem_write;
      f ~syscall ~addr ~len

let fire_post_mem_write t ~addr ~len =
  match t.post_mem_write with
  | None -> ()
  | Some f ->
      tick t.c_post_mem_write;
      f ~addr ~len

let fire_new_mem_startup t ~addr ~len ~defined ~what =
  match t.new_mem_startup with
  | None -> ()
  | Some f ->
      tick t.c_new_mem_startup;
      f ~addr ~len ~defined ~what

let fire_new_mem_mmap t ~addr ~len =
  match t.new_mem_mmap with
  | None -> ()
  | Some f ->
      tick t.c_new_mem_mmap;
      f ~addr ~len

let fire_die_mem_munmap t ~addr ~len =
  match t.die_mem_munmap with
  | None -> ()
  | Some f ->
      tick t.c_die_mem_munmap;
      f ~addr ~len

let fire_new_mem_brk t ~addr ~len =
  match t.new_mem_brk with
  | None -> ()
  | Some f ->
      tick t.c_new_mem_brk;
      f ~addr ~len

let fire_die_mem_brk t ~addr ~len =
  match t.die_mem_brk with
  | None -> ()
  | Some f ->
      tick t.c_die_mem_brk;
      f ~addr ~len

let fire_copy_mem_mremap t ~src ~dst ~len =
  match t.copy_mem_mremap with
  | None -> ()
  | Some f ->
      tick t.c_copy_mem_mremap;
      f ~src ~dst ~len

let fire_new_mem_stack t ~addr ~len =
  match t.new_mem_stack with
  | None -> ()
  | Some f ->
      tick t.c_new_mem_stack;
      f ~addr ~len

let fire_die_mem_stack t ~addr ~len =
  match t.die_mem_stack with
  | None -> ()
  | Some f ->
      tick t.c_die_mem_stack;
      f ~addr ~len

(* Chaining lifecycle ticks (no callbacks: counters only). *)
let tick_chain_patched t = tick t.c_chain_patched
let tick_chain_unlinked t = tick t.c_chain_unlinked
let tick_chain_followed t = tick t.c_chain_followed

(** {2 Snapshot / restore} — the invocation counters, in a fixed order
    (callbacks are wiring, not state; they survive a time-travel seek
    untouched). *)

let all_counters (t : t) : counted list =
  [
    t.c_pre_reg_read; t.c_post_reg_write; t.c_pre_mem_read;
    t.c_pre_mem_read_asciiz; t.c_pre_mem_write; t.c_post_mem_write;
    t.c_new_mem_startup; t.c_new_mem_mmap; t.c_die_mem_munmap;
    t.c_new_mem_brk; t.c_die_mem_brk; t.c_copy_mem_mremap;
    t.c_new_mem_stack; t.c_die_mem_stack; t.c_chain_patched;
    t.c_chain_unlinked; t.c_chain_followed;
  ]

type snap = int64 array

let snapshot (t : t) : snap =
  Array.of_list (List.map (fun c -> c.count) (all_counters t))

let restore (t : t) (s : snap) : unit =
  List.iteri (fun i c -> c.count <- s.(i)) (all_counters t)

(** (event name, trigger site, observed count) rows for the Table-1
    harness. *)
let table1_rows (t : t) : (string * string * int64) list =
  [
    ("pre_reg_read", "every system call wrapper", t.c_pre_reg_read.count);
    ("post_reg_write", "every system call wrapper", t.c_post_reg_write.count);
    ("pre_mem_read", "many system call wrappers", t.c_pre_mem_read.count);
    ( "pre_mem_read_asciiz",
      "many system call wrappers",
      t.c_pre_mem_read_asciiz.count );
    ("pre_mem_write", "many system call wrappers", t.c_pre_mem_write.count);
    ("post_mem_write", "many system call wrappers", t.c_post_mem_write.count);
    ("new_mem_startup", "Valgrind's code loader", t.c_new_mem_startup.count);
    ("new_mem_mmap", "mmap wrapper", t.c_new_mem_mmap.count);
    ("die_mem_munmap", "munmap wrapper", t.c_die_mem_munmap.count);
    ("new_mem_brk", "brk wrapper", t.c_new_mem_brk.count);
    ("die_mem_brk", "brk wrapper", t.c_die_mem_brk.count);
    ("copy_mem_mremap", "mremap wrapper", t.c_copy_mem_mremap.count);
    ("new_mem_stack", "instrumentation of SP changes", t.c_new_mem_stack.count);
    ("die_mem_stack", "instrumentation of SP changes", t.c_die_mem_stack.count);
  ]
