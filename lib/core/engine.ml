(** One simulated core: the per-core half of the execution engine,
    extracted from {!Session} so N cores can interleave under one
    scheduler (the sharded replacement for the paper's §3.14 big lock).

    Each core owns everything that was per-"the" core before:

    - a host interpreter CPU (its guest cycle and instruction clocks),
    - a private {!Dispatch} fast-lookup cache,
    - its own overhead / JIT / SMC cycle accounting,
    - the last chainable exit it left a block through, and
    - a small dispatch-trace ring for crash contexts.

    The scheduler interleaves cores on their {!clock}s — lowest clock
    steps next, ties broken by core id — so execution is a pure function
    of the workload and [--cores N]: bit-identical replay, no wall-clock
    anywhere.  A core that sits idle (no runnable thread) and is later
    handed one is fast-forwarded by padding [idle_cycles], so its clock
    models "this core was waiting", not free time travel. *)

type t = {
  id : int;
  cpu : Host.Interp.cpu;  (** guest execution clock (shared memory) *)
  dispatch : Dispatch.t;  (** private fast-lookup cache *)
  mutable overhead_cycles : int64;  (** dispatch + scheduler + chain *)
  mutable jit_cycles : int64;  (** translations this core requested *)
  mutable smc_cycles : int64;
  mutable idle_cycles : int64;
      (** padding applied when the core picks up its first runnable
          thread: a core cannot execute before the work existed *)
  mutable blocks_executed : int64;
  mutable chained_transfers : int64;
  mutable handoffs : int64;  (** thread switches performed on this core *)
  mutable last_exit :
    (Jit.Pipeline.translation * Jit.Pipeline.chain_slot) option;
      (** the chainable exit site the previous block on this core left
          through (with its owning translation), if any *)
  dispatch_trace : int64 array;  (** last-N dispatched block addresses *)
  mutable dispatch_trace_n : int;  (** total blocks recorded *)
}

let create ~(id : int) ~(mem : Aspace.t) ~(dispatch_size : int)
    ~(fast_cost : int) ~(slow_cost : int) : t =
  {
    id;
    cpu = Host.Interp.create mem;
    dispatch = Dispatch.create ~size:dispatch_size ~fast_cost ~slow_cost ();
    overhead_cycles = 0L;
    jit_cycles = 0L;
    smc_cycles = 0L;
    idle_cycles = 0L;
    blocks_executed = 0L;
    chained_transfers = 0L;
    handoffs = 0L;
    last_exit = None;
    dispatch_trace = Array.make 16 0L;
    dispatch_trace_n = 0;
  }

(** Cycles of actual work this core has performed. *)
let work_cycles (e : t) : int64 =
  List.fold_left Int64.add 0L
    [ e.cpu.cycles; e.overhead_cycles; e.jit_cycles; e.smc_cycles ]

(** The core's scheduling clock: work plus idle padding.  This is the
    value the round-robin scheduler compares (and what "wall time up to
    now" means for this core). *)
let clock (e : t) : int64 = Int64.add (work_cycles e) e.idle_cycles

let charge (e : t) (c : int) =
  e.overhead_cycles <- Int64.add e.overhead_cycles (Int64.of_int c)

(** Fast-forward an idle core to [now] (it just received its first
    runnable thread; its clock must not lag behind the creation). *)
let fast_forward (e : t) ~(now : int64) =
  let c = clock e in
  if Int64.compare c now < 0 then
    e.idle_cycles <- Int64.add e.idle_cycles (Int64.sub now c)

(** Record a dispatched block address in the crash-context ring. *)
let trace_block (e : t) (pc : int64) =
  e.dispatch_trace.(e.dispatch_trace_n mod Array.length e.dispatch_trace) <- pc;
  e.dispatch_trace_n <- e.dispatch_trace_n + 1

(** The ring's contents, oldest first. *)
let recent_blocks (e : t) : int64 list =
  let n = Array.length e.dispatch_trace in
  let count = min e.dispatch_trace_n n in
  List.init count (fun i ->
      e.dispatch_trace.((e.dispatch_trace_n - count + i) mod n))

(** {2 Snapshot / restore}

    Everything execution-rate-local: the CPU clocks and host registers,
    the private dispatch cache, the cycle accounts and the last
    chainable exit.  Translation references go through the transtab
    memo; a dead last-exit is dropped ({!Transtab.link} would refuse a
    non-resident source anyway, with identical charges). *)

type snap = {
  sn_hregs : int64 array;
  sn_hvregs : Support.V128.t array;
  sn_cycles : int64;
  sn_insns : int64;
  sn_dispatch : Dispatch.snap;
  sn_overhead : int64;
  sn_jit : int64;
  sn_smc : int64;
  sn_idle : int64;
  sn_blocks : int64;
  sn_chained : int64;
  sn_handoffs : int64;
  sn_last_exit : (Jit.Pipeline.translation * int) option;
      (** translation copy + [cs_index] of the slot *)
  sn_trace : int64 array;
  sn_trace_n : int;
}

let snapshot (e : t)
    ~(remap : Jit.Pipeline.translation -> Jit.Pipeline.translation option) :
    snap =
  {
    sn_hregs = Array.copy e.cpu.Host.Interp.hregs;
    sn_hvregs = Array.copy e.cpu.Host.Interp.hvregs;
    sn_cycles = e.cpu.Host.Interp.cycles;
    sn_insns = e.cpu.Host.Interp.insns;
    sn_dispatch = Dispatch.snapshot e.dispatch ~remap;
    sn_overhead = e.overhead_cycles;
    sn_jit = e.jit_cycles;
    sn_smc = e.smc_cycles;
    sn_idle = e.idle_cycles;
    sn_blocks = e.blocks_executed;
    sn_chained = e.chained_transfers;
    sn_handoffs = e.handoffs;
    sn_last_exit =
      (match e.last_exit with
      | Some (tr, slot) when not tr.Jit.Pipeline.t_dead -> (
          match remap tr with
          | Some c -> Some (c, slot.Jit.Pipeline.cs_index)
          | None -> None)
      | _ -> None);
    sn_trace = Array.copy e.dispatch_trace;
    sn_trace_n = e.dispatch_trace_n;
  }

let restore (e : t) (s : snap)
    ~(remap : Jit.Pipeline.translation -> Jit.Pipeline.translation option) =
  Array.blit s.sn_hregs 0 e.cpu.Host.Interp.hregs 0 (Array.length s.sn_hregs);
  Array.blit s.sn_hvregs 0 e.cpu.Host.Interp.hvregs 0
    (Array.length s.sn_hvregs);
  e.cpu.Host.Interp.cycles <- s.sn_cycles;
  e.cpu.Host.Interp.insns <- s.sn_insns;
  Dispatch.restore e.dispatch s.sn_dispatch ~remap;
  e.overhead_cycles <- s.sn_overhead;
  e.jit_cycles <- s.sn_jit;
  e.smc_cycles <- s.sn_smc;
  e.idle_cycles <- s.sn_idle;
  e.blocks_executed <- s.sn_blocks;
  e.chained_transfers <- s.sn_chained;
  e.handoffs <- s.sn_handoffs;
  e.last_exit <-
    (match s.sn_last_exit with
    | Some (tr, idx) -> (
        match remap tr with
        | Some c -> (
            match Jit.Pipeline.find_chain_slot c idx with
            | Some slot -> Some (c, slot)
            | None -> None)
        | None -> None)
    | None -> None);
  Array.blit s.sn_trace 0 e.dispatch_trace 0 (Array.length s.sn_trace);
  e.dispatch_trace_n <- s.sn_trace_n

(** Publish this core's counters under [sched.core<i>.*] — the per-core
    view the aggregate [core.*] probes sum over. *)
let publish (r : Obs.Registry.t) (e : t) =
  let p = Printf.sprintf "sched.core%d." e.id in
  let pL name f = Obs.Registry.probe r (p ^ name) f in
  pL "blocks" (fun () -> e.blocks_executed);
  pL "host_cycles" (fun () -> e.cpu.cycles);
  pL "host_insns" (fun () -> e.cpu.insns);
  pL "overhead_cycles" (fun () -> e.overhead_cycles);
  pL "jit_cycles" (fun () -> e.jit_cycles);
  pL "smc_cycles" (fun () -> e.smc_cycles);
  pL "idle_cycles" (fun () -> e.idle_cycles);
  pL "clock" (fun () -> clock e);
  pL "chained_transfers" (fun () -> e.chained_transfers);
  pL "handoffs" (fun () -> e.handoffs);
  Dispatch.publish ~prefix:p r e.dispatch
