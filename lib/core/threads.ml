(** ThreadStates and the thread set (paper §3.4, §3.14).

    Valgrind provides a block of memory per client thread — the
    ThreadState — holding all the thread's guest and shadow registers;
    guest registers live in memory between code blocks ("reasonable for
    heavyweight tools with high host register pressure").  The blocks
    live in the core's own address-space region, and the running thread's
    block is what the host GSP register points at.

    Threads are sharded over N simulated cores: a thread is pinned to
    core [(tid - 1) mod n_cores] for life, and each core round-robins
    among its own threads after a timeslice or at yielding/blocking
    system calls.  With one core this degenerates to the paper's big
    lock (§3.14): fully serialised execution.  Which core steps next is
    the {!Session} scheduler's decision (lowest cycle count wins), so
    this module only tracks membership and per-core current threads. *)

type status = Runnable | Blocked | Exited

type thread = {
  tid : int;
  core : int;  (** the simulated core this thread is pinned to *)
  ts_addr : int64;  (** address of this thread's ThreadState block *)
  mutable status : status;
  mutable sig_frames : Bytes.t list;
      (** saved guest+shadow state, for sigreturn (newest first) *)
  mutable blocks_run : int64;
  mutable slice_start : int64;
      (** [blocks_run] when this thread's current timeslice began; the
          scheduler rotates when [blocks_run - slice_start] reaches the
          timeslice, so a thread that yields mid-slice starts a fresh
          slice on resume instead of inheriting the remainder *)
  mutable exit_value : int64;
}

type t = {
  mem : Aspace.t;
  n_cores : int;
  mutable threads : thread list;  (** in creation order *)
  mutable next_tid : int;
  mutable current : thread;  (** thread of the core currently stepping *)
  currents : thread option array;  (** per-core scheduled thread *)
  (* serialisation statistics *)
  mutable lock_handoffs : int64;
}

let ts_size = Host.Arch.threadstate_size

let create_thread_state (mem : Aspace.t) (tid : int) : int64 =
  let addr =
    Int64.add Layout.threadstate_base (Int64.of_int ((tid - 1) * ts_size))
  in
  (* ThreadStates are smaller than a page and share pages: map without
     zeroing (or we would wipe neighbouring threads' registers), then
     clear just this thread's block *)
  Aspace.map ~zero:false mem ~addr ~len:ts_size ~perm:Aspace.perm_rw;
  for i = 0 to (ts_size / 8) - 1 do
    Aspace.write mem (Int64.add addr (Int64.of_int (8 * i))) 8 0L
  done;
  addr

let create ?(n_cores = 1) (mem : Aspace.t) : t =
  if n_cores < 1 then invalid_arg "Threads.create: n_cores must be >= 1";
  let main =
    {
      tid = 1;
      core = 0;
      ts_addr = create_thread_state mem 1;
      status = Runnable;
      sig_frames = [];
      blocks_run = 0L;
      slice_start = 0L;
      exit_value = 0L;
    }
  in
  let currents = Array.make n_cores None in
  currents.(0) <- Some main;
  {
    mem;
    n_cores;
    threads = [ main ];
    next_tid = 2;
    current = main;
    currents;
    lock_handoffs = 0L;
  }

let spawn (t : t) : thread =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let th =
    {
      tid;
      core = (tid - 1) mod t.n_cores;
      ts_addr = create_thread_state t.mem tid;
      status = Runnable;
      sig_frames = [];
      blocks_run = 0L;
      slice_start = 0L;
      exit_value = 0L;
    }
  in
  t.threads <- t.threads @ [ th ];
  if t.currents.(th.core) = None then t.currents.(th.core) <- Some th;
  th

let find (t : t) tid = List.find_opt (fun th -> th.tid = tid) t.threads
let runnable (t : t) = List.filter (fun th -> th.status = Runnable) t.threads

(** Threads pinned to [core], in creation order. *)
let on_core (t : t) (core : int) =
  List.filter (fun th -> th.core = core) t.threads

(** Does [core] have at least one runnable thread? *)
let has_runnable (t : t) ~(core : int) : bool =
  List.exists (fun th -> th.core = core && th.status = Runnable) t.threads

(** Make [core]'s scheduled thread the current one (the session calls
    this right before stepping the core).  If the core has never had a
    thread scheduled, or its scheduled thread is gone, the first
    runnable thread on the core is picked.  The caller guarantees the
    core has a runnable thread ({!has_runnable}). *)
let select (t : t) ~(core : int) : unit =
  let th =
    match t.currents.(core) with
    | Some th -> th
    | None ->
        let th = List.find (fun x -> x.status = Runnable) (on_core t core) in
        t.currents.(core) <- Some th;
        th
  in
  t.current <- th

(** Hand [t.current]'s core to its next runnable thread (round-robin
    among the threads pinned to that core).  Returns false if the core
    has no runnable thread.  The incoming thread starts a fresh
    timeslice — even on a self-switch, so a single-thread core is not
    re-checked every block. *)
let switch_to_next (t : t) : bool =
  let mine = on_core t t.current.core in
  match List.filter (fun th -> th.status = Runnable) mine with
  | [] -> false
  | rs ->
      let rec after = function
        | [] -> List.hd rs
        | th :: rest when th.tid = t.current.tid -> (
            match List.filter (fun x -> x.status = Runnable) rest with
            | n :: _ -> n
            | [] -> List.hd rs)
        | _ :: rest -> after rest
      in
      let next = after mine in
      if next.tid <> t.current.tid then
        t.lock_handoffs <- Int64.add t.lock_handoffs 1L;
      next.slice_start <- next.blocks_run;
      t.currents.(t.current.core) <- Some next;
      t.current <- next;
      true

(** Preempt [th]'s core with [th] (signal delivery: the target thread
    must run its handler next time its core steps).  When [make_current]
    the session is stepping that very core, so [t.current] moves too —
    the single-core behaviour of delivering into the running slot. *)
let preempt (t : t) (th : thread) ~(make_current : bool) : unit =
  t.currents.(th.core) <- Some th;
  th.slice_start <- th.blocks_run;
  if make_current then t.current <- th

(** {2 Guest-state access} *)

let get_state (t : t) (th : thread) ~(off : int) ~(size : int) : int64 =
  ignore t;
  Aspace.read t.mem (Int64.add th.ts_addr (Int64.of_int off)) size

let put_state (t : t) (th : thread) ~(off : int) ~(size : int) (v : int64) =
  Aspace.write t.mem (Int64.add th.ts_addr (Int64.of_int off)) size v

let get_reg t th r = get_state t th ~off:(Guest.Arch.off_reg r) ~size:4
let put_reg t th r v =
  put_state t th ~off:(Guest.Arch.off_reg r) ~size:4 (Support.Bits.trunc32 v)

let get_eip t th = get_state t th ~off:Guest.Arch.off_eip ~size:4
let put_eip t th v = put_state t th ~off:Guest.Arch.off_eip ~size:4 v

(** Kernel-style register accessor pair for the current thread. *)
let regs_of (t : t) (th : thread) : Kernel.regs =
  { get = (fun r -> get_reg t th r); set = (fun r v -> put_reg t th r v) }

(** {2 Signal frames}

    Delivering a signal saves the full guest+shadow register state (so
    shadow registers survive handlers — a shadow-value tool requirement);
    [sigreturn] restores it. *)

let save_frame (t : t) (th : thread) =
  let saved =
    Aspace.read_bytes t.mem th.ts_addr Guest.Arch.state_size
  in
  th.sig_frames <- saved :: th.sig_frames

let restore_frame (t : t) (th : thread) : bool =
  match th.sig_frames with
  | [] -> false
  | frame :: rest ->
      Aspace.write_bytes t.mem th.ts_addr frame;
      th.sig_frames <- rest;
      true

(** {2 Snapshot / restore}

    ThreadState blocks themselves live in the address space and are
    captured by the {!Aspace} snapshot; this records only the thread
    set's own bookkeeping.  [restore] mutates the existing thread
    records in place (outstanding references stay valid) and drops
    records spawned after the snapshot — tids are monotonic and threads
    are never removed, so every snapshotted tid still has its record. *)

type thread_snap = {
  th_tid : int;
  th_status : status;
  th_frames : Bytes.t list;
  th_blocks : int64;
  th_slice : int64;
  th_exit : int64;
}

type snap = {
  s_threads : thread_snap list;
  s_next_tid : int;
  s_current : int;  (** tid *)
  s_currents : int option array;  (** per-core scheduled tid *)
  s_handoffs : int64;
}

let snapshot (t : t) : snap =
  {
    s_threads =
      List.map
        (fun th ->
          {
            th_tid = th.tid;
            th_status = th.status;
            th_frames = List.map Bytes.copy th.sig_frames;
            th_blocks = th.blocks_run;
            th_slice = th.slice_start;
            th_exit = th.exit_value;
          })
        t.threads;
    s_next_tid = t.next_tid;
    s_current = t.current.tid;
    s_currents = Array.map (Option.map (fun th -> th.tid)) t.currents;
    s_handoffs = t.lock_handoffs;
  }

let restore (t : t) (s : snap) : unit =
  let revived =
    List.map
      (fun sn ->
        match find t sn.th_tid with
        | None -> failwith "Threads.restore: snapshotted thread is gone"
        | Some th ->
            th.status <- sn.th_status;
            th.sig_frames <- List.map Bytes.copy sn.th_frames;
            th.blocks_run <- sn.th_blocks;
            th.slice_start <- sn.th_slice;
            th.exit_value <- sn.th_exit;
            th)
      s.s_threads
  in
  t.threads <- revived;
  t.next_tid <- s.s_next_tid;
  Array.iteri
    (fun core tid ->
      t.currents.(core) <-
        Option.map
          (fun tid ->
            match find t tid with
            | Some th -> th
            | None -> failwith "Threads.restore: scheduled thread is gone")
          tid)
    s.s_currents;
  (match find t s.s_current with
  | Some th -> t.current <- th
  | None -> failwith "Threads.restore: current thread is gone");
  t.lock_handoffs <- s.s_handoffs

(** Walk the frame-pointer chain for a stack trace: current PC, then
    return addresses found through fp links ([fp] = saved fp,
    [fp+4] = return address — the minicc frame layout). *)
let stack_trace (t : t) (th : thread) ?(max_depth = 16) () : int64 list =
  let pc = get_eip t th in
  let rec walk fp depth acc =
    if depth >= max_depth || Int64.unsigned_compare fp 0x1000L < 0 then
      List.rev acc
    else
      match
        ( (try Some (Aspace.read t.mem fp 4) with Aspace.Fault _ -> None),
          try Some (Aspace.read t.mem (Int64.add fp 4L) 4)
          with Aspace.Fault _ -> None )
      with
      | Some next_fp, Some ret when ret <> 0L ->
          if Int64.unsigned_compare next_fp fp <= 0 then List.rev (ret :: acc)
          else walk next_fp (depth + 1) (ret :: acc)
      | _ -> List.rev acc
  in
  pc :: walk (get_reg t th Guest.Arch.reg_fp) 0 []
