(** The translation table (paper §3.8): a fixed-size, linear-probe hash
    table from guest address to translation.  When it passes 80% full,
    translations are evicted in chunks, 1/8th of the table at a time,
    using a FIFO policy ("chosen over the more obvious LRU because it is
    simpler and still does a fairly good job").  Translations are also
    evicted when client code is unmapped or discarded by the
    self-modifying-code machinery.

    The table additionally owns the {b chain index} for direct
    translation chaining (§3.9 extension): a reverse map from a resident
    translation's key to every chain slot (in other translations) that
    has been patched to jump straight into it.  The index is sharded by
    the simulated core that performed the patch, so per-core patch
    traffic stays attributable and a core's chains can be audited
    independently; removal paths walk every shard.  The invariant is
    that a patched slot only ever points at a translation currently
    resident in this table; every removal path — FIFO chunk eviction,
    range discard (munmap / discard-translations client request),
    single-key discard (SMC invalidation) and [flush] — unlinks all
    chains into the removed translations first, so a stale jump into
    retired code can never be followed.

    {b Epoch-based retirement.}  With N simulated cores, other cores'
    fast-lookup caches and last-exit records may still reference a
    translation the moment it leaves the table, so removal never frees
    eagerly.  Instead every removed translation is marked dead
    ([t_dead]) and pushed onto an epoch-tagged {b retire list}; readers
    treat a dead translation as a cache miss, and the session drains
    the list at a scheduler epoch boundary — a point where every core
    sits between blocks, the RCU grace period of this simulation —
    only freeing entries whose tag predates the current epoch. *)

type entry = {
  e_key : int64;
  e_trans : Jit.Pipeline.translation;
  e_seq : int;  (** insertion sequence number, for FIFO eviction *)
}

type t = {
  mutable slots : entry option array;
  capacity : int;
  mutable used : int;
  mutable seq : int;
  (* reverse chain index, sharded by patching core: shard[c] maps the
     key of a resident translation to the (source key, slot) pairs core
     [c] patched to jump straight into it *)
  chain_shards : (int64, (int64 * Jit.Pipeline.chain_slot) list) Hashtbl.t array;
  events : Events.t option;  (** chain lifecycle counters, if plumbed *)
  (* structured tracing (wired post-create by the session, like the
     kernel's [now_cycles]): lifecycle events — chain patch/unlink,
     chunk evictions, discards, flushes — timestamped with the
     session's simulated cycle clock *)
  mutable trace : Obs.Trace.t option;
  mutable now : unit -> int64;
  (* epoch-based retirement *)
  mutable epoch : int;  (** advanced at scheduler epoch boundaries *)
  mutable retire_list : (int * entry) list;
      (** (retirement epoch, entry), newest first; every e_trans here is
          marked dead and out of the table, awaiting its grace period *)
  mutable n_retired : int;  (** translations ever pushed to the list *)
  mutable n_retire_freed : int;  (** translations freed after grace *)
  (* statistics *)
  mutable n_inserts : int;
  mutable n_evict_chunks : int;
  mutable n_evicted : int;
  mutable n_discards : int;
  mutable n_chain_links : int;  (** cumulative slots patched *)
  mutable n_chain_unlinks : int;  (** cumulative slots unlinked *)
  mutable live_chains : int;  (** currently-patched slots *)
  chain_links_by_shard : int64 array;  (** cumulative patches per core *)
}

let create ?events ?(capacity = 32768) ?(shards = 1) () =
  let shards = max 1 shards in
  {
    slots = Array.make capacity None;
    capacity;
    used = 0;
    seq = 0;
    chain_shards = Array.init shards (fun _ -> Hashtbl.create 1024);
    events;
    trace = None;
    now = (fun () -> 0L);
    epoch = 0;
    retire_list = [];
    n_retired = 0;
    n_retire_freed = 0;
    n_inserts = 0;
    n_evict_chunks = 0;
    n_evicted = 0;
    n_discards = 0;
    n_chain_links = 0;
    n_chain_unlinks = 0;
    live_chains = 0;
    chain_links_by_shard = Array.make shards 0L;
  }

(** Attach a trace sink and a cycle clock (the session calls this right
    after [create], mirroring [Kernel.now_cycles]). *)
let set_observer t ~(trace : Obs.Trace.t option) ~(now : unit -> int64) =
  t.trace <- trace;
  t.now <- now

let tev t ~name ?(args = []) () =
  match t.trace with
  | None -> ()
  | Some tr -> Obs.Trace.emit tr ~ts:(t.now ()) ~cat:"cache" ~name ~args ()

let hash t (key : int64) =
  (* fibonacci hashing of the low word *)
  let h = Int64.mul key 0x9E3779B97F4A7C15L in
  Int64.to_int (Int64.shift_right_logical h 40) mod t.capacity

let find (t : t) (key : int64) : Jit.Pipeline.translation option =
  let rec probe i n =
    if n > t.capacity then None
    else
      match t.slots.(i) with
      | None -> None
      | Some e when e.e_key = key -> Some e.e_trans
      | Some _ -> probe ((i + 1) mod t.capacity) (n + 1)
  in
  probe (hash t key) 0

(* ------------------------------------------------------------------ *)
(* Chaining                                                             *)
(* ------------------------------------------------------------------ *)

(* [tr] is the live translation for [key] (physical equality: a
   retranslation under the same key is a different residency). *)
let resident t (key : int64) (tr : Jit.Pipeline.translation) : bool =
  match find t key with Some tr' -> tr' == tr | None -> false

(** Patch [slot] (an exit site of resident translation [src]) to
    transfer straight to [dst], registering the chain in [core]'s shard
    of the reverse index.  Refuses — returning [false] — if the slot is
    already patched or if either end is not resident (a translation
    evicted from the table must not become a chain target: nothing
    would ever unlink it). *)
let link ?(core = 0) (t : t) ~(src : Jit.Pipeline.translation)
    ~(slot : Jit.Pipeline.chain_slot) ~(dst : Jit.Pipeline.translation) :
    bool =
  if
    slot.cs_next <> None
    || (not (resident t src.t_guest_addr src))
    || not (resident t dst.t_guest_addr dst)
  then false
  else begin
    slot.cs_next <- Some dst;
    let shard = t.chain_shards.(core mod Array.length t.chain_shards) in
    let key = dst.t_guest_addr in
    let prev = Option.value ~default:[] (Hashtbl.find_opt shard key) in
    Hashtbl.replace shard key ((src.t_guest_addr, slot) :: prev);
    t.n_chain_links <- t.n_chain_links + 1;
    let c = core mod Array.length t.chain_links_by_shard in
    t.chain_links_by_shard.(c) <- Int64.add t.chain_links_by_shard.(c) 1L;
    t.live_chains <- t.live_chains + 1;
    (match t.events with
    | Some e -> Events.tick_chain_patched e
    | None -> ());
    tev t ~name:"chain_patch"
      ~args:
        [ ("src", Obs.Trace.I src.t_guest_addr);
          ("dst", Obs.Trace.I dst.t_guest_addr) ]
      ();
    true
  end

let unlink_slot t (slot : Jit.Pipeline.chain_slot) =
  if slot.cs_next <> None then begin
    slot.cs_next <- None;
    t.n_chain_unlinks <- t.n_chain_unlinks + 1;
    t.live_chains <- t.live_chains - 1;
    (match t.events with
    | Some e -> Events.tick_chain_unlinked e
    | None -> ());
    tev t ~name:"chain_unlink"
      ~args:[ ("target", Obs.Trace.I slot.cs_target) ]
      ()
  end

(* Unlink every chain jumping INTO [key] (its translation is being
   removed), across every core's shard. *)
let unlink_into t (key : int64) =
  Array.iter
    (fun shard ->
      match Hashtbl.find_opt shard key with
      | None -> ()
      | Some pairs ->
          List.iter (fun (_, slot) -> unlink_slot t slot) pairs;
          Hashtbl.remove shard key)
    t.chain_shards

(* Drop reverse-index records whose SOURCE translation is being removed:
   the slot dies with its owner, so the chain it carried is gone too. *)
let purge_sources t (dropped : (int64, unit) Hashtbl.t) =
  Array.iter
    (fun shard ->
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) shard [] in
      List.iter
        (fun k ->
          match Hashtbl.find_opt shard k with
          | None -> ()
          | Some pairs ->
              let keep, drop =
                List.partition
                  (fun (src, _) -> not (Hashtbl.mem dropped src))
                  pairs
              in
              if drop <> [] then begin
                List.iter (fun (_, slot) -> unlink_slot t slot) drop;
                if keep = [] then Hashtbl.remove shard k
                else Hashtbl.replace shard k keep
              end)
        keys)
    t.chain_shards

(* Chain maintenance for a batch of removed entries — unlink everything
   into them, then purge chains owned by them — and push them onto the
   epoch-tagged retire list.  Chains are unlinked *eagerly* (a patched
   [cs_next] must never point at a dead translation) but the
   translations themselves stay allocated until the grace period
   expires: another core's fast-lookup cache or last-exit record may
   still hold them, and the [t_dead] mark is what turns those stale
   references into misses. *)
let on_removed t (removed : entry list) =
  if removed <> [] then begin
    let dropped = Hashtbl.create (List.length removed) in
    List.iter (fun e -> Hashtbl.replace dropped e.e_key ()) removed;
    Hashtbl.iter (fun k () -> unlink_into t k) dropped;
    purge_sources t dropped;
    List.iter
      (fun e ->
        e.e_trans.Jit.Pipeline.t_dead <- true;
        t.retire_list <- (t.epoch, e) :: t.retire_list;
        t.n_retired <- t.n_retired + 1)
      removed
  end

let retire_pending t = List.length t.retire_list

(** Advance the table's epoch at a scheduler epoch boundary (every core
    between blocks).  Entries retired in a {e previous} epoch have had a
    full grace period — no core can have picked up a new reference since
    they were marked dead — and are freed; entries retired in the
    current epoch are kept one more round.  Returns the freed
    translations so the session can purge any per-core cache slots still
    naming them.  [delay] (a chaos fault point) keeps everything one
    extra epoch. *)
let advance_epoch ?(delay = false) (t : t) : Jit.Pipeline.translation list =
  let freed, kept =
    if delay then ([], t.retire_list)
    else List.partition (fun (ep, _) -> ep < t.epoch) t.retire_list
  in
  t.retire_list <- kept;
  t.epoch <- t.epoch + 1;
  if freed <> [] then begin
    t.n_retire_freed <- t.n_retire_freed + List.length freed;
    tev t ~name:"retire_free"
      ~args:
        [ ("freed", Obs.Trace.I (Int64.of_int (List.length freed)));
          ("epoch", Obs.Trace.I (Int64.of_int t.epoch)) ]
      ()
  end;
  List.map (fun (_, e) -> e.e_trans) freed

(* ------------------------------------------------------------------ *)
(* Insertion and removal                                                *)
(* ------------------------------------------------------------------ *)

(* Rebuild the table from a list of entries (preserving seq). *)
let rebuild t (entries : entry list) =
  t.slots <- Array.make t.capacity None;
  t.used <- 0;
  List.iter
    (fun e ->
      let rec probe i =
        match t.slots.(i) with
        | None ->
            t.slots.(i) <- Some e;
            t.used <- t.used + 1
        | Some _ -> probe ((i + 1) mod t.capacity)
      in
      probe (hash t e.e_key))
    entries

let all_entries t =
  Array.to_list t.slots |> List.filter_map Fun.id

(* FIFO chunk eviction: drop the oldest 1/8th of the live entries. *)
let evict_chunk t =
  let entries =
    all_entries t |> List.sort (fun a b -> compare a.e_seq b.e_seq)
  in
  let n_drop = max 1 (t.capacity / 8) in
  let rec split n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | e :: rest -> split (n - 1) (e :: acc) rest
  in
  let dropped, kept = split n_drop [] entries in
  t.n_evict_chunks <- t.n_evict_chunks + 1;
  t.n_evicted <- t.n_evicted + List.length dropped;
  tev t ~name:"evict_chunk"
    ~args:[ ("dropped", Obs.Trace.I (Int64.of_int (List.length dropped))) ]
    ();
  on_removed t dropped;
  rebuild t kept

let insert (t : t) (key : int64) (trans : Jit.Pipeline.translation) =
  if t.used * 10 >= t.capacity * 8 then evict_chunk t;
  t.n_inserts <- t.n_inserts + 1;
  t.seq <- t.seq + 1;
  trans.Jit.Pipeline.t_epoch <- t.epoch;
  let e = { e_key = key; e_trans = trans; e_seq = t.seq } in
  let rec probe i =
    match t.slots.(i) with
    | None ->
        t.slots.(i) <- Some e;
        t.used <- t.used + 1
    | Some old when old.e_key = key ->
        (* replacing a resident translation: chains into the old one
           must not survive onto the new one *)
        on_removed t [ old ];
        t.slots.(i) <- Some e
    | Some _ -> probe ((i + 1) mod t.capacity)
  in
  probe (hash t key)

(** Discard translations whose covered guest ranges intersect
    [addr, addr+len) — used by munmap and the discard client request
    (§3.8, §3.16).  Unlinks every chain into (and out of) the discarded
    translations.  Returns how many were discarded. *)
let discard_range (t : t) (addr : int64) (len : int) : int =
  let hi = Int64.add addr (Int64.of_int len) in
  let intersects (a, l) =
    let ahi = Int64.add a (Int64.of_int l) in
    Int64.unsigned_compare a hi < 0 && Int64.unsigned_compare addr ahi < 0
  in
  let keep, drop =
    List.partition
      (fun e -> not (List.exists intersects e.e_trans.Jit.Pipeline.t_guest_ranges))
      (all_entries t)
  in
  let n = List.length drop in
  if n > 0 then begin
    t.n_discards <- t.n_discards + n;
    tev t ~name:"discard_range"
      ~args:
        [ ("addr", Obs.Trace.I addr); ("len", Obs.Trace.I (Int64.of_int len));
          ("dropped", Obs.Trace.I (Int64.of_int n)) ]
      ();
    on_removed t drop;
    rebuild t keep
  end;
  n

(** Discard a single entry by key (SMC retranslation), unlinking every
    chain that jumps into it. *)
let discard_key (t : t) (key : int64) =
  let keep, drop =
    List.partition (fun e -> e.e_key <> key) (all_entries t)
  in
  t.n_discards <- t.n_discards + 1;
  tev t ~name:"discard_key" ~args:[ ("key", Obs.Trace.I key) ] ();
  on_removed t drop;
  rebuild t keep

(** Empty the table completely, unlinking every chain and retiring every
    resident translation (cumulative counters are preserved). *)
let flush (t : t) =
  tev t ~name:"flush"
    ~args:[ ("resident", Obs.Trace.I (Int64.of_int t.used)) ]
    ();
  let resident = all_entries t in
  Array.iter
    (fun shard ->
      Hashtbl.iter
        (fun _ pairs -> List.iter (fun (_, slot) -> unlink_slot t slot) pairs)
        shard;
      Hashtbl.reset shard)
    t.chain_shards;
  t.live_chains <- 0;
  t.slots <- Array.make t.capacity None;
  t.used <- 0;
  (* chains are already down and the table is empty: just mark and
     push (on_removed would redo the unlink walk per entry) *)
  List.iter
    (fun e ->
      e.e_trans.Jit.Pipeline.t_dead <- true;
      t.retire_list <- (t.epoch, e) :: t.retire_list;
      t.n_retired <- t.n_retired + 1)
    resident

let occupancy t = float_of_int t.used /. float_of_int t.capacity

(* ------------------------------------------------------------------ *)
(* Snapshot / restore (time-travel support)                             *)
(* ------------------------------------------------------------------ *)

type snap = {
  s_slots : (int * int64 * int * Jit.Pipeline.translation) list;
      (** (slot index, key, seq, deep-copied translation) — exact slot
          layout is preserved so probe order, [all_entries] order and
          therefore future evictions replay identically *)
  s_seq : int;
  s_epoch : int;
  s_chains : (int * int64 * int64 * int) list;
      (** (shard, dst key, src key, cs_index) for every patched slot *)
  s_n_retired : int;
  s_n_retire_freed : int;
  s_n_inserts : int;
  s_n_evict_chunks : int;
  s_n_evicted : int;
  s_n_discards : int;
  s_n_chain_links : int;
  s_n_chain_unlinks : int;
  s_live_chains : int;
  s_links_by_shard : int64 array;
}

(** Deep-copy the table.  Returns the snapshot plus a memo lookup from
    live translations to their copies, so the per-core caches can
    snapshot their references consistently.  The retire list is
    deliberately dropped: retired translations are dead, dead cache
    hits behave exactly like misses, and [advance_epoch] charges no
    cycles — so forgetting them cannot change replayed behaviour. *)
let snapshot (t : t) :
    snap * (Jit.Pipeline.translation -> Jit.Pipeline.translation option) =
  let memo = ref [] in
  let s_slots = ref [] in
  Array.iteri
    (fun i -> function
      | None -> ()
      | Some e ->
          s_slots :=
            (i, e.e_key, e.e_seq, Jit.Pipeline.copy_translation memo e.e_trans)
            :: !s_slots)
    t.slots;
  let s_chains = ref [] in
  Array.iteri
    (fun si shard ->
      Hashtbl.iter
        (fun dst pairs ->
          List.iter
            (fun (src, (slot : Jit.Pipeline.chain_slot)) ->
              s_chains := (si, dst, src, slot.cs_index) :: !s_chains)
            pairs)
        shard)
    t.chain_shards;
  let snap =
    {
      s_slots = List.rev !s_slots;
      s_seq = t.seq;
      s_epoch = t.epoch;
      s_chains = !s_chains;
      s_n_retired = t.n_retired;
      s_n_retire_freed = t.n_retire_freed;
      s_n_inserts = t.n_inserts;
      s_n_evict_chunks = t.n_evict_chunks;
      s_n_evicted = t.n_evicted;
      s_n_discards = t.n_discards;
      s_n_chain_links = t.n_chain_links;
      s_n_chain_unlinks = t.n_chain_unlinks;
      s_live_chains = t.live_chains;
      s_links_by_shard = Array.copy t.chain_links_by_shard;
    }
  in
  let m = !memo in
  (snap, fun tr -> List.assq_opt tr m)

let slot_by_index (tr : Jit.Pipeline.translation) (idx : int) :
    Jit.Pipeline.chain_slot option =
  let n = Array.length tr.Jit.Pipeline.t_exits in
  let rec go i =
    if i >= n then None
    else if tr.Jit.Pipeline.t_exits.(i).Jit.Pipeline.cs_index = idx then
      Some tr.Jit.Pipeline.t_exits.(i)
    else go (i + 1)
  in
  go 0

(** Restore from a snapshot, installing fresh copies-of-copies (so one
    snapshot can be restored any number of times).  Returns the memo
    lookup from snapshot translations to the installed ones, for the
    per-core caches.  Mutates [t] in place. *)
let restore (t : t) (s : snap) :
    Jit.Pipeline.translation -> Jit.Pipeline.translation option =
  let memo = ref [] in
  t.slots <- Array.make t.capacity None;
  List.iter
    (fun (i, key, seq, tr) ->
      let copy = Jit.Pipeline.copy_translation memo tr in
      t.slots.(i) <- Some { e_key = key; e_trans = copy; e_seq = seq })
    s.s_slots;
  t.used <- List.length s.s_slots;
  t.seq <- s.s_seq;
  t.epoch <- s.s_epoch;
  t.retire_list <- [];
  Array.iter Hashtbl.reset t.chain_shards;
  List.iter
    (fun (si, dst, src, idx) ->
      match find t src with
      | None -> () (* unreachable: chain sources are resident by invariant *)
      | Some tr -> (
          match slot_by_index tr idx with
          | None -> ()
          | Some slot ->
              let shard = t.chain_shards.(si mod Array.length t.chain_shards) in
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt shard dst)
              in
              Hashtbl.replace shard dst ((src, slot) :: prev)))
    s.s_chains;
  t.n_retired <- s.s_n_retired;
  t.n_retire_freed <- s.s_n_retire_freed;
  t.n_inserts <- s.s_n_inserts;
  t.n_evict_chunks <- s.s_n_evict_chunks;
  t.n_evicted <- s.s_n_evicted;
  t.n_discards <- s.s_n_discards;
  t.n_chain_links <- s.s_n_chain_links;
  t.n_chain_unlinks <- s.s_n_chain_unlinks;
  t.live_chains <- s.s_live_chains;
  Array.blit s.s_links_by_shard 0 t.chain_links_by_shard 0
    (Array.length t.chain_links_by_shard);
  let m = !memo in
  fun tr -> List.assq_opt tr m

(** Is [pc] a constituent of some resident superblock?  Trace formation
    refuses to re-cover such blocks: the per-block translations of a hot
    loop stay resident for side-exit fallback and their exits keep
    getting hotter, so without this guard every block of an
    already-stitched loop would eventually head its own overlapping
    superblock of the same region, re-paying the optimizing pipeline for
    code that is already covered. *)
let covered_by_super (t : t) (pc : int64) : bool =
  Array.exists
    (function
      | Some e ->
          e.e_trans.Jit.Pipeline.t_tier = Jit.Pipeline.Tier_super
          && List.mem pc e.e_trans.Jit.Pipeline.t_constituents
      | None -> false)
    t.slots

(* ------------------------------------------------------------------ *)
(* Observability                                                        *)
(* ------------------------------------------------------------------ *)

(** Resident translations ordered by execution hotness (desc), ties by
    guest address — the per-translation metadata view ([--profile]'s
    "hot translations" table): hotness, code bytes, IR statement counts
    pre/post instrumentation, and translation cycles all live on the
    {!Jit.Pipeline.translation} record. *)
let hottest (t : t) (n : int) : Jit.Pipeline.translation list =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: xs -> x :: take (n - 1) xs
  in
  all_entries t
  |> List.map (fun e -> e.e_trans)
  |> List.sort (fun (a : Jit.Pipeline.translation) (b : Jit.Pipeline.translation) ->
         match Int64.compare b.t_hotness a.t_hotness with
         | 0 -> Int64.compare a.t_guest_addr b.t_guest_addr
         | c -> c)
  |> take n

(** Publish the table's live counters into a metrics registry as probes
    (reading the same mutable fields the stats record reads). *)
let publish (r : Obs.Registry.t) (t : t) =
  let pi name f = Obs.Registry.probe r name (fun () -> Int64.of_int (f ())) in
  pi "transtab.used" (fun () -> t.used);
  pi "transtab.inserts" (fun () -> t.n_inserts);
  pi "transtab.evict_chunks" (fun () -> t.n_evict_chunks);
  pi "transtab.evicted" (fun () -> t.n_evicted);
  pi "transtab.discards" (fun () -> t.n_discards);
  pi "transtab.chain_links" (fun () -> t.n_chain_links);
  pi "transtab.chain_unlinks" (fun () -> t.n_chain_unlinks);
  pi "transtab.chain_live" (fun () -> t.live_chains);
  pi "transtab.epoch" (fun () -> t.epoch);
  pi "transtab.retired" (fun () -> t.n_retired);
  pi "transtab.retire_freed" (fun () -> t.n_retire_freed);
  pi "transtab.retire_pending" (fun () -> retire_pending t);
  Obs.Registry.fprobe r "transtab.occupancy" (fun () -> occupancy t)
