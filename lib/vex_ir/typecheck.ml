(** IR sanity checking (VEX's [sanityCheckIRSB]).

    Two levels: {!check_block} verifies typing of every statement, and
    {!check_flat} additionally verifies the flatness invariant required
    before instrumentation (phase 3 expects flat IR: every operator reads
    only temporaries and literals, and every statement assigns at most one
    temporary from a single non-nested expression). *)

open Ir

exception Ill_typed of string

let fail fmt = Fmt.kstr (fun s -> raise (Ill_typed s)) fmt

let rec check_expr b e : ty =
  match e with
  | Get (off, ty) ->
      if off < 0 then fail "GET at negative offset %d" off;
      ty
  | RdTmp t ->
      if t < 0 || t >= Support.Vec.length b.tyenv then
        fail "RdTmp t%d out of range" t;
      tmp_ty b t
  | Load (ty, addr) ->
      let aty = check_expr b addr in
      if aty <> I32 then fail "Load address has type %a, expected I32" Pp.pp_ty aty;
      if ty = I1 then fail "Load of I1 is not allowed";
      ty
  | Const c -> type_of_const c
  | Unop (op, a) ->
      let want, res = unop_sig op in
      let got = check_expr b a in
      if got <> want then
        fail "%s applied to %a, expected %a" (Pp.unop_name op) Pp.pp_ty got
          Pp.pp_ty want;
      res
  | Binop (op, x, y) ->
      let wx, wy, res = binop_sig op in
      let gx = check_expr b x and gy = check_expr b y in
      if gx <> wx then
        fail "%s lhs has type %a, expected %a" (Pp.binop_name op) Pp.pp_ty gx
          Pp.pp_ty wx;
      if gy <> wy then
        fail "%s rhs has type %a, expected %a" (Pp.binop_name op) Pp.pp_ty gy
          Pp.pp_ty wy;
      res
  | ITE (c, t, e) ->
      let gc = check_expr b c in
      if gc <> I1 then fail "ITE condition has type %a, expected I1" Pp.pp_ty gc;
      let gt = check_expr b t and ge = check_expr b e in
      if gt <> ge then
        fail "ITE arms disagree: %a vs %a" Pp.pp_ty gt Pp.pp_ty ge;
      gt
  | CCall (callee, ty, args) ->
      List.iter
        (fun a ->
          let t = check_expr b a in
          match t with
          | I32 | I64 -> ()
          | _ ->
              fail "CCall %s: argument of type %a (only I32/I64 allowed)"
                callee.c_name Pp.pp_ty t)
        args;
      (match ty with
      | I32 | I64 -> ()
      | _ -> fail "CCall %s: return type %a (only I32/I64)" callee.c_name Pp.pp_ty ty);
      ty

let check_stmt b = function
  | NoOp | IMark _ -> ()
  | AbiHint (e, _) ->
      let t = check_expr b e in
      if t <> I32 then fail "AbiHint address has type %a" Pp.pp_ty t
  | Put (off, e) ->
      if off < 0 then fail "PUT at negative offset %d" off;
      let t = check_expr b e in
      if t = I1 then fail "PUT of I1 is not allowed"
  | WrTmp (t, e) ->
      let want = tmp_ty b t in
      let got = check_expr b e in
      if want <> got then
        fail "t%d has type %a but is assigned %a" t Pp.pp_ty want Pp.pp_ty got
  | Store (a, d) ->
      let ta = check_expr b a in
      if ta <> I32 then fail "Store address has type %a" Pp.pp_ty ta;
      let td = check_expr b d in
      if td = I1 then fail "Store of I1 is not allowed"
  | Dirty d ->
      let tg = check_expr b d.d_guard in
      if tg <> I1 then fail "Dirty guard has type %a" Pp.pp_ty tg;
      List.iter (fun a -> ignore (check_expr b a)) d.d_args;
      (match d.d_tmp with
      | None -> ()
      | Some t ->
          let ty = tmp_ty b t in
          if ty <> I64 && ty <> I32 then
            fail "Dirty result t%d has type %a (only I32/I64)" t Pp.pp_ty ty);
      (match d.d_mfx with
      | Mfx_none -> ()
      | Mfx_read (e, _) | Mfx_write (e, _) ->
          if check_expr b e <> I32 then fail "Dirty mfx address not I32")
  | Exit (g, _, _) ->
      let tg = check_expr b g in
      if tg <> I1 then fail "Exit guard has type %a" Pp.pp_ty tg

(** Check every statement and the block's [next] expression.
    Raises {!Ill_typed} on the first violation. *)
let check_block b =
  Support.Vec.iter (check_stmt b) b.stmts;
  let tn = check_expr b b.next in
  if tn <> I32 then fail "block next has type %a, expected I32" Pp.pp_ty tn

(** {2 Flatness} *)

let is_atom = function RdTmp _ | Const _ -> true | _ -> false

(* One level of operator over atoms only. *)
let is_flat_rhs = function
  | Get _ | RdTmp _ | Const _ -> true
  | Load (_, a) -> is_atom a
  | Unop (_, a) -> is_atom a
  | Binop (_, a, b) -> is_atom a && is_atom b
  | ITE (c, t, e) -> is_atom c && is_atom t && is_atom e
  | CCall (_, _, args) -> List.for_all is_atom args

let check_flat_stmt = function
  | NoOp | IMark _ -> ()
  | AbiHint (e, _) -> if not (is_atom e) then fail "AbiHint not flat"
  | Put (_, e) -> if not (is_atom e) then fail "PUT not flat"
  | WrTmp (_, e) -> if not (is_flat_rhs e) then fail "WrTmp rhs not flat"
  | Store (a, d) ->
      if not (is_atom a && is_atom d) then fail "Store not flat"
  | Dirty d ->
      if not (is_atom d.d_guard && List.for_all is_atom d.d_args) then
        fail "Dirty not flat"
  | Exit (g, _, _) -> if not (is_atom g) then fail "Exit guard not flat"

(** Check the flat-IR invariant (in addition to typing). *)
let check_flat b =
  check_block b;
  Support.Vec.iter check_flat_stmt b.stmts;
  if not (is_atom b.next) then fail "block next not flat"
