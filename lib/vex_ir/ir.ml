(** The architecture-neutral, D&R, SSA-style intermediate representation
    (paper §3.6).

    IR blocks are {e superblocks}: single-entry, multiple-exit stretches of
    code.  A block holds a list of {e statements} (operations with side
    effects: register writes, stores, assignments to temporaries) whose
    operands are {e expressions} (pure values: constants, register reads,
    loads, arithmetic).  Expressions may be arbitrary trees ("tree IR") or
    flattened so every operator reads only temporaries and literals
    ("flat IR"); instrumentation runs on flat IR (§3.7 phase 3).

    The IR is RISC-like: load/store, each primitive operation does one
    thing, and CISC guest instructions decompose into several statements.
    Guest state (registers) lives in a per-thread in-memory block (the
    ThreadState); [Get]/[Put] read and write it by byte offset, which is
    also how tools access their first-class shadow registers (R1). *)

(** Value types. [I1] is a single bit (conditions); [F64] an IEEE double
    carried bit-exactly; [V128] a SIMD vector. *)
type ty = I1 | I8 | I16 | I32 | I64 | F64 | V128

(** IR temporaries (SSA: assigned exactly once within a block). *)
type tmp = int

type const =
  | CI1 of bool
  | CI8 of int
  | CI16 of int
  | CI32 of int64  (** low 32 bits significant, zero-extended *)
  | CI64 of int64
  | CF64 of float
  | CV128 of int  (** 16-bit pattern: bit i set = byte i is 0xFF (VEX style) *)

(** Unary primitive operations. *)
type unop =
  | Not1
  | Not32
  | Not64
  | Neg32
  | Neg64
  | U1to32   (** 0/1 widening *)
  | U8to32
  | S8to32
  | U16to32
  | S16to32
  | U32to64
  | S32to64
  | T64to32  (** truncate *)
  | T32to8
  | T32to16
  | T32to1   (** low bit *)
  | CmpNEZ8  (** x <> 0, result I1 *)
  | CmpNEZ32
  | CmpNEZ64
  | CmpwNEZ32 (** 0 if x=0 else all-ones; "wide" nonzero test (Memcheck PCast) *)
  | CmpwNEZ64
  | Left32   (** x | -x : smears lowest set bit leftwards (Memcheck) *)
  | Left64
  | Clz32
  | Ctz32
  | NegF64
  | AbsF64
  | SqrtF64
  | I32StoF64  (** signed int to double *)
  | F64toI32S  (** truncate toward zero *)
  | ReinterpF64asI64
  | ReinterpI64asF64
  | NotV128
  | V128to64   (** low half *)
  | V128HIto64 (** high half *)
  | Dup32x4    (** broadcast low 32 bits of an I32 to 4 lanes *)
  | CmpNEZ32x4 (** per-lane wide nonzero test *)

(** Binary primitive operations. *)
type binop =
  | Add32
  | Sub32
  | Mul32
  | MulHiS32
  | DivS32
  | DivU32
  | And32
  | Or32
  | Xor32
  | Shl32
  | Shr32
  | Sar32
  | CmpEQ32
  | CmpNE32
  | CmpLT32S
  | CmpLE32S
  | CmpLT32U
  | CmpLE32U
  | Add64
  | Sub64
  | Mul64
  | And64
  | Or64
  | Xor64
  | Shl64
  | Shr64
  | Sar64
  | CmpEQ64
  | CmpNE64
  | Cat32x2 (** (hi:I32, lo:I32) -> I64 *)
  | AddF64
  | SubF64
  | MulF64
  | DivF64
  | MinF64
  | MaxF64
  | CmpEQF64
  | CmpLTF64
  | CmpLEF64
  | AndV128
  | OrV128
  | XorV128
  | Add32x4
  | Sub32x4
  | CmpEQ32x4
  | Add8x16
  | Sub8x16
  | Cat64x2 (** (hi:I64, lo:I64) -> V128 *)

(** Description of a helper function callable from IR ("C helper" in the
    paper; here an OCaml closure registered in a helper table).  The
    [fx_*] annotations play the role of the paper's RdFX/WrFX guest-state
    annotations on DIRTY calls: they say which ThreadState bytes the helper
    touches, so tools can see some of its effects. *)
type callee = {
  c_name : string;
  c_id : int;  (** index in the runtime helper table *)
  c_cost : int;  (** cycle cost charged by the host model per call *)
  c_fx_reads : (int * int) list;  (** guest-state (offset,size) read *)
  c_fx_writes : (int * int) list;  (** guest-state (offset,size) written *)
}

type expr =
  | Get of int * ty  (** read guest state at byte offset *)
  | RdTmp of tmp
  | Load of ty * expr  (** little-endian load, address is I32 *)
  | Const of const
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | ITE of expr * expr * expr  (** ITE(cond:I1, iftrue, iffalse) *)
  | CCall of callee * ty * expr list  (** pure helper call; args/result integer types only *)

(** Why a block ended / why an exit is taken. Used by the core scheduler to
    decide what to do when the dispatcher returns. *)
type jumpkind =
  | Jk_boring
  | Jk_call
  | Jk_ret
  | Jk_syscall
  | Jk_clientreq
  | Jk_yield
  | Jk_sigill  (** undecodable instruction: deliver SIGILL at this PC *)

(** Effects of a dirty helper on memory, if any. *)
type dirty_mfx = Mfx_none | Mfx_read of expr * int | Mfx_write of expr * int

(** An impure helper call statement. [d_guard] is an I1 expression: the
    call happens only if it evaluates true (used e.g. by Memcheck's
    conditional error-reporting calls, Figure 2 statement 16). *)
type dirty = {
  d_guard : expr;
  d_callee : callee;
  d_args : expr list;
  d_tmp : tmp option;  (** destination for the I64 return value, if used *)
  d_mfx : dirty_mfx;
}

type stmt =
  | NoOp
  | IMark of int64 * int
      (** boundary marker: address and length of an original guest
          instruction (paper Figure 1, statements 1/4/14) *)
  | AbiHint of expr * int  (** address, len: bytes becoming undefined (stack) *)
  | Put of int * expr  (** write guest state at byte offset *)
  | WrTmp of tmp * expr
  | Store of expr * expr  (** Store(addr, data), little-endian *)
  | Dirty of dirty
  | Exit of expr * jumpkind * int64
      (** conditional side-exit: if guard (I1) is true, jump to the
          constant guest address *)

(** A superblock. [stmts] is mutable-by-append during construction;
    [tyenv] maps each temporary to its type. *)
type block = {
  tyenv : ty Support.Vec.t;
  stmts : stmt Support.Vec.t;
  mutable next : expr;  (** guest address of the successor (I32) *)
  mutable jumpkind : jumpkind;
}

let new_block () =
  {
    tyenv = Support.Vec.create I32;
    stmts = Support.Vec.create NoOp;
    next = Const (CI32 0L);
    jumpkind = Jk_boring;
  }

(** Allocate a fresh temporary of type [ty] in [b]. *)
let new_tmp b ty : tmp =
  Support.Vec.push b.tyenv ty;
  Support.Vec.length b.tyenv - 1

let add_stmt b s = Support.Vec.push b.stmts s
let tmp_ty b (t : tmp) = Support.Vec.get b.tyenv t
let stmts b = Support.Vec.to_list b.stmts

(** Deep-enough copy: statements are immutable, so copying the vectors is
    sufficient for the JIT to keep pre-instrumentation snapshots. *)
let copy_block b =
  {
    tyenv = Support.Vec.copy b.tyenv;
    stmts = Support.Vec.copy b.stmts;
    next = b.next;
    jumpkind = b.jumpkind;
  }

(** {2 Convenience constructors} *)

let i32 v = Const (CI32 (Support.Bits.trunc32 v))
let i64 v = Const (CI64 v)
let i8 v = Const (CI8 (v land 0xFF))
let i1 b = Const (CI1 b)
let rdtmp t = RdTmp t

(** [result type of a constant] *)
let type_of_const = function
  | CI1 _ -> I1
  | CI8 _ -> I8
  | CI16 _ -> I16
  | CI32 _ -> I32
  | CI64 _ -> I64
  | CF64 _ -> F64
  | CV128 _ -> V128

let unop_sig = function
  | Not1 -> (I1, I1)
  | Not32 | Neg32 -> (I32, I32)
  | Not64 | Neg64 -> (I64, I64)
  | U1to32 -> (I1, I32)
  | U8to32 | S8to32 -> (I8, I32)
  | U16to32 | S16to32 -> (I16, I32)
  | U32to64 | S32to64 -> (I32, I64)
  | T64to32 -> (I64, I32)
  | T32to8 -> (I32, I8)
  | T32to16 -> (I32, I16)
  | T32to1 -> (I32, I1)
  | CmpNEZ8 -> (I8, I1)
  | CmpNEZ32 -> (I32, I1)
  | CmpNEZ64 -> (I64, I1)
  | CmpwNEZ32 -> (I32, I32)
  | CmpwNEZ64 -> (I64, I64)
  | Left32 -> (I32, I32)
  | Left64 -> (I64, I64)
  | Clz32 | Ctz32 -> (I32, I32)
  | NegF64 | AbsF64 | SqrtF64 -> (F64, F64)
  | I32StoF64 -> (I32, F64)
  | F64toI32S -> (F64, I32)
  | ReinterpF64asI64 -> (F64, I64)
  | ReinterpI64asF64 -> (I64, F64)
  | NotV128 -> (V128, V128)
  | V128to64 | V128HIto64 -> (V128, I64)
  | Dup32x4 -> (I32, V128)
  | CmpNEZ32x4 -> (V128, V128)

let binop_sig = function
  | Add32 | Sub32 | Mul32 | MulHiS32 | DivS32 | DivU32 | And32 | Or32 | Xor32 ->
      (I32, I32, I32)
  | Shl32 | Shr32 | Sar32 -> (I32, I8, I32)  (* shift amount is a byte *)
  | CmpEQ32 | CmpNE32 | CmpLT32S | CmpLE32S | CmpLT32U | CmpLE32U ->
      (I32, I32, I1)
  | Add64 | Sub64 | Mul64 | And64 | Or64 | Xor64 -> (I64, I64, I64)
  | Shl64 | Shr64 | Sar64 -> (I64, I8, I64)
  | CmpEQ64 | CmpNE64 -> (I64, I64, I1)
  | Cat32x2 -> (I32, I32, I64)
  | AddF64 | SubF64 | MulF64 | DivF64 | MinF64 | MaxF64 -> (F64, F64, F64)
  | CmpEQF64 | CmpLTF64 | CmpLEF64 -> (F64, F64, I1)
  | AndV128 | OrV128 | XorV128 | Add32x4 | Sub32x4 | CmpEQ32x4 | Add8x16
  | Sub8x16 ->
      (V128, V128, V128)
  | Cat64x2 -> (I64, I64, V128)

(** Type of an expression within block [b]. Raises [Invalid_argument] on an
    ill-typed tree — the full checker with good messages is
    {!Typecheck.check_block}. *)
let rec type_of b = function
  | Get (_, ty) -> ty
  | RdTmp t -> tmp_ty b t
  | Load (ty, _) -> ty
  | Const c -> type_of_const c
  | Unop (op, _) -> snd (unop_sig op)
  | Binop (op, _, _) ->
      let _, _, r = binop_sig op in
      r
  | ITE (_, t, _) -> type_of b t
  | CCall (_, ty, _) -> ty

(** Size in bytes of a value of type [ty] ([I1] occupies one byte in the
    ThreadState, though no guest register is I1). *)
let size_of_ty = function
  | I1 -> 1
  | I8 -> 1
  | I16 -> 2
  | I32 -> 4
  | I64 -> 8
  | F64 -> 8
  | V128 -> 16
