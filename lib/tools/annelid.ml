(** Annelid: a bounds checker in the style of Nethercote & Fitzhardinge's
    tool (paper §1.2, reference [16]): "tracks which word values are
    array pointers, and from this can detect bounds errors".

    Shadow value = a {e segment id}: zero for non-pointers, a unique tag
    for every pointer derived from a heap block's base.  Pointer
    arithmetic propagates the tag; a load or store through a tagged
    pointer checks the address against the segment's live range and
    reports out-of-range or use-after-free accesses.  (Like Annelid,
    accesses through untagged pointers — globals, stack — are not
    checked; that is the tool's published scope.) *)

open Vex_ir.Ir
module GA = Guest.Arch

type segment = {
  seg_id : int;
  seg_base : int64;
  seg_size : int;
  mutable seg_live : bool;
  seg_stack : int64 list;
}

type state = {
  caps : Vg_core.Tool.caps;
  segments : (int, segment) Hashtbl.t;  (** id -> segment *)
  by_base : (int64, int) Hashtbl.t;  (** payload base -> id *)
  word_shadow : (int64, int) Hashtbl.t;  (** aligned addr -> seg id *)
  mutable next_seg : int;
  mutable n_checks : int64;
  mutable h_load : callee;
  mutable h_store : callee;
  mutable h_check : callee;  (** (addr, segid, size) *)
}

let report st msg =
  ignore
    (Vg_core.Errors.record st.caps.errors ~kind:"BoundsError" ~msg
       ~stack:(st.caps.stack_trace ()))

let check_access (st : state) (addr : int64) (segid : int) (size : int) =
  st.n_checks <- Int64.add st.n_checks 1L;
  match Hashtbl.find_opt st.segments segid with
  | None -> ()
  | Some seg ->
      if not seg.seg_live then
        report st
          (Printf.sprintf
             "Access of size %d through a pointer into a freed block (seg %d, \
              base 0x%LX, %d bytes)"
             size segid seg.seg_base seg.seg_size)
      else if
        Int64.unsigned_compare addr seg.seg_base < 0
        || Int64.unsigned_compare
             (Int64.add addr (Int64.of_int size))
             (Int64.add seg.seg_base (Int64.of_int seg.seg_size))
           > 0
      then
        report st
          (Printf.sprintf
             "Out-of-bounds access of size %d at 0x%LX (block: base 0x%LX, %d \
              bytes)"
             size addr seg.seg_base seg.seg_size)

let register_helpers (st : state) =
  let fx = [ (GA.off_eip, 4); (GA.off_reg GA.reg_fp, 4) ] in
  let reg = st.caps.register_helper ~fx_reads:fx in
  st.h_load <-
    reg ~name:"an_load_shadow" ~cost:6 ~nargs:1 (fun args ->
        let addr = Int64.logand args.(0) (Int64.lognot 3L) in
        Int64.of_int (Option.value ~default:0 (Hashtbl.find_opt st.word_shadow addr)));
  st.h_store <-
    reg ~name:"an_store_shadow" ~cost:6 ~nargs:2 (fun args ->
        let addr = Int64.logand args.(0) (Int64.lognot 3L) in
        let v = Int64.to_int args.(1) in
        if v = 0 then Hashtbl.remove st.word_shadow addr
        else Hashtbl.replace st.word_shadow addr v;
        0L);
  st.h_check <-
    reg ~name:"an_check_access" ~cost:6 ~nargs:3 (fun args ->
        let segid = Int64.to_int args.(1) in
        if segid <> 0 then
          check_access st args.(0) segid (Int64.to_int args.(2));
        0L)

(* ------------------------------------------------------------------ *)
(* Instrumentation: shadow I32 values carry segment ids                 *)
(* ------------------------------------------------------------------ *)

type ictx = { st : state; nb : block; shadow : (tmp, tmp) Hashtbl.t }

let emit c s = add_stmt c.nb s

let assign c e =
  let t = new_tmp c.nb (type_of c.nb e) in
  emit c (WrTmp (t, e));
  RdTmp t

(* only I32 values can be pointers; everything else shadows as "not a
   pointer" of a matching-size zero so the IR stays well-typed *)
let shadow_ty = function F64 -> I64 | ty -> ty

let zero_shadow = function
  | I1 -> Const (CI1 false)
  | I8 -> Const (CI8 0)
  | I16 -> Const (CI16 0)
  | I32 -> Const (CI32 0L)
  | I64 | F64 -> Const (CI64 0L)
  | V128 -> Const (CV128 0)

let shadow_of_tmp c t =
  match Hashtbl.find_opt c.shadow t with
  | Some s -> s
  | None ->
      let s = new_tmp c.nb (shadow_ty (tmp_ty c.nb t)) in
      Hashtbl.replace c.shadow t s;
      emit c (WrTmp (s, zero_shadow (tmp_ty c.nb t)));
      s

let shadow_atom c = function
  | Const k -> zero_shadow (type_of_const k)
  | RdTmp t -> RdTmp (shadow_of_tmp c t)
  | _ -> invalid_arg "shadow_atom"

(* segment union: a pointer +/- an integer keeps its tag; two tagged
   pointers combined give the left tag (Annelid's heuristic) *)
let seg_merge c a b =
  (* if a <> 0 then a else b *)
  let nz = assign c (Unop (CmpNEZ32, a)) in
  assign c (ITE (nz, a, b))

let shadow_rhs c (e : expr) : expr =
  match e with
  | Const _ | RdTmp _ -> shadow_atom c e
  | Get (off, ty) ->
      if off >= GA.shadow_offset then zero_shadow ty
      else Get (GA.shadow_of off, shadow_ty ty)
  | Load (I32, addr) ->
      let t = new_tmp c.nb I64 in
      emit c
        (Dirty
           { d_guard = Const (CI1 true); d_callee = c.st.h_load;
             d_args = [ addr ]; d_tmp = Some t; d_mfx = Mfx_none });
      Unop (T64to32, RdTmp t)
  | Load (ty, _) -> zero_shadow ty
  | Unop (op, a) -> (
      let _, rty = unop_sig op in
      match op with
      | Not32 | Neg32 -> shadow_atom c a (* tag survives bit games *)
      | _ -> zero_shadow (shadow_ty rty))
  | Binop ((Add32 | Sub32), a, b) ->
      let va = assign c (shadow_atom c a) in
      let vb = assign c (shadow_atom c b) in
      seg_merge c va vb
  | Binop (op, _, _) ->
      let _, _, rty = binop_sig op in
      zero_shadow (shadow_ty rty)
  | ITE (cond, t, f) -> ITE (cond, shadow_atom c t, shadow_atom c f)
  | CCall (_, ty, _) -> zero_shadow ty

let check_mem c (addr : expr) (size : int) =
  let seg = assign c (shadow_atom c addr) in
  emit c
    (Dirty
       { d_guard = Const (CI1 true); d_callee = c.st.h_check;
         d_args = [ addr; seg; i32 (Int64.of_int size) ]; d_tmp = None;
         d_mfx = Mfx_none })

let instrument (st : state) (b : block) : block =
  let nb =
    { tyenv = Support.Vec.copy b.tyenv;
      stmts = Support.Vec.create NoOp;
      next = b.next;
      jumpkind = b.jumpkind }
  in
  let c = { st; nb; shadow = Hashtbl.create 64 } in
  Support.Vec.iter
    (fun s ->
      match s with
      | NoOp | IMark _ | AbiHint _ | Exit _ -> emit c s
      | WrTmp (t, e) ->
          (* loads: bounds-check the (possibly tagged) address first *)
          (match e with
          | Load (lty, addr) -> check_mem c addr (size_of_ty lty)
          | _ -> ());
          let se = shadow_rhs c e in
          let sv = new_tmp nb (shadow_ty (tmp_ty nb t)) in
          Hashtbl.replace c.shadow t sv;
          emit c (WrTmp (sv, se));
          emit c s
      | Put (off, e) ->
          if off < GA.shadow_offset then
            emit c (Put (GA.shadow_of off, assign c (shadow_atom c e)));
          emit c s
      | Store (addr, d) ->
          check_mem c addr (size_of_ty (type_of nb d));
          (if type_of nb d = I32 then
             let sd = assign c (shadow_atom c d) in
             let sd64 = assign c (Unop (U32to64, sd)) in
             emit c
               (Dirty
                  { d_guard = Const (CI1 true); d_callee = st.h_store;
                    d_args = [ addr; sd64 ]; d_tmp = None; d_mfx = Mfx_none }));
          emit c s
      | Dirty d ->
          emit c s;
          (match d.d_tmp with
          | Some t ->
              let sv = new_tmp nb (shadow_ty (tmp_ty nb t)) in
              Hashtbl.replace c.shadow t sv;
              emit c (WrTmp (sv, zero_shadow (tmp_ty nb t)))
          | None -> ()))
    b.stmts;
  nb

(* ------------------------------------------------------------------ *)
(* Heap tracking                                                        *)
(* ------------------------------------------------------------------ *)

let read_stack_arg (st : state) (n : int) : int64 =
  let sp = st.caps.read_guest GA.off_sp 4 in
  Aspace.read st.caps.mem (Int64.add sp (Int64.of_int (4 * n))) 4

let new_segment (st : state) (base : int64) (size : int) : segment =
  st.caps.charge_cycles (150 + (size / 16));
  let id = st.next_seg in
  st.next_seg <- id + 1;
  let seg =
    { seg_id = id; seg_base = base; seg_size = size; seg_live = true;
      seg_stack = st.caps.stack_trace () }
  in
  Hashtbl.replace st.segments id seg;
  Hashtbl.replace st.by_base base id;
  seg

let install_heap (st : state) =
  let set_result v = st.caps.write_guest (GA.off_reg 0) 4 v in
  let tag_result segid =
    (* the returned pointer (r0) is tagged in the shadow register file *)
    st.caps.write_guest (GA.shadow_of (GA.off_reg 0)) 4 (Int64.of_int segid)
  in
  st.caps.replace_function ~symbol:"malloc"
    ~handler:(fun () ->
      let size = max 1 (Int64.to_int (read_stack_arg st 1)) in
      let base = st.caps.client_alloc size in
      let seg = new_segment st base size in
      set_result base;
      tag_result seg.seg_id);
  st.caps.replace_function ~symbol:"calloc"
    ~handler:(fun () ->
      let n = Int64.to_int (read_stack_arg st 1) in
      let sz = Int64.to_int (read_stack_arg st 2) in
      let size = max 1 (n * sz) in
      let base = st.caps.client_alloc size in
      for i = 0 to size - 1 do
        Aspace.write st.caps.mem (Int64.add base (Int64.of_int i)) 1 0L
      done;
      let seg = new_segment st base size in
      set_result base;
      tag_result seg.seg_id);
  st.caps.replace_function ~symbol:"free"
    ~handler:(fun () ->
      let p = read_stack_arg st 1 in
      (match Hashtbl.find_opt st.by_base p with
      | Some id -> (
          match Hashtbl.find_opt st.segments id with
          | Some seg -> seg.seg_live <- false
          | None -> ())
      | None -> ());
      set_result 0L);
  st.caps.replace_function ~symbol:"realloc"
    ~handler:(fun () ->
      let old = read_stack_arg st 1 in
      let size = max 1 (Int64.to_int (read_stack_arg st 2)) in
      let base = st.caps.client_alloc size in
      (match Hashtbl.find_opt st.by_base old with
      | Some id -> (
          match Hashtbl.find_opt st.segments id with
          | Some seg ->
              for i = 0 to min seg.seg_size size - 1 do
                let b = Aspace.read st.caps.mem (Int64.add old (Int64.of_int i)) 1 in
                Aspace.write st.caps.mem (Int64.add base (Int64.of_int i)) 1 b
              done;
              seg.seg_live <- false
          | None -> ())
      | None -> ());
      let seg = new_segment st base size in
      set_result base;
      tag_result seg.seg_id)

let the_state : state option ref = ref None

let tool : Vg_core.Tool.t =
  {
    name = "annelid";
    description = "a bounds checker (pointer segments, Annelid-style)";
    shadow_ranges = [ (GA.shadow_offset, GA.guest_state_used) ];
    create =
      (fun caps ->
        let dummy =
          { c_name = ""; c_id = -1; c_cost = 0; c_fx_reads = []; c_fx_writes = [] }
        in
        let st =
          {
            caps;
            segments = Hashtbl.create 64;
            by_base = Hashtbl.create 64;
            word_shadow = Hashtbl.create 256;
            next_seg = 1;
            n_checks = 0L;
            h_load = dummy;
            h_store = dummy;
            h_check = dummy;
          }
        in
        register_helpers st;
        install_heap st;
        the_state := Some st;
        let snapshot, restore =
          Vg_core.Tool.marshal_pair
            ~save:(fun () ->
              (st.segments, st.by_base, st.word_shadow, st.next_seg, st.n_checks))
            ~load:(fun (segments, by_base, word_shadow, next_seg, n_checks) ->
              let refill dst src =
                Hashtbl.reset dst;
                Hashtbl.iter (Hashtbl.replace dst) src
              in
              refill st.segments segments;
              refill st.by_base by_base;
              refill st.word_shadow word_shadow;
              st.next_seg <- next_seg;
              st.n_checks <- n_checks)
        in
        {
          instrument = (fun b -> instrument st b);
          fini =
            (fun ~exit_code:_ ->
              caps.output
                (Printf.sprintf
                   "==annelid== %d segments tracked, %Ld pointer accesses \
                    checked\n"
                   (st.next_seg - 1) st.n_checks);
              caps.output (Vg_core.Errors.summary caps.errors));
          client_request = (fun ~code:_ ~args:_ -> None);
          snapshot;
          restore;
        });
  }
