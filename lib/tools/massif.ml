(** Massif: the heap profiler (1,764 lines of C in the paper's §5.1 size
    table).  Replaces the guest allocator (like Memcheck) but instead of
    shadowing anything it tracks live heap volume over time and records
    peak usage and allocation-site totals. *)

module GA = Guest.Arch

type site = { mutable s_bytes : int64; mutable s_blocks : int }

type state = {
  caps : Vg_core.Tool.caps;
  live : (int64, int * int64 list) Hashtbl.t;  (** addr -> size, alloc stack *)
  sites : (int64 list, site) Hashtbl.t;
  mutable cur_bytes : int64;
  mutable peak_bytes : int64;
  mutable n_allocs : int;
  mutable snapshots : (int * int64) list;  (** (alloc ordinal, live bytes) *)
  mutable snapshot_every : int;
}

let the_state : state option ref = ref None

let read_stack_arg (st : state) (n : int) : int64 =
  let sp = st.caps.read_guest GA.off_sp 4 in
  Aspace.read st.caps.mem (Int64.add sp (Int64.of_int (4 * n))) 4

let note_alloc (st : state) (addr : int64) (size : int) =
  st.caps.charge_cycles (150 + (size / 16));
  let stack = st.caps.stack_trace () in
  Hashtbl.replace st.live addr (size, stack);
  st.cur_bytes <- Int64.add st.cur_bytes (Int64.of_int size);
  if Int64.compare st.cur_bytes st.peak_bytes > 0 then
    st.peak_bytes <- st.cur_bytes;
  st.n_allocs <- st.n_allocs + 1;
  (match Hashtbl.find_opt st.sites stack with
  | Some s ->
      s.s_bytes <- Int64.add s.s_bytes (Int64.of_int size);
      s.s_blocks <- s.s_blocks + 1
  | None ->
      Hashtbl.replace st.sites stack
        { s_bytes = Int64.of_int size; s_blocks = 1 });
  if st.n_allocs mod st.snapshot_every = 0 then
    st.snapshots <- (st.n_allocs, st.cur_bytes) :: st.snapshots

let note_free (st : state) (addr : int64) =
  st.caps.charge_cycles 100;
  match Hashtbl.find_opt st.live addr with
  | None -> ()
  | Some (size, _) ->
      Hashtbl.remove st.live addr;
      st.cur_bytes <- Int64.sub st.cur_bytes (Int64.of_int size)

let tool : Vg_core.Tool.t =
  {
    name = "massif";
    description = "a heap profiler";
    shadow_ranges = [];
    create =
      (fun caps ->
        let st =
          {
            caps;
            live = Hashtbl.create 64;
            sites = Hashtbl.create 64;
            cur_bytes = 0L;
            peak_bytes = 0L;
            n_allocs = 0;
            snapshots = [];
            snapshot_every = 16;
          }
        in
        the_state := Some st;
        let set_result v = caps.write_guest (GA.off_reg 0) 4 v in
        caps.replace_function ~symbol:"malloc"
          ~handler:(fun () ->
            let size = Int64.to_int (read_stack_arg st 1) in
            let addr = caps.client_alloc (max 1 size) in
            note_alloc st addr (max 1 size);
            set_result addr);
        caps.replace_function ~symbol:"calloc"
          ~handler:(fun () ->
            let n = Int64.to_int (read_stack_arg st 1) in
            let sz = Int64.to_int (read_stack_arg st 2) in
            let size = max 1 (n * sz) in
            let addr = caps.client_alloc size in
            for i = 0 to size - 1 do
              Aspace.write caps.mem (Int64.add addr (Int64.of_int i)) 1 0L
            done;
            note_alloc st addr size;
            set_result addr);
        caps.replace_function ~symbol:"free"
          ~handler:(fun () ->
            note_free st (read_stack_arg st 1);
            set_result 0L);
        caps.replace_function ~symbol:"realloc"
          ~handler:(fun () ->
            let old = read_stack_arg st 1 in
            let size = max 1 (Int64.to_int (read_stack_arg st 2)) in
            let naddr = caps.client_alloc size in
            (match Hashtbl.find_opt st.live old with
            | Some (osize, _) ->
                for i = 0 to min osize size - 1 do
                  let b = Aspace.read caps.mem (Int64.add old (Int64.of_int i)) 1 in
                  Aspace.write caps.mem (Int64.add naddr (Int64.of_int i)) 1 b
                done;
                note_free st old
            | None -> ());
            note_alloc st naddr size;
            set_result naddr);
        let snapshot, restore =
          Vg_core.Tool.marshal_pair
            ~save:(fun () ->
              ( st.live, st.sites, st.cur_bytes, st.peak_bytes, st.n_allocs,
                st.snapshots, st.snapshot_every ))
            ~load:(fun (live, sites, cur, peak, n, snaps, every) ->
              Hashtbl.reset st.live;
              Hashtbl.iter (Hashtbl.replace st.live) live;
              Hashtbl.reset st.sites;
              Hashtbl.iter (Hashtbl.replace st.sites) sites;
              st.cur_bytes <- cur;
              st.peak_bytes <- peak;
              st.n_allocs <- n;
              st.snapshots <- snaps;
              st.snapshot_every <- every)
        in
        {
          instrument = (fun b -> b);
          fini =
            (fun ~exit_code:_ ->
              (* allocations since the last periodic snapshot would
                 otherwise be invisible in the timeline: take a closing
                 snapshot unless one just fired on the final ordinal *)
              if st.n_allocs mod st.snapshot_every <> 0 then
                st.snapshots <- (st.n_allocs, st.cur_bytes) :: st.snapshots;
              caps.output
                (Printf.sprintf
                   "==massif== peak heap: %Ld bytes; %d allocations; live at exit: %Ld bytes\n"
                   st.peak_bytes st.n_allocs st.cur_bytes);
              (match List.rev st.snapshots with
              | [] -> ()
              | timeline ->
                  caps.output "==massif== heap timeline (allocs: live bytes):\n";
                  List.iter
                    (fun (n, bytes) ->
                      caps.output
                        (Printf.sprintf "==massif==   %6d: %Ld\n" n bytes))
                    timeline);
              let top =
                Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.sites []
                |> List.sort (fun (_, a) (_, b) -> compare b.s_bytes a.s_bytes)
                |> List.filteri (fun i _ -> i < 5)
              in
              List.iter
                (fun (stack, s) ->
                  let where =
                    match stack with
                    | _ :: caller :: _ -> caps.symbolize caller
                    | [ only ] -> caps.symbolize only
                    | [] -> "?"
                  in
                  caps.output
                    (Printf.sprintf "==massif==   %Ld bytes in %d blocks from %s\n"
                       s.s_bytes s.s_blocks where))
                top);
          client_request = (fun ~code:_ ~args:_ -> None);
          snapshot;
          restore;
        });
  }
