(** Memcheck: the definedness- and addressability-checking shadow value
    tool (paper §1.2, §3.7 Figure 2, and Seward & Nethercote USENIX'05).

    Every register value is shadowed bit-for-bit in the ThreadState
    shadow block (R1); every memory byte has A and V bits in the
    two-level {!Shadow_mem} structure (R2).  Instrumentation adds a
    shadow operation before every original operation (R3); the events
    system keeps the shadow state in sync with system calls and
    allocations (R4–R7); the guest allocator is replaced so heap blocks
    get red zones and book-keeping bytes are unaddressable (R8); errors
    are recorded, deduplicated and printed through the core's error
    machinery (R9). *)

open Vex_ir.Ir
module GA = Guest.Arch

(* ------------------------------------------------------------------ *)
(* Tool state                                                           *)
(* ------------------------------------------------------------------ *)

type heap_block = {
  hb_addr : int64;  (** payload base *)
  hb_size : int;
  hb_alloc_stack : int64 list;
  mutable hb_freed : bool;
  mutable hb_free_stack : int64 list;
}

type state = {
  caps : Vg_core.Tool.caps;
  sm : Shadow_mem.t;
  live : (int64, heap_block) Hashtbl.t;
  mutable freed_ring : heap_block list;  (** recently freed, newest first *)
  mutable n_allocs : int;
  mutable n_frees : int;
  mutable bytes_allocated : int64;
  mutable leak_check_at_exit : bool;
  (* helpers *)
  mutable h_loadv : Vex_ir.Ir.callee array;  (** indexed by log2 size *)
  mutable h_storev : Vex_ir.Ir.callee array;
  mutable h_check_fail : Vex_ir.Ir.callee array;  (** by size: 0,1,2,4,8,16 *)
  (* origin tracking (--track-origins, the Memcheck extension):
     a second shadow plane says WHERE each undefined value was born *)
  origins : bool;
  otag_info : (int, string * int64 list) Hashtbl.t;  (** tag -> what, stack *)
  mutable next_otag : int;
  otag_cache : (string, int) Hashtbl.t;  (** allocation site -> tag *)
  word_origin : (int64, int) Hashtbl.t;  (** aligned addr -> tag *)
  mutable h_load_origin : Vex_ir.Ir.callee;
  mutable h_store_origin : Vex_ir.Ir.callee;
  mutable h_check_fail_o : Vex_ir.Ir.callee array;
      (** like h_check_fail but taking the origin tag as an argument *)
}

(* origin tags for the guest registers live in the spare ThreadState
   area above the value shadows: one 4-byte tag per register slot *)
let origin_of (off : int) = off + 480

let redzone = 16

(* ------------------------------------------------------------------ *)
(* Error reporting                                                      *)
(* ------------------------------------------------------------------ *)

let heap_block_for (st : state) (addr : int64) : heap_block option =
  let within (b : heap_block) =
    Int64.unsigned_compare addr (Int64.sub b.hb_addr (Int64.of_int redzone)) >= 0
    && Int64.unsigned_compare addr
         (Int64.add b.hb_addr (Int64.of_int (b.hb_size + redzone)))
       < 0
  in
  match Hashtbl.fold (fun _ b acc -> if within b then Some b else acc) st.live None with
  | Some b -> Some b
  | None -> List.find_opt within st.freed_ring

let describe_addr (st : state) (addr : int64) : string =
  match heap_block_for st addr with
  | Some b when b.hb_freed ->
      Printf.sprintf "Address 0x%LX is %Ld bytes inside a block of size %d free'd"
        addr (Int64.sub addr b.hb_addr) b.hb_size
  | Some b ->
      let off = Int64.sub addr b.hb_addr in
      if Int64.compare off 0L < 0 || Int64.compare off (Int64.of_int b.hb_size) >= 0
      then
        Printf.sprintf
          "Address 0x%LX is %Ld bytes %s a block of size %d alloc'd" addr
          (Int64.abs
             (if Int64.compare off 0L < 0 then off
              else Int64.sub off (Int64.of_int b.hb_size)))
          (if Int64.compare off 0L < 0 then "before" else "after")
          b.hb_size
      else
        Printf.sprintf "Address 0x%LX is %Ld bytes inside a block of size %d alloc'd"
          addr off b.hb_size
  | None -> Printf.sprintf "Address 0x%LX is not stack'd, malloc'd or free'd" addr

let report (st : state) ~kind ~msg =
  ignore
    (Vg_core.Errors.record st.caps.errors ~kind ~msg ~stack:(st.caps.stack_trace ()))

let report_undef ?(otag = 0) (st : state) (size : int) =
  let what =
    if size = 0 then "Conditional jump or move depends on uninitialised value(s)"
    else Printf.sprintf "Use of uninitialised value of size %d" size
  in
  let what =
    match Hashtbl.find_opt st.otag_info otag with
    | Some (descr, site_stack) ->
        let site =
          match site_stack with
          | top :: _ -> st.caps.symbolize top
          | [] -> "?"
        in
        Printf.sprintf "%s\n==err==  Uninitialised value was created by %s at %s"
          what descr site
    | None -> what
  in
  report st ~kind:"UninitValue" ~msg:what

(* intern an origin tag for an allocation event *)
let otag_for (st : state) ~(descr : string) ~(site : int64 list) : int =
  let key =
    descr ^ "@" ^ String.concat "," (List.map Int64.to_string site)
  in
  match Hashtbl.find_opt st.otag_cache key with
  | Some t -> t
  | None ->
      let t = st.next_otag in
      st.next_otag <- t + 1;
      Hashtbl.replace st.otag_cache key t;
      Hashtbl.replace st.otag_info t (descr, site);
      t

let set_origin_range (st : state) (addr : int64) (len : int) (tag : int) =
  if st.origins && len <= 1 lsl 20 then begin
    let base = Int64.logand addr (Int64.lognot 3L) in
    let words = (len + 7) / 4 in
    for i = 0 to words - 1 do
      let a = Int64.add base (Int64.of_int (4 * i)) in
      if tag = 0 then Hashtbl.remove st.word_origin a
      else Hashtbl.replace st.word_origin a tag
    done
  end

let report_invalid_access (st : state) ~is_write ~addr ~size =
  report st
    ~kind:(if is_write then "InvalidWrite" else "InvalidRead")
    ~msg:
      (Printf.sprintf "Invalid %s of size %d\n==err==  %s"
         (if is_write then "write" else "read")
         size (describe_addr st addr))

(* ------------------------------------------------------------------ *)
(* Helper registration                                                  *)
(* ------------------------------------------------------------------ *)

(* costs roughly model Memcheck's real shadow-memory fast paths; they
   are what puts Memcheck's Table-2 slow-down where it belongs *)
let loadv_cost = 11
let storev_cost = 11
let fail_cost = 30

let register_helpers (st : state) =
  (* error-reporting helpers read the guest PC and frame pointer for
     stack traces: declare it (RdFX), as the paper's Figure 2 shows *)
  let fx =
    [ (GA.off_eip, 4); (GA.off_reg GA.reg_fp, 4) ]
  in
  let reg = st.caps.register_helper ~fx_reads:fx in
  let mk_loadv size lg =
    reg
      ~name:(Printf.sprintf "mc_LOADV%d" (8 * size))
      ~cost:loadv_cost ~nargs:1
      (fun args ->
        let addr = args.(0) in
        let ok, v = Shadow_mem.load st.sm addr size in
        if not ok then begin
          report_invalid_access st ~is_write:false ~addr ~size;
          0L (* pretend defined to avoid error cascades *)
        end
        else v)
    |> fun c -> st.h_loadv.(lg) <- c
  in
  mk_loadv 1 0;
  mk_loadv 2 1;
  mk_loadv 4 2;
  mk_loadv 8 3;
  let mk_storev size lg =
    reg
      ~name:(Printf.sprintf "mc_STOREV%d" (8 * size))
      ~cost:storev_cost ~nargs:2
      (fun args ->
        let addr = args.(0) and v = args.(1) in
        if not (Shadow_mem.store st.sm addr size v) then
          report_invalid_access st ~is_write:true ~addr ~size;
        0L)
    |> fun c -> st.h_storev.(lg) <- c
  in
  mk_storev 1 0;
  mk_storev 2 1;
  mk_storev 4 2;
  mk_storev 8 3;
  List.iteri
    (fun i size ->
      st.h_check_fail.(i) <-
        reg
          ~name:(Printf.sprintf "mc_value_check%d_fail" size)
          ~cost:fail_cost ~nargs:0
          (fun _args ->
            report_undef st size;
            0L))
    [ 0; 1; 2; 4; 8; 16 ];
  if st.origins then begin
    st.h_load_origin <-
      reg ~name:"mc_load_origin" ~cost:7 ~nargs:1 (fun args ->
          let a = Int64.logand args.(0) (Int64.lognot 3L) in
          Int64.of_int
            (Option.value ~default:0 (Hashtbl.find_opt st.word_origin a)));
    st.h_store_origin <-
      reg ~name:"mc_store_origin" ~cost:7 ~nargs:2 (fun args ->
          let a = Int64.logand args.(0) (Int64.lognot 3L) in
          let tag = Int64.to_int args.(1) in
          if tag = 0 then Hashtbl.remove st.word_origin a
          else Hashtbl.replace st.word_origin a tag;
          0L);
    List.iteri
      (fun i size ->
        st.h_check_fail_o.(i) <-
          reg
            ~name:(Printf.sprintf "mc_value_check%d_fail_o" size)
            ~cost:fail_cost ~nargs:1
            (fun args ->
              report_undef ~otag:(Int64.to_int args.(0)) st size;
              0L))
      [ 0; 1; 2; 4; 8; 16 ]
  end

let check_fail_for (st : state) (size : int) : callee =
  let i =
    match size with 0 -> 0 | 1 -> 1 | 2 -> 2 | 4 -> 3 | 8 -> 4 | _ -> 5
  in
  st.h_check_fail.(i)

(* ------------------------------------------------------------------ *)
(* Instrumentation (phase 3)                                            *)
(* ------------------------------------------------------------------ *)

(* The shadow of an F64 value is carried as I64 bits; everything else
   shadows at its own type. *)
let shadow_ty = function F64 -> I64 | ty -> ty

let zero_shadow_const = function
  | I1 -> Const (CI1 false)
  | I8 -> Const (CI8 0)
  | I16 -> Const (CI16 0)
  | I32 -> Const (CI32 0L)
  | I64 | F64 -> Const (CI64 0L)
  | V128 -> Const (CV128 0)

type ictx = {
  st : state;
  nb : block;
  shadow : (tmp, tmp) Hashtbl.t;
  origin : (tmp, tmp) Hashtbl.t;  (** tmp -> origin-tag tmp (I32) *)
}

let emit c s = add_stmt c.nb s

let assign c (e : expr) : expr =
  let t = new_tmp c.nb (type_of c.nb e) in
  emit c (WrTmp (t, e));
  RdTmp t

let shadow_of_tmp c (t : tmp) : tmp =
  match Hashtbl.find_opt c.shadow t with
  | Some s -> s
  | None ->
      (* referenced before any definition: conservatively defined *)
      let s = new_tmp c.nb (shadow_ty (tmp_ty c.nb t)) in
      Hashtbl.replace c.shadow t s;
      emit c (WrTmp (s, zero_shadow_const (tmp_ty c.nb t)));
      s

let shadow_atom c (e : expr) : expr =
  match e with
  | Const k -> zero_shadow_const (type_of_const k)
  | RdTmp t -> RdTmp (shadow_of_tmp c t)
  | _ -> invalid_arg "shadow_atom: not an atom"

let origin_of_tmp c (t : tmp) : tmp =
  match Hashtbl.find_opt c.origin t with
  | Some s -> s
  | None ->
      let s = new_tmp c.nb I32 in
      Hashtbl.replace c.origin t s;
      emit c (WrTmp (s, Const (CI32 0L)));
      s

let origin_atom c (e : expr) : expr =
  match e with
  | Const _ -> Const (CI32 0L)
  | RdTmp t -> RdTmp (origin_of_tmp c t)
  | _ -> invalid_arg "origin_atom: not an atom"

(* Pessimistic cast of a shadow value to a target shadow type: result is
   all-zeroes iff the input is (mkPCastTo in Memcheck). *)
let pcast_to c (ty : ty) (v : expr) : expr =
  let vty = type_of c.nb v in
  if vty = ty && (ty = I1) then v
  else begin
    (* normalise to an I1 "any bit undefined" *)
    let nz =
      match vty with
      | I1 -> v
      | I8 -> assign c (Unop (CmpNEZ8, v))
      | I16 -> assign c (Unop (CmpNEZ32, assign c (Unop (U16to32, v))))
      | I32 -> assign c (Unop (CmpNEZ32, v))
      | I64 -> assign c (Unop (CmpNEZ64, v))
      | F64 -> assign c (Unop (CmpNEZ64, v))
      | V128 ->
          let lo = assign c (Unop (V128to64, v)) in
          let hi = assign c (Unop (V128HIto64, v)) in
          assign c (Unop (CmpNEZ64, assign c (Binop (Or64, lo, hi))))
    in
    match ty with
    | I1 -> nz
    | I8 -> assign c (Unop (T32to8, assign c (Unop (CmpwNEZ32, assign c (Unop (U1to32, nz))))))
    | I16 -> assign c (Unop (T32to16, assign c (Unop (CmpwNEZ32, assign c (Unop (U1to32, nz))))))
    | I32 -> assign c (Unop (CmpwNEZ32, assign c (Unop (U1to32, nz))))
    | I64 | F64 ->
        assign c (Unop (CmpwNEZ64, assign c (Unop (U32to64, assign c (Unop (U1to32, nz))))))
    | V128 ->
        let w =
          assign c (Unop (CmpwNEZ64, assign c (Unop (U32to64, assign c (Unop (U1to32, nz))))))
        in
        assign c (Binop (Cat64x2, w, w))
  end

(* UifU: undefined-if-either-undefined *)
let uifu c (a : expr) (b : expr) : expr =
  match type_of c.nb a with
  | I1 ->
      (* I1 or: via ITE *)
      assign c (ITE (a, Const (CI1 true), b))
  | I8 ->
      let a32 = assign c (Unop (U8to32, a)) and b32 = assign c (Unop (U8to32, b)) in
      assign c (Unop (T32to8, assign c (Binop (Or32, a32, b32))))
  | I16 ->
      let a32 = assign c (Unop (U16to32, a)) and b32 = assign c (Unop (U16to32, b)) in
      assign c (Unop (T32to16, assign c (Binop (Or32, a32, b32))))
  | I32 -> assign c (Binop (Or32, a, b))
  | I64 | F64 -> assign c (Binop (Or64, a, b))
  | V128 -> assign c (Binop (OrV128, a, b))

(* Left: smear undefinedness toward the MSB (carry propagation model for
   add/sub — exactly Figure 2's Or/Neg/Or sequence). *)
let left c (v : expr) : expr =
  match type_of c.nb v with
  | I32 ->
      let n = assign c (Unop (Neg32, v)) in
      assign c (Binop (Or32, v, n))
  | I64 ->
      let n = assign c (Unop (Neg64, v)) in
      assign c (Binop (Or64, v, n))
  | _ -> v

(* complain if any bit of shadow [v] is undefined; [size] is the reported
   value size in bytes (0 = condition); [origin] is the origin-tag atom
   reported alongside when origin tracking is on *)
let complain_if_undefined ?origin c (v : expr) (size : int) =
  let guard = pcast_to c I1 v in
  let callee, args =
    match (c.st.origins, origin) with
    | true, Some o ->
        let i =
          match size with 0 -> 0 | 1 -> 1 | 2 -> 2 | 4 -> 3 | 8 -> 4 | _ -> 5
        in
        (c.st.h_check_fail_o.(i), [ o ])
    | _ -> (check_fail_for c.st size, [])
  in
  emit c
    (Dirty
       {
         d_guard = guard;
         d_callee = callee;
         d_args = args;
         d_tmp = None;
         d_mfx = Mfx_none;
       })

(* shadow of a (flat) rhs expression *)
let shadow_rhs c (e : expr) : expr =
  match e with
  | Const _ | RdTmp _ -> shadow_atom c e
  | Get (off, ty) ->
      if off >= GA.shadow_offset then zero_shadow_const ty
      else Get (GA.shadow_of off, shadow_ty ty)
  | Load (ty, addr) ->
      (* check the address itself is defined (Figure 2, stmts 15–16) *)
      let o =
        if c.st.origins then Some (assign c (origin_atom c addr)) else None
      in
      complain_if_undefined ?origin:o c (shadow_atom c addr) 4;
      let call n a =
        let t = new_tmp c.nb I64 in
        emit c
          (Dirty
             {
               d_guard = Const (CI1 true);
               d_callee = c.st.h_loadv.(n);
               d_args = [ a ];
               d_tmp = Some t;
               d_mfx = Mfx_none;
             });
        RdTmp t
      in
      (match ty with
      | V128 ->
          let lo = call 3 addr in
          let hi_addr = assign c (Binop (Add32, addr, Const (CI32 8L))) in
          let hi = call 3 hi_addr in
          Binop (Cat64x2, hi, lo)
      | I64 | F64 -> call 3 addr
      | I32 -> Unop (T64to32, call 2 addr)
      | I16 -> Unop (T32to16, assign c (Unop (T64to32, call 1 addr)))
      | I8 -> Unop (T32to8, assign c (Unop (T64to32, call 0 addr)))
      | I1 -> invalid_arg "I1 load")
  | Unop (op, a) -> (
      let va = shadow_atom c a in
      match op with
      | Not1 | Not32 | Not64 | NegF64 | AbsF64
      | ReinterpF64asI64 | ReinterpI64asF64 ->
          va
      | U1to32 -> Unop (U1to32, va)
      | U8to32 -> Unop (U8to32, va)
      | S8to32 -> Unop (S8to32, va)
      | U16to32 -> Unop (U16to32, va)
      | S16to32 -> Unop (S16to32, va)
      | U32to64 -> Unop (U32to64, va)
      | S32to64 -> Unop (S32to64, va)
      | T64to32 -> Unop (T64to32, va)
      | T32to8 -> Unop (T32to8, va)
      | T32to16 -> Unop (T32to16, va)
      | T32to1 -> Unop (T32to1, va)
      | Neg32 | Left32 -> left c va
      | Neg64 | Left64 -> left c va
      | CmpNEZ8 -> pcast_to c I1 va
      | CmpNEZ32 -> pcast_to c I1 va
      | CmpNEZ64 -> pcast_to c I1 va
      | CmpwNEZ32 -> pcast_to c I32 va
      | CmpwNEZ64 -> pcast_to c I64 va
      | Clz32 | Ctz32 -> pcast_to c I32 va
      | SqrtF64 | I32StoF64 -> pcast_to c I64 va
      | F64toI32S -> pcast_to c I32 va
      | NotV128 -> va
      | V128to64 -> Unop (V128to64, va)
      | V128HIto64 -> Unop (V128HIto64, va)
      | Dup32x4 -> Unop (Dup32x4, va)
      | CmpNEZ32x4 -> Unop (CmpNEZ32x4, va))
  | Binop (op, a, b) -> (
      let va () = shadow_atom c a and vb () = shadow_atom c b in
      match op with
      | Add32 | Sub32 | Mul32 -> left c (uifu c (va ()) (vb ()))
      | Add64 | Sub64 | Mul64 -> left c (uifu c (va ()) (vb ()))
      | MulHiS32 | DivS32 | DivU32 -> pcast_to c I32 (uifu c (va ()) (vb ()))
      | Xor32 -> Binop (Or32, va (), vb ())
      | Xor64 -> Binop (Or64, va (), vb ())
      | And32 ->
          (* improved AND: a result bit is defined if both inputs defined,
             or either input is a defined 0 *)
          let u = assign c (Binop (Or32, va (), vb ())) in
          let ia = assign c (Binop (Or32, a, va ())) in
          let ib = assign c (Binop (Or32, b, vb ())) in
          Binop (And32, u, assign c (Binop (And32, ia, ib)))
      | And64 ->
          let u = assign c (Binop (Or64, va (), vb ())) in
          let ia = assign c (Binop (Or64, a, va ())) in
          let ib = assign c (Binop (Or64, b, vb ())) in
          Binop (And64, u, assign c (Binop (And64, ia, ib)))
      | Or32 ->
          (* a result bit is defined if both defined, or either a defined 1 *)
          let u = assign c (Binop (Or32, va (), vb ())) in
          let na = assign c (Unop (Not32, a)) in
          let nb' = assign c (Unop (Not32, b)) in
          let ia = assign c (Binop (Or32, na, va ())) in
          let ib = assign c (Binop (Or32, nb', vb ())) in
          Binop (And32, u, assign c (Binop (And32, ia, ib)))
      | Or64 ->
          let u = assign c (Binop (Or64, va (), vb ())) in
          let na = assign c (Unop (Not64, a)) in
          let nb' = assign c (Unop (Not64, b)) in
          let ia = assign c (Binop (Or64, na, va ())) in
          let ib = assign c (Binop (Or64, nb', vb ())) in
          Binop (And64, u, assign c (Binop (And64, ia, ib)))
      | Shl32 | Shr32 | Sar32 -> (
          match b with
          | Const _ -> Binop (op, va (), b)
          | _ ->
              (* shift by an unknown amount: if the amount is undefined at
                 all, everything is *)
              let vamt = pcast_to c I32 (vb ()) in
              let shifted = assign c (Binop (op, va (), b)) in
              Binop (Or32, shifted, vamt))
      | Shl64 | Shr64 | Sar64 -> (
          match b with
          | Const _ -> Binop (op, va (), b)
          | _ ->
              let vamt = pcast_to c I64 (vb ()) in
              let shifted = assign c (Binop (op, va (), b)) in
              Binop (Or64, shifted, vamt))
      | CmpEQ32 | CmpNE32 | CmpLT32S | CmpLE32S | CmpLT32U | CmpLE32U ->
          pcast_to c I1 (uifu c (va ()) (vb ()))
      | CmpEQ64 | CmpNE64 -> pcast_to c I1 (uifu c (va ()) (vb ()))
      | Cat32x2 -> Binop (Cat32x2, va (), vb ())
      | AddF64 | SubF64 | MulF64 | DivF64 | MinF64 | MaxF64 ->
          pcast_to c I64 (uifu c (va ()) (vb ()))
      | CmpEQF64 | CmpLTF64 | CmpLEF64 ->
          pcast_to c I1 (uifu c (va ()) (vb ()))
      | AndV128 ->
          let u = assign c (Binop (OrV128, va (), vb ())) in
          let ia = assign c (Binop (OrV128, a, va ())) in
          let ib = assign c (Binop (OrV128, b, vb ())) in
          Binop (AndV128, u, assign c (Binop (AndV128, ia, ib)))
      | OrV128 ->
          let u = assign c (Binop (OrV128, va (), vb ())) in
          let na = assign c (Unop (NotV128, a)) in
          let nb' = assign c (Unop (NotV128, b)) in
          let ia = assign c (Binop (OrV128, na, va ())) in
          let ib = assign c (Binop (OrV128, nb', vb ())) in
          Binop (AndV128, u, assign c (Binop (AndV128, ia, ib)))
      | XorV128 -> Binop (OrV128, va (), vb ())
      | Add32x4 | Sub32x4 | CmpEQ32x4 ->
          Unop (CmpNEZ32x4, assign c (Binop (OrV128, va (), vb ())))
      | Add8x16 | Sub8x16 ->
          (* per-byte pessimism via 32-bit lanes is close enough *)
          Unop (CmpNEZ32x4, assign c (Binop (OrV128, va (), vb ())))
      | Cat64x2 -> Binop (Cat64x2, va (), vb ()))
  | ITE (cond, t, f) ->
      complain_if_undefined c (shadow_atom c cond) 0;
      ITE (cond, shadow_atom c t, shadow_atom c f)
  | CCall (_, ty, args) ->
      (* pessimistic: if any argument has any undefined bit, the result is
         fully undefined *)
      let parts =
        List.map (fun a -> pcast_to c I32 (pcast_to c I32 (shadow_atom c a))) args
      in
      let any =
        List.fold_left
          (fun acc p -> assign c (Binop (Or32, acc, p)))
          (Const (CI32 0L)) parts
      in
      (match ty with I32 -> pcast_to c I32 any | _ -> pcast_to c I64 any)

(* origin of a (flat) rhs: which allocation the undefinedness (if any)
   of this value traces back to.  Merging picks the left operand's tag
   when nonzero — the same pragmatic rule real Memcheck's B-bit plane
   uses for binary ops. *)
let omerge c (a : expr) (b : expr) : expr =
  let nz = assign c (Unop (CmpNEZ32, a)) in
  assign c (ITE (nz, a, b))

let origin_rhs c (e : expr) : expr =
  match e with
  | Const _ | RdTmp _ -> origin_atom c e
  | Get (off, _) ->
      if off < GA.guest_state_used then Get (origin_of off, I32)
      else Const (CI32 0L)
  | Load (_, addr) ->
      let t = new_tmp c.nb I64 in
      emit c
        (Dirty
           {
             d_guard = Const (CI1 true);
             d_callee = c.st.h_load_origin;
             d_args = [ addr ];
             d_tmp = Some t;
             d_mfx = Mfx_none;
           });
      Unop (T64to32, RdTmp t)
  | Unop (_, a) -> origin_atom c a
  | Binop (_, a, b) ->
      let oa = assign c (origin_atom c a) in
      let ob = assign c (origin_atom c b) in
      omerge c oa ob
  | ITE (cond, t, f) -> ITE (cond, origin_atom c t, origin_atom c f)
  | CCall (_, _, args) ->
      List.fold_left
        (fun acc a ->
          let oa = assign c (origin_atom c a) in
          omerge c (assign c acc) oa)
        (Const (CI32 0L)) args

let store_origin_call c (addr : expr) (otag : expr) =
  let o64 = assign c (Unop (U32to64, otag)) in
  emit c
    (Dirty
       {
         d_guard = Const (CI1 true);
         d_callee = c.st.h_store_origin;
         d_args = [ addr; o64 ];
         d_tmp = None;
         d_mfx = Mfx_none;
       })

let storev_call c (addr : expr) (data_shadow : expr) (ty : ty) =
  let call n a v =
    emit c
      (Dirty
         {
           d_guard = Const (CI1 true);
           d_callee = c.st.h_storev.(n);
           d_args = [ a; v ];
           d_tmp = None;
           d_mfx = Mfx_none;
         })
  in
  match ty with
  | V128 ->
      let lo = assign c (Unop (V128to64, data_shadow)) in
      let hi = assign c (Unop (V128HIto64, data_shadow)) in
      call 3 addr lo;
      let hi_addr = assign c (Binop (Add32, addr, Const (CI32 8L))) in
      call 3 hi_addr hi
  | I64 | F64 ->
      let v =
        match type_of c.nb data_shadow with
        | F64 -> assign c (Unop (ReinterpF64asI64, data_shadow))
        | _ -> data_shadow
      in
      call 3 addr v
  | I32 -> call 2 addr (assign c (Unop (U32to64, data_shadow)))
  | I16 ->
      call 1 addr
        (assign c (Unop (U32to64, assign c (Unop (U16to32, data_shadow)))))
  | I8 ->
      call 0 addr
        (assign c (Unop (U32to64, assign c (Unop (U8to32, data_shadow)))))
  | I1 -> invalid_arg "I1 store"

(** Phase-3 instrumentation: flat IR in, flat IR out. *)
let instrument (st : state) (b : block) : block =
  let nb =
    { tyenv = Support.Vec.copy b.tyenv;
      stmts = Support.Vec.create NoOp;
      next = b.next;
      jumpkind = b.jumpkind }
  in
  let c = { st; nb; shadow = Hashtbl.create 64; origin = Hashtbl.create 64 } in
  let define_shadow t se =
    let sv = new_tmp nb (shadow_ty (tmp_ty nb t)) in
    Hashtbl.replace c.shadow t sv;
    emit c (WrTmp (sv, se))
  in
  let define_origin t oe =
    if st.origins then begin
      let ov = new_tmp nb I32 in
      Hashtbl.replace c.origin t ov;
      emit c (WrTmp (ov, oe))
    end
  in
  let origin_arg e = if st.origins then Some (assign c (origin_atom c e)) else None in
  Support.Vec.iter
    (fun s ->
      match s with
      | NoOp | IMark _ | AbiHint _ -> emit c s
      | WrTmp (t, e) ->
          (* shadow computation precedes the original (Figure 2) *)
          let se = shadow_rhs c e in
          define_shadow t se;
          if st.origins then define_origin t (origin_rhs c e);
          emit c s
      | Put (off, e) ->
          if off < GA.shadow_offset then begin
            emit c (Put (GA.shadow_of off, assign c (shadow_atom c e)));
            if st.origins && off < GA.guest_state_used then
              emit c (Put (origin_of off, assign c (origin_atom c e)))
          end;
          emit c s
      | Store (addr, d) ->
          complain_if_undefined ?origin:(origin_arg addr) c
            (shadow_atom c addr) 4;
          storev_call c addr (shadow_atom c d) (type_of nb d);
          if st.origins then
            store_origin_call c addr (assign c (origin_atom c d));
          emit c s
      | Exit (guard, _, _) ->
          complain_if_undefined ?origin:(origin_arg guard) c
            (shadow_atom c guard) 0;
          emit c s
      | Dirty d ->
          (* check guard and (integer) argument definedness *)
          complain_if_undefined ?origin:(origin_arg d.d_guard) c
            (shadow_atom c d.d_guard) 0;
          emit c s;
          (* the result, if any, and written guest state become defined *)
          (match d.d_tmp with
          | Some t ->
              define_shadow t (zero_shadow_const (tmp_ty nb t));
              define_origin t (Const (CI32 0L))
          | None -> ());
          List.iter
            (fun (off, size) ->
              if off < GA.shadow_offset then
                match size with
                | 4 -> emit c (Put (GA.shadow_of off, Const (CI32 0L)))
                | 8 -> emit c (Put (GA.shadow_of off, Const (CI64 0L)))
                | _ -> ())
            d.d_callee.c_fx_writes)
    b.stmts;
  (* check the block's computed jump target *)
  complain_if_undefined ?origin:(origin_arg b.next) c (shadow_atom c b.next) 4;
  nb

(* ------------------------------------------------------------------ *)
(* Heap replacement (R8)                                                *)
(* ------------------------------------------------------------------ *)

let read_stack_arg (st : state) (n : int) : int64 =
  (* inside a replacement stub: [sp] = return address, args above *)
  let sp = st.caps.read_guest GA.off_sp 4 in
  Aspace.read st.caps.mem (Int64.add sp (Int64.of_int (4 * n))) 4

let set_result (st : state) (v : int64) = st.caps.write_guest (GA.off_reg 0) 4 v

let do_malloc (st : state) (size : int) ~zero : int64 =
  let size = max size 1 in
  (* a real replacement allocator runs guest-side bookkeeping and paints
     red zones; charge comparable work *)
  st.caps.charge_cycles (200 + (size / 8) + if zero then size / 4 else 0);
  let base = st.caps.client_alloc (size + (2 * redzone)) in
  let addr = Int64.add base (Int64.of_int redzone) in
  Shadow_mem.make_noaccess st.sm base redzone;
  Shadow_mem.make_noaccess st.sm (Int64.add addr (Int64.of_int size)) redzone;
  if zero then begin
    for i = 0 to size - 1 do
      Aspace.write st.caps.mem (Int64.add addr (Int64.of_int i)) 1 0L
    done;
    Shadow_mem.make_defined st.sm addr size
  end
  else begin
    Shadow_mem.make_undefined st.sm addr size;
    if st.origins then
      set_origin_range st addr size
        (otag_for st ~descr:"a heap allocation" ~site:(st.caps.stack_trace ()))
  end;
  Hashtbl.replace st.live addr
    {
      hb_addr = addr;
      hb_size = size;
      hb_alloc_stack = st.caps.stack_trace ();
      hb_freed = false;
      hb_free_stack = [];
    };
  st.n_allocs <- st.n_allocs + 1;
  st.bytes_allocated <- Int64.add st.bytes_allocated (Int64.of_int size);
  addr

let do_free (st : state) (addr : int64) =
  st.caps.charge_cycles 150;
  if addr = 0L then ()
  else
    match Hashtbl.find_opt st.live addr with
    | None ->
        report st ~kind:"InvalidFree"
          ~msg:
            (Printf.sprintf "Invalid free() / delete / delete[]\n==err==  %s"
               (describe_addr st addr))
    | Some b ->
        Hashtbl.remove st.live addr;
        b.hb_freed <- true;
        b.hb_free_stack <- st.caps.stack_trace ();
        st.freed_ring <- b :: (if List.length st.freed_ring > 64 then List.filteri (fun i _ -> i < 63) st.freed_ring else st.freed_ring);
        Shadow_mem.make_noaccess st.sm b.hb_addr b.hb_size;
        st.n_frees <- st.n_frees + 1

let install_heap_replacement (st : state) =
  st.caps.replace_function ~symbol:"malloc"
    ~handler:(fun () ->
      let size = Int64.to_int (read_stack_arg st 1) in
      set_result st (do_malloc st size ~zero:false));
  st.caps.replace_function ~symbol:"calloc"
    ~handler:(fun () ->
      let n = Int64.to_int (read_stack_arg st 1) in
      let sz = Int64.to_int (read_stack_arg st 2) in
      set_result st (do_malloc st (n * sz) ~zero:true));
  st.caps.replace_function ~symbol:"free"
    ~handler:(fun () ->
      do_free st (read_stack_arg st 1);
      set_result st 0L);
  st.caps.replace_function ~symbol:"realloc"
    ~handler:(fun () ->
      let old = read_stack_arg st 1 in
      let size = Int64.to_int (read_stack_arg st 2) in
      if old = 0L then set_result st (do_malloc st size ~zero:false)
      else
        match Hashtbl.find_opt st.live old with
        | None ->
            report st ~kind:"InvalidFree"
              ~msg:(Printf.sprintf "realloc() of invalid pointer\n==err==  %s" (describe_addr st old));
            set_result st 0L
        | Some b ->
            (* like mremap: values and shadow values are copied (R8) *)
            let naddr = do_malloc st size ~zero:false in
            let n = min size b.hb_size in
            for i = 0 to n - 1 do
              let byte = Aspace.read st.caps.mem (Int64.add old (Int64.of_int i)) 1 in
              Aspace.write st.caps.mem (Int64.add naddr (Int64.of_int i)) 1 byte
            done;
            Shadow_mem.copy_range st.sm ~src:old ~dst:naddr n;
            do_free st old;
            set_result st naddr)

(* ------------------------------------------------------------------ *)
(* Leak checking                                                        *)
(* ------------------------------------------------------------------ *)

let leak_check (st : state) : int * int64 =
  if Hashtbl.length st.live = 0 then (0, 0L)
  else begin
    (* conservative mark-and-sweep: roots are the guest registers and
       every addressable aligned word outside heap payloads *)
    let reachable : (int64, unit) Hashtbl.t = Hashtbl.create 64 in
    let block_of_ptr (p : int64) : heap_block option =
      Hashtbl.fold
        (fun _ b acc ->
          if
            Int64.unsigned_compare b.hb_addr p <= 0
            && Int64.unsigned_compare p
                 (Int64.add b.hb_addr (Int64.of_int b.hb_size))
               < 0
          then Some b
          else acc)
        st.live None
    in
    let work = Queue.create () in
    let mark p =
      match block_of_ptr p with
      | Some b when not (Hashtbl.mem reachable b.hb_addr) ->
          Hashtbl.replace reachable b.hb_addr ();
          Queue.add b work
      | _ -> ()
    in
    (* registers *)
    for r = 0 to GA.n_regs - 1 do
      mark (st.caps.read_guest (GA.off_reg r) 4)
    done;
    (* memory outside heap payloads: scan addressable aligned words *)
    Array.iteri
      (fun chunk sm_state ->
        match sm_state with
        | Shadow_mem.Sm_noaccess -> ()
        | _ ->
            let base = Int64.of_int (chunk * 65536) in
            let i = ref 0 in
            while !i < 65536 do
              let addr = Int64.add base (Int64.of_int !i) in
              if
                Shadow_mem.get_abit st.sm addr
                && block_of_ptr addr = None
              then begin
                match Aspace.read st.caps.mem addr 4 with
                | v -> mark v
                | exception Aspace.Fault _ -> ()
              end;
              i := !i + 4
            done)
      st.sm.primary;
    (* propagate through reachable blocks *)
    while not (Queue.is_empty work) do
      let b = Queue.take work in
      let i = ref 0 in
      while !i + 4 <= b.hb_size do
        (match Aspace.read st.caps.mem (Int64.add b.hb_addr (Int64.of_int !i)) 4 with
        | v -> mark v
        | exception Aspace.Fault _ -> ());
        i := !i + 4
      done
    done;
    let leaked_blocks = ref 0 and leaked_bytes = ref 0L in
    Hashtbl.iter
      (fun addr b ->
        if not (Hashtbl.mem reachable addr) then begin
          incr leaked_blocks;
          leaked_bytes := Int64.add !leaked_bytes (Int64.of_int b.hb_size);
          ignore
            (Vg_core.Errors.record st.caps.errors ~kind:"Leak"
               ~msg:
                 (Printf.sprintf "%d bytes in 1 blocks are definitely lost"
                    b.hb_size)
               ~stack:b.hb_alloc_stack)
        end)
      st.live;
    (!leaked_blocks, !leaked_bytes)
  end

(* ------------------------------------------------------------------ *)
(* Event callbacks (Table 1, right column)                              *)
(* ------------------------------------------------------------------ *)

let install_events (st : state) =
  let ev = st.caps.events in
  ev.new_mem_startup <-
    Some
      (fun ~addr ~len ~defined ~what ->
        ignore what;
        if defined then Shadow_mem.make_defined st.sm addr len
        else Shadow_mem.make_undefined st.sm addr len);
  ev.new_mem_mmap <- Some (fun ~addr ~len -> Shadow_mem.make_defined st.sm addr len);
  ev.die_mem_munmap <- Some (fun ~addr ~len -> Shadow_mem.make_noaccess st.sm addr len);
  ev.new_mem_brk <-
    Some
      (fun ~addr ~len ->
        Shadow_mem.make_undefined st.sm addr len;
        if st.origins then
          set_origin_range st addr len
            (otag_for st ~descr:"a brk heap extension"
               ~site:(st.caps.stack_trace ())));
  ev.die_mem_brk <- Some (fun ~addr ~len -> Shadow_mem.make_noaccess st.sm addr len);
  ev.copy_mem_mremap <-
    Some (fun ~src ~dst ~len -> Shadow_mem.copy_range st.sm ~src ~dst len);
  ev.new_mem_stack <-
    Some
      (fun ~addr ~len ->
        Shadow_mem.make_undefined st.sm addr len;
        if st.origins then begin
          (* tag stack frames by the allocating code address, so the
             report names the function whose frame held the junk *)
          let site = [ st.caps.cur_eip () ] in
          set_origin_range st addr len
            (otag_for st ~descr:"a stack allocation" ~site)
        end);
  ev.die_mem_stack <- Some (fun ~addr ~len -> Shadow_mem.make_noaccess st.sm addr len);
  ev.pre_mem_read <-
    Some
      (fun ~syscall ~addr ~len ->
        (match Shadow_mem.find_unaddressable st.sm addr len with
        | Some bad ->
            report st ~kind:"SyscallParam"
              ~msg:
                (Printf.sprintf
                   "Syscall param %s points to unaddressable byte(s)\n==err==  %s"
                   syscall (describe_addr st bad))
        | None -> ());
        match Shadow_mem.find_undefined st.sm addr len with
        | Some _ ->
            report st ~kind:"SyscallParam"
              ~msg:
                (Printf.sprintf
                   "Syscall param %s points to uninitialised byte(s)" syscall)
        | None -> ());
  ev.pre_mem_read_asciiz <-
    Some
      (fun ~syscall ~addr ->
        (* walk to the NUL, checking as we go *)
        let rec go a n =
          if n > 4096 then ()
          else if not (Shadow_mem.get_abit st.sm a) then
            report st ~kind:"SyscallParam"
              ~msg:
                (Printf.sprintf
                   "Syscall param %s points to unaddressable byte(s)\n==err==  %s"
                   syscall (describe_addr st a))
          else if Shadow_mem.get_vbyte st.sm a <> 0 then
            report st ~kind:"SyscallParam"
              ~msg:
                (Printf.sprintf
                   "Syscall param %s points to uninitialised byte(s)" syscall)
          else
            match Aspace.read st.caps.mem a 1 with
            | 0L -> ()
            | _ -> go (Int64.add a 1L) (n + 1)
            | exception Aspace.Fault _ -> ()
        in
        go addr 0);
  ev.pre_mem_write <-
    Some
      (fun ~syscall ~addr ~len ->
        match Shadow_mem.find_unaddressable st.sm addr len with
        | Some bad ->
            report st ~kind:"SyscallParam"
              ~msg:
                (Printf.sprintf
                   "Syscall param %s points to unaddressable byte(s)\n==err==  %s"
                   syscall (describe_addr st bad))
        | None -> ());
  ev.post_mem_write <-
    Some (fun ~addr ~len -> Shadow_mem.make_defined st.sm addr len);
  ev.pre_reg_read <-
    Some
      (fun ~syscall ~off ~size ->
        let shadow = st.caps.read_guest (GA.shadow_of off) size in
        if shadow <> 0L then
          report st ~kind:"SyscallParam"
            ~msg:
              (Printf.sprintf
                 "Syscall param %s contains uninitialised byte(s)" syscall));
  ev.post_reg_write <-
    Some (fun ~syscall:_ ~off ~size -> st.caps.write_guest (GA.shadow_of off) size 0L)

(* ------------------------------------------------------------------ *)
(* Client requests                                                      *)
(* ------------------------------------------------------------------ *)

let client_request (st : state) ~(code : int64) ~(args : int64 array) :
    int64 option =
  let addr = args.(0) and len = Int64.to_int args.(1) in
  if code = Vg_core.Clientreq.mem_make_noaccess then begin
    Shadow_mem.make_noaccess st.sm addr len;
    Some 0L
  end
  else if code = Vg_core.Clientreq.mem_make_undefined then begin
    Shadow_mem.make_undefined st.sm addr len;
    Some 0L
  end
  else if code = Vg_core.Clientreq.mem_make_defined then begin
    Shadow_mem.make_defined st.sm addr len;
    Some 0L
  end
  else if code = Vg_core.Clientreq.mem_check_addressable then
    match Shadow_mem.find_unaddressable st.sm addr len with
    | Some bad -> Some bad
    | None -> Some 0L
  else if code = Vg_core.Clientreq.mem_check_defined then
    match Shadow_mem.find_undefined st.sm addr len with
    | Some bad -> Some bad
    | None -> Some 0L
  else if code = Vg_core.Clientreq.mem_count_errors then
    Some (Int64.of_int (Vg_core.Errors.total_errors st.caps.errors))
  else if code = Vg_core.Clientreq.mem_do_leak_check then begin
    let blocks, _bytes = leak_check st in
    Some (Int64.of_int blocks)
  end
  else None

(* ------------------------------------------------------------------ *)
(* The tool                                                             *)
(* ------------------------------------------------------------------ *)

(** Per-run Memcheck statistics, for tests and benches. *)
type mc_stats = {
  mc_allocs : int;
  mc_frees : int;
  mc_bytes : int64;
  mc_live_blocks : int;
}

let last_state : state option ref = ref None

let stats_of (st : state) : mc_stats =
  {
    mc_allocs = st.n_allocs;
    mc_frees = st.n_frees;
    mc_bytes = st.bytes_allocated;
    mc_live_blocks = Hashtbl.length st.live;
  }

let make_tool ~(track_origins : bool) : Vg_core.Tool.t =
  {
    name = (if track_origins then "memcheck-origins" else "memcheck");
    description =
      (if track_origins then
         "a memory error detector (with --track-origins)"
       else "a memory error detector (definedness + addressability)");
    shadow_ranges =
      ((GA.shadow_offset, GA.guest_state_used)
      :: (if track_origins then [ (origin_of 0, GA.guest_state_used) ] else []));
    create =
      (fun caps ->
        let dummy =
          { c_name = ""; c_id = -1; c_cost = 0; c_fx_reads = []; c_fx_writes = [] }
        in
        let st =
          {
            caps;
            sm = Shadow_mem.create ();
            live = Hashtbl.create 64;
            freed_ring = [];
            n_allocs = 0;
            n_frees = 0;
            bytes_allocated = 0L;
            leak_check_at_exit = true;
            h_loadv = Array.make 4 dummy;
            h_storev = Array.make 4 dummy;
            h_check_fail = Array.make 6 dummy;
            origins = track_origins;
            otag_info = Hashtbl.create 64;
            next_otag = 1;
            otag_cache = Hashtbl.create 64;
            word_origin = Hashtbl.create 1024;
            h_load_origin = dummy;
            h_store_origin = dummy;
            h_check_fail_o = Array.make 6 dummy;
          }
        in
        register_helpers st;
        install_events st;
        install_heap_replacement st;
        last_state := Some st;
        let snapshot, restore =
          Vg_core.Tool.marshal_pair
            ~save:(fun () ->
              ( st.sm, st.live, st.freed_ring, st.n_allocs, st.n_frees,
                st.bytes_allocated, st.leak_check_at_exit, st.otag_info,
                st.next_otag, st.otag_cache, st.word_origin ))
            ~load:(fun
                ( (sm : Shadow_mem.t), live, freed_ring, n_allocs, n_frees,
                  bytes_allocated, leak_check, otag_info, next_otag,
                  otag_cache, word_origin )
              ->
              Array.blit sm.Shadow_mem.primary 0 st.sm.Shadow_mem.primary 0
                (Array.length sm.Shadow_mem.primary);
              st.sm.Shadow_mem.n_cow <- sm.Shadow_mem.n_cow;
              let refill dst src =
                Hashtbl.reset dst;
                Hashtbl.iter (Hashtbl.replace dst) src
              in
              refill st.live live;
              refill st.otag_info otag_info;
              refill st.otag_cache otag_cache;
              refill st.word_origin word_origin;
              st.freed_ring <- freed_ring;
              st.n_allocs <- n_allocs;
              st.n_frees <- n_frees;
              st.bytes_allocated <- bytes_allocated;
              st.leak_check_at_exit <- leak_check;
              st.next_otag <- next_otag)
        in
        {
          instrument = (fun b -> instrument st b);
          fini =
            (fun ~exit_code:_ ->
              if st.leak_check_at_exit then begin
                let blocks, bytes = leak_check st in
                if blocks > 0 then
                  caps.output
                    (Printf.sprintf
                       "==err== LEAK SUMMARY: definitely lost: %Ld bytes in %d blocks\n"
                       bytes blocks)
              end;
              caps.output (Vg_core.Errors.summary caps.errors));
          client_request = (fun ~code ~args -> client_request st ~code ~args);
          snapshot;
          restore;
        });
  }

(** Plain Memcheck. *)
let tool : Vg_core.Tool.t = make_tool ~track_origins:false

(** Memcheck with origin tracking — the --track-origins extension: error
    reports say which allocation created the uninitialised value.  Costs
    roughly another shadow plane of instrumentation, as in the real
    thing. *)
let tool_origins : Vg_core.Tool.t = make_tool ~track_origins:true
