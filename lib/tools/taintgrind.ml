(** Taintgrind: a TaintCheck-style dynamic taint analysis (paper §1.2).

    Tracks which byte values are {e tainted} (from an untrusted source,
    or derived from tainted values) and detects dangerous uses: a
    tainted value reaching an indirect jump/call target or a store
    address is the classic control-flow-hijack signature TaintCheck
    detects.

    Like Memcheck it is a full shadow value tool — shadow registers in
    the ThreadState shadow block, shadow memory in a two-level map —
    but its transfer functions are simpler (taint is per-byte and
    propagation is plain union), which is why the paper's TaintCheck
    runs faster than Memcheck.  Taint enters via the [vg_taint_mem]
    client request (standing in for TaintCheck's socket interception). *)

open Vex_ir.Ir
module GA = Guest.Arch

type state = {
  caps : Vg_core.Tool.caps;
  sm : Shadow_mem.t;  (** vbyte <> 0 = tainted (A bits unused: all 1) *)
  mutable n_tainted_jumps : int;
  mutable n_sources : int;
  mutable h_load : callee array;
  mutable h_store : callee array;
  mutable h_sink : callee;
}

let report st msg =
  ignore
    (Vg_core.Errors.record st.caps.errors ~kind:"TaintedFlow" ~msg
       ~stack:(st.caps.stack_trace ()))

let register_helpers (st : state) =
  let reg = st.caps.register_helper in
  let mk_load size lg =
    st.h_load.(lg) <-
      reg
        ~name:(Printf.sprintf "tg_LOAD%d" (8 * size))
        ~cost:5 ~nargs:1
        (fun args -> snd (Shadow_mem.load st.sm args.(0) size))
  in
  mk_load 1 0;
  mk_load 2 1;
  mk_load 4 2;
  mk_load 8 3;
  let mk_store size lg =
    st.h_store.(lg) <-
      reg
        ~name:(Printf.sprintf "tg_STORE%d" (8 * size))
        ~cost:5 ~nargs:2
        (fun args ->
          ignore (Shadow_mem.store st.sm args.(0) size args.(1));
          0L)
  in
  mk_store 1 0;
  mk_store 2 1;
  mk_store 4 2;
  mk_store 8 3;
  st.h_sink <-
    reg ~name:"tg_tainted_jump" ~cost:10 ~nargs:1 (fun args ->
        st.n_tainted_jumps <- st.n_tainted_jumps + 1;
        report st
          (Printf.sprintf
             "Tainted value used as jump target (target 0x%LX)" args.(0));
        0L)

(* taint shadow: F64 carried as I64, like Memcheck *)
let shadow_ty = function F64 -> I64 | ty -> ty

let zero_shadow = function
  | I1 -> Const (CI1 false)
  | I8 -> Const (CI8 0)
  | I16 -> Const (CI16 0)
  | I32 -> Const (CI32 0L)
  | I64 | F64 -> Const (CI64 0L)
  | V128 -> Const (CV128 0)

type ictx = { st : state; nb : block; shadow : (tmp, tmp) Hashtbl.t }

let emit c s = add_stmt c.nb s

let assign c e =
  let t = new_tmp c.nb (type_of c.nb e) in
  emit c (WrTmp (t, e));
  RdTmp t

let shadow_of_tmp c t =
  match Hashtbl.find_opt c.shadow t with
  | Some s -> s
  | None ->
      let s = new_tmp c.nb (shadow_ty (tmp_ty c.nb t)) in
      Hashtbl.replace c.shadow t s;
      emit c (WrTmp (s, zero_shadow (tmp_ty c.nb t)));
      s

let shadow_atom c = function
  | Const k -> zero_shadow (type_of_const k)
  | RdTmp t -> RdTmp (shadow_of_tmp c t)
  | _ -> invalid_arg "shadow_atom"

(* union of taint, widened/narrowed as needed; target type [ty].  Any
   pair not handled directly is routed through I64, for which every
   conversion exists — so the recursion always terminates. *)
let rec taint_cast c (ty : ty) (v : expr) : expr =
  let vty = type_of c.nb v in
  if vty = ty then v
  else
    match (vty, ty) with
    | I1, I32 -> assign c (Unop (U1to32, v))
    | I8, I32 -> assign c (Unop (U8to32, v))
    | I16, I32 -> assign c (Unop (U16to32, v))
    | I32, I64 -> assign c (Unop (U32to64, v))
    | I64, I32 -> assign c (Unop (T64to32, v))
    | I32, I8 -> assign c (Unop (T32to8, v))
    | I32, I16 -> assign c (Unop (T32to16, v))
    | I32, I1 -> assign c (Unop (CmpNEZ32, v))
    | I64, I1 -> assign c (Unop (CmpNEZ64, v))
    | I8, I1 -> assign c (Unop (CmpNEZ8, v))
    | F64, I64 -> v
    | I64, F64 -> v
    | V128, I64 ->
        let lo = assign c (Unop (V128to64, v)) in
        let hi = assign c (Unop (V128HIto64, v)) in
        assign c (Binop (Or64, lo, hi))
    | I64, V128 -> assign c (Binop (Cat64x2, v, v))
    (* to-I64 legs for the remaining sources *)
    | I1, I64 -> taint_cast c I64 (assign c (Unop (U1to32, v)))
    | I8, I64 -> taint_cast c I64 (assign c (Unop (U8to32, v)))
    | I16, I64 -> taint_cast c I64 (assign c (Unop (U16to32, v)))
    (* from-I64 legs *)
    | I64, I8 -> assign c (Unop (T32to8, assign c (Unop (T64to32, v))))
    | I64, I16 -> assign c (Unop (T32to16, assign c (Unop (T64to32, v))))
    | _, _ ->
        (* generic path: vty -> I64 -> ty, both legs direct *)
        let mid = taint_cast c I64 v in
        taint_cast c ty mid

let union c a b =
  match type_of c.nb a with
  | I1 -> assign c (ITE (a, Const (CI1 true), b))
  | I8 | I16 ->
      let a' = taint_cast c I32 a and b' = taint_cast c I32 b in
      taint_cast c (type_of c.nb a) (assign c (Binop (Or32, a', b')))
  | I32 -> assign c (Binop (Or32, a, b))
  | I64 | F64 -> assign c (Binop (Or64, a, b))
  | V128 -> assign c (Binop (OrV128, a, b))

let shadow_rhs c (e : expr) : expr =
  match e with
  | Const _ | RdTmp _ -> shadow_atom c e
  | Get (off, ty) ->
      if off >= GA.shadow_offset then zero_shadow ty
      else Get (GA.shadow_of off, shadow_ty ty)
  | Load (ty, addr) ->
      let call n a =
        let t = new_tmp c.nb I64 in
        emit c
          (Dirty
             { d_guard = Const (CI1 true); d_callee = c.st.h_load.(n);
               d_args = [ a ]; d_tmp = Some t; d_mfx = Mfx_none });
        RdTmp t
      in
      (match ty with
      | V128 ->
          let lo = call 3 addr in
          let hi_addr = assign c (Binop (Add32, addr, Const (CI32 8L))) in
          let hi = call 3 hi_addr in
          Binop (Cat64x2, hi, lo)
      | I64 | F64 -> call 3 addr
      | I32 -> Unop (T64to32, call 2 addr)
      | I16 -> Unop (T32to16, assign c (Unop (T64to32, call 1 addr)))
      | I8 -> Unop (T32to8, assign c (Unop (T64to32, call 0 addr)))
      | I1 -> invalid_arg "I1 load")
  | Unop (op, a) -> (
      let va = shadow_atom c a in
      let _, rty = unop_sig op in
      match op with
      | Not1 | Not32 | Not64 | Neg32 | Neg64 | NegF64 | AbsF64 | SqrtF64
      | ReinterpF64asI64 | ReinterpI64asF64 | NotV128 | Left32 | Left64
      | CmpwNEZ32 | CmpwNEZ64 | Clz32 | Ctz32 ->
          taint_cast c (shadow_ty rty) va
      | _ -> taint_cast c (shadow_ty rty) va)
  | Binop (op, a, b) ->
      let va = shadow_atom c a and vb = shadow_atom c b in
      let _, _, rty = binop_sig op in
      let va' = taint_cast c (shadow_ty rty) va in
      let vb' = taint_cast c (shadow_ty rty) vb in
      RdTmp
        (match union c va' vb' with
        | RdTmp t -> t
        | e ->
            let t = new_tmp c.nb (type_of c.nb e) in
            emit c (WrTmp (t, e));
            t)
  | ITE (cond, t, f) -> ITE (cond, shadow_atom c t, shadow_atom c f)
  | CCall (_, ty, args) ->
      let parts = List.map (fun a -> taint_cast c I64 (shadow_atom c a)) args in
      let any =
        List.fold_left
          (fun acc p -> assign c (Binop (Or64, acc, p)))
          (Const (CI64 0L)) parts
      in
      (match ty with I32 -> Unop (T64to32, any) | _ -> (match any with RdTmp t -> RdTmp t | e -> e))

let store_taint c addr data_shadow ty =
  let call n a v =
    emit c
      (Dirty
         { d_guard = Const (CI1 true); d_callee = c.st.h_store.(n);
           d_args = [ a; v ]; d_tmp = None; d_mfx = Mfx_none })
  in
  match ty with
  | V128 ->
      let lo = assign c (Unop (V128to64, data_shadow)) in
      let hi = assign c (Unop (V128HIto64, data_shadow)) in
      call 3 addr lo;
      let hi_addr = assign c (Binop (Add32, addr, Const (CI32 8L))) in
      call 3 hi_addr hi
  | I64 | F64 -> call 3 addr (taint_cast c I64 data_shadow)
  | I32 -> call 2 addr (taint_cast c I64 (taint_cast c I32 data_shadow))
  | I16 | I8 ->
      call
        (if ty = I8 then 0 else 1)
        addr
        (taint_cast c I64 (taint_cast c I32 data_shadow))
  | I1 -> invalid_arg "I1 store"

(* sink check: call tg_tainted_jump if shadow of target is nonzero *)
let check_sink c (target : expr) (shadow : expr) =
  let nz =
    match type_of c.nb shadow with
    | I32 -> assign c (Unop (CmpNEZ32, shadow))
    | I64 -> assign c (Unop (CmpNEZ64, shadow))
    | _ -> assign c (Unop (CmpNEZ32, taint_cast c I32 shadow))
  in
  emit c
    (Dirty
       { d_guard = nz; d_callee = c.st.h_sink; d_args = [ target ];
         d_tmp = None; d_mfx = Mfx_none })

let instrument (st : state) (b : block) : block =
  let nb =
    { tyenv = Support.Vec.copy b.tyenv;
      stmts = Support.Vec.create NoOp;
      next = b.next;
      jumpkind = b.jumpkind }
  in
  let c = { st; nb; shadow = Hashtbl.create 64 } in
  Support.Vec.iter
    (fun s ->
      match s with
      | NoOp | IMark _ | AbiHint _ | Exit _ -> emit c s
      | WrTmp (t, e) ->
          let se = shadow_rhs c e in
          let sv = new_tmp nb (shadow_ty (tmp_ty nb t)) in
          Hashtbl.replace c.shadow t sv;
          emit c (WrTmp (sv, se));
          emit c s
      | Put (off, e) ->
          if off < GA.shadow_offset then
            emit c (Put (GA.shadow_of off, assign c (shadow_atom c e)));
          emit c s
      | Store (addr, d) ->
          store_taint c addr (shadow_atom c d) (type_of nb d);
          emit c s
      | Dirty d ->
          emit c s;
          (match d.d_tmp with
          | Some t ->
              let sv = new_tmp nb (shadow_ty (tmp_ty nb t)) in
              Hashtbl.replace c.shadow t sv;
              emit c (WrTmp (sv, zero_shadow (tmp_ty nb t)))
          | None -> ()))
    b.stmts;
  (* sink: a computed (non-constant) jump target must be untainted *)
  (match b.next with
  | Const _ -> ()
  | next -> check_sink c next (shadow_atom c next));
  nb

let client_request (st : state) ~code ~(args : int64 array) : int64 option =
  let addr = args.(0) and len = Int64.to_int args.(1) in
  if code = Vg_core.Clientreq.taint_mark then begin
    st.n_sources <- st.n_sources + 1;
    Shadow_mem.set_range st.sm addr len ~a:true ~vbyte:0xFF;
    Some 0L
  end
  else if code = Vg_core.Clientreq.taint_clear then begin
    Shadow_mem.set_range st.sm addr len ~a:true ~vbyte:0x00;
    Some 0L
  end
  else if code = Vg_core.Clientreq.taint_check then
    match Shadow_mem.find_undefined st.sm addr len with
    | Some bad -> Some bad
    | None -> Some 0L
  else None

let tool : Vg_core.Tool.t =
  {
    name = "taintgrind";
    description = "a TaintCheck-style taint tracker";
    shadow_ranges = [ (GA.shadow_offset, GA.guest_state_used) ];
    create =
      (fun caps ->
        let dummy =
          { c_name = ""; c_id = -1; c_cost = 0; c_fx_reads = []; c_fx_writes = [] }
        in
        let st =
          {
            caps;
            sm = Shadow_mem.create ();
            n_tainted_jumps = 0;
            n_sources = 0;
            h_load = Array.make 4 dummy;
            h_store = Array.make 4 dummy;
            h_sink = dummy;
          }
        in
        register_helpers st;
        (* memory starts untainted and "addressable" (A bits unused) *)
        let ev = caps.events in
        ev.new_mem_startup <-
          Some (fun ~addr ~len ~defined:_ ~what:_ ->
              Shadow_mem.set_range st.sm addr len ~a:true ~vbyte:0);
        ev.new_mem_mmap <-
          Some (fun ~addr ~len -> Shadow_mem.set_range st.sm addr len ~a:true ~vbyte:0);
        ev.new_mem_brk <-
          Some (fun ~addr ~len -> Shadow_mem.set_range st.sm addr len ~a:true ~vbyte:0);
        ev.copy_mem_mremap <-
          Some (fun ~src ~dst ~len -> Shadow_mem.copy_range st.sm ~src ~dst len);
        let snapshot, restore =
          Vg_core.Tool.marshal_pair
            ~save:(fun () -> (st.sm, st.n_tainted_jumps, st.n_sources))
            ~load:(fun ((sm : Shadow_mem.t), tainted_jumps, sources) ->
              Array.blit sm.Shadow_mem.primary 0 st.sm.Shadow_mem.primary 0
                (Array.length sm.Shadow_mem.primary);
              st.sm.Shadow_mem.n_cow <- sm.Shadow_mem.n_cow;
              st.n_tainted_jumps <- tainted_jumps;
              st.n_sources <- sources)
        in
        {
          instrument = (fun b -> instrument st b);
          fini =
            (fun ~exit_code:_ ->
              caps.output
                (Printf.sprintf
                   "==taintgrind== taint sources: %d  tainted control transfers: %d\n"
                   st.n_sources st.n_tainted_jumps);
              caps.output (Vg_core.Errors.summary caps.errors));
          client_request = (fun ~code ~args -> client_request st ~code ~args);
          snapshot;
          restore;
        });
  }
