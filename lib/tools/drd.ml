(** DRD-lite: an Eraser-style lockset data-race detector.

    The classic lockset discipline (Savage et al., "Eraser"): every
    shared location should be protected by at least one lock that is
    held on {e every} access.  For each location we maintain the set of
    candidate locks — initialised to the locks held at the first
    shared access and refined by intersection on every later one — and
    report a race when the set becomes empty with a write involved.

    Locks are {b tool-arbitrated}: the guest asks for a lock with the
    [drd_lock_acquire] client request, which atomically (client
    requests run between blocks, on whichever simulated core the
    requesting thread is pinned to) either grants it — returning 1 —
    or refuses with 0, and the guest spins with [yield()] between
    attempts.  That makes acquisition correct under any [--cores N]
    without the tool needing guest atomics, and gives the core's
    [lock_handoffs] counter a true cross-thread handoff to count.

    Per-location state machine (word granularity, keyed on the access
    address):

    - {e virgin} -> first access puts it in {e exclusive(tid)}: no
      lockset is tracked while one thread owns the location (thread
      start-up handoff is not a race);
    - {e exclusive(t)} -> an access by another thread moves it to
      {e shared}, initialising the candidate set to the locks the
      accessor holds at the transition.  Writes made while still
      exclusive are forgotten at this point (Eraser's shared-read-only
      state): a location written during single-threaded start-up and
      then only read concurrently is not a race;
    - {e shared} -> every access intersects the candidate set with the
      accessor's held set; if the set empties and a write happened at
      or after the sharing transition, the (address, pc) pair is
      reported — once per pair.

    Reports are emitted at [fini], sorted by (address, pc): the output
    is deterministic for a deterministic schedule, hence bit-identical
    across [--cores] values that produce the same interleaving. *)

open Vex_ir.Ir

type astate = {
  mutable as_owner : int;  (** exclusive owner tid; -1 once shared *)
  mutable as_lockset : int64 list option;
      (** candidate locks (sorted); [None] until the location goes
          shared *)
  mutable as_written : bool;
      (** a write has touched it at or after the sharing transition *)
  mutable as_reported : bool;
}

type tstate = {
  held : (int, int64 list) Hashtbl.t;  (** tid -> held locks (sorted) *)
  locks : (int64, int) Hashtbl.t;  (** lock id -> owner tid *)
  last_owner : (int64, int) Hashtbl.t;  (** lock id -> previous owner *)
  addrs : (int64, astate) Hashtbl.t;
  races : (int64 * int64, unit) Hashtbl.t;  (** (addr, pc) reported *)
  mutable n_accesses : int64;
  mutable n_acquires : int64;
  mutable n_contended : int64;  (** refused try-acquires *)
  mutable n_handoffs : int64;  (** acquisitions from a different owner *)
}

let the_state : tstate option ref = ref None

let held_of (st : tstate) (tid : int) : int64 list =
  Option.value ~default:[] (Hashtbl.find_opt st.held tid)

let intersect a b = List.filter (fun l -> List.mem l b) a

let tool : Vg_core.Tool.t =
  {
    name = "drd";
    description = "a lockset-based data race detector";
    shadow_ranges = [];
    create =
      (fun caps ->
        let st =
          {
            held = Hashtbl.create 8;
            locks = Hashtbl.create 8;
            last_owner = Hashtbl.create 8;
            addrs = Hashtbl.create 1024;
            races = Hashtbl.create 8;
            n_accesses = 0L;
            n_acquires = 0L;
            n_contended = 0L;
            n_handoffs = 0L;
          }
        in
        the_state := Some st;
        let access ~(write : bool) (addr : int64) (pc : int64) =
          st.n_accesses <- Int64.add st.n_accesses 1L;
          let tid = caps.cur_tid () in
          let a =
            match Hashtbl.find_opt st.addrs addr with
            | Some a -> a
            | None ->
                let a =
                  { as_owner = tid; as_lockset = None; as_written = false;
                    as_reported = false }
                in
                Hashtbl.replace st.addrs addr a;
                a
          in
          (match a.as_lockset with
          | None when a.as_owner = tid -> ()  (* still exclusive *)
          | None ->
              (* exclusive -> shared: exclusive-phase writes are start-up
                 handoff, not concurrency — forget them *)
              a.as_owner <- -1;
              a.as_written <- write;
              a.as_lockset <- Some (held_of st tid)
          | Some ls ->
              if write then a.as_written <- true;
              a.as_lockset <- Some (intersect ls (held_of st tid)));
          match a.as_lockset with
          | Some [] when a.as_written && not a.as_reported ->
              a.as_reported <- true;
              Hashtbl.replace st.races (addr, pc) ()
          | _ -> ()
        in
        let h_load =
          caps.register_helper ~name:"drd_load" ~cost:4 ~nargs:2 (fun args ->
              access ~write:false args.(0) args.(1);
              0L)
        in
        let h_store =
          caps.register_helper ~name:"drd_store" ~cost:4 ~nargs:2 (fun args ->
              access ~write:true args.(0) args.(1);
              0L)
        in
        let instrument (b : block) : block =
          let nb =
            { tyenv = Support.Vec.copy b.tyenv;
              stmts = Support.Vec.create NoOp;
              next = b.next;
              jumpkind = b.jumpkind }
          in
          let cur_pc = ref 0L in
          let call callee args =
            add_stmt nb
              (Dirty
                 { d_guard = i1 true; d_callee = callee; d_args = args;
                   d_tmp = None; d_mfx = Mfx_none })
          in
          Support.Vec.iter
            (fun s ->
              (match s with
              | IMark (pc, _) -> cur_pc := pc
              | WrTmp (_, Load (_, addr)) ->
                  call h_load [ addr; i32 !cur_pc ]
              | Store (addr, _) -> call h_store [ addr; i32 !cur_pc ]
              | _ -> ());
              add_stmt nb s)
            b.stmts;
          nb
        in
        let client_request ~code ~(args : int64 array) =
          if code = Vg_core.Clientreq.drd_lock_acquire then begin
            let id = args.(0) in
            let tid = caps.cur_tid () in
            match Hashtbl.find_opt st.locks id with
            | Some owner when owner <> tid ->
                st.n_contended <- Int64.add st.n_contended 1L;
                Some 0L
            | _ ->
                Hashtbl.replace st.locks id tid;
                st.n_acquires <- Int64.add st.n_acquires 1L;
                (match Hashtbl.find_opt st.last_owner id with
                | Some prev when prev <> tid ->
                    st.n_handoffs <- Int64.add st.n_handoffs 1L
                | _ -> ());
                Hashtbl.replace st.last_owner id tid;
                let held = held_of st tid in
                if not (List.mem id held) then
                  Hashtbl.replace st.held tid (List.sort compare (id :: held));
                Some 1L
          end
          else if code = Vg_core.Clientreq.drd_lock_release then begin
            let id = args.(0) in
            let tid = caps.cur_tid () in
            (match Hashtbl.find_opt st.locks id with
            | Some owner when owner = tid ->
                Hashtbl.remove st.locks id;
                Hashtbl.replace st.held tid
                  (List.filter (fun l -> l <> id) (held_of st tid))
            | _ -> ());
            Some 0L
          end
          else None
        in
        let snapshot, restore =
          Vg_core.Tool.marshal_pair
            ~save:(fun () -> st)
            ~load:(fun (s : tstate) ->
              let refill dst src =
                Hashtbl.reset dst;
                Hashtbl.iter (Hashtbl.replace dst) src
              in
              refill st.held s.held;
              refill st.locks s.locks;
              refill st.last_owner s.last_owner;
              refill st.addrs s.addrs;
              refill st.races s.races;
              st.n_accesses <- s.n_accesses;
              st.n_acquires <- s.n_acquires;
              st.n_contended <- s.n_contended;
              st.n_handoffs <- s.n_handoffs)
        in
        {
          instrument;
          fini =
            (fun ~exit_code:_ ->
              let races =
                Hashtbl.fold (fun k () acc -> k :: acc) st.races []
                |> List.sort compare
              in
              List.iter
                (fun (addr, pc) ->
                  caps.output
                    (Printf.sprintf
                       "==drd== possible data race on 0x%LX at %s\n" addr
                       (caps.symbolize pc)))
                races;
              caps.output
                (Printf.sprintf
                   "==drd== accesses: %Ld  acquires: %Ld  contended: %Ld  \
                    lock handoffs: %Ld  races: %d\n"
                   st.n_accesses st.n_acquires st.n_contended st.n_handoffs
                   (List.length races)));
          client_request;
          snapshot;
          restore;
        });
  }
