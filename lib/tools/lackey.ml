(** Lackey: the classic memory-access tracer example tool.

    The paper uses this tool shape for the tool-writing-effort
    comparison ("a tool that traces memory accesses would be about 30
    lines of code in Pin, and about 100 in Valgrind", §5.1) — and indeed
    the instrumentation below must walk the flat IR looking for [Load]
    and [Store], where a C&A framework hands you ready-made "this
    instruction reads memory" callbacks (see {!Caa} for the 30-line
    version of the same tool). *)

open Vex_ir.Ir

type record = { acc_write : bool; acc_addr : int64; acc_size : int }

type tstate = {
  mutable trace : record list;  (** newest first *)
  mutable n_loads : int64;
  mutable n_stores : int64;
  mutable n_instrs : int64;
  mutable keep_trace : bool;  (** record individual accesses (memory!) *)
  mutable limit : int;
}

let the_state : tstate option ref = ref None

let tool : Vg_core.Tool.t =
  {
    name = "lackey";
    description = "an example memory-access tracer";
    shadow_ranges = [];
    create =
      (fun caps ->
        let st =
          { trace = []; n_loads = 0L; n_stores = 0L; n_instrs = 0L;
            keep_trace = false; limit = 100_000 }
        in
        the_state := Some st;
        let note ~write addr size =
          if write then st.n_stores <- Int64.add st.n_stores 1L
          else st.n_loads <- Int64.add st.n_loads 1L;
          if st.keep_trace && List.length st.trace < st.limit then
            st.trace <-
              { acc_write = write; acc_addr = addr; acc_size = size } :: st.trace
        in
        let h_load =
          caps.register_helper ~name:"lk_load" ~cost:4 ~nargs:2 (fun args ->
              note ~write:false args.(0) (Int64.to_int args.(1));
              0L)
        in
        let h_store =
          caps.register_helper ~name:"lk_store" ~cost:4 ~nargs:2 (fun args ->
              note ~write:true args.(0) (Int64.to_int args.(1));
              0L)
        in
        let h_instr =
          caps.register_helper ~name:"lk_instr" ~cost:2 ~nargs:0 (fun _ ->
              st.n_instrs <- Int64.add st.n_instrs 1L;
              0L)
        in
        let instrument (b : block) : block =
          let nb =
            { tyenv = Support.Vec.copy b.tyenv;
              stmts = Support.Vec.create NoOp;
              next = b.next;
              jumpkind = b.jumpkind }
          in
          let call callee args =
            add_stmt nb
              (Dirty
                 { d_guard = i1 true; d_callee = callee; d_args = args;
                   d_tmp = None; d_mfx = Mfx_none })
          in
          Support.Vec.iter
            (fun s ->
              (match s with
              | IMark _ -> ()
              | WrTmp (_, Load (ty, addr)) ->
                  call h_load [ addr; i32 (Int64.of_int (size_of_ty ty)) ]
              | Store (addr, d) ->
                  call h_store
                    [ addr; i32 (Int64.of_int (size_of_ty (type_of nb d))) ]
              | _ -> ());
              add_stmt nb s;
              match s with
              | IMark _ -> call h_instr []
              | _ -> ())
            b.stmts;
          nb
        in
        let snapshot, restore =
          Vg_core.Tool.marshal_pair
            ~save:(fun () ->
              ( st.trace, st.n_loads, st.n_stores, st.n_instrs, st.keep_trace,
                st.limit ))
            ~load:(fun (trace, loads, stores, instrs, keep, limit) ->
              st.trace <- trace;
              st.n_loads <- loads;
              st.n_stores <- stores;
              st.n_instrs <- instrs;
              st.keep_trace <- keep;
              st.limit <- limit)
        in
        {
          instrument;
          fini =
            (fun ~exit_code:_ ->
              caps.output
                (Printf.sprintf
                   "==lackey== instructions: %Ld  loads: %Ld  stores: %Ld\n"
                   st.n_instrs st.n_loads st.n_stores));
          client_request = (fun ~code:_ ~args:_ -> None);
          snapshot;
          restore;
        });
  }
