(** Cachegrind: the cache profiler distributed with Valgrind (§5.1 gives
    its size, 2,431 lines of C, as a "medium" tool data point).

    Instruments every instruction with an I1 fetch and every load/store
    with a D1 access, feeding the {!Cachesim} hierarchy.  Per-PC counters
    give a hot-spot report, like cg_annotate's. *)

open Vex_ir.Ir

type pc_counts = {
  mutable c_ir : int64;
  mutable c_i1m : int64;
  mutable c_dr : int64;
  mutable c_d1mr : int64;
  mutable c_dw : int64;
  mutable c_d1mw : int64;
}

type state = {
  caps : Vg_core.Tool.caps;
  h : Cachesim.hierarchy;
  per_pc : (int64, pc_counts) Hashtbl.t;
  mutable track_per_pc : bool;
}

let the_state : state option ref = ref None

let counts_for (st : state) (pc : int64) : pc_counts =
  match Hashtbl.find_opt st.per_pc pc with
  | Some c -> c
  | None ->
      let c =
        { c_ir = 0L; c_i1m = 0L; c_dr = 0L; c_d1mr = 0L; c_dw = 0L; c_d1mw = 0L }
      in
      Hashtbl.replace st.per_pc pc c;
      c

(** Top-N hottest PCs by instruction count (for the annotate-style
    report). *)
let hottest (st : state) (n : int) : (int64 * pc_counts) list =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.per_pc []
  |> List.sort (fun (_, a) (_, b) -> compare b.c_ir a.c_ir)
  |> List.filteri (fun i _ -> i < n)

let tool : Vg_core.Tool.t =
  {
    name = "cachegrind";
    description = "a cache profiler (I1/D1/L2 simulation)";
    shadow_ranges = [];
    create =
      (fun caps ->
        let st =
          {
            caps;
            h = Cachesim.create_hierarchy ();
            per_pc = Hashtbl.create 1024;
            track_per_pc = true;
          }
        in
        the_state := Some st;
        let h_instr =
          caps.register_helper ~name:"cg_instr" ~cost:12 ~nargs:2 (fun args ->
              Cachesim.instr_fetch st.h args.(0) (Int64.to_int args.(1));
              if st.track_per_pc then begin
                let c = counts_for st args.(0) in
                c.c_ir <- Int64.add c.c_ir 1L
              end;
              0L)
        in
        let h_read =
          caps.register_helper ~name:"cg_data_read" ~cost:12 ~nargs:3
            (fun args ->
              Cachesim.data_read st.h args.(0) (Int64.to_int args.(1));
              if st.track_per_pc then begin
                let c = counts_for st args.(2) in
                c.c_dr <- Int64.add c.c_dr 1L
              end;
              0L)
        in
        let h_write =
          caps.register_helper ~name:"cg_data_write" ~cost:12 ~nargs:3
            (fun args ->
              Cachesim.data_write st.h args.(0) (Int64.to_int args.(1));
              if st.track_per_pc then begin
                let c = counts_for st args.(2) in
                c.c_dw <- Int64.add c.c_dw 1L
              end;
              0L)
        in
        let instrument (b : block) : block =
          let nb =
            { tyenv = Support.Vec.copy b.tyenv;
              stmts = Support.Vec.create NoOp;
              next = b.next;
              jumpkind = b.jumpkind }
          in
          let cur_pc = ref 0L in
          let call callee args =
            add_stmt nb
              (Dirty
                 { d_guard = i1 true; d_callee = callee; d_args = args;
                   d_tmp = None; d_mfx = Mfx_none })
          in
          Support.Vec.iter
            (fun s ->
              (match s with
              | IMark (addr, len) ->
                  cur_pc := addr;
                  add_stmt nb s;
                  call h_instr [ i32 addr; i32 (Int64.of_int len) ]
              | WrTmp (_, Load (ty, addr)) ->
                  call h_read
                    [ addr; i32 (Int64.of_int (size_of_ty ty)); i32 !cur_pc ];
                  add_stmt nb s
              | Store (addr, d) ->
                  call h_write
                    [ addr; i32 (Int64.of_int (size_of_ty (type_of nb d)));
                      i32 !cur_pc ];
                  add_stmt nb s
              | s -> add_stmt nb s))
            b.stmts;
          nb
        in
        let restore_cache (dst : Cachesim.t) (src : Cachesim.t) =
          Array.blit src.Cachesim.tags 0 dst.Cachesim.tags 0
            (Array.length src.Cachesim.tags);
          Array.blit src.Cachesim.lru 0 dst.Cachesim.lru 0
            (Array.length src.Cachesim.lru);
          dst.Cachesim.clock <- src.Cachesim.clock;
          dst.Cachesim.accesses <- src.Cachesim.accesses;
          dst.Cachesim.misses <- src.Cachesim.misses
        in
        let snapshot, restore =
          Vg_core.Tool.marshal_pair
            ~save:(fun () -> (st.h, st.per_pc, st.track_per_pc))
            ~load:(fun ((h : Cachesim.hierarchy), per_pc, track) ->
              restore_cache st.h.Cachesim.i1 h.Cachesim.i1;
              restore_cache st.h.Cachesim.d1 h.Cachesim.d1;
              restore_cache st.h.Cachesim.l2 h.Cachesim.l2;
              st.h.Cachesim.ir <- h.Cachesim.ir;
              st.h.Cachesim.i1_misses <- h.Cachesim.i1_misses;
              st.h.Cachesim.l2i_misses <- h.Cachesim.l2i_misses;
              st.h.Cachesim.dr <- h.Cachesim.dr;
              st.h.Cachesim.d1r_misses <- h.Cachesim.d1r_misses;
              st.h.Cachesim.l2dr_misses <- h.Cachesim.l2dr_misses;
              st.h.Cachesim.dw <- h.Cachesim.dw;
              st.h.Cachesim.d1w_misses <- h.Cachesim.d1w_misses;
              st.h.Cachesim.l2dw_misses <- h.Cachesim.l2dw_misses;
              Hashtbl.reset st.per_pc;
              Hashtbl.iter (Hashtbl.replace st.per_pc) per_pc;
              st.track_per_pc <- track)
        in
        {
          instrument;
          fini =
            (fun ~exit_code:_ ->
              caps.output "==cachegrind== summary:\n";
              caps.output (Cachesim.summary st.h));
          client_request = (fun ~code:_ ~args:_ -> None);
          snapshot;
          restore;
        });
  }
