(** Redux: a dynamic dataflow tracer after Nethercote & Mycroft (paper
    §1.2, reference [17]): "creates a dynamic dataflow graph, a
    visualisation of a program's entire computation; from the graph one
    can see all the prior operations that contributed to each value's
    creation".

    The shadow of every value is a node id in a growing DAG; every IR
    operation allocates a node whose edges point at the operand nodes.
    At exit the tool emits the sub-DAG reaching the program's exit code,
    in Graphviz DOT.  Every operation becomes a helper call, so Redux is
    spectacularly slow — "not practical for anything more than toy
    programs", which this reproduction faithfully reproduces. *)

open Vex_ir.Ir
module GA = Guest.Arch

type node = { n_op : string; n_args : int list; n_const : int64 option }

type state = {
  caps : Vg_core.Tool.caps;
  nodes : node Support.Vec.t;
  const_cache : (int64, int) Hashtbl.t;
  word_shadow : (int64, int) Hashtbl.t;  (** memory addr -> node id *)
  mutable h_mk : callee;  (** (opcode-tag, a, b) -> node id *)
  mutable h_load : callee;
  mutable h_store : callee;
  mutable truncated : bool;
  max_nodes : int;
}

(* operation tags passed to the mk-node helper (kept human-readable) *)
let op_names =
  [| "add"; "sub"; "mul"; "div"; "and"; "or"; "xor"; "shift"; "cmp"; "neg";
     "not"; "widen"; "narrow"; "fp"; "vec"; "ccall"; "ite"; "other" |]

let mk_node (st : state) op args const =
  if Support.Vec.length st.nodes >= st.max_nodes then begin
    st.truncated <- true;
    0
  end
  else begin
    Support.Vec.push st.nodes { n_op = op; n_args = args; n_const = const };
    Support.Vec.length st.nodes - 1
  end

let const_node (st : state) (v : int64) : int =
  match Hashtbl.find_opt st.const_cache v with
  | Some id -> id
  | None ->
      let id = mk_node st "const" [] (Some v) in
      Hashtbl.replace st.const_cache v id;
      id

let register_helpers (st : state) =
  let reg = st.caps.register_helper in
  st.h_mk <-
    reg ~name:"rx_mk_node" ~cost:12 ~nargs:3 (fun args ->
        let tag = Int64.to_int args.(0) in
        let op =
          if tag >= 0 && tag < Array.length op_names then op_names.(tag)
          else "other"
        in
        Int64.of_int
          (mk_node st op [ Int64.to_int args.(1); Int64.to_int args.(2) ] None));
  st.h_load <-
    reg ~name:"rx_load" ~cost:8 ~nargs:1 (fun args ->
        let a = Int64.logand args.(0) (Int64.lognot 3L) in
        match Hashtbl.find_opt st.word_shadow a with
        | Some id -> Int64.of_int id
        | None -> Int64.of_int (mk_node st "mem-in" [] None));
  st.h_store <-
    reg ~name:"rx_store" ~cost:8 ~nargs:2 (fun args ->
        Hashtbl.replace st.word_shadow
          (Int64.logand args.(0) (Int64.lognot 3L))
          (Int64.to_int args.(1));
        0L)

let tag_of_binop = function
  | Add32 | Add64 -> 0
  | Sub32 | Sub64 -> 1
  | Mul32 | Mul64 | MulHiS32 -> 2
  | DivS32 | DivU32 -> 3
  | And32 | And64 | AndV128 -> 4
  | Or32 | Or64 | OrV128 -> 5
  | Xor32 | Xor64 | XorV128 -> 6
  | Shl32 | Shr32 | Sar32 | Shl64 | Shr64 | Sar64 -> 7
  | CmpEQ32 | CmpNE32 | CmpLT32S | CmpLE32S | CmpLT32U | CmpLE32U | CmpEQ64
  | CmpNE64 | CmpEQF64 | CmpLTF64 | CmpLEF64 ->
      8
  | AddF64 | SubF64 | MulF64 | DivF64 | MinF64 | MaxF64 -> 13
  | _ -> 17

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                      *)
(* ------------------------------------------------------------------ *)

type ictx = { st : state; nb : block; shadow : (tmp, tmp) Hashtbl.t }

let emit c s = add_stmt c.nb s

let assign c e =
  let t = new_tmp c.nb (type_of c.nb e) in
  emit c (WrTmp (t, e));
  RdTmp t

(* every shadow is an I64 node id, regardless of value type: Redux
   tracks provenance, not representation *)
let shadow_of_tmp c t =
  match Hashtbl.find_opt c.shadow t with
  | Some s -> s
  | None ->
      let s = new_tmp c.nb I64 in
      Hashtbl.replace c.shadow t s;
      emit c (WrTmp (s, Const (CI64 0L)));
      s

let shadow_atom c (st : state) = function
  | Const k -> (
      match k with
      | CI32 v | CI64 v -> Const (CI64 (Int64.of_int (const_node st v)))
      | CI8 v | CI16 v -> Const (CI64 (Int64.of_int (const_node st (Int64.of_int v))))
      | CI1 b -> Const (CI64 (Int64.of_int (const_node st (if b then 1L else 0L))))
      | CF64 f -> Const (CI64 (Int64.of_int (const_node st (Int64.bits_of_float f))))
      | CV128 p -> Const (CI64 (Int64.of_int (const_node st (Int64.of_int p)))))
  | RdTmp t -> RdTmp (shadow_of_tmp c t)
  | _ -> invalid_arg "shadow_atom"

let call_mk c tag a b =
  let t = new_tmp c.nb I64 in
  emit c
    (Dirty
       { d_guard = Const (CI1 true); d_callee = c.st.h_mk;
         d_args = [ Const (CI64 (Int64.of_int tag)); a; b ];
         d_tmp = Some t; d_mfx = Mfx_none });
  RdTmp t

let shadow_rhs c (e : expr) : expr =
  let st = c.st in
  match e with
  | Const _ | RdTmp _ -> shadow_atom c st e
  | Get (off, _) ->
      (* node ids are stored 32-bit in the shadow register file, so
         shadows of adjacent 4-byte registers do not overlap *)
      if off >= GA.shadow_offset then Const (CI64 0L)
      else Unop (U32to64, assign c (Get (GA.shadow_of off, I32)))
  | Load (_, addr) ->
      let t = new_tmp c.nb I64 in
      emit c
        (Dirty
           { d_guard = Const (CI1 true); d_callee = st.h_load;
             d_args = [ addr ]; d_tmp = Some t; d_mfx = Mfx_none });
      RdTmp t
  | Unop (op, a) -> (
      let va = assign c (shadow_atom c st a) in
      match op with
      | Neg32 | Neg64 | NegF64 -> call_mk c 9 va va
      | Not32 | Not64 | Not1 | NotV128 -> call_mk c 10 va va
      | U8to32 | S8to32 | U16to32 | S16to32 | U32to64 | S32to64 | U1to32 ->
          call_mk c 11 va va
      | T64to32 | T32to8 | T32to16 | T32to1 -> call_mk c 12 va va
      | _ -> call_mk c 17 va va)
  | Binop (op, a, b) ->
      let va = assign c (shadow_atom c st a) in
      let vb = assign c (shadow_atom c st b) in
      call_mk c (tag_of_binop op) va vb
  | ITE (cond, t, f) ->
      let vc = assign c (shadow_atom c st cond) in
      let vt = assign c (shadow_atom c st t) in
      let vf = assign c (shadow_atom c st f) in
      let sel = assign c (ITE (cond, vt, vf)) in
      call_mk c 16 vc sel
  | CCall (_, _, args) ->
      let vs = List.map (fun a -> assign c (shadow_atom c st a)) args in
      List.fold_left
        (fun acc v -> assign c acc |> fun a -> call_mk c 15 a v
          |> fun r -> r)
        (Const (CI64 0L)) vs

let instrument (st : state) (b : block) : block =
  let nb =
    { tyenv = Support.Vec.copy b.tyenv;
      stmts = Support.Vec.create NoOp;
      next = b.next;
      jumpkind = b.jumpkind }
  in
  let c = { st; nb; shadow = Hashtbl.create 64 } in
  Support.Vec.iter
    (fun s ->
      match s with
      | NoOp | IMark _ | AbiHint _ | Exit _ -> emit c s
      | WrTmp (t, e) ->
          let se = shadow_rhs c e in
          let sv = new_tmp nb I64 in
          Hashtbl.replace c.shadow t sv;
          emit c (WrTmp (sv, se));
          emit c s
      | Put (off, e) ->
          if off < GA.shadow_offset then begin
            let sv = assign c (shadow_atom c st e) in
            let sv32 = assign c (Unop (T64to32, sv)) in
            emit c (Put (GA.shadow_of off, sv32))
          end;
          emit c s
      | Store (addr, d) ->
          let sd = assign c (shadow_atom c st d) in
          emit c
            (Dirty
               { d_guard = Const (CI1 true); d_callee = st.h_store;
                 d_args = [ addr; sd ]; d_tmp = None; d_mfx = Mfx_none });
          emit c s
      | Dirty d ->
          emit c s;
          (match d.d_tmp with
          | Some t ->
              let sv = new_tmp nb I64 in
              Hashtbl.replace c.shadow t sv;
              emit c (WrTmp (sv, Const (CI64 0L)))
          | None -> ()))
    b.stmts;
  nb

(* ------------------------------------------------------------------ *)
(* DOT output                                                           *)
(* ------------------------------------------------------------------ *)

(** Render the sub-DAG reaching [root] (at most [limit] nodes). *)
let dot_of (st : state) (root : int) ?(limit = 200) () : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph redux {\n  rankdir=BT;\n";
  let visited = Hashtbl.create 64 in
  let queue = Queue.create () in
  Queue.add root queue;
  let count = ref 0 in
  while (not (Queue.is_empty queue)) && !count < limit do
    let id = Queue.take queue in
    if (not (Hashtbl.mem visited id)) && id < Support.Vec.length st.nodes then begin
      Hashtbl.replace visited id ();
      incr count;
      let n = Support.Vec.get st.nodes id in
      let label =
        match n.n_const with
        | Some v -> Printf.sprintf "0x%LX" v
        | None -> n.n_op
      in
      Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" id label);
      List.iter
        (fun a ->
          if a <> id then begin
            Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" a id);
            Queue.add a queue
          end)
        n.n_args
    end
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let the_state : state option ref = ref None

(** Node id currently shadowing guest register [r]. *)
let reg_node (st : state) (r : int) : int =
  Int64.to_int (st.caps.read_guest (GA.shadow_of (GA.off_reg r)) 4)

let tool : Vg_core.Tool.t =
  {
    name = "redux";
    description = "a dynamic dataflow tracer (provenance DAG, Redux-style)";
    shadow_ranges = [ (GA.shadow_offset, GA.guest_state_used) ];
    create =
      (fun caps ->
        let dummy =
          { c_name = ""; c_id = -1; c_cost = 0; c_fx_reads = []; c_fx_writes = [] }
        in
        let st =
          {
            caps;
            nodes = Support.Vec.create { n_op = ""; n_args = []; n_const = None };
            const_cache = Hashtbl.create 64;
            word_shadow = Hashtbl.create 256;
            h_mk = dummy;
            h_load = dummy;
            h_store = dummy;
            truncated = false;
            max_nodes = 2_000_000;
          }
        in
        (* node 0: the distinguished "unknown origin" node *)
        ignore (mk_node st "start" [] None);
        register_helpers st;
        the_state := Some st;
        let snapshot, restore =
          Vg_core.Tool.marshal_pair
            ~save:(fun () ->
              ( Support.Vec.copy st.nodes, st.const_cache, st.word_shadow,
                st.truncated ))
            ~load:(fun (nodes, const_cache, word_shadow, truncated) ->
              st.nodes.Support.Vec.data <- nodes.Support.Vec.data;
              st.nodes.Support.Vec.len <- nodes.Support.Vec.len;
              let refill dst src =
                Hashtbl.reset dst;
                Hashtbl.iter (Hashtbl.replace dst) src
              in
              refill st.const_cache const_cache;
              refill st.word_shadow word_shadow;
              st.truncated <- truncated)
        in
        {
          instrument = (fun b -> instrument st b);
          fini =
            (fun ~exit_code:_ ->
              (* the exit code travelled in r1 at the exit syscall *)
              let root = reg_node st 1 in
              caps.output
                (Printf.sprintf
                   "==redux== %d dataflow nodes%s; provenance of the exit \
                    code:\n"
                   (Support.Vec.length st.nodes)
                   (if st.truncated then " (truncated)" else ""));
              caps.output (dot_of st root ~limit:64 ()));
          client_request = (fun ~code:_ ~args:_ -> None);
          snapshot;
          restore;
        });
  }
