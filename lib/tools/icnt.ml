(** The instruction-counter tools from Table 2.

    [ICntI] increments a memory counter with {e inline} code at every
    guest instruction; [ICntC] calls a C (OCaml) helper instead.  The
    pair exists to measure the cost of inline analysis code versus
    helper calls ("the difference between ICntI and ICntC shows the
    advantage of inline code over C calls", §5.4). *)

open Vex_ir.Ir

(* a tool-private 8-byte counter cell in the core's region *)
let counter_addr = 0x3A80_0000L

let count_of (mem : Aspace.t) : int64 =
  try Aspace.read mem counter_addr 8 with Aspace.Fault _ -> 0L

(** ICntI: inline load/add/store per instruction executed. *)
let icnt_inline : Vg_core.Tool.t =
  {
    name = "icnti";
    description = "instruction counter (inline code)";
    shadow_ranges = [];
    create =
      (fun caps ->
        Aspace.map caps.mem ~addr:counter_addr ~len:4096 ~perm:Aspace.perm_rw;
        let instrument (b : block) : block =
          let nb =
            { tyenv = Support.Vec.copy b.tyenv;
              stmts = Support.Vec.create NoOp;
              next = b.next;
              jumpkind = b.jumpkind }
          in
          Support.Vec.iter
            (fun s ->
              add_stmt nb s;
              match s with
              | IMark _ ->
                  let t = new_tmp nb I64 in
                  add_stmt nb (WrTmp (t, Load (I64, i32 counter_addr)));
                  let t2 = new_tmp nb I64 in
                  add_stmt nb (WrTmp (t2, Binop (Add64, RdTmp t, i64 1L)));
                  add_stmt nb (Store (i32 counter_addr, RdTmp t2))
              | _ -> ())
            b.stmts;
          nb
        in
        {
          instrument;
          fini =
            (fun ~exit_code:_ ->
              caps.output
                (Printf.sprintf "==icnti== instructions executed: %Ld\n"
                   (count_of caps.mem)));
          client_request = (fun ~code:_ ~args:_ -> None);
          (* the counter cell lives in guest memory: the core's
             address-space snapshot already carries it *)
          snapshot = Vg_core.Tool.snapshot_nothing;
          restore = Vg_core.Tool.restore_nothing;
        });
  }

(** ICntC: helper call per instruction executed. *)
let icnt_call : Vg_core.Tool.t =
  {
    name = "icntc";
    description = "instruction counter (C call)";
    shadow_ranges = [];
    create =
      (fun caps ->
        let counter = ref 0L in
        let helper =
          caps.register_helper ~name:"icnt_increment" ~cost:3 ~nargs:0
            (fun _args ->
              counter := Int64.add !counter 1L;
              0L)
        in
        let instrument (b : block) : block =
          let nb =
            { tyenv = Support.Vec.copy b.tyenv;
              stmts = Support.Vec.create NoOp;
              next = b.next;
              jumpkind = b.jumpkind }
          in
          Support.Vec.iter
            (fun s ->
              add_stmt nb s;
              match s with
              | IMark _ ->
                  add_stmt nb
                    (Dirty
                       {
                         d_guard = i1 true;
                         d_callee = helper;
                         d_args = [];
                         d_tmp = None;
                         d_mfx = Mfx_none;
                       })
              | _ -> ())
            b.stmts;
          nb
        in
        {
          instrument;
          fini =
            (fun ~exit_code:_ ->
              caps.output
                (Printf.sprintf "==icntc== instructions executed: %Ld\n"
                   !counter));
          client_request = (fun ~code:_ ~args:_ -> None);
          snapshot = (fun () -> Marshal.to_bytes !counter []);
          restore = (fun b -> counter := Marshal.from_bytes b 0);
        });
  }
