(** VG32 assembler driver: assemble a .s file and print the image layout
    with a disassembly listing (round-tripped through the decoder). *)

let () =
  let path = ref None in
  Arg.parse [] (fun p -> path := Some p) "vgasm FILE.s";
  match !path with
  | None ->
      prerr_endline "vgasm: no input file";
      exit 2
  | Some p -> (
      let ic = open_in_bin p in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      try
        let img = Guest.Asm.assemble src in
        Printf.printf "text: 0x%LX, %d bytes\n" img.text_addr
          (Bytes.length img.text);
        Printf.printf "data: 0x%LX, %d bytes\n" img.data_addr
          (Bytes.length img.data);
        Printf.printf "entry: 0x%LX\n\n" img.entry;
        let fetch a =
          Char.code
            (Bytes.get img.text (Int64.to_int (Int64.sub a img.text_addr)))
        in
        let pos = ref img.text_addr in
        let limit = Int64.add img.text_addr (Int64.of_int (Bytes.length img.text)) in
        while Int64.unsigned_compare !pos limit < 0 do
          let insn, len = Guest.Decode.decode fetch !pos in
          (match Guest.Image.symbol_for img !pos with
          | Some (name, a) when a = !pos -> Printf.printf "%s:\n" name
          | _ -> ());
          Format.printf "  %08LX:  %a@." !pos Guest.Arch.pp_insn insn;
          pos := Int64.add !pos (Int64.of_int len)
        done
      with Guest.Asm.Error { line; msg } ->
        Printf.eprintf "vgasm: %s:%d: %s\n" p line msg;
        exit 1)
