(** mini-C compiler driver: print the generated VG32 assembly. *)

let () =
  let path = ref None in
  let no_libc = ref false in
  Arg.parse
    [ ("--no-libc", Arg.Set no_libc, "do not link the guest libc") ]
    (fun p -> path := Some p)
    "minicc [--no-libc] FILE.c";
  match !path with
  | None ->
      prerr_endline "minicc: no input file";
      exit 2
  | Some p -> (
      let ic = open_in_bin p in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      try
        let _img, asm =
          Minicc.Driver.compile_with_asm ~with_libc:(not !no_libc) src
        in
        print_string asm
      with Minicc.Driver.Compile_error m | Minicc.Codegen.Error m ->
        Printf.eprintf "minicc: %s\n" m;
        exit 1)
