(** Native runner: execute a VG32 program directly on the reference
    interpreter (the Table-2 baseline), without any tool. *)

let () =
  let path = ref None in
  let stats = ref false in
  Arg.parse
    [ ("--stats", Arg.Set stats, "print cycle statistics at exit") ]
    (fun p -> path := Some p)
    "vgrun [--stats] PROGRAM";
  match !path with
  | None ->
      prerr_endline "vgrun: no program given";
      exit 2
  | Some p ->
      let read_file p =
        let ic = open_in_bin p in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      let img =
        try
          if Filename.check_suffix p ".s" || Filename.check_suffix p ".asm"
          then Guest.Asm.assemble (read_file p)
          else Minicc.Driver.compile (read_file p)
        with
        | Minicc.Driver.Compile_error m ->
            Printf.eprintf "vgrun: %s: %s\n" p m;
            exit 2
        | Guest.Asm.Error { line; msg } ->
            Printf.eprintf "vgrun: %s:%d: %s\n" p line msg;
            exit 2
      in
      let eng = Native.create img in
      eng.kern.stdout_echo <- true;
      let reason = Native.run eng in
      if !stats then
        Printf.eprintf "vgrun: %Ld instructions, %Ld cycles\n"
          (Native.total_insns eng) (Native.total_cycles eng);
      (match reason with
      | Native.Exited n -> exit (n land 0xFF)
      | Native.Fatal_signal sg ->
          Printf.eprintf "vgrun: fatal signal %s\n" (Kernel.Sig.name sg);
          exit (128 + sg)
      | Native.Out_of_fuel -> exit 3)
