(* Assembler tests: syntax, labels, sections, directives, diagnostics. *)

let t name f = Alcotest.test_case name `Quick f
let i64 = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

let sym img name =
  match List.assoc_opt name img.Guest.Image.symbols with
  | Some a -> a
  | None -> Alcotest.failf "symbol %s not defined" name

let test_labels_and_sections () =
  let img =
    Guest.Asm.assemble
      {|
        .text
_start: jmp end_lbl
middle: nop
end_lbl: nop
        .data
tbl:    .word 1, 2, middle
msg:    .asciz "hi"
        .align 8
dbl:    .f64 2.5
buf:    .space 10
after:  .byte 1
|}
  in
  Alcotest.check i64 "entry" img.text_addr img.entry;
  Alcotest.(check bool) "data after text page"
    true
    (Int64.unsigned_compare img.data_addr img.text_addr > 0);
  (* tbl[2] holds middle's address *)
  let tbl = sym img "tbl" in
  let off = Int64.to_int (Int64.sub tbl img.data_addr) in
  Alcotest.check i64 "word label value" (sym img "middle")
    (Support.Buf.read_u32 img.data (off + 8));
  (* alignment of dbl *)
  Alcotest.check i64 "align 8" 0L (Int64.rem (sym img "dbl") 8L);
  (* f64 payload *)
  let doff = Int64.to_int (Int64.sub (sym img "dbl") img.data_addr) in
  Alcotest.(check (float 0.0001))
    "f64 value" 2.5
    (Int64.float_of_bits (Support.Buf.read_u64 img.data doff));
  (* space reserves 10 bytes *)
  Alcotest.check i64 "space length" 10L
    (Int64.sub (sym img "after") (sym img "buf"))

let test_label_arithmetic () =
  let img =
    Guest.Asm.assemble
      {|
        .text
_start: movi r0, msg_end-msg
        nop
        .data
msg:    .ascii "hello"
msg_end:
|}
  in
  (* decode the movi and check the immediate is 5 *)
  let insn, _ =
    Guest.Decode.decode
      (fun a -> Char.code (Bytes.get img.text (Int64.to_int (Int64.sub a img.text_addr))))
      img.text_addr
  in
  match insn with
  | Guest.Arch.Movi (0, 5L) -> ()
  | i -> Alcotest.failf "expected movi r0, 5, got %a" Guest.Arch.pp_insn i

let test_mem_operand_forms () =
  (* all forms parse and roundtrip through encode/decode *)
  let img =
    Guest.Asm.assemble
      {|
        .text
_start: ldw r0, [r1]
        ldw r0, [r1+4]
        ldw r0, [r1-4]
        ldw r0, [r1+r2*4]
        ldw r0, [r1+r2*8+12]
        ldw r0, [0x2000]
        ldw r0, [sp+8]
        stw [fp-12], r3
|}
  in
  Alcotest.(check bool) "assembled" true (Bytes.length img.text > 8)

let expect_error src frag =
  match Guest.Asm.assemble src with
  | exception Guest.Asm.Error { msg; _ } ->
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) (Fmt.str "error mentions %S (got %S)" frag msg)
        true (contains msg frag)
  | _ -> Alcotest.failf "expected assembly error for %s" frag

let test_errors () =
  expect_error "  frobnicate r0\n" "unknown mnemonic";
  expect_error "  movi r9, 0\n" "no such register";
  expect_error "  jmp nowhere\n" "undefined symbol";
  expect_error "  ldw r0, [r1+r2*3]\n" "bad scale";
  expect_error "  .bogus 1\n" "unknown directive"

let test_entry_preference () =
  let img = Guest.Asm.assemble "main: nop\nfoo: nop\n" in
  Alcotest.check i64 "main is entry" (sym img "main") img.entry;
  let img2 = Guest.Asm.assemble "main: nop\n_start: nop\n" in
  Alcotest.check i64 "_start wins" (sym img2 "_start") img2.entry

let test_comments_and_blank () =
  let img =
    Guest.Asm.assemble
      "; leading comment\n\n_start: nop ; trailing\n # hash comment\n  nop\n"
  in
  Alcotest.(check int) "two nops" 2 (Bytes.length img.text)

let test_char_in_string () =
  let img =
    Guest.Asm.assemble
      {|
_start: nop
        .data
s:      .asciz "semi;colon and # hash"
|}
  in
  let s = Bytes.to_string img.data in
  Alcotest.(check bool) "contents intact" true
    (String.length s >= 21)

let tests =
  [
    t "labels, sections, directives" test_labels_and_sections;
    t "label arithmetic" test_label_arithmetic;
    t "memory operand forms" test_mem_operand_forms;
    t "diagnostics" test_errors;
    t "entry preference" test_entry_preference;
    t "comments/blank lines" test_comments_and_blank;
    t "punctuation inside strings" test_char_in_string;
  ]
