(* Unit + property tests for the support substrate. *)

open Support

let t name f = Alcotest.test_case name `Quick f
let i64 = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

let test_trunc_sext () =
  Alcotest.check i64 "trunc8" 0xCDL (Bits.trunc8 0xABCDL);
  Alcotest.check i64 "trunc32" 0x89ABCDEFL (Bits.trunc32 0x0123456789ABCDEFL);
  Alcotest.check i64 "sext8 neg" (-1L) (Bits.sext8 0xFFL);
  Alcotest.check i64 "sext8 pos" 0x7FL (Bits.sext8 0x7FL);
  Alcotest.check i64 "sext16" (-2L) (Bits.sext16 0xFFFEL);
  Alcotest.check i64 "sext32" (-1L) (Bits.sext32 0xFFFFFFFFL);
  Alcotest.check i64 "sext32 pos" 0x7FFFFFFFL (Bits.sext32 0x7FFFFFFFL)

let test_shifts () =
  Alcotest.check i64 "shl32 wraps" 0x80000000L (Bits.shl32 1L 31L);
  Alcotest.check i64 "shl32 mask" 2L (Bits.shl32 1L 33L);
  Alcotest.check i64 "shr32" 1L (Bits.shr32 0x80000000L 31L);
  Alcotest.check i64 "sar32 neg" 0xFFFFFFFFL (Bits.sar32 0x80000000L 31L);
  Alcotest.check i64 "clz32" 0L (Bits.clz32 0x80000000L);
  Alcotest.check i64 "clz32 zero" 32L (Bits.clz32 0L);
  Alcotest.check i64 "ctz32" 31L (Bits.ctz32 0x80000000L)

let test_cmp () =
  Alcotest.(check bool) "cmp32s" true (Bits.cmp32s 0xFFFFFFFFL 1L < 0);
  Alcotest.(check bool) "cmp32u" true (Bits.cmp32u 0xFFFFFFFFL 1L > 0)

let test_buf_roundtrip () =
  let b = Buf.create () in
  Buf.u8 b 0xAB;
  Buf.u16 b 0x1234;
  Buf.u32 b 0xDEADBEEFL;
  Buf.u64 b 0x0102030405060708L;
  let c = Buf.contents b in
  Alcotest.(check int) "len" 15 (Bytes.length c);
  Alcotest.(check int) "u8" 0xAB (Buf.read_u8 c 0);
  Alcotest.(check int) "u16" 0x1234 (Buf.read_u16 c 1);
  Alcotest.check i64 "u32" 0xDEADBEEFL (Buf.read_u32 c 3);
  Alcotest.check i64 "u64" 0x0102030405060708L (Buf.read_u64 c 7)

let test_buf_patch () =
  let b = Buf.create () in
  Buf.u32 b 0L;
  Buf.u32 b 42L;
  Buf.patch_u32 b 0 0xCAFEBABEL;
  Alcotest.check i64 "patched" 0xCAFEBABEL (Buf.read_u32 (Buf.contents b) 0)

let test_v128 () =
  let a = V128.make ~lo:0xFF00FF00FF00FF00L ~hi:0x0123456789ABCDEFL in
  Alcotest.check i64 "lane0" 0xFF00FF00L (V128.get_lane32 a 0);
  Alcotest.check i64 "lane3" 0x01234567L (V128.get_lane32 a 3);
  let b = V128.set_lane32 a 2 0xAAAAAAAAL in
  Alcotest.check i64 "set lane2" 0xAAAAAAAAL (V128.get_lane32 b 2);
  Alcotest.check i64 "lane3 intact" 0x01234567L (V128.get_lane32 b 3);
  let p = V128.of_pattern16 0x00FF in
  Alcotest.check i64 "pattern lo" (-1L) (V128.lo p);
  Alcotest.check i64 "pattern hi" 0L (V128.hi p);
  let s = V128.splat32 7L in
  Alcotest.check i64 "splat" 7L (V128.get_lane32 s 3)

let test_v128_arith () =
  let x = V128.splat32 0xFFFFFFFFL in
  let y = V128.splat32 1L in
  let z = V128.add32x4 x y in
  Alcotest.check i64 "lane add wraps" 0L (V128.get_lane32 z 1);
  let e = V128.cmpeq32x4 x x in
  Alcotest.check i64 "cmpeq all ones" 0xFFFFFFFFL (V128.get_lane32 e 0);
  let b = V128.add8x16 (V128.splat32 0xFF00FF00L) (V128.splat32 0x01010101L) in
  Alcotest.check i64 "byte add wraps per byte" 0x00010001L (V128.get_lane32 b 0)

let test_vec () =
  let v = Support.Vec.create 0 in
  for i = 0 to 99 do
    Support.Vec.push v i
  done;
  Alcotest.(check int) "len" 100 (Support.Vec.length v);
  Alcotest.(check int) "get" 42 (Support.Vec.get v 42);
  Support.Vec.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Support.Vec.get v 42);
  let copy = Support.Vec.copy v in
  Support.Vec.set copy 42 7;
  Alcotest.(check int) "copy is independent" (-1) (Support.Vec.get v 42)

let test_rng_deterministic () =
  let a = Rng.create 99 and b = Rng.create 99 in
  for _ = 1 to 50 do
    Alcotest.check i64 "same stream" (Rng.next_u64 a) (Rng.next_u64 b)
  done;
  let r = Rng.create 1 in
  for _ = 1 to 100 do
    let x = Rng.int r 10 in
    Alcotest.(check bool) "bounded" true (x >= 0 && x < 10)
  done

let prop_sext_trunc =
  QCheck.Test.make ~count:500 ~name:"trunc32 . sext32 = trunc32" QCheck.int64
    (fun x -> Bits.trunc32 (Bits.sext32 x) = Bits.trunc32 x)

let prop_buf_u32 =
  QCheck.Test.make ~count:200 ~name:"buf u32 roundtrip" QCheck.int64 (fun x ->
      let b = Buf.create () in
      Buf.u32 b x;
      Buf.read_u32 (Buf.contents b) 0 = Bits.trunc32 x)

let prop_v128_lanes =
  QCheck.Test.make ~count:200 ~name:"v128 lane set/get"
    QCheck.(pair (int_bound 3) int64)
    (fun (lane, v) ->
      let x = V128.set_lane32 V128.zero lane v in
      V128.get_lane32 x lane = Bits.trunc32 v)

let tests =
  [
    t "bits trunc/sext" test_trunc_sext;
    t "bits shifts" test_shifts;
    t "bits compare" test_cmp;
    t "buf roundtrip" test_buf_roundtrip;
    t "buf patch" test_buf_patch;
    t "v128 lanes" test_v128;
    t "v128 arithmetic" test_v128_arith;
    t "vec" test_vec;
    t "rng deterministic" test_rng_deterministic;
    QCheck_alcotest.to_alcotest prop_sext_trunc;
    QCheck_alcotest.to_alcotest prop_buf_u32;
    QCheck_alcotest.to_alcotest prop_v128_lanes;
  ]
