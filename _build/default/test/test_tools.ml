(* Tests for the remaining tools (Lackey, Cachegrind, Massif, Taintgrind)
   and for Memcheck's shadow-memory substrate. *)

let t name f = Alcotest.test_case name `Quick f
let i64 = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

let run_tool tool src =
  let img = Minicc.Driver.compile src in
  let s = Vg_core.Session.create ~tool img in
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited 0 -> ()
  | Vg_core.Session.Exited n -> Alcotest.failf "exit %d" n
  | _ -> Alcotest.fail "bad termination");
  s

(* ---- shadow memory -------------------------------------------------- *)

let test_shadow_mem_basic () =
  let sm = Tools.Shadow_mem.create () in
  Alcotest.(check bool) "initially noaccess" false
    (Tools.Shadow_mem.get_abit sm 0x1000L);
  Tools.Shadow_mem.make_undefined sm 0x1000L 64;
  Alcotest.(check bool) "addressable" true (Tools.Shadow_mem.get_abit sm 0x1000L);
  Alcotest.(check int) "undefined" 0xFF (Tools.Shadow_mem.get_vbyte sm 0x1000L);
  ignore (Tools.Shadow_mem.store sm 0x1000L 4 0L);
  Alcotest.(check int) "defined after store" 0
    (Tools.Shadow_mem.get_vbyte sm 0x1002L);
  Alcotest.(check int) "neighbour still undefined" 0xFF
    (Tools.Shadow_mem.get_vbyte sm 0x1004L);
  let ok, v = Tools.Shadow_mem.load sm 0x1002L 4 in
  Alcotest.(check bool) "load addressable" true ok;
  Alcotest.check i64 "partial definedness" 0xFFFF0000L v

let test_shadow_mem_ranges () =
  let sm = Tools.Shadow_mem.create () in
  (* a range spanning multiple 64K chunks exercises the distinguished-
     secondary fast path *)
  Tools.Shadow_mem.make_defined sm 0x10000L (5 * 65536);
  Alcotest.(check int) "middle defined" 0
    (Tools.Shadow_mem.get_vbyte sm 0x30123L);
  Tools.Shadow_mem.make_noaccess sm 0x20000L 65536;
  Alcotest.(check bool) "hole" false (Tools.Shadow_mem.get_abit sm 0x28000L);
  Alcotest.(check bool) "after hole" true (Tools.Shadow_mem.get_abit sm 0x30000L);
  (match Tools.Shadow_mem.find_unaddressable sm 0x10000L (3 * 65536) with
  | Some a -> Alcotest.check i64 "first bad byte" 0x20000L a
  | None -> Alcotest.fail "hole not found");
  Tools.Shadow_mem.copy_range sm ~src:0x10000L ~dst:0x20000L 16;
  Alcotest.(check bool) "copied abit" true (Tools.Shadow_mem.get_abit sm 0x20008L)

let prop_shadow_vs_model =
  QCheck.Test.make ~count:100 ~name:"shadow memory matches a naive model"
    QCheck.(list (pair (int_bound 2) (pair (int_bound 500) (int_bound 40))))
    (fun ops ->
      let sm = Tools.Shadow_mem.create () in
      let model = Array.make 600 (false, 0xFF) in
      List.iter
        (fun (op, (off, len)) ->
          let addr = Int64.of_int (0x5000 + off) in
          (match op with
          | 0 -> Tools.Shadow_mem.make_noaccess sm addr len
          | 1 -> Tools.Shadow_mem.make_undefined sm addr len
          | _ -> Tools.Shadow_mem.make_defined sm addr len);
          for i = off to min 599 (off + len - 1) do
            model.(i) <-
              (match op with
              | 0 -> (false, 0xFF)
              | 1 -> (true, 0xFF)
              | _ -> (true, 0x00))
          done)
        ops;
      let ok = ref true in
      Array.iteri
        (fun i (a, v) ->
          let addr = Int64.of_int (0x5000 + i) in
          if
            Tools.Shadow_mem.get_abit sm addr <> a
            || Tools.Shadow_mem.get_vbyte sm addr <> v
          then ok := false)
        model;
      !ok)

(* ---- lackey ---------------------------------------------------------- *)

let test_lackey_counts () =
  let src =
    {| int a[100];
       int main() {
         int i; int s;
         s = 0;
         for (i = 0; i < 100; i++) { a[i] = i; }      /* 100 stores */
         for (i = 0; i < 100; i++) { s = s + a[i]; }  /* 100 loads */
         return 0;
       } |}
  in
  let s = run_tool Tools.Lackey.tool src in
  ignore s;
  match Tools.Lackey.(!the_state) with
  | None -> Alcotest.fail "no lackey state"
  | Some st ->
      (* at least the array traffic, plus stack traffic *)
      Alcotest.(check bool) "loads >= 100" true
        (Int64.to_int st.n_loads >= 100);
      Alcotest.(check bool) "stores >= 100" true
        (Int64.to_int st.n_stores >= 100);
      Alcotest.(check bool) "instructions counted" true
        (Int64.to_int st.n_instrs > 1000)

(* ---- cachegrind ------------------------------------------------------ *)

let test_cachegrind_counts () =
  let src =
    {| int main() {
         int i; int s;
         s = 0;
         for (i = 0; i < 5000; i++) { s = s + i; }
         return 0;
       } |}
  in
  let s = run_tool Tools.Cachegrind.tool src in
  ignore s;
  match Tools.Cachegrind.(!the_state) with
  | None -> Alcotest.fail "no cachegrind state"
  | Some st ->
      Alcotest.(check bool) "Ir counted" true (Int64.to_int st.h.ir > 30000);
      (* a tight loop has an excellent I1 hit rate *)
      Alcotest.(check bool) "I1 miss rate tiny" true
        (Int64.to_float st.h.i1_misses /. Int64.to_float st.h.ir < 0.01)

let test_cachegrind_stride_effect () =
  let prog stride =
    Printf.sprintf
      {| int a[65536];
         int main() {
           int i; int s;
           s = 0;
           for (i = 0; i < 65536; i = i + %d) { s = s + a[i]; }
           return 0;
         } |}
      stride
  in
  let miss_rate stride =
    ignore (run_tool Tools.Cachegrind.tool (prog stride));
    match Tools.Cachegrind.(!the_state) with
    | Some st -> Int64.to_float st.h.d1r_misses /. Int64.to_float st.h.dr
    | None -> 0.0
  in
  let unit_stride = miss_rate 1 in
  let big_stride = miss_rate 16 in
  Alcotest.(check bool)
    (Printf.sprintf "stride 16 (%.4f) misses more than stride 1 (%.4f)"
       big_stride unit_stride)
    true
    (big_stride > unit_stride *. 2.0)

(* ---- massif ---------------------------------------------------------- *)

let test_massif_peak () =
  let src =
    {| int main() {
         char *a; char *b; char *c;
         a = malloc(1000);
         b = malloc(2000);       /* peak: 3000 */
         free(a);
         c = malloc(500);        /* 2500 < peak */
         free(b);
         free(c);
         return 0;
       } |}
  in
  ignore (run_tool Tools.Massif.tool src);
  match Tools.Massif.(!the_state) with
  | None -> Alcotest.fail "no massif state"
  | Some st ->
      Alcotest.check i64 "peak" 3000L st.peak_bytes;
      Alcotest.check i64 "live at exit" 0L st.cur_bytes;
      Alcotest.(check int) "allocs" 3 st.n_allocs

(* ---- taintgrind ------------------------------------------------------ *)

let test_taint_propagation () =
  let src =
    {| int main() {
         int secret[2];
         int derived; int clean; int cleared;
         secret[0] = 7;
         vg_taint_mem((char*)secret, 4);
         derived = secret[0] * 100 + 5;      /* tainted */
         clean = 12345;                      /* untainted */
         cleared = secret[0];
         cleared = 0;                        /* overwritten by constant */
         if (vg_check_taint((char*)&derived, 4) == 0) { return 1; }
         if (vg_check_taint((char*)&clean, 4) != 0) { return 2; }
         if (vg_check_taint((char*)&cleared, 4) != 0) { return 3; }
         vg_untaint_mem((char*)secret, 8);
         derived = secret[0];
         if (vg_check_taint((char*)&derived, 4) != 0) { return 4; }
         return 0;
       } |}
  in
  ignore (run_tool Tools.Taintgrind.tool src)

(* ---- annelid --------------------------------------------------------- *)

let kinds (errors : Vg_core.Errors.t) =
  List.map (fun e -> e.Vg_core.Errors.err_kind) errors.errors

let test_annelid_bounds () =
  let src =
    {| int main() {
         int *p; int v;
         p = (int*)malloc(10 * sizeof(int));
         p[9] = 1;            /* in bounds: fine */
         v = p[10];           /* out of bounds: caught via the tagged ptr */
         free((char*)p);
         return v * 0;
       } |}
  in
  let s = run_tool Tools.Annelid.tool src in
  Alcotest.(check bool) "bounds error reported" true
    (List.mem "BoundsError" (kinds s.errors))

let test_annelid_clean () =
  let src =
    {| int main() {
         int *p; int i; int s;
         p = (int*)malloc(20 * sizeof(int));
         s = 0;
         for (i = 0; i < 20; i++) { p[i] = i; }
         for (i = 0; i < 20; i++) { s = s + p[i]; }
         free((char*)p);
         return s * 0;
       } |}
  in
  let s = run_tool Tools.Annelid.tool src in
  Alcotest.(check (list string)) "no false positives" [] (kinds s.errors)

let test_annelid_use_after_free () =
  let src =
    {| int main() {
         int *p; int v;
         p = (int*)malloc(8);
         p[0] = 4;
         free((char*)p);
         v = p[0];           /* through a tagged pointer into a dead seg */
         return v * 0;
       } |}
  in
  let s = run_tool Tools.Annelid.tool src in
  Alcotest.(check bool) "use-after-free reported" true
    (List.mem "BoundsError" (kinds s.errors))

(* ---- redux ------------------------------------------------------------ *)

let test_redux_dag () =
  let src =
    {| int main() {
         int a; int b;
         a = 6;
         b = 7;
         return a * b;        /* provenance: const 6, const 7, mul */
       } |}
  in
  let img = Minicc.Driver.compile src in
  let s = Vg_core.Session.create ~tool:Tools.Redux.tool img in
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited 42 -> ()
  | _ -> Alcotest.fail "redux client should exit 42");
  ignore s;
  match Tools.Redux.(!the_state) with
  | None -> Alcotest.fail "no redux state"
  | Some st ->
      Alcotest.(check bool) "built a dag" true
        (Support.Vec.length st.nodes > 10);
      let root = Tools.Redux.reg_node st 1 in
      let dot = Tools.Redux.dot_of st root () in
      let contains sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length dot && (String.sub dot i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "dot mentions mul" true (contains "mul");
      Alcotest.(check bool) "dot mentions a constant" true (contains "0x")

let tests =
  [
    t "shadow memory: bytes" test_shadow_mem_basic;
    t "shadow memory: ranges + distinguished secondaries"
      test_shadow_mem_ranges;
    QCheck_alcotest.to_alcotest prop_shadow_vs_model;
    t "lackey counts accesses" test_lackey_counts;
    t "cachegrind counts" test_cachegrind_counts;
    t "cachegrind sees stride effects" test_cachegrind_stride_effect;
    t "massif peak tracking" test_massif_peak;
    t "taint propagation and clearing" test_taint_propagation;
    t "annelid catches out-of-bounds" test_annelid_bounds;
    t "annelid clean run" test_annelid_clean;
    t "annelid use-after-free" test_annelid_use_after_free;
    t "redux builds a provenance dag" test_redux_dag;
  ]
