(* Native engine tests: signals (installation, delivery, sigreturn),
   threads, and fatal faults. *)

let t name f = Alcotest.test_case name `Quick f

let run ?(stdin = "") src =
  let img = Guest.Asm.assemble src in
  let eng = Native.create img in
  let reason = Native.run ~stdin eng in
  (reason, eng)

let check_exit what expected reason =
  match reason with
  | Native.Exited n -> Alcotest.(check int) what expected n
  | Native.Fatal_signal s -> Alcotest.failf "%s: fatal signal %d" what s
  | Native.Out_of_fuel -> Alcotest.failf "%s: out of fuel" what

let test_signal_handler () =
  (* install a handler for SIGUSR1, raise it with kill, observe the
     handler run and normal flow resume after sigreturn *)
  let reason, _ =
    run
      {|
        .text
        .global _start
_start: movi r0, 12          ; sys_sigaction
        movi r1, 10          ; SIGUSR1
        movi r2, handler
        syscall
        movi r5, 1
        movi r0, 13          ; sys_kill
        movi r1, 1           ; tid 1
        movi r2, 10          ; SIGUSR1
        syscall
        ; after delivery + sigreturn we continue here; registers are
        ; restored by sigreturn, so the handler reports through memory
        cmpi r5, 1
        jne bad
        movi r3, flag
        ldw r4, [r3]
        cmpi r4, 99          ; handler must have run
        jne bad
        movi r0, 1
        movi r1, 42
        syscall
bad:    movi r0, 1
        movi r1, 13
        syscall

handler:
        ; argument (signal number) is at [sp+4]
        ldw r3, [sp+4]
        cmpi r3, 10
        jne hbad
        movi r3, flag
        movi r4, 99
        stw [r3], r4
        ret                  ; returns into the sigreturn trampoline
hbad:   ret
        .data
flag:   .word 0
|}
  in
  check_exit "signal handler ran and resumed" 42 reason

let test_fatal_sigsegv () =
  let reason, _ =
    run {|
        .text
_start: movi r1, 0x40
        ldw r0, [r1]
|}
  in
  match reason with
  | Native.Fatal_signal s ->
      Alcotest.(check int) "SIGSEGV" Kernel.Sig.sigsegv s
  | _ -> Alcotest.fail "expected fatal signal"

let test_fatal_sigfpe_handler () =
  (* a SIGFPE handler can observe the fault (it cannot resume the insn —
     our handler exits cleanly instead) *)
  let reason, _ =
    run
      {|
        .text
_start: movi r0, 12
        movi r1, 8           ; SIGFPE
        movi r2, handler
        syscall
        movi r0, 9
        movi r1, 0
        divs r0, r1          ; boom
        movi r0, 1
        movi r1, 1           ; not reached
        syscall
handler: movi r0, 1
        movi r1, 55
        syscall
|}
  in
  check_exit "sigfpe handler exits" 55 reason

let test_threads () =
  (* two threads increment a shared counter with yields in between; the
     serialised scheduler must interleave them to completion *)
  let reason, eng =
    run
      {|
        .text
        .global _start
_start: movi r0, 7            ; mmap a second stack
        movi r1, 0
        movi r2, 65536
        syscall
        mov r2, r0
        addi r2, 65532        ; top of new stack
        movi r0, 15           ; sys_thread_create
        movi r1, worker
        movi r3, 500          ; arg: iterations
        syscall
main_loop:
        movi r3, counter
        ldw r4, [r3]
        inc r4
        stw [r3], r4
        movi r0, 17           ; yield
        syscall
        movi r3, done_flag
        ldw r4, [r3]
        cmpi r4, 1
        jne main_loop
        movi r3, counter
        ldw r1, [r3]
        movi r0, 1
        syscall

worker: ; r1 = iterations
        mov r5, r1
wloop:  movi r3, counter
        ldw r4, [r3]
        inc r4
        stw [r3], r4
        movi r0, 17           ; yield
        syscall
        dec r5
        jne wloop
        movi r3, done_flag
        movi r4, 1
        stw [r3], r4
        movi r0, 16           ; thread_exit
        syscall

        .data
counter:   .word 0
done_flag: .word 0
|}
  in
  ignore eng;
  match reason with
  | Native.Exited n ->
      (* worker did 500; main did at least 500 interleaved + a few more *)
      Alcotest.(check bool)
        (Printf.sprintf "counter %d >= 1000" n)
        true (n >= 1000)
  | _ -> Alcotest.fail "thread program failed"

let test_stdin () =
  let reason, eng =
    run ~stdin:"AB"
      {|
        .text
_start: movi r0, 3           ; read
        movi r1, 0
        movi r2, buf
        movi r3, 2
        syscall
        movi r1, buf
        ldb r1, [r1]
        movi r0, 1
        syscall
        .data
buf:    .space 4
|}
  in
  ignore eng;
  check_exit "read first stdin byte" (Char.code 'A') reason

let tests =
  [
    t "signal install/deliver/sigreturn" test_signal_handler;
    t "fatal SIGSEGV" test_fatal_sigsegv;
    t "SIGFPE handler" test_fatal_sigfpe_handler;
    t "threads with yields" test_threads;
    t "stdin read" test_stdin;
  ]
