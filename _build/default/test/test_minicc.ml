(* mini-C compiler tests: programs compiled and run on the native engine
   (and spot-checked under Nulgrind for agreement). *)

let run ?(stdin = "") src =
  let img = Minicc.Driver.compile src in
  let eng = Native.create img in
  let reason = Native.run ~stdin eng in
  let code = match reason with
    | Native.Exited n -> n
    | Native.Fatal_signal s -> Alcotest.failf "fatal signal %d" s
    | Native.Out_of_fuel -> Alcotest.fail "out of fuel"
  in
  (code, Native.stdout_contents eng)

let run_vg src =
  let img = Minicc.Driver.compile src in
  let s = Vg_core.Session.create ~tool:Vg_core.Tool.nulgrind img in
  let reason = Vg_core.Session.run s in
  let code = match reason with
    | Vg_core.Session.Exited n -> n
    | Vg_core.Session.Fatal_signal sg -> Alcotest.failf "fatal signal %d" sg
    | Vg_core.Session.Out_of_fuel -> Alcotest.fail "out of fuel"
  in
  (code, Vg_core.Session.client_stdout s)

let t name f = Alcotest.test_case name `Quick f

let check_prog name src expected_code expected_out =
  let code, out = run src in
  Alcotest.(check int) (name ^ " exit") expected_code code;
  Alcotest.(check string) (name ^ " stdout") expected_out out

let test_arith () =
  check_prog "arith"
    {| int main() { return (2 + 3 * 4 - 1) / 2 % 5; } |}
    1 "" (* (2+12-1)/2 = 6; 6 % 5 = 1 *)

let test_loops () =
  check_prog "loops"
    {| int main() {
         int s; int i;
         s = 0;
         for (i = 1; i <= 10; i = i + 1) { s = s + i; }
         while (s > 50) { s = s - 1; }
         return s;
       } |}
    50 ""

let test_recursion () =
  check_prog "recursion"
    {| int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
       int main() { return fib(15); } |}
    610 ""

let test_pointers_arrays () =
  check_prog "ptr/array"
    {| int g[10];
       int sum(int *p, int n) {
         int s; int i;
         s = 0;
         for (i = 0; i < n; i++) { s = s + p[i]; }
         return s;
       }
       int main() {
         int i;
         for (i = 0; i < 10; i++) { g[i] = i * i; }
         return sum(g, 10);
       } |}
    285 ""

let test_strings () =
  check_prog "strings"
    {| int main() { print_str("hi "); print_int(42); print_str("\n"); return 0; } |}
    0 "hi 42\n"

let test_heap () =
  check_prog "heap"
    {| int main() {
         int *a; int *b; int i; int s;
         a = (int*)malloc(40);
         for (i = 0; i < 10; i++) { a[i] = i; }
         b = (int*)malloc(20);
         for (i = 0; i < 5; i++) { b[i] = a[i] * 10; }
         s = b[4];
         free((char*)a);
         free((char*)b);
         a = (int*)malloc(16);   /* reuses a freed block */
         s = s + a[0] * 0;
         return s;
       } |}
    40 ""

let test_doubles () =
  check_prog "doubles"
    {| int main() {
         double x; double y;
         x = 1.5;
         y = x * 4.0 + 1.0;   /* 7.0 */
         if (sqrt(y * y) != y) { return 1; }
         return (int)y;
       } |}
    7 ""

let test_char_ops () =
  check_prog "chars"
    {| int main() {
         char buf[8];
         strcpy(buf, "abc");
         if (strcmp(buf, "abc") != 0) { return 1; }
         if (strlen(buf) != 3) { return 2; }
         buf[0] = 'A';
         return (int)buf[0];
       } |}
    65 ""

let test_logical () =
  check_prog "logical"
    {| int side = 0;
       int bump() { side = side + 1; return 1; }
       int main() {
         int a;
         a = 0 && bump();       /* short-circuit: no bump */
         a = a + (1 || bump()); /* short-circuit: no bump */
         a = a + (1 && bump()); /* bump once */
         return side * 10 + a;
       } |}
    12 ""

let test_native_vs_valgrind () =
  let src =
    {| int main() {
         int i; int s; double d;
         s = 0; d = 0.0;
         for (i = 0; i < 1000; i++) {
           s = s + i * 3 - (i / 7);
           d = d + (double)i * 0.5;
         }
         print_int(s); print_str(" ");
         print_double(d); print_str("\n");
         return s % 251;
       } |}
  in
  let nc, nout = run src in
  let vc, vout = run_vg src in
  Alcotest.(check int) "exit codes agree" nc vc;
  Alcotest.(check string) "stdout agrees" nout vout

let test_ternary_mod () =
  check_prog "ternary"
    {| int main() {
         int x;
         x = 17;
         return (x % 2 == 1) ? x * 2 : x / 2;
       } |}
    34 ""

(* ------------------------------------------------------------------ *)
(* Differential expression fuzzing: random integer expressions are
   compiled by minicc and run natively; the exit code must match an
   OCaml reference evaluation with C-on-VG32 semantics (32-bit wrap,
   truncating division, arithmetic >>). *)

type rexpr =
  | RVar of int  (* a, b, c *)
  | RConst of int
  | RBin of string * rexpr * rexpr
  | RNeg of rexpr
  | RNot of rexpr

let var_values = [| 123456789L; -987654L; 42L |]

let rec render = function
  | RVar i -> [| "a"; "b"; "c" |].(i)
  | RConst n -> string_of_int n
  | RBin (op, l, r) -> Printf.sprintf "(%s %s %s)" (render l) op (render r)
  | RNeg e -> Printf.sprintf "(- %s)" (render e)
  | RNot e -> Printf.sprintf "(~%s)" (render e)

let rec eval (e : rexpr) : int64 =
  let open Support.Bits in
  let s32 x = sext32 (trunc32 x) in
  match e with
  | RVar i -> s32 var_values.(i)
  | RConst n -> s32 (Int64.of_int n)
  | RNeg e -> s32 (Int64.neg (eval e))
  | RNot e -> s32 (Int64.lognot (eval e))
  | RBin (op, l, r) -> (
      let a = eval l and b = eval r in
      match op with
      | "+" -> s32 (Int64.add a b)
      | "-" -> s32 (Int64.sub a b)
      | "*" -> s32 (Int64.mul a b)
      | "/" -> s32 (Int64.div a b) (* rhs is a nonzero literal *)
      | "%" -> s32 (Int64.rem a b)
      | "&" -> Int64.logand a b
      | "|" -> Int64.logor a b
      | "^" -> Int64.logxor a b
      | "<<" -> s32 (shl32 a b) (* rhs is a small literal *)
      | ">>" -> s32 (sar32 a b)
      | "==" -> if a = b then 1L else 0L
      | "!=" -> if a <> b then 1L else 0L
      | "<" -> if a < b then 1L else 0L
      | "<=" -> if a <= b then 1L else 0L
      | ">" -> if a > b then 1L else 0L
      | ">=" -> if a >= b then 1L else 0L
      | _ -> assert false)

let gen_rexpr : rexpr QCheck.Gen.t =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof [ map (fun i -> RVar i) (int_bound 2);
                map (fun c -> RConst (c - 500)) (int_bound 1000) ]
      else
        let sub = self (n / 2) in
        oneof
          [
            (let* op =
               oneofl [ "+"; "-"; "*"; "&"; "|"; "^"; "=="; "!="; "<"; "<=";
                        ">"; ">=" ]
             in
             let* l = sub in
             let* r = sub in
             return (RBin (op, l, r)));
            (* division/modulus by a nonzero literal *)
            (let* op = oneofl [ "/"; "%" ] in
             let* l = sub in
             let* d = int_range 1 9 in
             return (RBin (op, l, RConst d)));
            (* shift by a small literal *)
            (let* op = oneofl [ "<<"; ">>" ] in
             let* l = sub in
             let* d = int_bound 31 in
             return (RBin (op, l, RConst d)));
            map (fun e -> RNeg e) sub;
            map (fun e -> RNot e) sub;
          ])

let prop_expr_differential =
  QCheck.Test.make ~count:60 ~name:"compiled expressions match reference"
    (QCheck.make gen_rexpr ~print:render)
    (fun e ->
      let src =
        Printf.sprintf
          {| int main() {
               int a; int b; int c;
               a = 123456789; b = -987654; c = 42;
               return (%s) & 127;
             } |}
          (render e)
      in
      let expected = Int64.to_int (Int64.logand (eval e) 127L) in
      let code, _ = run src in
      code = expected)

let tests =
  [
    t "arith" test_arith;
    QCheck_alcotest.to_alcotest prop_expr_differential;
    t "loops" test_loops;
    t "recursion" test_recursion;
    t "pointers/arrays" test_pointers_arrays;
    t "strings" test_strings;
    t "heap" test_heap;
    t "doubles" test_doubles;
    t "chars" test_char_ops;
    t "logical short-circuit" test_logical;
    t "ternary" test_ternary_mod;
    t "native vs nulgrind agree" test_native_vs_valgrind;
  ]
