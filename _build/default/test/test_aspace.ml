(* Address-space manager tests. *)

let t name f = Alcotest.test_case name `Quick f
let i64 = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

let test_map_rw () =
  let m = Aspace.create () in
  Aspace.map m ~addr:0x1000L ~len:4096 ~perm:Aspace.perm_rw;
  Aspace.write m 0x1000L 4 0xDEADBEEFL;
  Alcotest.check i64 "read back" 0xDEADBEEFL (Aspace.read m 0x1000L 4);
  Aspace.write m 0x1FFFL 1 0xABL;
  Alcotest.check i64 "last byte" 0xABL (Aspace.read m 0x1FFFL 1)

let test_cross_page () =
  let m = Aspace.create () in
  Aspace.map m ~addr:0x1000L ~len:8192 ~perm:Aspace.perm_rw;
  Aspace.write m 0x1FFEL 4 0x11223344L;
  Alcotest.check i64 "crossing read" 0x11223344L (Aspace.read m 0x1FFEL 4);
  Aspace.write m 0x1FFCL 8 0x0102030405060708L;
  Alcotest.check i64 "crossing 8" 0x0102030405060708L (Aspace.read m 0x1FFCL 8)

let test_faults () =
  let m = Aspace.create () in
  Aspace.map m ~addr:0x1000L ~len:4096 ~perm:Aspace.perm_rx;
  (try
     ignore (Aspace.read m 0x5000L 4);
     Alcotest.fail "unmapped read"
   with Aspace.Fault { kind = Aspace.Read; _ } -> ());
  (try
     Aspace.write m 0x1000L 4 0L;
     Alcotest.fail "write to rx"
   with Aspace.Fault { kind = Aspace.Write; _ } -> ());
  ignore (Aspace.fetch_u8 m 0x1000L);
  Aspace.protect m ~addr:0x1000L ~len:4096 ~perm:Aspace.perm_rw;
  Aspace.write m 0x1000L 4 5L;
  try
    ignore (Aspace.fetch_u8 m 0x1000L);
    Alcotest.fail "exec of rw"
  with Aspace.Fault { kind = Aspace.Exec; _ } -> ()

let test_unmap () =
  let m = Aspace.create () in
  Aspace.map m ~addr:0x1000L ~len:8192 ~perm:Aspace.perm_rw;
  Aspace.unmap m ~addr:0x1000L ~len:4096;
  Alcotest.(check bool) "first gone" false (Aspace.is_mapped m 0x1000L);
  Alcotest.(check bool) "second stays" true (Aspace.is_mapped m 0x2000L)

let test_find_free () =
  let m = Aspace.create () in
  Aspace.map m ~addr:0x10000L ~len:4096 ~perm:Aspace.perm_rw;
  Aspace.map m ~addr:0x12000L ~len:4096 ~perm:Aspace.perm_rw;
  let a = Aspace.find_free m ~hint:0x10000L ~limit:0x20000L ~len:4096 in
  Alcotest.check i64 "hole found" 0x11000L a;
  let b = Aspace.find_free m ~hint:0x10000L ~limit:0x20000L ~len:8192 in
  Alcotest.check i64 "big block skips hole" 0x13000L b;
  try
    ignore (Aspace.find_free m ~hint:0x10000L ~limit:0x12000L ~len:16384);
    Alcotest.fail "expected Not_found"
  with Not_found -> ()

let test_asciiz_move () =
  let m = Aspace.create () in
  Aspace.map m ~addr:0x1000L ~len:4096 ~perm:Aspace.perm_rw;
  Aspace.write_bytes m 0x1000L (Bytes.of_string "hello\000");
  Alcotest.(check string) "asciiz" "hello" (Aspace.read_asciiz m 0x1000L);
  Aspace.move m ~src:0x1000L ~dst:0x1003L ~len:6;
  Alcotest.(check string) "overlapping move" "helhello"
    (Aspace.read_asciiz m 0x1000L)

let test_store_watch () =
  let m = Aspace.create () in
  Aspace.map m ~addr:0x1000L ~len:4096 ~perm:Aspace.perm_rw;
  let hits = ref [] in
  Aspace.add_store_watch m (fun addr size -> hits := (addr, size) :: !hits);
  Aspace.write m 0x1004L 4 1L;
  Aspace.write_u8 m 0x1008L 2;
  Alcotest.(check int) "two notifications" 2 (List.length !hits)

let test_rounding () =
  Alcotest.check i64 "round_up" 0x2000L (Aspace.round_up 0x1001L);
  Alcotest.check i64 "round_up exact" 0x1000L (Aspace.round_up 0x1000L);
  Alcotest.check i64 "round_down" 0x1000L (Aspace.round_down 0x1FFFL);
  Alcotest.(check int) "round_up_int" 4096 (Aspace.round_up_int 1)

let prop_rw_roundtrip =
  QCheck.Test.make ~count:200 ~name:"aspace read/write roundtrip"
    QCheck.(pair (int_bound 4000) int64)
    (fun (off, v) ->
      let m = Aspace.create () in
      Aspace.map m ~addr:0x1000L ~len:8192 ~perm:Aspace.perm_rw;
      let addr = Int64.add 0x1000L (Int64.of_int off) in
      Aspace.write m addr 8 v;
      Aspace.read m addr 8 = v)

let tests =
  [
    t "map + read/write" test_map_rw;
    t "cross-page access" test_cross_page;
    t "permission faults" test_faults;
    t "unmap" test_unmap;
    t "find_free" test_find_free;
    t "asciiz + overlapping move" test_asciiz_move;
    t "store watch" test_store_watch;
    t "page rounding" test_rounding;
    QCheck_alcotest.to_alcotest prop_rw_roundtrip;
  ]
