(* Copy-and-annotate baseline framework tests. *)

let t name f = Alcotest.test_case name `Quick f

let simple_src =
  {| int main() {
       int i; int s; int a[50];
       s = 0;
       for (i = 0; i < 50; i++) { a[i] = i * 3; }
       for (i = 0; i < 50; i++) { s = s + a[i]; }
       print_int(s); print_str("\n");
       return 0;
     } |}

let test_transparency () =
  let img = Minicc.Driver.compile simple_src in
  let native = Native.create img in
  (match Native.run native with
  | Native.Exited 0 -> ()
  | _ -> Alcotest.fail "native failed");
  let e = Caa.create img Caa.tool_none in
  (match Caa.run e with
  | Native.Exited 0 -> ()
  | _ -> Alcotest.fail "caa failed");
  Alcotest.(check string) "stdout preserved"
    (Native.stdout_contents native)
    (Native.stdout_contents e.native)

let test_icount () =
  let img = Minicc.Driver.compile simple_src in
  let tool, counter = Caa.tool_icount () in
  let e = Caa.create img tool in
  (match Caa.run e with Native.Exited 0 -> () | _ -> Alcotest.fail "run failed");
  Alcotest.(check bool) "counted every instruction" true
    (!counter = Native.total_insns e.native)

let test_memtrace_counts_match_lackey () =
  let img = Minicc.Driver.compile simple_src in
  let tool, loads, stores = Caa.tool_memtrace () in
  let e = Caa.create img tool in
  (match Caa.run e with Native.Exited 0 -> () | _ -> Alcotest.fail "run failed");
  (* the same program under Valgrind's Lackey counts IR-level accesses;
     the counts are the same accesses *)
  let s = Vg_core.Session.create ~tool:Tools.Lackey.tool img in
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited 0 -> ()
  | _ -> Alcotest.fail "lackey run failed");
  match Tools.Lackey.(!the_state) with
  | None -> Alcotest.fail "no lackey state"
  | Some st ->
      Alcotest.(check int64) "loads agree" st.n_loads !loads;
      Alcotest.(check int64) "stores agree" st.n_stores !stores

let test_overheads_ordered () =
  let img = Minicc.Driver.compile simple_src in
  let native = Native.create img in
  (match Native.run native with Native.Exited 0 -> () | _ -> assert false);
  let nat = Int64.to_float (Native.total_cycles native) in
  let cycles tool =
    let e = Caa.create (Minicc.Driver.compile simple_src) tool in
    (match Caa.run e with Native.Exited 0 -> () | _ -> assert false);
    Int64.to_float (Caa.total_cycles e)
  in
  let none = cycles Caa.tool_none in
  let icount = cycles (fst (Caa.tool_icount ())) in
  let taint = cycles (Caa.tool_taint ()) in
  Alcotest.(check bool) "none cheap" true (none < nat *. 2.0);
  Alcotest.(check bool) "icount > none" true (icount > none);
  Alcotest.(check bool) "taint > icount" true (taint > icount)

let test_memcheck_class_refused () =
  let img = Minicc.Driver.compile simple_src in
  match Caa.create img Caa.tool_memcheck_like with
  | exception Caa.Unsupported _ -> ()
  | _ -> Alcotest.fail "C&A framework accepted a full-shadow tool"

let test_inline_fp_analysis_refused () =
  (* a tool that tries to attach inline analysis to FP instructions gets
     rejected the first time such an instruction is met *)
  let fp_src = {| int main() { double x; x = 1.5 * 2.0; return (int)x * 0; } |} in
  let img = Minicc.Driver.compile fp_src in
  let bad_tool : Caa.tool =
    {
      t_name = "bad-inline-fp";
      t_instrument =
        (fun _info ->
          [ { Caa.an_fn = (fun _ -> ()); an_inline = true; an_cost = 1 } ]);
      t_wants_shadow_v128 = false;
      t_fini = None;
    }
  in
  let e = Caa.create img bad_tool in
  match Caa.run e with
  | exception Caa.Unsupported _ -> ()
  | _ -> Alcotest.fail "inline FP analysis not rejected"

let tests =
  [
    t "transparency" test_transparency;
    t "icount exact" test_icount;
    t "memtrace agrees with lackey" test_memtrace_counts_match_lackey;
    t "overhead ordering" test_overheads_ordered;
    t "memcheck-class tool refused" test_memcheck_class_refused;
    t "inline FP analysis refused" test_inline_fp_analysis_refused;
  ]
