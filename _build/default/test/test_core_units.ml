(* Unit tests for the core's data structures: translation table,
   dispatcher cache, error recording/suppressions, and the stack-pointer
   change classifier (2MB heuristic + registered stacks). *)

let t name f = Alcotest.test_case name `Quick f

(* a dummy translation for table tests *)
let dummy_trans key : Jit.Pipeline.translation =
  {
    t_guest_addr = key;
    t_code = Bytes.create 4;
    t_decoded = [||];
    t_guest_insns = 1;
    t_guest_bytes = 4;
    t_guest_ranges = [ (key, 4) ];
    t_smc_check = false;
    t_code_hash = 0L;
    t_ir_stmts_pre = 1;
    t_ir_stmts_post = 1;
  }

let test_transtab_basics () =
  let tt = Vg_core.Transtab.create ~capacity:64 () in
  for i = 0 to 29 do
    Vg_core.Transtab.insert tt (Int64.of_int (i * 16)) (dummy_trans (Int64.of_int (i * 16)))
  done;
  (match Vg_core.Transtab.find tt 160L with
  | Some tr -> Alcotest.(check int64) "found right entry" 160L tr.t_guest_addr
  | None -> Alcotest.fail "entry lost");
  Alcotest.(check (option reject)) "missing key" None
    (Option.map ignore (Vg_core.Transtab.find tt 12345L))

let test_transtab_fifo_eviction () =
  let tt = Vg_core.Transtab.create ~capacity:64 () in
  (* push past 80%: eviction drops the OLDEST 1/8 *)
  for i = 0 to 59 do
    Vg_core.Transtab.insert tt (Int64.of_int i) (dummy_trans (Int64.of_int i))
  done;
  Alcotest.(check bool) "evictions happened" true (tt.n_evicted > 0);
  (* the newest entries survive *)
  Alcotest.(check bool) "newest survives" true
    (Vg_core.Transtab.find tt 59L <> None);
  (* the very first insert was FIFO-evicted *)
  Alcotest.(check bool) "oldest evicted" true (Vg_core.Transtab.find tt 0L = None)

let test_transtab_discard_range () =
  let tt = Vg_core.Transtab.create ~capacity:64 () in
  List.iter
    (fun k -> Vg_core.Transtab.insert tt k (dummy_trans k))
    [ 0x1000L; 0x2000L; 0x3000L ];
  let n = Vg_core.Transtab.discard_range tt 0x2000L 4096 in
  Alcotest.(check int) "one discarded" 1 n;
  Alcotest.(check bool) "0x1000 kept" true (Vg_core.Transtab.find tt 0x1000L <> None);
  Alcotest.(check bool) "0x2000 gone" true (Vg_core.Transtab.find tt 0x2000L = None)

let test_dispatch_cache () =
  let d = Vg_core.Dispatch.create ~size:16 () in
  Alcotest.(check bool) "miss on empty" true (Vg_core.Dispatch.lookup d 5L = None);
  Vg_core.Dispatch.update d 5L (dummy_trans 5L);
  (match Vg_core.Dispatch.lookup d 5L with
  | Some tr -> Alcotest.(check int64) "hit" 5L tr.t_guest_addr
  | None -> Alcotest.fail "expected hit");
  (* conflicting key (same slot in a 16-entry direct map) evicts *)
  Vg_core.Dispatch.update d 21L (dummy_trans 21L);
  Alcotest.(check bool) "conflict evicts" true (Vg_core.Dispatch.lookup d 5L = None);
  Alcotest.(check bool) "hit rate computed" true
    (Vg_core.Dispatch.hit_rate d > 0.0 && Vg_core.Dispatch.hit_rate d < 1.0)

let test_errors_dedup () =
  let e = Vg_core.Errors.create ~output:(fun _ -> ()) () in
  let fresh1 = Vg_core.Errors.record e ~kind:"K" ~msg:"m" ~stack:[ 1L; 2L ] in
  let fresh2 = Vg_core.Errors.record e ~kind:"K" ~msg:"m" ~stack:[ 1L; 2L ] in
  let fresh3 = Vg_core.Errors.record e ~kind:"K" ~msg:"m" ~stack:[ 9L ] in
  Alcotest.(check bool) "first is fresh" true fresh1;
  Alcotest.(check bool) "repeat deduplicated" false fresh2;
  Alcotest.(check bool) "different stack fresh" true fresh3;
  Alcotest.(check int) "distinct" 2 (Vg_core.Errors.distinct_errors e);
  Alcotest.(check int) "total counts repeats" 3 (Vg_core.Errors.total_errors e)

let test_suppression_parsing () =
  let supps =
    Vg_core.Errors.parse_suppressions
      {|
# a comment-free format
{
  first
  UninitValue
  fun:main*
  fun:*
}
{
  second
  *
  fun:libfunc
}
|}
  in
  Alcotest.(check int) "two suppressions" 2 (List.length supps);
  let e = Vg_core.Errors.create ~output:(fun _ -> ()) () in
  e.symbolize <- (fun a -> if a = 1L then "main+0x10" else "other");
  List.iter (Vg_core.Errors.add_suppression e) supps;
  Alcotest.(check bool) "matches prefix+wildcard" true
    (Vg_core.Errors.suppressed e ~kind:"UninitValue" ~stack:[ 1L; 2L ]);
  Alcotest.(check bool) "kind mismatch not suppressed" false
    (Vg_core.Errors.suppressed e ~kind:"InvalidRead" ~stack:[ 1L; 2L ])

let test_sp_classifier () =
  let regs = Vg_core.Stack_events.make_registered_stacks () in
  let threshold = 0x20_0000L in
  let classify = Vg_core.Stack_events.classify_sp_change ~threshold regs in
  (* small growth: allocation *)
  (match classify ~old_sp:0x1000L ~new_sp:0xFF0L with
  | Some (base, 16, true) -> Alcotest.(check int64) "alloc base" 0xFF0L base
  | _ -> Alcotest.fail "small growth misclassified");
  (* small shrink: death *)
  (match classify ~old_sp:0xFF0L ~new_sp:0x1000L with
  | Some (base, 16, false) -> Alcotest.(check int64) "die base" 0xFF0L base
  | _ -> Alcotest.fail "small shrink misclassified");
  (* beyond 2MB: a stack switch, no events *)
  Alcotest.(check bool) "2MB heuristic" true
    (classify ~old_sp:0x1000_0000L ~new_sp:0x100_0000L = None);
  (* but a registered stack overrides the heuristic *)
  regs.stacks <- [ (1, 0x100_0000L, 0x1800_0000L) ];
  (match classify ~old_sp:0x1000_0000L ~new_sp:0xFF0_0000L with
  | Some (_, _, true) -> ()
  | _ -> Alcotest.fail "registered stack should allow big moves");
  (* moving between two different registered stacks is a switch *)
  regs.stacks <- (2, 0x2000_0000L, 0x2100_0000L) :: regs.stacks;
  Alcotest.(check bool) "cross-stack move is a switch" true
    (classify ~old_sp:0x1080_0000L ~new_sp:0x2080_0000L = None)

let test_shadow_mem_word_ops () =
  (* extra shadow-memory stress: mixed stores and distinguished states *)
  let sm = Tools.Shadow_mem.create () in
  Tools.Shadow_mem.make_defined sm 0x100000L 1024;
  ignore (Tools.Shadow_mem.store sm 0x100100L 8 0xFF00FF00FF00FF00L);
  let ok, v = Tools.Shadow_mem.load sm 0x100100L 8 in
  Alcotest.(check bool) "addressable" true ok;
  Alcotest.(check int64) "vbits roundtrip" 0xFF00FF00FF00FF00L v;
  let ok2, v2 = Tools.Shadow_mem.load sm 0x100104L 4 in
  Alcotest.(check bool) "addressable2" true ok2;
  Alcotest.(check int64) "unaligned slice" 0xFF00FF00L v2

let test_all_events_fire () =
  (* a compact client touching every Table-1 event source; every event
     slot must have fired at least once under Memcheck *)
  let src =
    {| int deep(int n) {
         int local[32];
         local[0] = n;
         if (n <= 0) { return local[0]; }
         return deep(n - 1) + local[0];
       }
       int main() {
         int tv[2]; int tz[2];
         char *m; char *m2;
         int fd; char buf[8]; int sum;
         sum = 0;
         gettimeofday(tv, tz);
         settimeofday(tv);
         fd = open("f.txt", 0);
         if (fd >= 0) { read(fd, buf, 8); close(fd); }
         write(1, "x\n", 2);
         m = mmap(65536);
         m[0] = 'a';
         m2 = mremap(m, 65536, 131072);
         sum = sum + m2[0];
         munmap(m2, 131072);
         sum = sum + brk(brk(0) + 8192);
         sum = sum + brk(brk(0) - 4096);
         sum = sum + deep(12);
         return sum * 0;
       } |}
  in
  let img = Minicc.Driver.compile src in
  let s = Vg_core.Session.create ~tool:Tools.Memcheck.tool img in
  Kernel.add_file s.kern "f.txt" "contents";
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited 0 -> ()
  | _ -> Alcotest.fail "events client failed");
  List.iter
    (fun (name, _site, count) ->
      Alcotest.(check bool) (name ^ " fired") true (count > 0L))
    (Vg_core.Events.table1_rows s.events)

let tests =
  [
    t "all fourteen events fire" test_all_events_fire;
    t "transtab: insert/find" test_transtab_basics;
    t "transtab: FIFO chunk eviction" test_transtab_fifo_eviction;
    t "transtab: discard range" test_transtab_discard_range;
    t "dispatch: direct-mapped cache" test_dispatch_cache;
    t "errors: dedup" test_errors_dedup;
    t "errors: suppression parsing/matching" test_suppression_parsing;
    t "stack events: SP-change classifier" test_sp_classifier;
    t "shadow memory: word slices" test_shadow_mem_word_ops;
  ]
