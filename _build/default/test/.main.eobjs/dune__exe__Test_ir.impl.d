test/test_ir.ml: Alcotest Array Bytes Char Eval Fmt Hashtbl Helpers Int64 Jit Option Pp QCheck QCheck_alcotest String Support Typecheck Vex_ir
