test/test_support.ml: Alcotest Bits Buf Bytes Fmt Int64 QCheck QCheck_alcotest Rng Support V128
