test/test_asm.ml: Alcotest Bytes Char Fmt Guest Int64 List String Support
