test/test_jit.ml: Alcotest Array Aspace Buffer Bytes Char Guest Host Int64 Jit List Native Printf String Support Tools Vex_ir Vg_core
