test/test_caa.ml: Alcotest Caa Int64 Minicc Native Tools Vg_core
