test/test_kernel.ml: Alcotest Array Aspace Bytes Fmt Int64 Kernel List Support
