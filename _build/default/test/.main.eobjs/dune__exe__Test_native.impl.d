test/test_native.ml: Alcotest Char Guest Kernel Native Printf
