test/test_tools.ml: Alcotest Array Fmt Int64 List Minicc Printf QCheck QCheck_alcotest String Support Tools Vg_core
