test/test_memcheck.ml: Alcotest List Minicc Native String Tools Vg_core
