test/main.mli:
