test/test_core_units.ml: Alcotest Bytes Int64 Jit Kernel List Minicc Option Tools Vg_core
