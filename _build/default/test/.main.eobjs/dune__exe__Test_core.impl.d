test/test_core.ml: Alcotest Aspace Guest Int64 List Minicc Native Test_guest Tools Vg_core
