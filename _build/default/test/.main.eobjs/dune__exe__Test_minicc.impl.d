test/test_minicc.ml: Alcotest Array Int64 Minicc Native Printf QCheck QCheck_alcotest Support Vg_core
