test/test_aspace.ml: Alcotest Aspace Bytes Fmt Int64 List QCheck QCheck_alcotest
