test/test_workloads.ml: Alcotest Guest List Native String Tools Vg_core Workloads
