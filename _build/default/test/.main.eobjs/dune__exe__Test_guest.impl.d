test/test_guest.ml: Alcotest Array Aspace Bytes Char Float Fmt Guest Int64 List QCheck QCheck_alcotest Support
