test/test_host.ml: Alcotest Array Aspace Fmt Host Int64 List QCheck QCheck_alcotest Support Test Vex_ir
