(* VG32 guest architecture tests: encode/decode roundtrips (including a
   random-instruction property), condition-code semantics, and the
   reference interpreter. *)

open Guest.Arch

let t name f = Alcotest.test_case name `Quick f
let i64 = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

(* ---- encode/decode ------------------------------------------------- *)

let roundtrip (i : insn) : insn * int =
  let bytes = Guest.Encode.encode i in
  Guest.Decode.decode (fun a -> Char.code (Bytes.get bytes (Int64.to_int a))) 0L

let sample_insns =
  [
    Nop;
    Mov (0, 7);
    Movi (3, 0xDEADBEEFL);
    Lea (1, mem_bi 2 3 4 (-20L));
    Ld (W1, Zx, 0, mem_b 1 5L);
    Ld (W1, Sx, 0, mem_b 1 5L);
    Ld (W2, Zx, 2, mem_abs 0x1000L);
    Ld (W2, Sx, 2, mem_abs 0x1000L);
    Ld (W4, Zx, 4, mem_bi 5 6 8 12L);
    St (W1, mem_b 7 (-4L), 3);
    St (W2, mem_b 7 (-4L), 3);
    St (W4, mem_bi 0 1 2 100L, 2);
    Alu (ADD, 1, 2);
    Alu (DIVU, 5, 6);
    Alui (XOR, 3, 0xFFL);
    Alui (SHL, 3, 31L);
    Cmp (0, 1);
    Cmpi (2, 1000L);
    Test (3, 4);
    Inc 5;
    Dec 6;
    Neg 0;
    Not 1;
    Setcc (Cles, 2);
    Jcc (Cgtu, 0x12345L);
    Jmp 0x400L;
    Jmpi 3;
    Call 0x500L;
    Calli 4;
    Ret;
    Push 1;
    Pushi 0xCAFEL;
    Pop 2;
    Sysinfo;
    Syscall;
    Clreq;
    Fld (2, mem_b 7 8L);
    Fst (mem_b 7 8L, 1);
    Fmovr (0, 3);
    Fldi (1, 3.14159);
    Falu (FMUL, 0, 1);
    Fun1 (FSQRT, 2, 3);
    Fcmp (0, 1);
    Fitod (2, 5);
    Fdtoi (4, 1);
    Vld (0, mem_b 1 16L);
    Vst (mem_b 1 16L, 2);
    Vmovr (3, 0);
    Valu (VADD32, 1, 2);
    Vsplat (0, 5);
    Vextr (3, 2, 3);
    Ud;
  ]

let test_roundtrip_all () =
  List.iter
    (fun i ->
      let i', len = roundtrip i in
      Alcotest.(check string)
        (Fmt.str "roundtrip %a" pp_insn i)
        (Fmt.str "%a" pp_insn i)
        (Fmt.str "%a" pp_insn i');
      Alcotest.(check int) "length" (Guest.Encode.length i) len)
    sample_insns

(* random instruction generator for the roundtrip property *)
let gen_insn : insn QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = int_bound 7 in
  let freg = int_bound 3 in
  let vreg = int_bound 3 in
  let imm = map Support.Bits.trunc32 (map Int64.of_int int) in
  let mem =
    let* base = opt reg in
    let* index = opt (pair reg (oneofl [ 1; 2; 4; 8 ])) in
    let* disp = imm in
    return { base; index; disp }
  in
  let alu = oneofl [ ADD; SUB; AND; OR; XOR; SHL; SHR; SAR; MUL; DIVS; DIVU ] in
  let cond =
    oneofl [ Ceq; Cne; Clts; Cles; Cgts; Cges; Cltu; Cleu; Cgtu; Cgeu; Cs; Cns ]
  in
  oneof
    [
      return Nop;
      map2 (fun d s -> Mov (d, s)) reg reg;
      map2 (fun d i -> Movi (d, i)) reg imm;
      map2 (fun d m -> Lea (d, m)) reg mem;
      map3 (fun sx d m -> Ld (W1, (if sx then Sx else Zx), d, m)) bool reg mem;
      map2 (fun d m -> Ld (W4, Zx, d, m)) reg mem;
      map2 (fun m s -> St (W4, m, s)) mem reg;
      map3 (fun op d s -> Alu (op, d, s)) alu reg reg;
      map3 (fun op d i -> Alui (op, d, i)) alu reg imm;
      map2 (fun c d -> Setcc (c, d)) cond reg;
      map2 (fun c tgt -> Jcc (c, tgt)) cond imm;
      map (fun t -> Jmp t) imm;
      map (fun r -> Calli r) reg;
      map2 (fun d m -> Fld (d, m)) freg mem;
      map3 (fun op d s -> Valu (op, d, s))
        (oneofl [ VAND; VOR; VXOR; VADD32; VSUB32; VCMPEQ32; VADD8; VSUB8 ])
        vreg vreg;
      map2 (fun d lane -> Vextr (d, 0, lane)) reg (int_bound 3);
    ]

let prop_roundtrip =
  QCheck.Test.make ~count:500 ~name:"random insn encode/decode roundtrip"
    (QCheck.make gen_insn ~print:(Fmt.str "%a" pp_insn))
    (fun i ->
      let i', _ = roundtrip i in
      Fmt.str "%a" pp_insn i = Fmt.str "%a" pp_insn i')

(* ---- condition codes ------------------------------------------------ *)

let flags_after_cmp a b =
  Guest.Flags.calculate ~op:Guest.Flags.cc_op_sub ~dep1:a ~dep2:b ~ndep:0L

let prop_cond_signed =
  QCheck.Test.make ~count:500 ~name:"flags: signed compare conditions"
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      let a = Support.Bits.trunc32 a and b = Support.Bits.trunc32 b in
      let f = flags_after_cmp a b in
      let sa = Support.Bits.sext32 a and sb = Support.Bits.sext32 b in
      Guest.Flags.cond_holds Clts f = (sa < sb)
      && Guest.Flags.cond_holds Cles f = (sa <= sb)
      && Guest.Flags.cond_holds Ceq f = (sa = sb)
      && Guest.Flags.cond_holds Cgts f = (sa > sb))

let prop_cond_unsigned =
  QCheck.Test.make ~count:500 ~name:"flags: unsigned compare conditions"
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      let a = Support.Bits.trunc32 a and b = Support.Bits.trunc32 b in
      let f = flags_after_cmp a b in
      Guest.Flags.cond_holds Cltu f = (Int64.unsigned_compare a b < 0)
      && Guest.Flags.cond_holds Cgeu f = (Int64.unsigned_compare a b >= 0))

let test_fcmp_flags () =
  let f a b =
    Guest.Flags.calculate ~op:Guest.Flags.cc_op_fcmp
      ~dep1:(Guest.Flags.fcmp_code a b) ~dep2:0L ~ndep:0L
  in
  Alcotest.(check bool) "1<2 -> b" true (Guest.Flags.cond_holds Cltu (f 1.0 2.0));
  Alcotest.(check bool) "2=2 -> eq" true (Guest.Flags.cond_holds Ceq (f 2.0 2.0));
  Alcotest.(check bool) "3>2 -> a" true (Guest.Flags.cond_holds Cgtu (f 3.0 2.0));
  Alcotest.(check bool) "nan unordered -> be" true
    (Guest.Flags.cond_holds Cleu (f Float.nan 2.0))

(* ---- interpreter ----------------------------------------------------- *)

let run_asm ?(steps = 10_000) src =
  let img = Guest.Asm.assemble src in
  let mem = Aspace.create () in
  let entry, sp, _brk, _ = Guest.Image.load img mem in
  let st = Guest.Interp.create mem in
  st.regs.(reg_sp) <- sp;
  st.eip <- entry;
  let cached = Guest.Interp.with_cache st in
  let stop = ref false in
  let handlers =
    { Guest.Interp.on_syscall = (fun _ -> stop := true);
      on_clreq = (fun s -> s.regs.(0) <- 0L) }
  in
  let n = ref 0 in
  while (not !stop) && !n < steps do
    Guest.Interp.step cached handlers;
    incr n
  done;
  st

let test_interp_flags_thunk () =
  (* inc must preserve CF across (like x86) *)
  let st =
    run_asm
      {|
        .text
_start: movi r0, 0xFFFFFFFF
        movi r1, 1
        add r0, r1          ; sets CF
        inc r1              ; must keep CF
        setb r2             ; CF -> r2
        seteq r3            ; ZF from inc result (2): not zero
        syscall
|}
  in
  Alcotest.check i64 "CF preserved by inc" 1L st.regs.(2);
  Alcotest.check i64 "ZF from inc" 0L st.regs.(3)

let test_interp_div_traps () =
  let img =
    Guest.Asm.assemble
      {|
        .text
_start: movi r0, 10
        movi r1, 0
        divs r0, r1
|}
  in
  let mem = Aspace.create () in
  let entry, sp, _, _ = Guest.Image.load img mem in
  let st = Guest.Interp.create mem in
  st.regs.(reg_sp) <- sp;
  st.eip <- entry;
  let cached = Guest.Interp.with_cache st in
  let h = Guest.Interp.default_handlers in
  Guest.Interp.step cached h;
  Guest.Interp.step cached h;
  (try
     Guest.Interp.step cached h;
     Alcotest.fail "expected Sigfpe"
   with Guest.Interp.Sigfpe _ -> ());
  (* eip left pointing at the faulting instruction *)
  Alcotest.check i64 "precise eip" (Int64.add img.entry 12L) st.eip

let test_interp_sysinfo () =
  let st =
    run_asm {|
        .text
_start: movi r0, 0
        sysinfo
        syscall
|}
  in
  Alcotest.check i64 "sysinfo magic" 0x56473332L st.regs.(0);
  Alcotest.check i64 "sysinfo version" 1L st.regs.(1)

let test_interp_vector () =
  let st =
    run_asm
      {|
        .text
_start: movi r0, 5
        vsplat v0, r0
        vadd32 v0, v0       ; lanes = 10
        movi r1, 3
        vsplat v1, r1
        vadd32 v0, v1       ; lanes = 13
        vextr r2, v0, 2
        syscall
|}
  in
  Alcotest.check i64 "vector lane arithmetic" 13L st.regs.(2)

let smc_stack_src =
  (* copy a template routine onto the (executable) stack, patch its
     immediate operand, call it, patch again, call again — the GCC
     trampoline pattern of §3.16 *)
  {|
        .text
_start: mov r2, sp
        subi r2, 256         ; code buffer on the stack
        movi r1, template
        movi r3, 16
cploop: ldb r4, [r1]
        stb [r2], r4
        inc r1
        inc r2
        dec r3
        jne cploop
        mov r2, sp
        subi r2, 256
        movi r4, 77
        stw [r2+2], r4       ; patch the movi immediate
        call* r2
        mov r5, r0           ; 77
        movi r4, 1000
        stw [r2+2], r4       ; repatch
        call* r2
        add r5, r0           ; 1077
        mov r1, r5
        movi r0, 1           ; exit(r5)
        syscall
template:
        movi r0, 11
        ret
|}

let test_smc_native () =
  let st = run_asm smc_stack_src in
  Alcotest.check i64 "patched code executed twice" 1077L st.regs.(1)

let tests =
  [
    t "encode/decode all constructors" test_roundtrip_all;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_cond_signed;
    QCheck_alcotest.to_alcotest prop_cond_unsigned;
    t "fcmp flags" test_fcmp_flags;
    t "interp: flags thunk (inc keeps CF)" test_interp_flags_thunk;
    t "interp: div-by-zero traps precisely" test_interp_div_traps;
    t "interp: sysinfo" test_interp_sysinfo;
    t "interp: vector ops" test_interp_vector;
    t "interp: self-modifying code" test_smc_native;
  ]
