(* Memcheck behaviour tests: error detection, transparency, heap
   tracking, client requests, leak checking. *)

let run_mc ?(expect_exit = 0) src =
  let img = Minicc.Driver.compile src in
  let s = Vg_core.Session.create ~tool:Tools.Memcheck.tool img in
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited n -> Alcotest.(check int) "exit code" expect_exit n
  | Vg_core.Session.Fatal_signal sg -> Alcotest.failf "fatal signal %d" sg
  | Vg_core.Session.Out_of_fuel -> Alcotest.fail "out of fuel");
  let errors = s.errors in
  (s, errors, Vg_core.Session.client_stdout s)

let kinds (errors : Vg_core.Errors.t) =
  List.map (fun e -> e.Vg_core.Errors.err_kind) errors.errors

let has_kind errors k = List.mem k (kinds errors)

let t name f = Alcotest.test_case name `Quick f

let test_clean () =
  let _, errors, out =
    run_mc ~expect_exit:7
      {| int main() {
           int *p; int i; int s;
           p = (int*)malloc(10 * sizeof(int));
           for (i = 0; i < 10; i++) { p[i] = i; }
           s = p[3] + p[4];
           free((char*)p);
           print_str("ok\n");
           return s;
         } |}
  in
  Alcotest.(check (list string)) "no errors" [] (kinds errors);
  Alcotest.(check string) "output intact" "ok\n" out

let test_uninit_condition () =
  let _, errors, _ =
    run_mc
      {| int main() {
           int x[2];
           int r;
           r = 0;
           if (x[0] > 3) { r = 1; }   /* x[0] never written */
           return r * 0;
         } |}
  in
  Alcotest.(check bool) "uninit reported" true (has_kind errors "UninitValue")

let test_defined_after_write () =
  let _, errors, _ =
    run_mc
      {| int main() {
           int x[2];
           x[0] = 5;
           if (x[0] > 3) { return 0; }
           return 0;
         } |}
  in
  Alcotest.(check bool) "no uninit after init" false
    (has_kind errors "UninitValue")

let test_heap_overflow () =
  let _, errors, _ =
    run_mc
      {| int main() {
           char *p;
           p = malloc(8);
           p[8] = 'x';          /* one past the end: invalid write */
           free(p);
           return 0;
         } |}
  in
  Alcotest.(check bool) "invalid write" true (has_kind errors "InvalidWrite")

let test_heap_underflow_read () =
  let _, errors, _ =
    run_mc
      {| int main() {
           char *p; char c;
           p = malloc(8);
           c = p[-1];           /* red zone: invalid read */
           free(p);
           return (int)c * 0;
         } |}
  in
  Alcotest.(check bool) "invalid read" true (has_kind errors "InvalidRead")

let test_use_after_free () =
  let _, errors, _ =
    run_mc
      {| int main() {
           int *p; int v;
           p = (int*)malloc(16);
           p[0] = 42;
           free((char*)p);
           v = p[0];            /* use after free */
           return v * 0;
         } |}
  in
  Alcotest.(check bool) "use-after-free read" true
    (has_kind errors "InvalidRead")

let test_invalid_free () =
  let _, errors, _ =
    run_mc
      {| int main() {
           int x;
           x = 5;
           free((char*)&x);     /* not a heap block */
           return 0;
         } |}
  in
  Alcotest.(check bool) "invalid free" true (has_kind errors "InvalidFree")

let test_double_free () =
  let _, errors, _ =
    run_mc
      {| int main() {
           char *p;
           p = malloc(8);
           free(p);
           free(p);
           return 0;
         } |}
  in
  Alcotest.(check bool) "double free reported" true
    (has_kind errors "InvalidFree")

let test_leak () =
  let _, errors, _ =
    run_mc
      {| int main() {
           char *p;
           p = malloc(100);
           p = (char*)0;        /* lose the only pointer */
           return 0;
         } |}
  in
  Alcotest.(check bool) "leak reported" true (has_kind errors "Leak")

let test_no_leak_when_reachable () =
  let _, errors, _ =
    run_mc
      {| char *keep;
         int main() {
           keep = malloc(100);  /* still reachable via global */
           return 0;
         } |}
  in
  Alcotest.(check bool) "no leak for reachable" false (has_kind errors "Leak")

let test_client_requests () =
  let _, errors, _ =
    run_mc ~expect_exit:1
      {| int main() {
           int x[2];
           int r;
           vg_make_mem_defined((char*)x, 8);   /* pretend initialised */
           r = 0;
           if (x[0] > 3) { r = 1; }            /* no error now */
           if (vg_running_on_valgrind()) { return 1; }
           return 2;
         } |}
  in
  Alcotest.(check bool) "request suppressed error" false
    (has_kind errors "UninitValue")

let test_calloc_defined () =
  let _, errors, _ =
    run_mc ~expect_exit:0
      {| int main() {
           int *p;
           p = (int*)calloc(4, 4);
           if (p[2] != 0) { return 9; }   /* calloc memory is defined */
           free((char*)p);
           return 0;
         } |}
  in
  Alcotest.(check (list string)) "calloc clean" [] (kinds errors)

let test_realloc_copies_definedness () =
  let _, errors, _ =
    run_mc ~expect_exit:5
      {| int main() {
           int *p;
           p = (int*)malloc(8);
           p[0] = 5;
           p = (int*)realloc((char*)p, 64);
           if (p[0] == 5) { free((char*)p); return 5; }
           free((char*)p);
           return 0;
         } |}
  in
  (* p[1] was never written but also never read: clean *)
  Alcotest.(check (list string)) "realloc clean" [] (kinds errors)

let test_copy_propagates_undef () =
  let _, errors, _ =
    run_mc
      {| int main() {
           int a[2];
           int b;
           b = a[1];            /* copying undefined is NOT an error */
           if (b == 7) { return 1; }  /* but using it is */
           return 0;
         } |}
  in
  Alcotest.(check bool) "undef propagated through copy" true
    (has_kind errors "UninitValue")

let test_syscall_param_uninit () =
  let _, errors, _ =
    run_mc
      {| int main() {
           char buf[8];
           write(1, buf, 8);    /* writing uninitialised bytes */
           return 0;
         } |}
  in
  Alcotest.(check bool) "syscall uninit param" true
    (has_kind errors "SyscallParam")

let test_transparency () =
  (* identical behaviour with and without Memcheck *)
  let src =
    {| int main() {
         int i; int s; int *p;
         p = (int*)malloc(400);
         s = 0;
         for (i = 0; i < 100; i++) { p[i] = i * i; }
         for (i = 0; i < 100; i++) { s = s + p[i]; }
         free((char*)p);
         print_int(s); print_str("\n");
         return s % 251;
       } |}
  in
  let img = Minicc.Driver.compile src in
  let eng = Native.create img in
  let ncode = match Native.run eng with Native.Exited n -> n | _ -> -1 in
  let _, _, mout = run_mc ~expect_exit:ncode src in
  Alcotest.(check string) "stdout equal" (Native.stdout_contents eng) mout

(* ---- origin tracking (--track-origins) ------------------------------ *)

let msg_contains errors frag =
  List.exists
    (fun e ->
      let s = e.Vg_core.Errors.err_msg in
      let n = String.length frag in
      let rec go i =
        i + n <= String.length s && (String.sub s i n = frag || go (i + 1))
      in
      go 0)
    errors.Vg_core.Errors.errors

let run_mc_origins ?(expect_exit = 0) src =
  let img = Minicc.Driver.compile src in
  let s = Vg_core.Session.create ~tool:Tools.Memcheck.tool_origins img in
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited n -> Alcotest.(check int) "exit code" expect_exit n
  | _ -> Alcotest.fail "bad termination");
  s.errors

let test_origin_heap () =
  let errors =
    run_mc_origins
      {| int main() {
           int *p; int r;
           p = (int*)malloc(16);
           r = 0;
           if (p[1] > 3) { r = 1; }    /* uninit from the heap */
           free((char*)p);
           return r * 0;
         } |}
  in
  Alcotest.(check bool) "origin names the heap" true
    (msg_contains errors "created by a heap allocation")

let test_origin_stack () =
  let errors =
    run_mc_origins
      {| int junk() { int x[8]; return x[3]; }  /* uninit stack junk */
         int main() {
           int r;
           r = 0;
           if (junk() > 3) { r = 1; }
           return r * 0;
         } |}
  in
  Alcotest.(check bool) "origin names the stack" true
    (msg_contains errors "created by a stack allocation")

let test_origins_transparent () =
  let src =
    {| int main() {
         int i; int s; int *p;
         p = (int*)malloc(100 * sizeof(int));
         s = 0;
         for (i = 0; i < 100; i++) { p[i] = i * 7; }
         for (i = 0; i < 100; i++) { s = s + p[i]; }
         free((char*)p);
         print_int(s); print_str("\n");
         return s % 199;
       } |}
  in
  let img = Minicc.Driver.compile src in
  let eng = Native.create img in
  let ncode = match Native.run eng with Native.Exited n -> n | _ -> -1 in
  let s = Vg_core.Session.create ~tool:Tools.Memcheck.tool_origins img in
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited n -> Alcotest.(check int) "exit agrees" ncode n
  | _ -> Alcotest.fail "bad termination");
  Alcotest.(check string) "stdout agrees" (Native.stdout_contents eng)
    (Vg_core.Session.client_stdout s);
  Alcotest.(check (list string)) "clean run" []
    (List.map (fun e -> e.Vg_core.Errors.err_kind) s.errors.errors)

let tests =
  [
    t "clean program: no errors" test_clean;
    t "origins: heap allocation named" test_origin_heap;
    t "origins: stack allocation named" test_origin_stack;
    t "origins: transparent on clean code" test_origins_transparent;
    t "uninitialised condition" test_uninit_condition;
    t "defined after write" test_defined_after_write;
    t "heap overflow write" test_heap_overflow;
    t "red-zone read" test_heap_underflow_read;
    t "use after free" test_use_after_free;
    t "invalid free" test_invalid_free;
    t "double free" test_double_free;
    t "leak detected" test_leak;
    t "reachable block not leaked" test_no_leak_when_reachable;
    t "client requests" test_client_requests;
    t "calloc is defined" test_calloc_defined;
    t "realloc copies definedness" test_realloc_copies_definedness;
    t "copies propagate undefinedness" test_copy_propagates_undef;
    t "syscall uninit param" test_syscall_param_uninit;
    t "transparency" test_transparency;
  ]
