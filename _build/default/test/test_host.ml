(* VH64 host machine tests: encode/decode roundtrip, ALU semantics
   (property-tested against Int64), helper calls, exits. *)

open Host.Arch

let t name f = Alcotest.test_case name `Quick f
let i64 = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

let sample =
  [
    Movi (3, 0x123456789ABCDEF0L);
    Mov (1, 2);
    Alu (W32, Add, 0, 1, 2);
    Alu (W64, Mulhs, 5, 6, 7);
    Alui (W32, Xor, 3, 3, -1L);
    Alui (W64, Sar, 4, 4, 63L);
    Ld (4, true, 2, 15, 1024);
    Ld (1, false, 2, 3, -8);
    St (8, 1, 15, 640);
    Cmov (0, 1, 2);
    Falu (FMul, 3, 4, 5);
    Fun1 (I32StoF64, 1, 2);
    Fun1 (Clz32, 1, 2);
    Vld (3, 15, 96);
    Vst (2, 0, 0);
    Vmov (1, 2);
    Valu (VAdd32, 0, 1, 2);
    Vnot (3, 3);
    Vsplat32 (2, 9);
    Vpack (1, 3, 4);
    Vunpack (5, 1, 1);
    Call (3, 2, 8);
    ExitIf (2, ek_boring, 0x1234L);
    Goto (ek_ret, 7);
    GotoI (ek_syscall, 0xFFFFL);
  ]

let test_roundtrip () =
  (* jumps need labels; test them separately below *)
  let bytes = Host.Encode.assemble sample in
  let decoded = Host.Encode.decode bytes in
  Alcotest.(check int) "count" (List.length sample) (Array.length decoded);
  List.iteri
    (fun i orig ->
      Alcotest.(check string)
        (Fmt.str "insn %d" i)
        (Fmt.str "%a" pp_insn orig)
        (Fmt.str "%a" pp_insn decoded.(i)))
    sample

let test_labels () =
  let code =
    [ Movi (0, 1L); Jnz (0, 7); Movi (1, 111L); Label 7; GotoI (ek_boring, 0L) ]
  in
  let decoded = Host.Encode.decode (Host.Encode.assemble code) in
  (* after decoding, the branch target is an instruction index; Label
     occupies no bytes, so in the decoded array (which has no Label) the
     target is the GotoI at index 3 *)
  match decoded.(1) with
  | Jnz (0, 3) -> ()
  | i -> Alcotest.failf "bad branch rewrite: %a" pp_insn i

let null_env : Vex_ir.Helpers.env =
  {
    he_get_guest = (fun _ _ -> 0L);
    he_put_guest = (fun _ _ _ -> ());
    he_load = (fun _ _ -> 0L);
    he_store = (fun _ _ _ -> ());
  }

let run_host ?(setup = fun _ -> ()) (code : insn list) : Host.Interp.cpu * int64 =
  let mem = Aspace.create () in
  Aspace.map mem ~addr:0x1000L ~len:8192 ~perm:Aspace.perm_rw;
  let cpu = Host.Interp.create mem in
  setup cpu;
  let decoded = Host.Encode.decode (Host.Encode.assemble code) in
  let _, dest, _ = Host.Interp.run cpu ~env:null_env decoded in
  (cpu, dest)

let test_alu_widths () =
  let cpu, _ =
    run_host
      [
        Movi (1, 0xFFFFFFFFL);
        Movi (2, 1L);
        Alu (W32, Add, 3, 1, 2);
        (* wraps to 0 *)
        Alu (W64, Add, 4, 1, 2);
        (* 0x100000000 *)
        Alui (W32, Sar, 5, 1, 1L);
        (* sign bit set in W32 view -> stays 0x7FFFFFFF? no: sar of
           0xFFFFFFFF as signed 32 = -1 -> 0xFFFFFFFF *)
        GotoI (ek_boring, 0L);
      ]
  in
  Alcotest.check i64 "w32 wrap" 0L cpu.hregs.(3);
  Alcotest.check i64 "w64 no wrap" 0x100000000L cpu.hregs.(4);
  Alcotest.check i64 "w32 sar" 0xFFFFFFFFL cpu.hregs.(5)

let test_memory_and_exits () =
  let cpu, dest =
    run_host
      [
        Movi (1, 0x1100L);
        Movi (2, 0xCAFEBABE12345678L);
        St (8, 2, 1, 0);
        Ld (4, false, 3, 1, 0);
        Ld (4, true, 4, 1, 4);
        Ld (2, false, 5, 1, 6);
        ExitIf (0, ek_boring, 0x9999L);
        (* h0=0: not taken *)
        Goto (ek_ret, 3);
      ]
  in
  Alcotest.check i64 "zext load" 0x12345678L cpu.hregs.(3);
  Alcotest.check i64 "sext load" 0xFFFFFFFFCAFEBABEL cpu.hregs.(4);
  Alcotest.check i64 "halfword" 0xCAFEL cpu.hregs.(5);
  Alcotest.check i64 "goto truncates to 32" 0x12345678L dest

let test_fp_on_gprs () =
  let cpu, _ =
    run_host
      [
        Movi (1, Int64.bits_of_float 2.5);
        Movi (2, Int64.bits_of_float 4.0);
        Falu (FMul, 3, 1, 2);
        Fun1 (F64toI32S, 4, 3);
        Movi (5, 9L);
        Fun1 (I32StoF64, 6, 5);
        Fun1 (FSqrt, 7, 6);
        GotoI (ek_boring, 0L);
      ]
  in
  Alcotest.(check (float 1e-9)) "fmul" 10.0 (Int64.float_of_bits cpu.hregs.(3));
  Alcotest.check i64 "f2i" 10L cpu.hregs.(4);
  Alcotest.(check (float 1e-9)) "sqrt" 3.0 (Int64.float_of_bits cpu.hregs.(7))

let test_helper_call () =
  let callee =
    Vex_ir.Helpers.register ~name:"host_test_mul" ~cost:2 (fun _env args ->
        Int64.mul args.(0) args.(1))
  in
  let cpu, _ =
    run_host
      [
        Movi (0, 6L);
        Movi (1, 7L);
        Call (callee.c_id, 2, callee.c_cost);
        GotoI (ek_boring, 0L);
      ]
  in
  Alcotest.check i64 "result in h0" 42L cpu.hregs.(0)

let test_div_trap () =
  try
    ignore
      (run_host [ Movi (1, 1L); Movi (2, 0L); Alu (W32, Divs, 3, 1, 2) ]);
    Alcotest.fail "expected Host_sigfpe"
  with Host.Interp.Host_sigfpe -> ()

let test_cost_accounting () =
  let cpu, _ =
    run_host [ Movi (0, 1L); Movi (1, 2L); GotoI (ek_boring, 0L) ]
  in
  Alcotest.check i64 "3 cycles for 3 single-cycle insns" 3L cpu.cycles;
  Alcotest.check i64 "3 insns" 3L cpu.insns

(* property: W32 ALU ops match the reference semantics of Bits *)
let prop_alu32 =
  let open QCheck in
  Test.make ~count:300 ~name:"host W32 alu = Bits semantics"
    (triple (oneofl [ Add; Sub; And; Or; Xor; Mul ]) int64 int64)
    (fun (op, a, b) ->
      let a = Support.Bits.trunc32 a and b = Support.Bits.trunc32 b in
      let expected =
        Support.Bits.trunc32
          (match op with
          | Add -> Int64.add a b
          | Sub -> Int64.sub a b
          | And -> Int64.logand a b
          | Or -> Int64.logor a b
          | Xor -> Int64.logxor a b
          | Mul -> Int64.mul a b
          | _ -> assert false)
      in
      Host.Interp.alu_eval W32 op a b = expected)

let tests =
  [
    t "encode/decode roundtrip" test_roundtrip;
    t "label resolution" test_labels;
    t "alu widths" test_alu_widths;
    t "memory + exits" test_memory_and_exits;
    t "fp on gprs" test_fp_on_gprs;
    t "helper calls" test_helper_call;
    t "div traps" test_div_trap;
    t "cycle accounting" test_cost_accounting;
    QCheck_alcotest.to_alcotest prop_alu32;
  ]
