(* The benchmark suite must be healthy: every workload compiles, runs
   natively, and behaves identically under the Valgrind engine. *)

let t name speed f = Alcotest.test_case name speed f

let native_result (img : Guest.Image.t) =
  let eng = Native.create img in
  match Native.run ~max_insns:200_000_000L eng with
  | Native.Exited 0 -> Native.stdout_contents eng
  | Native.Exited n -> Alcotest.failf "native exit %d" n
  | Native.Fatal_signal s -> Alcotest.failf "native signal %d" s
  | Native.Out_of_fuel -> Alcotest.fail "native out of fuel"

let vg_result tool (img : Guest.Image.t) =
  let s = Vg_core.Session.create ~tool img in
  match Vg_core.Session.run s with
  | Vg_core.Session.Exited 0 -> Vg_core.Session.client_stdout s
  | Vg_core.Session.Exited n -> Alcotest.failf "vg exit %d" n
  | Vg_core.Session.Fatal_signal s -> Alcotest.failf "vg signal %d" s
  | Vg_core.Session.Out_of_fuel -> Alcotest.fail "vg out of fuel"

let test_native_all () =
  List.iter
    (fun (w : Workloads.workload) ->
      let img = Workloads.compile ~scale:1 w in
      let out = native_result img in
      Alcotest.(check bool)
        (w.w_name ^ " prints its name")
        true
        (String.length out > String.length w.w_name
        && String.sub out 0 (String.length w.w_name) = w.w_name))
    Workloads.all

(* nulgrind transparency over the whole suite (slow-ish) *)
let test_nulgrind_all () =
  List.iter
    (fun (w : Workloads.workload) ->
      let img = Workloads.compile ~scale:1 w in
      let nout = native_result img in
      let vout = vg_result Vg_core.Tool.nulgrind img in
      Alcotest.(check string) (w.w_name ^ " output") nout vout)
    Workloads.all

(* memcheck transparency on a representative subset *)
let test_memcheck_subset () =
  List.iter
    (fun name ->
      match Workloads.find name with
      | None -> Alcotest.failf "missing workload %s" name
      | Some w ->
          let img = Workloads.compile ~scale:1 w in
          let nout = native_result img in
          let vout = vg_result Tools.Memcheck.tool img in
          Alcotest.(check string) (name ^ " under memcheck") nout vout)
    [ "gcc"; "mcf"; "perlbmk"; "ammp"; "vortex" ]

let tests =
  [
    t "all workloads run natively" `Slow test_native_all;
    t "all workloads transparent under nulgrind" `Slow test_nulgrind_all;
    t "subset transparent under memcheck" `Slow test_memcheck_subset;
  ]
