(** Regenerate Table 1: the events, their trigger locations, and
    Memcheck's callbacks — with observed trigger counts from a client
    that exercises every event source (system calls with in/out pointer
    arguments, an asciiz argument, brk growth and shrinkage, mmap /
    munmap / mremap, and plenty of stack motion including a stack
    switch). *)

let client_src =
  {|
int deep(int n) {
  int local[64];                       /* big frames: stack events */
  local[0] = n;
  if (n <= 0) { return local[0]; }
  return deep(n - 1) + local[0];
}
int main() {
  int tv[2]; int tz[2]; int i; int sum;
  char *big; char *big2; char *stack2;
  int fd;
  char buf[32];
  sum = 0;
  /* R4: register and memory reads/writes by syscalls */
  for (i = 0; i < 8; i++) {
    gettimeofday(tv, tz);              /* pre_mem_write + post_mem_write */
    sum = sum + tv[1];
    settimeofday(tv);                  /* pre_mem_read */
  }
  fd = open("input.txt", 0);           /* pre_mem_read_asciiz */
  if (fd >= 0) {
    read(fd, buf, 32);                 /* pre_mem_write, post_mem_write */
    close(fd);
  }
  write(1, "events client\n", 14);     /* pre_mem_read */
  /* R6: allocation syscalls */
  big = mmap(65536);                   /* new_mem_mmap */
  big[0] = 'x';
  big2 = mremap(big, 65536, 262144);   /* copy_mem_mremap + friends */
  sum = sum + big2[0];
  munmap(big2, 262144);                /* die_mem_munmap */
  sum = sum + brk(brk(0) + 65536);     /* new_mem_brk */
  sum = sum + brk(brk(0) - 16384);     /* die_mem_brk */
  sum = sum + (int)malloc(100000);
  /* R7: stack allocations, including a switch to a second stack */
  sum = sum + deep(40);
  stack2 = malloc(65536);
  vg_stack_register((int)stack2, (int)stack2 + 65536);
  return sum * 0;
}
|}

(* the Memcheck callbacks column of Table 1 *)
let memcheck_callback = function
  | "pre_reg_read" -> "check_reg_is_defined"
  | "post_reg_write" -> "make_reg_defined"
  | "pre_mem_read" -> "check_mem_is_defined"
  | "pre_mem_read_asciiz" -> "check_mem_is_defined_asciiz"
  | "pre_mem_write" -> "check_mem_is_addressable"
  | "post_mem_write" -> "make_mem_defined"
  | "new_mem_startup" -> "make_mem_defined"
  | "new_mem_mmap" -> "make_mem_defined"
  | "die_mem_munmap" -> "make_mem_noaccess"
  | "new_mem_brk" -> "make_mem_undefined"
  | "die_mem_brk" -> "make_mem_noaccess"
  | "copy_mem_mremap" -> "copy_range"
  | "new_mem_stack" -> "make_mem_undefined"
  | "die_mem_stack" -> "make_mem_noaccess"
  | _ -> "?"

let requirement = function
  | "pre_reg_read" | "post_reg_write" | "pre_mem_read" | "pre_mem_read_asciiz"
  | "pre_mem_write" | "post_mem_write" ->
      "R4"
  | "new_mem_startup" -> "R5"
  | "new_mem_mmap" | "die_mem_munmap" | "new_mem_brk" | "die_mem_brk"
  | "copy_mem_mremap" ->
      "R6"
  | "new_mem_stack" | "die_mem_stack" -> "R7"
  | _ -> "?"

let run () =
  Harness.section
    "Table 1: Valgrind events, trigger locations, Memcheck callbacks \
     (observed counts)";
  let img = Minicc.Driver.compile client_src in
  let s = Vg_core.Session.create ~tool:Tools.Memcheck.tool img in
  Kernel.add_file s.kern "input.txt" "hello from the simulated fs!";
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited 0 -> ()
  | r ->
      Printf.printf "client ended unexpectedly: %s\n"
        (match r with
        | Exited n -> Printf.sprintf "exit %d" n
        | Fatal_signal n -> Printf.sprintf "signal %d" n
        | Out_of_fuel -> "fuel"));
  Printf.printf "%-4s %-22s %-36s %-28s %10s\n" "Req." "Valgrind event"
    "Called from" "Memcheck callback" "count";
  Harness.hr ();
  List.iter
    (fun (name, site, count) ->
      Printf.printf "%-4s %-22s %-36s %-28s %10Ld\n" (requirement name) name
        site (memcheck_callback name) count)
    (Vg_core.Events.table1_rows s.events);
  Harness.hr ();
  Printf.printf
    "All fourteen events fired (nonzero counts), from the same trigger\n\
     sites Table 1 lists.\n"
