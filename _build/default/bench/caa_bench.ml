(** §5.3/§5.4 comparisons against the copy-and-annotate baseline (the
    Pin/DynamoRIO stand-in).

    Reproduced claims:
    - lightweight tools: C&A wins big (paper: Valgrind 4.0x slower than
      Pin with no instrumentation, 3.3x for basic-block counting);
    - a TaintTrace/LIFT-class C&A taint tool is much faster than
      Memcheck but "less robust and [with] more limited instrumentation
      capabilities": it cannot handle FP/SIMD code (taint silently
      lost), and a Memcheck-class tool cannot be built at all because
      the framework has no 128-bit virtual registers. *)

let subset = [ "bzip2"; "mcf"; "perlbmk"; "vpr" ]

let gm_over f =
  Harness.geomean
    (List.filter_map
       (fun n ->
         match Workloads.find n with
         | None -> None
         | Some w -> Some (f w))
       subset)

let caa_slowdown (mk_tool : unit -> Caa.tool) (w : Workloads.workload) : float =
  let img = Workloads.compile ~scale:1 w in
  let native = Harness.run_native img in
  let e = Caa.create img (mk_tool ()) in
  (match Caa.run e with
  | Native.Exited 0 -> ()
  | _ -> failwith "caa run failed");
  Int64.to_float (Caa.total_cycles e) /. Int64.to_float native.nr_cycles

let vg_slowdown (tool : Vg_core.Tool.t) (w : Workloads.workload) : float =
  let img = Workloads.compile ~scale:1 w in
  let native = Harness.run_native img in
  let tr = Harness.run_tool tool img in
  Harness.slowdown native tr

let run () =
  Harness.section
    "§5.4: Valgrind vs a copy-and-annotate framework (the Pin stand-in)";
  let rows =
    [
      ( "no instrumentation",
        gm_over (vg_slowdown Vg_core.Tool.nulgrind),
        gm_over (caa_slowdown (fun () -> Caa.tool_none)) );
      ( "instruction counting",
        gm_over (vg_slowdown Tools.Icnt.icnt_inline),
        gm_over (caa_slowdown (fun () -> fst (Caa.tool_icount ()))) );
      ( "memory tracing",
        gm_over (vg_slowdown Tools.Lackey.tool),
        gm_over
          (caa_slowdown
             (fun () ->
               let t, _, _ = Caa.tool_memtrace () in
               t)) );
      ( "byte taint (heavyweight)",
        gm_over (vg_slowdown Tools.Taintgrind.tool),
        gm_over (caa_slowdown (fun () -> Caa.tool_taint ())) );
    ]
  in
  Printf.printf "%-26s %12s %10s %18s\n" "tool class" "Valgrind" "C&A"
    "Valgrind/C&A";
  Harness.hr ();
  List.iter
    (fun (name, vg, caa) ->
      Printf.printf "%-26s %11.1fx %9.1fx %17.1fx\n" name vg caa (vg /. caa))
    rows;
  Harness.hr ();
  Printf.printf
    "(Paper: no-instr ratio 4.0x vs Pin, bb-counting 3.3x; for the\n\
     heavyweight class the C&A tool is TaintTrace/LIFT-like — faster,\n\
     but integer-only.)\n\n";
  (* capability comparison: Memcheck under Valgrind vs Memcheck-class on C&A *)
  Printf.printf "Capability checks (R1/R3, paper §5.3):\n";
  let img = Workloads.compile ~scale:1 (Option.get (Workloads.find "mcf")) in
  (match Caa.create img Caa.tool_memcheck_like with
  | exception Caa.Unsupported msg ->
      Printf.printf "  - building a Memcheck-class C&A tool: REFUSED (%s)\n" msg
  | _ -> Printf.printf "  - unexpected: C&A accepted a full-shadow tool\n");
  (* FP/SIMD taint loss demo: a taint flows through a double *)
  let leak_src =
    {|
int main() {
  int secret[2];
  double launder;
  int out;
  secret[0] = 12345;
  vg_taint_mem((char*)secret, 8);
  /* pass the tainted value through FP code *)  */
  launder = (double)secret[0];
  out = (int)(launder + 0.0);
  /* is `out` still tainted? *)  */
  return vg_check_taint((char*)&out, 4) != 0;
}
|}
  in
  let img = Minicc.Driver.compile leak_src in
  let s = Vg_core.Session.create ~tool:Tools.Taintgrind.tool img in
  let vg_kept =
    match Vg_core.Session.run s with
    | Vg_core.Session.Exited n -> n = 1
    | _ -> false
  in
  Printf.printf
    "  - taint through FP code: Valgrind/Taintgrind keeps it: %b\n\
    \    (the C&A taint tool skips FP instructions entirely, like\n\
    \     TaintTrace and LIFT, so it would silently lose this taint)\n"
    vg_kept
