(** §5.1: tool-writing effort, measured as the paper measures it — lines
    of code of the core vs each tool plug-in.

    Paper numbers (Valgrind 3.2.1, C): core 170,280 + 3,207 asm;
    Memcheck 10,509; Cachegrind 2,431; Massif 1,764; Nulgrind 39.
    The claim reproduced is the *ratio*: the core dwarfs every tool, and
    the heavyweight tool (Memcheck) dwarfs the lightweight ones. *)

let count_dir (dir : string) : int =
  if not (Sys.file_exists dir) then 0
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".ml")
    |> List.fold_left
         (fun acc f ->
           let ic = open_in (Filename.concat dir f) in
           let n = ref 0 in
           (try
              while true do
                ignore (input_line ic);
                incr n
              done
            with End_of_file -> ());
           close_in ic;
           acc + !n)
         0

let count_file (path : string) : int =
  if not (Sys.file_exists path) then 0
  else begin
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  end

let run () =
  Harness.section "§5.1: code sizes — core vs tool plug-ins (ours vs paper)";
  let core =
    List.fold_left (fun a d -> a + count_dir d) 0
      [ "lib/core"; "lib/jit"; "lib/vex_ir"; "lib/host"; "lib/guest";
        "lib/aspace"; "lib/kernel"; "lib/support" ]
  in
  let rows =
    [
      ("core (+ JIT + substrates)", core, 173487);
      ("memcheck", count_file "lib/tools/memcheck.ml"
                   + count_file "lib/tools/shadow_mem.ml", 10509);
      ("cachegrind", count_file "lib/tools/cachegrind.ml"
                     + count_dir "lib/cachesim", 2431);
      ("massif", count_file "lib/tools/massif.ml", 1764);
      ("nulgrind", 12 (* Tool.nulgrind in lib/core/tool.ml *), 39);
    ]
  in
  Printf.printf "%-28s %14s %14s\n" "component" "ours (OCaml)" "paper (C)";
  Harness.hr ();
  List.iter
    (fun (name, ours, paper) ->
      Printf.printf "%-28s %14d %14d\n" name ours paper)
    rows;
  Harness.hr ();
  (match rows with
  | (_, core_l, core_p) :: (_, mc_l, mc_p) :: _ when mc_l > 0 && mc_p > 0 ->
      Printf.printf
        "core/memcheck ratio: ours %.1f, paper %.1f — the framework does\n\
         most of the work; \"writing a new tool plug-in is much easier than\n\
         writing a new DBA tool from scratch\".\n"
        (float_of_int core_l /. float_of_int mc_l)
        (float_of_int core_p /. float_of_int mc_p)
  | _ -> ());
  Printf.printf
    "(Run from the repository root so the source tree is visible;\n\
     zero rows mean the sources were not found.)\n"
