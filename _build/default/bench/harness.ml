(** Shared machinery for the benchmark harness: run a workload natively
    and under a tool, returning deterministic cycle counts and checking
    output transparency. *)

type native_result = {
  nr_cycles : int64;
  nr_insns : int64;
  nr_stdout : string;
}

let run_native (img : Guest.Image.t) : native_result =
  let eng = Native.create img in
  (match Native.run eng with
  | Native.Exited 0 -> ()
  | Native.Exited n -> failwith (Printf.sprintf "native exit %d" n)
  | Native.Fatal_signal s -> failwith (Printf.sprintf "native signal %d" s)
  | Native.Out_of_fuel -> failwith "native out of fuel");
  {
    nr_cycles = Native.total_cycles eng;
    nr_insns = Native.total_insns eng;
    nr_stdout = Native.stdout_contents eng;
  }

type tool_result = {
  tr_cycles : int64;
  tr_stdout : string;
  tr_stats : Vg_core.Session.stats;
  tr_session : Vg_core.Session.t;
}

let run_tool ?options (tool : Vg_core.Tool.t) (img : Guest.Image.t) :
    tool_result =
  let s = Vg_core.Session.create ?options ~tool img in
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited 0 -> ()
  | Vg_core.Session.Exited n -> failwith (Printf.sprintf "%s exit %d" tool.name n)
  | Vg_core.Session.Fatal_signal sg ->
      failwith (Printf.sprintf "%s signal %d" tool.name sg)
  | Vg_core.Session.Out_of_fuel -> failwith (tool.name ^ " out of fuel"));
  let st = Vg_core.Session.stats s in
  {
    tr_cycles = st.st_total_cycles;
    tr_stdout = Vg_core.Session.client_stdout s;
    tr_stats = st;
    tr_session = s;
  }

let slowdown (n : native_result) (t : tool_result) : float =
  Int64.to_float t.tr_cycles /. Int64.to_float n.nr_cycles

let geomean (xs : float list) : float =
  if xs = [] then 0.0
  else exp (List.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int (List.length xs))

let hr () = print_endline (String.make 78 '-')

let section title =
  print_newline ();
  print_endline (String.make 78 '=');
  Printf.printf "== %s\n" title;
  print_endline (String.make 78 '=')
