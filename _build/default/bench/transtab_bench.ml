(** §3.8: translation-table behaviour under churn — FIFO chunk eviction
    at 80% occupancy, 1/8th at a time.

    The client sweeps a large code footprint (many generated functions
    called in turn, repeatedly) through a deliberately small table so
    evictions must happen; we report occupancy, insertions, evictions
    and that execution stays correct throughout. *)

(* generate a program with [n] distinct small functions called in a loop *)
let big_code_src n rounds =
  let b = Buffer.create (n * 120) in
  Buffer.add_string b "        .text\n        .global _start\n";
  Buffer.add_string b "_start: movi r5, 0\n";
  Buffer.add_string b (Printf.sprintf "        movi r4, %d\n" rounds);
  Buffer.add_string b "round:  movi r3, 0\n";
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "        call fn%d\n" i)
  done;
  Buffer.add_string b "        dec r4\n";
  Buffer.add_string b "        jne round\n";
  Buffer.add_string b "        mov r1, r5\n";
  Buffer.add_string b "        movi r0, 1\n";
  Buffer.add_string b "        syscall\n";
  for i = 0 to n - 1 do
    (* each function is its own translation unit of a few blocks *)
    Buffer.add_string b
      (Printf.sprintf
         "fn%d:   addi r5, %d\n        cmpi r5, 0\n        jlt fn%d_x\n        addi r3, 1\nfn%d_x: ret\n"
         i (i + 1) i i)
  done;
  Buffer.contents b

let run () =
  Harness.section "§3.8: translation table occupancy and FIFO eviction";
  let n_funcs = 600 and rounds = 5 in
  let src = big_code_src n_funcs rounds in
  let img = Guest.Asm.assemble src in
  let opts =
    { Vg_core.Session.default_options with transtab_capacity = 512 }
  in
  let s = Vg_core.Session.create ~options:opts ~tool:Vg_core.Tool.nulgrind img in
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited _ -> ()
  | _ -> failwith "transtab client failed");
  let st = Vg_core.Session.stats s in
  let tt = s.transtab in
  Printf.printf
    "table capacity:         %d entries (evict when > 80%% full)\n" 512;
  Printf.printf "distinct code blocks:   > %d (from %d functions x %d rounds)\n"
    n_funcs n_funcs rounds;
  Printf.printf "translations made:      %d\n" st.st_translations;
  Printf.printf "insertions:             %d\n" tt.Vg_core.Transtab.n_inserts;
  Printf.printf "eviction chunks:        %d (1/8th of the table each)\n"
    tt.Vg_core.Transtab.n_evict_chunks;
  Printf.printf "entries evicted:        %d\n" tt.Vg_core.Transtab.n_evicted;
  Printf.printf "final occupancy:        %.1f%%\n"
    (100.0 *. Vg_core.Transtab.occupancy tt);
  Printf.printf "dispatcher hit rate:    %.2f%%\n"
    (100.0 *. st.st_dispatch_hit_rate);
  Printf.printf
    "(retranslation after eviction is correct but costs cycles — exactly\n\
     why the table is large, 400k entries, in the real thing)\n"
