bench/caa_bench.ml: Caa Harness Int64 List Minicc Native Option Printf Tools Vg_core Workloads
