bench/micro.ml: Analyze Array Aspace Bechamel Benchmark Harness Hashtbl Instance Jit List Measure Option Printf Staged Test Time Toolkit Tools Vg_core Workloads
