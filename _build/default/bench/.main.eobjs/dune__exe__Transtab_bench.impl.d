bench/transtab_bench.ml: Buffer Guest Harness Printf Vg_core
