bench/dispatch_bench.ml: Harness Int64 List Printf String Vg_core Workloads
