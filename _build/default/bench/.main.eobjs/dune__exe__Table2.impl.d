bench/table2.ml: Harness List Printf String Tools Vg_core Workloads
