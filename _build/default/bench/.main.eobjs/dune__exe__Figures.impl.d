bench/figures.ml: Aspace Bytes Format Guest Harness Host Jit List Printf String Support Tools Vex_ir Vg_core
