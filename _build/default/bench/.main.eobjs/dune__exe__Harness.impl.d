bench/harness.ml: Guest Int64 List Native Printf String Vg_core
