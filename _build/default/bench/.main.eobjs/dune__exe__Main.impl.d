bench/main.ml: Array Caa_bench Dispatch_bench Figures List Loc_bench Micro Printf String Sys Table1 Table2 Transtab_bench
