bench/table1.ml: Harness Kernel List Minicc Printf Tools Vg_core
