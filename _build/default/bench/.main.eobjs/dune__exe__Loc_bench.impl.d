bench/loc_bench.ml: Array Filename Harness List Printf Sys
