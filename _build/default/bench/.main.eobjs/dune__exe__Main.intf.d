bench/main.mli:
