(** Bechamel micro-benchmarks of the JIT pipeline itself (wall-clock,
    not simulated cycles): per-phase translation costs over a workload's
    real code blocks.  This quantifies the paper's D&R observation that
    "a D&R JIT compiler will probably also translate code more slowly"
    than a C&A one — and that heavyweight instrumentation (Memcheck)
    multiplies the translation cost again. *)

open Bechamel
open Toolkit

(* collect a corpus of block start addresses by running a workload *)
let corpus () =
  let w = Option.get (Workloads.find "bzip2") in
  let img = Workloads.compile ~scale:1 w in
  let s = Vg_core.Session.create ~tool:Vg_core.Tool.nulgrind img in
  (match Vg_core.Session.run s with
  | Vg_core.Session.Exited _ -> ()
  | _ -> ());
  let keys =
    Vg_core.Transtab.all_entries s.transtab
    |> List.map (fun e -> e.Vg_core.Transtab.e_key)
  in
  (s.mem, Array.of_list keys)

let make_tests () =
  let mem, keys = corpus () in
  let fetch a = Aspace.fetch_u8 mem a in
  let n = Array.length keys in
  let idx = ref 0 in
  let next_key () =
    let k = keys.(!idx mod n) in
    incr idx;
    k
  in
  (* a Memcheck instrumenter detached from any running session *)
  let img = Workloads.compile ~scale:1 (Option.get (Workloads.find "bzip2")) in
  let s2 = Vg_core.Session.create ~tool:Tools.Memcheck.tool img in
  Vg_core.Session.startup s2;
  let mc_instr = Vg_core.Session.instrument_fn s2 in
  let fetch2 a = Aspace.fetch_u8 s2.mem a in
  [
    Test.make ~name:"phase1 disasm"
      (Staged.stage (fun () -> ignore (Jit.Disasm.superblock ~fetch (next_key ()))));
    Test.make ~name:"phases 1-2 (disasm+opt1)"
      (Staged.stage (fun () ->
           let b, _ = Jit.Disasm.superblock ~fetch (next_key ()) in
           ignore (Jit.Opt.opt1 b)));
    Test.make ~name:"full pipeline, nulgrind"
      (Staged.stage (fun () ->
           ignore
             (Jit.Pipeline.translate ~fetch
                ~instrument:Jit.Pipeline.no_instrument (next_key ()))));
    Test.make ~name:"full pipeline, memcheck"
      (Staged.stage (fun () ->
           ignore
             (Jit.Pipeline.translate ~fetch:fetch2 ~instrument:mc_instr
                (next_key ()))));
  ]

let run () =
  Harness.section
    "Micro: JIT translation wall-clock costs (Bechamel, ns per block)";
  let tests = make_tests () in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 0.4) ~kde:None ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some (t :: _) -> Printf.printf "%-28s %12.0f ns/block\n%!" name t
          | _ -> Printf.printf "%-28s (no estimate)\n%!" name)
        analyzed)
    tests
